#!/bin/bash
# Regenerate every paper table/figure (see DESIGN.md per-experiment index).
# Writes text outputs to bench_results/. Tuned for a single-core machine:
# --iters trades precision for wall clock; use --iters 100 for
# paper-strength minima.
#
# --smoke: run every driver on ct128 only with minimal iterations, so the
# whole driver set is exercised in seconds (CI / sanity check, not
# measurement).
#
# --smoke-trace: same smoke set built with --features trace; each driver
# also dumps its NDJSON trace to bench_results/smoke-trace/trace/ (for
# `cscv-xtask perf-report --export-dir` and the CI overhead gate).
set -u
cd "$(dirname "$0")"
OUT=bench_results
R="cargo run --release -q -p cscv-bench --bin"
# Call sites redirect each driver's output into its table file, so keep a
# dup of the console for failure reporting.
exec 3>&1
# Run one driver; a non-zero exit aborts the whole script with that
# driver's status. A missing table discovered at paper-assembly time is
# far worse than a red run — never continue past a failed driver.
run() {
    local name=$1; shift
    echo "== $name =="
    local t0=$SECONDS status=0
    "$@" || status=$?
    echo "[elapsed $((SECONDS-t0))s]"
    if [ "$status" -ne 0 ]; then
        echo "run_experiments.sh: driver '$name' failed with exit $status (see its output file under $OUT/)" >&3
        exit "$status"
    fi
}
# Like `run`, but routes the driver's trace dump to $OUT/trace/<name>.ndjson
# in --smoke-trace mode.
runt() {
    if [ "$TRACE" = 1 ]; then export CSCV_TRACE_OUT="$OUT/trace/$1.ndjson"; fi
    run "$@"
}

SMOKE=0
TRACE=0
case "${1:-}" in
    --smoke) SMOKE=1 ;;
    --smoke-trace) SMOKE=1; TRACE=1 ;;
esac

if [ "$SMOKE" = 1 ]; then
    # Smoke outputs go to their own directory so the recorded
    # full-scale artifacts in bench_results/ are never clobbered; the
    # traced variant gets yet another so trace-on and trace-off numbers
    # can be diffed against each other.
    if [ "$TRACE" = 1 ]; then
        OUT=$OUT/smoke-trace
        R="cargo run --release -q -p cscv-bench --features trace --bin"
    else
        OUT=$OUT/smoke
    fi
    mkdir -p $OUT
    # Clean stale outputs from previous smoke runs: manifests and traces
    # are appended to / accumulated, so leftovers would mix old and new
    # measurements and confuse the perf gate. baseline.json is the
    # checked-in reference — never delete it.
    rm -f "$OUT"/*.txt
    rm -rf "$OUT/manifests" "$OUT/trace"
    # Every measurement is also recorded to an NDJSON manifest per
    # driver (consumed by perf_smoke_check and cscv-xtask perf-report).
    export CSCV_MANIFEST_DIR="$OUT/manifests"
    mkdir -p "$CSCV_MANIFEST_DIR"
    [ "$TRACE" = 1 ] && mkdir -p "$OUT/trace"
    runt table1   $R table1_sample_block                                          > $OUT/table1.txt  2>&1
    runt table2   $R table2_datasets     -- --dataset ct128                       > $OUT/table2.txt  2>&1
    runt fig4     $R fig4_simd_efficiency                                         > $OUT/fig4.txt    2>&1
    runt fig5     $R fig5_padding_dist                                            > $OUT/fig5.txt    2>&1
    runt fig8     $R fig8_param_sweep    -- --dataset ct128                       > $OUT/fig8.txt    2>&1
    runt fig9     $R fig9_param_perf     -- --dataset ct128 --threads 1 --iters 2 > $OUT/fig9.txt    2>&1
    runt table3   $R table3_params       -- --dataset ct128 --threads 1 --iters 2 > $OUT/table3.txt  2>&1
    runt fig10    $R fig10_scalability   -- --dataset ct128 --threads 1 --iters 2 > $OUT/fig10.txt   2>&1
    runt fig11    $R fig11_membw         -- --dataset ct128 --threads 1 --iters 2 > $OUT/fig11.txt   2>&1
    runt table4   $R table4_best_perf    -- --dataset ct128 --threads 1 --iters 2 > $OUT/table4.txt  2>&1
    runt ablation $R ablation            -- --dataset ct128 --threads 1 --iters 2 > $OUT/ablation.txt 2>&1
    runt backproj $R backprojection      -- --dataset ct128 --threads 1 --iters 2 > $OUT/backprojection.txt 2>&1
    runt batched  $R batched_spmm        -- --dataset ct128 --threads 1 --iters 2 --k 1,2,4 > $OUT/batched_spmm.txt 2>&1
    echo SMOKE_DONE
    exit 0
fi

run table1  $R table1_sample_block                          > $OUT/table1.txt 2>&1
run table2  $R table2_datasets                              > $OUT/table2.txt 2>&1
run fig4    $R fig4_simd_efficiency                         > $OUT/fig4.txt   2>&1
run fig5    $R fig5_padding_dist                            > $OUT/fig5.txt   2>&1
run fig8    $R fig8_param_sweep    -- --dataset ct256       > $OUT/fig8.txt   2>&1
run fig9    $R fig9_param_perf     -- --dataset ct256 --threads 1,4 --iters 6  > $OUT/fig9.txt 2>&1
run table3  $R table3_params       -- --dataset ct256 --threads 4 --iters 6    > $OUT/table3.txt 2>&1
run fig10   $R fig10_scalability   -- --threads 1,2,4 --iters 12               > $OUT/fig10.txt 2>&1
run fig11   $R fig11_membw         -- --dataset ct256 --threads 4 --iters 12   > $OUT/fig11.txt 2>&1
run table4  $R table4_best_perf    -- --threads 1,4 --iters 12                 > $OUT/table4.txt 2>&1
run ablation $R ablation           -- --dataset ct256 --threads 1,4 --iters 10 > $OUT/ablation.txt 2>&1
run backproj $R backprojection     -- --threads 1,4 --iters 10                 > $OUT/backprojection.txt 2>&1
run batched  $R batched_spmm       -- --threads 1,4 --iters 20                 > $OUT/batched_spmm.txt 2>&1
echo ALL_DONE
