//! Cluster-vs-serial equivalence over the fuzz matrix families.
//!
//! Thread-launched clusters (same protocol and backend code as process
//! workers, minus the fork) against serial references:
//!
//! * forward/adjoint products match a hand-rolled serial loop within
//!   rounding for 1–4 shards on every generated family;
//! * a one-shard cluster's solver run is **byte-identical** to the
//!   single-process [`LocalOperator`] — the forward gather is
//!   placement-only and a one-buffer tree reduce is a copy;
//! * multi-shard SIRT/CGLS residual trajectories stay within `1e-10`
//!   of single-process at smoke depth (the shard-smoke CI gate, here
//!   exercised on irregular non-CT matrices too).

use cscv_core::layout::ImageShape;
use cscv_core::SinoLayout;
use cscv_harness::gen::{generate, random_desc, CaseDesc};
use cscv_recon::{bitwise_equal, run_solver, trajectory_max_rel_diff, Solver};
use cscv_shard::{Cluster, Launch, LocalOperator, PartitionMethod, ShardPlan, ShardedOperator};
use cscv_sparse::{Csr, ThreadPool};

fn family(seed: u64) -> (CaseDesc, Csr<f64>) {
    let desc = random_desc(seed);
    (desc, generate(&desc).to_csr())
}

fn layout_of(desc: &CaseDesc) -> (SinoLayout, ImageShape) {
    (
        SinoLayout {
            n_views: desc.n_views,
            n_bins: desc.n_bins,
        },
        ImageShape {
            nx: desc.nx,
            ny: desc.ny,
        },
    )
}

/// Deterministic pseudo-random dense vector.
fn dense(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
        .collect()
}

/// Serial adjoint: `x += Aᵀ y` computed row by row.
fn serial_spmv_t(csr: &Csr<f64>, y: &[f64], x: &mut [f64]) {
    x.fill(0.0);
    for r in 0..csr.n_rows() {
        let (cols, vals) = csr.row(r);
        for (c, v) in cols.iter().zip(vals) {
            x[*c as usize] += v * y[r];
        }
    }
}

fn rel_close(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0))
}

#[test]
fn cluster_products_match_serial_over_families() {
    for seed in 200..240u64 {
        let (desc, csr) = family(seed);
        let (layout, img) = layout_of(&desc);
        let row_nnz: Vec<usize> = (0..csr.n_rows()).map(|r| csr.row(r).0.len()).collect();
        let x = dense(csr.n_cols(), seed ^ 0xABCD);
        let yv = dense(csr.n_rows(), seed ^ 0x1234);
        let mut y_ref = vec![0.0; csr.n_rows()];
        csr.spmv_serial(&x, &mut y_ref);
        let mut xt_ref = vec![0.0; csr.n_cols()];
        serial_spmv_t(&csr, &yv, &mut xt_ref);

        for shards in [1usize, 2, 4] {
            for method in [PartitionMethod::Stripe, PartitionMethod::Bisect] {
                let plan = ShardPlan::new(&row_nnz, shards, 1, method);
                let mut cluster =
                    Cluster::start(&csr, &plan, layout, img, 1, &Launch::Threads).unwrap();
                let mut y = vec![0.0; csr.n_rows()];
                cluster.spmv(&x, &mut y).unwrap();
                assert!(
                    rel_close(&y, &y_ref, 1e-12),
                    "forward mismatch: seed {seed} shards {shards} {method:?}"
                );
                let mut xt = vec![0.0; csr.n_cols()];
                cluster.spmv_t(&yv, &mut xt).unwrap();
                assert!(
                    rel_close(&xt, &xt_ref, 1e-12),
                    "adjoint mismatch: seed {seed} shards {shards} {method:?}"
                );
                cluster.shutdown().unwrap();
            }
        }
    }
}

#[test]
fn one_shard_solver_runs_are_bitwise_identical() {
    let pool = ThreadPool::new(1);
    for seed in 300..312u64 {
        let (desc, csr) = family(seed);
        if csr.nnz() == 0 {
            continue; // solvers on an all-zero operator stop immediately
        }
        let (layout, img) = layout_of(&desc);
        let row_nnz: Vec<usize> = (0..csr.n_rows()).map(|r| csr.row(r).0.len()).collect();
        let b = dense(csr.n_rows(), seed ^ 0x55AA);

        let mut cache = cscv_shard::worker::env_cache();
        let local = LocalOperator::new(csr.clone(), Some(layout), img, 1, &mut cache);
        for solver in [Solver::Sirt, Solver::Cgls, Solver::Landweber] {
            let reference = run_solver(solver, &local, &b, 5, &pool);
            let plan = ShardPlan::new(&row_nnz, 1, 1, PartitionMethod::Stripe);
            let cluster = Cluster::start(&csr, &plan, layout, img, 1, &Launch::Threads).unwrap();
            let op = ShardedOperator::new(cluster).unwrap();
            let sharded = run_solver(solver, &op, &b, 5, &pool);
            op.shutdown().unwrap();
            assert!(
                bitwise_equal(&reference, &sharded),
                "seed {seed} {solver:?}: one-shard run must be byte-identical"
            );
        }
    }
}

#[test]
fn multi_shard_trajectories_stay_within_gate_tolerance() {
    let pool = ThreadPool::new(1);
    for seed in 400..410u64 {
        let (desc, csr) = family(seed);
        if csr.nnz() == 0 {
            continue;
        }
        let (layout, img) = layout_of(&desc);
        let row_nnz: Vec<usize> = (0..csr.n_rows()).map(|r| csr.row(r).0.len()).collect();
        let b = dense(csr.n_rows(), seed ^ 0x77EE);

        let mut cache = cscv_shard::worker::env_cache();
        let local = LocalOperator::new(csr.clone(), Some(layout), img, 1, &mut cache);
        // Smoke-gate depth: stationary solvers don't amplify the
        // reduction perturbation; CGLS does (~10²×/iter), so it runs
        // shallower — same policy as `cscv-xtask shard`.
        for (solver, iters) in [(Solver::Sirt, 8), (Solver::Cgls, 4), (Solver::Landweber, 8)] {
            let reference = run_solver(solver, &local, &b, iters, &pool);
            for shards in [2usize, 3] {
                let plan = ShardPlan::new(&row_nnz, shards, 1, PartitionMethod::Bisect);
                let cluster =
                    Cluster::start(&csr, &plan, layout, img, 1, &Launch::Threads).unwrap();
                let op = ShardedOperator::new(cluster).unwrap();
                let sharded = run_solver(solver, &op, &b, iters, &pool);
                op.shutdown().unwrap();
                let diff =
                    trajectory_max_rel_diff(&reference.residual_history, &sharded.residual_history);
                assert!(
                    diff <= 1e-10,
                    "seed {seed} {solver:?} shards {shards}: trajectory diff {diff:e}"
                );
            }
        }
    }
}

/// The cluster must reject dimension-mismatched inputs without
/// poisoning the workers: a wrong-length vector is an error, and the
/// same cluster keeps serving well-formed requests afterwards.
#[test]
fn dimension_mismatch_is_an_error_not_a_wedge() {
    let (desc, csr) = family(42);
    let (layout, img) = layout_of(&desc);
    let row_nnz: Vec<usize> = (0..csr.n_rows()).map(|r| csr.row(r).0.len()).collect();
    let plan = ShardPlan::new(&row_nnz, 2, 1, PartitionMethod::Stripe);
    let mut cluster = Cluster::start(&csr, &plan, layout, img, 1, &Launch::Threads).unwrap();
    let bad = vec![0.0; csr.n_cols() + 1];
    let mut y = vec![0.0; csr.n_rows()];
    assert!(cluster.spmv(&bad, &mut y).is_err());
    let x = dense(csr.n_cols(), 7);
    let mut y_ref = vec![0.0; csr.n_rows()];
    csr.spmv_serial(&x, &mut y_ref);
    cluster.spmv(&x, &mut y).unwrap();
    assert!(
        rel_close(&y, &y_ref, 1e-12),
        "cluster wedged after bad input"
    );
    cluster.shutdown().unwrap();
}
