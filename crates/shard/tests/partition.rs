//! Partitioner properties over the fuzz matrix families.
//!
//! Both balancers must deliver, for every generated matrix and every
//! (shard count, block size) combination:
//!
//! * **exact coverage** — the ranges tile `0..n_rows` in order with no
//!   gap and no overlap (disjointness is implied by contiguity);
//! * **block alignment** — every boundary is a multiple of `block_rows`;
//! * **nnz conservation** — per-shard nonzero counts sum to the total;
//! * **the documented balance bound** — `max shard nnz ≤ mean +
//!   w_max·⌈log₂ k⌉` with `w_max` the heaviest indivisible block (see
//!   `cscv_shard::plan` module docs).

use cscv_harness::gen::{generate, random_desc, CaseDesc};
use cscv_shard::{slice_rows, PartitionMethod, ShardPlan};
use cscv_sparse::Csr;

const METHODS: [PartitionMethod; 2] = [PartitionMethod::Stripe, PartitionMethod::Bisect];

/// Per-row nonzero counts of a generated case's CSR form.
fn family_rows(seed: u64) -> (CaseDesc, Csr<f64>, Vec<usize>) {
    let desc = random_desc(seed);
    let csr = generate(&desc).to_csr();
    let row_nnz: Vec<usize> = (0..csr.n_rows()).map(|r| csr.row(r).0.len()).collect();
    (desc, csr, row_nnz)
}

/// Block sizes that evenly divide `n_rows`, always including 1 and (for
/// CT-shaped cases) the view-aligned `n_bins`.
fn block_sizes(desc: &CaseDesc, n_rows: usize) -> Vec<usize> {
    let mut out = vec![1];
    if desc.n_bins > 1 && n_rows % desc.n_bins == 0 {
        out.push(desc.n_bins);
    }
    out
}

#[test]
fn every_family_is_covered_disjoint_and_aligned() {
    for seed in 0..150u64 {
        let (desc, _, row_nnz) = family_rows(seed);
        for block_rows in block_sizes(&desc, row_nnz.len()) {
            for k in [1usize, 2, 3, 4, 7, 16] {
                for method in METHODS {
                    let plan = ShardPlan::new(&row_nnz, k, block_rows, method);
                    assert_eq!(plan.n_shards(), k, "seed {seed} {method:?} k={k}");
                    assert!(plan.is_block_aligned(), "seed {seed} {method:?} k={k}");
                    // Contiguous tiling: each range starts where the
                    // previous ended; the first starts at 0, the last
                    // ends at n_rows. Coverage and disjointness both
                    // follow.
                    let mut cursor = 0usize;
                    for r in &plan.ranges {
                        assert_eq!(r.start, cursor, "gap/overlap at seed {seed} {method:?}");
                        assert!(r.end >= r.start);
                        cursor = r.end;
                    }
                    assert_eq!(cursor, row_nnz.len(), "seed {seed} {method:?} k={k}");
                    let total: usize = plan.shard_nnz(&row_nnz).iter().sum();
                    assert_eq!(total, row_nnz.iter().sum::<usize>(), "nnz not conserved");
                }
            }
        }
    }
}

#[test]
fn balance_bound_holds_for_both_methods() {
    for seed in 0..150u64 {
        let (desc, _, row_nnz) = family_rows(seed);
        let total: usize = row_nnz.iter().sum();
        if total == 0 {
            continue; // empty families satisfy any bound trivially
        }
        for block_rows in block_sizes(&desc, row_nnz.len()) {
            let n_blocks = row_nnz.len() / block_rows;
            let w_max = (0..n_blocks)
                .map(|b| row_nnz[b * block_rows..(b + 1) * block_rows].iter().sum())
                .max()
                .unwrap_or(0usize);
            for k in [2usize, 3, 4, 7, 16] {
                for method in METHODS {
                    let plan = ShardPlan::new(&row_nnz, k, block_rows, method);
                    let max = plan.shard_nnz(&row_nnz).into_iter().max().unwrap();
                    let mean = total as f64 / k as f64;
                    let levels = (k as f64).log2().ceil();
                    let bound = mean + w_max as f64 * levels;
                    assert!(
                        max as f64 <= bound + 1.0,
                        "seed {seed} {method:?} k={k} block={block_rows}: \
                         max {max} > bound {bound:.1} (mean {mean:.1}, w_max {w_max})"
                    );
                    assert!(plan.imbalance(&row_nnz) >= 1.0 - 1e-12);
                }
            }
        }
    }
}

#[test]
fn sliced_shards_reassemble_the_matrix() {
    for seed in 0..60u64 {
        let (desc, csr, row_nnz) = family_rows(seed);
        for block_rows in block_sizes(&desc, row_nnz.len()) {
            let plan = ShardPlan::new(&row_nnz, 3, block_rows, PartitionMethod::Bisect);
            let mut row = 0usize;
            for range in &plan.ranges {
                let shard = slice_rows(&csr, range.clone());
                assert_eq!(shard.n_rows(), range.len());
                assert_eq!(shard.n_cols(), csr.n_cols());
                for local in 0..shard.n_rows() {
                    let (gc, gv) = csr.row(row);
                    let (sc, sv) = shard.row(local);
                    assert_eq!(gc, sc, "seed {seed} row {row}: column mismatch");
                    assert_eq!(gv, sv, "seed {seed} row {row}: value mismatch");
                    row += 1;
                }
            }
            assert_eq!(row, csr.n_rows());
        }
    }
}

/// Bisection should never do *worse* than the documented bound even on
/// adversarially skewed weights (one huge block among ones).
#[test]
fn bisect_handles_one_dominant_block() {
    let mut row_nnz = vec![1usize; 64];
    row_nnz[40] = 10_000;
    for k in [2usize, 3, 4, 8] {
        for method in METHODS {
            let plan = ShardPlan::new(&row_nnz, k, 1, method);
            let loads = plan.shard_nnz(&row_nnz);
            // The dominant block must land alone-ish: no shard may hold
            // the big block plus more than the bound's slack.
            let max = *loads.iter().max().unwrap();
            assert!(
                max <= 10_000 + 63,
                "{method:?} k={k}: max {max} exceeds dominant block + rest"
            );
        }
    }
}
