//! Wire-level contract for the `[tag=Trace]` telemetry channel.
//!
//! Three guarantees, one per test:
//!
//! * a `Trace` frame survives a real socketpair round trip **bit-exactly**
//!   (the coordinator folds these unsolicited, so any re-encode drift
//!   would silently corrupt merged traces);
//! * with the `trace` feature off, a full worker session carries **zero**
//!   trace-related frames (`ClockProbe`/`ClockAck`/`Trace`) — the
//!   observability channel must cost nothing when compiled out;
//! * with the feature on, a two-worker cluster's merged Chrome trace
//!   validates against the same schema the single-process exporter is
//!   held to (every row has `name`/`ph`/`pid`/`tid`; one process lane
//!   per participant; worker compute spans parented by coordinator
//!   dispatch spans, with matching flow arrows).

use cscv_shard::protocol::{tag as tags, Msg};
use cscv_shard::wire::Conn;
use std::os::unix::net::UnixStream;

/// A representative telemetry flush: counters plus an NDJSON chunk with
/// every byte class the emitter produces (escapes, floats, unicode).
fn sample_trace_frame() -> Msg {
    Msg::Trace {
        seq: 7,
        busy_ns: 123_456_789,
        bytes_rx: 4096,
        bytes_tx: 8192,
        spmv_calls: 12,
        spmv_t_calls: 11,
        ndjson: concat!(
            r#"{"type":"span","thread":"cscv-shard-serve-0","name":"shard.worker.spmv","#,
            r#""depth":0,"t_ns":100,"dur_ns":900,"parent":42}"#,
            "\n",
            r#"{"type":"event","thread":"cscv-shard-serve-0","name":"mark \"q\" µ","t_ns":1500}"#,
            "\n",
        )
        .to_string(),
    }
}

#[test]
fn trace_frame_round_trips_bit_exactly_over_socketpair() {
    let msg = sample_trace_frame();
    let (tag, sent_payload) = msg.encode();
    assert_eq!(tag, tags::TRACE);

    let (a, b) = UnixStream::pair().unwrap();
    let mut tx = Conn::new(a);
    let mut rx = Conn::new(b);
    msg.send(&mut tx).unwrap();
    let (got_tag, got_payload) = rx.recv().unwrap();

    assert_eq!(got_tag, tags::TRACE);
    assert_eq!(got_payload, sent_payload, "payload must be bit-exact");
    assert_eq!(Msg::decode(got_tag, &got_payload).unwrap(), msg);

    // Decode → encode is also byte-stable (idempotent framing).
    let (tag2, payload2) = Msg::decode(got_tag, &got_payload).unwrap().encode();
    assert_eq!((tag2, payload2), (got_tag, got_payload));
}

/// Drive one full worker session from a scripted coordinator and tally
/// every tag the worker puts on the wire. Untraced builds must never
/// emit `ClockAck` or `Trace` (and this coordinator sends no probes,
/// matching the real one, which only probes under the feature).
#[cfg(not(feature = "trace"))]
#[test]
fn untraced_session_carries_zero_trace_frames() {
    use cscv_tune::TuneCache;

    let (coord_end, worker_end) = UnixStream::pair().unwrap();
    let server = std::thread::spawn(move || {
        let mut conn = Conn::new(worker_end);
        let mut cache = TuneCache::in_memory();
        cscv_shard::worker::serve(&mut conn, &mut cache).unwrap()
    });

    let mut conn = Conn::new(coord_end);
    let mut seen: Vec<u8> = Vec::new();
    let mut ask = |conn: &mut Conn<UnixStream>, m: Msg| {
        m.send(conn).unwrap();
        let (tag, payload) = conn.recv().unwrap();
        seen.push(tag);
        Msg::decode(tag, &payload).unwrap()
    };

    Msg::Hello {
        shard: 0,
        n_shards: 1,
        threads: 1,
        trace_id: 0,
        flags: 0,
    }
    .send(&mut conn)
    .unwrap();
    // 2×3 shard: rows {[0]=1, [2]=2} and {[1]=3}.
    let ack = ask(
        &mut conn,
        Msg::Matrix {
            n_cols: 3,
            row0: 0,
            n_views: 0,
            n_bins: 0,
            nx: 3,
            ny: 1,
            row_ptr: vec![0, 2, 3],
            col_idx: vec![0, 2, 1],
            vals: vec![1.0, 2.0, 3.0],
        },
    );
    assert!(matches!(ack, Msg::MatrixAck { .. }));
    let y = ask(
        &mut conn,
        Msg::Spmv {
            span: 0,
            x: vec![1.0, -1.0, 0.5],
        },
    );
    assert_eq!(y, Msg::SpmvOut { y: vec![2.0, -3.0] });
    ask(
        &mut conn,
        Msg::SpmvT {
            span: 0,
            y: vec![1.0, 1.0],
        },
    );
    ask(&mut conn, Msg::AbsSums { span: 0 });
    ask(&mut conn, Msg::Stats { span: 0 });
    let bye = ask(&mut conn, Msg::Shutdown { span: 0 });
    assert_eq!(bye, Msg::ShutdownAck);
    server.join().unwrap();

    assert_eq!(
        seen,
        vec![
            tags::MATRIX_ACK,
            tags::SPMV_OUT,
            tags::SPMV_T_OUT,
            tags::ABS_SUMS_OUT,
            tags::STATS_OUT,
            tags::SHUTDOWN_ACK,
        ],
        "untraced wire must carry exactly the request/reply frames"
    );
    assert!(
        !seen
            .iter()
            .any(|t| [tags::CLOCK_PROBE, tags::CLOCK_ACK, tags::TRACE].contains(t)),
        "trace-off build leaked telemetry frames: {seen:?}"
    );
}

/// End-to-end merged-trace schema: two thread-launched workers, one
/// solve's worth of collectives, shutdown with trace capture, then the
/// combined coordinator + worker document is validated row by row.
#[cfg(feature = "trace")]
#[test]
fn merged_chrome_trace_from_two_worker_cluster_validates() {
    use cscv_core::layout::ImageShape;
    use cscv_core::SinoLayout;
    use cscv_shard::{Cluster, Launch, PartitionMethod, ShardPlan};
    use cscv_sparse::Coo;
    use cscv_trace::json::Json;

    let mut coo = Coo::new(10, 6);
    for r in 0..10usize {
        coo.push(r, r % 6, 1.0 + r as f64);
        coo.push(r, (r + 2) % 6, -0.5);
    }
    let csr = coo.to_csr();
    let row_nnz: Vec<usize> = (0..10).map(|r| csr.row(r).0.len()).collect();
    let plan = ShardPlan::new(&row_nnz, 2, 1, PartitionMethod::Bisect);
    let layout = SinoLayout {
        n_views: 0,
        n_bins: 0,
    };
    let img = ImageShape { nx: 3, ny: 2 };
    let mut cluster = Cluster::start(&csr, &plan, layout, img, 1, &Launch::Threads).unwrap();

    let x = vec![1.0; 6];
    let mut y = vec![0.0; 10];
    cluster.spmv(&x, &mut y).unwrap();
    let mut xt = vec![0.0; 6];
    cluster.spmv_t(&y, &mut xt).unwrap();
    let report = cluster.shutdown_full().unwrap();
    assert_eq!(report.traces.len(), 2);

    // Coordinator lane: this process's own registry, minus the worker
    // serve threads (their events arrive via the streamed lanes).
    let coord_events: Vec<_> = cscv_trace::export::snapshot()
        .into_iter()
        .filter(|e| !e.thread.starts_with("cscv-shard-serve-"))
        .collect();
    let mut procs = vec![cscv_trace::export::ProcessTrace {
        pid: 1,
        label: "cscv-coordinator".to_string(),
        offset: cscv_trace::clock::OffsetEstimate::default(),
        events: coord_events,
    }];
    procs.extend(report.traces);
    let doc = Json::parse(&cscv_trace::export::chrome_trace_merged(&procs).to_string()).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();

    // Schema: every row carries the four mandatory keys (PR 4 contract).
    for e in events {
        for key in ["name", "ph", "pid", "tid"] {
            assert!(e.get(key).is_some(), "row missing {key}: {e:?}");
        }
    }

    // Exactly one process lane per participant, on distinct pids.
    let lanes: Vec<(f64, String)> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
        .map(|e| {
            (
                e.get("pid").and_then(Json::as_f64).unwrap(),
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            )
        })
        .collect();
    assert_eq!(lanes.len(), 3, "coordinator + 2 workers: {lanes:?}");
    assert_eq!(
        lanes.iter().map(|(p, _)| *p as u64).collect::<Vec<_>>(),
        vec![1, 2, 3]
    );
    assert!(lanes[1].1.starts_with("cscv-worker-0"));
    assert!(lanes[2].1.starts_with("cscv-worker-1"));

    // Dispatch spans own ids; worker compute spans reference them.
    let dispatch_ids: Vec<f64> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("shard.dispatch.spmv"))
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("span_id"))
                .and_then(Json::as_f64)
                .expect("dispatch span carries span_id")
        })
        .collect();
    assert!(!dispatch_ids.is_empty(), "no coordinator dispatch span");
    let parented_worker_spans = events
        .iter()
        .filter(|e| {
            e.get("name").and_then(Json::as_str) == Some("shard.worker.spmv")
                && e.get("pid")
                    .and_then(Json::as_f64)
                    .is_some_and(|p| p >= 2.0)
        })
        .filter(|e| {
            e.get("args")
                .and_then(|a| a.get("parent_span"))
                .and_then(Json::as_f64)
                .is_some_and(|p| dispatch_ids.contains(&p))
        })
        .count();
    assert_eq!(
        parented_worker_spans, 2,
        "each worker's spmv span must parent to the coordinator dispatch"
    );

    // Flow arrows: a start on the coordinator for each dispatch id and a
    // finish on each worker lane binding back to it.
    let flow = |ph: &str| {
        events
            .iter()
            .filter(|e| {
                e.get("name").and_then(Json::as_str) == Some("shard.flow")
                    && e.get("ph").and_then(Json::as_str) == Some(ph)
                    && e.get("cat").and_then(Json::as_str) == Some("shard")
            })
            .count()
    };
    assert!(flow("s") >= 1, "missing flow starts");
    assert!(flow("f") >= 2, "missing flow finishes on worker lanes");

    // Reduction markers from the adjoint merge land as instants.
    assert!(
        events.iter().any(
            |e| e.get("name").and_then(Json::as_str) == Some("shard.reduce.step")
                && e.get("ph").and_then(Json::as_str) == Some("i")
        ),
        "tree-reduction instants missing from coordinator lane"
    );
}
