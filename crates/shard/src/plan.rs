//! Row-shard partitioning of an assembled matrix.
//!
//! Shards are contiguous row ranges, optionally aligned to a block size
//! (`block_rows = n_bins` keeps CT shards view-aligned so each worker
//! can rebuild a valid [`cscv_core::SinoLayout`] for its slice). Two
//! balancers over per-row nonzero counts:
//!
//! * [`PartitionMethod::Stripe`] — contiguous striping: one
//!   prefix-balanced sweep ([`cscv_sparse::partition::split_by_prefix`]),
//!   the same scheme the thread pool uses intra-shard.
//! * [`PartitionMethod::Bisect`] — recursive bisection: split the block
//!   range at the boundary closest to the weighted midpoint, recurse on
//!   both halves. For skewed distributions the local boundary search
//!   gives tighter per-shard bounds than a single striping sweep.
//!
//! Both methods guarantee exact coverage and disjointness (contiguous
//! ranges by construction) and the balance bound
//! `max shard nnz ≤ mean + w_max·⌈log₂ k⌉`, where `w_max` is the
//! heaviest indivisible block — verified over the fuzz families in
//! `tests/partition.rs`.

use cscv_simd::Scalar;
use cscv_sparse::partition::split_by_prefix;
use cscv_sparse::Csr;
use std::ops::Range;

/// How shard boundaries are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionMethod {
    /// Contiguous striping balanced by one prefix sweep.
    #[default]
    Stripe,
    /// Recursive bisection over block weights.
    Bisect,
}

impl PartitionMethod {
    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<PartitionMethod> {
        match s {
            "stripe" => Some(PartitionMethod::Stripe),
            "bisect" => Some(PartitionMethod::Bisect),
            _ => None,
        }
    }

    /// Stable name (reports, NDJSON).
    pub fn name(self) -> &'static str {
        match self {
            PartitionMethod::Stripe => "stripe",
            PartitionMethod::Bisect => "bisect",
        }
    }
}

/// A row-shard partition: contiguous, disjoint ranges covering every
/// row, each aligned to `block_rows`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// One row range per shard, in row order. Trailing ranges may be
    /// empty when there are more shards than blocks.
    pub ranges: Vec<Range<usize>>,
    /// Indivisible row-block size the boundaries are aligned to
    /// (`n_bins` for view-aligned CT shards, 1 for general matrices).
    pub block_rows: usize,
}

impl ShardPlan {
    /// Partition `row_nnz.len()` rows into `n_shards` contiguous shards
    /// balanced by nonzero count.
    ///
    /// # Panics
    /// If `n_shards == 0`, `block_rows == 0`, or the row count is not a
    /// multiple of `block_rows`.
    pub fn new(
        row_nnz: &[usize],
        n_shards: usize,
        block_rows: usize,
        method: PartitionMethod,
    ) -> ShardPlan {
        assert!(n_shards >= 1, "need at least one shard");
        assert!(block_rows >= 1, "block_rows must be positive");
        assert_eq!(
            row_nnz.len() % block_rows,
            0,
            "row count {} not a multiple of block_rows {}",
            row_nnz.len(),
            block_rows
        );
        let n_blocks = row_nnz.len() / block_rows;
        // Aggregate per-block weights (a block is the indivisible unit).
        let mut prefix = Vec::with_capacity(n_blocks + 1);
        prefix.push(0usize);
        let mut acc = 0usize;
        for b in 0..n_blocks {
            acc += row_nnz[b * block_rows..(b + 1) * block_rows]
                .iter()
                .sum::<usize>();
            prefix.push(acc);
        }
        let block_ranges = match method {
            PartitionMethod::Stripe => split_by_prefix(&prefix, n_shards),
            PartitionMethod::Bisect => {
                let mut out = Vec::with_capacity(n_shards);
                bisect(&prefix, 0..n_blocks, n_shards, &mut out);
                out
            }
        };
        let ranges = block_ranges
            .into_iter()
            .map(|r| r.start * block_rows..r.end * block_rows)
            .collect();
        ShardPlan { ranges, block_rows }
    }

    /// Number of shards (including empty trailing ones).
    pub fn n_shards(&self) -> usize {
        self.ranges.len()
    }

    /// Per-shard nonzero counts under `row_nnz`.
    pub fn shard_nnz(&self, row_nnz: &[usize]) -> Vec<usize> {
        self.ranges
            .iter()
            .map(|r| row_nnz[r.clone()].iter().sum())
            .collect()
    }

    /// Load imbalance: max shard nnz over mean shard nnz (1.0 is
    /// perfect; empty matrices report 1.0).
    pub fn imbalance(&self, row_nnz: &[usize]) -> f64 {
        let loads = self.shard_nnz(row_nnz);
        let total: usize = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / loads.len() as f64;
        loads.iter().copied().max().unwrap_or(0) as f64 / mean
    }

    /// True iff every shard boundary falls on a multiple of
    /// `block_rows` (always true for plans built by [`ShardPlan::new`]).
    pub fn is_block_aligned(&self) -> bool {
        self.ranges
            .iter()
            .all(|r| r.start % self.block_rows == 0 && r.end % self.block_rows == 0)
    }
}

/// Recursive bisection: split `blocks` into `k` ranges, choosing each
/// boundary as the block edge closest to the weighted midpoint
/// (weighted by the left subtree's shard count).
fn bisect(prefix: &[usize], blocks: Range<usize>, k: usize, out: &mut Vec<Range<usize>>) {
    if k == 1 {
        out.push(blocks);
        return;
    }
    let kl = k / 2;
    let total = prefix[blocks.end] - prefix[blocks.start];
    let target = prefix[blocks.start] + (total as u128 * kl as u128 / k as u128) as usize;
    // Candidate boundaries bracket the target; pick the closer block
    // edge within [blocks.start, blocks.end].
    let hi = (blocks.start + prefix[blocks.start..=blocks.end].partition_point(|&w| w < target))
        .min(blocks.end);
    let lo = hi.saturating_sub(1).max(blocks.start);
    let split = if prefix[hi].abs_diff(target) <= prefix[lo].abs_diff(target) {
        hi
    } else {
        lo
    };
    bisect(prefix, blocks.start..split, kl, out);
    bisect(prefix, split..blocks.end, k - kl, out);
}

/// Extract the shard sub-matrix for a row range: rows `range` of `csr`
/// with the full column width (row indices rebased to the shard).
pub fn slice_rows<T: Scalar>(csr: &Csr<T>, range: Range<usize>) -> Csr<T> {
    assert!(range.end <= csr.n_rows(), "row range out of bounds");
    let lo = csr.row_ptr()[range.start];
    let hi = csr.row_ptr()[range.end];
    let row_ptr: Vec<usize> = csr.row_ptr()[range.start..=range.end]
        .iter()
        .map(|&p| p - lo)
        .collect();
    Csr::from_parts(
        range.len(),
        csr.n_cols(),
        row_ptr,
        csr.col_idx()[lo..hi].to_vec(),
        csr.vals()[lo..hi].to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscv_sparse::Coo;

    fn covers(plan: &ShardPlan, n_rows: usize) {
        let mut next = 0;
        for r in &plan.ranges {
            assert_eq!(r.start, next, "shards must be contiguous");
            assert!(r.end >= r.start);
            next = r.end;
        }
        assert_eq!(next, n_rows, "shards must cover every row");
        assert!(plan.is_block_aligned());
    }

    #[test]
    fn stripe_and_bisect_cover_all_rows() {
        let row_nnz = [3usize, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8];
        for k in 1..=6 {
            for m in [PartitionMethod::Stripe, PartitionMethod::Bisect] {
                let plan = ShardPlan::new(&row_nnz, k, 1, m);
                assert_eq!(plan.n_shards(), k);
                covers(&plan, row_nnz.len());
                let total: usize = plan.shard_nnz(&row_nnz).iter().sum();
                assert_eq!(total, row_nnz.iter().sum::<usize>());
            }
        }
    }

    #[test]
    fn block_alignment_is_respected() {
        let row_nnz: Vec<usize> = (0..24).map(|i| i % 5 + 1).collect();
        for m in [PartitionMethod::Stripe, PartitionMethod::Bisect] {
            let plan = ShardPlan::new(&row_nnz, 3, 4, m);
            covers(&plan, 24);
            for r in &plan.ranges {
                assert_eq!(r.start % 4, 0);
                assert_eq!(r.end % 4, 0);
            }
        }
    }

    #[test]
    fn bisect_isolates_a_heavy_block() {
        // One dominant block: bisection must not attach it to a large
        // neighbor span.
        let mut row_nnz = vec![1usize; 16];
        row_nnz[7] = 1000;
        let plan = ShardPlan::new(&row_nnz, 4, 1, PartitionMethod::Bisect);
        covers(&plan, 16);
        let loads = plan.shard_nnz(&row_nnz);
        let heavy = loads.iter().copied().max().unwrap();
        assert!(heavy <= 1000 + 4, "heavy shard carries extras: {loads:?}");
    }

    #[test]
    fn more_shards_than_blocks_leaves_trailing_empties() {
        let row_nnz = [5usize, 5];
        for m in [PartitionMethod::Stripe, PartitionMethod::Bisect] {
            let plan = ShardPlan::new(&row_nnz, 5, 1, m);
            covers(&plan, 2);
            let nonempty = plan.ranges.iter().filter(|r| !r.is_empty()).count();
            assert!(nonempty <= 2);
        }
    }

    #[test]
    fn slice_rows_rebases_and_preserves_values() {
        let mut coo = Coo::new(5, 4);
        coo.push(0, 0, 1.0);
        coo.push(1, 2, 2.0);
        coo.push(2, 1, 3.0);
        coo.push(2, 3, 4.0);
        coo.push(4, 0, 5.0);
        let csr = coo.to_csr();
        let s = slice_rows(&csr, 1..3);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.n_cols(), 4);
        assert_eq!(s.row_ptr(), &[0, 1, 3]);
        assert_eq!(s.col_idx(), &[2, 1, 3]);
        assert_eq!(s.vals(), &[2.0, 3.0, 4.0]);
        // Empty slice is a valid 0-row matrix.
        let e = slice_rows(&csr, 3..3);
        assert_eq!(e.n_rows(), 0);
        assert_eq!(e.nnz(), 0);
    }

    #[test]
    fn imbalance_of_uniform_rows_is_near_one() {
        let row_nnz = vec![7usize; 64];
        for m in [PartitionMethod::Stripe, PartitionMethod::Bisect] {
            let plan = ShardPlan::new(&row_nnz, 4, 1, m);
            assert!((plan.imbalance(&row_nnz) - 1.0).abs() < 1e-12);
        }
    }
}
