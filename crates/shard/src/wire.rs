//! Framed length-prefixed transport and the little-endian codec.
//!
//! Every message on a coordinator↔worker socket is one frame:
//!
//! ```text
//! ┌─────────┬──────────────────┬──────────────┐
//! │ tag: u8 │ len: u64 (LE)    │ payload[len] │
//! └─────────┴──────────────────┴──────────────┘
//! ```
//!
//! Tags identify the [`crate::protocol::Msg`] variant; payloads are
//! fixed-layout little-endian scalars and arrays (no self-describing
//! encoding — both ends are the same binary, and the fixed layout keeps
//! the hot vectors a single `memcpy` each way). `len` is bounded by
//! [`MAX_FRAME`] so a corrupt header fails fast instead of allocating
//! terabytes.
//!
//! Byte counts flow through [`Conn`], which both sides use to report
//! traffic (the `shard_bytes_tx` / `shard_bytes_rx` trace counters and
//! the `-- shard` report columns).

use std::io::{self, Read, Write};

/// Upper bound on a frame payload (16 GiB): large enough for any shard
/// this suite assembles, small enough to reject corrupt headers.
pub const MAX_FRAME: u64 = 1 << 34;

/// Bytes added to every payload by the frame header.
pub const FRAME_OVERHEAD: u64 = 1 + 8;

/// Write one frame; returns the total bytes put on the wire.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<u64> {
    let mut header = [0u8; 9];
    header[0] = tag;
    header[1..9].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(FRAME_OVERHEAD + payload.len() as u64)
}

/// Read one frame; returns `(tag, payload, bytes read)`.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>, u64)> {
    let mut header = [0u8; 9];
    r.read_exact(&mut header)?;
    let tag = header[0];
    let len = u64::from_le_bytes(header[1..9].try_into().expect("9-byte header"));
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((tag, payload, FRAME_OVERHEAD + len))
}

/// A framed connection that tallies traffic in both directions.
#[derive(Debug)]
pub struct Conn<S> {
    stream: S,
    /// Bytes written to the stream (headers included).
    pub bytes_tx: u64,
    /// Bytes read from the stream (headers included).
    pub bytes_rx: u64,
}

impl<S: Read + Write> Conn<S> {
    pub fn new(stream: S) -> Conn<S> {
        Conn {
            stream,
            bytes_tx: 0,
            bytes_rx: 0,
        }
    }

    /// Send one frame, tallying the bytes.
    pub fn send(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        self.bytes_tx += write_frame(&mut self.stream, tag, payload)?;
        Ok(())
    }

    /// Receive one frame, tallying the bytes.
    pub fn recv(&mut self) -> io::Result<(u8, Vec<u8>)> {
        let (tag, payload, n) = read_frame(&mut self.stream)?;
        self.bytes_rx += n;
        Ok((tag, payload))
    }
}

/// Little-endian payload encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn u64(&mut self, v: u64) -> &mut Enc {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// A `[u64]` slice, length-prefixed.
    pub fn u64s(&mut self, vs: &[u64]) -> &mut Enc {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// A `[u32]` slice, length-prefixed.
    pub fn u32s(&mut self, vs: &[u32]) -> &mut Enc {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// An `[f64]` slice, length-prefixed. Bit-exact: values round-trip
    /// through `to_bits`, so NaN payloads and signed zeros survive.
    pub fn f64s(&mut self, vs: &[f64]) -> &mut Enc {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self
    }

    /// A UTF-8 string, length-prefixed.
    pub fn str(&mut self, s: &str) -> &mut Enc {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    pub fn finish(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

fn bad(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed frame: {what}"),
    )
}

/// Little-endian payload decoder (the inverse of [`Enc`]).
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(bad("truncated payload"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    pub fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn len_prefix(&mut self, elem_bytes: usize) -> io::Result<usize> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| bad("length overflows usize"))?;
        if n.checked_mul(elem_bytes).is_none_or(|b| b > self.buf.len()) {
            return Err(bad("array length exceeds payload"));
        }
        Ok(n)
    }

    pub fn u64s(&mut self) -> io::Result<Vec<u64>> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    pub fn u32s(&mut self) -> io::Result<Vec<u32>> {
        let n = self.len_prefix(4)?;
        (0..n)
            .map(|_| {
                let b = self.take(4)?;
                Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
            })
            .collect()
    }

    pub fn f64s(&mut self) -> io::Result<Vec<f64>> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| Ok(f64::from_bits(self.u64()?))).collect()
    }

    pub fn str(&mut self) -> io::Result<String> {
        let n = self.len_prefix(1)?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| bad("non-UTF-8 string"))
    }

    /// Fails unless the whole payload was consumed — catches layout
    /// drift between encoder and decoder.
    pub fn finish(self) -> io::Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(bad("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, 7, b"hello").unwrap();
        assert_eq!(n, FRAME_OVERHEAD + 5);
        let (tag, payload, read) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!((tag, payload.as_slice()), (7, b"hello".as_slice()));
        assert_eq!(read, n);
    }

    #[test]
    fn oversize_frame_rejected() {
        let mut buf = vec![1u8];
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn codec_round_trip_bit_exact() {
        let f = [0.5, -0.0, f64::NAN, 1.0e-308, f64::INFINITY];
        let payload = Enc::new()
            .u64(42)
            .u64s(&[1, 2, 3])
            .u32s(&[9, 8])
            .f64s(&f)
            .str("cscv")
            .finish();
        let mut d = Dec::new(&payload);
        assert_eq!(d.u64().unwrap(), 42);
        assert_eq!(d.u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.u32s().unwrap(), vec![9, 8]);
        let back = d.f64s().unwrap();
        for (a, b) in back.iter().zip(&f) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exact f64 round trip");
        }
        assert_eq!(d.str().unwrap(), "cscv");
        d.finish().unwrap();
    }

    #[test]
    fn decoder_rejects_lying_lengths() {
        // Claims 1000 f64s but carries none.
        let payload = Enc::new().u64(1000).finish();
        let mut d = Dec::new(&payload);
        assert!(d.f64s().is_err());
        // Trailing garbage is caught by finish().
        let payload = Enc::new().u64(1).u64(7).finish();
        let mut d = Dec::new(&payload);
        assert_eq!(d.u64().unwrap(), 1);
        assert!(d.finish().is_err());
    }

    #[test]
    fn conn_tallies_both_directions() {
        // A loopback pair over in-memory pipes via UnixStream.
        let (a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut ca = Conn::new(a);
        let mut cb = Conn::new(b);
        ca.send(3, &[1, 2, 3, 4]).unwrap();
        let (tag, payload) = cb.recv().unwrap();
        assert_eq!(tag, 3);
        assert_eq!(payload, vec![1, 2, 3, 4]);
        assert_eq!(ca.bytes_tx, FRAME_OVERHEAD + 4);
        assert_eq!(cb.bytes_rx, FRAME_OVERHEAD + 4);
    }
}
