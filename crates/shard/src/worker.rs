//! The worker side: own one shard, answer collectives.
//!
//! A worker receives its shard as a rebased CSR ([`crate::protocol::Msg::Matrix`]),
//! builds the best executor the shard admits, and then answers the
//! coordinator's collectives until told to shut down. Executor choice:
//!
//! * **View-aligned shard** (`n_views > 0` in the Matrix message, i.e.
//!   the shard's rows are whole sinogram views): convert to CSC and
//!   build a [`CscvExec`] through `CscvExec::auto` — the consult-only
//!   tuned path from `cscv-tune`, which reuses any persisted tuning
//!   cache (`CSCV_TUNE_CACHE`) and degrades to the static heuristic on
//!   a miss. Forward and adjoint both run the CSCV kernels.
//! * **Anything else** (non-aligned boundaries, empty shards): the
//!   tuned CSR executor for the forward product and a serial
//!   scatter loop for the adjoint.
//!
//! Determinism: the CSCV adjoint is tile-disjoint (each column written
//! by exactly one thread, fixed in-tile order) and the CSR adjoint is
//! serial, so a worker's replies depend only on its inputs — never on
//! thread scheduling. That is what lets the coordinator's fixed-order
//! reduction make whole sharded solves reproducible.

use crate::protocol::{hello_flags, Msg};
use crate::wire::Conn;
use cscv_core::layout::ImageShape;
use cscv_core::{CscvExec, ExecConfig, SinoLayout, Variant};
use cscv_sparse::formats::CsrExec;
use cscv_sparse::{Csr, SpmvExecutor, ThreadPool};
use cscv_tune::{AutoExec, Op, TuneCache};
use std::io::{self, Read, Write};
use std::time::Instant;

/// Cumulative per-worker execution statistics, reported via
/// [`Msg::StatsOut`] and surfaced as the `shard.*` trace counters and
/// `-- shard` report columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Nanoseconds spent inside executor calls (build + products).
    pub busy_ns: u64,
    /// Forward products answered.
    pub spmv_calls: u64,
    /// Adjoint products answered.
    pub spmv_t_calls: u64,
}

/// The executor a worker built for its shard.
enum Exec {
    Cscv(Box<CscvExec<f64>>),
    Csr(CsrExec<f64>),
}

/// One shard's compute state: the executor, the retained CSR (adjoint
/// fallback and |A| sums), and the column-support window.
pub struct ShardBackend {
    csr: Csr<f64>,
    exec: Exec,
    /// Column-support window `[col_lo, col_hi)`: the smallest range
    /// containing every column index in the shard. Adjoint replies and
    /// column-sum replies are trimmed to it (the halo window).
    pub col_lo: usize,
    pub col_hi: usize,
    pool: ThreadPool,
}

impl ShardBackend {
    /// Build the backend for a shard. `layout`/`img` describe the
    /// shard's sinogram slice and the image; pass `None` for layout when
    /// the shard is not view-aligned to force the CSR pair.
    pub fn build(
        csr: Csr<f64>,
        layout: Option<SinoLayout>,
        img: ImageShape,
        threads: usize,
        cache: &mut TuneCache,
    ) -> ShardBackend {
        let pool = ThreadPool::new(threads.max(1));
        let (col_lo, col_hi) = col_window(&csr);
        let exec = match layout {
            Some(l)
                if l.n_views > 0
                    && l.n_bins > 0
                    && csr.n_rows() == l.n_views * l.n_bins
                    && img.nx * img.ny == csr.n_cols()
                    && csr.nnz() > 0 =>
            {
                let csc = csr.to_csc();
                // `auto` panics if even the heuristic config cannot
                // build; pre-check so odd shards degrade to CSR instead.
                match CscvExec::from_csc(&csc, l, img, ExecConfig::heuristic(Variant::Z)) {
                    Ok(_) => Exec::Cscv(Box::new(CscvExec::auto(&csc, l, img, Op::Spmv, cache))),
                    Err(_) => Exec::Csr(CsrExec::new(csr.clone())),
                }
            }
            _ => Exec::Csr(CsrExec::new(csr.clone())),
        };
        ShardBackend {
            csr,
            exec,
            col_lo,
            col_hi,
            pool,
        }
    }

    /// Executor name for reports ("CSCV-Z", "MKL-CSR(analog)", …).
    pub fn exec_name(&self) -> String {
        match &self.exec {
            Exec::Cscv(e) => e.name(),
            Exec::Csr(e) => e.name(),
        }
    }

    pub fn n_rows(&self) -> usize {
        self.csr.n_rows()
    }

    pub fn n_cols(&self) -> usize {
        self.csr.n_cols()
    }

    /// Forward product for this shard's rows: `y_s = A_s x`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        // DOMAIN(ShardLocalRow)
        let mut y = vec![0.0; self.csr.n_rows()];
        match &self.exec {
            Exec::Cscv(e) => e.spmv(x, &mut y, &self.pool),
            Exec::Csr(e) => e.spmv(x, &mut y, &self.pool),
        }
        y
    }

    /// Full-width adjoint partial: `x̃ = A_sᵀ y_s` (zeros outside the
    /// column window). Deterministic — see the module docs.
    pub fn spmv_t(&self, y: &[f64]) -> Vec<f64> {
        // DOMAIN(ColId)
        let mut x = vec![0.0; self.csr.n_cols()];
        match &self.exec {
            Exec::Cscv(e) => e.spmv_transpose(y, &mut x, &self.pool),
            Exec::Csr(_) => {
                for (r, &yr) in y[..self.csr.n_rows()].iter().enumerate() {
                    let (cols, vals) = self.csr.row(r);
                    for (c, v) in cols.iter().zip(vals) {
                        x[*c as usize] += v * yr;
                    }
                }
            }
        }
        x
    }

    /// `|A_s|` row sums (one per shard row) and full-width column sums.
    pub fn abs_sums(&self) -> (Vec<f64>, Vec<f64>) {
        // DOMAIN(ShardLocalRow)
        let mut row = vec![0.0; self.csr.n_rows()];
        // DOMAIN(ColId)
        let mut col = vec![0.0; self.csr.n_cols()];
        for (r, row_r) in row.iter_mut().enumerate() {
            let (cols, vals) = self.csr.row(r);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v.abs();
                col[*c as usize] += v.abs();
            }
            *row_r = acc;
        }
        (row, col)
    }
}

/// Smallest `[lo, hi)` containing every column index (0..0 when empty).
fn col_window(csr: &Csr<f64>) -> (usize, usize) {
    let mut lo = usize::MAX;
    let mut hi = 0usize;
    for &c in csr.col_idx() {
        lo = lo.min(c as usize);
        hi = hi.max(c as usize + 1);
    }
    if lo > hi {
        (0, 0)
    } else {
        (lo, hi)
    }
}

fn proto_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("protocol: {what}"))
}

/// Worker-side trace streaming state: which slice of the registry this
/// worker may drain, the flush cadence, and the flush sequence number.
///
/// In-process workers (`Launch::Threads`) share one registry with the
/// coordinator and every sibling, so they stream only their own serve
/// thread's buffer; process workers own their registry and stream all of
/// it (serve thread + pool threads). Entirely inert in untraced builds.
struct TraceStream {
    full_registry: bool,
    seq: u64,
    cursor: cscv_trace::span::EventCursor,
    local_cursor: cscv_trace::span::LocalEventCursor,
    last_flush: Instant,
    interval: std::time::Duration,
}

impl TraceStream {
    fn new(flags: u64) -> TraceStream {
        // Flush cadence for periodic telemetry during long solves;
        // override with CSCV_SHARD_FLUSH_MS (0 = flush before every
        // reply, useful in tests).
        let ms = std::env::var("CSCV_SHARD_FLUSH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(250);
        TraceStream {
            full_registry: flags & hello_flags::STREAM_FULL_REGISTRY != 0,
            seq: 0,
            cursor: cscv_trace::span::EventCursor::default(),
            local_cursor: cscv_trace::span::LocalEventCursor::default(),
            last_flush: Instant::now(),
            interval: std::time::Duration::from_millis(ms),
        }
    }

    fn due(&self) -> bool {
        cscv_trace::ENABLED && self.last_flush.elapsed() >= self.interval
    }

    /// Send one [`Msg::Trace`] frame: the cumulative counter snapshot
    /// plus the NDJSON span/event lines recorded since the last flush.
    /// No-op (zero frames on the wire) in untraced builds.
    fn flush<S: Read + Write>(
        &mut self,
        conn: &mut Conn<S>,
        stats: &WorkerStats,
    ) -> io::Result<()> {
        if !cscv_trace::ENABLED {
            return Ok(());
        }
        let events = if self.full_registry {
            cscv_trace::span::events_since(&mut self.cursor)
        } else {
            cscv_trace::span::local_events_since(&mut self.local_cursor)
        };
        self.seq += 1;
        self.last_flush = Instant::now();
        Msg::Trace {
            seq: self.seq,
            busy_ns: stats.busy_ns,
            bytes_rx: conn.bytes_rx,
            bytes_tx: conn.bytes_tx,
            spmv_calls: stats.spmv_calls,
            spmv_t_calls: stats.spmv_t_calls,
            ndjson: cscv_trace::emit::events_ndjson(&events),
        }
        .send(conn)
    }
}

/// Decode and validate a [`Msg::Matrix`] payload into a CSR plus the
/// optional view-aligned layout.
fn decode_matrix(m: Msg) -> io::Result<(Csr<f64>, Option<SinoLayout>, ImageShape)> {
    let Msg::Matrix {
        n_cols,
        row0: _,
        n_views,
        n_bins,
        nx,
        ny,
        row_ptr,
        col_idx,
        vals,
    } = m
    else {
        return Err(proto_err("expected Matrix"));
    };
    if row_ptr.is_empty() {
        return Err(proto_err("empty row_ptr"));
    }
    if col_idx.len() != vals.len() {
        return Err(proto_err("col_idx/vals length mismatch"));
    }
    if row_ptr.windows(2).any(|w| w[0] > w[1]) || row_ptr[0] != 0 {
        return Err(proto_err("row_ptr not monotone from 0"));
    }
    if *row_ptr.last().expect("nonempty") != col_idx.len() as u64 {
        return Err(proto_err("row_ptr/nnz mismatch"));
    }
    let n_cols = n_cols as usize;
    if col_idx.iter().any(|&c| c as usize >= n_cols) {
        return Err(proto_err("column index out of range"));
    }
    let csr = Csr::from_parts(
        row_ptr.len() - 1,
        n_cols,
        row_ptr.iter().map(|&p| p as usize).collect(),
        col_idx,
        vals,
    );
    let layout = (n_views > 0 && n_bins > 0).then_some(SinoLayout {
        n_views: n_views as usize,
        n_bins: n_bins as usize,
    });
    let img = ImageShape {
        nx: nx as usize,
        ny: ny as usize,
    };
    Ok((csr, layout, img))
}

/// Serve one coordinator connection to completion: handshake, build,
/// then answer collectives until [`Msg::Shutdown`]. Returns the final
/// stats on clean shutdown.
pub fn serve<S: Read + Write>(
    conn: &mut Conn<S>,
    cache: &mut TuneCache,
) -> io::Result<WorkerStats> {
    let Msg::Hello {
        threads,
        trace_id,
        flags,
        ..
    } = Msg::recv(conn)?
    else {
        return Err(proto_err("expected Hello"));
    };
    let mut trace = TraceStream::new(flags);
    // Clock-offset handshake: echo probes until the Matrix arrives. The
    // coordinator only sends probes in trace builds, so this loop is a
    // straight passthrough when tracing is off.
    let matrix = loop {
        match Msg::recv(conn)? {
            Msg::ClockProbe { seq, t_coord_ns } => {
                Msg::ClockAck {
                    seq,
                    t_coord_ns,
                    t_worker_ns: cscv_trace::span::now_ns(),
                }
                .send(conn)?;
            }
            m => break m,
        }
    };
    let t0 = Instant::now();
    let (csr, layout, img) = decode_matrix(matrix)?;
    let mut stats = WorkerStats::default();
    let backend = {
        let _s = cscv_trace::span::enter_ctx("shard.worker.build", 0, trace_id);
        ShardBackend::build(csr, layout, img, threads as usize, cache)
    };
    stats.busy_ns += t0.elapsed().as_nanos() as u64;
    Msg::MatrixAck {
        col_lo: backend.col_lo as u64,
        col_hi: backend.col_hi as u64,
        exec: backend.exec_name(),
        pid: std::process::id() as u64,
    }
    .send(conn)?;

    loop {
        match Msg::recv(conn)? {
            Msg::Spmv { span, x } => {
                if x.len() != backend.n_cols() {
                    Msg::Err {
                        msg: "spmv input width mismatch".into(),
                    }
                    .send(conn)?;
                    return Err(proto_err("spmv input width mismatch"));
                }
                let t0 = Instant::now();
                let y = {
                    let _s = cscv_trace::span::enter_ctx("shard.worker.spmv", 0, span);
                    backend.spmv(&x)
                };
                stats.busy_ns += t0.elapsed().as_nanos() as u64;
                stats.spmv_calls += 1;
                if trace.due() {
                    trace.flush(conn, &stats)?;
                }
                Msg::SpmvOut { y }.send(conn)?;
            }
            Msg::SpmvT { span, y } => {
                if y.len() != backend.n_rows() {
                    Msg::Err {
                        msg: "spmv_t input height mismatch".into(),
                    }
                    .send(conn)?;
                    return Err(proto_err("spmv_t input height mismatch"));
                }
                let t0 = Instant::now();
                let x = {
                    let _s = cscv_trace::span::enter_ctx("shard.worker.spmv_t", 0, span);
                    backend.spmv_t(&y)
                };
                stats.busy_ns += t0.elapsed().as_nanos() as u64;
                stats.spmv_t_calls += 1;
                if trace.due() {
                    trace.flush(conn, &stats)?;
                }
                Msg::SpmvTOut {
                    col_lo: backend.col_lo as u64,
                    partial: x[backend.col_lo..backend.col_hi].to_vec(),
                }
                .send(conn)?;
            }
            Msg::AbsSums { span } => {
                let t0 = Instant::now();
                let (row, col) = {
                    let _s = cscv_trace::span::enter_ctx("shard.worker.abs_sums", 0, span);
                    backend.abs_sums()
                };
                stats.busy_ns += t0.elapsed().as_nanos() as u64;
                if trace.due() {
                    trace.flush(conn, &stats)?;
                }
                Msg::AbsSumsOut {
                    row,
                    col_lo: backend.col_lo as u64,
                    col: col[backend.col_lo..backend.col_hi].to_vec(),
                }
                .send(conn)?;
            }
            Msg::Stats { span: _ } => {
                Msg::StatsOut {
                    busy_ns: stats.busy_ns,
                    bytes_rx: conn.bytes_rx,
                    bytes_tx: conn.bytes_tx,
                    spmv_calls: stats.spmv_calls,
                    spmv_t_calls: stats.spmv_t_calls,
                }
                .send(conn)?;
            }
            Msg::Shutdown { span: _ } => {
                // Final flush: everything recorded since the last
                // periodic frame, so the coordinator's merge is complete.
                trace.flush(conn, &stats)?;
                Msg::ShutdownAck.send(conn)?;
                return Ok(stats);
            }
            other => {
                let msg = format!("unexpected message {other:?}");
                Msg::Err { msg: msg.clone() }.send(conn)?;
                return Err(proto_err(&msg));
            }
        }
    }
}

/// The tuning cache workers consult: `CSCV_TUNE_CACHE` when set (shared
/// with the coordinator so every process resolves the same config —
/// part of the `workers = 1` byte-identity story), else in-memory.
pub fn env_cache() -> TuneCache {
    match std::env::var_os("CSCV_TUNE_CACHE") {
        Some(p) => TuneCache::load(std::path::Path::new(&p)),
        None => TuneCache::in_memory(),
    }
}

/// Worker-process entry point: connect to the coordinator's Unix socket
/// and serve until shutdown. This is what
/// `cscv-xtask shard-worker --socket PATH` runs.
pub fn run_process(socket: &str) -> io::Result<()> {
    let stream = std::os::unix::net::UnixStream::connect(socket)?;
    let mut conn = Conn::new(stream);
    let mut cache = env_cache();
    serve(&mut conn, &mut cache)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscv_sparse::Coo;

    fn toy_csr() -> Csr<f64> {
        let mut coo = Coo::new(4, 6);
        coo.push(0, 1, 2.0);
        coo.push(1, 2, -1.0);
        coo.push(2, 1, 0.5);
        coo.push(2, 4, 3.0);
        coo.push(3, 4, 1.0);
        coo.to_csr()
    }

    #[test]
    fn col_window_trims_to_support() {
        assert_eq!(col_window(&toy_csr()), (1, 5));
        let empty: Csr<f64> = Coo::new(3, 9).to_csr();
        assert_eq!(col_window(&empty), (0, 0));
    }

    #[test]
    fn csr_backend_products_match_reference() {
        let csr = toy_csr();
        let img = ImageShape { nx: 3, ny: 2 };
        let mut cache = TuneCache::in_memory();
        let b = ShardBackend::build(csr.clone(), None, img, 2, &mut cache);
        assert_eq!(b.exec_name(), "MKL-CSR(analog)");

        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut y_ref = vec![0.0; 4];
        csr.spmv_serial(&x, &mut y_ref);
        assert_eq!(b.spmv(&x), y_ref);

        let y = [1.0, -2.0, 0.25, 4.0];
        let xt = b.spmv_t(&y);
        let mut xt_ref = vec![0.0; 6];
        for r in 0..4 {
            let (cols, vals) = csr.row(r);
            for (c, v) in cols.iter().zip(vals) {
                xt_ref[*c as usize] += v * y[r];
            }
        }
        assert_eq!(xt, xt_ref);

        let (rs, cs) = b.abs_sums();
        assert_eq!(rs, vec![2.0, 1.0, 3.5, 1.0]);
        assert_eq!(cs[1], 2.5);
        assert_eq!(cs[4], 4.0);
    }

    /// Receive the next *reply*, skipping any interleaved periodic
    /// Trace flushes (trace builds may emit them before a reply).
    fn recv_reply<S: Read + Write>(conn: &mut Conn<S>) -> Msg {
        loop {
            match Msg::recv(conn).unwrap() {
                Msg::Trace { .. } => continue,
                m => return m,
            }
        }
    }

    #[test]
    fn serve_answers_a_full_session() {
        use std::os::unix::net::UnixStream;
        let (a, b) = UnixStream::pair().unwrap();
        let worker = std::thread::spawn(move || {
            let mut conn = Conn::new(b);
            let mut cache = TuneCache::in_memory();
            serve(&mut conn, &mut cache).unwrap()
        });

        let mut conn = Conn::new(a);
        Msg::Hello {
            shard: 0,
            n_shards: 1,
            threads: 1,
            trace_id: 0,
            flags: 0,
        }
        .send(&mut conn)
        .unwrap();
        let csr = toy_csr();
        Msg::Matrix {
            n_cols: 6,
            row0: 0,
            n_views: 0,
            n_bins: 0,
            nx: 3,
            ny: 2,
            row_ptr: csr.row_ptr().iter().map(|&p| p as u64).collect(),
            col_idx: csr.col_idx().to_vec(),
            vals: csr.vals().to_vec(),
        }
        .send(&mut conn)
        .unwrap();
        let Msg::MatrixAck { col_lo, col_hi, .. } = recv_reply(&mut conn) else {
            panic!("expected MatrixAck");
        };
        assert_eq!((col_lo, col_hi), (1, 5));

        Msg::Spmv {
            span: 0,
            x: vec![1.0; 6],
        }
        .send(&mut conn)
        .unwrap();
        let Msg::SpmvOut { y } = recv_reply(&mut conn) else {
            panic!("expected SpmvOut");
        };
        assert_eq!(y, vec![2.0, -1.0, 3.5, 1.0]);

        Msg::SpmvT {
            span: 0,
            y: vec![1.0; 4],
        }
        .send(&mut conn)
        .unwrap();
        let Msg::SpmvTOut { col_lo, partial } = recv_reply(&mut conn) else {
            panic!("expected SpmvTOut");
        };
        assert_eq!(col_lo, 1);
        assert_eq!(partial, vec![2.5, -1.0, 0.0, 4.0]);

        Msg::Stats { span: 0 }.send(&mut conn).unwrap();
        let Msg::StatsOut {
            spmv_calls,
            spmv_t_calls,
            ..
        } = recv_reply(&mut conn)
        else {
            panic!("expected StatsOut");
        };
        assert_eq!((spmv_calls, spmv_t_calls), (1, 1));

        Msg::Shutdown { span: 0 }.send(&mut conn).unwrap();
        assert!(matches!(recv_reply(&mut conn), Msg::ShutdownAck));
        let stats = worker.join().unwrap();
        assert_eq!(stats.spmv_calls, 1);
    }

    #[test]
    fn malformed_matrix_is_rejected() {
        let m = Msg::Matrix {
            n_cols: 2,
            row0: 0,
            n_views: 0,
            n_bins: 0,
            nx: 2,
            ny: 1,
            row_ptr: vec![0, 1],
            col_idx: vec![5], // out of range for n_cols = 2
            vals: vec![1.0],
        };
        assert!(decode_matrix(m).is_err());
    }
}
