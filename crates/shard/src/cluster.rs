//! The coordinator side: launch workers, run collectives, merge.
//!
//! A [`Cluster`] owns one framed connection per worker. Every collective
//! is issued to all workers before any reply is read (workers compute
//! concurrently), and replies are always drained in **shard order**, so
//! the data flow is a function of the partition alone:
//!
//! * [`Cluster::spmv`] — broadcast `x`, place each shard's contiguous
//!   `y` rows. Placement only, no floating-point merge: bitwise equal to
//!   the single-process product for any worker count.
//! * [`Cluster::spmv_t`] — scatter `y` slices, expand each worker's
//!   halo-trimmed partial to full width, and merge with
//!   [`tree_reduce`] — a fixed-order pairwise reduction whose addition
//!   order depends only on shard indices, never on arrival timing.
//!   One shard degenerates to a copy (byte-identical to local).
//!
//! Two launch modes share the protocol code path end to end:
//! [`Launch::Threads`] drives in-process workers over socketpairs (fast,
//! used by the equivalence tests), [`Launch::Process`] spawns real
//! worker processes (`cscv-xtask shard-worker`) against a listening
//! Unix socket — the mode the `shard-smoke` CI job gates.

use crate::plan::{slice_rows, ShardPlan};
use crate::protocol::Msg;
use crate::wire::Conn;
use crate::worker;
use cscv_core::layout::ImageShape;
use cscv_core::SinoLayout;
use cscv_sparse::Csr;
use std::io;
use std::ops::Range;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How worker endpoints are brought up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Launch {
    /// In-process worker threads over socketpairs. Exercises the full
    /// protocol (framing, trimming, reduction) without process spawns.
    Threads,
    /// Spawn `cmd` once per shard with `--socket <path>` appended; each
    /// child connects back to the coordinator's listening socket. `cmd`
    /// is typically `[current_exe, "shard-worker"]`.
    Process { cmd: Vec<String> },
}

/// Per-worker figures for reports (`-- shard` table / NDJSON rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    pub shard: usize,
    pub rows: Range<usize>,
    pub nnz: usize,
    /// Executor the worker built ("CSCV-Z", "MKL-CSR(analog)", …).
    pub exec: String,
    /// Column-support (halo) window.
    pub col_lo: usize,
    pub col_hi: usize,
    pub busy_ns: u64,
    pub spmv_calls: u64,
    pub spmv_t_calls: u64,
}

/// Cluster-wide traffic and merge-cost figures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterStats {
    pub workers: Vec<WorkerReport>,
    /// Coordinator-side bytes written across all connections.
    pub bytes_tx: u64,
    /// Coordinator-side bytes read across all connections.
    pub bytes_rx: u64,
    /// Nanoseconds spent in [`tree_reduce`] merges.
    pub reduce_ns: u64,
    /// Wall-clock covered by the cluster, connect to shutdown.
    pub wall_ns: u64,
}

/// Fixed-order pairwise tree reduction: fold `bufs[i + s]` into
/// `bufs[i]` for strides `s = 1, 2, 4, …` — the addition order is a
/// function of the indices alone, so the merged vector is identical
/// across runs regardless of how replies arrived. A single buffer is
/// returned untouched (no floating-point op at all).
pub fn tree_reduce(mut bufs: Vec<Vec<f64>>) -> Vec<f64> {
    assert!(!bufs.is_empty(), "tree_reduce needs at least one buffer");
    let n = bufs.len();
    let mut s = 1;
    while s < n {
        let mut i = 0;
        while i + s < n {
            let (head, tail) = bufs.split_at_mut(i + s);
            let dst = &mut head[i];
            let src = &tail[0];
            debug_assert_eq!(dst.len(), src.len());
            for (d, v) in dst.iter_mut().zip(src) {
                *d += v;
            }
            i += 2 * s;
        }
        s *= 2;
    }
    bufs.swap_remove(0)
}

/// Process-global sequence for unique socket paths (pid alone is not
/// enough: one process may start many clusters).
// ATOMIC(statistic): unique-id allocator — fetch_add only needs
// uniqueness, never cross-thread ordering.
static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

enum Endpoint {
    Thread {
        handle: std::thread::JoinHandle<()>,
        // ATOMIC(flag): the worker publishes "serve() completed" with a
        // Release store; the coordinator's Acquire load after join()
        // observes the worker's final writes, distinguishing a clean
        // protocol shutdown from a thread that bailed mid-serve.
        served: Arc<AtomicBool>,
    },
    Process(Child),
}

/// A running shard cluster: one connection per worker, replies drained
/// in shard order.
pub struct Cluster {
    conns: Vec<Conn<UnixStream>>,
    endpoints: Vec<Endpoint>,
    ranges: Vec<Range<usize>>,
    shard_nnz: Vec<usize>,
    windows: Vec<(usize, usize)>,
    execs: Vec<String>,
    n_rows: usize,
    n_cols: usize,
    reduce_ns: u64,
    started: Instant,
    socket_path: Option<PathBuf>,
}

/// Collective-input dimension check: a mismatched vector is the
/// caller's bug, but reported as an error (not a panic or a poisoned
/// worker) so a driver can surface it and keep the cluster usable.
fn check_len(what: &str, got: usize, want: usize) -> io::Result<()> {
    if got == want {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{what}: length {got}, expected {want}"),
        ))
    }
}

impl Cluster {
    /// Partition `csr` by `plan`, bring up one worker per shard via
    /// `launch`, ship each its sub-matrix, and wait for every
    /// [`Msg::MatrixAck`]. `layout` is the full sinogram layout; a shard
    /// is handed a view-aligned sub-layout iff both of its boundaries
    /// fall on a multiple of `layout.n_bins` — always the case when
    /// `plan.block_rows == layout.n_bins`, and trivially for a one-shard
    /// plan (otherwise that worker uses the CSR pair).
    pub fn start(
        csr: &Csr<f64>,
        plan: &ShardPlan,
        layout: SinoLayout,
        img: ImageShape,
        threads_per_worker: usize,
        launch: &Launch,
    ) -> io::Result<Cluster> {
        let started = Instant::now();
        let n = plan.n_shards();
        assert!(n >= 1, "cluster needs at least one shard");

        let (mut conns, endpoints, socket_path) = connect_all(n, launch)?;
        let mut shard_nnz = Vec::with_capacity(n);
        for (i, conn) in conns.iter_mut().enumerate() {
            let range = plan.ranges[i].clone();
            let shard = slice_rows(csr, range.clone());
            shard_nnz.push(shard.nnz());
            Msg::Hello {
                shard: i as u64,
                n_shards: n as u64,
                threads: threads_per_worker as u64,
            }
            .send(conn)?;
            let view_aligned = layout.n_bins > 0
                && range.start.is_multiple_of(layout.n_bins)
                && range.end.is_multiple_of(layout.n_bins);
            let (n_views, n_bins) = if view_aligned {
                (range.len() / layout.n_bins, layout.n_bins)
            } else {
                (0, 0)
            };
            Msg::Matrix {
                n_cols: csr.n_cols() as u64,
                row0: range.start as u64,
                n_views: n_views as u64,
                n_bins: n_bins as u64,
                nx: img.nx as u64,
                ny: img.ny as u64,
                row_ptr: shard.row_ptr().iter().map(|&p| p as u64).collect(),
                col_idx: shard.col_idx().to_vec(),
                vals: shard.vals().to_vec(),
            }
            .send(conn)?;
        }
        let mut windows = Vec::with_capacity(n);
        let mut execs = Vec::with_capacity(n);
        for conn in conns.iter_mut() {
            let Msg::MatrixAck {
                col_lo,
                col_hi,
                exec,
            } = Msg::recv(conn)?
            else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected MatrixAck",
                ));
            };
            windows.push((col_lo as usize, col_hi as usize));
            execs.push(exec);
        }
        Ok(Cluster {
            conns,
            endpoints,
            ranges: plan.ranges.clone(),
            shard_nnz,
            windows,
            execs,
            n_rows: csr.n_rows(),
            n_cols: csr.n_cols(),
            reduce_ns: 0,
            started,
            socket_path,
        })
    }

    pub fn n_workers(&self) -> usize {
        self.conns.len()
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Executor names the workers reported, in shard order.
    pub fn exec_names(&self) -> &[String] {
        &self.execs
    }

    /// Forward collective `y = A x`: broadcast, then place each shard's
    /// contiguous rows. No merge arithmetic.
    pub fn spmv(&mut self, x: &[f64], y: &mut [f64]) -> io::Result<()> {
        check_len("spmv x", x.len(), self.n_cols)?;
        check_len("spmv y", y.len(), self.n_rows)?;
        for conn in self.conns.iter_mut() {
            Msg::Spmv { x: x.to_vec() }.send(conn)?;
        }
        for (i, conn) in self.conns.iter_mut().enumerate() {
            let Msg::SpmvOut { y: part } = Msg::recv(conn)? else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected SpmvOut",
                ));
            };
            let range = self.ranges[i].clone();
            if part.len() != range.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "SpmvOut length mismatch",
                ));
            }
            y[range].copy_from_slice(&part);
        }
        Ok(())
    }

    /// Adjoint collective `x = Aᵀ y`: scatter row slices, expand the
    /// halo-trimmed partials, merge in fixed shard order.
    pub fn spmv_t(&mut self, y: &[f64], x: &mut [f64]) -> io::Result<()> {
        check_len("spmv_t y", y.len(), self.n_rows)?;
        check_len("spmv_t x", x.len(), self.n_cols)?;
        for (i, conn) in self.conns.iter_mut().enumerate() {
            Msg::SpmvT {
                y: y[self.ranges[i].clone()].to_vec(),
            }
            .send(conn)?;
        }
        let mut partials = Vec::with_capacity(self.conns.len());
        for (i, conn) in self.conns.iter_mut().enumerate() {
            let Msg::SpmvTOut { col_lo, partial } = Msg::recv(conn)? else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected SpmvTOut",
                ));
            };
            let (lo, hi) = self.windows[i];
            if col_lo as usize != lo || partial.len() != hi - lo {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "SpmvTOut window mismatch",
                ));
            }
            let mut full = vec![0.0; self.n_cols];
            full[lo..hi].copy_from_slice(&partial);
            partials.push(full);
        }
        let t0 = Instant::now();
        let merged = tree_reduce(partials);
        self.reduce_ns += t0.elapsed().as_nanos() as u64;
        x.copy_from_slice(&merged);
        Ok(())
    }

    /// `|A|` row and column sums: rows by placement, columns by the same
    /// fixed-order reduction as the adjoint.
    pub fn abs_sums(&mut self) -> io::Result<(Vec<f64>, Vec<f64>)> {
        for conn in self.conns.iter_mut() {
            Msg::AbsSums.send(conn)?;
        }
        let mut rows = vec![0.0; self.n_rows];
        let mut partials = Vec::with_capacity(self.conns.len());
        for (i, conn) in self.conns.iter_mut().enumerate() {
            let Msg::AbsSumsOut { row, col_lo, col } = Msg::recv(conn)? else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected AbsSumsOut",
                ));
            };
            let range = self.ranges[i].clone();
            if row.len() != range.len() || col_lo as usize != self.windows[i].0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "AbsSumsOut shape mismatch",
                ));
            }
            rows[range].copy_from_slice(&row);
            let (lo, hi) = self.windows[i];
            if col.len() != hi - lo {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "AbsSumsOut window mismatch",
                ));
            }
            let mut full = vec![0.0; self.n_cols];
            full[lo..hi].copy_from_slice(&col);
            partials.push(full);
        }
        let t0 = Instant::now();
        let cols = tree_reduce(partials);
        self.reduce_ns += t0.elapsed().as_nanos() as u64;
        Ok((rows, cols))
    }

    /// Snapshot worker and traffic statistics (workers keep serving).
    pub fn stats(&mut self) -> io::Result<ClusterStats> {
        for conn in self.conns.iter_mut() {
            Msg::Stats.send(conn)?;
        }
        let mut workers = Vec::with_capacity(self.conns.len());
        for (i, conn) in self.conns.iter_mut().enumerate() {
            let Msg::StatsOut {
                busy_ns,
                spmv_calls,
                spmv_t_calls,
                ..
            } = Msg::recv(conn)?
            else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected StatsOut",
                ));
            };
            workers.push(WorkerReport {
                shard: i,
                rows: self.ranges[i].clone(),
                nnz: self.shard_nnz[i],
                exec: self.execs[i].clone(),
                col_lo: self.windows[i].0,
                col_hi: self.windows[i].1,
                busy_ns,
                spmv_calls,
                spmv_t_calls,
            });
        }
        Ok(ClusterStats {
            workers,
            bytes_tx: self.conns.iter().map(|c| c.bytes_tx).sum(),
            bytes_rx: self.conns.iter().map(|c| c.bytes_rx).sum(),
            reduce_ns: self.reduce_ns,
            wall_ns: self.started.elapsed().as_nanos() as u64,
        })
    }

    /// Collect final statistics, shut every worker down cleanly, and
    /// reap the endpoints. Also publishes the `shard.*` trace counters
    /// (traced builds), exactly once per cluster.
    pub fn shutdown(mut self) -> io::Result<ClusterStats> {
        let stats = self.stats()?;
        for conn in self.conns.iter_mut() {
            Msg::Shutdown.send(conn)?;
        }
        for conn in self.conns.iter_mut() {
            if !matches!(Msg::recv(conn)?, Msg::ShutdownAck) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected ShutdownAck",
                ));
            }
        }
        for ep in self.endpoints.drain(..) {
            match ep {
                Endpoint::Thread { handle, served } => {
                    handle
                        .join()
                        .map_err(|_| io::Error::other("worker thread panicked"))?;
                    if !served.load(Ordering::Acquire) {
                        return Err(io::Error::other(
                            "worker thread exited without completing serve()",
                        ));
                    }
                }
                Endpoint::Process(mut child) => {
                    let status = child.wait()?;
                    if !status.success() {
                        return Err(io::Error::other(format!("worker exited with {status}")));
                    }
                }
            }
        }
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
        let final_bytes_tx: u64 = self.conns.iter().map(|c| c.bytes_tx).sum();
        let final_bytes_rx: u64 = self.conns.iter().map(|c| c.bytes_rx).sum();
        if cscv_trace::ENABLED {
            use cscv_trace::counters::{add, Counter};
            add(Counter::ShardBytesTx, final_bytes_tx);
            add(Counter::ShardBytesRx, final_bytes_rx);
            add(Counter::ShardReduceNs, self.reduce_ns);
            add(
                Counter::ShardWorkerBusyNs,
                stats.workers.iter().map(|w| w.busy_ns).sum(),
            );
        }
        Ok(ClusterStats {
            bytes_tx: final_bytes_tx,
            bytes_rx: final_bytes_rx,
            wall_ns: self.started.elapsed().as_nanos() as u64,
            ..stats
        })
    }
}

impl Drop for Cluster {
    /// Best-effort cleanup when `shutdown` was skipped (e.g. a test
    /// failure unwound past it): kill children, drop the socket file.
    fn drop(&mut self) {
        for ep in self.endpoints.drain(..) {
            match ep {
                Endpoint::Thread { .. } => {} // unblocks when its socket drops
                Endpoint::Process(mut child) => {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
        }
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Bring up `n` worker endpoints and return their connections in shard
/// order (accept order defines shard identity for processes).
#[allow(clippy::type_complexity)]
fn connect_all(
    n: usize,
    launch: &Launch,
) -> io::Result<(Vec<Conn<UnixStream>>, Vec<Endpoint>, Option<PathBuf>)> {
    match launch {
        Launch::Threads => {
            let mut conns = Vec::with_capacity(n);
            let mut endpoints = Vec::with_capacity(n);
            for _ in 0..n {
                let (ours, theirs) = UnixStream::pair()?;
                let served = Arc::new(AtomicBool::new(false));
                let served_w = Arc::clone(&served);
                let handle = std::thread::spawn(move || {
                    let mut conn = Conn::new(theirs);
                    let mut cache = worker::env_cache();
                    // Errors surface on the coordinator side as broken
                    // frames; the thread itself just stops serving.
                    if worker::serve(&mut conn, &mut cache).is_ok() {
                        served_w.store(true, Ordering::Release);
                    }
                });
                endpoints.push(Endpoint::Thread { handle, served });
                conns.push(Conn::new(ours));
            }
            Ok((conns, endpoints, None))
        }
        Launch::Process { cmd } => {
            assert!(!cmd.is_empty(), "process launch needs a command");
            let path = std::env::temp_dir().join(format!(
                "cscv-shard-{}-{}.sock",
                std::process::id(),
                SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)?;
            let mut endpoints = Vec::with_capacity(n);
            for _ in 0..n {
                let child = Command::new(&cmd[0])
                    .args(&cmd[1..])
                    .arg("--socket")
                    .arg(&path)
                    .spawn()?;
                endpoints.push(Endpoint::Process(child));
            }
            let mut conns = Vec::with_capacity(n);
            listener.set_nonblocking(true)?;
            let deadline = Instant::now() + Duration::from_secs(60);
            while conns.len() < n {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        conns.push(Conn::new(stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if Instant::now() > deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "workers did not connect within 60s",
                            ));
                        }
                        // A worker that died before connecting would
                        // hang the accept loop; fail fast instead.
                        for ep in endpoints.iter_mut() {
                            if let Endpoint::Process(child) = ep {
                                if let Some(status) = child.try_wait()? {
                                    return Err(io::Error::other(format!(
                                        "worker exited before connecting: {status}"
                                    )));
                                }
                            }
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok((conns, endpoints, Some(path)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PartitionMethod, ShardPlan};
    use cscv_sparse::Coo;

    #[test]
    fn tree_reduce_is_fixed_order_and_copy_for_one() {
        let a = vec![1.0, 2.0];
        assert_eq!(tree_reduce(vec![a.clone()]), a);
        // Orderings that would differ under naive accumulation still
        // produce the tree's fixed result: ((a+b)+(c+d)).
        let bufs = vec![vec![1e100], vec![-1e100], vec![1.0], vec![-1.0]];
        assert_eq!(tree_reduce(bufs), vec![0.0]);
        // Five buffers: ((a+b)+(c+d)) + e.
        let bufs = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0], vec![5.0]];
        assert_eq!(tree_reduce(bufs), vec![15.0]);
    }

    fn banded_csr(n_rows: usize, n_cols: usize) -> Csr<f64> {
        let mut coo = Coo::new(n_rows, n_cols);
        for r in 0..n_rows {
            for k in 0..3usize {
                let c = (r * 7 + k * 3) % n_cols;
                coo.push(r, c, 1.0 + (r % 5) as f64 * 0.25 + k as f64 * 0.5);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn thread_cluster_matches_serial_products() {
        let csr = banded_csr(48, 30);
        let plan = ShardPlan::new(
            &(0..48).map(|r| csr.row(r).0.len()).collect::<Vec<_>>(),
            3,
            1,
            PartitionMethod::Stripe,
        );
        let layout = SinoLayout {
            n_views: 0,
            n_bins: 0,
        };
        let img = ImageShape { nx: 6, ny: 5 };
        let mut cluster = Cluster::start(&csr, &plan, layout, img, 1, &Launch::Threads).unwrap();
        assert_eq!(cluster.n_workers(), 3);

        let x: Vec<f64> = (0..30).map(|i| (i as f64) * 0.5 - 4.0).collect();
        let mut y = vec![0.0; 48];
        cluster.spmv(&x, &mut y).unwrap();
        let mut y_ref = vec![0.0; 48];
        csr.spmv_serial(&x, &mut y_ref);
        assert_eq!(y, y_ref);

        let yin: Vec<f64> = (0..48).map(|i| ((i % 9) as f64) - 4.0).collect();
        let mut xt = vec![0.0; 30];
        cluster.spmv_t(&yin, &mut xt).unwrap();
        let mut xt_ref = vec![0.0; 30];
        for r in 0..48 {
            let (cols, vals) = csr.row(r);
            for (c, v) in cols.iter().zip(vals) {
                xt_ref[*c as usize] += v * yin[r];
            }
        }
        for (a, b) in xt.iter().zip(&xt_ref) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }

        let (rows, cols) = cluster.abs_sums().unwrap();
        assert_eq!(rows.len(), 48);
        assert_eq!(cols.len(), 30);
        assert!(rows.iter().all(|&v| v > 0.0));

        let stats = cluster.shutdown().unwrap();
        assert_eq!(stats.workers.len(), 3);
        assert!(stats.bytes_tx > 0 && stats.bytes_rx > 0);
        assert_eq!(stats.workers.iter().map(|w| w.spmv_calls).sum::<u64>(), 3);
    }

    #[test]
    fn single_shard_cluster_is_byte_identical_to_backend() {
        let csr = banded_csr(32, 20);
        let plan = ShardPlan::new(&vec![3usize; 32], 1, 1, PartitionMethod::Stripe);
        let img = ImageShape { nx: 5, ny: 4 };
        let layout = SinoLayout {
            n_views: 0,
            n_bins: 0,
        };
        let mut cluster = Cluster::start(&csr, &plan, layout, img, 1, &Launch::Threads).unwrap();
        let mut cache = cscv_tune::TuneCache::in_memory();
        let backend = crate::worker::ShardBackend::build(csr, None, img, 1, &mut cache);

        let y: Vec<f64> = (0..32).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut xt = vec![0.0; 20];
        cluster.spmv_t(&y, &mut xt).unwrap();
        let xt_ref = backend.spmv_t(&y);
        for (a, b) in xt.iter().zip(&xt_ref) {
            assert_eq!(a.to_bits(), b.to_bits(), "one shard must be bitwise equal");
        }
        cluster.shutdown().unwrap();
    }
}
