//! The coordinator side: launch workers, run collectives, merge.
//!
//! A [`Cluster`] owns one framed connection per worker. Every collective
//! is issued to all workers before any reply is read (workers compute
//! concurrently), and replies are always drained in **shard order**, so
//! the data flow is a function of the partition alone:
//!
//! * [`Cluster::spmv`] — broadcast `x`, place each shard's contiguous
//!   `y` rows. Placement only, no floating-point merge: bitwise equal to
//!   the single-process product for any worker count.
//! * [`Cluster::spmv_t`] — scatter `y` slices, expand each worker's
//!   halo-trimmed partial to full width, and merge with
//!   [`tree_reduce`] — a fixed-order pairwise reduction whose addition
//!   order depends only on shard indices, never on arrival timing.
//!   One shard degenerates to a copy (byte-identical to local).
//!
//! Two launch modes share the protocol code path end to end:
//! [`Launch::Threads`] drives in-process workers over socketpairs (fast,
//! used by the equivalence tests), [`Launch::Process`] spawns real
//! worker processes (`cscv-xtask shard-worker`) against a listening
//! Unix socket — the mode the `shard-smoke` CI job gates.
//!
//! **Distributed tracing (trace builds).** The coordinator allocates a
//! cluster-wide trace id at [`Cluster::start`] and a fresh dispatch-span
//! id per collective; workers parent their compute spans to those ids.
//! At connect time a three-probe clock handshake estimates each worker's
//! monotonic-epoch offset (NTP style, minimum-RTT sample wins), and the
//! receive path folds unsolicited [`Msg::Trace`] frames — NDJSON event
//! chunks plus cumulative counter snapshots — into per-worker telemetry
//! state as they arrive. [`Cluster::telemetry`] snapshots live health
//! and [`Cluster::shutdown_full`] returns, besides the final
//! [`ClusterStats`], one [`ProcessTrace`] per worker ready for
//! [`cscv_trace::export::chrome_trace_merged`]. A worker that dies
//! abnormally is reported `degraded`, with its figures recovered from
//! the last snapshot it streamed rather than dropped. Untraced builds
//! send zero probe/trace frames and all of this is inert.

use crate::plan::{slice_rows, ShardPlan};
use crate::protocol::{hello_flags, Msg};
use crate::wire::Conn;
use crate::worker;
use cscv_core::layout::ImageShape;
use cscv_core::SinoLayout;
use cscv_sparse::Csr;
use cscv_trace::clock::{self, ClockSample, OffsetEstimate};
use cscv_trace::export::ProcessTrace;
use cscv_trace::span;
use std::io;
use std::ops::Range;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How worker endpoints are brought up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Launch {
    /// In-process worker threads over socketpairs. Exercises the full
    /// protocol (framing, trimming, reduction) without process spawns.
    Threads,
    /// Spawn `cmd` once per shard with `--socket <path>` appended; each
    /// child connects back to the coordinator's listening socket. `cmd`
    /// is typically `[current_exe, "shard-worker"]`.
    Process { cmd: Vec<String> },
}

/// Per-worker figures for reports (`-- shard` table / NDJSON rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    pub shard: usize,
    pub rows: Range<usize>,
    pub nnz: usize,
    /// Executor the worker built ("CSCV-Z", "MKL-CSR(analog)", …).
    pub exec: String,
    /// Column-support (halo) window.
    pub col_lo: usize,
    pub col_hi: usize,
    pub busy_ns: u64,
    pub spmv_calls: u64,
    pub spmv_t_calls: u64,
    /// The worker died or desynced before final stats could be read;
    /// `busy_ns`/`*_calls` come from its last streamed counter snapshot
    /// (zeros if it never flushed one).
    pub degraded: bool,
}

/// Cluster-wide traffic and merge-cost figures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterStats {
    pub workers: Vec<WorkerReport>,
    /// Coordinator-side bytes written across all connections.
    pub bytes_tx: u64,
    /// Coordinator-side bytes read across all connections.
    pub bytes_rx: u64,
    /// Nanoseconds spent in [`tree_reduce`] merges.
    pub reduce_ns: u64,
    /// Wall-clock covered by the cluster, connect to shutdown.
    pub wall_ns: u64,
}

/// Live per-worker health, snapshot by [`Cluster::telemetry`]. Traffic
/// and reply counts are coordinator-side observations (meaningful in
/// every build); `busy_ns`/`*_calls` mirror the worker's last streamed
/// counter snapshot and stay zero until the first [`Msg::Trace`] frame
/// (i.e. always zero in untraced builds).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerHealth {
    pub shard: usize,
    /// Worker's OS pid (from [`Msg::MatrixAck`]).
    pub pid: u64,
    /// Collective replies this worker has answered.
    pub requests: u64,
    /// Bytes the coordinator wrote to this worker's connection.
    pub bytes_tx: u64,
    /// Bytes the coordinator read from this worker's connection.
    pub bytes_rx: u64,
    pub busy_ns: u64,
    pub spmv_calls: u64,
    pub spmv_t_calls: u64,
    /// Telemetry frames received from this worker.
    pub trace_frames: u64,
    /// Telemetry payload bytes received from this worker.
    pub trace_bytes: u64,
    /// Nanoseconds since cluster start when the last frame (of any
    /// kind) arrived from this worker.
    pub last_seen_ns: u64,
    /// Estimated worker-epoch minus coordinator-epoch clock offset.
    pub clock_offset_ns: i64,
    /// Round-trip time of the winning clock probe.
    pub clock_rtt_ns: u64,
    pub degraded: bool,
}

/// Cluster-wide live-health snapshot ([`Cluster::telemetry`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterTelemetry {
    pub workers: Vec<WorkerHealth>,
    /// Wall-clock since cluster start at snapshot time.
    pub wall_ns: u64,
}

/// Everything [`Cluster::shutdown_full`] hands back: the final stats, a
/// last telemetry snapshot, and one offset-corrected event stream per
/// worker for [`cscv_trace::export::chrome_trace_merged`] (empty event
/// lists in untraced builds).
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    pub stats: ClusterStats,
    pub telemetry: ClusterTelemetry,
    pub traces: Vec<ProcessTrace>,
}

/// Fixed-order pairwise tree reduction: fold `bufs[i + s]` into
/// `bufs[i]` for strides `s = 1, 2, 4, …` — the addition order is a
/// function of the indices alone, so the merged vector is identical
/// across runs regardless of how replies arrived. A single buffer is
/// returned untouched (no floating-point op at all). Traced builds drop
/// one `shard.reduce.step` instant marker per stride.
pub fn tree_reduce(mut bufs: Vec<Vec<f64>>) -> Vec<f64> {
    assert!(!bufs.is_empty(), "tree_reduce needs at least one buffer");
    let n = bufs.len();
    let mut s = 1;
    while s < n {
        let mut i = 0;
        let mut merges = 0u64;
        while i + s < n {
            let (head, tail) = bufs.split_at_mut(i + s);
            let dst = &mut head[i];
            let src = &tail[0];
            debug_assert_eq!(dst.len(), src.len());
            for (d, v) in dst.iter_mut().zip(src) {
                *d += v;
            }
            merges += 1;
            i += 2 * s;
        }
        span::event(
            "shard.reduce.step",
            &[("stride", s as f64), ("merges", merges as f64)],
        );
        s *= 2;
    }
    bufs.swap_remove(0)
}

/// Process-global sequence for unique socket paths (pid alone is not
/// enough: one process may start many clusters).
// ATOMIC(statistic): unique-id allocator — fetch_add only needs
// uniqueness, never cross-thread ordering.
static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

enum Endpoint {
    Thread {
        handle: std::thread::JoinHandle<()>,
        // ATOMIC(flag): the worker publishes "serve() completed" with a
        // Release store; the coordinator's Acquire load after join()
        // observes the worker's final writes, distinguishing a clean
        // protocol shutdown from a thread that bailed mid-serve.
        served: Arc<AtomicBool>,
    },
    Process(Child),
}

/// The worker's last streamed cumulative counter snapshot — the figures
/// recovered into the final report when a worker dies abnormally.
#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    busy_ns: u64,
    spmv_calls: u64,
    spmv_t_calls: u64,
}

/// Coordinator-side per-worker telemetry accumulator: everything the
/// receive path learns passively about one worker.
#[derive(Debug, Default)]
struct WorkerState {
    pid: u64,
    offset: OffsetEstimate,
    /// Concatenated NDJSON chunks from every `Trace` frame, parsed into
    /// an event list at shutdown.
    ndjson: String,
    trace_frames: u64,
    trace_bytes: u64,
    requests: u64,
    last_seen_ns: u64,
    snapshot: Option<Snapshot>,
    degraded: bool,
}

/// Receive the next non-telemetry message, folding any interleaved
/// [`Msg::Trace`] frames into `st` (event chunks, counter snapshot,
/// liveness). Every coordinator drain goes through here so periodic
/// worker flushes can never desync a collective.
fn recv_folding<S: io::Read + io::Write>(
    conn: &mut Conn<S>,
    st: &mut WorkerState,
    started: &Instant,
) -> io::Result<Msg> {
    loop {
        let msg = Msg::recv(conn)?;
        st.last_seen_ns = started.elapsed().as_nanos() as u64;
        match msg {
            Msg::Trace {
                seq: _,
                busy_ns,
                bytes_rx: _,
                bytes_tx: _,
                spmv_calls,
                spmv_t_calls,
                ndjson,
            } => {
                st.trace_frames += 1;
                // Frame payload: six u64 fields plus the length-prefixed
                // NDJSON string.
                st.trace_bytes += 56 + ndjson.len() as u64;
                st.ndjson.push_str(&ndjson);
                st.snapshot = Some(Snapshot {
                    busy_ns,
                    spmv_calls,
                    spmv_t_calls,
                });
            }
            m => return Ok(m),
        }
    }
}

/// Open a coordinator dispatch span and return its wire id (0 — and no
/// recorded span — in untraced builds).
fn dispatch(name: &'static str) -> (u64, span::SpanGuard) {
    let sid = span::next_span_id();
    (sid, span::enter_ctx(name, sid, 0))
}

/// A running shard cluster: one connection per worker, replies drained
/// in shard order.
pub struct Cluster {
    conns: Vec<Conn<UnixStream>>,
    endpoints: Vec<Endpoint>,
    states: Vec<WorkerState>,
    ranges: Vec<Range<usize>>,
    shard_nnz: Vec<usize>,
    windows: Vec<(usize, usize)>,
    execs: Vec<String>,
    n_rows: usize,
    n_cols: usize,
    reduce_ns: u64,
    started: Instant,
    socket_path: Option<PathBuf>,
}

/// Collective-input dimension check: a mismatched vector is the
/// caller's bug, but reported as an error (not a panic or a poisoned
/// worker) so a driver can surface it and keep the cluster usable.
fn check_len(what: &str, got: usize, want: usize) -> io::Result<()> {
    if got == want {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{what}: length {got}, expected {want}"),
        ))
    }
}

impl Cluster {
    /// Partition `csr` by `plan`, bring up one worker per shard via
    /// `launch`, ship each its sub-matrix, and wait for every
    /// [`Msg::MatrixAck`]. `layout` is the full sinogram layout; a shard
    /// is handed a view-aligned sub-layout iff both of its boundaries
    /// fall on a multiple of `layout.n_bins` — always the case when
    /// `plan.block_rows == layout.n_bins`, and trivially for a one-shard
    /// plan (otherwise that worker uses the CSR pair).
    ///
    /// Traced builds additionally run the per-worker clock handshake and
    /// stamp every `Hello` with the cluster trace id; worker build spans
    /// parent to it.
    pub fn start(
        csr: &Csr<f64>,
        plan: &ShardPlan,
        layout: SinoLayout,
        img: ImageShape,
        threads_per_worker: usize,
        launch: &Launch,
    ) -> io::Result<Cluster> {
        let started = Instant::now();
        let n = plan.n_shards();
        assert!(n >= 1, "cluster needs at least one shard");
        let trace_id = span::next_span_id();
        let _s = span::enter_ctx("shard.cluster.start", trace_id, 0);
        // Process workers own their registry and may stream all of it;
        // in-process workers share ours and stream only their own serve
        // thread's buffer (see `hello_flags::STREAM_FULL_REGISTRY`).
        let flags = match launch {
            Launch::Process { .. } => hello_flags::STREAM_FULL_REGISTRY,
            Launch::Threads => 0,
        };

        let (mut conns, endpoints, socket_path) = connect_all(n, launch)?;
        let mut states: Vec<WorkerState> = (0..n).map(|_| WorkerState::default()).collect();
        let mut shard_nnz = Vec::with_capacity(n);
        for (i, conn) in conns.iter_mut().enumerate() {
            let range = plan.ranges[i].clone();
            let shard = slice_rows(csr, range.clone());
            shard_nnz.push(shard.nnz());
            Msg::Hello {
                shard: i as u64,
                n_shards: n as u64,
                threads: threads_per_worker as u64,
                trace_id,
                flags,
            }
            .send(conn)?;
            states[i].offset = clock_handshake(conn)?;
            let view_aligned = layout.n_bins > 0
                && range.start.is_multiple_of(layout.n_bins)
                && range.end.is_multiple_of(layout.n_bins);
            let (n_views, n_bins) = if view_aligned {
                (range.len() / layout.n_bins, layout.n_bins)
            } else {
                (0, 0)
            };
            Msg::Matrix {
                n_cols: csr.n_cols() as u64,
                row0: range.start as u64,
                n_views: n_views as u64,
                n_bins: n_bins as u64,
                nx: img.nx as u64,
                ny: img.ny as u64,
                row_ptr: shard.row_ptr().iter().map(|&p| p as u64).collect(),
                col_idx: shard.col_idx().to_vec(),
                vals: shard.vals().to_vec(),
            }
            .send(conn)?;
        }
        let mut windows = Vec::with_capacity(n);
        let mut execs = Vec::with_capacity(n);
        for (i, conn) in conns.iter_mut().enumerate() {
            let Msg::MatrixAck {
                col_lo,
                col_hi,
                exec,
                pid,
            } = recv_folding(conn, &mut states[i], &started)?
            else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected MatrixAck",
                ));
            };
            states[i].pid = pid;
            windows.push((col_lo as usize, col_hi as usize));
            execs.push(exec);
        }
        Ok(Cluster {
            conns,
            endpoints,
            states,
            ranges: plan.ranges.clone(),
            shard_nnz,
            windows,
            execs,
            n_rows: csr.n_rows(),
            n_cols: csr.n_cols(),
            reduce_ns: 0,
            started,
            socket_path,
        })
    }

    pub fn n_workers(&self) -> usize {
        self.conns.len()
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Executor names the workers reported, in shard order.
    pub fn exec_names(&self) -> &[String] {
        &self.execs
    }

    /// Forward collective `y = A x`: broadcast, then place each shard's
    /// contiguous rows. No merge arithmetic.
    pub fn spmv(&mut self, x: &[f64], y: &mut [f64]) -> io::Result<()> {
        check_len("spmv x", x.len(), self.n_cols)?;
        check_len("spmv y", y.len(), self.n_rows)?;
        let (sid, _s) = dispatch("shard.dispatch.spmv");
        for conn in self.conns.iter_mut() {
            Msg::Spmv {
                span: sid,
                x: x.to_vec(),
            }
            .send(conn)?;
        }
        for (i, conn) in self.conns.iter_mut().enumerate() {
            let Msg::SpmvOut { y: part } = recv_folding(conn, &mut self.states[i], &self.started)?
            else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected SpmvOut",
                ));
            };
            self.states[i].requests += 1;
            let range = self.ranges[i].clone();
            if part.len() != range.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "SpmvOut length mismatch",
                ));
            }
            y[range].copy_from_slice(&part);
        }
        Ok(())
    }

    /// Adjoint collective `x = Aᵀ y`: scatter row slices, expand the
    /// halo-trimmed partials, merge in fixed shard order.
    pub fn spmv_t(&mut self, y: &[f64], x: &mut [f64]) -> io::Result<()> {
        check_len("spmv_t y", y.len(), self.n_rows)?;
        check_len("spmv_t x", x.len(), self.n_cols)?;
        let (sid, _s) = dispatch("shard.dispatch.spmv_t");
        for (i, conn) in self.conns.iter_mut().enumerate() {
            Msg::SpmvT {
                span: sid,
                y: y[self.ranges[i].clone()].to_vec(),
            }
            .send(conn)?;
        }
        let mut partials = Vec::with_capacity(self.conns.len());
        for (i, conn) in self.conns.iter_mut().enumerate() {
            let Msg::SpmvTOut { col_lo, partial } =
                recv_folding(conn, &mut self.states[i], &self.started)?
            else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected SpmvTOut",
                ));
            };
            self.states[i].requests += 1;
            let (lo, hi) = self.windows[i];
            if col_lo as usize != lo || partial.len() != hi - lo {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "SpmvTOut window mismatch",
                ));
            }
            span::event(
                "shard.halo_exchange",
                &[
                    ("worker", i as f64),
                    ("col_lo", lo as f64),
                    ("width", (hi - lo) as f64),
                    ("bytes", (partial.len() * 8) as f64),
                ],
            );
            // DOMAIN(ColId)
            let mut full = vec![0.0; self.n_cols];
            full[lo..hi].copy_from_slice(&partial);
            partials.push(full);
        }
        let t0 = Instant::now();
        let merged = tree_reduce(partials);
        self.reduce_ns += t0.elapsed().as_nanos() as u64;
        x.copy_from_slice(&merged);
        Ok(())
    }

    /// `|A|` row and column sums: rows by placement, columns by the same
    /// fixed-order reduction as the adjoint.
    pub fn abs_sums(&mut self) -> io::Result<(Vec<f64>, Vec<f64>)> {
        let (sid, _s) = dispatch("shard.dispatch.abs_sums");
        for conn in self.conns.iter_mut() {
            Msg::AbsSums { span: sid }.send(conn)?;
        }
        let mut rows = vec![0.0; self.n_rows];
        let mut partials = Vec::with_capacity(self.conns.len());
        for (i, conn) in self.conns.iter_mut().enumerate() {
            let Msg::AbsSumsOut { row, col_lo, col } =
                recv_folding(conn, &mut self.states[i], &self.started)?
            else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected AbsSumsOut",
                ));
            };
            self.states[i].requests += 1;
            let range = self.ranges[i].clone();
            if row.len() != range.len() || col_lo as usize != self.windows[i].0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "AbsSumsOut shape mismatch",
                ));
            }
            rows[range].copy_from_slice(&row);
            let (lo, hi) = self.windows[i];
            if col.len() != hi - lo {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "AbsSumsOut window mismatch",
                ));
            }
            let mut full = vec![0.0; self.n_cols];
            full[lo..hi].copy_from_slice(&col);
            partials.push(full);
        }
        let t0 = Instant::now();
        let cols = tree_reduce(partials);
        self.reduce_ns += t0.elapsed().as_nanos() as u64;
        Ok((rows, cols))
    }

    /// Live cluster-health snapshot from coordinator-side state alone —
    /// no worker round trip, so it is safe to call from another thread's
    /// cadence between collectives (via the owner) or after a failure.
    pub fn telemetry(&self) -> ClusterTelemetry {
        let workers = self
            .states
            .iter()
            .enumerate()
            .map(|(i, st)| {
                let snap = st.snapshot.unwrap_or_default();
                WorkerHealth {
                    shard: i,
                    pid: st.pid,
                    requests: st.requests,
                    bytes_tx: self.conns[i].bytes_tx,
                    bytes_rx: self.conns[i].bytes_rx,
                    busy_ns: snap.busy_ns,
                    spmv_calls: snap.spmv_calls,
                    spmv_t_calls: snap.spmv_t_calls,
                    trace_frames: st.trace_frames,
                    trace_bytes: st.trace_bytes,
                    last_seen_ns: st.last_seen_ns,
                    clock_offset_ns: st.offset.offset_ns,
                    clock_rtt_ns: st.offset.rtt_ns,
                    degraded: st.degraded,
                }
            })
            .collect();
        ClusterTelemetry {
            workers,
            wall_ns: self.started.elapsed().as_nanos() as u64,
        }
    }

    /// Snapshot worker and traffic statistics (workers keep serving). A
    /// worker that fails the exchange is marked degraded and its report
    /// row recovered from its last streamed counter snapshot; healthy
    /// workers are unaffected.
    pub fn stats(&mut self) -> io::Result<ClusterStats> {
        let (sid, _s) = dispatch("shard.dispatch.stats");
        for (i, conn) in self.conns.iter_mut().enumerate() {
            if self.states[i].degraded {
                continue;
            }
            if (Msg::Stats { span: sid }).send(conn).is_err() {
                self.states[i].degraded = true;
            }
        }
        let mut workers = Vec::with_capacity(self.conns.len());
        for (i, conn) in self.conns.iter_mut().enumerate() {
            let st = &mut self.states[i];
            let fresh = if st.degraded {
                None
            } else {
                match recv_folding(conn, st, &self.started) {
                    Ok(Msg::StatsOut {
                        busy_ns,
                        spmv_calls,
                        spmv_t_calls,
                        ..
                    }) => {
                        st.requests += 1;
                        Some(Snapshot {
                            busy_ns,
                            spmv_calls,
                            spmv_t_calls,
                        })
                    }
                    _ => {
                        st.degraded = true;
                        None
                    }
                }
            };
            // An authoritative StatsOut supersedes the last periodic
            // flush; a degraded worker keeps whatever it last streamed.
            if let Some(s) = fresh {
                st.snapshot = Some(s);
            }
            let snap = st.snapshot.unwrap_or_default();
            workers.push(WorkerReport {
                shard: i,
                rows: self.ranges[i].clone(),
                nnz: self.shard_nnz[i],
                exec: self.execs[i].clone(),
                col_lo: self.windows[i].0,
                col_hi: self.windows[i].1,
                busy_ns: snap.busy_ns,
                spmv_calls: snap.spmv_calls,
                spmv_t_calls: snap.spmv_t_calls,
                degraded: st.degraded,
            });
        }
        Ok(ClusterStats {
            workers,
            bytes_tx: self.conns.iter().map(|c| c.bytes_tx).sum(),
            bytes_rx: self.conns.iter().map(|c| c.bytes_rx).sum(),
            reduce_ns: self.reduce_ns,
            wall_ns: self.started.elapsed().as_nanos() as u64,
        })
    }

    /// Collect final statistics, shut every worker down cleanly, and
    /// reap the endpoints, keeping only the [`ClusterStats`]. See
    /// [`Cluster::shutdown_full`] for the telemetry-carrying variant.
    pub fn shutdown(self) -> io::Result<ClusterStats> {
        Ok(self.shutdown_full()?.stats)
    }

    /// Shut the cluster down and return everything it learned: final
    /// stats, a last telemetry snapshot, and one offset-corrected
    /// [`ProcessTrace`] per worker (lane pid `shard + 2`, so lanes stay
    /// distinct even for in-process workers sharing one OS pid;
    /// coordinator exporters conventionally take pid 1). Workers that
    /// die during shutdown are reported `degraded`, not errors — their
    /// last streamed snapshot stands in for final stats. Also publishes
    /// the `shard.*` trace counters (traced builds), exactly once per
    /// cluster.
    pub fn shutdown_full(mut self) -> io::Result<ShutdownReport> {
        let mut stats = self.stats()?;
        let (sid, _s) = dispatch("shard.dispatch.shutdown");
        for (i, conn) in self.conns.iter_mut().enumerate() {
            if self.states[i].degraded {
                continue;
            }
            if (Msg::Shutdown { span: sid }).send(conn).is_err() {
                self.states[i].degraded = true;
            }
        }
        for (i, conn) in self.conns.iter_mut().enumerate() {
            let st = &mut self.states[i];
            if st.degraded {
                continue;
            }
            // The worker's final trace flush precedes its ShutdownAck;
            // recv_folding captures it into the state.
            match recv_folding(conn, st, &self.started) {
                Ok(Msg::ShutdownAck) => {}
                _ => st.degraded = true,
            }
        }
        for (i, ep) in self.endpoints.drain(..).enumerate() {
            match ep {
                Endpoint::Thread { handle, served } => {
                    if handle.join().is_err() || !served.load(Ordering::Acquire) {
                        self.states[i].degraded = true;
                    }
                }
                Endpoint::Process(mut child) => match child.wait() {
                    Ok(status) if status.success() => {}
                    _ => self.states[i].degraded = true,
                },
            }
        }
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
        // Endpoint reaping may have degraded workers after their report
        // rows were built; reconcile the flags.
        for w in stats.workers.iter_mut() {
            w.degraded |= self.states[w.shard].degraded;
        }
        stats.bytes_tx = self.conns.iter().map(|c| c.bytes_tx).sum();
        stats.bytes_rx = self.conns.iter().map(|c| c.bytes_rx).sum();
        stats.wall_ns = self.started.elapsed().as_nanos() as u64;
        if cscv_trace::ENABLED {
            use cscv_trace::counters::{add, Counter};
            add(Counter::ShardBytesTx, stats.bytes_tx);
            add(Counter::ShardBytesRx, stats.bytes_rx);
            add(Counter::ShardReduceNs, self.reduce_ns);
            add(
                Counter::ShardWorkerBusyNs,
                stats.workers.iter().map(|w| w.busy_ns).sum(),
            );
            add(
                Counter::ShardTraceFrames,
                self.states.iter().map(|s| s.trace_frames).sum(),
            );
            add(
                Counter::ShardTraceBytes,
                self.states.iter().map(|s| s.trace_bytes).sum(),
            );
        }
        let telemetry = self.telemetry();
        let traces = self
            .states
            .iter()
            .enumerate()
            .map(|(i, st)| ProcessTrace {
                pid: i as u64 + 2,
                label: format!("cscv-worker-{i} (pid {})", st.pid),
                offset: st.offset,
                // A malformed chunk (truncated by a dying worker) loses
                // that worker's events, never the merge.
                events: cscv_trace::export::from_ndjson(&st.ndjson).unwrap_or_default(),
            })
            .collect();
        Ok(ShutdownReport {
            stats,
            telemetry,
            traces,
        })
    }
}

/// Run the three-probe clock-offset handshake against a freshly greeted
/// worker. Untraced builds send nothing and return the identity mapping
/// (the worker-side echo loop is a passthrough there too).
fn clock_handshake(conn: &mut Conn<UnixStream>) -> io::Result<OffsetEstimate> {
    if !cscv_trace::ENABLED {
        return Ok(OffsetEstimate::default());
    }
    let mut samples = Vec::with_capacity(3);
    for seq in 0..3u64 {
        let t_send_ns = span::now_ns();
        Msg::ClockProbe {
            seq,
            t_coord_ns: t_send_ns,
        }
        .send(conn)?;
        let Msg::ClockAck {
            seq: echoed,
            t_worker_ns,
            ..
        } = Msg::recv(conn)?
        else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected ClockAck",
            ));
        };
        let t_recv_ns = span::now_ns();
        if echoed != seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "clock probe sequence mismatch",
            ));
        }
        samples.push(ClockSample {
            t_send_ns,
            t_worker_ns,
            t_recv_ns,
        });
    }
    Ok(clock::estimate(&samples))
}

impl Drop for Cluster {
    /// Best-effort cleanup when `shutdown` was skipped (e.g. a test
    /// failure unwound past it): kill children, drop the socket file.
    fn drop(&mut self) {
        for ep in self.endpoints.drain(..) {
            match ep {
                Endpoint::Thread { .. } => {} // unblocks when its socket drops
                Endpoint::Process(mut child) => {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
        }
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Bring up `n` worker endpoints and return their connections in shard
/// order (accept order defines shard identity for processes). Serve
/// threads are named `cscv-shard-serve-{i}` so trace exporters can tell
/// in-process worker events apart from coordinator events in the shared
/// registry.
#[allow(clippy::type_complexity)]
fn connect_all(
    n: usize,
    launch: &Launch,
) -> io::Result<(Vec<Conn<UnixStream>>, Vec<Endpoint>, Option<PathBuf>)> {
    match launch {
        Launch::Threads => {
            let mut conns = Vec::with_capacity(n);
            let mut endpoints = Vec::with_capacity(n);
            for i in 0..n {
                let (ours, theirs) = UnixStream::pair()?;
                let served = Arc::new(AtomicBool::new(false));
                let served_w = Arc::clone(&served);
                let handle = std::thread::Builder::new()
                    .name(format!("cscv-shard-serve-{i}"))
                    .spawn(move || {
                        let mut conn = Conn::new(theirs);
                        let mut cache = worker::env_cache();
                        // Errors surface on the coordinator side as broken
                        // frames; the thread itself just stops serving.
                        if worker::serve(&mut conn, &mut cache).is_ok() {
                            served_w.store(true, Ordering::Release);
                        }
                    })?;
                endpoints.push(Endpoint::Thread { handle, served });
                conns.push(Conn::new(ours));
            }
            Ok((conns, endpoints, None))
        }
        Launch::Process { cmd } => {
            assert!(!cmd.is_empty(), "process launch needs a command");
            let path = std::env::temp_dir().join(format!(
                "cscv-shard-{}-{}.sock",
                std::process::id(),
                SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)?;
            let mut endpoints = Vec::with_capacity(n);
            for _ in 0..n {
                let child = Command::new(&cmd[0])
                    .args(&cmd[1..])
                    .arg("--socket")
                    .arg(&path)
                    .spawn()?;
                endpoints.push(Endpoint::Process(child));
            }
            let mut conns = Vec::with_capacity(n);
            listener.set_nonblocking(true)?;
            let deadline = Instant::now() + Duration::from_secs(60);
            while conns.len() < n {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        conns.push(Conn::new(stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if Instant::now() > deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "workers did not connect within 60s",
                            ));
                        }
                        // A worker that died before connecting would
                        // hang the accept loop; fail fast instead.
                        for ep in endpoints.iter_mut() {
                            if let Endpoint::Process(child) = ep {
                                if let Some(status) = child.try_wait()? {
                                    return Err(io::Error::other(format!(
                                        "worker exited before connecting: {status}"
                                    )));
                                }
                            }
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok((conns, endpoints, Some(path)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PartitionMethod, ShardPlan};
    use cscv_sparse::Coo;

    #[test]
    fn tree_reduce_is_fixed_order_and_copy_for_one() {
        let a = vec![1.0, 2.0];
        assert_eq!(tree_reduce(vec![a.clone()]), a);
        // Orderings that would differ under naive accumulation still
        // produce the tree's fixed result: ((a+b)+(c+d)).
        let bufs = vec![vec![1e100], vec![-1e100], vec![1.0], vec![-1.0]];
        assert_eq!(tree_reduce(bufs), vec![0.0]);
        // Five buffers: ((a+b)+(c+d)) + e.
        let bufs = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0], vec![5.0]];
        assert_eq!(tree_reduce(bufs), vec![15.0]);
    }

    fn banded_csr(n_rows: usize, n_cols: usize) -> Csr<f64> {
        let mut coo = Coo::new(n_rows, n_cols);
        for r in 0..n_rows {
            for k in 0..3usize {
                let c = (r * 7 + k * 3) % n_cols;
                coo.push(r, c, 1.0 + (r % 5) as f64 * 0.25 + k as f64 * 0.5);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn thread_cluster_matches_serial_products() {
        let csr = banded_csr(48, 30);
        let plan = ShardPlan::new(
            &(0..48).map(|r| csr.row(r).0.len()).collect::<Vec<_>>(),
            3,
            1,
            PartitionMethod::Stripe,
        );
        let layout = SinoLayout {
            n_views: 0,
            n_bins: 0,
        };
        let img = ImageShape { nx: 6, ny: 5 };
        let mut cluster = Cluster::start(&csr, &plan, layout, img, 1, &Launch::Threads).unwrap();
        assert_eq!(cluster.n_workers(), 3);

        let x: Vec<f64> = (0..30).map(|i| (i as f64) * 0.5 - 4.0).collect();
        let mut y = vec![0.0; 48];
        cluster.spmv(&x, &mut y).unwrap();
        let mut y_ref = vec![0.0; 48];
        csr.spmv_serial(&x, &mut y_ref);
        assert_eq!(y, y_ref);

        let yin: Vec<f64> = (0..48).map(|i| ((i % 9) as f64) - 4.0).collect();
        let mut xt = vec![0.0; 30];
        cluster.spmv_t(&yin, &mut xt).unwrap();
        let mut xt_ref = vec![0.0; 30];
        for r in 0..48 {
            let (cols, vals) = csr.row(r);
            for (c, v) in cols.iter().zip(vals) {
                xt_ref[*c as usize] += v * yin[r];
            }
        }
        for (a, b) in xt.iter().zip(&xt_ref) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }

        let (rows, cols) = cluster.abs_sums().unwrap();
        assert_eq!(rows.len(), 48);
        assert_eq!(cols.len(), 30);
        assert!(rows.iter().all(|&v| v > 0.0));

        let telemetry = cluster.telemetry();
        assert_eq!(telemetry.workers.len(), 3);
        for w in &telemetry.workers {
            // spmv + spmv_t + abs_sums replies, counted coordinator-side.
            assert_eq!(w.requests, 3);
            assert!(w.bytes_tx > 0 && w.bytes_rx > 0);
            assert!(!w.degraded);
        }

        let report = cluster.shutdown_full().unwrap();
        let stats = &report.stats;
        assert_eq!(stats.workers.len(), 3);
        assert!(stats.bytes_tx > 0 && stats.bytes_rx > 0);
        assert_eq!(stats.workers.iter().map(|w| w.spmv_calls).sum::<u64>(), 3);
        assert!(stats.workers.iter().all(|w| !w.degraded));
        assert_eq!(report.traces.len(), 3);
        // Lane pids are synthetic and distinct even though in-process
        // workers share one OS pid.
        let pids: Vec<u64> = report.traces.iter().map(|t| t.pid).collect();
        assert_eq!(pids, vec![2, 3, 4]);
        if cscv_trace::ENABLED {
            assert!(report.telemetry.workers.iter().all(|w| w.trace_frames >= 1));
        } else {
            assert!(report.traces.iter().all(|t| t.events.is_empty()));
            assert!(report
                .telemetry
                .workers
                .iter()
                .all(|w| w.trace_frames == 0 && w.trace_bytes == 0));
        }
    }

    #[test]
    fn single_shard_cluster_is_byte_identical_to_backend() {
        let csr = banded_csr(32, 20);
        let plan = ShardPlan::new(&vec![3usize; 32], 1, 1, PartitionMethod::Stripe);
        let img = ImageShape { nx: 5, ny: 4 };
        let layout = SinoLayout {
            n_views: 0,
            n_bins: 0,
        };
        let mut cluster = Cluster::start(&csr, &plan, layout, img, 1, &Launch::Threads).unwrap();
        let mut cache = cscv_tune::TuneCache::in_memory();
        let backend = crate::worker::ShardBackend::build(csr, None, img, 1, &mut cache);

        let y: Vec<f64> = (0..32).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut xt = vec![0.0; 20];
        cluster.spmv_t(&y, &mut xt).unwrap();
        let xt_ref = backend.spmv_t(&y);
        for (a, b) in xt.iter().zip(&xt_ref) {
            assert_eq!(a.to_bits(), b.to_bits(), "one shard must be bitwise equal");
        }
        cluster.shutdown().unwrap();
    }

    /// Satellite: abnormal worker death must not lose telemetry — the
    /// final report folds the worker's last streamed counter snapshot
    /// and marks it degraded; healthy siblings stay clean.
    #[test]
    fn dead_worker_is_reported_degraded_with_last_snapshot() {
        let csr = banded_csr(40, 24);
        let plan = ShardPlan::new(&vec![3usize; 40], 2, 1, PartitionMethod::Stripe);
        let layout = SinoLayout {
            n_views: 0,
            n_bins: 0,
        };
        let img = ImageShape { nx: 6, ny: 4 };
        let mut cluster = Cluster::start(&csr, &plan, layout, img, 1, &Launch::Threads).unwrap();

        let x = vec![1.0; 24];
        let mut y = vec![0.0; 40];
        cluster.spmv(&x, &mut y).unwrap();

        // Kill worker 1 out of band: a raw Shutdown makes its serve loop
        // return cleanly from the worker's point of view, after which
        // the coordinator's Stats exchange with it fails.
        Msg::Shutdown { span: 0 }
            .send(&mut cluster.conns[1])
            .unwrap();
        loop {
            match recv_folding(
                &mut cluster.conns[1],
                &mut cluster.states[1],
                &cluster.started,
            )
            .unwrap()
            {
                Msg::ShutdownAck => break,
                _ => continue,
            }
        }

        let report = cluster.shutdown_full().unwrap();
        assert!(!report.stats.workers[0].degraded);
        assert!(report.stats.workers[1].degraded);
        assert!(report.telemetry.workers[1].degraded);
        assert_eq!(report.stats.workers[0].spmv_calls, 1);
        if cscv_trace::ENABLED {
            // The dead worker's final flush rode ahead of its
            // ShutdownAck, so its snapshot still reports the one spmv it
            // served before dying.
            assert_eq!(report.stats.workers[1].spmv_calls, 1);
            assert!(report.telemetry.workers[1].trace_frames >= 1);
        }
    }
}
