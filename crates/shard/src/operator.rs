//! [`cscv_recon::LinearOperator`] faces for sharded and local execution.
//!
//! [`ShardedOperator`] turns a running [`Cluster`] into an operator, so
//! every solver in `cscv-recon` (SIRT, CGLS, Landweber, …) runs across
//! worker processes unmodified. [`LocalOperator`] is the single-process
//! reference built through the **same** [`crate::worker::ShardBackend`] code
//! path the workers use — so the `workers = 1` comparison in the
//! `shard-smoke` gate is byte-identical by construction, and any
//! multi-worker deviation is attributable to the merge arithmetic
//! alone (bounded by the fixed-order tree reduction).
//!
//! Threading note: the solvers pass a coordinator-side [`ThreadPool`]
//! into every call; both operators ignore it. Workers parallelize with
//! their own pools (sized by the cluster's `threads_per_worker`), and
//! the coordinator's collective work is placement plus the reduction.

use crate::cluster::{Cluster, ClusterStats};
use crate::worker::ShardBackend;
use cscv_core::layout::ImageShape;
use cscv_recon::LinearOperator;
use cscv_sparse::{Csr, ThreadPool};
use cscv_tune::TuneCache;
use std::io;
use std::sync::Mutex;

/// A sharded cluster as a linear operator. Collectives are serialized
/// through a mutex (solvers issue them sequentially anyway); I/O
/// failures panic, since the trait has no error channel — the xtask
/// driver treats that as worker death.
pub struct ShardedOperator {
    cluster: Mutex<Cluster>,
    n_rows: usize,
    n_cols: usize,
    abs_row: Vec<f64>,
    abs_col: Vec<f64>,
}

impl ShardedOperator {
    /// Wrap a started cluster, precomputing the SIRT weighting sums
    /// (one `AbsSums` collective).
    pub fn new(cluster: Cluster) -> io::Result<ShardedOperator> {
        let mut cluster = cluster;
        let (abs_row, abs_col) = cluster.abs_sums()?;
        Ok(ShardedOperator {
            n_rows: cluster.n_rows(),
            n_cols: cluster.n_cols(),
            cluster: Mutex::new(cluster),
            abs_row,
            abs_col,
        })
    }

    /// Snapshot cluster statistics (workers keep serving).
    pub fn stats(&self) -> io::Result<ClusterStats> {
        self.cluster.lock().expect("cluster lock").stats()
    }

    /// Live cluster-health snapshot (coordinator-side state only — no
    /// worker round trip; see [`Cluster::telemetry`]).
    pub fn telemetry(&self) -> crate::cluster::ClusterTelemetry {
        self.cluster.lock().expect("cluster lock").telemetry()
    }

    /// Shut the cluster down cleanly and return the final statistics.
    pub fn shutdown(self) -> io::Result<ClusterStats> {
        self.cluster.into_inner().expect("cluster lock").shutdown()
    }

    /// Shut down and return stats plus telemetry and per-worker trace
    /// streams (see [`Cluster::shutdown_full`]).
    pub fn shutdown_full(self) -> io::Result<crate::cluster::ShutdownReport> {
        self.cluster
            .into_inner()
            .expect("cluster lock")
            .shutdown_full()
    }
}

impl LinearOperator<f64> for ShardedOperator {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
    fn apply(&self, x: &[f64], y: &mut [f64], _pool: &ThreadPool) {
        self.cluster
            .lock()
            .expect("cluster lock")
            .spmv(x, y)
            .expect("shard cluster I/O (forward)");
    }
    fn apply_transpose(&self, y: &[f64], x: &mut [f64], _pool: &ThreadPool) {
        self.cluster
            .lock()
            .expect("cluster lock")
            .spmv_t(y, x)
            .expect("shard cluster I/O (adjoint)");
    }
    fn abs_row_sums(&self, _pool: &ThreadPool) -> Vec<f64> {
        self.abs_row.clone()
    }
    fn abs_col_sums(&self, _pool: &ThreadPool) -> Vec<f64> {
        self.abs_col.clone()
    }
}

/// The single-process reference operator: one [`ShardBackend`] holding
/// the whole matrix, built exactly as a worker would build it.
pub struct LocalOperator {
    backend: ShardBackend,
    abs_row: Vec<f64>,
    abs_col: Vec<f64>,
}

impl LocalOperator {
    /// Build from the full matrix. `layout` as in
    /// [`ShardBackend::build`]: `Some` view-aligned layout selects the
    /// CSCV executor, `None` the CSR pair.
    pub fn new(
        csr: Csr<f64>,
        layout: Option<cscv_core::SinoLayout>,
        img: ImageShape,
        threads: usize,
        cache: &mut TuneCache,
    ) -> LocalOperator {
        let backend = ShardBackend::build(csr, layout, img, threads, cache);
        let (abs_row, abs_col) = backend.abs_sums();
        LocalOperator {
            backend,
            abs_row,
            abs_col,
        }
    }

    /// Executor name for reports.
    pub fn exec_name(&self) -> String {
        self.backend.exec_name()
    }
}

impl LinearOperator<f64> for LocalOperator {
    fn n_rows(&self) -> usize {
        self.backend.n_rows()
    }
    fn n_cols(&self) -> usize {
        self.backend.n_cols()
    }
    fn apply(&self, x: &[f64], y: &mut [f64], _pool: &ThreadPool) {
        y.copy_from_slice(&self.backend.spmv(x));
    }
    fn apply_transpose(&self, y: &[f64], x: &mut [f64], _pool: &ThreadPool) {
        x.copy_from_slice(&self.backend.spmv_t(y));
    }
    fn abs_row_sums(&self, _pool: &ThreadPool) -> Vec<f64> {
        self.abs_row.clone()
    }
    fn abs_col_sums(&self, _pool: &ThreadPool) -> Vec<f64> {
        self.abs_col.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Launch;
    use crate::plan::{PartitionMethod, ShardPlan};
    use cscv_core::SinoLayout;
    use cscv_sparse::Coo;

    fn sample() -> Csr<f64> {
        let mut coo = Coo::new(12, 8);
        for r in 0..12usize {
            coo.push(r, r % 8, 1.0 + r as f64 * 0.5);
            coo.push(r, (r + 3) % 8, -0.25 * (r as f64 + 1.0));
        }
        coo.to_csr()
    }

    #[test]
    fn sharded_and_local_operators_agree() {
        let csr = sample();
        let img = ImageShape { nx: 4, ny: 2 };
        let row_nnz: Vec<usize> = (0..12).map(|r| csr.row(r).0.len()).collect();
        let plan = ShardPlan::new(&row_nnz, 2, 1, PartitionMethod::Bisect);
        let layout = SinoLayout {
            n_views: 0,
            n_bins: 0,
        };
        let cluster = Cluster::start(&csr, &plan, layout, img, 1, &Launch::Threads).unwrap();
        let sharded = ShardedOperator::new(cluster).unwrap();
        let mut cache = TuneCache::in_memory();
        let local = LocalOperator::new(csr, None, img, 1, &mut cache);
        let pool = ThreadPool::new(1);

        assert_eq!(sharded.n_rows(), local.n_rows());
        assert_eq!(sharded.n_cols(), local.n_cols());
        assert_eq!(sharded.abs_row_sums(&pool), local.abs_row_sums(&pool));
        assert_eq!(sharded.abs_col_sums(&pool), local.abs_col_sums(&pool));

        let x: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let mut ys = vec![0.0; 12];
        let mut yl = vec![0.0; 12];
        sharded.apply(&x, &mut ys, &pool);
        local.apply(&x, &mut yl, &pool);
        assert_eq!(ys, yl, "forward is placement-only: exactly equal");

        let y: Vec<f64> = (0..12).map(|i| ((i * i) % 5) as f64 - 2.0).collect();
        let mut xs = vec![0.0; 8];
        let mut xl = vec![0.0; 8];
        sharded.apply_transpose(&y, &mut xs, &pool);
        local.apply_transpose(&y, &mut xl, &pool);
        for (a, b) in xs.iter().zip(&xl) {
            assert!((a - b).abs() < 1e-12);
        }
        sharded.shutdown().unwrap();
    }
}
