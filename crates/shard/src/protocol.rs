//! The coordinator↔worker message set.
//!
//! A deliberately small RPC surface: every collective a solver needs is
//! one request/reply pair, and every request is issued to *all* workers
//! before any reply is read, so workers compute concurrently while the
//! coordinator drains replies in fixed shard order.
//!
//! ```text
//! coordinator                         worker
//!   Hello{shard,…,trace_id,flags} ──▶
//!   ClockProbe{seq,t_coord}       ──▶  (trace builds only, ×3)
//!                                 ◀──  ClockAck{seq,t_coord,t_worker}
//!   Matrix{shard CSR + layout}    ──▶  builds CscvExec / CSR pair
//!                                 ◀──  MatrixAck{col window, exec, pid}
//!   Spmv{span,x}                  ──▶  y_s = A_s x
//!                                 ◀──  SpmvOut{y_s}
//!   SpmvT{span,y_s}               ──▶  x̃_s = A_sᵀ y_s
//!                                 ◀──  SpmvTOut{x̃_s[window]}
//!   AbsSums{span}                 ──▶
//!                                 ◀──  AbsSumsOut{row sums, col sums[window]}
//!   Stats{span}                   ──▶
//!                                 ◀──  StatsOut{busy ns, bytes, calls}
//!   Shutdown{span}                ──▶
//!                                 ◀──  Trace{…}  (trace builds: final flush)
//!                                 ◀──  ShutdownAck
//! ```
//!
//! **Trace-context propagation.** Every coordinator request carries a
//! `span` id (0 in untraced builds) naming the dispatch span that caused
//! it; workers open spans parented to that id, so a merged timeline
//! draws coordinator→worker causality. Workers in trace builds stream
//! buffered events and counter snapshots back as unsolicited
//! [`Msg::Trace`] frames — sent immediately before a reply (periodic
//! flush) and before `ShutdownAck` (final flush). The coordinator's
//! receive path treats any number of Trace frames before the actual
//! reply as telemetry side-channel, never as the reply itself. Untraced
//! builds send *zero* Trace/ClockProbe/ClockAck frames: the same-binary
//! invariant means both ends agree on `cscv_trace::ENABLED`.
//!
//! Layouts are fixed little-endian ([`crate::wire`]); `Msg::encode` /
//! [`Msg::decode`] are exact inverses (round-trip tested below).

use crate::wire::{Dec, Enc};
use std::io;

/// Frame tags (one per variant; `Err` is 255 so it stands out in dumps).
/// Public so wire-level tests (and debugging tools) can tally frames
/// without re-deriving the numbering.
pub mod tag {
    pub const HELLO: u8 = 1;
    pub const MATRIX: u8 = 2;
    pub const MATRIX_ACK: u8 = 3;
    pub const SPMV: u8 = 4;
    pub const SPMV_OUT: u8 = 5;
    pub const SPMV_T: u8 = 6;
    pub const SPMV_T_OUT: u8 = 7;
    pub const ABS_SUMS: u8 = 8;
    pub const ABS_SUMS_OUT: u8 = 9;
    pub const STATS: u8 = 10;
    pub const STATS_OUT: u8 = 11;
    pub const SHUTDOWN: u8 = 12;
    pub const SHUTDOWN_ACK: u8 = 13;
    pub const CLOCK_PROBE: u8 = 14;
    pub const CLOCK_ACK: u8 = 15;
    pub const TRACE: u8 = 16;
    pub const ERR: u8 = 255;
}

/// Bit flags carried in [`Msg::Hello`]'s `flags` field.
pub mod hello_flags {
    /// The worker owns its OS process, so a `Trace` flush may drain the
    /// *entire* trace registry (serve thread + pool threads). Cleared
    /// for in-process (`Launch::Threads`) workers, which share one
    /// registry with the coordinator and every sibling worker and must
    /// therefore stream only their own serve thread's buffer to avoid
    /// duplicating events across lanes.
    pub const STREAM_FULL_REGISTRY: u64 = 1;
}

/// The machine-checked session spec: the diagram above as data.
///
/// `cscv-xtask analyze` (rule family `protocol-conformance`) parses
/// this constant and statically holds both endpoints to it — every
/// send must have a receive state, every direct drain must absorb the
/// legal `Trace`-before-reply interleaving, and every wire tag in
/// [`tag`] must appear here (and vice versa). The spec also renders to
/// the GraphViz artifact via `cscv-xtask analyze --protocol-dot`.
///
/// Line DSL: `endpoint <role> <file>` · `msg <frame> <dir> <from-state>
/// <to-state>` · `side <frame> <dir> <states…>` (unsolicited,
/// state-preserving) · `escape <frame> <dir>` (legal from any state,
/// ends the session) · `absorber <fn>` (a drain that folds side frames
/// out of the stream).
pub const SESSION_SPEC: &[&str] = &[
    "endpoint coordinator crates/shard/src/cluster.rs",
    "endpoint worker crates/shard/src/worker.rs",
    "msg Hello c2w Init Greeted",
    "msg ClockProbe c2w Greeted ClockWait",
    "msg ClockAck w2c ClockWait Greeted",
    "msg Matrix c2w Greeted MatrixWait",
    "msg MatrixAck w2c MatrixWait Ready",
    "msg Spmv c2w Ready SpmvWait",
    "msg SpmvOut w2c SpmvWait Ready",
    "msg SpmvT c2w Ready SpmvTWait",
    "msg SpmvTOut w2c SpmvTWait Ready",
    "msg AbsSums c2w Ready AbsSumsWait",
    "msg AbsSumsOut w2c AbsSumsWait Ready",
    "msg Stats c2w Ready StatsWait",
    "msg StatsOut w2c StatsWait Ready",
    "msg Shutdown c2w Ready ShutdownWait",
    "msg ShutdownAck w2c ShutdownWait Closed",
    "side Trace w2c MatrixWait SpmvWait SpmvTWait AbsSumsWait StatsWait ShutdownWait",
    "escape Err w2c",
    "absorber recv_folding",
];

/// One protocol message. See the module docs for the exchange order.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Coordinator → worker, first frame: identity, pool width, the
    /// cluster-wide trace id, and capability flags (see [`hello_flags`]).
    Hello {
        shard: u64,
        n_shards: u64,
        threads: u64,
        trace_id: u64,
        flags: u64,
    },
    /// Coordinator → worker: the shard's rows as a rebased CSR, plus
    /// the view-aligned sinogram layout (`n_views = 0` means "not
    /// view-aligned; use the CSR executor pair") and image shape.
    Matrix {
        n_cols: u64,
        /// First global row of this shard (placement offset).
        row0: u64,
        n_views: u64,
        n_bins: u64,
        nx: u64,
        ny: u64,
        row_ptr: Vec<u64>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    },
    /// Worker → coordinator: column support window (the adjoint halo),
    /// the executor the worker built, and the worker's OS pid (labels
    /// the process lane in merged traces).
    MatrixAck {
        col_lo: u64,
        col_hi: u64,
        exec: String,
        pid: u64,
    },
    /// Coordinator → worker: full input vector for `y_s = A_s x`.
    /// `span` is the dispatch span id the worker parents to (0 = none).
    Spmv { span: u64, x: Vec<f64> },
    /// Worker → coordinator: this shard's contiguous output rows.
    SpmvOut { y: Vec<f64> },
    /// Coordinator → worker: this shard's slice of `y` for `x̃ = A_sᵀ y`.
    SpmvT { span: u64, y: Vec<f64> },
    /// Worker → coordinator: partial `x̃` trimmed to the column window.
    SpmvTOut { col_lo: u64, partial: Vec<f64> },
    /// Coordinator → worker: request SIRT weighting sums.
    AbsSums { span: u64 },
    /// Worker → coordinator: `|A_s|` row sums (shard rows) and column
    /// sums trimmed to the column window.
    AbsSumsOut {
        row: Vec<f64>,
        col_lo: u64,
        col: Vec<f64>,
    },
    /// Coordinator → worker: request execution statistics.
    Stats { span: u64 },
    /// Worker → coordinator: cumulative execution statistics.
    StatsOut {
        busy_ns: u64,
        bytes_rx: u64,
        bytes_tx: u64,
        spmv_calls: u64,
        spmv_t_calls: u64,
    },
    /// Coordinator → worker: drain and exit after acknowledging.
    Shutdown { span: u64 },
    /// Worker → coordinator: final frame before exit.
    ShutdownAck,
    /// Coordinator → worker: clock-offset probe carrying the
    /// coordinator's trace-epoch reading (trace builds only).
    ClockProbe { seq: u64, t_coord_ns: u64 },
    /// Worker → coordinator: probe echo plus the worker's own
    /// trace-epoch reading at answer time.
    ClockAck {
        seq: u64,
        t_coord_ns: u64,
        t_worker_ns: u64,
    },
    /// Worker → coordinator, unsolicited telemetry (trace builds only):
    /// a monotonically numbered flush carrying the worker's cumulative
    /// counter snapshot and the NDJSON span/event lines recorded since
    /// the previous flush.
    Trace {
        seq: u64,
        busy_ns: u64,
        bytes_rx: u64,
        bytes_tx: u64,
        spmv_calls: u64,
        spmv_t_calls: u64,
        ndjson: String,
    },
    /// Either direction: protocol failure with a reason.
    Err { msg: String },
}

impl Msg {
    /// Serialize to `(tag, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut e = Enc::new();
        match self {
            Msg::Hello {
                shard,
                n_shards,
                threads,
                trace_id,
                flags,
            } => (
                tag::HELLO,
                e.u64(*shard)
                    .u64(*n_shards)
                    .u64(*threads)
                    .u64(*trace_id)
                    .u64(*flags)
                    .finish(),
            ),
            Msg::Matrix {
                n_cols,
                row0,
                n_views,
                n_bins,
                nx,
                ny,
                row_ptr,
                col_idx,
                vals,
            } => (
                tag::MATRIX,
                e.u64(*n_cols)
                    .u64(*row0)
                    .u64(*n_views)
                    .u64(*n_bins)
                    .u64(*nx)
                    .u64(*ny)
                    .u64s(row_ptr)
                    .u32s(col_idx)
                    .f64s(vals)
                    .finish(),
            ),
            Msg::MatrixAck {
                col_lo,
                col_hi,
                exec,
                pid,
            } => (
                tag::MATRIX_ACK,
                e.u64(*col_lo).u64(*col_hi).str(exec).u64(*pid).finish(),
            ),
            Msg::Spmv { span, x } => (tag::SPMV, e.u64(*span).f64s(x).finish()),
            Msg::SpmvOut { y } => (tag::SPMV_OUT, e.f64s(y).finish()),
            Msg::SpmvT { span, y } => (tag::SPMV_T, e.u64(*span).f64s(y).finish()),
            Msg::SpmvTOut { col_lo, partial } => {
                (tag::SPMV_T_OUT, e.u64(*col_lo).f64s(partial).finish())
            }
            Msg::AbsSums { span } => (tag::ABS_SUMS, e.u64(*span).finish()),
            Msg::AbsSumsOut { row, col_lo, col } => (
                tag::ABS_SUMS_OUT,
                e.f64s(row).u64(*col_lo).f64s(col).finish(),
            ),
            Msg::Stats { span } => (tag::STATS, e.u64(*span).finish()),
            Msg::StatsOut {
                busy_ns,
                bytes_rx,
                bytes_tx,
                spmv_calls,
                spmv_t_calls,
            } => (
                tag::STATS_OUT,
                e.u64(*busy_ns)
                    .u64(*bytes_rx)
                    .u64(*bytes_tx)
                    .u64(*spmv_calls)
                    .u64(*spmv_t_calls)
                    .finish(),
            ),
            Msg::Shutdown { span } => (tag::SHUTDOWN, e.u64(*span).finish()),
            Msg::ShutdownAck => (tag::SHUTDOWN_ACK, e.finish()),
            Msg::ClockProbe { seq, t_coord_ns } => {
                (tag::CLOCK_PROBE, e.u64(*seq).u64(*t_coord_ns).finish())
            }
            Msg::ClockAck {
                seq,
                t_coord_ns,
                t_worker_ns,
            } => (
                tag::CLOCK_ACK,
                e.u64(*seq).u64(*t_coord_ns).u64(*t_worker_ns).finish(),
            ),
            Msg::Trace {
                seq,
                busy_ns,
                bytes_rx,
                bytes_tx,
                spmv_calls,
                spmv_t_calls,
                ndjson,
            } => (
                tag::TRACE,
                e.u64(*seq)
                    .u64(*busy_ns)
                    .u64(*bytes_rx)
                    .u64(*bytes_tx)
                    .u64(*spmv_calls)
                    .u64(*spmv_t_calls)
                    .str(ndjson)
                    .finish(),
            ),
            Msg::Err { msg } => (tag::ERR, e.str(msg).finish()),
        }
    }

    /// Parse a frame back into a message.
    pub fn decode(t: u8, payload: &[u8]) -> io::Result<Msg> {
        let mut d = Dec::new(payload);
        let msg = match t {
            tag::HELLO => Msg::Hello {
                shard: d.u64()?,
                n_shards: d.u64()?,
                threads: d.u64()?,
                trace_id: d.u64()?,
                flags: d.u64()?,
            },
            tag::MATRIX => Msg::Matrix {
                n_cols: d.u64()?,
                row0: d.u64()?,
                n_views: d.u64()?,
                n_bins: d.u64()?,
                nx: d.u64()?,
                ny: d.u64()?,
                row_ptr: d.u64s()?,
                col_idx: d.u32s()?,
                vals: d.f64s()?,
            },
            tag::MATRIX_ACK => Msg::MatrixAck {
                col_lo: d.u64()?,
                col_hi: d.u64()?,
                exec: d.str()?,
                pid: d.u64()?,
            },
            tag::SPMV => Msg::Spmv {
                span: d.u64()?,
                x: d.f64s()?,
            },
            tag::SPMV_OUT => Msg::SpmvOut { y: d.f64s()? },
            tag::SPMV_T => Msg::SpmvT {
                span: d.u64()?,
                y: d.f64s()?,
            },
            tag::SPMV_T_OUT => Msg::SpmvTOut {
                col_lo: d.u64()?,
                partial: d.f64s()?,
            },
            tag::ABS_SUMS => Msg::AbsSums { span: d.u64()? },
            tag::ABS_SUMS_OUT => Msg::AbsSumsOut {
                row: d.f64s()?,
                col_lo: d.u64()?,
                col: d.f64s()?,
            },
            tag::STATS => Msg::Stats { span: d.u64()? },
            tag::STATS_OUT => Msg::StatsOut {
                busy_ns: d.u64()?,
                bytes_rx: d.u64()?,
                bytes_tx: d.u64()?,
                spmv_calls: d.u64()?,
                spmv_t_calls: d.u64()?,
            },
            tag::SHUTDOWN => Msg::Shutdown { span: d.u64()? },
            tag::SHUTDOWN_ACK => Msg::ShutdownAck,
            tag::CLOCK_PROBE => Msg::ClockProbe {
                seq: d.u64()?,
                t_coord_ns: d.u64()?,
            },
            tag::CLOCK_ACK => Msg::ClockAck {
                seq: d.u64()?,
                t_coord_ns: d.u64()?,
                t_worker_ns: d.u64()?,
            },
            tag::TRACE => Msg::Trace {
                seq: d.u64()?,
                busy_ns: d.u64()?,
                bytes_rx: d.u64()?,
                bytes_tx: d.u64()?,
                spmv_calls: d.u64()?,
                spmv_t_calls: d.u64()?,
                ndjson: d.str()?,
            },
            tag::ERR => Msg::Err { msg: d.str()? },
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown frame tag {other}"),
                ))
            }
        };
        d.finish()?;
        Ok(msg)
    }

    /// Send over a connection.
    pub fn send<S: io::Read + io::Write>(&self, conn: &mut crate::wire::Conn<S>) -> io::Result<()> {
        let (t, payload) = self.encode();
        conn.send(t, &payload)
    }

    /// Receive from a connection; a received [`Msg::Err`] becomes an
    /// `io::Error` so callers can `?` through protocol failures.
    pub fn recv<S: io::Read + io::Write>(conn: &mut crate::wire::Conn<S>) -> io::Result<Msg> {
        let (t, payload) = conn.recv()?;
        match Msg::decode(t, &payload)? {
            Msg::Err { msg } => Err(io::Error::other(format!("peer error: {msg}"))),
            m => Ok(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: Msg) {
        let (t, payload) = m.encode();
        let back = Msg::decode(t, &payload).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(Msg::Hello {
            shard: 2,
            n_shards: 4,
            threads: 3,
            trace_id: 0xfeed_beef,
            flags: super::hello_flags::STREAM_FULL_REGISTRY,
        });
        round_trip(Msg::Matrix {
            n_cols: 9,
            row0: 12,
            n_views: 3,
            n_bins: 2,
            nx: 3,
            ny: 3,
            row_ptr: vec![0, 2, 2, 5, 6, 6, 7],
            col_idx: vec![0, 3, 1, 2, 8, 4, 5],
            vals: vec![1.0, -2.0, 0.5, 3.25, -0.0, 7.0, 9.0],
        });
        round_trip(Msg::MatrixAck {
            col_lo: 1,
            col_hi: 9,
            exec: "CSCV-Z".into(),
            pid: 4242,
        });
        round_trip(Msg::Spmv {
            span: 17,
            x: vec![1.0, 2.0, 3.0],
        });
        round_trip(Msg::SpmvOut { y: vec![-1.5] });
        round_trip(Msg::SpmvT {
            span: 18,
            y: vec![0.25, 0.5],
        });
        round_trip(Msg::SpmvTOut {
            col_lo: 4,
            partial: vec![8.0, 9.0],
        });
        round_trip(Msg::AbsSums { span: 19 });
        round_trip(Msg::AbsSumsOut {
            row: vec![1.0],
            col_lo: 0,
            col: vec![2.0, 3.0],
        });
        round_trip(Msg::Stats { span: 0 });
        round_trip(Msg::StatsOut {
            busy_ns: 123,
            bytes_rx: 456,
            bytes_tx: 789,
            spmv_calls: 10,
            spmv_t_calls: 11,
        });
        round_trip(Msg::Shutdown { span: 20 });
        round_trip(Msg::ShutdownAck);
        round_trip(Msg::ClockProbe {
            seq: 1,
            t_coord_ns: 123_456,
        });
        round_trip(Msg::ClockAck {
            seq: 1,
            t_coord_ns: 123_456,
            t_worker_ns: 99_000,
        });
        round_trip(Msg::Trace {
            seq: 3,
            busy_ns: 777,
            bytes_rx: 10,
            bytes_tx: 20,
            spmv_calls: 4,
            spmv_t_calls: 5,
            ndjson: "{\"type\":\"span\",\"name\":\"w\"}\n".into(),
        });
        round_trip(Msg::Err { msg: "boom".into() });
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_rejected() {
        assert!(Msg::decode(200, &[]).is_err());
        let (t, mut payload) = Msg::AbsSums { span: 0 }.encode();
        payload.push(0);
        assert!(Msg::decode(t, &payload).is_err());
    }

    #[test]
    fn recv_turns_err_frames_into_io_errors() {
        let (a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut ca = crate::wire::Conn::new(a);
        let mut cb = crate::wire::Conn::new(b);
        Msg::Err { msg: "nope".into() }.send(&mut ca).unwrap();
        let e = Msg::recv(&mut cb).unwrap_err();
        assert!(e.to_string().contains("nope"));
    }
}
