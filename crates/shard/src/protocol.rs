//! The coordinator↔worker message set.
//!
//! A deliberately small RPC surface: every collective a solver needs is
//! one request/reply pair, and every request is issued to *all* workers
//! before any reply is read, so workers compute concurrently while the
//! coordinator drains replies in fixed shard order.
//!
//! ```text
//! coordinator                         worker
//!   Hello{shard,n_shards,threads} ──▶
//!   Matrix{shard CSR + layout}    ──▶  builds CscvExec / CSR pair
//!                                 ◀──  MatrixAck{col window, exec name}
//!   Spmv{x}                       ──▶  y_s = A_s x
//!                                 ◀──  SpmvOut{y_s}
//!   SpmvT{y_s}                    ──▶  x̃_s = A_sᵀ y_s
//!                                 ◀──  SpmvTOut{x̃_s[window]}
//!   AbsSums                       ──▶
//!                                 ◀──  AbsSumsOut{row sums, col sums[window]}
//!   Stats                         ──▶
//!                                 ◀──  StatsOut{busy ns, bytes, calls}
//!   Shutdown                      ──▶
//!                                 ◀──  ShutdownAck
//! ```
//!
//! Layouts are fixed little-endian ([`crate::wire`]); `Msg::encode` /
//! [`Msg::decode`] are exact inverses (round-trip tested below).

use crate::wire::{Dec, Enc};
use std::io;

/// Frame tags (one per variant; `Err` is 255 so it stands out in dumps).
mod tag {
    pub const HELLO: u8 = 1;
    pub const MATRIX: u8 = 2;
    pub const MATRIX_ACK: u8 = 3;
    pub const SPMV: u8 = 4;
    pub const SPMV_OUT: u8 = 5;
    pub const SPMV_T: u8 = 6;
    pub const SPMV_T_OUT: u8 = 7;
    pub const ABS_SUMS: u8 = 8;
    pub const ABS_SUMS_OUT: u8 = 9;
    pub const STATS: u8 = 10;
    pub const STATS_OUT: u8 = 11;
    pub const SHUTDOWN: u8 = 12;
    pub const SHUTDOWN_ACK: u8 = 13;
    pub const ERR: u8 = 255;
}

/// One protocol message. See the module docs for the exchange order.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Coordinator → worker, first frame: identity and pool width.
    Hello {
        shard: u64,
        n_shards: u64,
        threads: u64,
    },
    /// Coordinator → worker: the shard's rows as a rebased CSR, plus
    /// the view-aligned sinogram layout (`n_views = 0` means "not
    /// view-aligned; use the CSR executor pair") and image shape.
    Matrix {
        n_cols: u64,
        /// First global row of this shard (placement offset).
        row0: u64,
        n_views: u64,
        n_bins: u64,
        nx: u64,
        ny: u64,
        row_ptr: Vec<u64>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    },
    /// Worker → coordinator: column support window (the adjoint halo)
    /// and the executor the worker built.
    MatrixAck {
        col_lo: u64,
        col_hi: u64,
        exec: String,
    },
    /// Coordinator → worker: full input vector for `y_s = A_s x`.
    Spmv { x: Vec<f64> },
    /// Worker → coordinator: this shard's contiguous output rows.
    SpmvOut { y: Vec<f64> },
    /// Coordinator → worker: this shard's slice of `y` for `x̃ = A_sᵀ y`.
    SpmvT { y: Vec<f64> },
    /// Worker → coordinator: partial `x̃` trimmed to the column window.
    SpmvTOut { col_lo: u64, partial: Vec<f64> },
    /// Coordinator → worker: request SIRT weighting sums.
    AbsSums,
    /// Worker → coordinator: `|A_s|` row sums (shard rows) and column
    /// sums trimmed to the column window.
    AbsSumsOut {
        row: Vec<f64>,
        col_lo: u64,
        col: Vec<f64>,
    },
    /// Coordinator → worker: request execution statistics.
    Stats,
    /// Worker → coordinator: cumulative execution statistics.
    StatsOut {
        busy_ns: u64,
        bytes_rx: u64,
        bytes_tx: u64,
        spmv_calls: u64,
        spmv_t_calls: u64,
    },
    /// Coordinator → worker: drain and exit after acknowledging.
    Shutdown,
    /// Worker → coordinator: final frame before exit.
    ShutdownAck,
    /// Either direction: protocol failure with a reason.
    Err { msg: String },
}

impl Msg {
    /// Serialize to `(tag, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut e = Enc::new();
        match self {
            Msg::Hello {
                shard,
                n_shards,
                threads,
            } => (
                tag::HELLO,
                e.u64(*shard).u64(*n_shards).u64(*threads).finish(),
            ),
            Msg::Matrix {
                n_cols,
                row0,
                n_views,
                n_bins,
                nx,
                ny,
                row_ptr,
                col_idx,
                vals,
            } => (
                tag::MATRIX,
                e.u64(*n_cols)
                    .u64(*row0)
                    .u64(*n_views)
                    .u64(*n_bins)
                    .u64(*nx)
                    .u64(*ny)
                    .u64s(row_ptr)
                    .u32s(col_idx)
                    .f64s(vals)
                    .finish(),
            ),
            Msg::MatrixAck {
                col_lo,
                col_hi,
                exec,
            } => (
                tag::MATRIX_ACK,
                e.u64(*col_lo).u64(*col_hi).str(exec).finish(),
            ),
            Msg::Spmv { x } => (tag::SPMV, e.f64s(x).finish()),
            Msg::SpmvOut { y } => (tag::SPMV_OUT, e.f64s(y).finish()),
            Msg::SpmvT { y } => (tag::SPMV_T, e.f64s(y).finish()),
            Msg::SpmvTOut { col_lo, partial } => {
                (tag::SPMV_T_OUT, e.u64(*col_lo).f64s(partial).finish())
            }
            Msg::AbsSums => (tag::ABS_SUMS, e.finish()),
            Msg::AbsSumsOut { row, col_lo, col } => (
                tag::ABS_SUMS_OUT,
                e.f64s(row).u64(*col_lo).f64s(col).finish(),
            ),
            Msg::Stats => (tag::STATS, e.finish()),
            Msg::StatsOut {
                busy_ns,
                bytes_rx,
                bytes_tx,
                spmv_calls,
                spmv_t_calls,
            } => (
                tag::STATS_OUT,
                e.u64(*busy_ns)
                    .u64(*bytes_rx)
                    .u64(*bytes_tx)
                    .u64(*spmv_calls)
                    .u64(*spmv_t_calls)
                    .finish(),
            ),
            Msg::Shutdown => (tag::SHUTDOWN, e.finish()),
            Msg::ShutdownAck => (tag::SHUTDOWN_ACK, e.finish()),
            Msg::Err { msg } => (tag::ERR, e.str(msg).finish()),
        }
    }

    /// Parse a frame back into a message.
    pub fn decode(t: u8, payload: &[u8]) -> io::Result<Msg> {
        let mut d = Dec::new(payload);
        let msg = match t {
            tag::HELLO => Msg::Hello {
                shard: d.u64()?,
                n_shards: d.u64()?,
                threads: d.u64()?,
            },
            tag::MATRIX => Msg::Matrix {
                n_cols: d.u64()?,
                row0: d.u64()?,
                n_views: d.u64()?,
                n_bins: d.u64()?,
                nx: d.u64()?,
                ny: d.u64()?,
                row_ptr: d.u64s()?,
                col_idx: d.u32s()?,
                vals: d.f64s()?,
            },
            tag::MATRIX_ACK => Msg::MatrixAck {
                col_lo: d.u64()?,
                col_hi: d.u64()?,
                exec: d.str()?,
            },
            tag::SPMV => Msg::Spmv { x: d.f64s()? },
            tag::SPMV_OUT => Msg::SpmvOut { y: d.f64s()? },
            tag::SPMV_T => Msg::SpmvT { y: d.f64s()? },
            tag::SPMV_T_OUT => Msg::SpmvTOut {
                col_lo: d.u64()?,
                partial: d.f64s()?,
            },
            tag::ABS_SUMS => Msg::AbsSums,
            tag::ABS_SUMS_OUT => Msg::AbsSumsOut {
                row: d.f64s()?,
                col_lo: d.u64()?,
                col: d.f64s()?,
            },
            tag::STATS => Msg::Stats,
            tag::STATS_OUT => Msg::StatsOut {
                busy_ns: d.u64()?,
                bytes_rx: d.u64()?,
                bytes_tx: d.u64()?,
                spmv_calls: d.u64()?,
                spmv_t_calls: d.u64()?,
            },
            tag::SHUTDOWN => Msg::Shutdown,
            tag::SHUTDOWN_ACK => Msg::ShutdownAck,
            tag::ERR => Msg::Err { msg: d.str()? },
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown frame tag {other}"),
                ))
            }
        };
        d.finish()?;
        Ok(msg)
    }

    /// Send over a connection.
    pub fn send<S: io::Read + io::Write>(&self, conn: &mut crate::wire::Conn<S>) -> io::Result<()> {
        let (t, payload) = self.encode();
        conn.send(t, &payload)
    }

    /// Receive from a connection; a received [`Msg::Err`] becomes an
    /// `io::Error` so callers can `?` through protocol failures.
    pub fn recv<S: io::Read + io::Write>(conn: &mut crate::wire::Conn<S>) -> io::Result<Msg> {
        let (t, payload) = conn.recv()?;
        match Msg::decode(t, &payload)? {
            Msg::Err { msg } => Err(io::Error::other(format!("peer error: {msg}"))),
            m => Ok(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: Msg) {
        let (t, payload) = m.encode();
        let back = Msg::decode(t, &payload).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(Msg::Hello {
            shard: 2,
            n_shards: 4,
            threads: 3,
        });
        round_trip(Msg::Matrix {
            n_cols: 9,
            row0: 12,
            n_views: 3,
            n_bins: 2,
            nx: 3,
            ny: 3,
            row_ptr: vec![0, 2, 2, 5, 6, 6, 7],
            col_idx: vec![0, 3, 1, 2, 8, 4, 5],
            vals: vec![1.0, -2.0, 0.5, 3.25, -0.0, 7.0, 9.0],
        });
        round_trip(Msg::MatrixAck {
            col_lo: 1,
            col_hi: 9,
            exec: "CSCV-Z".into(),
        });
        round_trip(Msg::Spmv {
            x: vec![1.0, 2.0, 3.0],
        });
        round_trip(Msg::SpmvOut { y: vec![-1.5] });
        round_trip(Msg::SpmvT { y: vec![0.25, 0.5] });
        round_trip(Msg::SpmvTOut {
            col_lo: 4,
            partial: vec![8.0, 9.0],
        });
        round_trip(Msg::AbsSums);
        round_trip(Msg::AbsSumsOut {
            row: vec![1.0],
            col_lo: 0,
            col: vec![2.0, 3.0],
        });
        round_trip(Msg::Stats);
        round_trip(Msg::StatsOut {
            busy_ns: 123,
            bytes_rx: 456,
            bytes_tx: 789,
            spmv_calls: 10,
            spmv_t_calls: 11,
        });
        round_trip(Msg::Shutdown);
        round_trip(Msg::ShutdownAck);
        round_trip(Msg::Err { msg: "boom".into() });
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_rejected() {
        assert!(Msg::decode(200, &[]).is_err());
        let (t, mut payload) = Msg::AbsSums.encode();
        payload.push(0);
        assert!(Msg::decode(t, &payload).is_err());
    }

    #[test]
    fn recv_turns_err_frames_into_io_errors() {
        let (a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut ca = crate::wire::Conn::new(a);
        let mut cb = crate::wire::Conn::new(b);
        Msg::Err { msg: "nope".into() }.send(&mut ca).unwrap();
        let e = Msg::recv(&mut cb).unwrap_err();
        assert!(e.to_string().contains("nope"));
    }
}
