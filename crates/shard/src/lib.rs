//! Sharded multi-process CT reconstruction (ROADMAP item 1).
//!
//! The paper's CSCV SpMV is the *intra-node* kernel; this crate is the
//! first inter-process layer on top of it. An assembled system matrix is
//! partitioned into contiguous **row shards** ([`plan`]), a coordinator
//! hands each shard to a worker *process* over a framed Unix-socket
//! protocol ([`wire`], [`protocol`]), and the workers execute their
//! shard through the existing executor stack — a [`cscv_core::CscvExec`]
//! autotuned via `CscvExec::auto` when the shard is view-aligned, the
//! tuned CSR pair otherwise ([`worker`]).
//!
//! Data flow per solver iteration (row decomposition, as in the
//! MLEM/LAIK row-block scheme):
//!
//! * **Forward** `y = A x`: broadcast the full `x`, gather each shard's
//!   contiguous `y` slice. Placement only — no floating-point merge, so
//!   the forward product is bitwise equal to the single-process result
//!   for any shard count.
//! * **Adjoint** `x = Aᵀ y`: scatter each shard's `y` slice, gather
//!   full-width partial `x̃` vectors (trimmed to each shard's column
//!   support — the halo window), and merge them with a **fixed-order
//!   tree reduction** ([`cluster::tree_reduce`]). The reduction order
//!   depends only on the shard indices, never on reply arrival order,
//!   so repeated runs are deterministic and `shards = 1` is
//!   byte-identical to the local executor.
//!
//! [`ShardedOperator`] packages a running [`cluster::Cluster`] as a
//! [`cscv_recon::LinearOperator`], so every solver in `cscv-recon`
//! (SIRT, CGLS, Landweber, …) runs unmodified across processes.
//! `cscv-xtask shard` drives the whole stack end to end and gates
//! single- vs multi-process residual equivalence.

pub mod cluster;
pub mod operator;
pub mod plan;
pub mod protocol;
pub mod wire;
pub mod worker;

pub use cluster::{
    Cluster, ClusterStats, ClusterTelemetry, Launch, ShutdownReport, WorkerHealth, WorkerReport,
};
pub use operator::{LocalOperator, ShardedOperator};
pub use plan::{slice_rows, PartitionMethod, ShardPlan};
pub use worker::WorkerStats;
