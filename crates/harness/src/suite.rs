//! Dataset preparation and executor fields — the glue every experiment
//! driver shares.

use cscv_core::layout::ImageShape;
use cscv_core::{build, CscvExec, CscvParams, SinoLayout, Variant};
use cscv_ct::system::SystemMatrix;
use cscv_ct::{CtDataset, Phantom};
use cscv_simd::MaskExpand;
use cscv_sparse::formats::{
    CscParallelExec, Csr5Exec, CsrExec, CvrExec, MergeCsrExec, SellCSigmaExec, Spc5Exec,
};
use cscv_sparse::{Csc, Csr, Scalar, SpmvExecutor};

/// A dataset with its assembled matrices and a realistic input vector.
pub struct PreparedDataset<T> {
    pub ds: CtDataset,
    pub csr: Csr<T>,
    pub csc: Csc<T>,
    pub layout: SinoLayout,
    pub img: ImageShape,
    /// Input image: the rasterized Shepp-Logan phantom (realistic value
    /// distribution rather than synthetic ones).
    pub x: Vec<T>,
}

/// Assemble the matrices for a dataset (strip projector model).
pub fn prepare<T: Scalar>(ds: &CtDataset) -> PreparedDataset<T> {
    let ct = ds.geometry();
    let csc = SystemMatrix::assemble_csc::<T>(&ct);
    let csr = csc.to_csr();
    let phantom = Phantom::shepp_logan().rasterize(&ct.grid);
    PreparedDataset {
        ds: *ds,
        csr,
        csc,
        layout: SinoLayout {
            n_views: ds.n_views,
            n_bins: ds.n_bins,
        },
        img: ImageShape {
            nx: ds.img,
            ny: ds.img,
        },
        x: phantom.into_iter().map(T::from_f64).collect(),
    }
}

/// Build a CSCV executor for a prepared dataset.
pub fn cscv_exec<T: Scalar + MaskExpand>(
    prep: &PreparedDataset<T>,
    params: CscvParams,
    variant: Variant,
) -> CscvExec<T> {
    CscvExec::new(build(&prep.csc, prep.layout, prep.img, params, variant))
}

/// Named executor constructors, lazily invoked so drivers can build one
/// implementation at a time (peak memory = matrices + one executor).
///
/// `threads_hint` shapes CVR's thread-dependent layout.
pub type ExecBuilder<T> = Box<dyn Fn(&PreparedDataset<T>, usize) -> Box<dyn SpmvExecutor<T>>>;

/// The full implementation field of the paper's experiments:
/// CSCV-Z, CSCV-M and the seven reproduced baselines.
pub fn executor_builders<T: Scalar + MaskExpand>() -> Vec<(&'static str, ExecBuilder<T>)> {
    vec![
        (
            "CSCV-Z",
            Box::new(|p: &PreparedDataset<T>, _| {
                Box::new(cscv_exec(p, CscvParams::default_z(), Variant::Z))
                    as Box<dyn SpmvExecutor<T>>
            }) as ExecBuilder<T>,
        ),
        (
            "CSCV-M",
            Box::new(|p: &PreparedDataset<T>, _| {
                Box::new(cscv_exec(p, CscvParams::default_m(), Variant::M))
            }),
        ),
        (
            "MKL-CSR(analog)",
            Box::new(|p: &PreparedDataset<T>, _| Box::new(CsrExec::new(p.csr.clone()))),
        ),
        (
            "MKL-CSC(analog)",
            Box::new(|p: &PreparedDataset<T>, _| Box::new(CscParallelExec::new(p.csc.clone()))),
        ),
        (
            "Merge(analog)",
            Box::new(|p: &PreparedDataset<T>, _| Box::new(MergeCsrExec::new(p.csr.clone()))),
        ),
        (
            "CSR5(analog)",
            Box::new(|p: &PreparedDataset<T>, _| Box::new(Csr5Exec::new(&p.csr))),
        ),
        (
            "ESB/SELL(analog)",
            Box::new(|p: &PreparedDataset<T>, _| Box::new(SellCSigmaExec::new(&p.csr))),
        ),
        (
            "SPC5(analog)",
            Box::new(|p: &PreparedDataset<T>, _| Box::new(Spc5Exec::<T, 8>::new(&p.csr))),
        ),
        (
            "CVR(analog)",
            Box::new(|p: &PreparedDataset<T>, hint| Box::new(CvrExec::new(&p.csr, hint))),
        ),
    ]
}

/// Build every executor eagerly (small datasets / tests).
pub fn executor_field<T: Scalar + MaskExpand>(
    prep: &PreparedDataset<T>,
    threads_hint: usize,
) -> Vec<Box<dyn SpmvExecutor<T>>> {
    executor_builders::<T>()
        .into_iter()
        .map(|(_, b)| b(prep, threads_hint))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscv_ct::datasets;
    use cscv_sparse::{executor::validate_against, ThreadPool};

    #[test]
    fn every_field_member_matches_reference_f32() {
        let prep = prepare::<f32>(&datasets::tiny());
        let mut y_ref = vec![0.0f32; prep.csr.n_rows()];
        prep.csr.spmv_serial(&prep.x, &mut y_ref);
        let pool = ThreadPool::new(2);
        for (name, builder) in executor_builders::<f32>() {
            let exec = builder(&prep, 2);
            assert_eq!(exec.nnz_orig(), prep.csr.nnz(), "{name}");
            validate_against(exec.as_ref(), &prep.x, &y_ref, &pool, 5e-3);
        }
    }

    #[test]
    fn every_field_member_matches_reference_f64() {
        let prep = prepare::<f64>(&datasets::tiny());
        let mut y_ref = vec![0.0f64; prep.csr.n_rows()];
        prep.csr.spmv_serial(&prep.x, &mut y_ref);
        let pool = ThreadPool::new(3);
        for exec in executor_field::<f64>(&prep, 3) {
            validate_against(exec.as_ref(), &prep.x, &y_ref, &pool, 1e-10);
        }
    }

    #[test]
    fn prepared_dataset_shapes() {
        let prep = prepare::<f32>(&datasets::tiny());
        assert_eq!(prep.csr.n_cols(), 1024);
        assert_eq!(prep.x.len(), 1024);
        assert_eq!(prep.csc.nnz(), prep.csr.nnz());
        // Phantom input is non-trivial.
        assert!(prep.x.iter().any(|&v| v != 0.0));
    }
}
