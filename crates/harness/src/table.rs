//! Plain-text table and CSV rendering for the experiment drivers.
//!
//! The paper's artifacts are tables and line plots; the drivers emit
//! aligned text tables (for the terminal / EXPERIMENTS.md) and CSV (for
//! downstream plotting) using this tiny renderer — no serde needed.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity");
        self.rows.push(row);
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (naive quoting: cells with commas get quoted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(&esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(&esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `digits` decimals.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format bytes as a human-readable MiB value.
pub fn mib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.add_row(vec!["a", "1"]);
        t.add_row(vec!["longer-name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer-name"));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["only-one"]);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(vec!["k", "v"]);
        t.add_row(vec!["x,y", "pl\"ain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"pl\"\"ain\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(f(3.24159, 2), "3.24");
        assert_eq!(mib(1 << 20), "1.0");
    }
}
