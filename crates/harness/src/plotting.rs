//! Tiny ASCII plotting for experiment summaries.
//!
//! The paper's Figs. 9–11 are plots; the drivers emit tables (and CSV
//! for real plotting), but an inline bar chart makes terminal output and
//! EXPERIMENTS.md legible at a glance.

/// Render labelled values as a horizontal ASCII bar chart.
///
/// Bars are scaled to `width` columns against the maximum value; each
/// line is `label  |█████···|  value`.
pub fn bar_chart(items: &[(String, f64)], width: usize) -> String {
    if items.is_empty() {
        return String::new();
    }
    let max = items
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::NEG_INFINITY, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in items {
        let filled = ((v / max) * width as f64).round().clamp(0.0, width as f64) as usize;
        out.push_str(&format!(
            "{label:<label_w$}  |{}{}| {v:.2}\n",
            "#".repeat(filled),
            "-".repeat(width - filled),
        ));
    }
    out
}

/// Render a series (e.g. GFLOP/s vs threads) as a one-line sparkline
/// using eight block heights.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|v| {
            let t = ((v - lo) / span * 7.0).round().clamp(0.0, 7.0) as usize;
            LEVELS[t]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let items = vec![("a".to_string(), 10.0), ("bb".to_string(), 5.0)];
        let s = bar_chart(&items, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(&"#".repeat(10)));
        assert!(lines[1].contains(&"#".repeat(5)));
        assert!(lines[1].starts_with("bb"));
    }

    #[test]
    fn empty_chart() {
        assert_eq!(bar_chart(&[], 10), "");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn sparkline_monotone() {
        let s = sparkline(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.chars().count(), 4);
        let first = s.chars().next().unwrap();
        let last = s.chars().last().unwrap();
        assert_eq!(first, '▁');
        assert_eq!(last, '█');
    }

    #[test]
    fn constant_series_is_flat_low() {
        let s = sparkline(&[2.0, 2.0, 2.0]);
        assert!(s.chars().all(|c| c == '▁'));
    }
}
