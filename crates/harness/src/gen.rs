//! Deterministic structure-aware matrix generators.
//!
//! One [`CaseDesc`] — a generator family, geometry dimensions, CSCV
//! blocking parameters and a PRNG seed — fully determines a matrix: the
//! same descriptor always builds the same triplets, with zero external
//! dependencies. The differential fuzzer (`cscv-xtask fuzz`) uses this
//! for shrinkable reproducers and its committed `.case` corpus; the
//! autotuner (`cscv-tune`) reuses the same descriptors as a portable
//! corpus format so tuning inputs are replayable text lines rather than
//! committed binary matrices.
//!
//! The one-line form is order-insensitive `key=value` pairs:
//!
//! ```text
//! kind=ct-banded views=9 bins=14 nx=4 ny=3 imgb=2 vvec=4 vxg=2 seed=7
//! ```

use cscv_core::layout::ImageShape;
use cscv_core::SinoLayout;
use cscv_simd::rng::XorShift64;
use cscv_sparse::Coo;

/// Matrix families the generator knows how to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenKind {
    /// Banded sinogram-like curves per pixel (the CSCV design target).
    CtBanded,
    /// Unstructured uniform sprinkle (worst case for IOBLR padding).
    UniformRandom,
    /// CT-like with ~half the columns completely empty.
    EmptyColumns,
    /// One view × one bin: a single-row matrix.
    SingleRow,
    /// Alternating bin-0 / bin-max entries: maximal curve-offset skew.
    MaxOffsetSkew,
    /// One pixel, many rays: a single tall column.
    TallSkinny,
    /// Dimensions beyond the index ceilings must yield a typed
    /// rejection, never a mis-built matrix (allocation-free check).
    OversizeReject,
}

impl GenKind {
    pub const ALL: &[GenKind] = &[
        GenKind::CtBanded,
        GenKind::UniformRandom,
        GenKind::EmptyColumns,
        GenKind::SingleRow,
        GenKind::MaxOffsetSkew,
        GenKind::TallSkinny,
        GenKind::OversizeReject,
    ];

    pub fn name(self) -> &'static str {
        match self {
            GenKind::CtBanded => "ct-banded",
            GenKind::UniformRandom => "uniform-random",
            GenKind::EmptyColumns => "empty-columns",
            GenKind::SingleRow => "single-row",
            GenKind::MaxOffsetSkew => "max-offset-skew",
            GenKind::TallSkinny => "tall-skinny",
            GenKind::OversizeReject => "oversize-reject",
        }
    }

    pub fn from_name(s: &str) -> Option<GenKind> {
        GenKind::ALL.iter().copied().find(|k| k.name() == s)
    }
}

/// One deterministic generator case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseDesc {
    pub kind: GenKind,
    pub n_views: usize,
    pub n_bins: usize,
    pub nx: usize,
    pub ny: usize,
    pub s_imgb: usize,
    pub s_vvec: usize,
    pub s_vxg: usize,
    pub seed: u64,
}

impl CaseDesc {
    /// One-line replayable form: `kind=ct-banded views=9 bins=14 …`.
    pub fn serialize(&self) -> String {
        format!(
            "kind={} views={} bins={} nx={} ny={} imgb={} vvec={} vxg={} seed={}",
            self.kind.name(),
            self.n_views,
            self.n_bins,
            self.nx,
            self.ny,
            self.s_imgb,
            self.s_vvec,
            self.s_vxg,
            self.seed
        )
    }

    /// Parse the [`serialize`](Self::serialize) form (order-insensitive).
    pub fn parse(line: &str) -> Result<CaseDesc, String> {
        let mut d = CaseDesc {
            kind: GenKind::CtBanded,
            n_views: 1,
            n_bins: 1,
            nx: 1,
            ny: 1,
            s_imgb: 1,
            s_vvec: 4,
            s_vxg: 1,
            seed: 0,
        };
        for tok in line.split_whitespace() {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("bad token `{tok}` (want key=value)"))?;
            let num = || -> Result<usize, String> {
                val.parse().map_err(|_| format!("bad value in `{tok}`"))
            };
            match key {
                "kind" => {
                    d.kind = GenKind::from_name(val)
                        .ok_or_else(|| format!("unknown generator kind `{val}`"))?;
                }
                "views" => d.n_views = num()?,
                "bins" => d.n_bins = num()?,
                "nx" => d.nx = num()?,
                "ny" => d.ny = num()?,
                "imgb" => d.s_imgb = num()?,
                "vvec" => d.s_vvec = num()?,
                "vxg" => d.s_vxg = num()?,
                "seed" => {
                    d.seed = val.parse().map_err(|_| format!("bad value in `{tok}`"))?;
                }
                _ => return Err(format!("unknown key `{key}`")),
            }
        }
        if !matches!(d.s_vvec, 4 | 8 | 16) {
            return Err(format!("vvec must be 4, 8 or 16 (got {})", d.s_vvec));
        }
        if d.n_views == 0
            || d.n_bins == 0
            || d.nx == 0
            || d.ny == 0
            || d.s_imgb == 0
            || d.s_vxg == 0
        {
            return Err("dimensions and parameters must be positive".into());
        }
        Ok(d)
    }
}

/// Derive a random case from one 64-bit seed.
pub fn random_desc(seed: u64) -> CaseDesc {
    let mut rng = XorShift64::new(seed);
    let kind = GenKind::ALL[rng.next_usize(GenKind::ALL.len())];
    let mut d = CaseDesc {
        kind,
        n_views: 1 + rng.next_usize(20),
        n_bins: 1 + rng.next_usize(24),
        nx: 1 + rng.next_usize(10),
        ny: 1 + rng.next_usize(10),
        s_imgb: 1 + rng.next_usize(8),
        s_vvec: [4, 8, 16][rng.next_usize(3)],
        s_vxg: 1 + rng.next_usize(8),
        seed,
    };
    match kind {
        GenKind::SingleRow => {
            d.n_views = 1;
            d.n_bins = 1;
        }
        GenKind::TallSkinny => {
            d.nx = 1;
            d.ny = 1;
            d.n_bins = 1 + rng.next_usize(8);
        }
        _ => {}
    }
    d
}

/// Deterministically build the case's matrix (empty for
/// `OversizeReject`, which never materializes entries).
pub fn generate(desc: &CaseDesc) -> Coo<f64> {
    let layout = SinoLayout {
        n_views: desc.n_views,
        n_bins: desc.n_bins,
    };
    let n_rows = layout.n_rows();
    let n_cols = desc.nx * desc.ny;
    let mut rng = XorShift64::new(desc.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut coo: Coo<f64> = Coo::new(n_rows, n_cols);
    // Nonzero magnitudes stay away from exact zero: CSCV-M's value
    // stream must contain no zeros (invariant CSCV-PAD-ZERO), and an
    // explicit stored 0.0 is indistinguishable from mis-placed padding.
    let val = |rng: &mut XorShift64| {
        let sign = if rng.next_f64() < 0.5 { -1.0 } else { 1.0 };
        sign * rng.range_f64(0.25, 1.0)
    };
    match desc.kind {
        GenKind::OversizeReject => {}
        GenKind::SingleRow => {
            for col in 0..n_cols {
                if rng.next_f64() < 0.7 {
                    coo.push(0, col, val(&mut rng));
                }
            }
        }
        GenKind::TallSkinny => {
            for row in 0..n_rows {
                if rng.next_f64() < 0.6 {
                    coo.push(row, 0, val(&mut rng));
                }
            }
        }
        GenKind::UniformRandom => {
            let density = rng.range_f64(0.05, 0.35);
            for col in 0..n_cols {
                for row in 0..n_rows {
                    if rng.next_f64() < density {
                        coo.push(row, col, val(&mut rng));
                    }
                }
            }
        }
        GenKind::MaxOffsetSkew => {
            for col in 0..n_cols {
                for v in 0..desc.n_views {
                    let bin = if v % 2 == 0 { 0 } else { desc.n_bins - 1 };
                    coo.push(layout.row_index(v, bin), col, val(&mut rng));
                }
            }
        }
        GenKind::CtBanded | GenKind::EmptyColumns => {
            let img = ImageShape {
                nx: desc.nx,
                ny: desc.ny,
            };
            for col in 0..n_cols {
                if desc.kind == GenKind::EmptyColumns && rng.next_f64() < 0.5 {
                    continue;
                }
                let (ix, iy) = img.pixel_of_col(col);
                let phase = rng.next_usize(desc.n_bins.max(1));
                let slope = 1 + rng.next_usize(3);
                let width = 1 + rng.next_usize(3);
                for v in 0..desc.n_views {
                    // Near-parallel piecewise curves (P1/P2): the bin
                    // center drifts with the view, offset per pixel.
                    let center = (phase + v * slope + ix + 2 * iy) % desc.n_bins;
                    for w in 0..width {
                        let bin = center + w;
                        if bin < desc.n_bins && rng.next_f64() < 0.9 {
                            coo.push(layout.row_index(v, bin), col, val(&mut rng));
                        }
                    }
                }
            }
        }
    }
    coo.sum_duplicates();
    coo
}

/// Read every non-comment line of a `.case` file (or every `.case` file
/// of a directory, sorted) into parsed descriptors, with the source
/// path and line attached to parse errors.
pub fn load_corpus(path: &std::path::Path) -> Result<Vec<CaseDesc>, String> {
    let files: Vec<std::path::PathBuf> = if path.is_file() {
        vec![path.to_path_buf()]
    } else if path.is_dir() {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("case"))
            .collect();
        files.sort();
        files
    } else {
        return Err(format!("corpus {} does not exist", path.display()));
    };
    let mut out = Vec::new();
    for file in files {
        let text =
            std::fs::read_to_string(&file).map_err(|e| format!("read {}: {e}", file.display()))?;
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            out.push(
                CaseDesc::parse(line).map_err(|e| format!("{}:{}: {e}", file.display(), i + 1))?,
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_serialization_round_trips() {
        let d = random_desc(1234);
        let line = d.serialize();
        assert_eq!(CaseDesc::parse(&line).unwrap(), d);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CaseDesc::parse("kind=nope seed=1").is_err());
        assert!(CaseDesc::parse("views").is_err());
        assert!(CaseDesc::parse("vvec=5 kind=ct-banded").is_err());
        assert!(CaseDesc::parse("kind=ct-banded views=0").is_err());
    }

    #[test]
    fn generator_is_deterministic() {
        let d =
            CaseDesc::parse("kind=ct-banded views=6 bins=9 nx=4 ny=3 imgb=2 vvec=4 vxg=2 seed=7")
                .unwrap();
        let a = generate(&d);
        let b = generate(&d);
        assert_eq!(a.entries(), b.entries());
        assert!(a.nnz() > 0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "filesystem access")]
    fn corpus_loader_reads_files_and_dirs() {
        let dir = std::env::temp_dir().join(format!("cscv-gen-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let d1 = random_desc(11);
        let d2 = random_desc(22);
        std::fs::write(
            dir.join("a.case"),
            format!("# comment\n{}\n\n{}\n", d1.serialize(), d2.serialize()),
        )
        .unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a case").unwrap();
        let cases = load_corpus(&dir).unwrap();
        assert_eq!(cases, vec![d1, d2]);
        let cases = load_corpus(&dir.join("a.case")).unwrap();
        assert_eq!(cases.len(), 2);
        assert!(load_corpus(&dir.join("missing")).is_err());
        std::fs::write(dir.join("b.case"), "kind=bogus\n").unwrap();
        assert!(load_corpus(&dir).unwrap_err().contains("b.case"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
