//! Machine-readable benchmark manifests (NDJSON).
//!
//! When `CSCV_MANIFEST_DIR` is set, every measurement taken through
//! [`measure_spmv`](crate::measure_spmv) / [`measure_spmm`](crate::measure_spmm)
//! is appended as one self-describing JSON object per line to
//! `<dir>/<driver>.ndjson`, where `driver` is the executable's file stem.
//! The CI perf-smoke gate (`perf_smoke_check` in `cscv-bench`) consumes
//! these files and compares them against a checked-in baseline.
//!
//! Recording is always compiled in (it is I/O at measurement boundaries,
//! not hot-path instrumentation, so it does not need the `trace` feature)
//! and is a no-op unless the environment variable is present. Writes are
//! best-effort: a benchmark run never fails because a manifest could not
//! be written.

use crate::timing::{LatencySummary, SpmmMeasurement, SpmvMeasurement};
use cscv_trace::json::Json;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, Ordering};

/// Manifest record schema version.
///
/// * **v1** (unversioned, PR 2): one best-of-run line per measurement —
///   `secs_min`, `gflops`, `mem_bytes`, `eff_bw_gbs` (+ `r_nnze` for
///   SpMV).
/// * **v2**: adds `"schema":2`, the per-rep `samples` array (seconds,
///   execution order), and the `secs_p50`/`secs_p90`/`secs_p99`/
///   `secs_max` summary, plus the `membw` record type for bandwidth
///   ceilings.
///
/// Consumers (`perf_smoke_check`, `cscv-xtask perf-report`) key off
/// field presence, not the version number, so v1 files keep parsing:
/// a line without `samples` is treated as a single-sample distribution
/// at `secs_min`.
pub const SCHEMA_VERSION: u64 = 2;

/// Directory manifests go to, if recording is enabled.
pub fn manifest_dir() -> Option<PathBuf> {
    std::env::var_os("CSCV_MANIFEST_DIR")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// The current executable's file stem, with any `-<hex hash>` suffix that
/// cargo appends to test binaries stripped (so reruns key identically).
pub fn driver_name() -> String {
    let stem = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "unknown".into());
    match stem.rsplit_once('-') {
        Some((base, tail))
            if !base.is_empty()
                && tail.len() == 16
                && tail.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            base.to_string()
        }
        _ => stem,
    }
}

/// Append one record to this driver's manifest (no-op without
/// `CSCV_MANIFEST_DIR`; errors are swallowed).
pub fn append(record: &Json) {
    let Some(dir) = manifest_dir() else { return };
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{}.ndjson", driver_name()));
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(f, "{}", record.to_string());
    }
}

/// Process-global shard context, packed as `shard * 2^32 + n_shards`
/// (−1 = unset). A shard worker sets this once at startup so every
/// measurement it records is attributable to its shard; single-process
/// drivers never touch it and their records stay unchanged.
// ATOMIC(statistic): a tag copied into measurement records — set once
// by the worker before measuring on the same thread; readers that race
// the store merely emit an untagged record, so Relaxed is sufficient.
static SHARD_CONTEXT: AtomicI64 = AtomicI64::new(-1);

/// Tag all subsequent spmv/spmm records with `"shard"`/`"shards"`.
pub fn set_shard_context(shard: usize, n_shards: usize) {
    let packed = ((shard as i64) << 32) | (n_shards as i64 & 0xffff_ffff);
    SHARD_CONTEXT.store(packed, Ordering::Relaxed);
}

/// Stop tagging records (tests; single-process drivers never need it).
pub fn clear_shard_context() {
    SHARD_CONTEXT.store(-1, Ordering::Relaxed);
}

/// The current shard context, if set.
pub fn shard_context() -> Option<(usize, usize)> {
    let packed = SHARD_CONTEXT.load(Ordering::Relaxed);
    (packed >= 0).then_some(((packed >> 32) as usize, (packed & 0xffff_ffff) as usize))
}

/// `"shard"`/`"shards"` fields when a shard context is active.
fn shard_fields() -> Vec<(&'static str, Json)> {
    match shard_context() {
        Some((shard, n_shards)) => vec![
            ("shard", (shard as u64).into()),
            ("shards", (n_shards as u64).into()),
        ],
        None => Vec::new(),
    }
}

/// The v2 distribution fields shared by spmv/spmm records.
fn distribution_fields(lat: &LatencySummary, samples: &[f64]) -> Vec<(&'static str, Json)> {
    vec![
        ("secs_p50", lat.p50.into()),
        ("secs_p90", lat.p90.into()),
        ("secs_p99", lat.p99.into()),
        ("secs_max", lat.max.into()),
        (
            "samples",
            Json::Arr(samples.iter().map(|&s| Json::Num(s)).collect()),
        ),
    ]
}

/// Record a single-RHS measurement.
pub fn record_spmv(m: &SpmvMeasurement) {
    let mut rec = vec![
        ("type", "spmv".into()),
        ("schema", SCHEMA_VERSION.into()),
        ("driver", driver_name().into()),
        ("name", m.name.as_str().into()),
        ("threads", m.threads.into()),
        ("k", 1u64.into()),
        ("secs_min", m.secs_min.into()),
        ("gflops", m.gflops.into()),
        ("mem_bytes", m.mem_requirement.into()),
        ("eff_bw_gbs", m.eff_bandwidth_gbs.into()),
        ("r_nnze", m.r_nnze.into()),
    ];
    rec.extend(shard_fields());
    rec.extend(distribution_fields(&m.latency(), &m.samples));
    append(&Json::obj(rec));
}

/// Record a batched (multi-RHS) measurement.
pub fn record_spmm(m: &SpmmMeasurement) {
    let mut rec = vec![
        ("type", "spmm".into()),
        ("schema", SCHEMA_VERSION.into()),
        ("driver", driver_name().into()),
        ("name", m.name.as_str().into()),
        ("threads", m.threads.into()),
        ("k", m.k.into()),
        ("secs_min", m.secs_min.into()),
        ("gflops", m.gflops.into()),
        ("mem_bytes", m.mem_requirement.into()),
        ("eff_bw_gbs", m.eff_bandwidth_gbs.into()),
    ];
    rec.extend(shard_fields());
    rec.extend(distribution_fields(&m.latency(), &m.samples));
    append(&Json::obj(rec));
}

/// Record one autotuner search outcome: what was chosen for which
/// (operation, scalar) pair, the sampled-benchmark seconds of the
/// winner vs the static heuristic, and how much searching it cost.
/// Written by `cscv-tune` on every cold search; warm cache hits do not
/// produce a record (they run no benchmark).
pub fn record_tune(
    op: &str,
    scalar: &str,
    config: &str,
    tuned_secs: f64,
    heuristic_secs: f64,
    candidates: usize,
    samples: usize,
) {
    append(&Json::obj(vec![
        ("type", "tune".into()),
        ("schema", SCHEMA_VERSION.into()),
        ("driver", driver_name().into()),
        ("op", op.into()),
        ("scalar", scalar.into()),
        ("config", config.into()),
        ("secs_min", tuned_secs.into()),
        ("heuristic_secs", heuristic_secs.into()),
        ("candidates", (candidates as u64).into()),
        ("samples", (samples as u64).into()),
    ]));
}

/// One sharded-solve outcome for `record_shard`: the equivalence
/// verdict and the traffic/merge costs behind it. Written by the
/// `cscv-xtask shard` driver, one line per (solver, worker-count) run;
/// the `shard-smoke` CI job uploads these as artifacts.
#[derive(Debug, Clone)]
pub struct ShardRunRecord<'a> {
    /// Case name (e.g. the committed smoke case's file stem).
    pub case: &'a str,
    pub solver: &'a str,
    /// Partitioner name ("stripe" / "bisect").
    pub method: &'a str,
    pub workers: usize,
    pub iterations: usize,
    /// Wall seconds for the sharded solve.
    pub secs: f64,
    /// Max per-iteration relative residual deviation vs single-process.
    pub max_rel_diff: f64,
    /// Whether image and trajectory matched the single-process run
    /// bit for bit (required when `workers == 1`).
    pub bitwise: bool,
    /// Coordinator-side wire traffic.
    pub bytes_tx: u64,
    pub bytes_rx: u64,
    /// Fixed-order tree-reduction time.
    pub reduce_ns: u64,
    /// Sum of worker-reported executor time.
    pub worker_busy_ns: u64,
    /// Executor names the workers built, comma-joined.
    pub execs: &'a str,
}

/// Record one sharded-solve equivalence outcome (`type: "shard"`).
pub fn record_shard(r: &ShardRunRecord) {
    append(&Json::obj(vec![
        ("type", "shard".into()),
        ("schema", SCHEMA_VERSION.into()),
        ("driver", driver_name().into()),
        ("case", r.case.into()),
        ("solver", r.solver.into()),
        ("method", r.method.into()),
        ("workers", (r.workers as u64).into()),
        ("iterations", (r.iterations as u64).into()),
        ("secs", r.secs.into()),
        ("max_rel_diff", r.max_rel_diff.into()),
        ("bitwise", Json::Bool(r.bitwise)),
        ("bytes_tx", r.bytes_tx.into()),
        ("bytes_rx", r.bytes_rx.into()),
        ("reduce_ns", r.reduce_ns.into()),
        ("worker_busy_ns", r.worker_busy_ns.into()),
        ("execs", r.execs.into()),
    ]));
}

/// Record a measured memory-bandwidth ceiling (the roofline input);
/// written whenever [`crate::membw::measure`] runs under
/// `CSCV_MANIFEST_DIR`, so `perf-report` finds the machine's ceiling
/// next to the kernel measurements it normalizes.
pub fn record_membw(bw: &crate::membw::Bandwidth) {
    append(&Json::obj(vec![
        ("type", "membw".into()),
        ("schema", SCHEMA_VERSION.into()),
        ("driver", driver_name().into()),
        ("read_gbs", bw.read_gbs().into()),
        ("triad_gbs", bw.triad_gbs().into()),
    ]));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_name_is_nonempty() {
        assert!(!driver_name().is_empty());
        // Cargo's test-binary hash suffix must be stripped.
        assert!(
            !driver_name().contains('-') || driver_name().rsplit('-').next().unwrap().len() != 16
        );
    }

    #[test]
    fn append_without_env_is_noop() {
        // Relies on the test runner not setting CSCV_MANIFEST_DIR.
        if manifest_dir().is_none() {
            append(&Json::obj(vec![("x", 1u64.into())]));
        }
    }

    #[test]
    fn records_round_trip_through_parser() {
        let m = SpmvMeasurement {
            name: "csr-serial".into(),
            threads: 2,
            secs_min: 0.25,
            gflops: 1.5,
            mem_requirement: 4096,
            eff_bandwidth_gbs: 0.9,
            r_nnze: 0.125,
            samples: vec![0.30, 0.25, 0.40, 0.27],
        };
        let j = Json::obj(vec![
            ("type", "spmv".into()),
            ("name", m.name.as_str().into()),
            ("threads", m.threads.into()),
            ("gflops", m.gflops.into()),
        ]);
        let back = Json::parse(&j.to_string()).unwrap();
        assert_eq!(back.get("type").and_then(Json::as_str), Some("spmv"));
        assert_eq!(back.get("gflops").and_then(Json::as_f64), Some(1.5));
    }

    #[test]
    fn shard_context_round_trips_and_tags_fields() {
        assert_eq!(shard_context(), None);
        assert!(shard_fields().is_empty());
        set_shard_context(3, 8);
        assert_eq!(shard_context(), Some((3, 8)));
        let fields = shard_fields();
        assert_eq!(fields.len(), 2);
        let obj = Json::obj(fields);
        assert_eq!(obj.get("shard").and_then(Json::as_f64), Some(3.0));
        assert_eq!(obj.get("shards").and_then(Json::as_f64), Some(8.0));
        clear_shard_context();
        assert_eq!(shard_context(), None);
    }

    #[test]
    fn v2_distribution_fields_round_trip() {
        let m = SpmvMeasurement {
            name: "csr-serial".into(),
            threads: 1,
            secs_min: 0.1,
            gflops: 1.0,
            mem_requirement: 64,
            eff_bandwidth_gbs: 0.5,
            r_nnze: 0.0,
            samples: vec![0.4, 0.1, 0.3, 0.2],
        };
        let lat = m.latency();
        let mut rec = vec![
            ("type", Json::from("spmv")),
            ("schema", SCHEMA_VERSION.into()),
        ];
        rec.extend(distribution_fields(&lat, &m.samples));
        let back = Json::parse(&Json::obj(rec).to_string()).unwrap();
        assert_eq!(back.get("schema").and_then(Json::as_f64), Some(2.0));
        assert_eq!(back.get("secs_p50").and_then(Json::as_f64), Some(0.2));
        assert_eq!(back.get("secs_max").and_then(Json::as_f64), Some(0.4));
        let samples = back.get("samples").and_then(Json::as_arr).unwrap();
        assert_eq!(samples.len(), 4);
        // Execution order is preserved, not sorted.
        assert_eq!(samples[0].as_f64(), Some(0.4));
    }
}
