//! Measurement harness for the CSCV experiment suite.
//!
//! Implements the paper's measurement methodology (§V-C): performance is
//! the **minimum** SpMV execution time over ≥ 100 iterations (immune to
//! fork-join and allocation noise), reported as
//! `F = 2·nnz(A)/T` GFLOP/s, alongside the memory-requirement model
//! `M_Rit = M(A)+M(x)+M(y)` and the effective-bandwidth ratio
//! `R_EM = M_Rit/(T·M_PBw)` where `M_PBw` comes from the built-in
//! STREAM-style bandwidth meter ([`membw`], the Intel MLC substitute).
//!
//! [`suite`] wires datasets to executor fields so every experiment
//! driver in `cscv-bench` is a short loop; [`table`] renders aligned
//! text tables and CSV.

pub mod gen;
pub mod manifest;
pub mod membw;
pub mod plotting;
pub mod roofline;
pub mod suite;
pub mod table;
pub mod timing;

pub use roofline::{classify, model_point, Bound, RooflinePoint};
pub use suite::{executor_field, prepare, PreparedDataset};
pub use timing::{
    measure_spmm, measure_spmv, modeled_batch_speedup, summarize_samples, LatencySummary,
    SpmmMeasurement, SpmvMeasurement,
};
