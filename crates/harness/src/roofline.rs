//! Roofline attribution: where a kernel sits against the memory wall.
//!
//! The paper's performance argument (§IV–V) is a bandwidth-ceiling
//! model: an SpMV that attains the machine's peak read bandwidth on its
//! `M_Rit` byte stream is as fast as the hardware allows, and the gap
//! between attained and peak bandwidth is the optimization headroom.
//! This module turns one measurement — useful flops, model bytes,
//! elapsed seconds — plus a ceiling from [`crate::membw`] into a
//! [`RooflinePoint`]:
//!
//! * **arithmetic intensity** `AI = flops / bytes` (flop/byte) — fixed
//!   by the format and `M_Rit(k)`, not by the machine;
//! * **roof** `AI · peak` (GFLOP/s) — the memory-roofline ceiling for
//!   that intensity (SpMV sits far left of any compute ridge, so the
//!   memory slope *is* the roof);
//! * **fraction of roof** — attained GFLOP/s over the roof, identical
//!   to attained GB/s over peak GB/s (the paper's `R_EM`);
//! * **bound classification** — a kernel attaining at least
//!   [`DEFAULT_BW_BOUND_FRACTION`] of peak bandwidth is
//!   *bandwidth-bound* (more bandwidth is the only way it gets faster);
//!   below that it is *latency-bound* (gathers, dependency chains, or
//!   imbalance stall it before the memory system saturates — the regime
//!   where CSCV-Z's padded-but-streamy layout beats CSCV-M).

use cscv_sparse::{Scalar, SpmvExecutor};

/// What limits a kernel, per the attained-bandwidth criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Attained bandwidth ≥ threshold·peak: streaming at the wall.
    Bandwidth,
    /// Attained bandwidth < threshold·peak: stalled below the wall.
    Latency,
}

impl Bound {
    /// Lowercase label used in reports and NDJSON.
    pub fn label(self) -> &'static str {
        match self {
            Bound::Bandwidth => "bandwidth-bound",
            Bound::Latency => "latency-bound",
        }
    }
}

/// Attained-bandwidth fraction of peak at which a kernel counts as
/// bandwidth-bound. Half the ceiling is the conventional cut: measured
/// SpMV at ≥ 50 % of STREAM peak has no latency headroom left worth
/// chasing, while kernels well below it scale with latency fixes
/// (reordering, blocking) rather than bandwidth.
pub const DEFAULT_BW_BOUND_FRACTION: f64 = 0.5;

/// One kernel's position on the memory roofline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflinePoint {
    /// Useful floating-point operations of one run.
    pub flops: f64,
    /// Model bytes moved (`M_Rit(k)`).
    pub bytes: f64,
    /// Elapsed seconds.
    pub secs: f64,
    /// Attained GFLOP/s.
    pub gflops: f64,
    /// Attained GB/s on the model byte stream.
    pub gbs: f64,
    /// Arithmetic intensity in flop/byte.
    pub ai: f64,
    /// Ceiling used, GB/s.
    pub peak_gbs: f64,
    /// Memory-roofline ceiling at this intensity, GFLOP/s.
    pub roof_gflops: f64,
    /// Attained over roof (= attained GB/s over peak GB/s).
    pub frac_of_roof: f64,
    pub bound: Bound,
}

/// Classify one measurement against a bandwidth ceiling, with an
/// explicit bandwidth-bound threshold (fraction of peak).
pub fn classify_with_threshold(
    flops: f64,
    bytes: f64,
    secs: f64,
    peak_gbs: f64,
    bw_fraction: f64,
) -> RooflinePoint {
    let valid = secs > 0.0 && bytes > 0.0 && peak_gbs > 0.0;
    let gflops = if secs > 0.0 { flops / secs / 1e9 } else { 0.0 };
    let gbs = if secs > 0.0 { bytes / secs / 1e9 } else { 0.0 };
    let ai = if bytes > 0.0 { flops / bytes } else { 0.0 };
    let roof_gflops = ai * peak_gbs;
    let frac_of_roof = if valid { gbs / peak_gbs } else { 0.0 };
    RooflinePoint {
        flops,
        bytes,
        secs,
        gflops,
        gbs,
        ai,
        peak_gbs,
        roof_gflops,
        frac_of_roof,
        bound: if frac_of_roof >= bw_fraction {
            Bound::Bandwidth
        } else {
            Bound::Latency
        },
    }
}

/// [`classify_with_threshold`] at [`DEFAULT_BW_BOUND_FRACTION`].
pub fn classify(flops: f64, bytes: f64, secs: f64, peak_gbs: f64) -> RooflinePoint {
    classify_with_threshold(flops, bytes, secs, peak_gbs, DEFAULT_BW_BOUND_FRACTION)
}

/// Roofline point of one executor doing a `k`-wide product in `secs`,
/// straight from its analytic model: `flops = k · 2·nnz`,
/// `bytes = M_Rit(k)`.
pub fn model_point<T: Scalar>(
    exec: &dyn SpmvExecutor<T>,
    k: usize,
    secs: f64,
    peak_gbs: f64,
) -> RooflinePoint {
    classify(
        k as f64 * exec.flops(),
        exec.memory_requirement_multi(k) as f64,
        secs,
        peak_gbs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscv_sparse::formats::CsrSerialExec;
    use cscv_sparse::Coo;

    fn small_exec() -> (CsrSerialExec<f64>, usize) {
        let mut coo = Coo::new(64, 64);
        let mut nnz = 0;
        for i in 0..64 {
            coo.push(i, i, 1.0);
            coo.push(i, (i + 1) % 64, 0.5);
            nnz += 2;
        }
        (CsrSerialExec::new(coo.to_csr()), nnz)
    }

    #[test]
    fn reproduces_the_m_rit_model_on_a_synthetic_matrix() {
        let (exec, nnz) = small_exec();
        for k in [1usize, 2, 4, 8] {
            let secs = 1e-3;
            let peak = 10.0;
            let p = model_point(&exec, k, secs, peak);
            // flops = k·2·nnz; bytes = M_Rit(k); AI is their ratio.
            assert_eq!(p.flops, (2 * nnz * k) as f64);
            assert_eq!(p.bytes, exec.memory_requirement_multi(k) as f64);
            let ai = (2 * nnz * k) as f64 / exec.memory_requirement_multi(k) as f64;
            assert!((p.ai - ai).abs() < 1e-15);
            // Identities: gflops/roof == gbs/peak == frac_of_roof.
            assert!((p.roof_gflops - ai * peak).abs() < 1e-12);
            assert!((p.gflops / p.roof_gflops - p.frac_of_roof).abs() < 1e-12);
            assert!((p.gbs / p.peak_gbs - p.frac_of_roof).abs() < 1e-12);
        }
        // Batching amortizes the matrix stream: AI grows with k.
        let ai1 = model_point(&exec, 1, 1.0, 10.0).ai;
        let ai8 = model_point(&exec, 8, 1.0, 10.0).ai;
        assert!(ai8 > ai1);
    }

    #[test]
    fn classification_threshold() {
        // 100 bytes in 1 s against a 200 B/s peak = 50% of roof →
        // bandwidth-bound at the default threshold (inclusive).
        let p = classify(10.0, 100.0, 1.0, 200.0 / 1e9);
        assert!((p.frac_of_roof - 0.5).abs() < 1e-12);
        assert_eq!(p.bound, Bound::Bandwidth);
        assert_eq!(p.bound.label(), "bandwidth-bound");
        // Just under the cut → latency-bound.
        let p = classify(10.0, 100.0, 1.0, 201.0 / 1e9);
        assert_eq!(p.bound, Bound::Latency);
        // Custom threshold.
        let p = classify_with_threshold(10.0, 100.0, 1.0, 400.0 / 1e9, 0.2);
        assert!((p.frac_of_roof - 0.25).abs() < 1e-12);
        assert_eq!(p.bound, Bound::Bandwidth);
    }

    #[test]
    fn degenerate_inputs_do_not_blow_up() {
        let p = classify(10.0, 0.0, 0.0, 0.0);
        assert_eq!(p.gflops, 0.0);
        assert_eq!(p.ai, 0.0);
        assert_eq!(p.frac_of_roof, 0.0);
        assert_eq!(p.bound, Bound::Latency);
        assert!(p.roof_gflops.is_finite());
    }

    #[test]
    fn a_kernel_at_peak_sits_on_the_roof() {
        // Model: kernel moves bytes exactly at peak → frac 1.0 and the
        // attained GFLOP/s equals the roof at its intensity.
        let bytes = 8e9;
        let peak_gbs = 8.0;
        let secs = 1.0; // 8 GB in 1 s = peak
        let p = classify(1e9, bytes, secs, peak_gbs);
        assert!((p.frac_of_roof - 1.0).abs() < 1e-12);
        assert!((p.gflops - p.roof_gflops).abs() < 1e-12);
        assert_eq!(p.bound, Bound::Bandwidth);
    }
}
