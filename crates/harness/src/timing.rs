//! Minimum-time SpMV measurement (paper §V-C) with full per-rep
//! timing distributions for the analysis tier.

use cscv_sparse::{Scalar, SpmvExecutor, ThreadPool};
use cscv_trace::hist::{exact_percentile, Histogram};
use std::time::Instant;

/// Latency distribution summary over one measurement's timed reps
/// (nearest-rank percentiles, seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub max: f64,
}

/// Summarize per-rep samples: exact percentiles when the sample set is
/// small (bench reps), the log-bucketed [`Histogram`] otherwise — the
/// same bucketing `perf-report` uses when pooling runs, so numbers
/// agree between a manifest line and an aggregated report.
pub fn summarize_samples(samples: &[f64]) -> LatencySummary {
    if samples.is_empty() {
        return LatencySummary {
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            max: 0.0,
        };
    }
    if samples.len() <= 256 {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        LatencySummary {
            p50: exact_percentile(&sorted, 50.0),
            p90: exact_percentile(&sorted, 90.0),
            p99: exact_percentile(&sorted, 99.0),
            max: *sorted.last().unwrap(),
        }
    } else {
        let h = Histogram::from_samples(samples);
        LatencySummary {
            p50: h.percentile(50.0),
            p90: h.percentile(90.0),
            p99: h.percentile(99.0),
            max: h.max(),
        }
    }
}

/// One executor's measurement on one matrix/pool combination.
#[derive(Debug, Clone)]
pub struct SpmvMeasurement {
    pub name: String,
    pub threads: usize,
    /// Minimum per-iteration time in seconds.
    pub secs_min: f64,
    /// `F = 2·nnz/T` in GFLOP/s.
    pub gflops: f64,
    /// `M_Rit` in bytes.
    pub mem_requirement: usize,
    /// Achieved effective bandwidth `M_Rit / T` in GB/s.
    pub eff_bandwidth_gbs: f64,
    /// Zero-padding rate of the storage format.
    pub r_nnze: f64,
    /// Every timed rep's duration in seconds, in execution order (the
    /// distribution behind `secs_min`; manifests record it verbatim).
    pub samples: Vec<f64>,
}

impl SpmvMeasurement {
    /// Effective memory-bandwidth usage ratio `R_EM` against a measured
    /// peak (bytes/s).
    pub fn r_em(&self, peak_bytes_per_sec: f64) -> f64 {
        if peak_bytes_per_sec <= 0.0 {
            return 0.0;
        }
        self.mem_requirement as f64 / (self.secs_min * peak_bytes_per_sec)
    }

    /// Percentile summary of the per-rep samples.
    pub fn latency(&self) -> LatencySummary {
        summarize_samples(&self.samples)
    }
}

/// Number of timed iterations: `CSCV_BENCH_ITERS` env override, default
/// `default`. The paper uses ≥ 100; the drivers default lower so the
/// full table regeneration stays laptop-friendly, and CI can crank it up.
pub fn bench_iters(default: usize) -> usize {
    std::env::var("CSCV_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Measure an executor: `warmup` untimed runs, then `iters` timed runs,
/// keeping the minimum (the paper's estimator).
pub fn measure_spmv<T: Scalar>(
    exec: &dyn SpmvExecutor<T>,
    x: &[T],
    y: &mut [T],
    pool: &ThreadPool,
    warmup: usize,
    iters: usize,
) -> SpmvMeasurement {
    assert!(iters >= 1);
    for _ in 0..warmup {
        exec.spmv(x, y, pool);
    }
    let mut best = f64::INFINITY;
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        exec.spmv(x, y, pool);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&y[..]);
        samples.push(dt);
        if dt < best {
            best = dt;
        }
    }
    let mem = exec.memory_requirement();
    let m = SpmvMeasurement {
        name: exec.name(),
        threads: pool.n_threads(),
        secs_min: best,
        gflops: exec.flops() / best / 1e9,
        mem_requirement: mem,
        eff_bandwidth_gbs: mem as f64 / best / 1e9,
        r_nnze: exec.r_nnze(),
        samples,
    };
    crate::manifest::record_spmv(&m);
    m
}

/// One executor's batched (multi-RHS) measurement.
#[derive(Debug, Clone)]
pub struct SpmmMeasurement {
    pub name: String,
    pub threads: usize,
    /// Batch width (number of right-hand sides).
    pub k: usize,
    /// Minimum per-iteration time in seconds (one full k-wide product).
    pub secs_min: f64,
    /// `F = 2·k·nnz/T` in GFLOP/s.
    pub gflops: f64,
    /// Batched memory requirement `M_Rit(k) = M(A) + k·(M(x)+M(y))`.
    pub mem_requirement: usize,
    /// Achieved effective bandwidth `M_Rit(k)/T` in GB/s.
    pub eff_bandwidth_gbs: f64,
    /// Every timed rep's duration in seconds, in execution order.
    pub samples: Vec<f64>,
}

impl SpmmMeasurement {
    /// Percentile summary of the per-rep samples.
    pub fn latency(&self) -> LatencySummary {
        summarize_samples(&self.samples)
    }

    /// Measured speedup over `k` independent single-RHS products, given
    /// the single-RHS minimum time on the same executor/pool.
    pub fn speedup_vs_singles(&self, single_secs_min: f64) -> f64 {
        if self.secs_min <= 0.0 {
            return 0.0;
        }
        self.k as f64 * single_secs_min / self.secs_min
    }
}

/// Memory-model prediction of the batched speedup: if SpMV is
/// bandwidth-bound, time is proportional to bytes moved, so `k`
/// amortized products against `k` independent ones gain
/// `k·M_Rit(1)/M_Rit(k)` — the matrix term is streamed once instead of
/// `k` times while the vector term still scales with `k`.
pub fn modeled_batch_speedup<T: Scalar>(exec: &dyn SpmvExecutor<T>, k: usize) -> f64 {
    let m1 = exec.memory_requirement_multi(1) as f64;
    let mk = exec.memory_requirement_multi(k) as f64;
    k as f64 * m1 / mk
}

/// Measure an executor's batched product `Y = A·X` over `k` column-major
/// right-hand sides: `warmup` untimed runs, then `iters` timed runs,
/// keeping the minimum (same estimator as [`measure_spmv`]).
pub fn measure_spmm<T: Scalar>(
    exec: &dyn SpmvExecutor<T>,
    x: &[T],
    k: usize,
    y: &mut [T],
    pool: &ThreadPool,
    warmup: usize,
    iters: usize,
) -> SpmmMeasurement {
    assert!(iters >= 1);
    for _ in 0..warmup {
        exec.spmv_multi(x, k, y, pool);
    }
    let mut best = f64::INFINITY;
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        exec.spmv_multi(x, k, y, pool);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&y[..]);
        samples.push(dt);
        if dt < best {
            best = dt;
        }
    }
    let mem = exec.memory_requirement_multi(k);
    let m = SpmmMeasurement {
        name: exec.name(),
        threads: pool.n_threads(),
        k,
        secs_min: best,
        gflops: k as f64 * exec.flops() / best / 1e9,
        mem_requirement: mem,
        eff_bandwidth_gbs: mem as f64 / best / 1e9,
        samples,
    };
    crate::manifest::record_spmm(&m);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscv_sparse::formats::CsrSerialExec;
    use cscv_sparse::Coo;

    fn small_exec() -> CsrSerialExec<f64> {
        let mut coo = Coo::new(64, 64);
        for i in 0..64 {
            coo.push(i, i, 1.0);
            coo.push(i, (i + 1) % 64, 0.5);
        }
        CsrSerialExec::new(coo.to_csr())
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing is meaningless under Miri")]
    fn measurement_is_sane() {
        let exec = small_exec();
        let pool = ThreadPool::new(1);
        let x = vec![1.0; 64];
        let mut y = vec![0.0; 64];
        let m = measure_spmv(&exec, &x, &mut y, &pool, 2, 10);
        assert!(m.secs_min > 0.0 && m.secs_min < 1.0);
        assert!(m.gflops > 0.0);
        assert_eq!(m.threads, 1);
        assert!(m.mem_requirement > 0);
        // The result vector was actually computed.
        assert_eq!(y[0], 1.5);
        // Every timed rep is recorded; the minimum is their minimum.
        assert_eq!(m.samples.len(), 10);
        let min = m.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(min, m.secs_min);
        let lat = m.latency();
        assert!(lat.p50 >= m.secs_min && lat.p50 <= lat.max);
        assert!(lat.p90 >= lat.p50 && lat.p99 >= lat.p90 && lat.max >= lat.p99);
        assert_eq!(lat.max, m.samples.iter().cloned().fold(0.0f64, f64::max));
    }

    #[test]
    fn summarize_samples_small_sets_are_exact() {
        let lat = summarize_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(lat.p50, 2.0);
        assert_eq!(lat.p90, 4.0);
        assert_eq!(lat.p99, 4.0);
        assert_eq!(lat.max, 4.0);
        let empty = summarize_samples(&[]);
        assert_eq!(empty.max, 0.0);
        // Large sets go through the histogram: percentiles stay within
        // its relative-error bound of the exact answer.
        let big: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-4).collect();
        let lat = summarize_samples(&big);
        assert!((lat.p50 - 0.05).abs() / 0.05 < 0.05, "p50 {}", lat.p50);
        assert_eq!(lat.max, 0.1);
    }

    #[test]
    fn r_em_ratio() {
        let m = SpmvMeasurement {
            name: "x".into(),
            threads: 1,
            secs_min: 0.5,
            gflops: 1.0,
            mem_requirement: 100,
            eff_bandwidth_gbs: 0.0,
            r_nnze: 0.0,
            samples: vec![0.5],
        };
        // 100 bytes in 0.5 s against a 400 B/s peak = 50% usage.
        assert!((m.r_em(400.0) - 0.5).abs() < 1e-12);
        assert_eq!(m.r_em(0.0), 0.0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing is meaningless under Miri")]
    fn spmm_measurement_is_sane() {
        let exec = small_exec();
        let pool = ThreadPool::new(1);
        let k = 3;
        let x = vec![1.0; k * 64];
        let mut y = vec![0.0; k * 64];
        let m = measure_spmm(&exec, &x, k, &mut y, &pool, 1, 5);
        assert_eq!(m.k, 3);
        assert!(m.secs_min > 0.0 && m.secs_min < 1.0);
        assert!(m.gflops > 0.0);
        assert_eq!(m.mem_requirement, exec.memory_requirement_multi(k));
        // Every RHS copy was computed.
        for kk in 0..k {
            assert_eq!(y[kk * 64], 1.5);
        }
        // Speedup helper: batch taking the same time as one single run
        // means a k× speedup over k sequential singles.
        assert!((m.speedup_vs_singles(m.secs_min) - k as f64).abs() < 1e-12);
    }

    #[test]
    fn modeled_speedup_grows_with_k_and_stays_below_k() {
        let exec = small_exec();
        let mut prev = 1.0;
        for k in [1usize, 2, 4, 8, 16] {
            let s = modeled_batch_speedup(&exec, k);
            assert!(s >= prev, "monotone in k");
            assert!(s <= k as f64 + 1e-12, "amortization cannot beat k×");
            prev = s;
        }
        assert!((modeled_batch_speedup(&exec, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn env_override_for_iters() {
        // No env set: default comes back.
        std::env::remove_var("CSCV_BENCH_ITERS");
        assert_eq!(bench_iters(7), 7);
    }
}
