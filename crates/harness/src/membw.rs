//! STREAM-style memory bandwidth meter — the Intel MLC substitute.
//!
//! The paper normalizes effective bandwidth against the machine's peak
//! *read-only* bandwidth measured with Intel MLC. MLC is proprietary, so
//! the suite measures the same quantity with a multi-threaded strided
//! read sweep over a buffer far larger than the last-level cache.

use cscv_sparse::shared::run_disjoint_mut;
use cscv_sparse::{partition, ThreadPool};
use std::time::Instant;

/// Measured peak bandwidths in bytes/second.
#[derive(Debug, Clone, Copy)]
pub struct Bandwidth {
    /// Read-only sweep (the paper's `M_PBw`).
    pub read_bytes_per_sec: f64,
    /// Triad (`a[i] = b[i] + s·c[i]`) for context.
    pub triad_bytes_per_sec: f64,
}

impl Bandwidth {
    pub fn read_gbs(&self) -> f64 {
        self.read_bytes_per_sec / 1e9
    }

    pub fn triad_gbs(&self) -> f64 {
        self.triad_bytes_per_sec / 1e9
    }
}

/// Sum a slice with 8 independent accumulators (keeps the sweep
/// bandwidth-bound rather than add-latency-bound).
#[inline]
fn sum_slice(data: &[u64]) -> u64 {
    let mut acc = [0u64; 8];
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        for l in 0..8 {
            acc[l] = acc[l].wrapping_add(c[l]);
        }
    }
    let mut tail = 0u64;
    for &v in chunks.remainder() {
        tail = tail.wrapping_add(v);
    }
    acc.iter().fold(tail, |a, &b| a.wrapping_add(b))
}

/// Measure peak bandwidths using `pool` threads over a buffer of
/// `buf_bytes` (clamped to ≥ 8 MiB), best of `reps` sweeps.
pub fn measure(pool: &ThreadPool, buf_bytes: usize, reps: usize) -> Bandwidth {
    let words = (buf_bytes.max(8 << 20)) / 8;
    let data: Vec<u64> = (0..words as u64).collect();
    let ranges = partition::even_chunks(words, pool.n_threads());

    // Read-only sweep.
    let mut best_read = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        pool.run(|tid| {
            let s = sum_slice(&data[ranges[tid].clone()]);
            std::hint::black_box(s);
        });
        best_read = best_read.min(t0.elapsed().as_secs_f64());
    }

    // Triad sweep: a = b + s*c over f64 buffers (3 streams).
    let tw = words / 4;
    let b: Vec<f64> = (0..tw).map(|i| i as f64).collect();
    let c: Vec<f64> = (0..tw).map(|i| (i % 7) as f64).collect();
    let mut a = vec![0.0f64; tw];
    let tranges = partition::even_chunks(tw, pool.n_threads());
    let mut best_triad = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        run_disjoint_mut(pool, &mut a, &tranges, |tid, dst| {
            let r = tranges[tid].clone();
            for ((av, bv), cv) in dst.iter_mut().zip(&b[r.clone()]).zip(&c[r]) {
                *av = bv + 3.0 * cv;
            }
        });
        best_triad = best_triad.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(&a[..]);
    }

    let bw = Bandwidth {
        read_bytes_per_sec: (words * 8) as f64 / best_read,
        triad_bytes_per_sec: (tw * 8 * 3) as f64 / best_triad,
    };
    // Ceilings are roofline inputs: park them in the run manifest next
    // to the kernel measurements (no-op without CSCV_MANIFEST_DIR).
    crate::manifest::record_membw(&bw);
    bw
}

/// Convenience: default measurement (256 MiB, 3 reps).
pub fn measure_default(pool: &ThreadPool) -> Bandwidth {
    measure(pool, 256 << 20, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_slice_matches_naive() {
        let v: Vec<u64> = (0..37).collect();
        let naive: u64 = v.iter().sum();
        assert_eq!(sum_slice(&v), naive);
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing is meaningless under Miri")]
    fn bandwidth_positive_and_plausible() {
        let pool = ThreadPool::new(1);
        // Small buffer keeps the test fast; numbers just need sanity.
        let bw = measure(&pool, 8 << 20, 1);
        assert!(bw.read_gbs() > 0.1, "read {}", bw.read_gbs());
        assert!(bw.read_gbs() < 10_000.0);
        assert!(bw.triad_gbs() > 0.05);
    }
}
