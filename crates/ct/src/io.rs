//! Minimal image output: binary PGM (P5), enough to inspect phantoms,
//! sinograms and reconstructions without an image dependency.

use std::io::Write;
use std::path::Path;

/// Normalize a float image to `0..=255` (min/max scaling; constant
/// images map to 0).
pub fn normalize_u8(img: &[f64]) -> Vec<u8> {
    let lo = img.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = img.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let scale = if hi > lo { 255.0 / (hi - lo) } else { 0.0 };
    img.iter()
        .map(|&v| ((v - lo) * scale).clamp(0.0, 255.0) as u8)
        .collect()
}

/// Write a grayscale image (row-major, `iy` growing upward as in the
/// suite's grid convention — flipped here to PGM's top-down rows).
pub fn write_pgm(path: impl AsRef<Path>, img: &[f64], nx: usize, ny: usize) -> std::io::Result<()> {
    assert_eq!(img.len(), nx * ny);
    let bytes = normalize_u8(img);
    let mut out = Vec::with_capacity(bytes.len() + 32);
    write!(&mut out, "P5\n{nx} {ny}\n255\n")?;
    for iy in (0..ny).rev() {
        out.extend_from_slice(&bytes[iy * nx..(iy + 1) * nx]);
    }
    std::fs::write(path, out)
}

/// Parse a binary PGM back into `(nx, ny, bytes)` (test round-trips and
/// simple tooling; rows returned in the suite's bottom-up order).
pub fn read_pgm(path: impl AsRef<Path>) -> std::io::Result<(usize, usize, Vec<u8>)> {
    let data = std::fs::read(path)?;
    let err = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let header_end = data
        .windows(1)
        .enumerate()
        .filter(|(_, w)| w[0] == b'\n')
        .map(|(i, _)| i)
        .nth(2)
        .ok_or_else(|| err("truncated header"))?;
    let header = std::str::from_utf8(&data[..header_end]).map_err(|_| err("bad header"))?;
    let mut parts = header.split_ascii_whitespace();
    if parts.next() != Some("P5") {
        return Err(err("not a P5 PGM"));
    }
    let nx: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err("bad width"))?;
    let ny: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err("bad height"))?;
    let pixels = &data[header_end + 1..];
    if pixels.len() < nx * ny {
        return Err(err("truncated pixels"));
    }
    let mut out = vec![0u8; nx * ny];
    for iy in 0..ny {
        let src = &pixels[iy * nx..(iy + 1) * nx];
        out[(ny - 1 - iy) * nx..(ny - iy) * nx].copy_from_slice(src);
    }
    Ok((nx, ny, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_ranges() {
        let b = normalize_u8(&[0.0, 0.5, 1.0]);
        assert_eq!(b, vec![0, 127, 255]);
        let c = normalize_u8(&[3.0, 3.0]);
        assert_eq!(c, vec![0, 0]);
    }

    #[test]
    #[cfg_attr(miri, ignore = "file IO is unsupported under Miri isolation")]
    fn pgm_roundtrip() {
        let dir = std::env::temp_dir().join("cscv_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        let img: Vec<f64> = (0..12).map(|i| i as f64).collect();
        write_pgm(&path, &img, 4, 3).unwrap();
        let (nx, ny, bytes) = read_pgm(&path).unwrap();
        assert_eq!((nx, ny), (4, 3));
        assert_eq!(bytes, normalize_u8(&img));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "file IO is unsupported under Miri isolation")]
    fn read_rejects_garbage() {
        let dir = std::env::temp_dir().join("cscv_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.pgm");
        std::fs::write(&path, b"P6\n2 2\n255\nxxxx").unwrap();
        assert!(read_pgm(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
