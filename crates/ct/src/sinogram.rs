//! Sinogram container and measurement noise.
//!
//! The sinogram is the physical `y` vector: one value per (view, bin)
//! ray. This module gives it structure (view/bin accessors matching the
//! suite's bin-major row layout) and supplies the transmission-CT noise
//! model used to make reconstruction experiments realistic: photon
//! counting obeys Poisson statistics, approximated here (for `I₀ ≫ 1`)
//! by Gaussian noise with the Poisson variance after log-transform.

use crate::geometry::ParallelGeometry;
use cscv_simd::rng::XorShift64;

/// A sinogram: `n_views × n_bins` ray measurements, stored row-major in
/// the suite's layout (`row = view·n_bins + bin`).
#[derive(Debug, Clone, PartialEq)]
pub struct Sinogram {
    n_views: usize,
    n_bins: usize,
    data: Vec<f64>,
}

impl Sinogram {
    /// Zero sinogram for a geometry.
    pub fn zeros(proj: &ParallelGeometry) -> Self {
        Sinogram {
            n_views: proj.n_views,
            n_bins: proj.n_bins,
            data: vec![0.0; proj.n_rays()],
        }
    }

    /// Wrap an existing flat vector (must have `n_views·n_bins` entries).
    pub fn from_vec(n_views: usize, n_bins: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n_views * n_bins);
        Sinogram {
            n_views,
            n_bins,
            data,
        }
    }

    pub fn n_views(&self) -> usize {
        self.n_views
    }

    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Flat view in the matrix row order.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    #[inline]
    pub fn get(&self, view: usize, bin: usize) -> f64 {
        self.data[view * self.n_bins + bin]
    }

    #[inline]
    pub fn set(&mut self, view: usize, bin: usize, v: f64) {
        self.data[view * self.n_bins + bin] = v;
    }

    /// One view's detector readings.
    pub fn view(&self, view: usize) -> &[f64] {
        &self.data[view * self.n_bins..(view + 1) * self.n_bins]
    }

    /// Apply the transmission noise model in place: each line integral
    /// `p` is replaced by `-ln(I/I₀)` where `I ~ Poisson(I₀·e^{−p})`,
    /// approximated by its Gaussian limit. `i0` is the unattenuated
    /// photon count per ray (larger ⇒ less noise); deterministic under
    /// `seed`.
    pub fn add_poisson_noise(&mut self, i0: f64, seed: u64) {
        assert!(i0 > 1.0, "photon count must exceed 1");
        let mut rng = XorShift64::new(seed);
        for p in self.data.iter_mut() {
            let mean = i0 * (-*p).exp();
            // Gaussian approximation: N(mean, mean).
            let z = rng.normal();
            let photons = (mean + z * mean.sqrt()).max(1.0);
            *p = -(photons / i0).ln();
        }
    }

    /// Root-mean-square of the sinogram (noise-level diagnostics).
    pub fn rms(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        (self.data.iter().map(|v| v * v).sum::<f64>() / self.data.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proj() -> ParallelGeometry {
        ParallelGeometry {
            n_bins: 6,
            n_views: 4,
            start_angle_deg: 0.0,
            delta_angle_deg: 45.0,
            bin_spacing: 1.0,
        }
    }

    #[test]
    fn indexing_matches_row_layout() {
        let mut s = Sinogram::zeros(&proj());
        s.set(2, 3, 7.5);
        assert_eq!(s.get(2, 3), 7.5);
        assert_eq!(s.as_slice()[2 * 6 + 3], 7.5);
        assert_eq!(s.view(2)[3], 7.5);
        assert_eq!(s.view(0), &[0.0; 6]);
    }

    #[test]
    fn noise_is_deterministic_and_small_at_high_flux() {
        let clean = vec![0.5f64; 24];
        let mut a = Sinogram::from_vec(4, 6, clean.clone());
        let mut b = Sinogram::from_vec(4, 6, clean.clone());
        a.add_poisson_noise(1e6, 42);
        b.add_poisson_noise(1e6, 42);
        assert_eq!(a, b, "seeded noise is reproducible");
        // At 10^6 photons the relative perturbation is tiny.
        for (n, c) in a.as_slice().iter().zip(&clean) {
            assert!((n - c).abs() < 0.02, "{n} vs {c}");
        }
    }

    #[test]
    fn noise_grows_as_flux_drops() {
        let clean = vec![1.0f64; 600];
        let dev = |i0: f64| {
            let mut s = Sinogram::from_vec(100, 6, clean.clone());
            s.add_poisson_noise(i0, 7);
            s.as_slice()
                .iter()
                .zip(&clean)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        assert!(dev(1e3) > 3.0 * dev(1e6));
    }

    #[test]
    fn rms_basics() {
        let s = Sinogram::from_vec(1, 4, vec![3.0, 4.0, 0.0, 0.0]);
        assert!((s.rms() - (25.0f64 / 4.0).sqrt()).abs() < 1e-12);
    }
}
