//! The evaluation matrix family (paper Table II) at two scales.
//!
//! The paper's matrices reach 1.75·10⁹ nonzeros (tens of GB); the default
//! suite reproduces the same geometry family at ¼ linear scale so every
//! experiment runs on a laptop-class machine, while `paper_suite()` keeps
//! the original parameters for hardware that can hold them. Scaling
//! preserves every structural property CSCV exploits (P1–P3 are
//! scale-invariant), including the Table II ratios `n_bins ≈ 1.4258·n`
//! and the limited-angle trick of the largest matrix.

use crate::geometry::CtGeometry;

/// One dataset row of Table II (or its scaled analog).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtDataset {
    pub name: &'static str,
    /// Reconstructed image is `img × img`.
    pub img: usize,
    pub n_bins: usize,
    pub n_views: usize,
    pub delta_angle_deg: f64,
}

impl CtDataset {
    /// Build the acquisition geometry for this dataset.
    pub fn geometry(&self) -> CtGeometry {
        CtGeometry::standard(
            self.img,
            self.n_bins,
            self.n_views,
            0.0,
            self.delta_angle_deg,
        )
    }

    /// Total angular coverage in degrees.
    pub fn angular_span_deg(&self) -> f64 {
        self.n_views as f64 * self.delta_angle_deg
    }

    /// Sinogram length (`y` size).
    pub fn y_size(&self) -> usize {
        self.n_bins * self.n_views
    }

    /// Image length (`x` size).
    pub fn x_size(&self) -> usize {
        self.img * self.img
    }
}

/// Default (¼ linear scale) suite — used by tests and benchmarks.
///
/// Scaling rule: image side and view count shrink 4×, but each row keeps
/// its paper Δangle (view *density*), because IOBLR's zero-padding rate
/// depends on the angular span of one `S_VVec` view group — preserving
/// Δangle preserves the paper's R_nnzE regime. The price is partial
/// angular coverage (45° instead of 180°), which changes nothing for
/// SpMV structure (blocks are per view group); the reconstruction
/// examples use [`recon_dataset`] with full coverage instead.
pub fn default_suite() -> Vec<CtDataset> {
    vec![
        CtDataset {
            name: "ct128",
            img: 128,
            n_bins: 184,
            n_views: 60,
            delta_angle_deg: 0.75,
        },
        CtDataset {
            name: "ct192",
            img: 192,
            n_bins: 274,
            n_views: 120,
            delta_angle_deg: 0.375,
        },
        CtDataset {
            name: "ct256",
            img: 256,
            n_bins: 366,
            n_views: 120,
            delta_angle_deg: 0.375,
        },
        // Limited-angle large image, mirroring the paper's 2048² row.
        CtDataset {
            name: "ct512la",
            img: 512,
            n_bins: 730,
            n_views: 40,
            delta_angle_deg: 0.1875,
        },
    ]
}

/// Full-coverage dataset for iterative reconstruction examples
/// (SpMV benchmarks don't need 180°, but image reconstruction does).
pub fn recon_dataset() -> CtDataset {
    CtDataset {
        name: "recon128",
        img: 128,
        n_bins: 184,
        n_views: 180,
        delta_angle_deg: 1.0,
    }
}

/// The original Table II parameters (paper scale; tens of GB of matrix).
pub fn paper_suite() -> Vec<CtDataset> {
    vec![
        CtDataset {
            name: "512x512",
            img: 512,
            n_bins: 730,
            n_views: 240,
            delta_angle_deg: 0.75,
        },
        CtDataset {
            name: "768x768",
            img: 768,
            n_bins: 1096,
            n_views: 480,
            delta_angle_deg: 0.375,
        },
        CtDataset {
            name: "1024x1024",
            img: 1024,
            n_bins: 1460,
            n_views: 480,
            delta_angle_deg: 0.375,
        },
        CtDataset {
            name: "2048x2048",
            img: 2048,
            n_bins: 2920,
            n_views: 160,
            delta_angle_deg: 0.1875,
        },
    ]
}

/// A tiny dataset for unit tests (sub-second everything).
pub fn tiny() -> CtDataset {
    CtDataset {
        name: "tiny32",
        img: 32,
        n_bins: 46,
        n_views: 24,
        delta_angle_deg: 7.5,
    }
}

/// The paper's Table I sample block setup (used by Fig. 3–6 experiments):
/// a 25×25 image with 38 bins and 4° steps.
pub fn table1_sample() -> CtDataset {
    CtDataset {
        name: "table1",
        img: 25,
        n_bins: 38,
        n_views: 45,
        delta_angle_deg: 4.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_suite_covers_paper_ratios() {
        for d in default_suite() {
            let ratio = d.n_bins as f64 / d.img as f64;
            assert!(
                (ratio - 1.4258).abs() < 0.02,
                "{}: bins/img {ratio}",
                d.name
            );
        }
    }

    #[test]
    fn paper_suite_matches_table2() {
        let p = paper_suite();
        assert_eq!(p[0].y_size(), 175_200);
        assert_eq!(p[1].y_size(), 526_080);
        assert_eq!(p[2].y_size(), 700_800);
        assert_eq!(p[3].y_size(), 467_200);
        assert_eq!(p[2].x_size(), 1_048_576);
        assert_eq!(p[3].x_size(), 4_194_304);
    }

    #[test]
    fn angular_spans() {
        let d = default_suite();
        // Scaled suite keeps paper view density: 45° partial coverage.
        assert!((d[0].angular_span_deg() - 45.0).abs() < 1e-12);
        assert!((d[1].angular_span_deg() - 45.0).abs() < 1e-12);
        assert!((d[3].angular_span_deg() - 7.5).abs() < 1e-12);
        // Paper-scale rows keep the original coverage.
        let p = paper_suite();
        assert!((p[0].angular_span_deg() - 180.0).abs() < 1e-12);
        assert!((p[3].angular_span_deg() - 30.0).abs() < 1e-12);
        // Reconstruction dataset covers the full half-circle.
        assert!((recon_dataset().angular_span_deg() - 180.0).abs() < 1e-12);
    }

    #[test]
    fn view_density_matches_paper_rows() {
        let d = default_suite();
        let p = paper_suite();
        assert_eq!(d[0].delta_angle_deg, p[0].delta_angle_deg);
        assert_eq!(d[2].delta_angle_deg, p[2].delta_angle_deg);
        assert_eq!(d[3].delta_angle_deg, p[3].delta_angle_deg);
    }

    #[test]
    fn geometry_has_right_shape() {
        let d = tiny();
        let ct = d.geometry();
        assert_eq!(ct.n_cols(), 1024);
        assert_eq!(ct.n_rows(), 46 * 24);
    }

    #[test]
    fn table1_sample_matches_paper() {
        let t = table1_sample();
        assert_eq!(t.img, 25);
        assert_eq!(t.n_bins, 38);
        assert_eq!(t.delta_angle_deg, 4.0);
    }
}
