//! Phantoms and analytic sinograms.
//!
//! The suite has no access to the paper's clinical projection data, so
//! workloads are synthesized from the standard Shepp-Logan head phantom
//! (and simpler disk phantoms). Because ellipse line integrals have a
//! closed form, the phantom doubles as an independent accuracy check of
//! the projector chain: `A·(rasterized phantom)` must approach the
//! analytic sinogram as the grid refines.

use crate::geometry::{CtGeometry, ImageGrid};

/// One ellipse component of a phantom, in normalized coordinates where
/// the image occupies `[-1, 1]²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ellipse {
    /// Center.
    pub cx: f64,
    pub cy: f64,
    /// Semi-axes.
    pub a: f64,
    pub b: f64,
    /// Rotation angle (degrees, counter-clockwise).
    pub phi_deg: f64,
    /// Additive attenuation.
    pub intensity: f64,
}

impl Ellipse {
    /// Whether normalized point `(x, y)` lies inside.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        let phi = self.phi_deg.to_radians();
        let (c, s) = (phi.cos(), phi.sin());
        let xr = (x - self.cx) * c + (y - self.cy) * s;
        let yr = -(x - self.cx) * s + (y - self.cy) * c;
        (xr / self.a).powi(2) + (yr / self.b).powi(2) <= 1.0
    }

    /// Analytic line integral along `{x·cosθ + y·sinθ = s}` (normalized
    /// coordinates): `2ab√(α² − s'²)/α²` inside the support.
    pub fn line_integral(&self, theta: f64, s: f64) -> f64 {
        let phi = self.phi_deg.to_radians();
        // Offset of the line relative to the ellipse center.
        let s0 = s - (self.cx * theta.cos() + self.cy * theta.sin());
        let t = theta - phi;
        let alpha2 = (self.a * t.cos()).powi(2) + (self.b * t.sin()).powi(2);
        if alpha2 <= 0.0 {
            return 0.0;
        }
        let under = alpha2 - s0 * s0;
        if under <= 0.0 {
            0.0
        } else {
            2.0 * self.intensity * self.a * self.b * under.sqrt() / alpha2
        }
    }
}

/// A phantom: a sum of ellipses.
#[derive(Debug, Clone, PartialEq)]
pub struct Phantom {
    pub ellipses: Vec<Ellipse>,
}

impl Phantom {
    /// The standard Shepp-Logan head phantom (original intensities).
    pub fn shepp_logan() -> Self {
        // (cx, cy, a, b, phi_deg, intensity)
        let table = [
            (0.0, 0.0, 0.69, 0.92, 0.0, 2.0),
            (0.0, -0.0184, 0.6624, 0.874, 0.0, -0.98),
            (0.22, 0.0, 0.11, 0.31, -18.0, -0.02),
            (-0.22, 0.0, 0.16, 0.41, 18.0, -0.02),
            (0.0, 0.35, 0.21, 0.25, 0.0, 0.01),
            (0.0, 0.1, 0.046, 0.046, 0.0, 0.01),
            (0.0, -0.1, 0.046, 0.046, 0.0, 0.01),
            (-0.08, -0.605, 0.046, 0.023, 0.0, 0.01),
            (0.0, -0.605, 0.023, 0.023, 0.0, 0.01),
            (0.06, -0.605, 0.023, 0.046, 0.0, 0.01),
        ];
        Phantom {
            ellipses: table
                .iter()
                .map(|&(cx, cy, a, b, phi_deg, intensity)| Ellipse {
                    cx,
                    cy,
                    a,
                    b,
                    phi_deg,
                    intensity,
                })
                .collect(),
        }
    }

    /// A simple two-disk phantom (cheap workloads / smoke tests).
    pub fn disks() -> Self {
        Phantom {
            ellipses: vec![
                Ellipse {
                    cx: -0.3,
                    cy: 0.2,
                    a: 0.35,
                    b: 0.35,
                    phi_deg: 0.0,
                    intensity: 1.0,
                },
                Ellipse {
                    cx: 0.4,
                    cy: -0.3,
                    a: 0.2,
                    b: 0.2,
                    phi_deg: 0.0,
                    intensity: 0.5,
                },
            ],
        }
    }

    /// Attenuation at a normalized point.
    pub fn value_at(&self, x: f64, y: f64) -> f64 {
        self.ellipses
            .iter()
            .filter(|e| e.contains(x, y))
            .map(|e| e.intensity)
            .sum()
    }

    /// Rasterize onto a grid (column-index order; one value per pixel).
    pub fn rasterize(&self, grid: &ImageGrid) -> Vec<f64> {
        let half_x = grid.nx as f64 * grid.pixel_size / 2.0;
        let half_y = grid.ny as f64 * grid.pixel_size / 2.0;
        let mut img = vec![0.0; grid.n_pixels()];
        for iy in 0..grid.ny {
            for ix in 0..grid.nx {
                let (px, py) = grid.pixel_center(ix, iy);
                img[grid.col_index(ix, iy)] = self.value_at(px / half_x, py / half_y);
            }
        }
        img
    }

    /// Analytic sinogram over a geometry, row-index order. Detector
    /// coordinates are rescaled by the grid's half-extent so the phantom's
    /// normalized units match the geometry's physical units (integrals are
    /// scaled back to physical length).
    pub fn analytic_sinogram(&self, ct: &CtGeometry) -> Vec<f64> {
        let half = ct.grid.nx as f64 * ct.grid.pixel_size / 2.0;
        let mut sino = vec![0.0; ct.n_rows()];
        for v in 0..ct.proj.n_views {
            let theta = ct.proj.view_angle(v);
            for b in 0..ct.proj.n_bins {
                let s = ct.proj.bin_center(b) / half;
                let val: f64 = self
                    .ellipses
                    .iter()
                    .map(|e| e.line_integral(theta, s))
                    .sum();
                sino[ct.proj.row_index(v, b)] = val * half;
            }
        }
        sino
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn unit_circle_integrals() {
        let e = Ellipse {
            cx: 0.0,
            cy: 0.0,
            a: 1.0,
            b: 1.0,
            phi_deg: 0.0,
            intensity: 1.0,
        };
        // Through the center: chord length 2.
        assert!((e.line_integral(0.0, 0.0) - 2.0).abs() < 1e-12);
        assert!((e.line_integral(1.1, 0.0) - 2.0).abs() < 1e-12);
        // Offset 0.5: chord 2√(1-0.25) = √3.
        assert!((e.line_integral(0.0, 0.5) - 3.0f64.sqrt()).abs() < 1e-12);
        // Outside.
        assert_eq!(e.line_integral(0.0, 1.5), 0.0);
    }

    #[test]
    fn rotated_ellipse_consistency() {
        // A 2:1 ellipse rotated 90° equals the swapped-axes ellipse.
        let e1 = Ellipse {
            cx: 0.0,
            cy: 0.0,
            a: 0.8,
            b: 0.4,
            phi_deg: 90.0,
            intensity: 1.0,
        };
        let e2 = Ellipse {
            cx: 0.0,
            cy: 0.0,
            a: 0.4,
            b: 0.8,
            phi_deg: 0.0,
            intensity: 1.0,
        };
        for k in 0..10 {
            let theta = k as f64 * 0.3;
            let s = -0.6 + k as f64 * 0.13;
            assert!((e1.line_integral(theta, s) - e2.line_integral(theta, s)).abs() < 1e-12);
            assert_eq!(e1.contains(0.1, 0.5), e2.contains(0.1, 0.5));
        }
    }

    #[test]
    fn offcenter_ellipse_projection_shifts() {
        let e = Ellipse {
            cx: 0.3,
            cy: 0.0,
            a: 0.2,
            b: 0.2,
            phi_deg: 0.0,
            intensity: 1.0,
        };
        // θ=0 projects x: support centered at s=0.3.
        assert!(e.line_integral(0.0, 0.3) > 0.0);
        assert_eq!(e.line_integral(0.0, 0.0), 0.0);
        // θ=90° projects y: support centered at s=0.
        assert!(e.line_integral(FRAC_PI_2, 0.0) > 0.0);
    }

    #[test]
    fn shepp_logan_shape() {
        let p = Phantom::shepp_logan();
        assert_eq!(p.ellipses.len(), 10);
        // Skull (outer ellipse) value 2.0, brain interior ~1.02.
        assert!((p.value_at(0.0, 0.9) - 2.0).abs() < 1e-12);
        let interior = p.value_at(0.0, -0.3);
        assert!(interior > 1.0 && interior < 1.1);
        // Outside the head.
        assert_eq!(p.value_at(0.95, 0.95), 0.0);
    }

    #[test]
    fn rasterize_matches_point_samples() {
        let p = Phantom::disks();
        let grid = ImageGrid::square(32, 1.0);
        let img = p.rasterize(&grid);
        assert_eq!(img.len(), 1024);
        // Center of the first disk (normalized (-0.3, 0.2)).
        let ix = ((-0.3 + 1.0) / 2.0 * 32.0) as usize;
        let iy = ((0.2 + 1.0) / 2.0 * 32.0) as usize;
        assert_eq!(img[grid.col_index(ix, iy)], 1.0);
        // Far corner is empty.
        assert_eq!(img[grid.col_index(0, 0)], 0.0);
    }

    #[test]
    fn projector_approaches_analytic_sinogram() {
        // Rasterized phantom forward-projected with exact chords must
        // converge to the analytic ellipse integrals.
        use crate::system::SystemMatrix;
        let p = Phantom::disks();
        let ct = CtGeometry::standard(64, 92, 12, 5.0, 15.0);
        let a = SystemMatrix::assemble_csc::<f64>(&ct);
        let img = p.rasterize(&ct.grid);
        let mut sino = vec![0.0; ct.n_rows()];
        a.spmv_serial(&img, &mut sino);
        let exact = p.analytic_sinogram(&ct);
        // Compare in aggregate: relative L2 error under ~6% at 64².
        let num: f64 = sino
            .iter()
            .zip(&exact)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den: f64 = exact.iter().map(|b| b * b).sum::<f64>().sqrt();
        assert!(num / den < 0.06, "rel L2 err {}", num / den);
    }
}
