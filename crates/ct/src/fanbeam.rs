//! Equiangular fan-beam CT geometry.
//!
//! The paper argues IOBLR "theoretically supports different CT imaging
//! geometries" because properties P1–P3 hold for any line-integral
//! operator. This module provides the test case: a fan-beam acquisition
//! (point source on a circle, equiangular detector), whose matrices the
//! CSCV builder consumes unchanged — its data-driven reference curves
//! never look at the geometry.
//!
//! Parametrization: at view `v` the source sits at
//! `S = R·(cos β_v, sin β_v)`; bin `b` is the ray leaving `S` at fan
//! angle `γ_b = (b − (n_bins−1)/2)·Δγ` from the central ray (which
//! points at the isocenter). Each ray is converted to the suite's
//! `(θ, s)` normal form, so the chord generator and Siddon tracer are
//! shared with the parallel-beam path.

use crate::chord::ray_square_chord;
use crate::geometry::ImageGrid;
use crate::siddon::trace_ray;
use crate::system::TrajectoryEntry;
use cscv_sparse::{Csc, Csr, Scalar};

/// Equiangular fan-beam acquisition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FanBeamGeometry {
    pub n_bins: usize,
    pub n_views: usize,
    pub start_angle_deg: f64,
    pub delta_angle_deg: f64,
    /// Source-to-isocenter distance.
    pub source_radius: f64,
    /// Angular width of one detector bin (radians).
    pub delta_gamma: f64,
}

impl FanBeamGeometry {
    /// Standard setup for an `n × n` unit-pixel image: source radius
    /// `2×` the image half-diagonal, fan opening covering the image plus
    /// 5 % margin.
    pub fn standard(n: usize, n_bins: usize, n_views: usize, delta_angle_deg: f64) -> Self {
        let half_diag = (n as f64) * 2.0f64.sqrt() / 2.0;
        let source_radius = 2.0 * (n as f64) * 2.0f64.sqrt() / 2.0;
        let half_fan = (half_diag / source_radius).asin() * 1.05;
        FanBeamGeometry {
            n_bins,
            n_views,
            start_angle_deg: 0.0,
            delta_angle_deg,
            source_radius,
            delta_gamma: 2.0 * half_fan / n_bins as f64,
        }
    }

    pub fn n_rays(&self) -> usize {
        self.n_bins * self.n_views
    }

    #[inline]
    pub fn view_angle(&self, v: usize) -> f64 {
        (self.start_angle_deg + v as f64 * self.delta_angle_deg).to_radians()
    }

    /// Source position at a view.
    #[inline]
    pub fn source(&self, v: usize) -> (f64, f64) {
        let beta = self.view_angle(v);
        (
            self.source_radius * beta.cos(),
            self.source_radius * beta.sin(),
        )
    }

    /// Fan angle of a bin center.
    #[inline]
    pub fn gamma(&self, b: usize) -> f64 {
        (b as f64 - (self.n_bins as f64 - 1.0) / 2.0) * self.delta_gamma
    }

    /// Ray `(view, bin)` in normal form `(θ, s)`:
    /// the line `{x·cosθ + y·sinθ = s}`.
    pub fn ray_normal_form(&self, v: usize, b: usize) -> (f64, f64) {
        let beta = self.view_angle(v);
        // Direction: central ray β+π rotated by the fan angle.
        let psi = beta + std::f64::consts::PI + self.gamma(b);
        let theta = psi + std::f64::consts::FRAC_PI_2;
        let (sx, sy) = self.source(v);
        let s = sx * theta.cos() + sy * theta.sin();
        (theta, s)
    }

    #[inline]
    pub fn row_index(&self, v: usize, b: usize) -> usize {
        v * self.n_bins + b
    }

    /// One pixel's fan-beam trajectory: `(view, bin, chord)` entries
    /// ordered by row index (line model: chord at bin-center rays).
    pub fn col_entries(&self, grid: &ImageGrid, col: usize) -> Vec<TrajectoryEntry> {
        let (ix, iy) = grid.pixel_of_col(col);
        let (cx, cy) = grid.pixel_center(ix, iy);
        let h = grid.pixel_size;
        let mut out = Vec::new();
        for v in 0..self.n_views {
            let (sx, sy) = self.source(v);
            let (dx, dy) = (cx - sx, cy - sy);
            let dist = (dx * dx + dy * dy).sqrt();
            debug_assert!(dist > h, "source inside image");
            // Fan angle of the pixel center (signed, matching gamma()).
            let beta = self.view_angle(v);
            let psi0 = beta + std::f64::consts::PI;
            let (ux, uy) = (psi0.cos(), psi0.sin());
            let dot = dx * ux + dy * uy;
            let cross = ux * dy - uy * dx;
            let gamma_c = cross.atan2(dot);
            // Conservative angular support: footprint half-width ≤ h·√2/2.
            let half = ((h * 0.7072) / dist).asin();
            let b_lo = ((gamma_c - half) / self.delta_gamma + (self.n_bins as f64 - 1.0) / 2.0)
                .ceil()
                .max(0.0) as usize;
            let b_hi = ((gamma_c + half) / self.delta_gamma + (self.n_bins as f64 - 1.0) / 2.0)
                .floor()
                .min(self.n_bins as f64 - 1.0);
            if b_hi < 0.0 {
                continue;
            }
            for b in b_lo..=(b_hi as usize) {
                let (theta, s) = self.ray_normal_form(v, b);
                let val = ray_square_chord(theta, s, cx, cy, h);
                if val > 1e-14 {
                    out.push((v as u32, b as u32, val));
                }
            }
        }
        out
    }

    /// Column-driven CSC assembly.
    pub fn assemble_csc<T: Scalar>(&self, grid: &ImageGrid) -> Csc<T> {
        let n_cols = grid.n_pixels();
        let mut col_ptr = Vec::with_capacity(n_cols + 1);
        let mut row_idx = Vec::new();
        let mut vals = Vec::new();
        col_ptr.push(0usize);
        for col in 0..n_cols {
            for (v, b, val) in self.col_entries(grid, col) {
                row_idx.push(self.row_index(v as usize, b as usize) as u32);
                vals.push(T::from_f64(val));
            }
            col_ptr.push(row_idx.len());
        }
        Csc::from_parts(self.n_rays(), n_cols, col_ptr, row_idx, vals)
    }

    /// Row-driven CSR assembly via Siddon (independent cross-check).
    pub fn assemble_csr_siddon<T: Scalar>(&self, grid: &ImageGrid) -> Csr<T> {
        let n_rows = self.n_rays();
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0usize);
        let mut scratch: Vec<(u32, T)> = Vec::new();
        for row in 0..n_rows {
            let (v, b) = (row / self.n_bins, row % self.n_bins);
            let (theta, s) = self.ray_normal_form(v, b);
            scratch.clear();
            for (ix, iy, len) in trace_ray(grid, theta, s, 1e-12) {
                scratch.push((grid.col_index(ix, iy) as u32, T::from_f64(len)));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                vals.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_parts(n_rows, grid.n_pixels(), row_ptr, col_idx, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscv_core::layout::ImageShape;
    use cscv_core::{build, CscvParams, SinoLayout, Variant};
    use cscv_sparse::dense::{assert_vec_close, max_rel_err};
    use cscv_sparse::{SpmvExecutor, ThreadPool};

    fn fan16() -> (FanBeamGeometry, ImageGrid) {
        (
            FanBeamGeometry::standard(16, 24, 20, 9.0),
            ImageGrid::square(16, 1.0),
        )
    }

    #[test]
    fn central_ray_hits_isocenter() {
        let (fan, _) = fan16();
        // With an odd center convention, the middle of the detector is
        // between bins; check s at the two central bins is ±Δγ·R/2-ish.
        let (_, s_lo) = fan.ray_normal_form(3, fan.n_bins / 2 - 1);
        let (_, s_hi) = fan.ray_normal_form(3, fan.n_bins / 2);
        assert!(s_lo.abs() < fan.source_radius * fan.delta_gamma);
        assert!(s_hi.abs() < fan.source_radius * fan.delta_gamma);
        assert!((s_lo + s_hi).abs() < 1e-9, "symmetric about center");
    }

    #[test]
    fn source_sits_on_circle() {
        let (fan, _) = fan16();
        for v in 0..fan.n_views {
            let (sx, sy) = fan.source(v);
            let r = (sx * sx + sy * sy).sqrt();
            assert!((r - fan.source_radius).abs() < 1e-9);
        }
    }

    #[test]
    fn column_and_row_builders_agree() {
        let (fan, grid) = fan16();
        let by_col = fan.assemble_csc::<f64>(&grid).to_csr();
        let by_row = fan.assemble_csr_siddon::<f64>(&grid);
        let x: Vec<f64> = (0..grid.n_pixels())
            .map(|i| ((i * 19) % 23) as f64 * 0.1)
            .collect();
        let mut y1 = vec![0.0; fan.n_rays()];
        let mut y2 = vec![0.0; fan.n_rays()];
        by_col.spmv_serial(&x, &mut y1);
        by_row.spmv_serial(&x, &mut y2);
        assert!(
            max_rel_err(&y1, &y2) < 1e-9,
            "err {}",
            max_rel_err(&y1, &y2)
        );
    }

    #[test]
    fn trajectories_contiguous_per_view() {
        // P1/P2 hold for fan-beam too.
        let (fan, grid) = fan16();
        for col in [0usize, 100, 200, 255] {
            let tr = fan.col_entries(&grid, col);
            assert!(!tr.is_empty());
            for w in tr.windows(2) {
                if w[0].0 == w[1].0 {
                    assert_eq!(w[0].1 + 1, w[1].1, "bins contiguous within view");
                }
            }
        }
    }

    #[test]
    fn cscv_works_unchanged_on_fan_beam() {
        // The decisive generality test: the CSCV builder (data-driven
        // curves, no geometry knowledge) handles fan-beam matrices.
        let (fan, grid) = fan16();
        let csc = fan.assemble_csc::<f64>(&grid);
        let layout = SinoLayout {
            n_views: fan.n_views,
            n_bins: fan.n_bins,
        };
        let img = ImageShape { nx: 16, ny: 16 };
        let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.21).sin()).collect();
        let mut y_ref = vec![0.0; fan.n_rays()];
        csc.spmv_serial(&x, &mut y_ref);
        for variant in [Variant::Z, Variant::M] {
            let m = build(&csc, layout, img, CscvParams::new(4, 4, 2), variant);
            m.validate();
            let exec = cscv_core::CscvExec::new(m);
            let pool = ThreadPool::new(2);
            let mut y = vec![f64::NAN; fan.n_rays()];
            exec.spmv(&x, &mut y, &pool);
            assert_vec_close(&y, &y_ref, 1e-11);
            // Transpose too.
            let mut xt = vec![f64::NAN; 256];
            let mut xt_ref = vec![0.0; 256];
            csc.spmv_transpose_serial(&y_ref, &mut xt_ref);
            exec.spmv_transpose(&y_ref, &mut xt, &pool);
            assert_vec_close(&xt, &xt_ref, 1e-11);
        }
    }

    #[test]
    fn padding_stays_bounded_on_fan_beam() {
        // The fan-beam trajectories are still piecewise parallel within a
        // tile, so R_nnzE should stay in the same regime as parallel beam
        // at matched view density.
        let fan = FanBeamGeometry::standard(32, 46, 64, 0.5);
        let grid = ImageGrid::square(32, 1.0);
        let csc = fan.assemble_csc::<f32>(&grid);
        let layout = SinoLayout {
            n_views: 64,
            n_bins: 46,
        };
        let img = ImageShape { nx: 32, ny: 32 };
        let m = build(&csc, layout, img, CscvParams::new(8, 8, 1), Variant::Z);
        let r = m.stats.r_nnze();
        assert!(r < 1.2, "fan-beam R_nnzE {r}");
    }
}
