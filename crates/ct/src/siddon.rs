//! Siddon-style ray tracing (the row-driven generator).
//!
//! Computes the exact intersection lengths of one ray with every pixel it
//! crosses by collecting the parameter values where the ray crosses grid
//! lines and reading off cells at segment midpoints — the robust variant
//! of Siddon's 1985 algorithm. Used to build system matrices row-by-row
//! (one ray = one matrix row) and, in tests, to cross-check the
//! closed-form chord generator in [`crate::chord`]: both must produce the
//! same matrix.

use crate::geometry::ImageGrid;

/// Intersection lengths of the ray `{x·cosθ + y·sinθ = s}` with grid
/// pixels. Returns `(ix, iy, length)` triplets with `length > eps`,
/// ordered along the ray.
pub fn trace_ray(grid: &ImageGrid, theta: f64, s: f64, eps: f64) -> Vec<(usize, usize, f64)> {
    let (cos_t, sin_t) = (theta.cos(), theta.sin());
    // Ray origin (closest point to rotation center) and unit direction.
    let ox = s * cos_t;
    let oy = s * sin_t;
    let dx = -sin_t;
    let dy = cos_t;

    let h = grid.pixel_size;
    let x0 = grid.x_min();
    let y0 = grid.y_min();
    let x1 = x0 + grid.nx as f64 * h;
    let y1 = y0 + grid.ny as f64 * h;

    // Clip the ray against the grid bounding box (slab method).
    let mut t_min = f64::NEG_INFINITY;
    let mut t_max = f64::INFINITY;
    for (o, d, lo, hi) in [(ox, dx, x0, x1), (oy, dy, y0, y1)] {
        if d.abs() < 1e-14 {
            if o <= lo || o >= hi {
                return Vec::new();
            }
        } else {
            let (ta, tb) = ((lo - o) / d, (hi - o) / d);
            let (ta, tb) = if ta < tb { (ta, tb) } else { (tb, ta) };
            t_min = t_min.max(ta);
            t_max = t_max.min(tb);
        }
    }
    if t_min >= t_max {
        return Vec::new();
    }

    // Collect all grid-line crossing parameters inside (t_min, t_max).
    let mut ts = Vec::with_capacity(grid.nx + grid.ny + 2);
    ts.push(t_min);
    ts.push(t_max);
    if dx.abs() > 1e-14 {
        for i in 0..=grid.nx {
            let t = (x0 + i as f64 * h - ox) / dx;
            if t > t_min && t < t_max {
                ts.push(t);
            }
        }
    }
    if dy.abs() > 1e-14 {
        for j in 0..=grid.ny {
            let t = (y0 + j as f64 * h - oy) / dy;
            if t > t_min && t < t_max {
                ts.push(t);
            }
        }
    }
    ts.sort_by(|a, b| a.partial_cmp(b).unwrap());

    // Each consecutive parameter pair is one in-cell segment; the segment
    // midpoint identifies the cell unambiguously.
    let mut out = Vec::with_capacity(ts.len());
    for w in ts.windows(2) {
        let len = w[1] - w[0];
        if len <= eps {
            continue;
        }
        let tm = (w[0] + w[1]) / 2.0;
        let px = ox + tm * dx;
        let py = oy + tm * dy;
        let ix = ((px - x0) / h).floor();
        let iy = ((py - y0) / h).floor();
        if ix < 0.0 || iy < 0.0 {
            continue;
        }
        let (ix, iy) = (ix as usize, iy as usize);
        if ix >= grid.nx || iy >= grid.ny {
            continue;
        }
        // Direction is unit-length, so Δt is geometric length.
        out.push((ix, iy, len));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chord::ray_square_chord;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    fn grid4() -> ImageGrid {
        ImageGrid::square(4, 1.0) // spans [-2,2]²
    }

    #[test]
    fn vertical_ray_crosses_one_column() {
        // θ=0 ⇒ ray x = s, travelling in +y.
        let hits = trace_ray(&grid4(), 0.0, -1.5, 1e-12);
        assert_eq!(hits.len(), 4);
        for (k, &(ix, iy, len)) in hits.iter().enumerate() {
            assert_eq!(ix, 0); // x=-1.5 lies in pixel column 0
            assert_eq!(iy, k); // ordered along +y
            assert!((len - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn horizontal_ray_crosses_one_row() {
        // θ=90° ⇒ ray y = s, travelling in −x.
        let hits = trace_ray(&grid4(), FRAC_PI_2, 0.5, 1e-12);
        assert_eq!(hits.len(), 4);
        for &(_, iy, len) in &hits {
            assert_eq!(iy, 2); // y=0.5 in row 2
            assert!((len - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ray_outside_grid_misses() {
        assert!(trace_ray(&grid4(), 0.0, 5.0, 1e-12).is_empty());
        assert!(trace_ray(&grid4(), 0.0, -2.0, 1e-12).is_empty()); // grazing edge
        assert!(trace_ray(&grid4(), 1.1, 4.0, 1e-12).is_empty());
    }

    #[test]
    fn diagonal_ray_through_center() {
        // θ=45°, s=0: the ray passes through pixel corners along the
        // anti-diagonal; total length must equal the in-grid chord 4√2.
        let hits = trace_ray(&grid4(), FRAC_PI_4, 0.0, 1e-12);
        let total: f64 = hits.iter().map(|h| h.2).sum();
        assert!((total - 4.0 * 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn total_length_equals_box_chord() {
        // For any ray, the sum of per-pixel lengths is the length of the
        // ray clipped to the grid box.
        let g = ImageGrid::square(8, 0.7);
        for k in 0..20 {
            let theta = 0.123 + k as f64 * 0.31;
            let s = -2.0 + k as f64 * 0.21;
            let hits = trace_ray(&g, theta, s, 1e-12);
            let total: f64 = hits.iter().map(|h| h.2).sum();
            // Independent clip computation.
            let expected = clip_len(&g, theta, s);
            assert!(
                (total - expected).abs() < 1e-9,
                "theta {theta} s {s}: {total} vs {expected}"
            );
        }
    }

    fn clip_len(g: &ImageGrid, theta: f64, s: f64) -> f64 {
        let (c, sn) = (theta.cos(), theta.sin());
        let (ox, oy, dx, dy) = (s * c, s * sn, -sn, c);
        let (x0, y0) = (g.x_min(), g.y_min());
        let (x1, y1) = (
            x0 + g.nx as f64 * g.pixel_size,
            y0 + g.ny as f64 * g.pixel_size,
        );
        let mut tmin = f64::NEG_INFINITY;
        let mut tmax = f64::INFINITY;
        for (o, d, lo, hi) in [(ox, dx, x0, x1), (oy, dy, y0, y1)] {
            if d.abs() < 1e-14 {
                if o <= lo || o >= hi {
                    return 0.0;
                }
            } else {
                let (ta, tb) = ((lo - o) / d, (hi - o) / d);
                let (ta, tb) = if ta < tb { (ta, tb) } else { (tb, ta) };
                tmin = tmin.max(ta);
                tmax = tmax.min(tb);
            }
        }
        (tmax - tmin).max(0.0)
    }

    #[test]
    fn matches_closed_form_chords() {
        // The decisive cross-check: per-pixel Siddon lengths equal the
        // closed-form trapezoid chord at the same offset.
        let g = ImageGrid::square(6, 1.0);
        for k in 0..40 {
            let theta = 0.05 + k as f64 * 0.17;
            let s = -3.3 + k as f64 * 0.167;
            let hits = trace_ray(&g, theta, s, 1e-9);
            for &(ix, iy, len) in &hits {
                let (cx, cy) = g.pixel_center(ix, iy);
                let expect = ray_square_chord(theta, s, cx, cy, 1.0);
                assert!(
                    (len - expect).abs() < 1e-9,
                    "pixel ({ix},{iy}) theta {theta} s {s}: {len} vs {expect}"
                );
            }
        }
    }
}
