//! 2-D parallel-beam CT substrate for the CSCV SpMV suite.
//!
//! The paper's matrices come from discretizing the X-ray transform
//! (Eq. 1 with `L ≡ 1`): image pixels are piecewise-constant basis
//! functions, rays are zero-width lines, and the system-matrix entry
//! `A[(view, bin), pixel]` is the chord length of the ray through the
//! pixel square. This crate builds those matrices from scratch:
//!
//! * [`geometry`] — image grid, parallel-beam detector, row/column
//!   index conventions (`row = view·n_bins + bin`, bin fastest);
//! * [`chord`] — closed-form pixel footprint / chord length (the
//!   column-driven generator);
//! * [`siddon`] — Siddon grid traversal (the independent row-driven
//!   generator; cross-checked against [`chord`] in tests);
//! * [`joseph`] — Joseph interpolation projector (an alternative
//!   discretization used by reconstruction examples);
//! * [`phantom`] — Shepp-Logan and synthetic phantoms with analytic
//!   ellipse sinograms for projector validation;
//! * [`system`] — sparse system-matrix assembly (CSC column-driven, CSR
//!   row-driven) and per-pixel trajectory access (what CSCV consumes);
//! * [`datasets`] — the Table II matrix family at default (¼ linear)
//!   and paper scale.

pub mod chord;
pub mod datasets;
pub mod fanbeam;
pub mod geometry;
pub mod io;
pub mod joseph;
pub mod phantom;
pub mod siddon;
pub mod sinogram;
pub mod system;

pub use datasets::CtDataset;
pub use fanbeam::FanBeamGeometry;
pub use geometry::{CtGeometry, ImageGrid, ParallelGeometry};
pub use phantom::Phantom;
pub use sinogram::Sinogram;
