//! Image grid, detector geometry and index conventions.
//!
//! Conventions (fixed across the whole suite):
//!
//! * Image: `nx × ny` square pixels of side `pixel_size`, centered at the
//!   origin. Pixel `(ix, iy)` has center
//!   `x = (ix − (nx−1)/2)·h`, `y = (iy − (ny−1)/2)·h`.
//!   Column index `col = iy·nx + ix`.
//! * View `v`: angle `θ_v = start_angle + v·delta_angle` (degrees).
//!   The detector axis direction is `(cosθ, sinθ)`; rays travel along
//!   `(−sinθ, cosθ)`. A point `(x, y)` projects to detector coordinate
//!   `s = x·cosθ + y·sinθ`.
//! * Bin `b`: detector cell center `s_b = (b − (n_bins−1)/2)·bin_spacing`.
//!   Row index `row = v·n_bins + b` (bin varies fastest — the sinogram's
//!   "bin-major" layout in the paper's Fig. 4).

/// Square pixel grid centered at the origin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageGrid {
    pub nx: usize,
    pub ny: usize,
    /// Pixel side length `h`.
    pub pixel_size: f64,
}

impl ImageGrid {
    pub fn square(n: usize, pixel_size: f64) -> Self {
        ImageGrid {
            nx: n,
            ny: n,
            pixel_size,
        }
    }

    /// Number of pixels = matrix columns.
    pub fn n_pixels(&self) -> usize {
        self.nx * self.ny
    }

    /// Center coordinates of pixel `(ix, iy)`.
    #[inline]
    pub fn pixel_center(&self, ix: usize, iy: usize) -> (f64, f64) {
        let h = self.pixel_size;
        (
            (ix as f64 - (self.nx as f64 - 1.0) / 2.0) * h,
            (iy as f64 - (self.ny as f64 - 1.0) / 2.0) * h,
        )
    }

    /// Column index of pixel `(ix, iy)`.
    #[inline]
    pub fn col_index(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny);
        iy * self.nx + ix
    }

    /// Inverse of [`col_index`](Self::col_index).
    #[inline]
    pub fn pixel_of_col(&self, col: usize) -> (usize, usize) {
        debug_assert!(col < self.n_pixels());
        (col % self.nx, col / self.nx)
    }

    /// x-coordinate of the grid's left edge (min corner).
    pub fn x_min(&self) -> f64 {
        -(self.nx as f64) * self.pixel_size / 2.0
    }

    /// y-coordinate of the grid's bottom edge.
    pub fn y_min(&self) -> f64 {
        -(self.ny as f64) * self.pixel_size / 2.0
    }
}

/// Parallel-beam acquisition geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelGeometry {
    pub n_bins: usize,
    pub n_views: usize,
    pub start_angle_deg: f64,
    pub delta_angle_deg: f64,
    /// Detector cell width `Δs`.
    pub bin_spacing: f64,
}

impl ParallelGeometry {
    /// Sinogram length = matrix rows.
    pub fn n_rays(&self) -> usize {
        self.n_bins * self.n_views
    }

    /// View angle in radians.
    #[inline]
    pub fn view_angle(&self, v: usize) -> f64 {
        (self.start_angle_deg + v as f64 * self.delta_angle_deg).to_radians()
    }

    /// Detector coordinate of bin center `b`.
    #[inline]
    pub fn bin_center(&self, b: usize) -> f64 {
        (b as f64 - (self.n_bins as f64 - 1.0) / 2.0) * self.bin_spacing
    }

    /// Continuous detector coordinate → fractional bin index.
    #[inline]
    pub fn s_to_bin(&self, s: f64) -> f64 {
        s / self.bin_spacing + (self.n_bins as f64 - 1.0) / 2.0
    }

    /// Row index of ray `(view, bin)`.
    #[inline]
    pub fn row_index(&self, view: usize, bin: usize) -> usize {
        debug_assert!(view < self.n_views && bin < self.n_bins);
        view * self.n_bins + bin
    }

    /// Inverse of [`row_index`](Self::row_index): `(view, bin)`.
    #[inline]
    pub fn ray_of_row(&self, row: usize) -> (usize, usize) {
        debug_assert!(row < self.n_rays());
        (row / self.n_bins, row % self.n_bins)
    }
}

/// A complete imaging setup: grid + detector. This is the object that
/// generates system matrices (see [`crate::system`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtGeometry {
    pub grid: ImageGrid,
    pub proj: ParallelGeometry,
}

impl CtGeometry {
    /// Standard setup: square image of `n` pixels with unit pixel size and
    /// a detector whose cells span the image diagonal (the paper's Table
    /// II ratio `n_bins ≈ 1.4258·n`).
    pub fn standard(
        n: usize,
        n_bins: usize,
        n_views: usize,
        start_angle_deg: f64,
        delta_angle_deg: f64,
    ) -> Self {
        let grid = ImageGrid::square(n, 1.0);
        let diag = (n as f64) * 2.0f64.sqrt();
        CtGeometry {
            grid,
            proj: ParallelGeometry {
                n_bins,
                n_views,
                start_angle_deg,
                delta_angle_deg,
                bin_spacing: diag / n_bins as f64,
            },
        }
    }

    /// Matrix rows (`sinogram size`).
    pub fn n_rows(&self) -> usize {
        self.proj.n_rays()
    }

    /// Matrix columns (`image size`).
    pub fn n_cols(&self) -> usize {
        self.grid.n_pixels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_centers_symmetric() {
        let g = ImageGrid::square(4, 1.0);
        assert_eq!(g.pixel_center(0, 0), (-1.5, -1.5));
        assert_eq!(g.pixel_center(3, 3), (1.5, 1.5));
        // Odd grid: middle pixel at origin.
        let g5 = ImageGrid::square(5, 2.0);
        assert_eq!(g5.pixel_center(2, 2), (0.0, 0.0));
    }

    #[test]
    fn col_index_roundtrip() {
        let g = ImageGrid {
            nx: 7,
            ny: 3,
            pixel_size: 1.0,
        };
        for iy in 0..3 {
            for ix in 0..7 {
                let col = g.col_index(ix, iy);
                assert_eq!(g.pixel_of_col(col), (ix, iy));
            }
        }
        assert_eq!(g.n_pixels(), 21);
    }

    #[test]
    fn grid_edges() {
        let g = ImageGrid::square(4, 0.5);
        assert_eq!(g.x_min(), -1.0);
        assert_eq!(g.y_min(), -1.0);
    }

    #[test]
    fn bin_centers_symmetric() {
        let p = ParallelGeometry {
            n_bins: 5,
            n_views: 10,
            start_angle_deg: 0.0,
            delta_angle_deg: 18.0,
            bin_spacing: 2.0,
        };
        assert_eq!(p.bin_center(2), 0.0);
        assert_eq!(p.bin_center(0), -4.0);
        assert_eq!(p.bin_center(4), 4.0);
        assert_eq!(p.s_to_bin(0.0), 2.0);
        assert_eq!(p.s_to_bin(-4.0), 0.0);
    }

    #[test]
    fn row_index_roundtrip_bin_fastest() {
        let p = ParallelGeometry {
            n_bins: 6,
            n_views: 4,
            start_angle_deg: 0.0,
            delta_angle_deg: 45.0,
            bin_spacing: 1.0,
        };
        assert_eq!(p.row_index(0, 5), 5);
        assert_eq!(p.row_index(1, 0), 6);
        for row in 0..p.n_rays() {
            let (v, b) = p.ray_of_row(row);
            assert_eq!(p.row_index(v, b), row);
        }
    }

    #[test]
    fn view_angles_in_radians() {
        let p = ParallelGeometry {
            n_bins: 1,
            n_views: 4,
            start_angle_deg: 90.0,
            delta_angle_deg: 45.0,
            bin_spacing: 1.0,
        };
        assert!((p.view_angle(0) - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert!((p.view_angle(2) - std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn standard_geometry_covers_diagonal() {
        let ct = CtGeometry::standard(64, 92, 30, 0.0, 6.0);
        let detector_span = ct.proj.bin_spacing * 92.0;
        let diag = 64.0 * 2.0f64.sqrt();
        assert!((detector_span - diag).abs() < 1e-9);
        assert_eq!(ct.n_rows(), 92 * 30);
        assert_eq!(ct.n_cols(), 64 * 64);
    }
}
