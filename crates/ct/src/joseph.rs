//! Joseph interpolation projector.
//!
//! An alternative discretization of the X-ray transform (Joseph 1982):
//! instead of exact chords, the ray is sampled once per image row (or
//! column, whichever is more perpendicular to the ray), with the sample
//! value linearly interpolated between the two nearest pixels. It yields
//! a slightly different, smoother system matrix with at most two nonzeros
//! per sampled line — used by the reconstruction examples to show CSCV on
//! a second operator family, and to demonstrate that the CSCV builder's
//! data-driven reference curves do not depend on the chord model.

use crate::geometry::ImageGrid;

/// Joseph-projected weights for the ray `{x·cosθ + y·sinθ = s}` over the
/// grid: `(ix, iy, weight)` triplets (weights carry the step length).
pub fn joseph_ray(grid: &ImageGrid, theta: f64, s: f64) -> Vec<(usize, usize, f64)> {
    let (cos_t, sin_t) = (theta.cos(), theta.sin());
    let (dx, dy) = (-sin_t, cos_t); // ray direction
    let h = grid.pixel_size;
    let mut out = Vec::new();

    if dy.abs() >= dx.abs() {
        // March along y (one sample per pixel row); interpolate in x.
        // Line: x(y) = (s - y·sinθ)/cosθ when cosθ ≠ 0; here cosθ = dy.
        let step = h / dy.abs(); // ray length per row
        for iy in 0..grid.ny {
            let (_, y) = grid.pixel_center(0, iy);
            // Solve x·cosθ + y·sinθ = s for x.
            let x = (s - y * sin_t) / cos_t;
            push_interp_x(grid, x, iy, step, &mut out);
        }
    } else {
        let step = h / dx.abs();
        for ix in 0..grid.nx {
            let (x, _) = grid.pixel_center(ix, 0);
            let y = (s - x * cos_t) / sin_t;
            push_interp_y(grid, ix, y, step, &mut out);
        }
    }
    out
}

/// Linear interpolation across pixel centers in x at image row `iy`.
fn push_interp_x(
    grid: &ImageGrid,
    x: f64,
    iy: usize,
    step: f64,
    out: &mut Vec<(usize, usize, f64)>,
) {
    let h = grid.pixel_size;
    // Fractional pixel coordinate of x among centers.
    let fx = (x - grid.x_min()) / h - 0.5;
    let i0 = fx.floor();
    let frac = fx - i0;
    let i0 = i0 as isize;
    if i0 >= 0 && (i0 as usize) < grid.nx && 1.0 - frac > 1e-12 {
        out.push((i0 as usize, iy, step * (1.0 - frac)));
    }
    let i1 = i0 + 1;
    if i1 >= 0 && (i1 as usize) < grid.nx && frac > 1e-12 {
        out.push((i1 as usize, iy, step * frac));
    }
}

/// Linear interpolation across pixel centers in y at image column `ix`.
fn push_interp_y(
    grid: &ImageGrid,
    ix: usize,
    y: f64,
    step: f64,
    out: &mut Vec<(usize, usize, f64)>,
) {
    let h = grid.pixel_size;
    let fy = (y - grid.y_min()) / h - 0.5;
    let j0 = fy.floor();
    let frac = fy - j0;
    let j0 = j0 as isize;
    if j0 >= 0 && (j0 as usize) < grid.ny && 1.0 - frac > 1e-12 {
        out.push((ix, j0 as usize, step * (1.0 - frac)));
    }
    let j1 = j0 + 1;
    if j1 >= 0 && (j1 as usize) < grid.ny && frac > 1e-12 {
        out.push((ix, j1 as usize, step * frac));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn grid8() -> ImageGrid {
        ImageGrid::square(8, 1.0)
    }

    #[test]
    fn axis_aligned_hits_exact_column() {
        // θ=0, s at a pixel-center x: weights all land on one column with
        // weight = step = h.
        let g = grid8();
        let (cx, _) = g.pixel_center(3, 0);
        let hits = joseph_ray(&g, 0.0, cx);
        assert_eq!(hits.len(), 8);
        for &(ix, _, w) in &hits {
            assert_eq!(ix, 3);
            assert!((w - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn between_centers_splits_weight() {
        let g = grid8();
        let (cx, _) = g.pixel_center(3, 0);
        let hits = joseph_ray(&g, 0.0, cx + 0.25);
        // Each row: 0.75 to col 3, 0.25 to col 4.
        assert_eq!(hits.len(), 16);
        let w3: f64 = hits.iter().filter(|h| h.0 == 3).map(|h| h.2).sum();
        let w4: f64 = hits.iter().filter(|h| h.0 == 4).map(|h| h.2).sum();
        assert!((w3 - 6.0).abs() < 1e-12);
        assert!((w4 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn horizontal_ray_marches_x() {
        let g = grid8();
        let (_, cy) = g.pixel_center(0, 5);
        let hits = joseph_ray(&g, FRAC_PI_2, cy);
        assert_eq!(hits.len(), 8);
        for &(_, iy, w) in &hits {
            assert_eq!(iy, 5);
            assert!((w - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_sum_close_to_chord_length() {
        // For rays through the middle of the grid, total Joseph weight
        // approximates the box-clipped ray length.
        let g = grid8();
        let theta = 0.35;
        let hits = joseph_ray(&g, theta, 0.3);
        let total: f64 = hits.iter().map(|h| h.2).sum();
        // Ray length through an 8x8 box at this angle is ≈ 8/cos(θ).
        let approx = 8.0 / theta.cos();
        assert!((total - approx).abs() / approx < 0.05);
    }

    #[test]
    fn ray_outside_produces_nothing() {
        let g = grid8();
        let hits = joseph_ray(&g, 0.0, 10.0);
        assert!(hits.is_empty());
    }

    #[test]
    fn at_most_two_pixels_per_step() {
        let g = grid8();
        let hits = joseph_ray(&g, 0.4, 0.7);
        // Group by marching row (dy dominant ⇒ group by iy).
        let mut per_row = std::collections::HashMap::new();
        for &(_, iy, _) in &hits {
            *per_row.entry(iy).or_insert(0usize) += 1;
        }
        assert!(per_row.values().all(|&c| c <= 2));
    }
}
