//! Closed-form ray–pixel chord lengths (the column-driven generator).
//!
//! For a zero-width ray at angle `θ` and perpendicular offset `d` from a
//! pixel center, the intersection length with the `h × h` square is a
//! trapezoid profile in `d`:
//!
//! * support half-width `W = h(|cosθ| + |sinθ|)/2`;
//! * plateau half-width `P = h·| |cosθ| − |sinθ| |/2`;
//! * plateau height `L = h / max(|cosθ|, |sinθ|)`;
//! * linear fall-off between `P` and `W`.
//!
//! The profile integrates to `h²` (the pixel's area) for every angle — a
//! property the tests verify — and evaluating it at bin centers yields
//! exactly the same matrix entries as Siddon ray tracing, which is what
//! makes the column-driven and row-driven system-matrix builders agree
//! bit-for-bit in structure.

/// Trapezoid footprint of a square pixel at view angle `theta` (radians).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PixelFootprint {
    /// Support half-width `W` (chord is 0 for `|d| ≥ W`).
    pub half_support: f64,
    /// Plateau half-width `P` (chord is maximal for `|d| ≤ P`).
    pub half_plateau: f64,
    /// Plateau chord length `L = h / max(|cos|, |sin|)`.
    pub max_chord: f64,
}

impl PixelFootprint {
    /// Footprint of an `h`-sided square at angle `theta`.
    pub fn new(theta: f64, h: f64) -> Self {
        let u = theta.cos().abs();
        let w = theta.sin().abs();
        let m = u.max(w);
        PixelFootprint {
            half_support: h * (u + w) / 2.0,
            half_plateau: h * (u - w).abs() / 2.0,
            max_chord: h / m,
        }
    }

    /// Chord length at perpendicular offset `d` from the pixel center.
    #[inline]
    pub fn chord(&self, d: f64) -> f64 {
        let d = d.abs();
        if d >= self.half_support {
            0.0
        } else if d <= self.half_plateau {
            self.max_chord
        } else {
            // Linear fall-off; denominator is nonzero here because
            // d > half_plateau implies half_support > half_plateau.
            self.max_chord * (self.half_support - d) / (self.half_support - self.half_plateau)
        }
    }

    /// Antiderivative of the chord profile from 0 to `d ≥ 0`
    /// (odd-extended for negative `d`).
    fn chord_cumulative(&self, d: f64) -> f64 {
        let sign = if d < 0.0 { -1.0 } else { 1.0 };
        let d = d.abs().min(self.half_support);
        let p = self.half_plateau;
        let w = self.half_support;
        let l = self.max_chord;
        let val = if d <= p {
            l * d
        } else {
            // Plateau part + ramp part: chord(t) = L(W−t)/(W−P) on [P, d].
            let ramp = l * (w * (d - p) - (d * d - p * p) / 2.0) / (w - p);
            l * p + ramp
        };
        sign * val
    }

    /// Exact integral of the chord profile over `[d0, d1]` — the **strip
    /// model** weight: the area the pixel contributes to a detector cell
    /// covering that offset interval (divide by the cell width to get the
    /// average chord). This is the standard discretization for iterative
    /// CT and what reproduces the paper's nnz density (each footprint
    /// covers `(2W + Δs)/Δs ≈ 2.3` bins instead of `2W/Δs ≈ 1.3`).
    pub fn chord_integral(&self, d0: f64, d1: f64) -> f64 {
        debug_assert!(d0 <= d1);
        self.chord_cumulative(d1) - self.chord_cumulative(d0)
    }
}

/// Chord length of the ray `{(x,y): x·cosθ + y·sinθ = s}` through the
/// `h`-sided square centered at `(cx, cy)`.
pub fn ray_square_chord(theta: f64, s: f64, cx: f64, cy: f64, h: f64) -> f64 {
    let fp = PixelFootprint::new(theta, h);
    let s_center = cx * theta.cos() + cy * theta.sin();
    fp.chord(s - s_center)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn axis_aligned_is_box_profile() {
        // θ = 0: ray is vertical line x = s; chord = h for |d| < h/2.
        let fp = PixelFootprint::new(0.0, 2.0);
        assert!((fp.max_chord - 2.0).abs() < 1e-12);
        assert!((fp.half_support - 1.0).abs() < 1e-12);
        assert!((fp.half_plateau - 1.0).abs() < 1e-12);
        assert_eq!(fp.chord(0.0), 2.0);
        assert_eq!(fp.chord(0.999), 2.0);
        assert_eq!(fp.chord(1.0), 0.0);
        assert_eq!(fp.chord(5.0), 0.0);
    }

    #[test]
    fn diagonal_is_triangle_profile() {
        // θ = 45°: plateau collapses to a point, max chord = h√2.
        let h = 1.0;
        let fp = PixelFootprint::new(FRAC_PI_4, h);
        assert!((fp.max_chord - 2.0f64.sqrt()).abs() < 1e-12);
        assert!(fp.half_plateau < 1e-12);
        assert!((fp.half_support - 2.0f64.sqrt() / 2.0 * h).abs() < 1e-12);
        // Halfway down the triangle.
        let mid = fp.half_support / 2.0;
        assert!((fp.chord(mid) - fp.max_chord / 2.0).abs() < 1e-12);
    }

    #[test]
    fn profile_integrates_to_pixel_area() {
        // ∫ chord(d) dd = h² for any angle (exact for the trapezoid).
        let h = 1.7;
        for k in 0..36 {
            let theta = k as f64 * PI / 36.0;
            let fp = PixelFootprint::new(theta, h);
            // Exact trapezoid area: L·(P + W).
            let area = fp.max_chord * (fp.half_plateau + fp.half_support);
            assert!(
                (area - h * h).abs() < 1e-10,
                "area {area} != {} at theta {theta}",
                h * h
            );
        }
    }

    #[test]
    fn symmetry_in_angle() {
        let h = 1.0;
        for k in 1..8 {
            let theta = k as f64 * 0.2;
            let a = PixelFootprint::new(theta, h);
            let b = PixelFootprint::new(theta + FRAC_PI_2, h);
            let c = PixelFootprint::new(-theta, h);
            // 90° rotation and reflection leave the square's profile
            // unchanged.
            assert!((a.half_support - b.half_support).abs() < 1e-12);
            assert!((a.max_chord - c.max_chord).abs() < 1e-12);
        }
    }

    #[test]
    fn off_center_square() {
        // Square centered at (3, 4), θ = 0 ⇒ ray x = s hits for s ∈ (2.5, 3.5).
        assert_eq!(ray_square_chord(0.0, 3.0, 3.0, 4.0, 1.0), 1.0);
        assert_eq!(ray_square_chord(0.0, 3.4, 3.0, 4.0, 1.0), 1.0);
        assert_eq!(ray_square_chord(0.0, 3.6, 3.0, 4.0, 1.0), 0.0);
        // θ = 90°: ray y = s.
        assert_eq!(ray_square_chord(FRAC_PI_2, 4.0, 3.0, 4.0, 1.0), 1.0);
        assert_eq!(ray_square_chord(FRAC_PI_2, 3.0, 3.0, 4.0, 1.0), 0.0);
    }

    #[test]
    fn chord_integral_matches_quadrature() {
        // Analytic strip integral vs midpoint quadrature of the profile.
        for theta in [0.0, 0.2, FRAC_PI_4, 1.0, 1.4] {
            let fp = PixelFootprint::new(theta, 1.3);
            for (d0, d1) in [(-2.0, 2.0), (-0.3, 0.4), (0.1, 0.9), (-1.1, -0.2)] {
                let n = 20_000;
                let dd = (d1 - d0) / n as f64;
                let quad: f64 = (0..n)
                    .map(|i| fp.chord(d0 + (i as f64 + 0.5) * dd) * dd)
                    .sum();
                let exact = fp.chord_integral(d0, d1);
                assert!(
                    (quad - exact).abs() < 1e-5,
                    "theta {theta} [{d0},{d1}]: {quad} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn chord_integral_full_support_is_area() {
        for theta in [0.0, 0.4, FRAC_PI_4, 1.2] {
            let h = 0.8;
            let fp = PixelFootprint::new(theta, h);
            let full = fp.chord_integral(-fp.half_support, fp.half_support);
            assert!((full - h * h).abs() < 1e-12);
        }
    }

    #[test]
    fn chord_integral_odd_symmetry() {
        let fp = PixelFootprint::new(0.7, 1.0);
        let a = fp.chord_integral(-0.5, -0.1);
        let b = fp.chord_integral(0.1, 0.5);
        assert!((a - b).abs() < 1e-14);
    }

    #[test]
    fn chord_monotone_decreasing_in_offset() {
        let fp = PixelFootprint::new(0.3, 1.0);
        let mut prev = f64::INFINITY;
        let mut d = 0.0;
        while d < fp.half_support + 0.1 {
            let c = fp.chord(d);
            assert!(c <= prev + 1e-15);
            prev = c;
            d += 0.01;
        }
    }
}
