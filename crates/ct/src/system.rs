//! System-matrix assembly.
//!
//! Two independent builders produce the same matrix:
//!
//! * **column-driven** (closed-form chords): for each pixel, its
//!   projection trajectory — per view, the contiguous bin interval the
//!   pixel footprint covers (paper properties P1/P2). This is the natural
//!   generator for CSC and for the CSCV builder, which consumes exactly
//!   these per-column trajectories.
//! * **row-driven** (Siddon traversal): for each ray, the pixels it
//!   crosses. Used for CSR assembly, for ART-type row-action algorithms,
//!   and as a structural cross-check of the column-driven builder.

use crate::chord::PixelFootprint;
use crate::geometry::CtGeometry;
use crate::joseph::joseph_ray;
use crate::siddon::trace_ray;
use cscv_sparse::{Csc, Csr, Scalar};

/// Discretization model for the detector response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProjectorModel {
    /// Zero-width ray: entry = chord length at the bin-center line.
    /// Matches Siddon ray tracing exactly (used for cross-checks).
    Line,
    /// Finite detector cell: entry = pixel/strip intersection area
    /// divided by the cell width (average chord over the cell). The
    /// standard iterative-CT model; reproduces the paper's nnz density
    /// (~2.6 nonzeros per column per view). **Default.**
    #[default]
    Strip,
}

/// Namespace for the matrix builders.
pub struct SystemMatrix;

/// One nonzero of a pixel's trajectory: `(view, bin, chord length)`.
pub type TrajectoryEntry = (u32, u32, f64);

impl SystemMatrix {
    /// The projection trajectory of one pixel (matrix column) under a
    /// given model: all `(view, bin, value)` entries, ordered by view
    /// then bin — i.e. by ascending row index.
    pub fn col_entries_model(
        ct: &CtGeometry,
        col: usize,
        model: ProjectorModel,
    ) -> Vec<TrajectoryEntry> {
        let (ix, iy) = ct.grid.pixel_of_col(col);
        let (cx, cy) = ct.grid.pixel_center(ix, iy);
        let h = ct.grid.pixel_size;
        let ds = ct.proj.bin_spacing;
        // Strip support extends half a cell beyond the footprint.
        let pad = match model {
            ProjectorModel::Line => 0.0,
            ProjectorModel::Strip => ds / 2.0,
        };
        let mut out = Vec::with_capacity(ct.proj.n_views * 3);
        for v in 0..ct.proj.n_views {
            let theta = ct.proj.view_angle(v);
            let fp = PixelFootprint::new(theta, h);
            let s_c = cx * theta.cos() + cy * theta.sin();
            let b_lo = ct
                .proj
                .s_to_bin(s_c - fp.half_support - pad)
                .ceil()
                .max(0.0) as usize;
            let b_hi = ct
                .proj
                .s_to_bin(s_c + fp.half_support + pad)
                .floor()
                .min(ct.proj.n_bins as f64 - 1.0);
            if b_hi < 0.0 {
                continue;
            }
            for b in b_lo..=(b_hi as usize) {
                let d = ct.proj.bin_center(b) - s_c;
                let val = match model {
                    ProjectorModel::Line => fp.chord(d),
                    ProjectorModel::Strip => fp.chord_integral(d - ds / 2.0, d + ds / 2.0) / ds,
                };
                if val > 1e-14 {
                    out.push((v as u32, b as u32, val));
                }
            }
        }
        out
    }

    /// Trajectory under the default (strip) model.
    pub fn col_entries(ct: &CtGeometry, col: usize) -> Vec<TrajectoryEntry> {
        Self::col_entries_model(ct, col, ProjectorModel::Strip)
    }

    /// Geometric reference curve of a pixel: per view, the *minimum* bin
    /// index its footprint can touch under the default strip model (may
    /// be negative or ≥ n_bins at the detector edges — callers clamp).
    /// This is the curve IOBLR aligns parallel polylines to when no
    /// data-driven curve is available.
    pub fn min_bin_curve(ct: &CtGeometry, col: usize) -> Vec<i64> {
        let (ix, iy) = ct.grid.pixel_of_col(col);
        let (cx, cy) = ct.grid.pixel_center(ix, iy);
        let h = ct.grid.pixel_size;
        let pad = ct.proj.bin_spacing / 2.0;
        (0..ct.proj.n_views)
            .map(|v| {
                let theta = ct.proj.view_angle(v);
                let fp = PixelFootprint::new(theta, h);
                let s_c = cx * theta.cos() + cy * theta.sin();
                ct.proj.s_to_bin(s_c - fp.half_support - pad).ceil() as i64
            })
            .collect()
    }

    /// Column-driven CSC assembly under a given model.
    pub fn assemble_csc_model<T: Scalar>(ct: &CtGeometry, model: ProjectorModel) -> Csc<T> {
        let _span = cscv_trace::span::enter("system.assemble_csc");
        let n_cols = ct.n_cols();
        let mut col_ptr = Vec::with_capacity(n_cols + 1);
        let mut row_idx = Vec::new();
        let mut vals = Vec::new();
        col_ptr.push(0usize);
        for col in 0..n_cols {
            for (v, b, val) in Self::col_entries_model(ct, col, model) {
                row_idx.push(ct.proj.row_index(v as usize, b as usize) as u32);
                vals.push(T::from_f64(val));
            }
            col_ptr.push(row_idx.len());
        }
        Csc::from_parts(ct.n_rows(), n_cols, col_ptr, row_idx, vals)
    }

    /// Column-driven CSC assembly (default strip model).
    pub fn assemble_csc<T: Scalar>(ct: &CtGeometry) -> Csc<T> {
        Self::assemble_csc_model(ct, ProjectorModel::Strip)
    }

    /// Row-driven CSR assembly via Siddon traversal.
    pub fn assemble_csr_siddon<T: Scalar>(ct: &CtGeometry) -> Csr<T> {
        Self::assemble_csr_with(ct, |theta, s| trace_ray(&ct.grid, theta, s, 1e-12))
    }

    /// Row-driven CSR assembly via the Joseph interpolation projector
    /// (a different discretization — not expected to equal the chord
    /// matrix, but structurally similar).
    pub fn assemble_csr_joseph<T: Scalar>(ct: &CtGeometry) -> Csr<T> {
        Self::assemble_csr_with(ct, |theta, s| joseph_ray(&ct.grid, theta, s))
    }

    fn assemble_csr_with<T: Scalar>(
        ct: &CtGeometry,
        ray_fn: impl Fn(f64, f64) -> Vec<(usize, usize, f64)>,
    ) -> Csr<T> {
        let _span = cscv_trace::span::enter("system.assemble_csr");
        let n_rows = ct.n_rows();
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0usize);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for row in 0..n_rows {
            let (v, b) = ct.proj.ray_of_row(row);
            let theta = ct.proj.view_angle(v);
            let s = ct.proj.bin_center(b);
            scratch.clear();
            for (ix, iy, len) in ray_fn(theta, s) {
                scratch.push((ct.grid.col_index(ix, iy) as u32, len));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            // Merge duplicate columns (Joseph can emit two samples into
            // the same pixel from adjacent steps).
            let mut k = 0;
            while k < scratch.len() {
                let (c, mut acc) = scratch[k];
                k += 1;
                while k < scratch.len() && scratch[k].0 == c {
                    acc += scratch[k].1;
                    k += 1;
                }
                col_idx.push(c);
                vals.push(T::from_f64(acc));
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_parts(n_rows, ct.n_cols(), row_ptr, col_idx, vals)
    }
}

/// Analytic IOBLR reference curves from the parallel-beam geometry — a
/// [`CurveProvider`](cscv_core::CurveProvider) that needs no matrix data
/// (exact even when the reference column is subsampled or empty).
pub struct GeometricCurves<'a> {
    pub ct: &'a CtGeometry,
}

impl cscv_core::CurveProvider for GeometricCurves<'_> {
    fn curve(
        &self,
        ref_col: usize,
        views: &std::ops::Range<usize>,
    ) -> Option<cscv_core::ioblr::RefCurve> {
        let full = SystemMatrix::min_bin_curve(self.ct, ref_col);
        Some(cscv_core::ioblr::RefCurve::from_bins(
            full[views.clone()].to_vec(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscv_sparse::dense::max_rel_err;

    fn small_ct() -> CtGeometry {
        CtGeometry::standard(16, 24, 10, 3.0, 18.0)
    }

    #[test]
    fn column_and_row_builders_agree() {
        // The decisive substrate test: closed-form column generation and
        // Siddon row generation must produce the same matrix (under the
        // line model both discretize the same zero-width rays).
        let ct = small_ct();
        let by_col = SystemMatrix::assemble_csc_model::<f64>(&ct, ProjectorModel::Line).to_csr();
        let by_row = SystemMatrix::assemble_csr_siddon::<f64>(&ct);
        // Compare through SpMV on a random-ish vector (covers values and
        // structure; immune to ~0 boundary-entry bookkeeping differences).
        let x: Vec<f64> = (0..ct.n_cols())
            .map(|i| ((i * 31) % 17) as f64 * 0.1)
            .collect();
        let mut y1 = vec![0.0; ct.n_rows()];
        let mut y2 = vec![0.0; ct.n_rows()];
        by_col.spmv_serial(&x, &mut y1);
        by_row.spmv_serial(&x, &mut y2);
        assert!(
            max_rel_err(&y1, &y2) < 1e-9,
            "err {}",
            max_rel_err(&y1, &y2)
        );
        // And nnz agrees closely (boundary chords may differ by ±epsilon).
        let d = by_col.nnz().abs_diff(by_row.nnz());
        assert!(
            d * 100 <= by_col.nnz(),
            "{} vs {}",
            by_col.nnz(),
            by_row.nnz()
        );
    }

    #[test]
    fn trajectories_are_row_sorted_and_contiguous_per_view() {
        // Paper P2: per view the footprint covers one contiguous bin
        // interval.
        let ct = small_ct();
        for col in [0usize, 5, 100, 255] {
            let tr = SystemMatrix::col_entries(&ct, col);
            assert!(!tr.is_empty());
            let rows: Vec<usize> = tr
                .iter()
                .map(|&(v, b, _)| ct.proj.row_index(v as usize, b as usize))
                .collect();
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows sorted");
            // Contiguity within a view.
            for w in tr.windows(2) {
                if w[0].0 == w[1].0 {
                    assert_eq!(w[0].1 + 1, w[1].1, "bins contiguous within view");
                }
            }
        }
    }

    #[test]
    fn column_mass_is_pixel_area_per_view() {
        // Σ_b chord(b) ≈ h²/Δs per view when the full footprint is on the
        // detector (Riemann sum of the trapezoid profile).
        let ct = small_ct();
        let center_col = ct.grid.col_index(8, 8);
        let tr = SystemMatrix::col_entries(&ct, center_col);
        let h = ct.grid.pixel_size;
        let ds = ct.proj.bin_spacing;
        let mut per_view = vec![0.0; ct.proj.n_views];
        for &(v, _, val) in &tr {
            per_view[v as usize] += val;
        }
        for (v, &mass) in per_view.iter().enumerate() {
            let expect = h * h / ds;
            assert!(
                (mass - expect).abs() / expect < 0.35,
                "view {v}: mass {mass} vs {expect}"
            );
        }
    }

    #[test]
    fn min_bin_curve_bounds_trajectory() {
        let ct = small_ct();
        for col in [3usize, 77, 200] {
            let curve = SystemMatrix::min_bin_curve(&ct, col);
            let tr = SystemMatrix::col_entries(&ct, col);
            for &(v, b, _) in &tr {
                assert!(
                    (b as i64) >= curve[v as usize],
                    "bin {b} below min-bin {} at view {v}",
                    curve[v as usize]
                );
                // And not far above: footprint width is a few bins.
                assert!((b as i64) < curve[v as usize] + 5);
            }
        }
    }

    #[test]
    fn nnz_density_matches_paper_ratio() {
        // Table II: 512² image / 730 bins / 240 views ⇒ ~2.6 nnz per
        // (column, view). Our generator at any scale should land near
        // 2–3 nnz per column-view.
        let ct = CtGeometry::standard(32, 46, 20, 0.0, 9.0);
        let csc = SystemMatrix::assemble_csc::<f32>(&ct);
        let per_col_view = csc.nnz() as f64 / (ct.n_cols() as f64 * 20.0);
        assert!(
            per_col_view > 1.8 && per_col_view < 3.2,
            "density {per_col_view}"
        );
    }

    #[test]
    fn p3_near_uniform_columns() {
        // Paper P3: per-column nnz similar across columns.
        let ct = CtGeometry::standard(24, 35, 16, 0.0, 11.25);
        let csr = SystemMatrix::assemble_csc::<f64>(&ct).to_csr();
        let profile = cscv_sparse::stats::MatrixProfile::from_csr(&csr);
        assert!(profile.col_stats.cv < 0.25, "cv {}", profile.col_stats.cv);
        assert_eq!(profile.empty_cols, 0);
    }

    #[test]
    fn joseph_matrix_is_similar_but_not_identical() {
        let ct = small_ct();
        let chord = SystemMatrix::assemble_csc::<f64>(&ct).to_csr();
        let joseph = SystemMatrix::assemble_csr_joseph::<f64>(&ct);
        assert_eq!(chord.n_rows(), joseph.n_rows());
        // Same scale of nnz…
        let ratio = joseph.nnz() as f64 / chord.nnz() as f64;
        assert!(ratio > 0.4 && ratio < 1.6, "ratio {ratio}");
        // …but a genuinely different discretization.
        assert_ne!(chord.nnz(), joseph.nnz());
    }

    #[test]
    fn geometric_curves_build_correct_cscv() {
        // CSCV built with analytic curves must equal the reference SpMV
        // and have padding comparable to the data-driven build.
        use cscv_core::layout::ImageShape;
        use cscv_core::{build, build_with_curves, CscvParams, SinoLayout, Variant};
        let ct = small_ct();
        let csc = SystemMatrix::assemble_csc::<f64>(&ct);
        let layout = SinoLayout {
            n_views: ct.proj.n_views,
            n_bins: ct.proj.n_bins,
        };
        let img = ImageShape {
            nx: ct.grid.nx,
            ny: ct.grid.ny,
        };
        let params = CscvParams::new(4, 8, 2);
        let geo = build_with_curves(
            &csc,
            layout,
            img,
            params,
            Variant::Z,
            &GeometricCurves { ct: &ct },
        );
        geo.validate();
        let data = build(&csc, layout, img, params, Variant::Z);
        // Correctness.
        let x: Vec<f64> = (0..csc.n_cols()).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut y_ref = vec![0.0; csc.n_rows()];
        csc.spmv_serial(&x, &mut y_ref);
        let exec = cscv_core::CscvExec::new(geo.clone());
        let pool = cscv_sparse::ThreadPool::new(2);
        let mut y = vec![f64::NAN; csc.n_rows()];
        use cscv_sparse::SpmvExecutor;
        exec.spmv(&x, &mut y, &pool);
        cscv_sparse::dense::assert_vec_close(&y, &y_ref, 1e-11);
        // Efficiency: within 10% padding of the data-driven build.
        let r_geo = geo.stats.r_nnze();
        let r_data = data.stats.r_nnze();
        assert!(
            r_geo <= r_data * 1.1 + 0.05,
            "geometric curve padding {r_geo} vs data-driven {r_data}"
        );
    }

    #[test]
    fn adjoint_identity() {
        // <Ax, y> == <x, Aᵀy> for the assembled operator.
        let ct = small_ct();
        let a = SystemMatrix::assemble_csc::<f64>(&ct).to_csr();
        let x: Vec<f64> = (0..ct.n_cols()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let y: Vec<f64> = (0..ct.n_rows()).map(|i| ((i % 5) as f64) * 0.5).collect();
        let mut ax = vec![0.0; ct.n_rows()];
        a.spmv_serial(&x, &mut ax);
        let mut aty = vec![0.0; ct.n_cols()];
        a.spmv_transpose_serial(&y, &mut aty);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() / lhs.abs().max(1.0) < 1e-12);
    }
}
