//! CSCV — Compressed Sparse Column Vector — the paper's contribution.
//!
//! CSCV is a column-major sparse format for matrices arising from
//! line-integral imaging operators (CT/PET/SPECT). It exploits three
//! geometric properties of such operators (paper §IV-B):
//!
//! * **P1** — contiguous pixels map to contiguous-or-identical bins;
//! * **P2** — a pixel maps to one closed bin interval per view;
//! * **P3** — per-column nnz is near-uniform.
//!
//! The format groups the matrix into blocks (an `S_ImgB × S_ImgB` pixel
//! tile × `S_VVec` consecutive views), locally reorders the output vector
//! with **IOBLR** so each column becomes a handful of dense `S_VVec`-lane
//! vectors (**CSCVE**s) addressed by *(parallel-curve offset, view)*, and
//! packs the CSCVEs of `S_VxG` offset-sorted columns into **VxG**s that
//! share one `ỹ` accumulator. The SpMV kernel is then gather/scatter-free:
//! load `ỹ` lanes, FMA, store (Alg. 3 of the paper).
//!
//! Two storage variants:
//! * **CSCV-Z** keeps IOBLR/VxG padding zeros — lowest instruction count;
//! * **CSCV-M** strips them behind per-CSCVE bitmasks decompressed with
//!   AVX-512 `vexpand` (or `soft-vexpand`) — lowest memory traffic.
//!
//! Entry points: [`builder::build`] → [`format::CscvMatrix`] →
//! [`exec::CscvExec`] (implementing `cscv_sparse::SpmvExecutor` for both
//! variants).

pub mod analysis;
pub mod builder;
pub mod exec;
pub mod format;
pub mod invariants;
pub mod ioblr;
pub mod kernels;
pub mod layout;
pub mod layout_eff;
pub mod params;
pub mod placement;

pub use builder::{
    build, build_with_curves, try_build, try_build_with_curves, BuildError, CurveProvider,
    DataDrivenCurves,
};
pub use exec::{CscvExec, ExecConfig, ParallelStrategy};
pub use format::{CscvMatrix, CscvStats, Variant};
pub use invariants::{Invariant, Violation, CATALOG};
pub use layout::SinoLayout;
pub use params::CscvParams;
