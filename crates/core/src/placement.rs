//! NUMA-aware placement of CSCV matrix buffers.
//!
//! The builder assembles every block's value/index vectors on the
//! calling thread, so on a multi-socket machine all matrix pages sit on
//! that thread's node and remote-socket pool threads stream `M(A)` over
//! the interconnect. [`localize_matrix`] re-places the buffers after the
//! fact: blocks are partitioned across pool slots by nnz — the same
//! weighting the executors use to hand out work — and each slot clones
//! its blocks' vectors into fresh allocations *from inside the pool*, so
//! the copy is the first touch and Linux places the pages on the copying
//! thread's node. See `cscv_sparse::numa` for the policy discussion.
//!
//! Placement changes page locality only, never values or layout, so
//! results stay byte-identical; on uniform topologies it is skipped
//! entirely.

use crate::format::CscvMatrix;
use cscv_simd::Scalar;
use cscv_sparse::numa::NumaTopology;
use cscv_sparse::shared::run_disjoint_mut;
use cscv_sparse::{partition, ThreadPool};

/// Clone into a fresh allocation (the copy is the first touch).
fn realloc<U: Copy>(v: &[U]) -> Vec<U> {
    let mut out = Vec::with_capacity(v.len());
    out.extend_from_slice(v);
    out
}

/// Re-place every block's value/index/mask buffers partition-aligned
/// with `pool` (nnz-weighted, matching executor work assignment).
/// Returns whether a placement pass actually ran — `false` on uniform
/// topologies, 1-slot pools and empty matrices.
pub fn localize_matrix<T: Scalar>(
    m: &mut CscvMatrix<T>,
    pool: &ThreadPool,
    topo: &NumaTopology,
) -> bool {
    if topo.is_uniform() || pool.n_threads() <= 1 || m.blocks.is_empty() {
        return false;
    }
    let weights: Vec<usize> = m.blocks.iter().map(|b| b.nnz.max(1)).collect();
    let ranges = partition::split_by_weights(&weights, pool.n_threads());
    run_disjoint_mut(pool, &mut m.blocks, &ranges, |_tid, blocks| {
        for b in blocks {
            b.vals = realloc(&b.vals);
            b.masks = realloc(&b.masks);
            b.map = realloc(&b.map);
            b.vxg_q = realloc(&b.vxg_q);
            b.vxg_count = realloc(&b.vxg_count);
            b.cols = realloc(&b.cols);
            b.val_ptr = realloc(&b.val_ptr);
        }
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use crate::layout::{ImageShape, SinoLayout};
    use crate::params::CscvParams;
    use crate::Variant;
    use cscv_sparse::numa::NumaNode;
    use cscv_sparse::Coo;

    fn two_node_topo() -> NumaTopology {
        NumaTopology {
            nodes: vec![
                NumaNode {
                    id: 0,
                    cpus: vec![0, 1],
                },
                NumaNode {
                    id: 1,
                    cpus: vec![2, 3],
                },
            ],
        }
    }

    fn small_matrix(variant: Variant) -> CscvMatrix<f64> {
        let layout = SinoLayout {
            n_views: 8,
            n_bins: 12,
        };
        let img = ImageShape { nx: 6, ny: 6 };
        let mut coo = Coo::new(layout.n_rows(), img.n_pixels());
        for col in 0..img.n_pixels() {
            for v in 0..8 {
                coo.push(
                    layout.row_index(v, (v * 2 + col) % 12),
                    col,
                    1.0 + col as f64,
                );
            }
        }
        build(
            &coo.to_csc(),
            layout,
            img,
            CscvParams::new(4, 4, 2),
            variant,
        )
    }

    #[test]
    fn localize_preserves_matrix_exactly() {
        for variant in [Variant::Z, Variant::M] {
            let mut m = small_matrix(variant);
            let before = m.clone();
            let pool = ThreadPool::new(4);
            assert!(localize_matrix(&mut m, &pool, &two_node_topo()));
            assert_eq!(m.blocks.len(), before.blocks.len());
            for (a, b) in m.blocks.iter().zip(&before.blocks) {
                assert_eq!(a.vals, b.vals);
                assert_eq!(a.masks, b.masks);
                assert_eq!(a.map, b.map);
                assert_eq!(a.vxg_q, b.vxg_q);
                assert_eq!(a.vxg_count, b.vxg_count);
                assert_eq!(a.cols, b.cols);
                assert_eq!(a.val_ptr, b.val_ptr);
            }
            m.validate();
        }
    }

    #[test]
    fn localize_is_noop_on_uniform_or_serial() {
        let mut m = small_matrix(Variant::Z);
        let pool = ThreadPool::new(4);
        assert!(!localize_matrix(&mut m, &pool, &NumaTopology::uniform()));
        let serial = ThreadPool::new(1);
        assert!(!localize_matrix(&mut m, &serial, &two_node_topo()));
    }
}
