//! IOBLR — Integral-Operator-Based Local Reordering (paper §IV-C).
//!
//! Within one block (pixel tile × view group), the projection
//! trajectories of all pixels are treated as a bunch of piecewise
//! parallel curves. The *reference curve* `r(v)` — the minimum-bin curve
//! of the tile's center pixel — fixes the shape of the family; every
//! nonzero `(view v, bin b)` is re-addressed as
//! *(curve offset `c = b − r(v)`, position `v` along the curve)*.
//! Because neighboring pixels' curves are near-parallel to the
//! reference (P1/P2), each column occupies only a few offsets, and the
//! nonzeros at one offset form a dense `S_VVec`-lane vector — a CSCVE.
//!
//! The reference curve is **data-driven**: read directly off the
//! reference column's nonzeros, with linear interpolation across views
//! where the reference pixel has no nonzero (e.g. footprint off the
//! detector edge). This keeps the builder independent of any particular
//! projector model.

use cscv_sparse::{Csc, Scalar};
use std::ops::Range;

use crate::layout::SinoLayout;

/// Reference curve of one block: `r(v)` for each local view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefCurve {
    bins: Vec<i64>,
}

impl RefCurve {
    /// Build from per-view minimum bins, interpolating missing views.
    /// Returns `None` when no view has a bin (the reference column is
    /// empty in this block — callers fall back to another column).
    pub fn from_min_bins(min_bins: &[Option<u32>]) -> Option<RefCurve> {
        if min_bins.iter().all(|b| b.is_none()) {
            return None;
        }
        let n = min_bins.len();
        let mut bins = vec![0i64; n];
        // Indices of defined views.
        let defined: Vec<usize> = (0..n).filter(|&v| min_bins[v].is_some()).collect();
        for v in 0..n {
            bins[v] = match min_bins[v] {
                Some(b) => b as i64,
                None => {
                    // Nearest defined neighbors on each side.
                    let left = defined.iter().rev().find(|&&d| d < v);
                    let right = defined.iter().find(|&&d| d > v);
                    match (left, right) {
                        (Some(&l), Some(&r)) => {
                            let bl = min_bins[l].unwrap() as f64;
                            let br = min_bins[r].unwrap() as f64;
                            let t = (v - l) as f64 / (r - l) as f64;
                            (bl + t * (br - bl)).round() as i64
                        }
                        (Some(&l), None) => min_bins[l].unwrap() as i64,
                        (None, Some(&r)) => min_bins[r].unwrap() as i64,
                        (None, None) => unreachable!("at least one defined"),
                    }
                }
            };
        }
        // Postcondition feeding invariant CSCV-PERM: the curve must
        // reproduce every defined view's minimum bin exactly, or the
        // offset re-addressing downstream shifts whole columns.
        #[cfg(feature = "check-invariants")]
        for (v, mb) in min_bins.iter().enumerate() {
            if let Some(b) = mb {
                assert_eq!(
                    bins[v], *b as i64,
                    "RefCurve::from_min_bins: defined view {v} not mapped exactly"
                );
            }
        }
        Some(RefCurve { bins })
    }

    /// Explicit curve (tests, geometric fallbacks).
    pub fn from_bins(bins: Vec<i64>) -> RefCurve {
        RefCurve { bins }
    }

    /// Reference bin at local view `v`.
    #[inline]
    pub fn bin(&self, v: usize) -> i64 {
        self.bins[v]
    }

    /// Number of local views.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Curve offset of a nonzero at `(local view, bin)`.
    #[inline]
    pub fn offset(&self, v: usize, bin: u32) -> i64 {
        bin as i64 - self.bins[v]
    }
}

/// Per-view minimum bin of one column inside a view range (the raw
/// material of a data-driven reference curve).
pub fn min_bin_per_view<T: Scalar>(
    csc: &Csc<T>,
    layout: &SinoLayout,
    col: usize,
    views: &Range<usize>,
) -> Vec<Option<u32>> {
    let mut out = vec![None; views.len()];
    let (rows, _) = csc.col(col);
    // Rows are sorted; the block's rows form one contiguous span.
    let lo = rows.partition_point(|&r| (r as usize) < views.start * layout.n_bins);
    let hi = rows.partition_point(|&r| (r as usize) < views.end * layout.n_bins);
    for &row in &rows[lo..hi] {
        let (v, b) = layout.ray_of_row(row as usize);
        let slot = &mut out[v - views.start];
        match slot {
            Some(prev) => {
                if b < *prev as usize {
                    *slot = Some(b as u32);
                }
            }
            None => *slot = Some(b as u32),
        }
    }
    out
}

/// Padding profile of one block under a candidate reference curve — the
/// quantities of the paper's Fig. 5 (zero padding, CSCVE count, bin
/// offsets per reference-pixel choice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPaddingStats {
    /// Original nonzeros in the block.
    pub nnz: usize,
    /// CSCVE lane slots = `n_cscve · S_VVec` (zero padding = slots − nnz).
    pub cscve_slots: usize,
    /// Number of CSCVEs.
    pub n_cscve: usize,
    /// Range of curve offsets used by any column.
    pub offset_min: i64,
    pub offset_max: i64,
}

impl BlockPaddingStats {
    /// Padding zeros introduced by IOBLR.
    pub fn padding(&self) -> usize {
        self.cscve_slots - self.nnz
    }
}

/// Compute the padding profile of a block: `cols_entries[j]` holds column
/// `j`'s `(local view, bin)` nonzero positions; `s_vvec` is the lane
/// count.
pub fn block_stats_for_curve(
    cols_entries: &[Vec<(u32, u32)>],
    curve: &RefCurve,
    s_vvec: usize,
) -> BlockPaddingStats {
    let mut nnz = 0usize;
    let mut n_cscve = 0usize;
    let mut offset_min = i64::MAX;
    let mut offset_max = i64::MIN;
    for entries in cols_entries {
        if entries.is_empty() {
            continue;
        }
        nnz += entries.len();
        let mut c_min = i64::MAX;
        let mut c_max = i64::MIN;
        for &(v, b) in entries {
            let c = curve.offset(v as usize, b);
            c_min = c_min.min(c);
            c_max = c_max.max(c);
        }
        n_cscve += (c_max - c_min + 1) as usize;
        offset_min = offset_min.min(c_min);
        offset_max = offset_max.max(c_max);
    }
    if nnz == 0 {
        return BlockPaddingStats {
            nnz: 0,
            cscve_slots: 0,
            n_cscve: 0,
            offset_min: 0,
            offset_max: 0,
        };
    }
    BlockPaddingStats {
        nnz,
        cscve_slots: n_cscve * s_vvec,
        n_cscve,
        offset_min,
        offset_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscv_sparse::Coo;

    #[test]
    fn curve_from_complete_bins() {
        let c = RefCurve::from_min_bins(&[Some(3), Some(4), Some(5)]).unwrap();
        assert_eq!(c.bin(0), 3);
        assert_eq!(c.bin(2), 5);
        assert_eq!(c.offset(1, 6), 2);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn curve_interpolates_gaps() {
        let c = RefCurve::from_min_bins(&[Some(2), None, None, Some(8)]).unwrap();
        assert_eq!(c.bin(0), 2);
        assert_eq!(c.bin(1), 4);
        assert_eq!(c.bin(2), 6);
        assert_eq!(c.bin(3), 8);
    }

    #[test]
    fn curve_extrapolates_edges_flat() {
        let c = RefCurve::from_min_bins(&[None, Some(5), None]).unwrap();
        assert_eq!(c.bin(0), 5);
        assert_eq!(c.bin(2), 5);
    }

    #[test]
    fn all_missing_gives_none() {
        assert!(RefCurve::from_min_bins(&[None, None]).is_none());
    }

    #[test]
    fn min_bins_from_matrix() {
        // 2 views × 4 bins, one column with nonzeros at (v0,b2),(v0,b3),(v1,b1).
        let layout = SinoLayout {
            n_views: 2,
            n_bins: 4,
        };
        let mut coo: Coo<f64> = Coo::new(8, 1);
        coo.push(layout.row_index(0, 2), 0, 1.0);
        coo.push(layout.row_index(0, 3), 0, 1.0);
        coo.push(layout.row_index(1, 1), 0, 1.0);
        let csc = coo.to_csc();
        let bins = min_bin_per_view(&csc, &layout, 0, &(0..2));
        assert_eq!(bins, vec![Some(2), Some(1)]);
        // Restricted to view 1 only.
        let bins1 = min_bin_per_view(&csc, &layout, 0, &(1..2));
        assert_eq!(bins1, vec![Some(1)]);
    }

    #[test]
    fn stats_perfectly_parallel_columns() {
        // Two columns whose trajectories are exactly the curve and the
        // curve shifted by +1: one CSCVE each, zero padding.
        let curve = RefCurve::from_bins(vec![4, 5, 6, 7]);
        let col0: Vec<(u32, u32)> = (0..4).map(|v| (v, 4 + v)).collect();
        let col1: Vec<(u32, u32)> = (0..4).map(|v| (v, 5 + v)).collect();
        let st = block_stats_for_curve(&[col0, col1], &curve, 4);
        assert_eq!(st.nnz, 8);
        assert_eq!(st.n_cscve, 2);
        assert_eq!(st.padding(), 0);
        assert_eq!((st.offset_min, st.offset_max), (0, 1));
    }

    #[test]
    fn stats_with_imperfect_parallelism() {
        // One column drifts ±1 around the curve ⇒ needs 2 offsets with
        // half the lanes padded.
        let curve = RefCurve::from_bins(vec![0, 0, 0, 0]);
        let col: Vec<(u32, u32)> = vec![(0, 0), (1, 1), (2, 0), (3, 1)];
        let st = block_stats_for_curve(&[col], &curve, 4);
        assert_eq!(st.nnz, 4);
        assert_eq!(st.n_cscve, 2);
        assert_eq!(st.cscve_slots, 8);
        assert_eq!(st.padding(), 4);
    }

    #[test]
    fn stats_empty_block() {
        let curve = RefCurve::from_bins(vec![0; 4]);
        let st = block_stats_for_curve(&[vec![], vec![]], &curve, 8);
        assert_eq!(st.nnz, 0);
        assert_eq!(st.padding(), 0);
    }
}
