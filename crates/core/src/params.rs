//! CSCV build parameters (paper §V-D).
//!
//! Three knobs control the format:
//!
//! * `s_vvec` — CSCVE lane count = views per block; must match a SIMD
//!   register width (4/8/16);
//! * `s_imgb` — image tile side; larger tiles amortize `x`/`ỹ` traffic
//!   but raise the zero-padding rate (trajectories decorrelate with
//!   distance from the reference pixel);
//! * `s_vxg` — CSCVEs per vectorized execution group; deepens the inner
//!   loop for pipelining and shrinks index data.
//!
//! A key claim of the paper is that selection is *not* matrix-specific:
//! one combination per (variant, precision, machine class) works across
//! the whole CT family. `CscvParams::default_z/default_m` encode the
//! paper's Table III choices.

/// CSCV build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CscvParams {
    /// Image tile side `S_ImgB`.
    pub s_imgb: usize,
    /// CSCVE lane count `S_VVec` (4, 8 or 16).
    pub s_vvec: usize,
    /// CSCVEs per VxG `S_VxG` (≥ 1).
    pub s_vxg: usize,
}

impl CscvParams {
    /// Validated constructor.
    ///
    /// # Panics
    /// If `s_vvec ∉ {4, 8, 16}`, `s_imgb == 0` or `s_vxg == 0`.
    pub fn new(s_imgb: usize, s_vvec: usize, s_vxg: usize) -> Self {
        assert!(
            matches!(s_vvec, 4 | 8 | 16),
            "S_VVec must be 4, 8 or 16 (got {s_vvec})"
        );
        assert!(s_imgb >= 1, "S_ImgB must be positive");
        assert!(s_vxg >= 1, "S_VxG must be positive");
        CscvParams {
            s_imgb,
            s_vvec,
            s_vxg,
        }
    }

    /// Paper Table III (SKL) choice for CSCV-Z: `S_ImgB=16, S_VVec=16,
    /// S_VxG=2`.
    pub fn default_z() -> Self {
        CscvParams::new(16, 16, 2)
    }

    /// Paper Table III (SKL, single precision) choice for CSCV-M:
    /// `S_ImgB=32, S_VVec=8, S_VxG=4`.
    pub fn default_m() -> Self {
        CscvParams::new(32, 8, 4)
    }

    /// The sweep grid of the paper's Fig. 8/9 parameter study.
    pub fn sweep_grid() -> Vec<CscvParams> {
        let mut out = Vec::new();
        for &s_vvec in &[4usize, 8, 16] {
            for &s_imgb in &[8usize, 16, 32, 64] {
                for &s_vxg in &[1usize, 2, 4, 8, 16] {
                    out.push(CscvParams::new(s_imgb, s_vvec, s_vxg));
                }
            }
        }
        out
    }
}

impl std::fmt::Display for CscvParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ImgB={},VVec={},VxG={}",
            self.s_imgb, self.s_vvec, self.s_vxg
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table3() {
        let z = CscvParams::default_z();
        assert_eq!((z.s_imgb, z.s_vvec, z.s_vxg), (16, 16, 2));
        let m = CscvParams::default_m();
        assert_eq!((m.s_imgb, m.s_vvec, m.s_vxg), (32, 8, 4));
    }

    #[test]
    #[should_panic]
    fn rejects_bad_vvec() {
        CscvParams::new(16, 5, 1);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_vxg() {
        CscvParams::new(16, 8, 0);
    }

    #[test]
    fn sweep_grid_size() {
        assert_eq!(CscvParams::sweep_grid().len(), 3 * 4 * 5);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(CscvParams::new(8, 4, 1).to_string(), "ImgB=8,VVec=4,VxG=1");
    }
}
