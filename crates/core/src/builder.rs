//! The CSCV format builder (paper Fig. 7: "matrix format conversion").
//!
//! For every (tile × view group) block:
//!
//! 1. slice each tile column's nonzeros for the group's views;
//! 2. derive the IOBLR reference curve from the tile-center column (data
//!    driven; falls back to the first non-empty column);
//! 3. re-address nonzeros as (curve offset, local view) and densify each
//!    column over its offset span — the CSCVEs;
//! 4. sort columns by first offset, group `S_VxG` of them into VxGs
//!    (columns padded to the group's common offset range — the "red"
//!    extra padding of Fig. 6a), then sort VxGs by offset count (Fig. 6b);
//! 5. emit the value stream (full lanes for CSCV-Z; mask-compressed for
//!    CSCV-M) and the block's ỹ scatter map.

use crate::format::{Block, CscvMatrix, CscvStats, GroupInfo, Variant};
use crate::ioblr::{min_bin_per_view, RefCurve};
use crate::layout::{tiles, view_groups, ImageShape, SinoLayout, Tile};
use crate::params::CscvParams;
use cscv_sparse::{Csc, Scalar};
use std::ops::Range;

/// Source of IOBLR reference curves.
///
/// The default is **data-driven** (read the min-bin curve off the
/// reference column), which needs no geometry knowledge. Generators
/// that know their geometry analytically (e.g. `cscv-ct`'s parallel- or
/// fan-beam operators) can provide exact curves instead — useful when
/// the reference column is sparse or the matrix is subsampled.
pub trait CurveProvider {
    /// Reference curve for `ref_col` over the (global) view range, or
    /// `None` when this provider cannot produce one (the builder then
    /// falls back to a data-driven curve from another column).
    fn curve(&self, ref_col: usize, views: &Range<usize>) -> Option<RefCurve>;
}

/// The default data-driven provider: min-bin curve of the column itself.
pub struct DataDrivenCurves<'a, T> {
    pub csc: &'a Csc<T>,
    pub layout: SinoLayout,
}

impl<T: Scalar> CurveProvider for DataDrivenCurves<'_, T> {
    fn curve(&self, ref_col: usize, views: &Range<usize>) -> Option<RefCurve> {
        RefCurve::from_min_bins(&min_bin_per_view(self.csc, &self.layout, ref_col, views))
    }
}

/// Build a CSCV matrix from a CSC matrix with sinogram row structure,
/// using data-driven reference curves.
///
/// # Panics
/// If the CSC shape disagrees with `layout`/`img`, or `s_vxg > 32`.
pub fn build<T: Scalar>(
    csc: &Csc<T>,
    layout: SinoLayout,
    img: ImageShape,
    params: CscvParams,
    variant: Variant,
) -> CscvMatrix<T> {
    build_with_curves(
        csc,
        layout,
        img,
        params,
        variant,
        &DataDrivenCurves { csc, layout },
    )
}

/// Build with an explicit [`CurveProvider`].
pub fn build_with_curves<T: Scalar>(
    csc: &Csc<T>,
    layout: SinoLayout,
    img: ImageShape,
    params: CscvParams,
    variant: Variant,
    curves: &dyn CurveProvider,
) -> CscvMatrix<T> {
    assert_eq!(csc.n_rows(), layout.n_rows(), "row count vs layout");
    assert_eq!(csc.n_cols(), img.n_pixels(), "col count vs image shape");
    assert!(
        params.s_vxg <= crate::kernels::MAX_VXG,
        "S_VxG above kernel bound"
    );

    let tile_list = tiles(&img, params.s_imgb);
    let vgroups = view_groups(layout.n_views, params.s_vvec);

    let mut stats = CscvStats {
        nnz_orig: csc.nnz(),
        ..CscvStats::default()
    };
    let mut blocks = Vec::new();
    let mut groups = Vec::with_capacity(vgroups.len());
    let mut max_ytil = 0usize;

    for (gi, views) in vgroups.iter().enumerate() {
        let block_start = blocks.len();
        let mut group_nnz = 0usize;
        for (ti, tile) in tile_list.iter().enumerate() {
            if let Some(block) = build_block(
                csc, &layout, &img, tile, views, gi as u32, ti as u32, params, variant, curves,
                &mut stats,
            ) {
                group_nnz += block.nnz;
                max_ytil = max_ytil.max(block.ytil_len());
                blocks.push(block);
            }
        }
        groups.push(GroupInfo {
            block_range: block_start..blocks.len(),
            row_range: views.start * layout.n_bins..views.end * layout.n_bins,
            nnz: group_nnz,
        });
    }
    stats.n_blocks = blocks.len();

    CscvMatrix {
        n_rows: csc.n_rows(),
        n_cols: csc.n_cols(),
        layout,
        params,
        variant,
        blocks,
        groups,
        stats,
        max_ytil,
    }
}

/// Per-column working data inside one block.
struct ColData<T> {
    col: u32,
    /// Offset span `[c0, c1]` relative to the reference curve.
    c0: i64,
    c1: i64,
    /// Densified values: `(c − c0)·W + v` (lanes beyond the group's local
    /// view count stay zero).
    grid: Vec<T>,
}

/// Slice one column's nonzeros for a view range as `(local view, bin, val)`.
fn col_block_entries<T: Scalar>(
    csc: &Csc<T>,
    layout: &SinoLayout,
    col: usize,
    views: &Range<usize>,
) -> Vec<(u32, u32, T)> {
    let (rows, vals) = csc.col(col);
    let lo = rows.partition_point(|&r| (r as usize) < views.start * layout.n_bins);
    let hi = rows.partition_point(|&r| (r as usize) < views.end * layout.n_bins);
    rows[lo..hi]
        .iter()
        .zip(&vals[lo..hi])
        .map(|(&r, &v)| {
            let (view, bin) = layout.ray_of_row(r as usize);
            ((view - views.start) as u32, bin as u32, v)
        })
        .collect()
}

/// Per-column raw entries of one block: `(global col, [(view, bin, val)])`.
type RawColumns<T> = Vec<(u32, Vec<(u32, u32, T)>)>;

#[allow(clippy::too_many_arguments)]
fn build_block<T: Scalar>(
    csc: &Csc<T>,
    layout: &SinoLayout,
    img: &ImageShape,
    tile: &Tile,
    views: &Range<usize>,
    group: u32,
    tile_idx: u32,
    params: CscvParams,
    variant: Variant,
    curves: &dyn CurveProvider,
    stats: &mut CscvStats,
) -> Option<Block<T>> {
    let w = params.s_vvec;
    let g = params.s_vxg;
    let cols = tile.cols(img);

    // 1. Extract per-column entries.
    let mut raw: RawColumns<T> = Vec::with_capacity(cols.len());
    let mut block_nnz = 0usize;
    for &col in &cols {
        let entries = col_block_entries(csc, layout, col, views);
        block_nnz += entries.len();
        raw.push((col as u32, entries));
    }
    if block_nnz == 0 {
        return None;
    }

    // 2. Reference curve: tile center via the provider, falling back to
    //    a data-driven curve of the first non-empty column of the tile.
    let (cx, cy) = tile.center();
    let ref_col = img.col_index(cx, cy);
    let curve = curves.curve(ref_col, views).unwrap_or_else(|| {
        let fallback = raw
            .iter()
            .find(|(_, e)| !e.is_empty())
            .map(|(c, _)| *c as usize)
            .expect("block has nonzeros");
        RefCurve::from_min_bins(&min_bin_per_view(csc, layout, fallback, views))
            .expect("fallback column is non-empty")
    });
    assert_eq!(curve.len(), views.len(), "curve must cover the view group");

    // 3. Densify each column over its offset span.
    let mut cdata: Vec<ColData<T>> = Vec::with_capacity(raw.len());
    for (col, entries) in &raw {
        if entries.is_empty() {
            continue;
        }
        let mut c0 = i64::MAX;
        let mut c1 = i64::MIN;
        for &(v, b, _) in entries {
            let c = curve.offset(v as usize, b);
            c0 = c0.min(c);
            c1 = c1.max(c);
        }
        let span = (c1 - c0 + 1) as usize;
        let mut grid = vec![T::ZERO; span * w];
        for &(v, b, val) in entries {
            let c = curve.offset(v as usize, b);
            grid[(c - c0) as usize * w + v as usize] = val;
        }
        stats.ioblr_padding += span * w - entries.len();
        stats.n_cscve += span;
        cdata.push(ColData {
            col: *col,
            c0,
            c1,
            grid,
        });
    }

    // 4. Block offset range and column ordering by first offset.
    let c_min = cdata.iter().map(|c| c.c0).min().unwrap();
    let c_max = cdata.iter().map(|c| c.c1).max().unwrap();
    let n_off = (c_max - c_min + 1) as usize;
    cdata.sort_by_key(|c| (c.c0, c.col));

    // VxG descriptors over sorted columns.
    struct VxgDesc {
        members: Range<usize>,
        c_start: i64,
        count: usize,
    }
    let n_vxg = cdata.len().div_ceil(g);
    let mut descs = Vec::with_capacity(n_vxg);
    for vi in 0..n_vxg {
        let members = vi * g..((vi + 1) * g).min(cdata.len());
        let c_start = cdata[members.clone()].iter().map(|c| c.c0).min().unwrap();
        let c_end = cdata[members.clone()].iter().map(|c| c.c1).max().unwrap();
        let count = (c_end - c_start + 1) as usize;
        let member_slots: usize = cdata[members.clone()]
            .iter()
            .map(|c| (c.c1 - c.c0 + 1) as usize * w)
            .sum();
        stats.vxg_padding += count * g * w - member_slots;
        stats.lane_slots += count * g * w;
        stats.n_vxg += 1;
        descs.push(VxgDesc {
            members,
            c_start,
            count,
        });
    }
    // Order VxGs by offset count (paper Fig. 6b), then start for
    // determinism.
    descs.sort_by_key(|d| (d.count, d.c_start));

    // 5. Emit value stream, masks and per-VxG metadata.
    let mask_bytes = w.div_ceil(8);
    let mut vxg_q = Vec::with_capacity(descs.len());
    let mut vxg_count = Vec::with_capacity(descs.len());
    let mut out_cols = Vec::with_capacity(descs.len() * g);
    let mut val_ptr = Vec::with_capacity(descs.len() + 1);
    let mut vals = Vec::new();
    let mut masks = Vec::new();
    val_ptr.push(0u32);
    let mut lane = vec![T::ZERO; w];
    let mut block_lane_slots = 0usize;
    for d in &descs {
        vxg_q.push(((d.c_start - c_min) as usize * w) as u32);
        vxg_count.push(u16::try_from(d.count).expect("offset count fits u16"));
        let members = &cdata[d.members.clone()];
        for s in 0..g {
            out_cols.push(members.get(s).map(|c| c.col).unwrap_or(members[0].col));
        }
        for ci in 0..d.count {
            let c_abs = d.c_start + ci as i64;
            for s in 0..g {
                lane.fill(T::ZERO);
                if let Some(m) = members.get(s) {
                    if c_abs >= m.c0 && c_abs <= m.c1 {
                        let at = (c_abs - m.c0) as usize * w;
                        lane.copy_from_slice(&m.grid[at..at + w]);
                    }
                }
                block_lane_slots += w;
                match variant {
                    Variant::Z => vals.extend_from_slice(&lane),
                    Variant::M => {
                        let mut mask = 0u32;
                        for (l, &v) in lane.iter().enumerate() {
                            if v != T::ZERO {
                                mask |= 1u32 << l;
                                vals.push(v);
                            }
                        }
                        masks.push((mask & 0xFF) as u8);
                        if mask_bytes == 2 {
                            masks.push((mask >> 8) as u8);
                        }
                    }
                }
            }
        }
        val_ptr.push(u32::try_from(vals.len()).expect("block value stream fits u32"));
    }

    // 6. ỹ scatter map.
    let wl = views.len();
    let mut map = vec![-1i32; n_off * w];
    for off in 0..n_off {
        let c_abs = c_min + off as i64;
        for v in 0..wl {
            let bin = curve.bin(v) + c_abs;
            if bin >= 0 && (bin as usize) < layout.n_bins {
                let row = layout.row_index(views.start + v, bin as usize);
                map[off * w + v] = i32::try_from(row).expect("row fits i32");
            }
        }
    }

    Some(Block {
        group,
        tile: tile_idx,
        map,
        vxg_q,
        vxg_count,
        cols: out_cols,
        val_ptr,
        vals,
        masks,
        nnz: block_nnz,
        lane_slots: block_lane_slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Variant;
    use cscv_sparse::Coo;

    /// A small synthetic "integral operator": column (pixel) j projects
    /// to bins around `ref(v) + j mod 3` — perfectly CT-like structure.
    fn synthetic(
        n_views: usize,
        n_bins: usize,
        nx: usize,
        ny: usize,
    ) -> (Csc<f64>, SinoLayout, ImageShape) {
        let layout = SinoLayout { n_views, n_bins };
        let img = ImageShape { nx, ny };
        let mut coo = Coo::new(layout.n_rows(), img.n_pixels());
        for col in 0..img.n_pixels() {
            for v in 0..n_views {
                // A slanted trajectory plus per-column offset.
                let base = (v + col) % (n_bins - 1);
                coo.push(layout.row_index(v, base), col, 1.0 + col as f64 * 0.01);
                coo.push(layout.row_index(v, base + 1), col, 0.5);
            }
        }
        (coo.to_csc(), layout, img)
    }

    #[test]
    fn build_z_validates_and_covers_nnz() {
        let (csc, layout, img) = synthetic(8, 12, 4, 4);
        let m = build(&csc, layout, img, CscvParams::new(2, 4, 2), Variant::Z);
        m.validate();
        assert_eq!(m.stats.nnz_orig, csc.nnz());
        assert_eq!(
            m.stats.lane_slots,
            m.stats.nnz_orig + m.stats.ioblr_padding + m.stats.vxg_padding
        );
        assert_eq!(m.nnz_stored_vals(), m.stats.lane_slots);
        assert!(m.stats.r_nnze() >= 0.0);
        assert_eq!(m.groups.len(), 2);
    }

    #[test]
    fn build_m_stores_exactly_nnz_values() {
        let (csc, layout, img) = synthetic(8, 12, 4, 4);
        let m = build(&csc, layout, img, CscvParams::new(2, 4, 2), Variant::M);
        m.validate();
        assert_eq!(m.nnz_stored_vals(), csc.nnz());
        // Same padding stats as Z (format-level, not storage-level).
        let z = build(&csc, layout, img, CscvParams::new(2, 4, 2), Variant::Z);
        assert_eq!(m.stats, z.stats);
    }

    #[test]
    fn spmv_z_equals_csc_reference() {
        let (csc, layout, img) = synthetic(9, 14, 6, 5);
        for params in [
            CscvParams::new(2, 4, 1),
            CscvParams::new(3, 4, 2),
            CscvParams::new(6, 8, 4),
            CscvParams::new(16, 16, 3),
        ] {
            let m = build(&csc, layout, img, params, Variant::Z);
            m.validate();
            spmv_single_thread_check(&csc, &m, params);
        }
    }

    #[test]
    fn spmv_m_equals_csc_reference() {
        let (csc, layout, img) = synthetic(10, 14, 5, 4);
        for params in [CscvParams::new(2, 4, 2), CscvParams::new(5, 8, 3)] {
            let m = build(&csc, layout, img, params, Variant::M);
            m.validate();
            spmv_single_thread_check(&csc, &m, params);
        }
    }

    /// Direct (executor-free) single-thread SpMV over the blocks.
    fn spmv_single_thread_check(csc: &Csc<f64>, m: &CscvMatrix<f64>, params: CscvParams) {
        let x: Vec<f64> = (0..csc.n_cols()).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut y_ref = vec![0.0; csc.n_rows()];
        csc.spmv_serial(&x, &mut y_ref);
        let mut y = vec![0.0; csc.n_rows()];
        let mut ytil = vec![0.0; m.max_ytil];
        for blk in &m.blocks {
            match (m.variant, params.s_vvec) {
                (Variant::Z, 4) => {
                    crate::kernels::run_block_z::<f64, 4>(blk, params.s_vxg, &x, &mut ytil)
                }
                (Variant::Z, 8) => {
                    crate::kernels::run_block_z::<f64, 8>(blk, params.s_vxg, &x, &mut ytil)
                }
                (Variant::Z, 16) => {
                    crate::kernels::run_block_z::<f64, 16>(blk, params.s_vxg, &x, &mut ytil)
                }
                (Variant::M, 4) => {
                    crate::kernels::run_block_m::<f64, 4, false>(blk, params.s_vxg, &x, &mut ytil)
                }
                (Variant::M, 8) => {
                    crate::kernels::run_block_m::<f64, 8, false>(blk, params.s_vxg, &x, &mut ytil)
                }
                (Variant::M, 16) => {
                    crate::kernels::run_block_m::<f64, 16, false>(blk, params.s_vxg, &x, &mut ytil)
                }
                _ => unreachable!(),
            }
            crate::kernels::scatter_add(blk, &ytil, &mut y, 0);
        }
        cscv_sparse::dense::assert_vec_close(&y, &y_ref, 1e-12);
    }

    #[test]
    fn partial_last_view_group() {
        // 10 views with W=4 leaves a 2-view group; lanes 2..4 must be
        // padding with -1 map entries, and SpMV must stay exact.
        let (csc, layout, img) = synthetic(10, 12, 4, 4);
        let params = CscvParams::new(4, 4, 2);
        let m = build(&csc, layout, img, params, Variant::Z);
        m.validate();
        let last_group = m.groups.last().unwrap();
        assert_eq!(last_group.row_range.len(), 2 * 12);
        spmv_single_thread_check(&csc, &m, params);
    }

    #[test]
    fn empty_columns_are_skipped() {
        let layout = SinoLayout {
            n_views: 4,
            n_bins: 8,
        };
        let img = ImageShape { nx: 4, ny: 2 };
        let mut coo: Coo<f64> = Coo::new(32, 8);
        // Only two pixels project.
        for v in 0..4 {
            coo.push(layout.row_index(v, v), 1, 2.0);
            coo.push(layout.row_index(v, v + 2), 6, 1.0);
        }
        let csc = coo.to_csc();
        let params = CscvParams::new(2, 4, 2);
        let m = build(&csc, layout, img, params, Variant::Z);
        m.validate();
        assert_eq!(m.stats.nnz_orig, 8);
        spmv_single_thread_check(&csc, &m, params);
    }

    #[test]
    fn perfectly_parallel_trajectories_have_zero_ioblr_padding() {
        // All columns exactly parallel to the reference: offset span 1.
        let layout = SinoLayout {
            n_views: 4,
            n_bins: 16,
        };
        let img = ImageShape { nx: 4, ny: 1 };
        let mut coo: Coo<f64> = Coo::new(64, 4);
        for col in 0..4 {
            for v in 0..4 {
                coo.push(layout.row_index(v, 2 * v + col), col, 1.0);
            }
        }
        let csc = coo.to_csc();
        let m = build(&csc, layout, img, CscvParams::new(4, 4, 4), Variant::Z);
        assert_eq!(m.stats.ioblr_padding, 0);
        // Columns share no VxG alignment padding either (offsets 0..3
        // with span 1 each → common range forces padding).
        assert_eq!(m.stats.n_cscve, 4);
        m.validate();
    }

    #[test]
    fn vxg_one_is_no_alignment_padding() {
        let (csc, layout, img) = synthetic(8, 12, 4, 4);
        let m = build(&csc, layout, img, CscvParams::new(4, 4, 1), Variant::Z);
        assert_eq!(m.stats.vxg_padding, 0, "S_VxG=1 never aligns columns");
        m.validate();
    }

    #[test]
    fn group_nnz_sums_to_total() {
        let (csc, layout, img) = synthetic(12, 14, 4, 4);
        let m = build(&csc, layout, img, CscvParams::new(4, 4, 2), Variant::Z);
        let total: usize = m.groups.iter().map(|g| g.nnz).sum();
        assert_eq!(total, csc.nnz());
    }
}
