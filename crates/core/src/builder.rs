//! The CSCV format builder (paper Fig. 7: "matrix format conversion").
//!
//! For every (tile × view group) block:
//!
//! 1. slice each tile column's nonzeros for the group's views;
//! 2. derive the IOBLR reference curve from the tile-center column (data
//!    driven; falls back to the first non-empty column);
//! 3. re-address nonzeros as (curve offset, local view) and densify each
//!    column over its offset span — the CSCVEs;
//! 4. sort columns by first offset, group `S_VxG` of them into VxGs
//!    (columns padded to the group's common offset range — the "red"
//!    extra padding of Fig. 6a), then sort VxGs by offset count (Fig. 6b);
//! 5. emit the value stream (full lanes for CSCV-Z; mask-compressed for
//!    CSCV-M) and the block's ỹ scatter map.

use crate::format::{Block, CscvMatrix, CscvStats, GroupInfo, Variant};
use crate::ioblr::{min_bin_per_view, RefCurve};
use crate::layout::{tiles, view_groups, ImageShape, SinoLayout, Tile};
use crate::params::CscvParams;
use cscv_sparse::{Csc, Scalar};
use std::ops::Range;

/// Source of IOBLR reference curves.
///
/// The default is **data-driven** (read the min-bin curve off the
/// reference column), which needs no geometry knowledge. Generators
/// that know their geometry analytically (e.g. `cscv-ct`'s parallel- or
/// fan-beam operators) can provide exact curves instead — useful when
/// the reference column is sparse or the matrix is subsampled.
pub trait CurveProvider {
    /// Reference curve for `ref_col` over the (global) view range, or
    /// `None` when this provider cannot produce one (the builder then
    /// falls back to a data-driven curve from another column).
    fn curve(&self, ref_col: usize, views: &Range<usize>) -> Option<RefCurve>;
}

/// The default data-driven provider: min-bin curve of the column itself.
pub struct DataDrivenCurves<'a, T> {
    pub csc: &'a Csc<T>,
    pub layout: SinoLayout,
}

impl<T: Scalar> CurveProvider for DataDrivenCurves<'_, T> {
    fn curve(&self, ref_col: usize, views: &Range<usize>) -> Option<RefCurve> {
        RefCurve::from_min_bins(&min_bin_per_view(self.csc, &self.layout, ref_col, views))
    }
}

/// Why a CSCV build was rejected before any block work started.
///
/// The compressed index types dictate hard dimension ceilings: the ỹ
/// scatter map stores rows as `i32` (−1 is the padding sentinel, so
/// only `i32::MAX` rows are addressable — invariant `CSCV-U32-FIT`),
/// and VxG member columns are `u32`. [`try_build`] checks these up
/// front instead of letting an `as` cast wrap silently mid-conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `layout.n_rows() > i32::MAX`: rows no longer fit the i32 scatter
    /// map (invariant `CSCV-U32-FIT`).
    RowsExceedIndexRange { n_rows: usize },
    /// `img.n_pixels() > u32::MAX`: columns no longer fit the u32 VxG
    /// member ids (invariant `CSCV-U32-FIT`).
    ColsExceedIndexRange { n_cols: usize },
    /// The CSC's shape disagrees with `layout`/`img`.
    ShapeMismatch {
        what: &'static str,
        got: usize,
        expected: usize,
    },
    /// `params.s_vxg` exceeds the kernels' compiled accumulator bound.
    VxgAboveKernelBound { s_vxg: usize, max: usize },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::RowsExceedIndexRange { n_rows } => write!(
                f,
                "{n_rows} rows exceed the i32 scatter-map range ({})",
                i32::MAX
            ),
            BuildError::ColsExceedIndexRange { n_cols } => write!(
                f,
                "{n_cols} columns exceed the u32 column-id range ({})",
                u32::MAX
            ),
            BuildError::ShapeMismatch {
                what,
                got,
                expected,
            } => write!(f, "shape mismatch: {what} is {got}, expected {expected}"),
            BuildError::VxgAboveKernelBound { s_vxg, max } => {
                write!(f, "S_VxG = {s_vxg} above the kernel bound {max}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Build a CSCV matrix from a CSC matrix with sinogram row structure,
/// using data-driven reference curves.
///
/// # Panics
/// If the CSC shape disagrees with `layout`/`img`, a dimension exceeds
/// the compressed index range, or `s_vxg > 32`. Use [`try_build`] for a
/// typed error instead.
pub fn build<T: Scalar>(
    csc: &Csc<T>,
    layout: SinoLayout,
    img: ImageShape,
    params: CscvParams,
    variant: Variant,
) -> CscvMatrix<T> {
    try_build(csc, layout, img, params, variant).unwrap_or_else(|e| panic!("CSCV build: {e}"))
}

/// Build with an explicit [`CurveProvider`].
///
/// # Panics
/// Same conditions as [`build`]; see [`try_build_with_curves`].
pub fn build_with_curves<T: Scalar>(
    csc: &Csc<T>,
    layout: SinoLayout,
    img: ImageShape,
    params: CscvParams,
    variant: Variant,
    curves: &dyn CurveProvider,
) -> CscvMatrix<T> {
    try_build_with_curves(csc, layout, img, params, variant, curves)
        .unwrap_or_else(|e| panic!("CSCV build: {e}"))
}

/// Fallible [`build`]: returns a [`BuildError`] instead of panicking on
/// rejected inputs (oversized dimensions, shape mismatch, S_VxG bound).
pub fn try_build<T: Scalar>(
    csc: &Csc<T>,
    layout: SinoLayout,
    img: ImageShape,
    params: CscvParams,
    variant: Variant,
) -> Result<CscvMatrix<T>, BuildError> {
    try_build_with_curves(
        csc,
        layout,
        img,
        params,
        variant,
        &DataDrivenCurves { csc, layout },
    )
}

/// Fallible [`build_with_curves`].
pub fn try_build_with_curves<T: Scalar>(
    csc: &Csc<T>,
    layout: SinoLayout,
    img: ImageShape,
    params: CscvParams,
    variant: Variant,
    curves: &dyn CurveProvider,
) -> Result<CscvMatrix<T>, BuildError> {
    // Index-range ceilings first (they are properties of layout/img
    // alone): every downstream `usize → u32/i32` index conversion in
    // this module relies on them (invariant CSCV-U32-FIT).
    if layout.n_rows() > i32::MAX as usize {
        return Err(BuildError::RowsExceedIndexRange {
            n_rows: layout.n_rows(),
        });
    }
    if img.n_pixels() > u32::MAX as usize {
        return Err(BuildError::ColsExceedIndexRange {
            n_cols: img.n_pixels(),
        });
    }
    if csc.n_rows() != layout.n_rows() {
        return Err(BuildError::ShapeMismatch {
            what: "CSC row count vs layout",
            got: csc.n_rows(),
            expected: layout.n_rows(),
        });
    }
    if csc.n_cols() != img.n_pixels() {
        return Err(BuildError::ShapeMismatch {
            what: "CSC column count vs image shape",
            got: csc.n_cols(),
            expected: img.n_pixels(),
        });
    }
    if params.s_vxg > crate::kernels::MAX_VXG {
        return Err(BuildError::VxgAboveKernelBound {
            s_vxg: params.s_vxg,
            max: crate::kernels::MAX_VXG,
        });
    }

    let tile_list = tiles(&img, params.s_imgb);
    let vgroups = view_groups(layout.n_views, params.s_vvec);

    let mut stats = CscvStats {
        nnz_orig: csc.nnz(),
        ..CscvStats::default()
    };
    let mut blocks = Vec::new();
    let mut groups = Vec::with_capacity(vgroups.len());
    let mut max_ytil = 0usize;

    for (gi, views) in vgroups.iter().enumerate() {
        let block_start = blocks.len();
        let mut group_nnz = 0usize;
        // Group count <= n_views <= n_rows <= i32::MAX and tile count <=
        // n_pixels <= u32::MAX — both ceilings established above, so
        // these conversions cannot truncate.
        // AUDIT(panic-ok): ceiling established above — group count <= i32::MAX.
        let group_id = u32::try_from(gi).expect("group index fits u32");
        for (ti, tile) in tile_list.iter().enumerate() {
            // AUDIT(panic-ok): ceiling established above — tile count <= u32::MAX.
            let tile_id = u32::try_from(ti).expect("tile index fits u32");
            if let Some(block) = build_block(
                csc, &layout, &img, tile, views, group_id, tile_id, params, variant, curves,
                &mut stats,
            ) {
                group_nnz += block.nnz;
                max_ytil = max_ytil.max(block.ytil_len());
                blocks.push(block);
            }
        }
        groups.push(GroupInfo {
            block_range: block_start..blocks.len(),
            row_range: views.start * layout.n_bins..views.end * layout.n_bins,
            nnz: group_nnz,
        });
    }
    stats.n_blocks = blocks.len();

    let matrix = CscvMatrix {
        n_rows: csc.n_rows(),
        n_cols: csc.n_cols(),
        layout,
        params,
        variant,
        blocks,
        groups,
        stats,
        max_ytil,
    };
    // Catalog postcondition (no-op unless `check-invariants` is on).
    crate::invariants::assert_valid(&matrix, "builder::try_build_with_curves");
    Ok(matrix)
}

/// Per-column working data inside one block.
struct ColData<T> {
    col: u32,
    /// Offset span `[c0, c1]` relative to the reference curve.
    c0: i64,
    c1: i64,
    /// Densified values: `(c − c0)·W + v` (lanes beyond the group's local
    /// view count stay zero).
    grid: Vec<T>,
}

/// Slice one column's nonzeros for a view range as `(local view, bin, val)`.
fn col_block_entries<T: Scalar>(
    csc: &Csc<T>,
    layout: &SinoLayout,
    col: usize,
    views: &Range<usize>,
) -> Vec<(u32, u32, T)> {
    let (rows, vals) = csc.col(col);
    let lo = rows.partition_point(|&r| (r as usize) < views.start * layout.n_bins);
    let hi = rows.partition_point(|&r| (r as usize) < views.end * layout.n_bins);
    rows[lo..hi]
        .iter()
        .zip(&vals[lo..hi])
        .map(|(&r, &v)| {
            let (view, bin) = layout.ray_of_row(r as usize);
            // Local view < S_VVec <= 16 and bin < n_bins <= n_rows, both
            // within the u32 ceilings try_build_with_curves established.
            (
                u32::try_from(view - views.start).expect("local view fits u32"),
                u32::try_from(bin).expect("bin fits u32"),
                v,
            )
        })
        .collect()
}

/// Per-column raw entries of one block: `(global col, [(view, bin, val)])`.
type RawColumns<T> = Vec<(u32, Vec<(u32, u32, T)>)>;

#[allow(clippy::too_many_arguments)]
fn build_block<T: Scalar>(
    csc: &Csc<T>,
    layout: &SinoLayout,
    img: &ImageShape,
    tile: &Tile,
    views: &Range<usize>,
    group: u32,
    tile_idx: u32,
    params: CscvParams,
    variant: Variant,
    curves: &dyn CurveProvider,
    stats: &mut CscvStats,
) -> Option<Block<T>> {
    let w = params.s_vvec;
    let g = params.s_vxg;
    let cols = tile.cols(img);

    // 1. Extract per-column entries.
    let mut raw: RawColumns<T> = Vec::with_capacity(cols.len());
    let mut block_nnz = 0usize;
    for &col in &cols {
        let entries = col_block_entries(csc, layout, col, views);
        block_nnz += entries.len();
        // col < n_pixels <= u32::MAX (checked in try_build_with_curves).
        // AUDIT(panic-ok): ceiling established in try_build_with_curves — col < n_pixels <= u32::MAX.
        raw.push((u32::try_from(col).expect("column fits u32"), entries));
    }
    if block_nnz == 0 {
        return None;
    }

    // 2. Reference curve: tile center via the provider, falling back to
    //    a data-driven curve of the first non-empty column of the tile.
    let (cx, cy) = tile.center();
    let ref_col = img.col_index(cx, cy);
    let curve = curves.curve(ref_col, views).unwrap_or_else(|| {
        let fallback = raw
            .iter()
            .find(|(_, e)| !e.is_empty())
            .map(|(c, _)| *c as usize)
            .expect("block has nonzeros");
        RefCurve::from_min_bins(&min_bin_per_view(csc, layout, fallback, views))
            .expect("fallback column is non-empty")
    });
    assert_eq!(curve.len(), views.len(), "curve must cover the view group");

    // 3. Densify each column over its offset span.
    let mut cdata: Vec<ColData<T>> = Vec::with_capacity(raw.len());
    for (col, entries) in &raw {
        if entries.is_empty() {
            continue;
        }
        let mut c0 = i64::MAX;
        let mut c1 = i64::MIN;
        for &(v, b, _) in entries {
            let c = curve.offset(v as usize, b);
            c0 = c0.min(c);
            c1 = c1.max(c);
        }
        let span = (c1 - c0 + 1) as usize;
        let mut grid = vec![T::ZERO; span * w];
        for &(v, b, val) in entries {
            let c = curve.offset(v as usize, b);
            grid[(c - c0) as usize * w + v as usize] = val;
        }
        stats.ioblr_padding += span * w - entries.len();
        stats.n_cscve += span;
        cdata.push(ColData {
            col: *col,
            c0,
            c1,
            grid,
        });
    }

    // 4. Block offset range and column ordering by first offset.
    let c_min = cdata.iter().map(|c| c.c0).min().unwrap();
    let c_max = cdata.iter().map(|c| c.c1).max().unwrap();
    let n_off = (c_max - c_min + 1) as usize;
    cdata.sort_by_key(|c| (c.c0, c.col));

    // VxG descriptors over sorted columns.
    struct VxgDesc {
        members: Range<usize>,
        c_start: i64,
        count: usize,
    }
    let n_vxg = cdata.len().div_ceil(g);
    let mut descs = Vec::with_capacity(n_vxg);
    for vi in 0..n_vxg {
        let members = vi * g..((vi + 1) * g).min(cdata.len());
        let c_start = cdata[members.clone()].iter().map(|c| c.c0).min().unwrap();
        let c_end = cdata[members.clone()].iter().map(|c| c.c1).max().unwrap();
        let count = (c_end - c_start + 1) as usize;
        let member_slots: usize = cdata[members.clone()]
            .iter()
            .map(|c| (c.c1 - c.c0 + 1) as usize * w)
            .sum();
        stats.vxg_padding += count * g * w - member_slots;
        stats.lane_slots += count * g * w;
        stats.n_vxg += 1;
        descs.push(VxgDesc {
            members,
            c_start,
            count,
        });
    }
    // Order VxGs by offset count (paper Fig. 6b), then start for
    // determinism.
    descs.sort_by_key(|d| (d.count, d.c_start));

    // 5. Emit value stream, masks and per-VxG metadata.
    let mask_bytes = w.div_ceil(8);
    let mut vxg_q = Vec::with_capacity(descs.len());
    let mut vxg_count = Vec::with_capacity(descs.len());
    let mut out_cols = Vec::with_capacity(descs.len() * g);
    let mut val_ptr = Vec::with_capacity(descs.len() + 1);
    let mut vals = Vec::new();
    let mut masks = Vec::new();
    val_ptr.push(0u32);
    let mut lane = vec![T::ZERO; w];
    let mut block_lane_slots = 0usize;
    for d in &descs {
        // Slot index <= map.len() = n_off·W; a block whose ỹ outgrows
        // u32 is unusable anyway (val_ptr is u32 too), so fail loudly
        // rather than wrap (invariant CSCV-U32-FIT).
        let q = (d.c_start - c_min) as usize * w;
        vxg_q.push(u32::try_from(q).expect("VxG start slot fits u32"));
        vxg_count.push(u16::try_from(d.count).expect("offset count fits u16"));
        let members = &cdata[d.members.clone()];
        for s in 0..g {
            out_cols.push(members.get(s).map(|c| c.col).unwrap_or(members[0].col));
        }
        for ci in 0..d.count {
            let c_abs = d.c_start + ci as i64;
            for s in 0..g {
                lane.fill(T::ZERO);
                if let Some(m) = members.get(s) {
                    if c_abs >= m.c0 && c_abs <= m.c1 {
                        let at = (c_abs - m.c0) as usize * w;
                        lane.copy_from_slice(&m.grid[at..at + w]);
                    }
                }
                block_lane_slots += w;
                match variant {
                    Variant::Z => vals.extend_from_slice(&lane),
                    Variant::M => {
                        let mut mask = 0u32;
                        for (l, &v) in lane.iter().enumerate() {
                            if v != T::ZERO {
                                mask |= 1u32 << l;
                                vals.push(v);
                            }
                        }
                        masks.push((mask & 0xFF) as u8);
                        if mask_bytes == 2 {
                            masks.push((mask >> 8) as u8);
                        }
                    }
                }
            }
        }
        val_ptr.push(u32::try_from(vals.len()).expect("block value stream fits u32"));
    }

    // 6. ỹ scatter map.
    let wl = views.len();
    let mut map = vec![-1i32; n_off * w];
    for off in 0..n_off {
        let c_abs = c_min + off as i64;
        for v in 0..wl {
            let bin = curve.bin(v) + c_abs;
            if bin >= 0 && (bin as usize) < layout.n_bins {
                let row = layout.row_index(views.start + v, bin as usize);
                map[off * w + v] = i32::try_from(row).expect("row fits i32");
            }
        }
    }

    Some(Block {
        group,
        tile: tile_idx,
        map,
        vxg_q,
        vxg_count,
        cols: out_cols,
        val_ptr,
        vals,
        masks,
        nnz: block_nnz,
        lane_slots: block_lane_slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Variant;
    use cscv_sparse::Coo;

    /// A small synthetic "integral operator": column (pixel) j projects
    /// to bins around `ref(v) + j mod 3` — perfectly CT-like structure.
    fn synthetic(
        n_views: usize,
        n_bins: usize,
        nx: usize,
        ny: usize,
    ) -> (Csc<f64>, SinoLayout, ImageShape) {
        let layout = SinoLayout { n_views, n_bins };
        let img = ImageShape { nx, ny };
        let mut coo = Coo::new(layout.n_rows(), img.n_pixels());
        for col in 0..img.n_pixels() {
            for v in 0..n_views {
                // A slanted trajectory plus per-column offset.
                let base = (v + col) % (n_bins - 1);
                coo.push(layout.row_index(v, base), col, 1.0 + col as f64 * 0.01);
                coo.push(layout.row_index(v, base + 1), col, 0.5);
            }
        }
        (coo.to_csc(), layout, img)
    }

    #[test]
    fn build_z_validates_and_covers_nnz() {
        let (csc, layout, img) = synthetic(8, 12, 4, 4);
        let m = build(&csc, layout, img, CscvParams::new(2, 4, 2), Variant::Z);
        m.validate();
        assert_eq!(m.stats.nnz_orig, csc.nnz());
        assert_eq!(
            m.stats.lane_slots,
            m.stats.nnz_orig + m.stats.ioblr_padding + m.stats.vxg_padding
        );
        assert_eq!(m.nnz_stored_vals(), m.stats.lane_slots);
        assert!(m.stats.r_nnze() >= 0.0);
        assert_eq!(m.groups.len(), 2);
    }

    #[test]
    fn build_m_stores_exactly_nnz_values() {
        let (csc, layout, img) = synthetic(8, 12, 4, 4);
        let m = build(&csc, layout, img, CscvParams::new(2, 4, 2), Variant::M);
        m.validate();
        assert_eq!(m.nnz_stored_vals(), csc.nnz());
        // Same padding stats as Z (format-level, not storage-level).
        let z = build(&csc, layout, img, CscvParams::new(2, 4, 2), Variant::Z);
        assert_eq!(m.stats, z.stats);
    }

    #[test]
    fn spmv_z_equals_csc_reference() {
        let (csc, layout, img) = synthetic(9, 14, 6, 5);
        for params in [
            CscvParams::new(2, 4, 1),
            CscvParams::new(3, 4, 2),
            CscvParams::new(6, 8, 4),
            CscvParams::new(16, 16, 3),
        ] {
            let m = build(&csc, layout, img, params, Variant::Z);
            m.validate();
            spmv_single_thread_check(&csc, &m, params);
        }
    }

    #[test]
    fn spmv_m_equals_csc_reference() {
        let (csc, layout, img) = synthetic(10, 14, 5, 4);
        for params in [CscvParams::new(2, 4, 2), CscvParams::new(5, 8, 3)] {
            let m = build(&csc, layout, img, params, Variant::M);
            m.validate();
            spmv_single_thread_check(&csc, &m, params);
        }
    }

    /// Direct (executor-free) single-thread SpMV over the blocks.
    fn spmv_single_thread_check(csc: &Csc<f64>, m: &CscvMatrix<f64>, params: CscvParams) {
        let x: Vec<f64> = (0..csc.n_cols()).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut y_ref = vec![0.0; csc.n_rows()];
        csc.spmv_serial(&x, &mut y_ref);
        let mut y = vec![0.0; csc.n_rows()];
        let mut ytil = vec![0.0; m.max_ytil];
        for blk in &m.blocks {
            match (m.variant, params.s_vvec) {
                (Variant::Z, 4) => {
                    crate::kernels::run_block_z::<f64, 4>(blk, params.s_vxg, &x, &mut ytil)
                }
                (Variant::Z, 8) => {
                    crate::kernels::run_block_z::<f64, 8>(blk, params.s_vxg, &x, &mut ytil)
                }
                (Variant::Z, 16) => {
                    crate::kernels::run_block_z::<f64, 16>(blk, params.s_vxg, &x, &mut ytil)
                }
                (Variant::M, 4) => {
                    crate::kernels::run_block_m::<f64, 4, false>(blk, params.s_vxg, &x, &mut ytil)
                }
                (Variant::M, 8) => {
                    crate::kernels::run_block_m::<f64, 8, false>(blk, params.s_vxg, &x, &mut ytil)
                }
                (Variant::M, 16) => {
                    crate::kernels::run_block_m::<f64, 16, false>(blk, params.s_vxg, &x, &mut ytil)
                }
                _ => unreachable!(),
            }
            crate::kernels::scatter_add(blk, &ytil, &mut y, 0);
        }
        cscv_sparse::dense::assert_vec_close(&y, &y_ref, 1e-12);
    }

    #[test]
    fn partial_last_view_group() {
        // 10 views with W=4 leaves a 2-view group; lanes 2..4 must be
        // padding with -1 map entries, and SpMV must stay exact.
        let (csc, layout, img) = synthetic(10, 12, 4, 4);
        let params = CscvParams::new(4, 4, 2);
        let m = build(&csc, layout, img, params, Variant::Z);
        m.validate();
        let last_group = m.groups.last().unwrap();
        assert_eq!(last_group.row_range.len(), 2 * 12);
        spmv_single_thread_check(&csc, &m, params);
    }

    #[test]
    fn empty_columns_are_skipped() {
        let layout = SinoLayout {
            n_views: 4,
            n_bins: 8,
        };
        let img = ImageShape { nx: 4, ny: 2 };
        let mut coo: Coo<f64> = Coo::new(32, 8);
        // Only two pixels project.
        for v in 0..4 {
            coo.push(layout.row_index(v, v), 1, 2.0);
            coo.push(layout.row_index(v, v + 2), 6, 1.0);
        }
        let csc = coo.to_csc();
        let params = CscvParams::new(2, 4, 2);
        let m = build(&csc, layout, img, params, Variant::Z);
        m.validate();
        assert_eq!(m.stats.nnz_orig, 8);
        spmv_single_thread_check(&csc, &m, params);
    }

    #[test]
    fn perfectly_parallel_trajectories_have_zero_ioblr_padding() {
        // All columns exactly parallel to the reference: offset span 1.
        let layout = SinoLayout {
            n_views: 4,
            n_bins: 16,
        };
        let img = ImageShape { nx: 4, ny: 1 };
        let mut coo: Coo<f64> = Coo::new(64, 4);
        for col in 0..4 {
            for v in 0..4 {
                coo.push(layout.row_index(v, 2 * v + col), col, 1.0);
            }
        }
        let csc = coo.to_csc();
        let m = build(&csc, layout, img, CscvParams::new(4, 4, 4), Variant::Z);
        assert_eq!(m.stats.ioblr_padding, 0);
        // Columns share no VxG alignment padding either (offsets 0..3
        // with span 1 each → common range forces padding).
        assert_eq!(m.stats.n_cscve, 4);
        m.validate();
    }

    #[test]
    fn vxg_one_is_no_alignment_padding() {
        let (csc, layout, img) = synthetic(8, 12, 4, 4);
        let m = build(&csc, layout, img, CscvParams::new(4, 4, 1), Variant::Z);
        assert_eq!(m.stats.vxg_padding, 0, "S_VxG=1 never aligns columns");
        m.validate();
    }

    #[test]
    fn try_build_rejects_rows_beyond_i32() {
        // An empty CSC is allocation-cheap even at absurd row counts;
        // the builder must reject it before doing any block work.
        let n_rows = i32::MAX as usize + 1;
        let csc: Csc<f64> = Csc::from_parts(n_rows, 1, vec![0, 0], vec![], vec![]);
        let layout = SinoLayout {
            n_views: n_rows,
            n_bins: 1,
        };
        let img = ImageShape { nx: 1, ny: 1 };
        let err = try_build(&csc, layout, img, CscvParams::new(4, 4, 2), Variant::Z).unwrap_err();
        assert_eq!(err, BuildError::RowsExceedIndexRange { n_rows });
        assert!(err.to_string().contains("i32"));
    }

    #[test]
    fn try_build_rejects_cols_beyond_u32() {
        // Dimension-range checks run before shape checks, so a tiny CSC
        // suffices to exercise the column ceiling.
        let n_cols = u32::MAX as usize + 1;
        let csc: Csc<f64> = Csc::from_parts(4, 1, vec![0, 0], vec![], vec![]);
        let layout = SinoLayout {
            n_views: 4,
            n_bins: 1,
        };
        let img = ImageShape { nx: n_cols, ny: 1 };
        let err = try_build(&csc, layout, img, CscvParams::new(4, 4, 2), Variant::Z).unwrap_err();
        assert_eq!(err, BuildError::ColsExceedIndexRange { n_cols });
    }

    #[test]
    fn try_build_rejects_shape_mismatch_and_vxg_bound() {
        let (csc, layout, img) = synthetic(8, 12, 4, 4);
        let bad_layout = SinoLayout {
            n_views: layout.n_views + 1,
            n_bins: layout.n_bins,
        };
        let err = try_build(&csc, bad_layout, img, CscvParams::new(4, 4, 2), Variant::Z);
        assert!(matches!(err, Err(BuildError::ShapeMismatch { .. })));
        let err = try_build(&csc, layout, img, CscvParams::new(4, 4, 64), Variant::Z).unwrap_err();
        assert_eq!(
            err,
            BuildError::VxgAboveKernelBound {
                s_vxg: 64,
                max: crate::kernels::MAX_VXG
            }
        );
    }

    #[test]
    #[should_panic(expected = "CSCV build")]
    fn build_panics_on_rejected_input() {
        let (csc, layout, img) = synthetic(8, 12, 4, 4);
        let _ = build(&csc, layout, img, CscvParams::new(4, 4, 64), Variant::Z);
    }

    #[test]
    fn try_build_matches_build_on_valid_input() {
        let (csc, layout, img) = synthetic(8, 12, 4, 4);
        let p = CscvParams::new(2, 4, 2);
        let a = build(&csc, layout, img, p, Variant::M);
        let b = try_build(&csc, layout, img, p, Variant::M).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.blocks.len(), b.blocks.len());
    }

    #[test]
    fn group_nnz_sums_to_total() {
        let (csc, layout, img) = synthetic(12, 14, 4, 4);
        let m = build(&csc, layout, img, CscvParams::new(4, 4, 2), Variant::Z);
        let total: usize = m.groups.iter().map(|g| g.nnz).sum();
        assert_eq!(total, csc.nnz());
    }
}
