//! CSCV SpMV executors (the `SpmvExecutor` face of the format).
//!
//! Two thread-level strategies are provided:
//!
//! * [`ParallelStrategy::ViewGroups`] *(default)* — threads own whole
//!   view groups; their global row ranges are disjoint, so scatters go
//!   straight into `y` with no reduction. Balanced by per-group nnz
//!   (near-perfect thanks to paper property P3).
//! * [`ParallelStrategy::LocalCopies`] — the paper's own scheme: blocks
//!   are distributed freely, each thread accumulates into a private copy
//!   of `y`, and copies are reduced in parallel afterwards. Kept for
//!   fidelity and as the fallback when there are fewer view groups than
//!   threads.

use crate::builder::{try_build, BuildError};
use crate::format::{Block, CscvMatrix, Variant};
use crate::kernels::{
    gather, gather_multi, run_block_m, run_block_m_multi, run_block_m_t, run_block_m_t_multi,
    run_block_z, run_block_z_multi, run_block_z_t, run_block_z_t_multi, scatter_add,
};
use crate::layout::{ImageShape, SinoLayout};
use crate::params::CscvParams;
use cscv_simd::expand::{select_path, ExpandPath};
use cscv_simd::{MaskExpand, Scalar};
use cscv_sparse::numa::NumaTopology;
use cscv_sparse::shared::{reduce_buffers_into, Scratch, SharedSliceMut};
use cscv_sparse::{partition, Csc, SpmvExecutor, ThreadPool};

/// Tally one block-kernel pass into the trace counters (traced builds
/// only — the `ENABLED` guard makes this whole body dead code
/// otherwise). `k` is the register-tile batch width of the pass: FMA
/// lanes, useful flops and padding lanes scale with `k`, while the
/// matrix stream and (for CSCV-M) the mask expansions are paid once per
/// pass — exactly the amortization the batched path exists to collect.
///
/// Runs inside the pool task, so per-thread counter shards attribute
/// kernel work to the thread that did it.
#[inline(always)]
fn trace_block_pass<T: Scalar>(m: &CscvMatrix<T>, blk: &Block<T>, k: u64) {
    if cscv_trace::ENABLED {
        use cscv_trace::counters::{add, Counter};
        let (issued, expands, blocks_counter) = match m.variant {
            Variant::Z => (blk.vals.len() as u64, 0u64, Counter::BlocksZ),
            Variant::M => {
                let lane_blocks = (blk.masks.len() / m.mask_bytes()) as u64;
                (
                    lane_blocks * m.params.s_vvec as u64,
                    lane_blocks,
                    Counter::BlocksM,
                )
            }
        };
        add(Counter::FmaLanes, issued * k);
        add(Counter::UsefulFlops, 2 * blk.nnz as u64 * k);
        add(Counter::PaddingLanes, (blk.lane_slots - blk.nnz) as u64 * k);
        add(Counter::MaskExpands, expands);
        add(Counter::VxgGroups, blk.n_vxgs() as u64);
        add(Counter::BytesLoaded, blk.matrix_bytes() as u64);
        add(blocks_counter, 1);
    }
}

/// Thread-level parallelization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelStrategy {
    /// Row-disjoint view-group ownership (no reduction).
    #[default]
    ViewGroups,
    /// Paper's scheme: private `y` copies + parallel reduction.
    LocalCopies,
}

/// A complete executor configuration: everything that varies between two
/// `CscvExec` instances built over the same CSC matrix. This is the unit
/// the static heuristic produces and the autotuner searches over —
/// `cscv-tune` persists it verbatim in the tuning cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    pub variant: Variant,
    pub params: CscvParams,
    pub strategy: ParallelStrategy,
}

impl ExecConfig {
    /// The static heuristic for a variant: the paper's recommended
    /// parameter defaults plus the default (ViewGroups) strategy. The
    /// autotuner always includes this point in its grid, so a tuned
    /// selection can never lose to it within a search.
    pub fn heuristic(variant: Variant) -> Self {
        let params = match variant {
            Variant::Z => CscvParams::default_z(),
            Variant::M => CscvParams::default_m(),
        };
        ExecConfig {
            variant,
            params,
            strategy: ParallelStrategy::default(),
        }
    }
}

/// Prepared CSCV SpMV executor (Z or M per the matrix's variant).
pub struct CscvExec<T: Scalar> {
    m: CscvMatrix<T>,
    strategy: ParallelStrategy,
    path: ExpandPath,
    /// Per-block nnz prefix (LocalCopies balancing).
    block_prefix: Vec<usize>,
    /// Blocks grouped by image tile (transpose partitioning: one tile's
    /// blocks touch a fixed column set, so tiles are the row-disjoint
    /// axis of `x = Aᵀy`). Parallel order: tiles sorted by nnz prefix.
    tile_blocks: Vec<Vec<u32>>,
    tile_prefix: Vec<usize>,
    ytil_scratch: Scratch<T>,
    y_scratch: Scratch<T>,
}

impl<T: Scalar + MaskExpand> CscvExec<T> {
    pub fn new(m: CscvMatrix<T>) -> Self {
        Self::with_strategy(m, ParallelStrategy::default())
    }

    pub fn with_strategy(m: CscvMatrix<T>, strategy: ParallelStrategy) -> Self {
        // The unsafe kernels below assume the full invariant catalog
        // (CSCV-PERM, CSCV-VXG-BOUNDS, …); re-check at executor
        // construction when `check-invariants` is on, since matrices may
        // arrive hand-assembled rather than from the builder.
        crate::invariants::assert_valid(&m, "CscvExec::with_strategy");
        let path = match m.params.s_vvec {
            4 => select_path::<T, 4>(),
            8 => select_path::<T, 8>(),
            16 => select_path::<T, 16>(),
            _ => unreachable!("validated by CscvParams"),
        };
        let mut block_prefix = Vec::with_capacity(m.blocks.len() + 1);
        block_prefix.push(0usize);
        let mut acc = 0;
        for b in &m.blocks {
            acc += b.nnz.max(1);
            block_prefix.push(acc);
        }
        // Group blocks by tile for the transpose kernels.
        let n_tiles = m
            .blocks
            .iter()
            .map(|b| b.tile as usize + 1)
            .max()
            .unwrap_or(0);
        let mut tile_blocks: Vec<Vec<u32>> = vec![Vec::new(); n_tiles];
        for (bi, b) in m.blocks.iter().enumerate() {
            // AUDIT(panic-ok): CSCV-U32-FIT — the builder caps the block count below u32::MAX; the expect documents that invariant at the narrowing site.
            let bi = u32::try_from(bi).expect("block index fits u32 (CSCV-U32-FIT)");
            tile_blocks[b.tile as usize].push(bi);
        }
        let mut tile_prefix = Vec::with_capacity(n_tiles + 1);
        tile_prefix.push(0usize);
        let mut acc = 0usize;
        for blocks in &tile_blocks {
            acc += blocks
                .iter()
                .map(|&bi| m.blocks[bi as usize].nnz)
                .sum::<usize>()
                .max(1);
            tile_prefix.push(acc);
        }
        CscvExec {
            m,
            strategy,
            path,
            block_prefix,
            tile_blocks,
            tile_prefix,
            ytil_scratch: Scratch::new(),
            y_scratch: Scratch::new(),
        }
    }

    /// Build the CSCV matrix described by `cfg` and wrap it in an
    /// executor — the one-call construction path used by the autotuner
    /// and the `auto` entry points in `cscv-tune`.
    pub fn from_csc(
        csc: &Csc<T>,
        layout: SinoLayout,
        img: ImageShape,
        cfg: ExecConfig,
    ) -> Result<Self, BuildError> {
        let m = try_build(csc, layout, img, cfg.params, cfg.variant)?;
        Ok(Self::with_strategy(m, cfg.strategy))
    }

    /// The configuration this executor was built with.
    pub fn config(&self) -> ExecConfig {
        ExecConfig {
            variant: self.m.variant,
            params: self.m.params,
            strategy: self.strategy,
        }
    }

    /// The underlying format object (stats, params).
    pub fn matrix(&self) -> &CscvMatrix<T> {
        &self.m
    }

    /// NUMA-aware placement with auto-detected topology: re-place the
    /// matrix's value/index buffers partition-aligned with `pool` (first
    /// touch by the owning thread) and pre-place the per-slot `ỹ` / `y`
    /// scratch buffers on their threads' nodes. Returns whether any
    /// placement ran — `false` (and zero work) on uniform topologies or
    /// 1-slot pools. Results are byte-identical either way; only page
    /// locality changes.
    pub fn numa_place(&mut self, pool: &ThreadPool) -> bool {
        self.numa_place_with(pool, &NumaTopology::detect())
    }

    /// NUMA-aware placement against an explicit topology (tests inject
    /// synthetic multi-node layouts here).
    pub fn numa_place_with(&mut self, pool: &ThreadPool, topo: &NumaTopology) -> bool {
        if topo.is_uniform() || pool.n_threads() <= 1 {
            return false;
        }
        let _span = cscv_trace::span::enter("numa.place");
        crate::placement::localize_matrix(&mut self.m, pool, topo);
        self.ytil_scratch.warm(pool, topo, self.m.max_ytil);
        self.y_scratch.warm(pool, topo, self.m.n_rows);
        true
    }

    /// Which mask-expansion path CSCV-M kernels use on this machine
    /// (always reported; meaningless for Z).
    pub fn expand_path(&self) -> ExpandPath {
        self.path
    }

    /// Force the expansion path (ablation studies: measure the
    /// `soft-vexpand` cost on hardware that has `vexpand`).
    ///
    /// # Panics
    /// If `Hardware` is requested but unavailable for this lane width.
    pub fn force_expand_path(&mut self, path: ExpandPath) {
        if path == ExpandPath::Hardware {
            let available = match self.m.params.s_vvec {
                4 => select_path::<T, 4>(),
                8 => select_path::<T, 8>(),
                16 => select_path::<T, 16>(),
                _ => unreachable!(),
            };
            assert_eq!(
                available,
                ExpandPath::Hardware,
                "hardware expand unavailable for W={}",
                self.m.params.s_vvec
            );
        }
        self.path = path;
    }

    pub fn strategy(&self) -> ParallelStrategy {
        self.strategy
    }

    #[inline(always)]
    fn run_one_block<const W: usize, const HW: bool>(&self, bi: usize, x: &[T], ytil: &mut [T]) {
        let blk = &self.m.blocks[bi];
        trace_block_pass(&self.m, blk, 1);
        match self.m.variant {
            Variant::Z => run_block_z::<T, W>(blk, self.m.params.s_vxg, x, ytil),
            Variant::M => run_block_m::<T, W, HW>(blk, self.m.params.s_vxg, x, ytil),
        }
    }

    /// Record one top-level kernel dispatch plus the call's vector
    /// traffic (`M(x)`/`M(y)` terms of the paper's `M_Rit` model; the
    /// `M(A)` term is tallied per executed block by
    /// [`trace_block_pass`]). No-op in untraced builds.
    #[inline(always)]
    fn trace_dispatch(&self, loaded_elems: usize, stored_elems: usize) {
        if cscv_trace::ENABLED {
            use cscv_trace::counters::{add, Counter};
            add(
                match self.m.variant {
                    Variant::Z => Counter::DispatchZ,
                    Variant::M => Counter::DispatchM,
                },
                1,
            );
            add(Counter::BytesLoaded, (loaded_elems * T::BYTES) as u64);
            add(Counter::BytesStored, (stored_elems * T::BYTES) as u64);
        }
    }

    /// Transpose product `x = Aᵀ y` — the paper's stated future work
    /// ("we will implement CSCV on x = Aᵀy in CT backward projection"),
    /// here realized on the same block structure: gather `ỹ` through the
    /// block map, run the transposed VxG kernels, and accumulate per
    /// column. Threads own whole image *tiles* (the column-disjoint
    /// axis), so no reduction is needed.
    pub fn spmv_transpose(&self, y: &[T], x: &mut [T], pool: &ThreadPool) {
        assert_eq!(y.len(), self.m.n_rows);
        assert_eq!(x.len(), self.m.n_cols);
        self.trace_dispatch(self.m.n_rows, self.m.n_cols);
        let hw = self.path == ExpandPath::Hardware;
        match (self.m.params.s_vvec, hw) {
            (4, false) => self.spmv_transpose_impl::<4, false>(y, x, pool),
            (4, true) => self.spmv_transpose_impl::<4, true>(y, x, pool),
            (8, false) => self.spmv_transpose_impl::<8, false>(y, x, pool),
            (8, true) => self.spmv_transpose_impl::<8, true>(y, x, pool),
            (16, false) => self.spmv_transpose_impl::<16, false>(y, x, pool),
            (16, true) => self.spmv_transpose_impl::<16, true>(y, x, pool),
            _ => unreachable!("validated by CscvParams"),
        }
    }

    fn spmv_transpose_impl<const W: usize, const HW: bool>(
        &self,
        y: &[T],
        x: &mut [T],
        pool: &ThreadPool,
    ) {
        let n = pool.n_threads();
        let tile_ranges = partition::split_by_prefix(&self.tile_prefix, n);
        let mut ytil_bufs = self.ytil_scratch.take(n, self.m.max_ytil);
        let out = SharedSliceMut::new(x);
        let bufs = SharedSliceMut::new(&mut ytil_bufs[..]);
        let zero_ranges = partition::even_chunks(out.len(), n);
        pool.run(|tid| {
            // SAFETY: disjoint zero ranges (separate dispatch = barrier).
            // AUDIT(index-ok): zero_ranges has one entry per pool thread
            // and tid < n_threads by the dispatch contract.
            unsafe { out.slice_mut(zero_ranges[tid].clone()) }.fill(T::ZERO);
        });
        // The dispatch above fully completed (ack barrier), so the write
        // dispatch below may repartition `out` by tile instead of chunk.
        out.claims_barrier();
        pool.run(|tid| {
            // SAFETY: slot `tid` only.
            let ytil = &mut unsafe { bufs.slice_mut(tid..tid + 1) }[0];
            // SAFETY: threads own whole tiles, and tiles have pairwise
            // disjoint column sets, so sink targets never overlap.
            let mut sink = |c: usize, v: T| unsafe { *out.get_raw(c) += v };
            for ti in tile_ranges[tid].clone() {
                for &bi in &self.tile_blocks[ti] {
                    let blk = &self.m.blocks[bi as usize];
                    trace_block_pass(&self.m, blk, 1);
                    gather(blk, y, ytil);
                    match self.m.variant {
                        Variant::Z => {
                            run_block_z_t::<T, W>(blk, self.m.params.s_vxg, ytil, &mut sink)
                        }
                        Variant::M => {
                            run_block_m_t::<T, W, HW>(blk, self.m.params.s_vxg, ytil, &mut sink)
                        }
                    }
                }
            }
        });
    }

    /// Batched transpose product `X = Aᵀ Y` over `k` column-major
    /// right-hand sides (`y[i·n_rows..]` → `x[i·n_cols..]`): the matrix
    /// stream — and for CSCV-M every mask expansion — is traversed once
    /// per register-tile chunk instead of once per RHS.
    pub fn spmv_transpose_multi(&self, y: &[T], k: usize, x: &mut [T], pool: &ThreadPool) {
        assert!(k > 0, "batch width must be positive");
        assert_eq!(y.len(), k * self.m.n_rows);
        assert_eq!(x.len(), k * self.m.n_cols);
        self.trace_dispatch(k * self.m.n_rows, k * self.m.n_cols);
        let hw = self.path == ExpandPath::Hardware;
        match (self.m.params.s_vvec, hw) {
            (4, false) => self.spmv_transpose_multi_impl::<4, false>(y, k, x, pool),
            (4, true) => self.spmv_transpose_multi_impl::<4, true>(y, k, x, pool),
            (8, false) => self.spmv_transpose_multi_impl::<8, false>(y, k, x, pool),
            (8, true) => self.spmv_transpose_multi_impl::<8, true>(y, k, x, pool),
            (16, false) => self.spmv_transpose_multi_impl::<16, false>(y, k, x, pool),
            (16, true) => self.spmv_transpose_multi_impl::<16, true>(y, k, x, pool),
            _ => unreachable!("validated by CscvParams"),
        }
    }

    fn spmv_multi_impl<const W: usize, const HW: bool>(
        &self,
        x: &[T],
        k: usize,
        y: &mut [T],
        pool: &ThreadPool,
    ) {
        let (n_cols, n_rows) = (self.m.n_cols, self.m.n_rows);
        let mut done = 0usize;
        for chunk in partition::batch_chunks(k, &[8, 4, 2, 1]) {
            let xs = &x[done * n_cols..(done + chunk) * n_cols];
            let ys = &mut y[done * n_rows..(done + chunk) * n_rows];
            match chunk {
                8 => self.spmm_chunk::<W, HW, 8>(xs, ys, pool),
                4 => self.spmm_chunk::<W, HW, 4>(xs, ys, pool),
                2 => self.spmm_chunk::<W, HW, 2>(xs, ys, pool),
                _ => self.spmv_impl::<W, HW>(xs, ys, pool),
            }
            done += chunk;
        }
    }

    /// One compiled-width chunk of the batched forward product. Threads
    /// own whole view groups (row-disjoint, as in the single-RHS
    /// ViewGroups strategy); each thread's ỹ scratch holds the `K`
    /// interleaved segments.
    fn spmm_chunk<const W: usize, const HW: bool, const K: usize>(
        &self,
        x: &[T],
        y: &mut [T],
        pool: &ThreadPool,
    ) {
        let n = pool.n_threads();
        let (n_cols, n_rows) = (self.m.n_cols, self.m.n_rows);
        let weights: Vec<usize> = self.m.groups.iter().map(|g| g.nnz.max(1)).collect();
        let ranges = partition::split_by_weights(&weights, n);
        let mut ytil_bufs = self.ytil_scratch.take(n, self.m.max_ytil * K);
        let out = SharedSliceMut::new(y);
        let bufs = SharedSliceMut::new(&mut ytil_bufs[..]);
        pool.run(|tid| {
            // SAFETY: slot `tid` only.
            let ytil = &mut unsafe { bufs.slice_mut(tid..tid + 1) }[0];
            for gi in ranges[tid].clone() {
                let info = &self.m.groups[gi];
                let rr = info.row_range.clone();
                for kk in 0..K {
                    // SAFETY: group row ranges are pairwise disjoint, so
                    // each per-RHS copy of them is too.
                    unsafe { out.slice_mut(kk * n_rows + rr.start..kk * n_rows + rr.end) }
                        .fill(T::ZERO);
                }
                for bi in info.block_range.clone() {
                    let blk = &self.m.blocks[bi];
                    trace_block_pass(&self.m, blk, K as u64);
                    match self.m.variant {
                        Variant::Z => {
                            run_block_z_multi::<T, W, K>(blk, self.m.params.s_vxg, x, n_cols, ytil)
                        }
                        Variant::M => run_block_m_multi::<T, W, HW, K>(
                            blk,
                            self.m.params.s_vxg,
                            x,
                            n_cols,
                            ytil,
                        ),
                    }
                    // Scatter the K interleaved segments straight into
                    // the K column-major copies of this group's rows.
                    for (slot, &row) in blk.map.iter().enumerate() {
                        if row >= 0 {
                            let base = (slot / W) * W * K + slot % W;
                            for kk in 0..K {
                                // SAFETY: rows of this group belong to
                                // this thread alone (see fill above).
                                unsafe {
                                    // AUDIT(index-ok): ytil holds max_ytil·K slots (CSCV-STATS) and slot < map.len() (CSCV-VXG-BOUNDS).
                                    *out.get_raw(kk * n_rows + row as usize) += ytil[base + kk * W];
                                }
                            }
                        }
                    }
                }
            }
        });
    }

    fn spmv_transpose_multi_impl<const W: usize, const HW: bool>(
        &self,
        y: &[T],
        k: usize,
        x: &mut [T],
        pool: &ThreadPool,
    ) {
        let (n_cols, n_rows) = (self.m.n_cols, self.m.n_rows);
        let mut done = 0usize;
        // The transpose caps its tile at 4: the per-VxG accumulator is
        // `S_VxG·K·W` lanes wide, and at K = 8 the register spill traffic
        // would undo the amortization being bought.
        for chunk in partition::batch_chunks(k, &[4, 2, 1]) {
            let ys = &y[done * n_rows..(done + chunk) * n_rows];
            let xs = &mut x[done * n_cols..(done + chunk) * n_cols];
            match chunk {
                4 => self.spmm_t_chunk::<W, HW, 4>(ys, xs, pool),
                2 => self.spmm_t_chunk::<W, HW, 2>(ys, xs, pool),
                _ => self.spmv_transpose_impl::<W, HW>(ys, xs, pool),
            }
            done += chunk;
        }
    }

    /// One compiled-width chunk of the batched transpose. Threads own
    /// whole image tiles (column-disjoint); the sink lands each member
    /// column's `K` partial sums in the `K` column-major `x` copies.
    fn spmm_t_chunk<const W: usize, const HW: bool, const K: usize>(
        &self,
        y: &[T],
        x: &mut [T],
        pool: &ThreadPool,
    ) {
        let n = pool.n_threads();
        let (n_cols, n_rows) = (self.m.n_cols, self.m.n_rows);
        let tile_ranges = partition::split_by_prefix(&self.tile_prefix, n);
        let mut ytil_bufs = self.ytil_scratch.take(n, self.m.max_ytil * K);
        let out = SharedSliceMut::new(x);
        let bufs = SharedSliceMut::new(&mut ytil_bufs[..]);
        let zero_ranges = partition::even_chunks(out.len(), n);
        pool.run(|tid| {
            // SAFETY: disjoint zero ranges (separate dispatch = barrier).
            // AUDIT(index-ok): zero_ranges has one entry per pool thread
            // and tid < n_threads by the dispatch contract.
            unsafe { out.slice_mut(zero_ranges[tid].clone()) }.fill(T::ZERO);
        });
        // The dispatch above fully completed (ack barrier), so the write
        // dispatch below may repartition `out` by tile instead of chunk.
        out.claims_barrier();
        pool.run(|tid| {
            // SAFETY: slot `tid` only.
            let ytil = &mut unsafe { bufs.slice_mut(tid..tid + 1) }[0];
            let mut sink = |c: usize, sums: &[T; K]| {
                for (kk, &v) in sums.iter().enumerate() {
                    // SAFETY: threads own whole tiles with pairwise
                    // disjoint column sets — per RHS copy too.
                    unsafe { *out.get_raw(kk * n_cols + c) += v };
                }
            };
            for ti in tile_ranges[tid].clone() {
                for &bi in &self.tile_blocks[ti] {
                    let blk = &self.m.blocks[bi as usize];
                    trace_block_pass(&self.m, blk, K as u64);
                    gather_multi::<T, W, K>(blk, y, n_rows, ytil);
                    match self.m.variant {
                        Variant::Z => run_block_z_t_multi::<T, W, K>(
                            blk,
                            self.m.params.s_vxg,
                            ytil,
                            &mut sink,
                        ),
                        Variant::M => run_block_m_t_multi::<T, W, HW, K>(
                            blk,
                            self.m.params.s_vxg,
                            ytil,
                            &mut sink,
                        ),
                    }
                }
            }
        });
    }

    fn spmv_impl<const W: usize, const HW: bool>(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        let n = pool.n_threads();
        match self.strategy {
            ParallelStrategy::ViewGroups => {
                let weights: Vec<usize> = self.m.groups.iter().map(|g| g.nnz.max(1)).collect();
                let ranges = partition::split_by_weights(&weights, n);
                let mut ytil_bufs = self.ytil_scratch.take(n, self.m.max_ytil);
                let out = SharedSliceMut::new(y);
                let bufs = SharedSliceMut::new(&mut ytil_bufs[..]);
                pool.run(|tid| {
                    // SAFETY: slot `tid` only.
                    let ytil = &mut unsafe { bufs.slice_mut(tid..tid + 1) }[0];
                    for gi in ranges[tid].clone() {
                        // AUDIT(index-ok): gi ranges over 0..groups.len()
                        // (split_by_prefix partitions the group prefix).
                        let info = &self.m.groups[gi];
                        // SAFETY: group row ranges are pairwise disjoint.
                        let dst = unsafe { out.slice_mut(info.row_range.clone()) };
                        dst.fill(T::ZERO);
                        for bi in info.block_range.clone() {
                            self.run_one_block::<W, HW>(bi, x, ytil);
                            scatter_add(&self.m.blocks[bi], ytil, dst, info.row_range.start);
                        }
                    }
                });
            }
            ParallelStrategy::LocalCopies => {
                if n == 1 {
                    let mut ytil_bufs = self.ytil_scratch.take(1, self.m.max_ytil);
                    y.fill(T::ZERO);
                    for bi in 0..self.m.blocks.len() {
                        self.run_one_block::<W, HW>(bi, x, &mut ytil_bufs[0]);
                        scatter_add(&self.m.blocks[bi], &ytil_bufs[0], y, 0);
                    }
                    return;
                }
                let ranges = partition::split_by_prefix(&self.block_prefix, n);
                let mut ytil_bufs = self.ytil_scratch.take(n, self.m.max_ytil);
                let mut y_bufs = self.y_scratch.take(n, y.len());
                {
                    let ytils = SharedSliceMut::new(&mut ytil_bufs[..]);
                    let ys = SharedSliceMut::new(&mut y_bufs[..]);
                    pool.run(|tid| {
                        // SAFETY: slot `tid` only.
                        let ytil = &mut unsafe { ytils.slice_mut(tid..tid + 1) }[0];
                        // SAFETY: slot `tid` only.
                        let y_local = &mut unsafe { ys.slice_mut(tid..tid + 1) }[0];
                        for bi in ranges[tid].clone() {
                            self.run_one_block::<W, HW>(bi, x, ytil);
                            scatter_add(&self.m.blocks[bi], ytil, y_local, 0);
                        }
                    });
                }
                reduce_buffers_into(pool, &y_bufs[..n], y);
            }
        }
    }
}

impl<T: Scalar + MaskExpand> SpmvExecutor<T> for CscvExec<T> {
    fn name(&self) -> String {
        self.m.variant.to_string()
    }
    fn n_rows(&self) -> usize {
        self.m.n_rows
    }
    fn n_cols(&self) -> usize {
        self.m.n_cols
    }
    fn nnz_orig(&self) -> usize {
        self.m.stats.nnz_orig
    }
    fn nnz_stored(&self) -> usize {
        // Format-level padding rate: lane slots (identical for Z and M —
        // the paper's R_nnzE is a property of the layout, not storage).
        self.m.stats.lane_slots
    }
    fn matrix_bytes(&self) -> usize {
        self.m.matrix_bytes()
    }

    fn spmv(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        assert_eq!(x.len(), self.m.n_cols);
        assert_eq!(y.len(), self.m.n_rows);
        self.trace_dispatch(self.m.n_cols, self.m.n_rows);
        let hw = self.path == ExpandPath::Hardware;
        match (self.m.params.s_vvec, hw) {
            (4, false) => self.spmv_impl::<4, false>(x, y, pool),
            (4, true) => self.spmv_impl::<4, true>(x, y, pool),
            (8, false) => self.spmv_impl::<8, false>(x, y, pool),
            (8, true) => self.spmv_impl::<8, true>(x, y, pool),
            (16, false) => self.spmv_impl::<16, false>(x, y, pool),
            (16, true) => self.spmv_impl::<16, true>(x, y, pool),
            _ => unreachable!("validated by CscvParams"),
        }
    }

    /// True batched SpMM: one matrix-stream pass per register-tile chunk
    /// (k split into {8, 4, 2, 1}), view-group partitioned. See the
    /// module docs — the batch dimension rides in the accumulator tile,
    /// so matrix (and CSCV-M mask-expansion) traffic is paid once per
    /// chunk rather than once per RHS.
    fn spmv_multi(&self, x: &[T], k: usize, y: &mut [T], pool: &ThreadPool) {
        assert!(k > 0, "batch width must be positive");
        assert_eq!(x.len(), k * self.m.n_cols);
        assert_eq!(y.len(), k * self.m.n_rows);
        self.trace_dispatch(k * self.m.n_cols, k * self.m.n_rows);
        let hw = self.path == ExpandPath::Hardware;
        match (self.m.params.s_vvec, hw) {
            (4, false) => self.spmv_multi_impl::<4, false>(x, k, y, pool),
            (4, true) => self.spmv_multi_impl::<4, true>(x, k, y, pool),
            (8, false) => self.spmv_multi_impl::<8, false>(x, k, y, pool),
            (8, true) => self.spmv_multi_impl::<8, true>(x, k, y, pool),
            (16, false) => self.spmv_multi_impl::<16, false>(x, k, y, pool),
            (16, true) => self.spmv_multi_impl::<16, true>(x, k, y, pool),
            _ => unreachable!("validated by CscvParams"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use crate::layout::{ImageShape, SinoLayout};
    use crate::params::CscvParams;
    use cscv_sparse::dense::assert_vec_close;
    use cscv_sparse::{Coo, Csc};

    fn ct_like(
        n_views: usize,
        n_bins: usize,
        nx: usize,
        ny: usize,
    ) -> (Csc<f64>, SinoLayout, ImageShape) {
        let layout = SinoLayout { n_views, n_bins };
        let img = ImageShape { nx, ny };
        let mut coo = Coo::new(layout.n_rows(), img.n_pixels());
        for col in 0..img.n_pixels() {
            let (ix, iy) = img.pixel_of_col(col);
            for v in 0..n_views {
                // Sinusoid-ish trajectory.
                let phase = (v as f64 * 0.4 + ix as f64 * 0.3 - iy as f64 * 0.2).sin();
                let base = ((phase + 1.2) * (n_bins as f64 - 4.0) / 2.4) as usize;
                coo.push(layout.row_index(v, base), col, 1.0 + (col % 7) as f64 * 0.1);
                coo.push(layout.row_index(v, base + 1), col, 0.7);
                if (v + col) % 3 == 0 {
                    coo.push(layout.row_index(v, base + 2), col, 0.2);
                }
            }
        }
        (coo.to_csc(), layout, img)
    }

    fn check_all(variant: Variant, strategy: ParallelStrategy) {
        let (csc, layout, img) = ct_like(13, 24, 8, 6);
        let x: Vec<f64> = (0..csc.n_cols()).map(|i| (i as f64 * 0.21).cos()).collect();
        let mut y_ref = vec![0.0; csc.n_rows()];
        csc.spmv_serial(&x, &mut y_ref);
        for params in [
            CscvParams::new(4, 4, 2),
            CscvParams::new(8, 8, 3),
            CscvParams::new(3, 16, 1),
        ] {
            let m = build(&csc, layout, img, params, variant);
            m.validate();
            let exec = CscvExec::with_strategy(m, strategy);
            for threads in [1, 2, 4, 7] {
                let pool = ThreadPool::new(threads);
                let mut y = vec![f64::NAN; csc.n_rows()];
                exec.spmv(&x, &mut y, &pool);
                assert_vec_close(&y, &y_ref, 1e-11);
            }
        }
    }

    #[test]
    fn z_view_groups_matches_reference() {
        check_all(Variant::Z, ParallelStrategy::ViewGroups);
    }

    #[test]
    fn z_local_copies_matches_reference() {
        check_all(Variant::Z, ParallelStrategy::LocalCopies);
    }

    #[test]
    fn m_view_groups_matches_reference() {
        check_all(Variant::M, ParallelStrategy::ViewGroups);
    }

    #[test]
    fn m_local_copies_matches_reference() {
        check_all(Variant::M, ParallelStrategy::LocalCopies);
    }

    #[test]
    fn strategies_agree_exactly() {
        let (csc, layout, img) = ct_like(8, 20, 6, 6);
        let params = CscvParams::new(4, 8, 2);
        let m = build(&csc, layout, img, params, Variant::Z);
        let e1 = CscvExec::with_strategy(m.clone(), ParallelStrategy::ViewGroups);
        let e2 = CscvExec::with_strategy(m, ParallelStrategy::LocalCopies);
        let x: Vec<f64> = (0..csc.n_cols()).map(|i| i as f64).collect();
        let pool = ThreadPool::new(3);
        let mut y1 = vec![0.0; csc.n_rows()];
        let mut y2 = vec![0.0; csc.n_rows()];
        e1.spmv(&x, &mut y1, &pool);
        e2.spmv(&x, &mut y2, &pool);
        assert_vec_close(&y1, &y2, 1e-12);
    }

    #[test]
    fn transpose_matches_csc_transpose_reference() {
        let (csc, layout, img) = ct_like(13, 24, 8, 6);
        let y: Vec<f64> = (0..csc.n_rows()).map(|i| (i as f64 * 0.11).sin()).collect();
        let mut x_ref = vec![0.0; csc.n_cols()];
        csc.spmv_transpose_serial(&y, &mut x_ref);
        for variant in [Variant::Z, Variant::M] {
            for params in [
                CscvParams::new(4, 4, 2),
                CscvParams::new(8, 8, 3),
                CscvParams::new(3, 16, 1),
            ] {
                let exec = CscvExec::new(build(&csc, layout, img, params, variant));
                for threads in [1, 2, 5] {
                    let pool = ThreadPool::new(threads);
                    let mut x = vec![f64::NAN; csc.n_cols()];
                    exec.spmv_transpose(&y, &mut x, &pool);
                    assert_vec_close(&x, &x_ref, 1e-11);
                }
            }
        }
    }

    #[test]
    fn forward_transpose_adjoint_identity() {
        let (csc, layout, img) = ct_like(10, 20, 5, 5);
        let exec = CscvExec::new(build(
            &csc,
            layout,
            img,
            CscvParams::new(4, 8, 2),
            Variant::M,
        ));
        let pool = ThreadPool::new(2);
        let x: Vec<f64> = (0..csc.n_cols()).map(|i| (i % 9) as f64 - 4.0).collect();
        let y: Vec<f64> = (0..csc.n_rows()).map(|i| (i % 5) as f64 * 0.3).collect();
        let mut ax = vec![0.0; csc.n_rows()];
        exec.spmv(&x, &mut ax, &pool);
        let mut aty = vec![0.0; csc.n_cols()];
        exec.spmv_transpose(&y, &mut aty, &pool);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() / lhs.abs().max(1.0) < 1e-12);
    }

    #[test]
    fn spmv_multi_matches_k_independent_spmvs() {
        let (csc, layout, img) = ct_like(13, 24, 8, 6);
        let (nc, nr) = (csc.n_cols(), csc.n_rows());
        for variant in [Variant::Z, Variant::M] {
            for params in [CscvParams::new(4, 4, 2), CscvParams::new(8, 8, 3)] {
                let exec = CscvExec::new(build(&csc, layout, img, params, variant));
                // Odd k exercises the {8,4,2,1} chunk decomposition.
                for k in [1usize, 3, 5, 8, 11] {
                    let x: Vec<f64> = (0..k * nc).map(|i| (i as f64 * 0.13).sin()).collect();
                    for threads in [1, 3] {
                        let pool = ThreadPool::new(threads);
                        let mut y_multi = vec![f64::NAN; k * nr];
                        exec.spmv_multi(&x, k, &mut y_multi, &pool);
                        for kk in 0..k {
                            let mut y_one = vec![f64::NAN; nr];
                            exec.spmv(&x[kk * nc..(kk + 1) * nc], &mut y_one, &pool);
                            assert_vec_close(&y_multi[kk * nr..(kk + 1) * nr], &y_one, 1e-12);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn spmv_transpose_multi_matches_k_independent_transposes() {
        let (csc, layout, img) = ct_like(13, 24, 8, 6);
        let (nc, nr) = (csc.n_cols(), csc.n_rows());
        for variant in [Variant::Z, Variant::M] {
            let exec = CscvExec::new(build(&csc, layout, img, CscvParams::new(4, 8, 2), variant));
            for k in [1usize, 3, 4, 7] {
                let y: Vec<f64> = (0..k * nr).map(|i| (i as f64 * 0.07).cos()).collect();
                for threads in [1, 4] {
                    let pool = ThreadPool::new(threads);
                    let mut x_multi = vec![f64::NAN; k * nc];
                    exec.spmv_transpose_multi(&y, k, &mut x_multi, &pool);
                    for kk in 0..k {
                        let mut x_one = vec![f64::NAN; nc];
                        exec.spmv_transpose(&y[kk * nr..(kk + 1) * nr], &mut x_one, &pool);
                        assert_vec_close(&x_multi[kk * nc..(kk + 1) * nc], &x_one, 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn batched_adjoint_identity_per_column() {
        // ⟨A·X, Y⟩ = ⟨X, Aᵀ·Y⟩ must hold column by column of the batch.
        let (csc, layout, img) = ct_like(10, 20, 5, 5);
        let (nc, nr) = (csc.n_cols(), csc.n_rows());
        let exec = CscvExec::new(build(
            &csc,
            layout,
            img,
            CscvParams::new(4, 8, 2),
            Variant::M,
        ));
        let pool = ThreadPool::new(2);
        let k = 5;
        let x: Vec<f64> = (0..k * nc).map(|i| (i % 9) as f64 - 4.0).collect();
        let y: Vec<f64> = (0..k * nr).map(|i| (i % 5) as f64 * 0.3).collect();
        let mut ax = vec![0.0; k * nr];
        exec.spmv_multi(&x, k, &mut ax, &pool);
        let mut aty = vec![0.0; k * nc];
        exec.spmv_transpose_multi(&y, k, &mut aty, &pool);
        for kk in 0..k {
            let lhs: f64 = ax[kk * nr..(kk + 1) * nr]
                .iter()
                .zip(&y[kk * nr..(kk + 1) * nr])
                .map(|(a, b)| a * b)
                .sum();
            let rhs: f64 = x[kk * nc..(kk + 1) * nc]
                .iter()
                .zip(&aty[kk * nc..(kk + 1) * nc])
                .map(|(a, b)| a * b)
                .sum();
            assert!(
                (lhs - rhs).abs() / lhs.abs().max(1.0) < 1e-12,
                "batch column {kk}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn metadata_and_names() {
        let (csc, layout, img) = ct_like(8, 20, 4, 4);
        let nnz = csc.nnz();
        let z = CscvExec::new(build(
            &csc,
            layout,
            img,
            CscvParams::new(4, 8, 2),
            Variant::Z,
        ));
        let m = CscvExec::new(build(
            &csc,
            layout,
            img,
            CscvParams::new(4, 8, 2),
            Variant::M,
        ));
        assert_eq!(z.name(), "CSCV-Z");
        assert_eq!(m.name(), "CSCV-M");
        assert_eq!(z.nnz_orig(), nnz);
        assert_eq!(z.nnz_stored(), m.nnz_stored(), "R_nnzE is format-level");
        assert!(z.r_nnze() > 0.0);
        // M stores fewer value bytes than Z (padding removed).
        assert!(m.matrix_bytes() < z.matrix_bytes());
    }

    #[test]
    fn f32_also_exact_within_tolerance() {
        let layout = SinoLayout {
            n_views: 8,
            n_bins: 16,
        };
        let img = ImageShape { nx: 4, ny: 4 };
        let mut coo: Coo<f32> = Coo::new(layout.n_rows(), 16);
        for col in 0..16 {
            for v in 0..8 {
                coo.push(
                    layout.row_index(v, (v + col) % 15),
                    col,
                    0.25 + col as f32 * 0.01,
                );
            }
        }
        let csc = coo.to_csc();
        let x: Vec<f32> = (0..16).map(|i| i as f32 * 0.5).collect();
        let mut y_ref = vec![0.0f32; csc.n_rows()];
        csc.spmv_serial(&x, &mut y_ref);
        for variant in [Variant::Z, Variant::M] {
            let exec = CscvExec::new(build(&csc, layout, img, CscvParams::new(2, 8, 2), variant));
            let pool = ThreadPool::new(2);
            let mut y = vec![f32::NAN; csc.n_rows()];
            exec.spmv(&x, &mut y, &pool);
            assert_vec_close(&y, &y_ref, 1e-5);
        }
    }
}
