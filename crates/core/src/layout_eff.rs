//! SIMD-efficiency analysis of `y` layouts (paper Fig. 4).
//!
//! For one pixel's nonzeros inside a block, a `W`-lane SIMD vector reads
//! `W` consecutive `y` elements under some layout; its *efficiency* is
//! how many of the pixel's nonzeros that vector covers:
//!
//! * **bin-major** (the raw sinogram order, bin fastest): a vector spans
//!   consecutive bins of one view — it covers only the footprint width
//!   (~3 of 8 lanes in the paper's example);
//! * **view-major** (BTB's transposed order, view fastest): a vector
//!   spans consecutive views of one bin — covers the (variable) run of
//!   views where the trajectory stays in that bin (2–6 of 8);
//! * **IOBLR-major**: a vector spans all views of one parallel-curve
//!   offset — covers nearly every lane (7–8 of 8).
//!
//! [`column_efficiency`] computes the per-vector nonzero counts for a
//! column; the Fig. 4 driver aggregates them over the Table I sample
//! block.

use crate::ioblr::RefCurve;

/// The three `y` orderings compared by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YLayout {
    /// Raw sinogram order (bin varies fastest inside a view).
    BinMajor,
    /// Transposed order used by the Block Transpose Buffer (view varies
    /// fastest inside a bin).
    ViewMajor,
    /// CSCV's parallel-curve order (view varies fastest inside an
    /// offset).
    IoblrMajor,
}

impl std::fmt::Display for YLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            YLayout::BinMajor => write!(f, "bin-major"),
            YLayout::ViewMajor => write!(f, "view-major"),
            YLayout::IoblrMajor => write!(f, "IOBLR-major"),
        }
    }
}

/// Per-SIMD-vector nonzero coverage of one column's block entries
/// (`(local view, bin)` pairs). Each returned number is the nonzero
/// count one `W`-lane vector would service; `W` bounds but does not
/// appear here because groups never exceed the block's view count.
///
/// `curve` is required for [`YLayout::IoblrMajor`].
pub fn column_efficiency(
    entries: &[(u32, u32)],
    curve: Option<&RefCurve>,
    layout: YLayout,
) -> Vec<usize> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<i64, usize> = BTreeMap::new();
    for &(v, b) in entries {
        let key = match layout {
            YLayout::BinMajor => v as i64,
            YLayout::ViewMajor => b as i64,
            YLayout::IoblrMajor => {
                let curve = curve.expect("IOBLR layout needs a reference curve");
                curve.offset(v as usize, b)
            }
        };
        *groups.entry(key).or_insert(0) += 1;
    }
    groups.into_values().collect()
}

/// Summary of an efficiency distribution: `(min, max, mean)`.
pub fn summarize(counts: &[usize]) -> (usize, usize, f64) {
    if counts.is_empty() {
        return (0, 0, 0.0);
    }
    let min = *counts.iter().min().unwrap();
    let max = *counts.iter().max().unwrap();
    let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
    (min, max, mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A CT-like trajectory over 8 views: 3 contiguous bins per view,
    /// drifting one bin upward every two views (like a sinusoid's slope).
    fn trajectory() -> Vec<(u32, u32)> {
        let mut e = Vec::new();
        for v in 0..8u32 {
            let base = 10 + v / 2;
            for k in 0..3 {
                e.push((v, base + k));
            }
        }
        e
    }

    #[test]
    fn bin_major_covers_footprint_width() {
        let counts = column_efficiency(&trajectory(), None, YLayout::BinMajor);
        // One vector per view, each covering the 3-bin footprint.
        assert_eq!(counts, vec![3; 8]);
    }

    #[test]
    fn view_major_has_variable_runs() {
        let counts = column_efficiency(&trajectory(), None, YLayout::ViewMajor);
        // Bins are shared by variable numbers of views: ranges 2..=6.
        let (min, max, _) = summarize(&counts);
        assert!(min >= 2 && max <= 6, "got {counts:?}");
        assert!(max > min);
    }

    #[test]
    fn ioblr_major_is_nearly_full() {
        // Reference curve = the pixel's own min-bin curve.
        let curve = RefCurve::from_bins((0..8).map(|v| 10 + (v as i64) / 2).collect());
        let counts = column_efficiency(&trajectory(), Some(&curve), YLayout::IoblrMajor);
        // Exactly 3 offsets, each fully dense over 8 views.
        assert_eq!(counts, vec![8, 8, 8]);
    }

    #[test]
    fn ioblr_with_imperfect_curve_still_dominates() {
        // Slightly different reference (off by the drift of a neighbor
        // pixel): coverage drops but stays above the alternatives.
        let curve = RefCurve::from_bins((0..8).map(|v| 10 + ((v as i64) + 1) / 2).collect());
        let counts = column_efficiency(&trajectory(), Some(&curve), YLayout::IoblrMajor);
        let (_, max, mean) = summarize(&counts);
        assert!(max == 8 || max == 7);
        let bin = summarize(&column_efficiency(&trajectory(), None, YLayout::BinMajor)).2;
        assert!(mean > bin);
    }

    #[test]
    fn summarize_empty() {
        assert_eq!(summarize(&[]), (0, 0, 0.0));
    }

    #[test]
    fn layout_names() {
        assert_eq!(YLayout::BinMajor.to_string(), "bin-major");
        assert_eq!(YLayout::ViewMajor.to_string(), "view-major");
        assert_eq!(YLayout::IoblrMajor.to_string(), "IOBLR-major");
    }
}
