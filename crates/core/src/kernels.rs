//! The fully vectorized CSCV SpMV block kernels (paper Alg. 3).
//!
//! Per block: zero the reordered accumulator `ỹ`, stream the VxGs — for
//! every curve offset, load `W` accumulator lanes once, apply `S_VxG`
//! FMA lane blocks, store once — then scatter-add `ỹ` into `y` through
//! the block's map. No gathers or scatters appear inside the loops; the
//! lane bodies are plain `[T; W]` arithmetic the compiler vectorizes.
//!
//! CSCV-M differs only in decompressing each lane block first (hardware
//! `vexpand` or `soft-vexpand`, chosen once per matrix).

use crate::format::Block;
use cscv_simd::expand::expand_soft;
use cscv_simd::lanes::{fma_lanes, fma_tile, hsum, load_lanes, load_tile, store_lanes, store_tile};
use cscv_simd::{MaskExpand, Scalar};

/// Upper bound on `S_VxG` (x-value gather buffer size).
pub const MAX_VXG: usize = 32;

/// Borrow a `W`-lane block from the value stream without a bounds check
/// in the hot loop (checked in debug builds).
#[inline(always)]
fn lane_block<T: Scalar, const W: usize>(vals: &[T], p: usize) -> &[T; W] {
    debug_assert!(p + W <= vals.len());
    // SAFETY: builder guarantees the stream is whole lane blocks; the
    // debug assert validates in tests.
    unsafe { &*(vals.as_ptr().add(p) as *const [T; W]) }
}

/// CSCV-Z block kernel: `ỹ += x ⊗ block` with padding zeros kept.
/// `ytil` must hold at least `blk.ytil_len()` elements; it is zeroed here.
// AUDIT(panic-ok): checked indexing is the bounds guard here — block tables are validated at construction (CSCV-BOUNDS), so a panic is a builder bug, never input-dependent.
pub fn run_block_z<T: Scalar, const W: usize>(
    blk: &Block<T>,
    s_vxg: usize,
    x: &[T],
    ytil: &mut [T],
) {
    let ytil = &mut ytil[..blk.ytil_len()];
    ytil.fill(T::ZERO);
    let vals = blk.vals.as_slice();
    let mut xs = [T::ZERO; MAX_VXG];
    for i in 0..blk.n_vxgs() {
        let q = blk.vxg_q[i] as usize;
        let count = blk.vxg_count[i] as usize;
        let cols = &blk.cols[i * s_vxg..(i + 1) * s_vxg];
        for (s, &c) in cols.iter().enumerate() {
            xs[s] = x[c as usize];
        }
        let mut p = blk.val_ptr[i] as usize;
        for ci in 0..count {
            let at = q + ci * W;
            let mut acc: [T; W] = load_lanes(ytil, at);
            for &xv in &xs[..s_vxg] {
                fma_lanes(&mut acc, xv, lane_block::<T, W>(vals, p));
                p += W;
            }
            store_lanes(ytil, at, acc);
        }
    }
}

/// Read one occupancy mask (1 byte for `W ≤ 8`, 2 bytes LE for `W = 16`).
#[inline(always)]
// AUDIT(panic-ok): checked indexing is the bounds guard here — block tables are validated at construction (CSCV-BOUNDS), so a panic is a builder bug, never input-dependent.
fn read_mask<const W: usize>(masks: &[u8], mi: usize) -> u32 {
    if W > 8 {
        // Two-byte masks straddle the stream tail when the last lane
        // block's mask is read: `mi + 1` must still be in bounds. The
        // builder sizes the stream as n_lane_blocks · ceil(W/8) bytes,
        // so this only fires on a corrupted or truncated stream.
        debug_assert!(
            mi + 1 < masks.len(),
            "mask stream truncated: 2-byte mask at byte {mi} needs {} bytes, stream has {}",
            mi + 2,
            masks.len()
        );
        masks[mi] as u32 | ((masks[mi + 1] as u32) << 8)
    } else {
        debug_assert!(
            mi < masks.len(),
            "mask stream truncated: mask at byte {mi}, stream has {}",
            masks.len()
        );
        masks[mi] as u32
    }
}

/// CSCV-M block kernel: padding zeros removed; each lane block is
/// re-inflated by mask expansion before the FMA. `HW` selects the
/// hardware `vexpand` path (caller verified availability).
// AUDIT(panic-ok): checked indexing is the bounds guard here — block tables are validated at construction (CSCV-BOUNDS), so a panic is a builder bug, never input-dependent.
pub fn run_block_m<T: Scalar + MaskExpand, const W: usize, const HW: bool>(
    blk: &Block<T>,
    s_vxg: usize,
    x: &[T],
    ytil: &mut [T],
) {
    let mask_bytes = W.div_ceil(8);
    let ytil = &mut ytil[..blk.ytil_len()];
    ytil.fill(T::ZERO);
    let vals = blk.vals.as_slice();
    let masks = blk.masks.as_slice();
    let mut xs = [T::ZERO; MAX_VXG];
    let mut p = 0usize;
    let mut mi = 0usize;
    for i in 0..blk.n_vxgs() {
        debug_assert_eq!(p, blk.val_ptr[i] as usize);
        let q = blk.vxg_q[i] as usize;
        let count = blk.vxg_count[i] as usize;
        let cols = &blk.cols[i * s_vxg..(i + 1) * s_vxg];
        for (s, &c) in cols.iter().enumerate() {
            xs[s] = x[c as usize];
        }
        for ci in 0..count {
            let at = q + ci * W;
            let mut acc: [T; W] = load_lanes(ytil, at);
            for &xv in &xs[..s_vxg] {
                let mask = read_mask::<W>(masks, mi);
                mi += mask_bytes;
                let lanes: [T; W] = if HW {
                    debug_assert!(vals.len() >= p + mask.count_ones() as usize);
                    // SAFETY: caller verified hardware availability; the
                    // stream holds popcount(mask) values at p by build.
                    unsafe { T::expand_hw::<W>(mask, vals.as_ptr().add(p)) }
                } else {
                    expand_soft::<T, W>(mask, &vals[p..])
                };
                p += mask.count_ones() as usize;
                fma_lanes(&mut acc, xv, &lanes);
            }
            store_lanes(ytil, at, acc);
        }
    }
    debug_assert_eq!(p, vals.len());
}

/// Scatter-add a computed `ỹ` into an output slice whose index 0
/// corresponds to global row `row_offset` (paper Alg. 3 line 11, the
/// inverse mapping `ι_k⁻¹`).
// AUDIT(panic-ok): checked indexing is the bounds guard here — block tables are validated at construction (CSCV-BOUNDS), so a panic is a builder bug, never input-dependent.
pub fn scatter_add<T: Scalar>(blk: &Block<T>, ytil: &[T], dst: &mut [T], row_offset: usize) {
    for (slot, &row) in blk.map.iter().enumerate() {
        if row >= 0 {
            let at = row as usize - row_offset;
            dst[at] += ytil[slot];
        }
    }
}

/// Gather the block's `ỹ` view of a global `y` (forward mapping `ι_k`;
/// invalid slots read as zero). The transpose kernels' prologue.
// AUDIT(panic-ok): checked indexing is the bounds guard here — block tables are validated at construction (CSCV-BOUNDS), so a panic is a builder bug, never input-dependent.
pub fn gather<T: Scalar>(blk: &Block<T>, y: &[T], ytil: &mut [T]) {
    let ytil = &mut ytil[..blk.ytil_len()];
    for (slot, &row) in blk.map.iter().enumerate() {
        ytil[slot] = if row >= 0 { y[row as usize] } else { T::ZERO };
    }
}

/// Transpose CSCV-Z block kernel: `x[cols] += blockᵀ · ỹ` (the paper's
/// future-work `x = Aᵀy` back-projection, here implemented). `ytil` must
/// already hold the gathered `ỹ` (see [`gather`]); per member column the
/// kernel accumulates a `W`-lane dot product, horizontally summed once.
// AUDIT(panic-ok): checked indexing is the bounds guard here — block tables are validated at construction (CSCV-BOUNDS), so a panic is a builder bug, never input-dependent.
pub fn run_block_z_t<T: Scalar, const W: usize>(
    blk: &Block<T>,
    s_vxg: usize,
    ytil: &[T],
    sink: &mut impl FnMut(usize, T),
) {
    let vals = blk.vals.as_slice();
    for i in 0..blk.n_vxgs() {
        let q = blk.vxg_q[i] as usize;
        let count = blk.vxg_count[i] as usize;
        let cols = &blk.cols[i * s_vxg..(i + 1) * s_vxg];
        let mut accs = [[T::ZERO; W]; MAX_VXG];
        let mut p = blk.val_ptr[i] as usize;
        for ci in 0..count {
            let yt: [T; W] = load_lanes(ytil, q + ci * W);
            for acc in accs.iter_mut().take(s_vxg) {
                let v = lane_block::<T, W>(vals, p);
                for l in 0..W {
                    acc[l] = v[l].mul_add(yt[l], acc[l]);
                }
                p += W;
            }
        }
        for (s, &c) in cols.iter().enumerate() {
            // Padded members repeat a real column with all-zero values,
            // so the unconditional add is safe.
            sink(c as usize, cscv_simd::lanes::hsum(&accs[s]));
        }
    }
}

/// Transpose CSCV-M block kernel (mask-expanded values).
// AUDIT(panic-ok): checked indexing is the bounds guard here — block tables are validated at construction (CSCV-BOUNDS), so a panic is a builder bug, never input-dependent.
pub fn run_block_m_t<T: Scalar + MaskExpand, const W: usize, const HW: bool>(
    blk: &Block<T>,
    s_vxg: usize,
    ytil: &[T],
    sink: &mut impl FnMut(usize, T),
) {
    let mask_bytes = W.div_ceil(8);
    let vals = blk.vals.as_slice();
    let masks = blk.masks.as_slice();
    let mut p = 0usize;
    let mut mi = 0usize;
    for i in 0..blk.n_vxgs() {
        debug_assert_eq!(p, blk.val_ptr[i] as usize);
        let q = blk.vxg_q[i] as usize;
        let count = blk.vxg_count[i] as usize;
        let cols = &blk.cols[i * s_vxg..(i + 1) * s_vxg];
        let mut accs = [[T::ZERO; W]; MAX_VXG];
        for ci in 0..count {
            let yt: [T; W] = load_lanes(ytil, q + ci * W);
            for acc in accs.iter_mut().take(s_vxg) {
                let mask = read_mask::<W>(masks, mi);
                mi += mask_bytes;
                let lanes: [T; W] = if HW {
                    debug_assert!(vals.len() >= p + mask.count_ones() as usize);
                    // SAFETY: caller verified hardware availability; the
                    // stream holds popcount(mask) values at p by build.
                    unsafe { T::expand_hw::<W>(mask, vals.as_ptr().add(p)) }
                } else {
                    expand_soft::<T, W>(mask, &vals[p..])
                };
                p += mask.count_ones() as usize;
                for l in 0..W {
                    acc[l] = lanes[l].mul_add(yt[l], acc[l]);
                }
            }
        }
        for (s, &c) in cols.iter().enumerate() {
            sink(c as usize, cscv_simd::lanes::hsum(&accs[s]));
        }
    }
    debug_assert_eq!(p, vals.len());
}

// ---------------------------------------------------------------------
// Batched multi-RHS (SpMM) kernels.
//
// The batch dimension `K` is a const generic so each RHS gets its own
// register accumulator block; the matrix value stream (and, for CSCV-M,
// each mask expansion) is read ONCE per lane block and reused `K` times.
// The multi-RHS ỹ is interleaved by lane block: the single-RHS slot
// position `at` becomes base `at·K`, with RHS `k`'s `W` lanes at
// `at·K + k·W`, so the K accumulator tiles of one curve offset are
// contiguous in memory.
//
// RHS vectors are packed column-major: RHS `k` occupies
// `x[k·n_cols .. (k+1)·n_cols]` and `y[k·n_rows .. (k+1)·n_rows]`.
// ---------------------------------------------------------------------

/// Gather the `K` `x`-scalars of one member column into a tile row.
#[inline(always)]
fn gather_xs<T: Scalar, const K: usize>(x: &[T], n_cols: usize, c: usize) -> [T; K] {
    std::array::from_fn(|k| x[k * n_cols + c])
}

/// Batched CSCV-Z block kernel: `ỹ_k += x_k ⊗ block` for `K` right-hand
/// sides in one pass over the value stream. `x` holds `K` column-major
/// RHS vectors of length `n_cols`; `ytil` must hold at least
/// `K · blk.ytil_len()` elements (interleaved layout) and is zeroed here.
// AUDIT(panic-ok): checked indexing is the bounds guard here — block tables are validated at construction (CSCV-BOUNDS), so a panic is a builder bug, never input-dependent.
pub fn run_block_z_multi<T: Scalar, const W: usize, const K: usize>(
    blk: &Block<T>,
    s_vxg: usize,
    x: &[T],
    n_cols: usize,
    ytil: &mut [T],
) {
    let ytil = &mut ytil[..blk.ytil_len() * K];
    ytil.fill(T::ZERO);
    let vals = blk.vals.as_slice();
    let mut xs = [[T::ZERO; K]; MAX_VXG];
    for i in 0..blk.n_vxgs() {
        let q = blk.vxg_q[i] as usize;
        let count = blk.vxg_count[i] as usize;
        let cols = &blk.cols[i * s_vxg..(i + 1) * s_vxg];
        for (s, &c) in cols.iter().enumerate() {
            xs[s] = gather_xs::<T, K>(x, n_cols, c as usize);
        }
        let mut p = blk.val_ptr[i] as usize;
        for ci in 0..count {
            let at = (q + ci * W) * K;
            let mut accs: [[T; W]; K] = load_tile(ytil, at);
            for xk in &xs[..s_vxg] {
                fma_tile(&mut accs, xk, lane_block::<T, W>(vals, p));
                p += W;
            }
            store_tile(ytil, at, &accs);
        }
    }
}

/// Batched CSCV-M block kernel: each lane block is mask-expanded ONCE
/// and folded into all `K` accumulators — the decompression cost is
/// amortized across the batch exactly like the value-stream traffic.
// AUDIT(panic-ok): checked indexing is the bounds guard here — block tables are validated at construction (CSCV-BOUNDS), so a panic is a builder bug, never input-dependent.
pub fn run_block_m_multi<T: Scalar + MaskExpand, const W: usize, const HW: bool, const K: usize>(
    blk: &Block<T>,
    s_vxg: usize,
    x: &[T],
    n_cols: usize,
    ytil: &mut [T],
) {
    let mask_bytes = W.div_ceil(8);
    let ytil = &mut ytil[..blk.ytil_len() * K];
    ytil.fill(T::ZERO);
    let vals = blk.vals.as_slice();
    let masks = blk.masks.as_slice();
    let mut xs = [[T::ZERO; K]; MAX_VXG];
    let mut p = 0usize;
    let mut mi = 0usize;
    for i in 0..blk.n_vxgs() {
        debug_assert_eq!(p, blk.val_ptr[i] as usize);
        let q = blk.vxg_q[i] as usize;
        let count = blk.vxg_count[i] as usize;
        let cols = &blk.cols[i * s_vxg..(i + 1) * s_vxg];
        for (s, &c) in cols.iter().enumerate() {
            xs[s] = gather_xs::<T, K>(x, n_cols, c as usize);
        }
        for ci in 0..count {
            let at = (q + ci * W) * K;
            let mut accs: [[T; W]; K] = load_tile(ytil, at);
            for xk in &xs[..s_vxg] {
                let mask = read_mask::<W>(masks, mi);
                mi += mask_bytes;
                let lanes: [T; W] = if HW {
                    debug_assert!(vals.len() >= p + mask.count_ones() as usize);
                    // SAFETY: caller verified hardware availability; the
                    // stream holds popcount(mask) values at p by build.
                    unsafe { T::expand_hw::<W>(mask, vals.as_ptr().add(p)) }
                } else {
                    expand_soft::<T, W>(mask, &vals[p..])
                };
                p += mask.count_ones() as usize;
                fma_tile(&mut accs, xk, &lanes);
            }
            store_tile(ytil, at, &accs);
        }
    }
    debug_assert_eq!(p, vals.len());
}

/// Scatter-add a batched interleaved `ỹ` into `K` output segments.
/// `dst` holds `K` column-major segments of `seg_len` rows each (RHS `k`
/// at `dst[k·seg_len ..]`); segment index 0 is global row `row_offset`.
// AUDIT(panic-ok): checked indexing is the bounds guard here — block tables are validated at construction (CSCV-BOUNDS), so a panic is a builder bug, never input-dependent.
pub fn scatter_add_multi<T: Scalar, const W: usize, const K: usize>(
    blk: &Block<T>,
    ytil: &[T],
    dst: &mut [T],
    seg_len: usize,
    row_offset: usize,
) {
    for (slot, &row) in blk.map.iter().enumerate() {
        if row >= 0 {
            let at = row as usize - row_offset;
            let base = (slot / W) * W * K + slot % W;
            for k in 0..K {
                dst[k * seg_len + at] += ytil[base + k * W];
            }
        }
    }
}

/// Gather the block's batched `ỹ` view of `K` column-major `y` segments
/// of `n_rows` each (invalid slots read as zero). Prologue of the
/// batched transpose kernels.
// AUDIT(panic-ok): checked indexing is the bounds guard here — block tables are validated at construction (CSCV-BOUNDS), so a panic is a builder bug, never input-dependent.
pub fn gather_multi<T: Scalar, const W: usize, const K: usize>(
    blk: &Block<T>,
    y: &[T],
    n_rows: usize,
    ytil: &mut [T],
) {
    let ytil = &mut ytil[..blk.ytil_len() * K];
    for (slot, &row) in blk.map.iter().enumerate() {
        let base = (slot / W) * W * K + slot % W;
        for k in 0..K {
            ytil[base + k * W] = if row >= 0 {
                y[k * n_rows + row as usize]
            } else {
                T::ZERO
            };
        }
    }
}

/// Batched transpose CSCV-Z kernel: `x_k[cols] += blockᵀ · ỹ_k` for all
/// `K` right-hand sides in one value-stream pass. `ytil` must hold the
/// interleaved gathered batch (see [`gather_multi`]); per member column
/// the sink receives the `K` horizontal sums at once.
// AUDIT(panic-ok): checked indexing is the bounds guard here — block tables are validated at construction (CSCV-BOUNDS), so a panic is a builder bug, never input-dependent.
pub fn run_block_z_t_multi<T: Scalar, const W: usize, const K: usize>(
    blk: &Block<T>,
    s_vxg: usize,
    ytil: &[T],
    sink: &mut impl FnMut(usize, &[T; K]),
) {
    let vals = blk.vals.as_slice();
    for i in 0..blk.n_vxgs() {
        let q = blk.vxg_q[i] as usize;
        let count = blk.vxg_count[i] as usize;
        let cols = &blk.cols[i * s_vxg..(i + 1) * s_vxg];
        let mut accs = [[[T::ZERO; W]; K]; MAX_VXG];
        let mut p = blk.val_ptr[i] as usize;
        for ci in 0..count {
            let yt: [[T; W]; K] = load_tile(ytil, (q + ci * W) * K);
            for acc in accs.iter_mut().take(s_vxg) {
                let v = lane_block::<T, W>(vals, p);
                for k in 0..K {
                    for l in 0..W {
                        acc[k][l] = v[l].mul_add(yt[k][l], acc[k][l]);
                    }
                }
                p += W;
            }
        }
        for (s, &c) in cols.iter().enumerate() {
            // Padded members repeat a real column with all-zero values,
            // so the unconditional add is safe.
            let sums: [T; K] = std::array::from_fn(|k| hsum(&accs[s][k]));
            sink(c as usize, &sums);
        }
    }
}

/// Batched transpose CSCV-M kernel (each mask expansion shared by all
/// `K` right-hand sides).
// AUDIT(panic-ok): checked indexing is the bounds guard here — block tables are validated at construction (CSCV-BOUNDS), so a panic is a builder bug, never input-dependent.
pub fn run_block_m_t_multi<
    T: Scalar + MaskExpand,
    const W: usize,
    const HW: bool,
    const K: usize,
>(
    blk: &Block<T>,
    s_vxg: usize,
    ytil: &[T],
    sink: &mut impl FnMut(usize, &[T; K]),
) {
    let mask_bytes = W.div_ceil(8);
    let vals = blk.vals.as_slice();
    let masks = blk.masks.as_slice();
    let mut p = 0usize;
    let mut mi = 0usize;
    for i in 0..blk.n_vxgs() {
        debug_assert_eq!(p, blk.val_ptr[i] as usize);
        let q = blk.vxg_q[i] as usize;
        let count = blk.vxg_count[i] as usize;
        let cols = &blk.cols[i * s_vxg..(i + 1) * s_vxg];
        let mut accs = [[[T::ZERO; W]; K]; MAX_VXG];
        for ci in 0..count {
            let yt: [[T; W]; K] = load_tile(ytil, (q + ci * W) * K);
            for acc in accs.iter_mut().take(s_vxg) {
                let mask = read_mask::<W>(masks, mi);
                mi += mask_bytes;
                let lanes: [T; W] = if HW {
                    debug_assert!(vals.len() >= p + mask.count_ones() as usize);
                    // SAFETY: caller verified hardware availability; the
                    // stream holds popcount(mask) values at p by build.
                    unsafe { T::expand_hw::<W>(mask, vals.as_ptr().add(p)) }
                } else {
                    expand_soft::<T, W>(mask, &vals[p..])
                };
                p += mask.count_ones() as usize;
                for k in 0..K {
                    for l in 0..W {
                        acc[k][l] = lanes[l].mul_add(yt[k][l], acc[k][l]);
                    }
                }
            }
        }
        for (s, &c) in cols.iter().enumerate() {
            let sums: [T; K] = std::array::from_fn(|k| hsum(&accs[s][k]));
            sink(c as usize, &sums);
        }
    }
    debug_assert_eq!(p, vals.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built miniature block: W = 4, S_VxG = 2, one VxG covering two
    /// offsets, columns 3 and 5.
    fn tiny_block_z() -> Block<f64> {
        // ỹ has 2 offsets × 4 lanes = 8 slots mapping to rows 0..8.
        Block {
            group: 0,
            tile: 0,
            map: (0..8).collect(),
            vxg_q: vec![0],
            vxg_count: vec![2],
            cols: vec![3, 5],
            val_ptr: vec![0, 16],
            // offset 0: col3 lanes [1,2,3,4], col5 lanes [5,6,7,8]
            // offset 1: col3 lanes [0,0,1,0], col5 lanes [2,0,0,0]
            vals: vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, //
                0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 0.0, 0.0,
            ],
            masks: vec![],
            nnz: 10,
            lane_slots: 16,
        }
    }

    #[test]
    fn z_kernel_computes_expected() {
        let blk = tiny_block_z();
        let mut x = vec![0.0f64; 8];
        x[3] = 2.0;
        x[5] = 10.0;
        let mut ytil = vec![f64::NAN; 8];
        run_block_z::<f64, 4>(&blk, 2, &x, &mut ytil);
        // offset 0: 2*[1,2,3,4] + 10*[5,6,7,8] = [52,64,76,88]
        assert_eq!(&ytil[..4], &[52.0, 64.0, 76.0, 88.0]);
        // offset 1: 2*[0,0,1,0] + 10*[2,0,0,0] = [20,0,2,0]
        assert_eq!(&ytil[4..], &[20.0, 0.0, 2.0, 0.0]);
    }

    fn tiny_block_m() -> Block<f64> {
        // Same matrix as tiny_block_z with padding stripped.
        Block {
            group: 0,
            tile: 0,
            map: (0..8).collect(),
            vxg_q: vec![0],
            vxg_count: vec![2],
            cols: vec![3, 5],
            val_ptr: vec![0, 10],
            vals: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 1.0, 2.0],
            // masks: full, full, 0b0100, 0b0001
            masks: vec![0b1111, 0b1111, 0b0100, 0b0001],
            nnz: 10,
            lane_slots: 16,
        }
    }

    #[test]
    fn m_kernel_matches_z_kernel() {
        let z = tiny_block_z();
        let m = tiny_block_m();
        let mut x = vec![0.0f64; 8];
        x[3] = -1.5;
        x[5] = 0.25;
        let mut yz = vec![0.0; 8];
        let mut ym = vec![0.0; 8];
        run_block_z::<f64, 4>(&z, 2, &x, &mut yz);
        run_block_m::<f64, 4, false>(&m, 2, &x, &mut ym);
        assert_eq!(yz, ym);
        if <f64 as MaskExpand>::hw_available::<4>() {
            let mut yh = vec![0.0; 8];
            run_block_m::<f64, 4, true>(&m, 2, &x, &mut yh);
            assert_eq!(yz, yh);
        }
    }

    #[test]
    fn scatter_respects_map_and_offset() {
        let mut blk = tiny_block_z();
        blk.map = vec![4, -1, 5, -1, 6, -1, 7, -1];
        let ytil: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let mut dst = vec![10.0; 4]; // rows 4..8
        scatter_add(&blk, &ytil, &mut dst, 4);
        assert_eq!(dst, vec![11.0, 13.0, 15.0, 17.0]);
    }

    #[test]
    fn transpose_kernels_match_explicit_transpose() {
        // Forward: y = B x over the tiny block; transpose must satisfy
        // <Bx, y> = <x, Bᵀy> and the explicit element-wise transpose.
        let z = tiny_block_z();
        let m = tiny_block_m();
        let y: Vec<f64> = (1..=8).map(|i| i as f64 * 0.5).collect();
        // Gather is identity here (map = 0..8).
        let mut ytil = vec![0.0; 8];
        gather(&z, &y, &mut ytil);
        assert_eq!(ytil, y);

        // Explicit transpose from the dense image of the block:
        // offset 0 rows 0..4, offset 1 rows 4..8; col 3 then col 5.
        let dense_cols: [(usize, [f64; 8]); 2] = [
            (3, [1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 1.0, 0.0]),
            (5, [5.0, 6.0, 7.0, 8.0, 2.0, 0.0, 0.0, 0.0]),
        ];
        let mut x_ref = vec![0.0; 8];
        for (c, col) in dense_cols {
            x_ref[c] = col.iter().zip(&y).map(|(a, b)| a * b).sum();
        }

        let mut xz = vec![0.0; 8];
        run_block_z_t::<f64, 4>(&z, 2, &ytil, &mut |c, v| xz[c] += v);
        assert_eq!(xz, x_ref);
        let mut xm = vec![0.0; 8];
        run_block_m_t::<f64, 4, false>(&m, 2, &ytil, &mut |c, v| xm[c] += v);
        assert_eq!(xm, x_ref);
        if <f64 as MaskExpand>::hw_available::<4>() {
            let mut xh = vec![0.0; 8];
            run_block_m_t::<f64, 4, true>(&m, 2, &ytil, &mut |c, v| xh[c] += v);
            assert_eq!(xh, x_ref);
        }
    }

    #[test]
    fn gather_zeroes_invalid_slots() {
        let mut blk = tiny_block_z();
        blk.map = vec![2, -1, 0, -1, 1, -1, 3, -1];
        let y = vec![10.0, 20.0, 30.0, 40.0];
        let mut ytil = vec![f64::NAN; 8];
        gather(&blk, &y, &mut ytil);
        assert_eq!(ytil, vec![30.0, 0.0, 10.0, 0.0, 20.0, 0.0, 40.0, 0.0]);
    }

    #[test]
    fn mask_reading_two_bytes() {
        let masks = [0xAB, 0x02, 0xFF];
        assert_eq!(read_mask::<16>(&masks, 0), 0x02AB);
        assert_eq!(read_mask::<8>(&masks, 0), 0xAB);
        assert_eq!(read_mask::<4>(&masks, 1), 0x02);
    }

    #[test]
    fn mask_reading_w16_at_stream_tail() {
        // A W=16 stream of exactly two masks: reading the LAST mask
        // touches bytes 2 and 3 — the final bytes of the stream. This
        // is the boundary the read_mask debug assert guards.
        let masks = [0x01, 0x80, 0xFE, 0x7F];
        assert_eq!(read_mask::<16>(&masks, 2), 0x7FFE);
        // Full kernel pass whose final lane block mask ends the stream:
        // W=16, one VxG with one member column and one curve offset.
        let blk = Block::<f64> {
            group: 0,
            tile: 0,
            map: (0..16).collect(),
            vxg_q: vec![0],
            vxg_count: vec![1],
            cols: vec![0],
            val_ptr: vec![0],
            vals: vec![3.0, 7.0],    // lanes 0 and 15 occupied
            masks: vec![0x01, 0x80], // 0x8001 LE — exactly 2 bytes
            nnz: 2,
            lane_slots: 16,
        };
        let x = vec![2.0f64];
        let mut ytil = vec![f64::NAN; 16];
        run_block_m::<f64, 16, false>(&blk, 1, &x, &mut ytil);
        assert_eq!(ytil[0], 6.0);
        assert_eq!(ytil[15], 14.0);
        assert_eq!(&ytil[1..15], &[0.0; 14]);
    }

    /// The batched kernels against K independent single-RHS runs on the
    /// tiny hand-built blocks, all layouts crossed (Z/M, soft/hw).
    #[test]
    fn multi_kernels_match_k_independent_singles() {
        const K: usize = 3;
        let z = tiny_block_z();
        let m = tiny_block_m();
        let n_cols = 8;
        // K column-major RHS vectors with distinct values.
        let x: Vec<f64> = (0..K * n_cols).map(|i| (i as f64 * 0.7).sin()).collect();

        let mut ytil_multi = vec![f64::NAN; 8 * K];
        run_block_z_multi::<f64, 4, K>(&z, 2, &x, n_cols, &mut ytil_multi);
        let mut ytil_m_multi = vec![f64::NAN; 8 * K];
        run_block_m_multi::<f64, 4, false, K>(&m, 2, &x, n_cols, &mut ytil_m_multi);

        for k in 0..K {
            let mut ytil_one = vec![0.0; 8];
            run_block_z::<f64, 4>(&z, 2, &x[k * n_cols..(k + 1) * n_cols], &mut ytil_one);
            // De-interleave: slot s of RHS k lives at (s/4)*4*K + k*4 + s%4.
            for (s, &one) in ytil_one.iter().enumerate() {
                let at = (s / 4) * 4 * K + k * 4 + s % 4;
                assert_eq!(ytil_multi[at], one, "Z rhs {k} slot {s}");
                assert_eq!(ytil_m_multi[at], one, "M rhs {k} slot {s}");
            }
        }
    }

    #[test]
    fn scatter_and_gather_multi_roundtrip() {
        const K: usize = 2;
        let mut blk = tiny_block_z();
        blk.map = vec![4, -1, 5, -1, 6, -1, 7, -1];
        // Interleaved ỹ: lane block 0 → slots 0..4, lane block 1 → 4..8.
        let mut ytil = vec![0.0f64; 8 * K];
        for s in 0..8 {
            for k in 0..K {
                ytil[(s / 4) * 4 * K + k * 4 + s % 4] = (s * 10 + k) as f64;
            }
        }
        // Scatter into K segments of rows 4..8 (seg_len 4, offset 4).
        let mut dst = vec![100.0f64; 4 * K];
        scatter_add_multi::<f64, 4, K>(&blk, &ytil, &mut dst, 4, 4);
        assert_eq!(
            dst,
            vec![
                100.0, 120.0, 140.0, 160.0, // rhs 0: slots 0,2,4,6
                101.0, 121.0, 141.0, 161.0, // rhs 1
            ]
        );

        // Gather back from a K-segment y (n_rows = 8).
        let mut y = vec![0.0f64; 8 * K];
        y[4..8].copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        y[12..16].copy_from_slice(&[5.0, 6.0, 7.0, 8.0]);
        let mut gt = vec![f64::NAN; 8 * K];
        gather_multi::<f64, 4, K>(&blk, &y, 8, &mut gt);
        for s in 0..8 {
            for k in 0..K {
                let at = (s / 4) * 4 * K + k * 4 + s % 4;
                let expect = if s % 2 == 0 {
                    (k * 4 + s / 2 + 1) as f64
                } else {
                    0.0
                };
                assert_eq!(gt[at], expect, "slot {s} rhs {k}");
            }
        }
    }

    #[test]
    fn transpose_multi_matches_k_independent_singles() {
        const K: usize = 3;
        let z = tiny_block_z();
        let m = tiny_block_m();
        let n_rows = 8;
        let y: Vec<f64> = (0..K * n_rows).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let mut ytil = vec![0.0; 8 * K];
        gather_multi::<f64, 4, K>(&z, &y, n_rows, &mut ytil);

        let mut xz = [0.0; 8 * K];
        run_block_z_t_multi::<f64, 4, K>(&z, 2, &ytil, &mut |c, sums| {
            for k in 0..K {
                xz[k * 8 + c] += sums[k];
            }
        });
        let mut xm = [0.0; 8 * K];
        run_block_m_t_multi::<f64, 4, false, K>(&m, 2, &ytil, &mut |c, sums| {
            for k in 0..K {
                xm[k * 8 + c] += sums[k];
            }
        });

        for k in 0..K {
            let mut ytil_one = vec![0.0; 8];
            gather(&z, &y[k * n_rows..(k + 1) * n_rows], &mut ytil_one);
            let mut x_one = vec![0.0; 8];
            run_block_z_t::<f64, 4>(&z, 2, &ytil_one, &mut |c, v| x_one[c] += v);
            assert_eq!(&xz[k * 8..(k + 1) * 8], x_one.as_slice(), "Z rhs {k}");
            assert_eq!(&xm[k * 8..(k + 1) * 8], x_one.as_slice(), "M rhs {k}");
        }
    }
}
