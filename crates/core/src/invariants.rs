//! The CSCV structural-invariant catalog.
//!
//! Every invariant that the kernels in [`crate::kernels`] and
//! [`crate::exec`] *assume* — and that the builder in [`crate::builder`]
//! must therefore *establish* — is enumerated here as data: a stable ID,
//! a severity, the format layer it belongs to, a prose statement, and an
//! executable checker. The catalog serves four consumers:
//!
//! * [`CscvMatrix::validate_full`] runs every checker and returns the
//!   full violation list (tests, the `cscv-xtask fuzz` differential
//!   fuzzer, and debugging);
//! * [`assert_valid`] is the feature-gated hook the builder calls at the
//!   end of every construction when `check-invariants` is on (it
//!   compiles to an empty inlined body otherwise, so release builds are
//!   byte-identical — same discipline as the `trace` feature);
//! * SAFETY comments in `kernels.rs`/`exec.rs` cite IDs from this table
//!   instead of restating the argument;
//! * docs (DESIGN.md "Correctness tooling, part 2") render the table.
//!
//! | ID                | layer  | invariant                                              |
//! |-------------------|--------|--------------------------------------------------------|
//! | `CSCV-U32-FIT`    | index  | dims fit the compressed index types (i32 map, u32 ptr) |
//! | `CSCV-GROUPS`     | group  | groups partition blocks; row ranges disjoint ascending |
//! | `CSCV-PERM`       | ioblr  | ỹ scatter map is injective on physical rows            |
//! | `CSCV-MAP-RANGE`  | ioblr  | map entries are −1 or rows inside the group's range    |
//! | `CSCV-VXG-BOUNDS` | vxg    | VxG descriptor arrays agree; VxGs stay inside ỹ        |
//! | `CSCV-VXG-SORT`   | vxg    | VxGs sorted by offset count (paper Fig. 6b)            |
//! | `CSCV-VALPTR`     | stream | val_ptr is a monotone prefix ending at vals.len()      |
//! | `CSCV-MASK-POPCNT`| stream | mask popcounts equal stored-element counts (CSCV-M)    |
//! | `CSCV-PAD-ZERO`   | stream | padding slots are zero (Z) / absent (M)                |
//! | `CSCV-STATS`      | stats  | lane_slots = nnz + ioblr_padding + vxg_padding etc.    |
//!
//! The sparse-side counterparts (`CSR-PTR`, `CSC-IDX`, `COO-BOUNDS`, …)
//! live in `cscv_sparse::invariants`.

use crate::format::{CscvMatrix, CscvStats, GroupInfo, Variant};
use cscv_simd::Scalar;

/// How bad a violation of the invariant is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Kernels may read or write out of bounds, or silently compute a
    /// wrong product.
    Error,
    /// The product stays correct but a model quantity (stats, padding
    /// accounting) is off.
    Warning,
}

/// Which layer of the format the invariant constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Index-width compression (u32/i32/u16 fields).
    Index,
    /// View-group / block partitioning.
    Group,
    /// IOBLR re-addressing and the ỹ scatter map.
    Ioblr,
    /// VxG packing (descriptor arrays, Fig. 6 ordering).
    Vxg,
    /// The value stream and CSCV-M masks.
    Stream,
    /// Aggregate statistics (Fig. 8 / Table III quantities).
    Stats,
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Layer::Index => "index",
            Layer::Group => "group",
            Layer::Ioblr => "ioblr",
            Layer::Vxg => "vxg",
            Layer::Stream => "stream",
            Layer::Stats => "stats",
        };
        f.write_str(s)
    }
}

/// One violated invariant, attributed to a block where applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Catalog ID (e.g. `CSCV-PERM`).
    pub id: &'static str,
    /// Index into `CscvMatrix::blocks`, when block-local.
    pub block: Option<usize>,
    /// What exactly is wrong, with indices.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.block {
            Some(b) => write!(f, "[{}] block {b}: {}", self.id, self.detail),
            None => write!(f, "[{}] {}", self.id, self.detail),
        }
    }
}

/// One catalog entry: the invariant as data plus its executable checker.
///
/// Checkers are plain `fn` pointers over the scalar-erased
/// [`MatrixView`], so the catalog itself is a `const` table independent
/// of the element type.
pub struct Invariant {
    pub id: &'static str,
    pub severity: Severity,
    pub layer: Layer,
    /// One-sentence statement (rendered into docs and fuzz reports).
    pub desc: &'static str,
    /// The checker: reports each violation through the sink.
    pub check: fn(&MatrixView, &mut dyn FnMut(Violation)),
}

/// Scalar-erased view of one block (everything the checkers need).
pub struct BlockView<'a> {
    pub group: u32,
    pub map: &'a [i32],
    pub vxg_q: &'a [u32],
    pub vxg_count: &'a [u16],
    pub cols: &'a [u32],
    pub val_ptr: &'a [u32],
    pub masks: &'a [u8],
    /// `vals.len()` of the typed block.
    pub vals_len: usize,
    /// How many stored values are exactly zero.
    pub zero_vals: usize,
    pub nnz: usize,
    pub lane_slots: usize,
}

/// Scalar-erased view of a whole [`CscvMatrix`], consumed by the catalog
/// checkers.
pub struct MatrixView<'a> {
    pub n_rows: usize,
    pub n_cols: usize,
    /// `S_VVec` (lane count `W`).
    pub w: usize,
    /// `S_VxG` (columns per VxG).
    pub g: usize,
    pub variant: Variant,
    pub mask_bytes: usize,
    pub layout_rows: usize,
    pub blocks: Vec<BlockView<'a>>,
    pub groups: &'a [GroupInfo],
    pub stats: CscvStats,
    pub max_ytil: usize,
}

impl<T: Scalar> CscvMatrix<T> {
    /// Scalar-erased view for the invariant checkers.
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            w: self.params.s_vvec,
            g: self.params.s_vxg,
            variant: self.variant,
            mask_bytes: self.mask_bytes(),
            layout_rows: self.layout.n_rows(),
            blocks: self
                .blocks
                .iter()
                .map(|b| BlockView {
                    group: b.group,
                    map: &b.map,
                    vxg_q: &b.vxg_q,
                    vxg_count: &b.vxg_count,
                    cols: &b.cols,
                    val_ptr: &b.val_ptr,
                    masks: &b.masks,
                    vals_len: b.vals.len(),
                    zero_vals: b.vals.iter().filter(|&&v| v == T::ZERO).count(),
                    nnz: b.nnz,
                    lane_slots: b.lane_slots,
                })
                .collect(),
            groups: &self.groups,
            stats: self.stats,
            max_ytil: self.max_ytil,
        }
    }

    /// Run the full invariant catalog; `Err` carries every violation.
    ///
    /// Unlike [`CscvMatrix::validate`] (assert-based, stops at the first
    /// problem) this reports the complete list with catalog IDs, which is
    /// what the differential fuzzer shrinks against.
    pub fn validate_full(&self) -> Result<(), Vec<Violation>> {
        let view = self.view();
        let mut out = Vec::new();
        for inv in CATALOG {
            (inv.check)(&view, &mut |v| out.push(v));
        }
        if out.is_empty() {
            Ok(())
        } else {
            Err(out)
        }
    }
}

/// Builder/conversion-boundary hook: panic with the full violation list
/// if the matrix breaks any catalog invariant. No-op without the
/// `check-invariants` feature.
#[cfg(feature = "check-invariants")]
pub fn assert_valid<T: Scalar>(m: &CscvMatrix<T>, boundary: &str) {
    if let Err(violations) = m.validate_full() {
        let rendered: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        // AUDIT(panic-ok): this IS the validation boundary — a malformed matrix must stop the run with the full violation list.
        panic!(
            "CSCV invariant violation after {boundary}:\n{}",
            rendered.join("\n")
        );
    }
}

/// Builder/conversion-boundary hook (disabled: `check-invariants` off).
#[cfg(not(feature = "check-invariants"))]
#[inline(always)]
pub fn assert_valid<T: Scalar>(_m: &CscvMatrix<T>, _boundary: &str) {}

/// The catalog. Order is the order violations are reported in.
pub const CATALOG: &[Invariant] = &[
    Invariant {
        id: "CSCV-U32-FIT",
        severity: Severity::Error,
        layer: Layer::Index,
        desc: "dimensions and per-block stream lengths fit the compressed \
               index types: n_rows <= i32::MAX (i32 scatter map), \
               n_cols <= u32::MAX (u32 column ids), vals.len() <= u32::MAX \
               per block (u32 val_ptr)",
        check: check_u32_fit,
    },
    Invariant {
        id: "CSCV-GROUPS",
        severity: Severity::Error,
        layer: Layer::Group,
        desc: "group block_ranges are a contiguous partition of blocks, \
               row ranges are ascending, disjoint and in-bounds, and group \
               nnz equals the sum over its blocks",
        check: check_groups,
    },
    Invariant {
        id: "CSCV-PERM",
        severity: Severity::Error,
        layer: Layer::Ioblr,
        desc: "the IOBLR re-addressing is injective: no two ỹ slots of one \
               block scatter to the same global row (scatter_add may \
               otherwise double-count)",
        check: check_perm,
    },
    Invariant {
        id: "CSCV-MAP-RANGE",
        severity: Severity::Error,
        layer: Layer::Ioblr,
        desc: "every scatter-map entry is -1 (padding slot) or a row inside \
               the owning group's row range, and the map is whole lane \
               blocks (len % W == 0)",
        check: check_map_range,
    },
    Invariant {
        id: "CSCV-VXG-BOUNDS",
        severity: Severity::Error,
        layer: Layer::Vxg,
        desc: "VxG descriptor arrays agree in length (count: n, cols: n*G, \
               val_ptr: n+1), each VxG's slot window q..q+count*W lies \
               inside ỹ on a lane boundary, and member columns are < n_cols",
        check: check_vxg_bounds,
    },
    Invariant {
        id: "CSCV-VXG-SORT",
        severity: Severity::Error,
        layer: Layer::Vxg,
        desc: "VxGs of a block are sorted by ascending offset count \
               (paper Fig. 6b) so the kernel's count-bucketed dispatch \
               runs monotone",
        check: check_vxg_sort,
    },
    Invariant {
        id: "CSCV-VALPTR",
        severity: Severity::Error,
        layer: Layer::Stream,
        desc: "val_ptr starts at 0, is monotone, ends at vals.len(); each \
               VxG's slice is exactly count*G*W values for CSCV-Z and at \
               most that for CSCV-M",
        check: check_valptr,
    },
    Invariant {
        id: "CSCV-MASK-POPCNT",
        severity: Severity::Error,
        layer: Layer::Stream,
        desc: "CSCV-M: one mask per lane block, popcount sum per VxG equals \
               its val_ptr span, bits >= W are clear; CSCV-Z: no masks",
        check: check_mask_popcnt,
    },
    Invariant {
        id: "CSCV-PAD-ZERO",
        severity: Severity::Error,
        layer: Layer::Stream,
        desc: "padding placement: CSCV-Z stores exactly lane_slots values of \
               which at most nnz are nonzero; CSCV-M stores no zeros at all",
        check: check_pad_zero,
    },
    Invariant {
        id: "CSCV-STATS",
        severity: Severity::Warning,
        layer: Layer::Stats,
        desc: "stats bookkeeping: lane_slots = nnz_orig + ioblr_padding + \
               vxg_padding, block/nnz/vxg counts and max_ytil match the \
               blocks",
        check: check_stats,
    },
];

/// Look up a catalog entry by ID (used by docs tests and the fuzzer's
/// reporting).
pub fn by_id(id: &str) -> Option<&'static Invariant> {
    CATALOG.iter().find(|i| i.id == id)
}

fn check_u32_fit(m: &MatrixView, sink: &mut dyn FnMut(Violation)) {
    if m.n_rows > i32::MAX as usize {
        sink(Violation {
            id: "CSCV-U32-FIT",
            block: None,
            detail: format!(
                "n_rows = {} exceeds i32::MAX (scatter map is i32)",
                m.n_rows
            ),
        });
    }
    if m.n_cols > u32::MAX as usize {
        sink(Violation {
            id: "CSCV-U32-FIT",
            block: None,
            detail: format!(
                "n_cols = {} exceeds u32::MAX (column ids are u32)",
                m.n_cols
            ),
        });
    }
    for (bi, b) in m.blocks.iter().enumerate() {
        if b.vals_len > u32::MAX as usize {
            sink(Violation {
                id: "CSCV-U32-FIT",
                block: Some(bi),
                detail: format!(
                    "value stream of {} elements exceeds u32 val_ptr",
                    b.vals_len
                ),
            });
        }
    }
}

fn check_groups(m: &MatrixView, sink: &mut dyn FnMut(Violation)) {
    let mut err = |detail: String| {
        sink(Violation {
            id: "CSCV-GROUPS",
            block: None,
            detail,
        })
    };
    if m.layout_rows != m.n_rows {
        err(format!(
            "layout rows {} != n_rows {}",
            m.layout_rows, m.n_rows
        ));
    }
    let mut blocks_seen = 0usize;
    let mut prev_row_end = 0usize;
    for (gi, info) in m.groups.iter().enumerate() {
        if info.block_range.start != blocks_seen {
            err(format!(
                "group {gi} block_range starts at {} (expected {blocks_seen})",
                info.block_range.start
            ));
            return;
        }
        blocks_seen = info.block_range.end;
        if blocks_seen > m.blocks.len() {
            err(format!("group {gi} block_range ends past the block list"));
            return;
        }
        if info.row_range.start < prev_row_end && gi > 0 {
            err(format!(
                "group {gi} row range {:?} overlaps the previous group",
                info.row_range
            ));
        }
        prev_row_end = info.row_range.end;
        if info.row_range.end > m.n_rows {
            err(format!(
                "group {gi} row range {:?} exceeds n_rows {}",
                info.row_range, m.n_rows
            ));
        }
        let nnz: usize = m.blocks[info.block_range.clone()]
            .iter()
            .map(|b| b.nnz)
            .sum();
        if nnz != info.nnz {
            err(format!(
                "group {gi} records nnz {} but its blocks sum to {nnz}",
                info.nnz
            ));
        }
        for (bi, b) in m.blocks[info.block_range.clone()].iter().enumerate() {
            if b.group as usize != gi {
                err(format!(
                    "block {} claims group {} but lies in group {gi}'s range",
                    info.block_range.start + bi,
                    b.group
                ));
            }
        }
    }
    if blocks_seen != m.blocks.len() {
        err(format!(
            "groups cover {blocks_seen} blocks of {}",
            m.blocks.len()
        ));
    }
}

fn check_perm(m: &MatrixView, sink: &mut dyn FnMut(Violation)) {
    for (bi, b) in m.blocks.iter().enumerate() {
        let mut rows: Vec<i32> = b.map.iter().copied().filter(|&r| r >= 0).collect();
        rows.sort_unstable();
        if let Some(w) = rows.windows(2).find(|w| w[0] == w[1]) {
            sink(Violation {
                id: "CSCV-PERM",
                block: Some(bi),
                detail: format!("row {} appears in two ỹ slots", w[0]),
            });
        }
    }
}

fn check_map_range(m: &MatrixView, sink: &mut dyn FnMut(Violation)) {
    for (gi, info) in m.groups.iter().enumerate() {
        let range = info.block_range.clone();
        if range.end > m.blocks.len() {
            continue; // reported by CSCV-GROUPS
        }
        for (bo, b) in m.blocks[range.clone()].iter().enumerate() {
            let bi = range.start + bo;
            if m.w > 0 && b.map.len() % m.w != 0 {
                sink(Violation {
                    id: "CSCV-MAP-RANGE",
                    block: Some(bi),
                    detail: format!(
                        "map length {} is not whole lane blocks of {}",
                        b.map.len(),
                        m.w
                    ),
                });
            }
            for (slot, &row) in b.map.iter().enumerate() {
                if row < 0 {
                    continue;
                }
                if !info.row_range.contains(&(row as usize)) {
                    sink(Violation {
                        id: "CSCV-MAP-RANGE",
                        block: Some(bi),
                        detail: format!(
                            "slot {slot} maps to row {row}, outside group {gi}'s range {:?}",
                            info.row_range
                        ),
                    });
                    break;
                }
            }
        }
    }
}

fn check_vxg_bounds(m: &MatrixView, sink: &mut dyn FnMut(Violation)) {
    for (bi, b) in m.blocks.iter().enumerate() {
        let mut err = |detail: String| {
            sink(Violation {
                id: "CSCV-VXG-BOUNDS",
                block: Some(bi),
                detail,
            })
        };
        let n = b.vxg_q.len();
        if b.vxg_count.len() != n || b.cols.len() != n * m.g || b.val_ptr.len() != n + 1 {
            err(format!(
                "descriptor lengths disagree: q {} count {} cols {} (want {}) val_ptr {} (want {})",
                n,
                b.vxg_count.len(),
                b.cols.len(),
                n * m.g,
                b.val_ptr.len(),
                n + 1
            ));
            continue;
        }
        for i in 0..n {
            let q = b.vxg_q[i] as usize;
            let count = b.vxg_count[i] as usize;
            if count == 0 {
                err(format!("VxG {i} covers zero offsets"));
            }
            if m.w > 0 && !q.is_multiple_of(m.w) {
                err(format!(
                    "VxG {i} start slot {q} is not lane-aligned to {}",
                    m.w
                ));
            }
            if q + count * m.w > b.map.len() {
                err(format!(
                    "VxG {i} window {q}..{} leaves ỹ of {} slots",
                    q + count * m.w,
                    b.map.len()
                ));
            }
        }
        if let Some(&c) = b.cols.iter().find(|&&c| c as usize >= m.n_cols) {
            err(format!("member column {c} out of bounds (< {})", m.n_cols));
        }
    }
}

fn check_vxg_sort(m: &MatrixView, sink: &mut dyn FnMut(Violation)) {
    for (bi, b) in m.blocks.iter().enumerate() {
        if let Some(i) = b.vxg_count.windows(2).position(|w| w[0] > w[1]) {
            sink(Violation {
                id: "CSCV-VXG-SORT",
                block: Some(bi),
                detail: format!(
                    "VxG {} has count {} before VxG {} with count {}",
                    i,
                    b.vxg_count[i],
                    i + 1,
                    b.vxg_count[i + 1]
                ),
            });
        }
    }
}

fn check_valptr(m: &MatrixView, sink: &mut dyn FnMut(Violation)) {
    for (bi, b) in m.blocks.iter().enumerate() {
        let mut err = |detail: String| {
            sink(Violation {
                id: "CSCV-VALPTR",
                block: Some(bi),
                detail,
            })
        };
        if b.val_ptr.len() != b.vxg_count.len() + 1 {
            continue; // reported by CSCV-VXG-BOUNDS
        }
        if b.val_ptr.first() != Some(&0) {
            err(format!(
                "val_ptr starts at {:?}, expected 0",
                b.val_ptr.first()
            ));
        }
        if b.val_ptr.last().map(|&p| p as usize) != Some(b.vals_len) {
            err(format!(
                "val_ptr ends at {:?}, expected vals.len() = {}",
                b.val_ptr.last(),
                b.vals_len
            ));
        }
        for i in 0..b.vxg_count.len() {
            let (lo, hi) = (b.val_ptr[i], b.val_ptr[i + 1]);
            if lo > hi {
                err(format!("val_ptr not monotone at VxG {i}: {lo} > {hi}"));
                break;
            }
            let span = (hi - lo) as usize;
            let full = b.vxg_count[i] as usize * m.g * m.w;
            match m.variant {
                Variant::Z if span != full => {
                    err(format!(
                        "VxG {i} stores {span} values, CSCV-Z requires {full}"
                    ));
                }
                Variant::M if span > full => {
                    err(format!(
                        "VxG {i} stores {span} values, above the {full} slot bound"
                    ));
                }
                _ => {}
            }
        }
    }
}

fn check_mask_popcnt(m: &MatrixView, sink: &mut dyn FnMut(Violation)) {
    for (bi, b) in m.blocks.iter().enumerate() {
        let mut err = |detail: String| {
            sink(Violation {
                id: "CSCV-MASK-POPCNT",
                block: Some(bi),
                detail,
            })
        };
        if m.variant == Variant::Z {
            if !b.masks.is_empty() {
                err(format!("CSCV-Z block carries {} mask bytes", b.masks.len()));
            }
            continue;
        }
        if b.val_ptr.len() != b.vxg_count.len() + 1 {
            continue; // reported by CSCV-VXG-BOUNDS
        }
        let lane_blocks: usize = b.vxg_count.iter().map(|&c| c as usize * m.g).sum();
        if b.masks.len() != lane_blocks * m.mask_bytes {
            err(format!(
                "{} mask bytes for {lane_blocks} lane blocks of {} bytes each",
                b.masks.len(),
                m.mask_bytes
            ));
            continue;
        }
        let mut mask_at = 0usize;
        'vxg: for i in 0..b.vxg_count.len() {
            let blocks_here = b.vxg_count[i] as usize * m.g;
            let mut pop = 0usize;
            for lb in 0..blocks_here {
                let bytes =
                    &b.masks[mask_at + lb * m.mask_bytes..mask_at + (lb + 1) * m.mask_bytes];
                let mut mask = 0u32;
                for (k, &byte) in bytes.iter().enumerate() {
                    mask |= (byte as u32) << (8 * k);
                }
                if m.w < 32 && (mask >> m.w) != 0 {
                    err(format!(
                        "VxG {i} lane block {lb} sets mask bits at or above lane {}",
                        m.w
                    ));
                    break 'vxg;
                }
                pop += mask.count_ones() as usize;
            }
            let span = (b.val_ptr[i + 1] - b.val_ptr[i]) as usize;
            if pop != span {
                err(format!(
                    "VxG {i} mask popcount {pop} != stored element count {span}"
                ));
                break;
            }
            mask_at += blocks_here * m.mask_bytes;
        }
    }
}

fn check_pad_zero(m: &MatrixView, sink: &mut dyn FnMut(Violation)) {
    for (bi, b) in m.blocks.iter().enumerate() {
        let mut err = |detail: String| {
            sink(Violation {
                id: "CSCV-PAD-ZERO",
                block: Some(bi),
                detail,
            })
        };
        match m.variant {
            Variant::Z => {
                if b.vals_len != b.lane_slots {
                    err(format!(
                        "CSCV-Z stores {} values for {} lane slots",
                        b.vals_len, b.lane_slots
                    ));
                }
                let nonzero = b.vals_len - b.zero_vals;
                if nonzero > b.nnz {
                    err(format!(
                        "{nonzero} nonzero stored values exceed the block's {} original nonzeros",
                        b.nnz
                    ));
                }
            }
            Variant::M => {
                if b.zero_vals != 0 {
                    err(format!(
                        "CSCV-M stream contains {} explicit zeros (padding must be mask-removed)",
                        b.zero_vals
                    ));
                }
            }
        }
    }
}

fn check_stats(m: &MatrixView, sink: &mut dyn FnMut(Violation)) {
    let mut err = |detail: String| {
        sink(Violation {
            id: "CSCV-STATS",
            block: None,
            detail,
        })
    };
    let s = &m.stats;
    if s.lane_slots != s.nnz_orig + s.ioblr_padding + s.vxg_padding {
        err(format!(
            "lane_slots {} != nnz_orig {} + ioblr_padding {} + vxg_padding {}",
            s.lane_slots, s.nnz_orig, s.ioblr_padding, s.vxg_padding
        ));
    }
    if s.n_blocks != m.blocks.len() {
        err(format!(
            "n_blocks {} != actual block count {}",
            s.n_blocks,
            m.blocks.len()
        ));
    }
    let nnz_sum: usize = m.blocks.iter().map(|b| b.nnz).sum();
    if nnz_sum != s.nnz_orig {
        err(format!(
            "nnz_orig {} != sum of block nnz {nnz_sum}",
            s.nnz_orig
        ));
    }
    let slot_sum: usize = m.blocks.iter().map(|b| b.lane_slots).sum();
    if slot_sum != s.lane_slots {
        err(format!(
            "lane_slots {} != sum of block lane slots {slot_sum}",
            s.lane_slots
        ));
    }
    let vxg_sum: usize = m.blocks.iter().map(|b| b.vxg_q.len()).sum();
    if vxg_sum != s.n_vxg {
        err(format!("n_vxg {} != actual VxG count {vxg_sum}", s.n_vxg));
    }
    let ytil = m.blocks.iter().map(|b| b.map.len()).max().unwrap_or(0);
    if ytil != m.max_ytil {
        err(format!(
            "max_ytil {} != largest block ỹ length {ytil}",
            m.max_ytil
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use crate::layout::{ImageShape, SinoLayout};
    use crate::params::CscvParams;
    use cscv_sparse::{Coo, Csc};

    fn ct_like(
        n_views: usize,
        n_bins: usize,
        nx: usize,
        ny: usize,
    ) -> (Csc<f64>, SinoLayout, ImageShape) {
        let layout = SinoLayout { n_views, n_bins };
        let img = ImageShape { nx, ny };
        let mut coo = Coo::new(layout.n_rows(), img.n_pixels());
        for col in 0..img.n_pixels() {
            for v in 0..n_views {
                let base = (v + col) % (n_bins - 1);
                coo.push(layout.row_index(v, base), col, 1.0 + col as f64 * 0.01);
                coo.push(layout.row_index(v, base + 1), col, 0.5);
            }
        }
        (coo.to_csc(), layout, img)
    }

    fn build_pair() -> (CscvMatrix<f64>, CscvMatrix<f64>) {
        let (csc, layout, img) = ct_like(9, 14, 5, 4);
        let p = CscvParams::new(4, 4, 2);
        (
            build(&csc, layout, img, p, Variant::Z),
            build(&csc, layout, img, p, Variant::M),
        )
    }

    fn ids(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.id).collect()
    }

    #[test]
    fn catalog_ids_are_unique_and_named() {
        let mut seen = std::collections::HashSet::new();
        for inv in CATALOG {
            assert!(seen.insert(inv.id), "duplicate catalog id {}", inv.id);
            assert!(inv.id.starts_with("CSCV-"));
            assert!(!inv.desc.is_empty());
            assert!(by_id(inv.id).is_some());
        }
        assert!(by_id("CSCV-NOPE").is_none());
    }

    #[test]
    fn built_matrices_pass_full_validation() {
        let (z, m) = build_pair();
        assert!(z.validate_full().is_ok());
        assert!(m.validate_full().is_ok());
        assert_valid(&z, "test");
        assert_valid(&m, "test");
    }

    #[test]
    fn corrupt_map_duplicate_row_is_cscv_perm() {
        let (mut z, _) = build_pair();
        // Point one slot at another slot's row.
        let b = &mut z.blocks[0];
        let existing = b
            .map
            .iter()
            .copied()
            .filter(|&r| r >= 0)
            .collect::<Vec<_>>();
        let dup = existing[0];
        let victim = b.map.iter().position(|&r| r >= 0 && r != dup).unwrap();
        b.map[victim] = dup;
        let errs = z.validate_full().unwrap_err();
        assert!(ids(&errs).contains(&"CSCV-PERM"), "got {:?}", ids(&errs));
    }

    #[test]
    fn corrupt_map_out_of_group_is_cscv_map_range() {
        let (mut z, _) = build_pair();
        // Rows of the *last* group are outside group 0's range.
        let bad_row = (z.n_rows - 1) as i32;
        let b = &mut z.blocks[0];
        let victim = b.map.iter().position(|&r| r >= 0).unwrap();
        b.map[victim] = bad_row;
        let errs = z.validate_full().unwrap_err();
        assert!(
            ids(&errs).contains(&"CSCV-MAP-RANGE"),
            "got {:?}",
            ids(&errs)
        );
    }

    #[test]
    fn corrupt_vxg_count_order_is_cscv_vxg_sort() {
        let (mut z, _) = build_pair();
        let bi = z
            .blocks
            .iter()
            .position(|b| b.vxg_count.len() >= 2)
            .expect("a block with two VxGs");
        // Swapping counts breaks the Fig. 6b ordering (and usually
        // VALPTR agreement too — we only require the SORT id to appear).
        z.blocks[bi].vxg_count.reverse();
        if z.blocks[bi].vxg_count.windows(2).all(|w| w[0] <= w[1]) {
            // All counts equal: force a strict inversion instead.
            z.blocks[bi].vxg_count[0] += 1;
            z.blocks[bi].vxg_count.reverse();
        }
        let errs = z.validate_full().unwrap_err();
        assert!(
            ids(&errs).contains(&"CSCV-VXG-SORT"),
            "got {:?}",
            ids(&errs)
        );
    }

    #[test]
    fn corrupt_val_ptr_is_cscv_valptr() {
        let (mut z, _) = build_pair();
        *z.blocks[0].val_ptr.last_mut().unwrap() += 1;
        let errs = z.validate_full().unwrap_err();
        assert!(ids(&errs).contains(&"CSCV-VALPTR"), "got {:?}", ids(&errs));
    }

    #[test]
    fn corrupt_mask_is_cscv_mask_popcnt() {
        let (_, mut m) = build_pair();
        let bi = m.blocks.iter().position(|b| !b.masks.is_empty()).unwrap();
        // Flip a low mask bit: popcount no longer matches the stream.
        m.blocks[bi].masks[0] ^= 0b1;
        let errs = m.validate_full().unwrap_err();
        assert!(
            ids(&errs).contains(&"CSCV-MASK-POPCNT"),
            "got {:?}",
            ids(&errs)
        );
    }

    #[test]
    fn zero_in_m_stream_is_cscv_pad_zero() {
        let (_, mut m) = build_pair();
        let bi = m.blocks.iter().position(|b| !b.vals.is_empty()).unwrap();
        m.blocks[bi].vals[0] = 0.0;
        let errs = m.validate_full().unwrap_err();
        assert!(
            ids(&errs).contains(&"CSCV-PAD-ZERO"),
            "got {:?}",
            ids(&errs)
        );
    }

    #[test]
    fn corrupt_stats_is_cscv_stats_warning() {
        let (mut z, _) = build_pair();
        z.stats.ioblr_padding += 1;
        let errs = z.validate_full().unwrap_err();
        assert!(ids(&errs).contains(&"CSCV-STATS"), "got {:?}", ids(&errs));
        assert_eq!(by_id("CSCV-STATS").unwrap().severity, Severity::Warning);
    }

    #[test]
    fn corrupt_group_nnz_is_cscv_groups() {
        let (mut z, _) = build_pair();
        z.groups[0].nnz += 1;
        let errs = z.validate_full().unwrap_err();
        assert!(ids(&errs).contains(&"CSCV-GROUPS"), "got {:?}", ids(&errs));
    }

    #[test]
    fn layer_display_names() {
        assert_eq!(Layer::Ioblr.to_string(), "ioblr");
        assert_eq!(Layer::Stream.to_string(), "stream");
    }
}
