//! The CSCV storage format.
//!
//! A [`CscvMatrix`] is a collection of [`Block`]s — one per (image tile ×
//! view group) pair that contains nonzeros. Each block stores:
//!
//! * the local **ỹ scatter map** `ι_k` (paper Alg. 3): reordered slot →
//!   global row (or `-1` for slots that fall off the detector / view
//!   range — those only ever receive padding-zero contributions);
//! * its **VxG**s: per group a start slot `q`, an offset count, `S_VxG`
//!   column indices, and a value-stream pointer;
//! * the value stream — full `S_VVec`-lane blocks for CSCV-Z, or
//!   mask-compressed nonzeros (+ occupancy masks) for CSCV-M.
//!
//! Value layout inside a VxG is offset-major: for each curve offset, the
//! `S_VxG` member columns' lane blocks follow each other, so the kernel
//! loads the `ỹ` accumulator once per offset and applies `S_VxG` FMAs.

use crate::layout::SinoLayout;
use crate::params::CscvParams;
use cscv_simd::Scalar;

/// Which padding treatment the value stream uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Padding zeros stored (full lane blocks).
    Z,
    /// Padding removed; per-lane-block occupancy masks.
    M,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::Z => write!(f, "CSCV-Z"),
            Variant::M => write!(f, "CSCV-M"),
        }
    }
}

/// One (tile × view group) block in CSCV form.
#[derive(Debug, Clone)]
pub struct Block<T> {
    /// View-group index this block belongs to.
    pub group: u32,
    /// Image-tile index this block belongs to (blocks of one tile touch
    /// a fixed column set — the transpose kernel's partitioning axis).
    pub tile: u32,
    /// ỹ scatter map: slot → global row, or `-1` if the slot has no
    /// physical row (off-detector offset or padded lane).
    // DOMAIN(PermutedPos -> RowId)
    pub map: Vec<i32>,
    /// Per VxG: start slot in ỹ.
    pub vxg_q: Vec<u32>,
    /// Per VxG: number of curve offsets covered.
    pub vxg_count: Vec<u16>,
    /// Per VxG: `S_VxG` member column ids (padded members point at column
    /// 0 with all-zero values — contributing nothing).
    // DOMAIN(_ -> ColId)
    pub cols: Vec<u32>,
    /// Per VxG: start element in `vals` (`n_vxg + 1` prefix).
    // DOMAIN(_ -> NnzIdx)
    pub val_ptr: Vec<u32>,
    /// Value stream (layout per variant — see module docs).
    pub vals: Vec<T>,
    /// CSCV-M only: occupancy masks, `ceil(S_VVec/8)` bytes per lane
    /// block, little-endian.
    pub masks: Vec<u8>,
    /// Original nonzeros in this block.
    pub nnz: usize,
    /// Total lane slots (CSCVE slots incl. padding) in this block.
    pub lane_slots: usize,
}

impl<T> Block<T> {
    pub fn n_vxgs(&self) -> usize {
        self.vxg_q.len()
    }

    /// ỹ length this block needs.
    pub fn ytil_len(&self) -> usize {
        self.map.len()
    }

    /// Bytes of matrix data one pass over this block streams: values,
    /// masks, scatter map, VxG descriptors, plus a 16-byte block header.
    /// [`CscvMatrix::matrix_bytes`] is the sum of these, so per-block
    /// counted traffic and the `M_Rit` model share one definition.
    pub fn matrix_bytes(&self) -> usize {
        self.vals.len() * std::mem::size_of::<T>()
            + self.masks.len()
            + self.map.len() * 4
            + self.vxg_q.len() * 4
            + self.vxg_count.len() * 2
            + self.cols.len() * 4
            + self.val_ptr.len() * 4
            + 16
    }
}

/// Aggregate build statistics (drives the paper's Fig. 8 and Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CscvStats {
    pub nnz_orig: usize,
    /// Total CSCVE lane slots incl. padding (= stored values for CSCV-Z).
    pub lane_slots: usize,
    /// Padding introduced by IOBLR (per-column offset spans).
    pub ioblr_padding: usize,
    /// Extra padding from aligning columns inside VxGs (Fig. 6's red
    /// groups).
    pub vxg_padding: usize,
    pub n_cscve: usize,
    pub n_vxg: usize,
    pub n_blocks: usize,
}

impl CscvStats {
    /// Zero-padding rate `R_nnzE = nnz(Ã)/nnz(A) − 1`.
    pub fn r_nnze(&self) -> f64 {
        if self.nnz_orig == 0 {
            0.0
        } else {
            self.lane_slots as f64 / self.nnz_orig as f64 - 1.0
        }
    }
}

/// A matrix in CSCV format (either variant).
#[derive(Debug, Clone)]
pub struct CscvMatrix<T> {
    pub n_rows: usize,
    pub n_cols: usize,
    pub layout: SinoLayout,
    pub params: CscvParams,
    pub variant: Variant,
    /// Blocks, sorted by view group.
    pub blocks: Vec<Block<T>>,
    /// Per view group: range of `blocks`, the group's global row range,
    /// and its nnz (for load balancing).
    // DOMAIN(GroupId)
    pub groups: Vec<GroupInfo>,
    pub stats: CscvStats,
    /// Largest `ytil_len` over all blocks (scratch sizing).
    pub max_ytil: usize,
}

/// Per-view-group metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupInfo {
    /// Range into `CscvMatrix::blocks`.
    pub block_range: std::ops::Range<usize>,
    /// Global row range `[view_start·n_bins, view_end·n_bins)`.
    pub row_range: std::ops::Range<usize>,
    /// Nonzeros in the group (balancing weight).
    pub nnz: usize,
}

impl<T: Scalar> CscvMatrix<T> {
    /// Bytes per occupancy mask for this lane width.
    pub fn mask_bytes(&self) -> usize {
        self.params.s_vvec.div_ceil(8)
    }

    /// Stored values (lane slots for Z, true nonzeros for M).
    pub fn nnz_stored_vals(&self) -> usize {
        self.blocks.iter().map(|b| b.vals.len()).sum()
    }

    /// `M(A)`: bytes of matrix data the kernel reads per SpMV (the sum
    /// of every block's [`Block::matrix_bytes`]).
    pub fn matrix_bytes(&self) -> usize {
        self.blocks.iter().map(Block::matrix_bytes).sum()
    }

    /// Consistency checks (used by tests and the builder's debug path).
    pub fn validate(&self) {
        let w = self.params.s_vvec;
        let g = self.params.s_vxg;
        assert_eq!(self.layout.n_rows(), self.n_rows);
        let mut blocks_seen = 0;
        for (gi, info) in self.groups.iter().enumerate() {
            assert_eq!(info.block_range.start, blocks_seen);
            blocks_seen = info.block_range.end;
            for b in &self.blocks[info.block_range.clone()] {
                assert_eq!(b.group as usize, gi);
                assert_eq!(b.map.len() % w, 0, "map is whole lane blocks");
                let n = b.n_vxgs();
                assert_eq!(b.vxg_count.len(), n);
                assert_eq!(b.cols.len(), n * g);
                assert_eq!(b.val_ptr.len(), n + 1);
                for i in 0..n {
                    let q = b.vxg_q[i] as usize;
                    let count = b.vxg_count[i] as usize;
                    assert!(q + count * w <= b.map.len(), "VxG inside ỹ");
                    let lane_blocks = count * g;
                    match self.variant {
                        Variant::Z => {
                            assert_eq!((b.val_ptr[i + 1] - b.val_ptr[i]) as usize, lane_blocks * w)
                        }
                        Variant::M => {
                            assert!((b.val_ptr[i + 1] - b.val_ptr[i]) as usize <= lane_blocks * w);
                        }
                    }
                }
                assert_eq!(*b.val_ptr.last().unwrap() as usize, b.vals.len());
                if self.variant == Variant::M {
                    let lane_blocks: usize = (0..n).map(|i| b.vxg_count[i] as usize * g).sum();
                    assert_eq!(b.masks.len(), lane_blocks * self.mask_bytes());
                } else {
                    assert!(b.masks.is_empty());
                }
                for &row in &b.map {
                    assert!(row == -1 || (row as usize) < self.n_rows);
                    if row >= 0 {
                        assert!(
                            info.row_range.contains(&(row as usize)),
                            "map rows stay inside the group's row range"
                        );
                    }
                }
            }
        }
        assert_eq!(blocks_seen, self.blocks.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_r_nnze() {
        let s = CscvStats {
            nnz_orig: 100,
            lane_slots: 140,
            ioblr_padding: 30,
            vxg_padding: 10,
            n_cscve: 20,
            n_vxg: 10,
            n_blocks: 2,
        };
        assert!((s.r_nnze() - 0.4).abs() < 1e-12);
        let empty = CscvStats::default();
        assert_eq!(empty.r_nnze(), 0.0);
    }

    #[test]
    fn variant_names() {
        assert_eq!(Variant::Z.to_string(), "CSCV-Z");
        assert_eq!(Variant::M.to_string(), "CSCV-M");
    }
}
