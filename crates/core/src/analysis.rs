//! Quantitative versions of the paper's §III trade-off metrics.
//!
//! §III frames vectorized CSC-style SpMV as a tension between two
//! quantities:
//!
//! * **permutation instruction consistency** — how much work each
//!   gather/scatter of `y` is amortized over ("the same set of
//!   permutation instructions used for as many columns as possible");
//! * **zero element access rate** — the fraction of multiplied elements
//!   that are padding zeros.
//!
//! A naive vectorized CSC (paper Alg. 2) permutes per column segment
//! (consistency ≈ 1 lane block per permutation) with no padding; dense
//! blocking permutes nothing but pads heavily. CSCV's IOBLR sits in
//! between: one permutation per *block*, amortized over every column of
//! the tile, at a bounded padding rate. These metrics quantify exactly
//! that positioning and feed the ablation driver.

use crate::format::CscvMatrix;
use cscv_simd::Scalar;

/// Permutation-cost accounting for one SpMV execution scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PermutationCost {
    /// Elements moved by gather/scatter (`y`-permutation traffic).
    pub permuted_elements: usize,
    /// Permuted elements per useful nonzero (lower = more consistent).
    pub per_nonzero: f64,
}

/// CSCV's permutation cost: each block gathers/scatters its `ỹ` once
/// (`2·ytil_len` element moves), amortized over all its nonzeros.
pub fn cscv_permutation_cost<T: Scalar>(m: &CscvMatrix<T>) -> PermutationCost {
    let permuted: usize = m.blocks.iter().map(|b| 2 * b.ytil_len()).sum();
    PermutationCost {
        permuted_elements: permuted,
        per_nonzero: if m.stats.nnz_orig == 0 {
            0.0
        } else {
            permuted as f64 / m.stats.nnz_orig as f64
        },
    }
}

/// The naive vectorized-CSC cost model (paper Alg. 2): every
/// `S_VVec`-long column segment gathers and scatters its own `y` lanes —
/// 2 moves per stored lane slot, i.e. ≈ 2 per nonzero with no reuse.
pub fn csc_alg2_permutation_cost(nnz: usize, s_vvec: usize) -> PermutationCost {
    // Segments of `s_vvec` lanes, each gathered and scattered once.
    let segments = nnz.div_ceil(s_vvec.max(1));
    let permuted = 2 * segments * s_vvec;
    PermutationCost {
        permuted_elements: permuted,
        per_nonzero: if nnz == 0 {
            0.0
        } else {
            permuted as f64 / nnz as f64
        },
    }
}

/// Zero element access rate: padding slots / all accessed slots.
pub fn zero_access_rate<T: Scalar>(m: &CscvMatrix<T>) -> f64 {
    if m.stats.lane_slots == 0 {
        return 0.0;
    }
    (m.stats.lane_slots - m.stats.nnz_orig) as f64 / m.stats.lane_slots as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use crate::format::Variant;
    use crate::layout::{ImageShape, SinoLayout};
    use crate::params::CscvParams;
    use cscv_sparse::Coo;

    fn ct_like() -> CscvMatrix<f64> {
        let layout = SinoLayout {
            n_views: 16,
            n_bins: 24,
        };
        let img = ImageShape { nx: 8, ny: 8 };
        let mut coo = Coo::new(layout.n_rows(), 64);
        for col in 0..64usize {
            for v in 0..16usize {
                let b = (v + col / 4) % 22;
                coo.push(layout.row_index(v, b), col, 1.0);
                coo.push(layout.row_index(v, b + 1), col, 0.5);
            }
        }
        build(
            &coo.to_csc(),
            layout,
            img,
            CscvParams::new(4, 8, 2),
            Variant::Z,
        )
    }

    #[test]
    fn cscv_is_far_more_consistent_than_alg2() {
        let m = ct_like();
        let cscv = cscv_permutation_cost(&m);
        let alg2 = csc_alg2_permutation_cost(m.stats.nnz_orig, 8);
        // Alg. 2 permutes ~2 elements per nonzero; CSCV amortizes the
        // block map over a whole tile.
        assert!(alg2.per_nonzero >= 2.0);
        assert!(
            cscv.per_nonzero < alg2.per_nonzero,
            "cscv {} vs alg2 {}",
            cscv.per_nonzero,
            alg2.per_nonzero
        );
        // With larger tiles the block map amortizes much further.
        let layout = m.layout;
        let img = ImageShape { nx: 8, ny: 8 };
        let mut coo = Coo::new(layout.n_rows(), 64);
        for col in 0..64usize {
            for v in 0..16usize {
                let b = (v + col / 4) % 22;
                coo.push(layout.row_index(v, b), col, 1.0);
                coo.push(layout.row_index(v, b + 1), col, 0.5);
            }
        }
        let big = build(
            &coo.to_csc(),
            layout,
            img,
            CscvParams::new(8, 8, 2),
            Variant::Z,
        );
        let c_big = cscv_permutation_cost(&big).per_nonzero;
        assert!(
            c_big < alg2.per_nonzero / 3.0,
            "8x8 tiles: {c_big} vs alg2 {}",
            alg2.per_nonzero
        );
    }

    #[test]
    fn zero_access_consistent_with_stats() {
        let m = ct_like();
        let z = zero_access_rate(&m);
        let r = m.stats.r_nnze();
        // z = r/(1+r) algebraically.
        assert!((z - r / (1.0 + r)).abs() < 1e-12);
        assert!((0.0..1.0).contains(&z));
    }

    #[test]
    fn trade_off_direction() {
        // Larger tiles: better consistency (more columns per map), worse
        // zero access rate — the §III tension, measurably.
        let layout = SinoLayout {
            n_views: 8,
            n_bins: 64,
        };
        let img = ImageShape { nx: 16, ny: 16 };
        let mut coo = Coo::new(layout.n_rows(), 256);
        for col in 0..256usize {
            for v in 0..8usize {
                let b = (2 * v + col % 16) % 63;
                coo.push(layout.row_index(v, b), col, 1.0);
            }
        }
        let csc = coo.to_csc();
        let small = build(&csc, layout, img, CscvParams::new(2, 8, 1), Variant::Z);
        let large = build(&csc, layout, img, CscvParams::new(16, 8, 1), Variant::Z);
        let c_small = cscv_permutation_cost(&small).per_nonzero;
        let c_large = cscv_permutation_cost(&large).per_nonzero;
        assert!(
            c_large < c_small,
            "large tiles amortize: {c_large} vs {c_small}"
        );
        assert!(zero_access_rate(&large) >= zero_access_rate(&small));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(csc_alg2_permutation_cost(0, 8).per_nonzero, 0.0);
    }
}
