//! Sinogram row layout and image tiling descriptors.
//!
//! CSCV needs to know how matrix rows map to `(view, bin)` pairs and how
//! columns map to image pixels; these two small structs carry exactly
//! that, keeping `cscv-core` independent of the CT generator crate.

/// Row layout of an integral-operator matrix: `row = view·n_bins + bin`
/// (bin fastest — the sinogram's bin-major order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinoLayout {
    pub n_views: usize,
    pub n_bins: usize,
}

impl SinoLayout {
    pub fn n_rows(&self) -> usize {
        self.n_views * self.n_bins
    }

    #[inline]
    pub fn row_index(&self, view: usize, bin: usize) -> usize {
        debug_assert!(view < self.n_views && bin < self.n_bins);
        view * self.n_bins + bin
    }

    #[inline]
    pub fn ray_of_row(&self, row: usize) -> (usize, usize) {
        debug_assert!(row < self.n_rows());
        (row / self.n_bins, row % self.n_bins)
    }
}

/// Column layout: pixel `(ix, iy)` is column `iy·nx + ix`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageShape {
    pub nx: usize,
    pub ny: usize,
}

impl ImageShape {
    pub fn n_pixels(&self) -> usize {
        self.nx * self.ny
    }

    #[inline]
    pub fn col_index(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny);
        iy * self.nx + ix
    }

    #[inline]
    pub fn pixel_of_col(&self, col: usize) -> (usize, usize) {
        debug_assert!(col < self.n_pixels());
        (col % self.nx, col / self.nx)
    }
}

/// One image tile of the block decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tile {
    pub x0: usize,
    pub y0: usize,
    pub w: usize,
    pub h: usize,
}

impl Tile {
    /// Column indices of the tile's pixels, row-major within the tile.
    pub fn cols(&self, img: &ImageShape) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.w * self.h);
        for iy in self.y0..self.y0 + self.h {
            for ix in self.x0..self.x0 + self.w {
                out.push(img.col_index(ix, iy));
            }
        }
        out
    }

    /// The tile's center pixel — IOBLR's reference pixel.
    pub fn center(&self) -> (usize, usize) {
        (self.x0 + self.w / 2, self.y0 + self.h / 2)
    }
}

/// Split an image into `s_imgb × s_imgb` tiles (edge tiles may be
/// smaller).
pub fn tiles(img: &ImageShape, s_imgb: usize) -> Vec<Tile> {
    assert!(s_imgb >= 1);
    let mut out = Vec::new();
    let mut y0 = 0;
    while y0 < img.ny {
        let h = s_imgb.min(img.ny - y0);
        let mut x0 = 0;
        while x0 < img.nx {
            let w = s_imgb.min(img.nx - x0);
            out.push(Tile { x0, y0, w, h });
            x0 += w;
        }
        y0 += h;
    }
    // Postcondition feeding invariant CSCV-GROUPS: the tiles must cover
    // every pixel exactly once (blocks would otherwise drop or
    // double-count columns).
    #[cfg(feature = "check-invariants")]
    {
        let mut seen = vec![false; img.n_pixels()];
        for t in &out {
            for c in t.cols(img) {
                assert!(!seen[c], "tiles(): pixel {c} covered twice");
                seen[c] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "tiles(): not every pixel is covered"
        );
    }
    out
}

/// View groups of `s_vvec` consecutive views (last may be partial).
pub fn view_groups(n_views: usize, s_vvec: usize) -> Vec<std::ops::Range<usize>> {
    assert!(s_vvec >= 1);
    let out: Vec<std::ops::Range<usize>> = (0..n_views.div_ceil(s_vvec))
        .map(|g| g * s_vvec..((g + 1) * s_vvec).min(n_views))
        .collect();
    // Postcondition feeding invariant CSCV-GROUPS: groups must be a
    // contiguous non-empty partition of 0..n_views.
    #[cfg(feature = "check-invariants")]
    {
        let mut next = 0usize;
        for g in &out {
            assert_eq!(g.start, next, "view_groups(): gap before view {next}");
            assert!(g.end > g.start, "view_groups(): empty group at {next}");
            next = g.end;
        }
        assert_eq!(next, n_views, "view_groups(): views {next}.. uncovered");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sino_roundtrip() {
        let l = SinoLayout {
            n_views: 5,
            n_bins: 7,
        };
        assert_eq!(l.n_rows(), 35);
        for r in 0..35 {
            let (v, b) = l.ray_of_row(r);
            assert_eq!(l.row_index(v, b), r);
        }
        assert_eq!(l.row_index(1, 0), 7); // bin-fastest
    }

    #[test]
    fn image_roundtrip() {
        let img = ImageShape { nx: 6, ny: 4 };
        for c in 0..24 {
            let (ix, iy) = img.pixel_of_col(c);
            assert_eq!(img.col_index(ix, iy), c);
        }
    }

    #[test]
    fn tiles_cover_image_exactly() {
        let img = ImageShape { nx: 10, ny: 7 };
        let ts = tiles(&img, 4);
        let mut seen = [false; 70];
        for t in &ts {
            for c in t.cols(&img) {
                assert!(!seen[c], "tile overlap at col {c}");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // 3 x-tiles (4,4,2) × 2 y-tiles (4,3).
        assert_eq!(ts.len(), 6);
    }

    #[test]
    fn tile_center_is_middle_pixel() {
        let t = Tile {
            x0: 4,
            y0: 8,
            w: 4,
            h: 4,
        };
        assert_eq!(t.center(), (6, 10));
        let edge = Tile {
            x0: 0,
            y0: 0,
            w: 1,
            h: 3,
        };
        assert_eq!(edge.center(), (0, 1));
    }

    #[test]
    fn view_groups_cover_views() {
        let gs = view_groups(10, 4);
        assert_eq!(gs, vec![0..4, 4..8, 8..10]);
        let exact = view_groups(8, 4);
        assert_eq!(exact, vec![0..4, 4..8]);
        let one = view_groups(3, 8);
        assert_eq!(one, vec![0..3]);
    }
}
