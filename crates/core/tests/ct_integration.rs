//! CSCV on real CT system matrices — the paper's actual workload.
//!
//! These tests tie the contribution to the substrate: matrices from the
//! parallel-beam generator, CSCV built with paper parameters, results
//! checked against the CSR reference, and structural claims (padding
//! rate band, index compression) verified.

use cscv_core::layout::ImageShape;
use cscv_core::{build, CscvExec, CscvParams, ParallelStrategy, SinoLayout, Variant};
use cscv_ct::system::SystemMatrix;
use cscv_ct::CtGeometry;
use cscv_sparse::dense::assert_vec_close;
use cscv_sparse::{SpmvExecutor, ThreadPool};

fn setup(
    n: usize,
    bins: usize,
    views: usize,
    delta: f64,
) -> (CtGeometry, cscv_sparse::Csc<f32>, SinoLayout, ImageShape) {
    let ct = CtGeometry::standard(n, bins, views, 0.0, delta);
    let csc = SystemMatrix::assemble_csc::<f32>(&ct);
    let layout = SinoLayout {
        n_views: views,
        n_bins: bins,
    };
    let img = ImageShape { nx: n, ny: n };
    (ct, csc, layout, img)
}

#[test]
fn cscv_matches_csr_on_ct_matrix() {
    let (_, csc, layout, img) = setup(48, 70, 24, 7.5);
    let csr = csc.to_csr();
    let x: Vec<f32> = (0..csc.n_cols())
        .map(|i| ((i * 37) % 11) as f32 * 0.125)
        .collect();
    let mut y_ref = vec![0.0f32; csc.n_rows()];
    csr.spmv_serial(&x, &mut y_ref);

    for variant in [Variant::Z, Variant::M] {
        for params in [
            CscvParams::new(8, 8, 2),
            CscvParams::new(16, 16, 2),
            CscvParams::new(16, 4, 4),
        ] {
            let m = build(&csc, layout, img, params, variant);
            m.validate();
            for strategy in [ParallelStrategy::ViewGroups, ParallelStrategy::LocalCopies] {
                let exec = CscvExec::with_strategy(m.clone(), strategy);
                for threads in [1, 3] {
                    let pool = ThreadPool::new(threads);
                    let mut y = vec![f32::NAN; csc.n_rows()];
                    exec.spmv(&x, &mut y, &pool);
                    assert_vec_close(&y, &y_ref, 2e-4);
                }
            }
        }
    }
}

#[test]
fn padding_rate_in_paper_band() {
    // Paper §IV-C: "the zero-padding rate is mostly about 25%–45% in our
    // experiments" for the production parameter choices.
    let (_, csc, layout, img) = setup(64, 92, 32, 0.375);
    for params in [CscvParams::default_z(), CscvParams::default_m()] {
        let m = build(&csc, layout, img, params, Variant::Z);
        let r = m.stats.r_nnze();
        assert!(
            r > 0.10 && r < 0.60,
            "R_nnzE {r:.3} outside plausible band for {params}"
        );
    }
}

#[test]
fn padding_grows_with_simgb_and_svvec() {
    // Paper Fig. 8: R_nnzE increases with S_ImgB and with S_VVec.
    let (_, csc, layout, img) = setup(64, 92, 32, 0.375);
    let r = |imgb: usize, vvec: usize| {
        build(
            &csc,
            layout,
            img,
            CscvParams::new(imgb, vvec, 1),
            Variant::Z,
        )
        .stats
        .r_nnze()
    };
    let r_small = r(8, 4);
    let r_big_tile = r(32, 4);
    let r_big_vec = r(8, 16);
    assert!(
        r_big_tile > r_small,
        "larger tiles must pad more: {r_big_tile} vs {r_small}"
    );
    assert!(
        r_big_vec > r_small,
        "wider vectors must pad more: {r_big_vec} vs {r_small}"
    );
}

#[test]
fn index_data_much_smaller_than_csc() {
    // Paper §IV-D: with VxGs the index volume is a few percent of CSC's
    // (one q/count per VxG versus one row id per nonzero).
    let (_, csc, layout, img) = setup(64, 92, 32, 0.375);
    let m = build(&csc, layout, img, CscvParams::new(32, 8, 4), Variant::Z);
    // CSCV index bytes: everything except the value stream.
    let exec = CscvExec::new(m);
    let value_bytes = exec.matrix().nnz_stored_vals() * 4;
    let index_bytes = exec.matrix_bytes() - value_bytes;
    let csc_index_bytes = csc.nnz() * 4; // row ids only, charitable to CSC
    let ratio = index_bytes as f64 / csc_index_bytes as f64;
    assert!(ratio < 0.30, "index ratio {ratio:.3} not small");
}

#[test]
fn mask_bytes_halve_from_vvec4_to_vvec8() {
    // Paper §V-D: "when S_VVec changes from 4 to 8, the memory required
    // by CSCV-M is reduced because the effective number of bits per mask
    // byte doubles" — both widths use 1-byte masks, but W=8 needs half
    // as many lane blocks per nonzero.
    let (_, csc, layout, img) = setup(48, 70, 16, 0.75);
    let m4 = build(&csc, layout, img, CscvParams::new(16, 4, 2), Variant::M);
    let m8 = build(&csc, layout, img, CscvParams::new(16, 8, 2), Variant::M);
    let masks4: usize = m4.blocks.iter().map(|b| b.masks.len()).sum();
    let masks8: usize = m8.blocks.iter().map(|b| b.masks.len()).sum();
    assert!(
        (masks8 as f64) < 0.9 * masks4 as f64,
        "mask bytes {masks8} vs {masks4}"
    );
}

#[test]
fn geometric_min_bin_curve_agrees_with_data_driven() {
    // The CT generator's analytic min-bin curve must coincide with the
    // data-driven curve CSCV derives from the matrix (where defined).
    let (ct, csc, layout, _) = setup(32, 46, 16, 11.25);
    for col in [0usize, 17, 512, 1023] {
        let geo = SystemMatrix::min_bin_curve(&ct, col);
        let data = cscv_core::ioblr::min_bin_per_view(&csc, &layout, col, &(0..16));
        for v in 0..16 {
            if let Some(b) = data[v] {
                let clamped = geo[v].max(0);
                // Boundary chords with ~0 weight may be dropped by the
                // generator, so the data-driven curve can sit one bin
                // inside the geometric support.
                let diff = b as i64 - clamped;
                assert!(
                    (0..=1).contains(&diff),
                    "col {col} view {v}: geometric {} vs data {}",
                    geo[v],
                    b
                );
            }
        }
    }
}

#[test]
fn limited_angle_dataset_builds_and_matches() {
    // The ct512la-style geometry (few views) exercises partial view
    // groups heavily.
    let ct = CtGeometry::standard(32, 46, 5, 0.0, 0.75);
    let csc = SystemMatrix::assemble_csc::<f64>(&ct);
    let layout = SinoLayout {
        n_views: 5,
        n_bins: 46,
    };
    let img = ImageShape { nx: 32, ny: 32 };
    let m = build(&csc, layout, img, CscvParams::new(8, 8, 2), Variant::M);
    m.validate();
    let exec = CscvExec::new(m);
    let x = vec![1.0f64; csc.n_cols()];
    let mut y_ref = vec![0.0; csc.n_rows()];
    csc.spmv_serial(&x, &mut y_ref);
    let pool = ThreadPool::new(2);
    let mut y = vec![f64::NAN; csc.n_rows()];
    exec.spmv(&x, &mut y, &pool);
    assert_vec_close(&y, &y_ref, 1e-11);
}
