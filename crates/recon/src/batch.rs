//! Batched reconstruction: many sinograms, one operator.
//!
//! Multi-slice CT reconstructs a stack of 2-D slices that all share the
//! same system matrix `A` — only the measured sinogram differs per
//! slice. Running the solvers slice-by-slice re-reads `A` from memory on
//! every projection; running them *batched* drives the whole stack
//! through [`LinearOperator::apply_multi`], so each iteration streams
//! the matrix once per register-tile chunk and the dominant
//! memory-traffic term is amortized `k`-fold (the paper's
//! `M_Rit`-model prediction, extended to `M_Rit(k) = M(A) + k·M(x,y)`).
//!
//! All batch buffers are packed column-major: slice `i`'s sinogram is
//! `b[i·n_rows .. (i+1)·n_rows]`, its image `x[i·n_cols .. (i+1)·n_cols]`.
//!
//! Convergence is tracked per slice. When a slice meets the tolerance it
//! is *retired*: its image is copied out and the trailing active slice
//! is swapped into its batch slot, shrinking the working batch width —
//! the remaining slices keep amortizing while finished ones stop paying
//! for projections (early-exit masking by compaction).

use crate::operators::LinearOperator;
use cscv_simd::lanes::norm2_sq;
use cscv_sparse::{Scalar, ThreadPool};

/// Result of a batched reconstruction run over `k` slices.
#[derive(Debug, Clone)]
pub struct BatchReconResult<T> {
    /// Reconstructed images, column-major (`k · n_cols`).
    pub x: Vec<T>,
    /// Per-slice residual norm `‖b_i − A x_i‖₂` after each of that
    /// slice's iterations (lengths differ once slices retire early).
    pub residual_histories: Vec<Vec<f64>>,
    /// Update steps actually applied to each slice.
    pub iterations: Vec<usize>,
    /// Image length of one slice (`n_cols` of the operator).
    pub slice_len: usize,
}

impl<T> BatchReconResult<T> {
    /// Number of slices in the batch.
    pub fn n_slices(&self) -> usize {
        self.residual_histories.len()
    }

    /// One slice's reconstructed image.
    pub fn slice(&self, i: usize) -> &[T] {
        &self.x[i * self.slice_len..(i + 1) * self.slice_len]
    }
}

/// Swap two equal-length segments of a column-major batch buffer.
fn swap_seg<T: Copy>(buf: &mut [T], len: usize, a: usize, b: usize) {
    if a == b {
        return;
    }
    let (lo, hi) = (a.min(b), a.max(b));
    let (left, right) = buf.split_at_mut(hi * len);
    left[lo * len..(lo + 1) * len].swap_with_slice(&mut right[..len]);
}

/// Shared per-slice convergence bookkeeping: slot→slice mapping, first
/// residuals, histories, and the retire-by-swap compaction.
struct BatchTracker<T: Scalar> {
    /// `slots[s]` = original slice index occupying batch slot `s`.
    slots: Vec<usize>,
    /// Active batch width (slots `0..k_active` are live).
    k_active: usize,
    initial: Vec<f64>,
    histories: Vec<Vec<f64>>,
    iterations: Vec<usize>,
    x_out: Vec<T>,
    n: usize,
}

impl<T: Scalar> BatchTracker<T> {
    fn new(k: usize, n: usize) -> Self {
        BatchTracker {
            slots: (0..k).collect(),
            k_active: k,
            initial: vec![f64::NAN; k],
            histories: vec![Vec::new(); k],
            iterations: vec![0; k],
            x_out: vec![T::ZERO; k * n],
            n,
        }
    }

    /// Record one residual norm for the slice in batch slot `s`; returns
    /// whether the slice has now converged under `tol` (relative to its
    /// first recorded residual; `tol = 0` never converges early).
    fn record(&mut self, s: usize, norm: f64, tol: f64) -> bool {
        let orig = self.slots[s];
        if self.initial[orig].is_nan() {
            self.initial[orig] = norm;
        }
        self.histories[orig].push(norm);
        if cscv_trace::ENABLED {
            cscv_trace::span::event(
                "batch.iter",
                &[
                    ("slice", orig as f64),
                    ("iter", (self.histories[orig].len() - 1) as f64),
                    ("residual", norm),
                ],
            );
        }
        tol > 0.0 && norm <= tol * self.initial[orig]
    }

    /// Count one applied update step for the slice in slot `s`.
    fn bump_iter(&mut self, s: usize) {
        self.iterations[self.slots[s]] += 1;
        if cscv_trace::ENABLED {
            cscv_trace::counters::add(cscv_trace::counters::Counter::SolverIters, 1);
        }
    }

    /// Retire the slice in slot `s`: copy its image out of the working
    /// batch and compact by swapping the last active slot into `s`.
    /// Every live column-major working buffer must be passed in
    /// `(buffer, segment_len)` pairs so its segments move in lockstep;
    /// by convention `bufs[0]` is the image buffer (`segment_len == n`).
    fn retire(&mut self, s: usize, bufs: &mut [(&mut [T], usize)]) {
        let orig = self.slots[s];
        debug_assert_eq!(bufs[0].1, self.n, "bufs[0] must be the image buffer");
        self.x_out[orig * self.n..(orig + 1) * self.n]
            .copy_from_slice(&bufs[0].0[s * self.n..(s + 1) * self.n]);
        let last = self.k_active - 1;
        for (buf, len) in bufs.iter_mut() {
            swap_seg(buf, *len, s, last);
        }
        self.slots.swap(s, last);
        self.k_active = last;
        if cscv_trace::ENABLED {
            cscv_trace::counters::add(cscv_trace::counters::Counter::SwapCompactions, 1);
            cscv_trace::span::event(
                "batch.retire",
                &[
                    ("slice", orig as f64),
                    ("slot", s as f64),
                    ("k_active", self.k_active as f64),
                ],
            );
        }
    }

    /// Close out the run: copy every still-active slice's image and
    /// return the assembled result.
    fn finish(mut self, x_work: &[T]) -> BatchReconResult<T> {
        for s in 0..self.k_active {
            let orig = self.slots[s];
            self.x_out[orig * self.n..(orig + 1) * self.n]
                .copy_from_slice(&x_work[s * self.n..(s + 1) * self.n]);
        }
        BatchReconResult {
            x: self.x_out,
            residual_histories: self.histories,
            iterations: self.iterations,
            slice_len: self.n,
        }
    }
}

/// Emit one `batch.sweep` timing event — one full matrix pass over the
/// active batch (forward + residual + transpose + update). No-op in
/// untraced builds.
fn record_sweep(sweep: usize, k_active: usize, t0: Option<std::time::Instant>) {
    if cscv_trace::ENABLED {
        let sweep_ms = t0.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3);
        cscv_trace::span::event(
            "batch.sweep",
            &[
                ("sweep", sweep as f64),
                ("k_active", k_active as f64),
                ("sweep_ms", sweep_ms),
            ],
        );
    }
}

/// Batched SIRT over `k` sinograms sharing one operator:
/// `x_i ← x_i + λ·C·Aᵀ·R·(b_i − A·x_i)` for all slices per matrix pass.
///
/// A slice retires once its residual drops to `tol` × its first
/// residual (`tol = 0` disables early exit and runs all `iterations`).
pub fn sirt_batch<T: Scalar>(
    op: &dyn LinearOperator<T>,
    b: &[T],
    k: usize,
    iterations: usize,
    relaxation: f64,
    tol: f64,
    pool: &ThreadPool,
) -> BatchReconResult<T> {
    let (m, n) = (op.n_rows(), op.n_cols());
    assert!(k > 0, "batch width must be positive");
    assert_eq!(b.len(), k * m);
    let lambda = T::from_f64(relaxation);
    let inv = |sums: Vec<T>| -> Vec<T> {
        sums.into_iter()
            .map(|s| if s == T::ZERO { T::ZERO } else { T::ONE / s })
            .collect()
    };
    let r_inv = inv(op.abs_row_sums(pool));
    let c_inv = inv(op.abs_col_sums(pool));

    let mut x = vec![T::ZERO; k * n];
    let mut ax = vec![T::ZERO; k * m];
    let mut resid = vec![T::ZERO; k * m];
    let mut back = vec![T::ZERO; k * n];
    let mut b_work = b.to_vec();
    let mut tr = BatchTracker::new(k, n);

    let _span = cscv_trace::span::enter("solver.sirt_batch");
    for sweep in 0..iterations {
        let ka = tr.k_active;
        if ka == 0 {
            break;
        }
        let t_sweep = cscv_trace::ENABLED.then(std::time::Instant::now);
        op.apply_multi(&x[..ka * n], ka, &mut ax[..ka * m], pool);
        let mut s = 0usize;
        while s < tr.k_active {
            let bs = &b_work[s * m..(s + 1) * m];
            let mut norm = 0.0f64;
            for i in 0..m {
                let r = bs[i] - ax[s * m + i];
                norm += r.to_f64() * r.to_f64();
                resid[s * m + i] = r * r_inv[i];
            }
            if tr.record(s, norm.sqrt(), tol) {
                // Converged before this update: freeze and compact. The
                // swapped-in slice re-enters at the same slot, so `s`
                // stays put; its ax/resid come from the old slot — swap
                // those too so the pending update still matches.
                tr.retire(
                    s,
                    &mut [(&mut x, n), (&mut b_work, m), (&mut ax, m), (&mut resid, m)],
                );
            } else {
                s += 1;
            }
        }
        let ka = tr.k_active;
        if ka == 0 {
            break;
        }
        op.apply_transpose_multi(&resid[..ka * m], ka, &mut back[..ka * n], pool);
        for s in 0..ka {
            for j in 0..n {
                x[s * n + j] = (lambda * c_inv[j] * back[s * n + j]) + x[s * n + j];
            }
            tr.bump_iter(s);
        }
        record_sweep(sweep, tr.k_active, t_sweep);
    }
    tr.finish(&x)
}

/// Batched Landweber: `x_i ← x_i + λ Aᵀ(b_i − A x_i)` with one shared
/// power-method step size (the operator, hence `σ_max`, is common to
/// the whole batch). Early exit as in [`sirt_batch`].
pub fn landweber_batch<T: Scalar>(
    op: &dyn LinearOperator<T>,
    b: &[T],
    k: usize,
    iterations: usize,
    step_scale: f64,
    tol: f64,
    pool: &ThreadPool,
) -> BatchReconResult<T> {
    let (m, n) = (op.n_rows(), op.n_cols());
    assert!(k > 0, "batch width must be positive");
    assert_eq!(b.len(), k * m);
    let sigma2 = crate::landweber::largest_singular_value_sq(op, 20, pool);
    let step = if sigma2 > 0.0 {
        T::from_f64(step_scale / sigma2)
    } else {
        T::ZERO
    };

    let mut x = vec![T::ZERO; k * n];
    let mut ax = vec![T::ZERO; k * m];
    let mut resid = vec![T::ZERO; k * m];
    let mut back = vec![T::ZERO; k * n];
    let mut b_work = b.to_vec();
    let mut tr = BatchTracker::new(k, n);

    let _span = cscv_trace::span::enter("solver.landweber_batch");
    for sweep in 0..iterations {
        let ka = tr.k_active;
        if ka == 0 {
            break;
        }
        let t_sweep = cscv_trace::ENABLED.then(std::time::Instant::now);
        op.apply_multi(&x[..ka * n], ka, &mut ax[..ka * m], pool);
        let mut s = 0usize;
        while s < tr.k_active {
            let mut norm = 0.0f64;
            for i in 0..m {
                let r = b_work[s * m + i] - ax[s * m + i];
                norm += r.to_f64() * r.to_f64();
                resid[s * m + i] = r;
            }
            if tr.record(s, norm.sqrt(), tol) {
                tr.retire(
                    s,
                    &mut [(&mut x, n), (&mut b_work, m), (&mut ax, m), (&mut resid, m)],
                );
            } else {
                s += 1;
            }
        }
        let ka = tr.k_active;
        if ka == 0 {
            break;
        }
        op.apply_transpose_multi(&resid[..ka * m], ka, &mut back[..ka * n], pool);
        for s in 0..ka {
            for j in 0..n {
                x[s * n + j] = step.mul_add(back[s * n + j], x[s * n + j]);
            }
            tr.bump_iter(s);
        }
        record_sweep(sweep, tr.k_active, t_sweep);
    }
    tr.finish(&x)
}

/// Batched CGLS on the normal equations, one Krylov process per slice
/// driven through shared batched projections. A slice retires when its
/// normal-equation residual `‖Aᵀr‖²` falls below `tol²` × its initial
/// value (matching the single-slice [`cgls`](crate::cgls::cgls) stop).
pub fn cgls_batch<T: Scalar>(
    op: &dyn LinearOperator<T>,
    b: &[T],
    k: usize,
    iterations: usize,
    tol: f64,
    pool: &ThreadPool,
) -> BatchReconResult<T> {
    let (m, n) = (op.n_rows(), op.n_cols());
    assert!(k > 0, "batch width must be positive");
    assert_eq!(b.len(), k * m);

    let mut x = vec![T::ZERO; k * n];
    let mut r = b.to_vec();
    let mut s_vec = vec![T::ZERO; k * n];
    op.apply_transpose_multi(&r, k, &mut s_vec, pool);
    let mut p = s_vec.clone();
    let mut q = vec![T::ZERO; k * m];
    let mut tr = BatchTracker::new(k, n);

    // Per-slot Krylov scalars; they ride along slot-indexed through the
    // same swap-compaction the vector buffers use.
    let mut gamma_slot: Vec<f64> = (0..k)
        .map(|i| norm2_sq(&s_vec[i * n..(i + 1) * n]).to_f64())
        .collect();
    let mut gamma0_slot = gamma_slot.clone();

    // Retire slices whose Krylov process is stationary from the start.
    let mut s = 0usize;
    while s < tr.k_active {
        if gamma_slot[s] == 0.0 {
            tr.retire(s, &mut [(&mut x, n), (&mut r, m), (&mut p, n)]);
            gamma_slot.swap_remove(s);
            gamma0_slot.swap_remove(s);
        } else {
            s += 1;
        }
    }

    let _span = cscv_trace::span::enter("solver.cgls_batch");
    for sweep in 0..iterations {
        let ka = tr.k_active;
        if ka == 0 {
            break;
        }
        let t_sweep = cscv_trace::ENABLED.then(std::time::Instant::now);
        op.apply_multi(&p[..ka * n], ka, &mut q[..ka * m], pool);
        let mut s = 0usize;
        while s < tr.k_active {
            let qq = norm2_sq(&q[s * m..(s + 1) * m]).to_f64();
            if qq == 0.0 {
                tr.retire(s, &mut [(&mut x, n), (&mut r, m), (&mut p, n), (&mut q, m)]);
                gamma_slot.swap_remove(s);
                gamma0_slot.swap_remove(s);
                continue;
            }
            let alpha = gamma_slot[s] / qq;
            for j in 0..n {
                x[s * n + j] = T::from_f64(alpha).mul_add(p[s * n + j], x[s * n + j]);
            }
            for i in 0..m {
                r[s * m + i] = T::from_f64(-alpha).mul_add(q[s * m + i], r[s * m + i]);
            }
            let norm = norm2_sq(&r[s * m..(s + 1) * m]).to_f64().sqrt();
            tr.histories[tr.slots[s]].push(norm);
            tr.bump_iter(s);
            s += 1;
        }
        let ka = tr.k_active;
        if ka == 0 {
            break;
        }
        op.apply_transpose_multi(&r[..ka * m], ka, &mut s_vec[..ka * n], pool);
        let mut s = 0usize;
        while s < tr.k_active {
            let gamma_new = norm2_sq(&s_vec[s * n..(s + 1) * n]).to_f64();
            let beta = gamma_new / gamma_slot[s];
            gamma_slot[s] = gamma_new;
            if gamma_new <= tol * tol * gamma0_slot[s] || gamma_new == 0.0 {
                tr.retire(
                    s,
                    &mut [(&mut x, n), (&mut r, m), (&mut p, n), (&mut s_vec, n)],
                );
                gamma_slot.swap_remove(s);
                gamma0_slot.swap_remove(s);
                continue;
            }
            for j in 0..n {
                p[s * n + j] = s_vec[s * n + j] + T::from_f64(beta) * p[s * n + j];
            }
            s += 1;
        }
        record_sweep(sweep, tr.k_active, t_sweep);
    }
    tr.finish(&x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::SpmvOperator;
    use crate::sirt::sirt;
    use cscv_sparse::{Coo, Csr};

    fn tall_system(m: usize, n: usize, seed: u64) -> Csr<f64> {
        let mut coo = Coo::new(m, n);
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        for r in 0..m {
            for c in 0..n {
                if (r + c) % 3 != 0 {
                    coo.push(r, c, 0.2 + rnd());
                }
            }
        }
        coo.to_csr()
    }

    /// `k` sinograms from `k` known images (scaled copies of a base).
    fn batch_rhs(csr: &Csr<f64>, k: usize) -> (Vec<f64>, Vec<f64>) {
        let n = csr.n_cols();
        let m = csr.n_rows();
        let mut xs = vec![0.0; k * n];
        let mut bs = vec![0.0; k * m];
        for kk in 0..k {
            for j in 0..n {
                xs[kk * n + j] = (1.0 + 0.1 * j as f64) * (1.0 + kk as f64 * 0.5);
            }
            let mut b = vec![0.0; m];
            csr.spmv_serial(&xs[kk * n..(kk + 1) * n], &mut b);
            bs[kk * m..(kk + 1) * m].copy_from_slice(&b);
        }
        (xs, bs)
    }

    #[test]
    fn sirt_batch_matches_independent_sirt_runs() {
        let csr = tall_system(40, 12, 99);
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(2);
        let k = 3;
        let (_, bs) = batch_rhs(&csr, k);
        let batch = sirt_batch(&op, &bs, k, 30, 1.0, 0.0, &pool);
        for kk in 0..k {
            let single = sirt(&op, &bs[kk * 40..(kk + 1) * 40], 30, 1.0, &pool);
            let err = crate::metrics::rel_l2(batch.slice(kk), &single.x);
            assert!(err < 1e-10, "slice {kk} err {err}");
            assert_eq!(batch.iterations[kk], 30);
            assert_eq!(batch.residual_histories[kk].len(), 30);
            for (a, b) in batch.residual_histories[kk]
                .iter()
                .zip(&single.residual_history)
            {
                assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0));
            }
        }
    }

    #[test]
    fn sirt_batch_early_exit_retires_slices_independently() {
        let csr = tall_system(40, 12, 7);
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        let k = 4;
        let (_, bs) = batch_rhs(&csr, k);
        let batch = sirt_batch(&op, &bs, k, 500, 1.0, 1e-3, &pool);
        for kk in 0..k {
            let h = &batch.residual_histories[kk];
            assert!(
                h.last().unwrap() <= &(1e-3 * h[0]),
                "slice {kk} must reach tol: {} vs {}",
                h.last().unwrap(),
                h[0]
            );
            assert!(
                batch.iterations[kk] < 500,
                "slice {kk} should retire early ({} iters)",
                batch.iterations[kk]
            );
        }
        // Residuals still match a fresh single-slice run of equal length.
        let single = sirt(&op, &bs[0..40], batch.iterations[0], 1.0, &pool);
        let err = crate::metrics::rel_l2(batch.slice(0), &single.x);
        assert!(err < 1e-8, "err {err}");
    }

    #[test]
    fn cgls_batch_matches_independent_cgls_runs() {
        let csr = tall_system(60, 20, 42);
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(2);
        let k = 3;
        let (xs, bs) = batch_rhs(&csr, k);
        let batch = cgls_batch(&op, &bs, k, 200, 1e-12, &pool);
        for kk in 0..k {
            let err = crate::metrics::rel_l2(batch.slice(kk), &xs[kk * 20..(kk + 1) * 20]);
            assert!(err < 1e-7, "slice {kk} err {err}");
            assert!(batch.iterations[kk] < 200, "should stop early");
        }
    }

    #[test]
    fn landweber_batch_matches_independent_landweber_runs() {
        let csr = tall_system(40, 12, 5);
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(2);
        let k = 2;
        let (_, bs) = batch_rhs(&csr, k);
        let batch = landweber_batch(&op, &bs, k, 40, 1.0, 0.0, &pool);
        for kk in 0..k {
            let single =
                crate::landweber::landweber(&op, &bs[kk * 40..(kk + 1) * 40], 40, 1.0, &pool);
            let err = crate::metrics::rel_l2(batch.slice(kk), &single.x);
            assert!(err < 1e-10, "slice {kk} err {err}");
        }
    }

    #[test]
    fn zero_sinogram_slice_retires_immediately_in_cgls() {
        let csr = tall_system(30, 10, 3);
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        let m = 30;
        let k = 2;
        // Slice 0 real, slice 1 all-zero (gamma0 = 0 → immediate retire).
        let (_, bs1) = batch_rhs(&csr, 1);
        let mut bs = vec![0.0; k * m];
        bs[..m].copy_from_slice(&bs1);
        let batch = cgls_batch(&op, &bs, k, 50, 1e-12, &pool);
        assert!(batch.slice(1).iter().all(|&v| v == 0.0));
        assert_eq!(batch.iterations[1], 0);
        assert!(batch.iterations[0] > 0);
        let err = crate::metrics::rel_l2(
            batch.slice(0),
            &crate::cgls::cgls(&op, &bs[..m], 50, 1e-12, &pool).x,
        );
        assert!(err < 1e-9, "err {err}");
    }

    #[test]
    fn swap_seg_moves_segments() {
        let mut buf = vec![0, 0, 1, 1, 2, 2];
        swap_seg(&mut buf, 2, 0, 2);
        assert_eq!(buf, vec![2, 2, 1, 1, 0, 0]);
        swap_seg(&mut buf, 2, 1, 1);
        assert_eq!(buf, vec![2, 2, 1, 1, 0, 0]);
    }
}
