//! ART — Algebraic Reconstruction Technique (Kaczmarz sweeps).
//!
//! The classic row-action method: project the iterate onto each ray's
//! hyperplane in turn,
//! `x ← x + λ (bᵢ − ⟨aᵢ, x⟩)/‖aᵢ‖² · aᵢ`.
//! ART is inherently sequential over rows (that's why the paper's
//! CSC-oriented formats matter for its coordinate-descent duals), so it
//! operates directly on a CSR matrix rather than the executor
//! abstraction.

use crate::sirt::ReconResult;
use cscv_sparse::{Csr, Scalar};

/// Run `sweeps` full Kaczmarz passes over all rows, relaxation `λ`.
pub fn art<T: Scalar>(csr: &Csr<T>, b: &[T], sweeps: usize, relaxation: f64) -> ReconResult<T> {
    assert_eq!(b.len(), csr.n_rows());
    let n = csr.n_cols();
    let lambda = T::from_f64(relaxation);

    // Precompute row squared norms.
    let row_norm_sq: Vec<T> = (0..csr.n_rows())
        .map(|r| {
            let (_, vals) = csr.row(r);
            vals.iter().map(|v| *v * *v).sum()
        })
        .collect();

    let mut x = vec![T::ZERO; n];
    let mut history = Vec::with_capacity(sweeps);
    for _ in 0..sweeps {
        for r in 0..csr.n_rows() {
            if row_norm_sq[r] == T::ZERO {
                continue;
            }
            let (cols, vals) = csr.row(r);
            let mut dot = T::ZERO;
            for (c, v) in cols.iter().zip(vals) {
                dot = v.mul_add(x[*c as usize], dot);
            }
            let coef = lambda * (b[r] - dot) / row_norm_sq[r];
            for (c, v) in cols.iter().zip(vals) {
                x[*c as usize] = v.mul_add(coef, x[*c as usize]);
            }
        }
        // Residual after the sweep.
        let mut y = vec![T::ZERO; csr.n_rows()];
        csr.spmv_serial(&x, &mut y);
        let norm: f64 = y
            .iter()
            .zip(b)
            .map(|(a, bb)| {
                let d = a.to_f64() - bb.to_f64();
                d * d
            })
            .sum();
        history.push(norm.sqrt());
    }

    ReconResult {
        x,
        residual_history: history,
        iterations: sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscv_sparse::Coo;

    #[test]
    fn solves_small_consistent_system() {
        // Overdetermined consistent system.
        let mut coo = Coo::new(4, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(2, 0, 1.0);
        coo.push(2, 1, 1.0);
        coo.push(3, 0, 2.0);
        coo.push(3, 1, -1.0);
        let csr = coo.to_csr();
        let x_true = vec![3.0, -2.0];
        let mut b = vec![0.0; 4];
        csr.spmv_serial(&x_true, &mut b);
        let res = art(&csr, &b, 60, 1.0);
        assert!((res.x[0] - 3.0).abs() < 1e-8);
        assert!((res.x[1] + 2.0).abs() < 1e-8);
    }

    #[test]
    fn residual_shrinks_on_consistent_system() {
        // Kaczmarz is only guaranteed monotone (toward 0) when the
        // system is consistent — use a constructed right-hand side.
        let mut coo = Coo::new(10, 5);
        for r in 0..10 {
            coo.push(r, r % 5, 1.0 + r as f64 * 0.1);
            coo.push(r, (r + 2) % 5, 0.4);
        }
        let csr = coo.to_csr();
        let x_true: Vec<f64> = (0..5).map(|i| 0.5 * i as f64 - 1.0).collect();
        let mut b = vec![0.0; 10];
        csr.spmv_serial(&x_true, &mut b);
        let res = art(&csr, &b, 20, 1.0);
        assert!(
            res.residual_history.last().unwrap() < &(res.residual_history[0] * 0.1),
            "{:?}",
            res.residual_history
        );
    }

    #[test]
    fn zero_rows_skipped() {
        let mut coo: Coo<f64> = Coo::new(3, 2);
        coo.push(0, 0, 2.0);
        // Row 1 empty.
        coo.push(2, 1, 4.0);
        let csr = coo.to_csr();
        let res = art(&csr, &[4.0, 99.0, 8.0], 30, 1.0);
        assert!((res.x[0] - 2.0).abs() < 1e-10);
        assert!((res.x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn under_relaxation_still_converges() {
        let mut coo = Coo::new(6, 3);
        for r in 0..6 {
            coo.push(r, r % 3, 1.0);
            coo.push(r, (r + 1) % 3, 0.5);
        }
        let csr = coo.to_csr();
        let x_true = vec![1.0, 2.0, 3.0];
        let mut b = vec![0.0; 6];
        csr.spmv_serial(&x_true, &mut b);
        let res = art(&csr, &b, 300, 0.3);
        let err = crate::metrics::rel_l2(&res.x, &x_true);
        assert!(err < 1e-6, "rel err {err}");
    }
}
