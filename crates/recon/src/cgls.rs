//! CGLS — Conjugate Gradient on the normal equations `AᵀA x = Aᵀb`.
//!
//! The fastest-converging Krylov solver that only needs `A·` and `Aᵀ·`
//! applications, i.e. the same SpMV pair the suite optimizes. Numerically
//! preferable to explicitly forming `AᵀA`.

use crate::operators::LinearOperator;
use crate::sirt::ReconResult;
use cscv_simd::lanes::{axpy, norm2_sq};
use cscv_sparse::{Scalar, ThreadPool};

/// Run CGLS for up to `iterations` steps (stops early when the normal
/// residual stagnates below `tol` relative to its start).
pub fn cgls<T: Scalar>(
    op: &dyn LinearOperator<T>,
    b: &[T],
    iterations: usize,
    tol: f64,
    pool: &ThreadPool,
) -> ReconResult<T> {
    assert_eq!(b.len(), op.n_rows());
    let (m, n) = (op.n_rows(), op.n_cols());

    let mut x = vec![T::ZERO; n];
    // r = b − A x = b initially.
    let mut r = b.to_vec();
    // s = Aᵀ r.
    let mut s = vec![T::ZERO; n];
    op.apply_transpose(&r, &mut s, pool);
    let mut p = s.clone();
    let mut q = vec![T::ZERO; m];
    let mut gamma = norm2_sq(&s).to_f64();
    let gamma0 = gamma;
    let mut history = Vec::with_capacity(iterations);
    let mut done = 0usize;

    let _span = cscv_trace::span::enter("solver.cgls");
    for _ in 0..iterations {
        if gamma <= tol * tol * gamma0 || gamma == 0.0 {
            break;
        }
        let t_iter = cscv_trace::ENABLED.then(std::time::Instant::now);
        op.apply(&p, &mut q, pool);
        let qq = norm2_sq(&q).to_f64();
        if qq == 0.0 {
            break;
        }
        let alpha = gamma / qq;
        axpy(T::from_f64(alpha), &p, &mut x);
        axpy(T::from_f64(-alpha), &q, &mut r);
        let res_norm = norm2_sq(&r).to_f64().sqrt();
        history.push(res_norm);
        if cscv_trace::ENABLED {
            cscv_trace::counters::add(cscv_trace::counters::Counter::SolverIters, 1);
            let iter_ms = t_iter.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3);
            cscv_trace::span::event(
                "cgls.iter",
                &[
                    ("iter", done as f64),
                    ("residual", res_norm),
                    ("iter_ms", iter_ms),
                ],
            );
        }
        op.apply_transpose(&r, &mut s, pool);
        let gamma_new = norm2_sq(&s).to_f64();
        let beta = gamma_new / gamma;
        gamma = gamma_new;
        // p = s + beta p.
        for j in 0..n {
            p[j] = s[j] + T::from_f64(beta) * p[j];
        }
        done += 1;
    }

    ReconResult {
        x,
        residual_history: history,
        iterations: done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::SpmvOperator;
    use cscv_sparse::{Coo, Csr};

    fn system(m: usize, n: usize, seed: u64) -> (Csr<f64>, Vec<f64>, Vec<f64>) {
        let mut coo = Coo::new(m, n);
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        for r in 0..m {
            coo.push(r, r % n, 1.0 + rnd());
            coo.push(r, (r + 3) % n, rnd() * 0.5);
            coo.push(r, (r * 7 + 1) % n, rnd() * 0.25);
        }
        let csr = coo.to_csr();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();
        let mut b = vec![0.0; m];
        csr.spmv_serial(&x_true, &mut b);
        (csr, x_true, b)
    }

    #[test]
    fn solves_consistent_system_to_high_accuracy() {
        let (csr, x_true, b) = system(60, 20, 42);
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(2);
        let res = cgls(&op, &b, 200, 1e-12, &pool);
        let err = crate::metrics::rel_l2(&res.x, &x_true);
        assert!(err < 1e-8, "rel err {err}");
    }

    #[test]
    fn early_stop_on_tolerance() {
        let (csr, _, b) = system(60, 20, 7);
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        let res = cgls(&op, &b, 1000, 1e-6, &pool);
        assert!(res.iterations < 1000, "should stop early");
    }

    #[test]
    fn converges_faster_than_sirt() {
        let (csr, x_true, b) = system(80, 25, 11);
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        let k = 25;
        let cg = cgls(&op, &b, k, 0.0, &pool);
        let si = crate::sirt::sirt(&op, &b, k, 1.0, &pool);
        let e_cg = crate::metrics::rel_l2(&cg.x, &x_true);
        let e_si = crate::metrics::rel_l2(&si.x, &x_true);
        assert!(e_cg < e_si, "CGLS {e_cg} vs SIRT {e_si}");
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let (csr, _, _) = system(30, 10, 3);
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        let res = cgls(&op, &vec![0.0; 30], 50, 1e-12, &pool);
        assert!(res.x.iter().all(|&v| v == 0.0));
        assert_eq!(res.iterations, 0);
    }
}
