//! Iterative CT image reconstruction on top of the CSCV SpMV suite.
//!
//! The paper's motivating application: model-based iterative
//! reconstruction executes `y = Ax` (forward projection) and `x = Aᵀy`
//! (back projection) hundreds of times per image, so SpMV throughput is
//! the reconstruction wall-clock. This crate provides the algorithms the
//! CT literature actually runs:
//!
//! * [`sirt`](sirt::sirt) — Simultaneous Iterative Reconstruction
//!   Technique (row/column-normalized Landweber; robust default);
//! * [`art`] — ART/Kaczmarz row-action sweeps (the classic; row-driven,
//!   which is why CSC/CSCV matter for its coordinate-descent duals);
//! * [`cgls`](cgls::cgls) — Conjugate Gradient on the normal equations
//!   (fastest convergence per iteration);
//! * [`landweber`](landweber::landweber) — plain gradient descent with a
//!   power-method step size (baseline and building block);
//! * [`operators`] — the forward/transpose operator abstraction that
//!   plugs any `SpmvExecutor` pair (CSCV, CSR, …) into the solvers;
//! * [`batch`] — batched variants of the solvers that reconstruct a
//!   stack of slices sharing one operator through `apply_multi`, so the
//!   matrix is streamed once per register-tile chunk instead of once per
//!   slice (the multi-RHS amortization the batched SpMM kernels exist
//!   for);
//! * [`metrics`] — RMSE / PSNR / relative error image quality metrics;
//! * [`driver`] — a solver selector plus the trajectory/bitwise
//!   comparison predicates the sharded-equivalence gates run on.

pub mod art;
pub mod batch;
pub mod cgls;
pub mod driver;
pub mod landweber;
pub mod metrics;
pub mod operators;
pub mod os_sart;
pub mod sirt;

pub use batch::{cgls_batch, landweber_batch, sirt_batch, BatchReconResult};
pub use cgls::cgls;
pub use driver::{bitwise_equal, run_solver, trajectory_max_rel_diff, Solver};
pub use landweber::landweber;
pub use operators::{LinearOperator, SpmvOperator};
pub use sirt::sirt;

pub use operators::CscvOperator;
