//! Solver drivers for equivalence gating.
//!
//! The shard runtime (`cscv-shard`, `cscv-xtask shard`) needs to run
//! *the same* solver against two operators — single-process reference
//! and sharded cluster — and compare the runs. This module gives that a
//! stable vocabulary: a [`Solver`] selector with CLI parsing, one
//! [`run_solver`] entry point, and the two comparison predicates the
//! `shard-smoke` CI gate is built on:
//!
//! * [`trajectory_max_rel_diff`] — the largest relative deviation
//!   between two residual-norm trajectories, iteration by iteration.
//!   Sharded SIRT/CGLS must stay within `1e-10` of the single-process
//!   trajectory for f64 (the adjoint merge is the only floating-point
//!   difference, and the fixed-order tree reduction keeps it tiny and
//!   deterministic).
//! * [`bitwise_equal`] — exact `to_bits` equality of images and
//!   trajectories, the `workers = 1` gate (no merge arithmetic at all,
//!   so not even an ULP of slack is granted).

use crate::sirt::ReconResult;
use crate::{cgls, landweber, sirt, LinearOperator};
use cscv_sparse::ThreadPool;

/// Which iterative solver to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Solver {
    /// SIRT with the standard |A|-sum weighting.
    #[default]
    Sirt,
    /// CGLS on the normal equations.
    Cgls,
    /// Landweber with a power-iteration step bound.
    Landweber,
}

impl Solver {
    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Solver> {
        match s {
            "sirt" => Some(Solver::Sirt),
            "cgls" => Some(Solver::Cgls),
            "landweber" => Some(Solver::Landweber),
            _ => None,
        }
    }

    /// Stable name (reports, NDJSON).
    pub fn name(self) -> &'static str {
        match self {
            Solver::Sirt => "sirt",
            Solver::Cgls => "cgls",
            Solver::Landweber => "landweber",
        }
    }

    /// All solvers, for "run everything" drivers.
    pub const ALL: [Solver; 3] = [Solver::Sirt, Solver::Cgls, Solver::Landweber];
}

/// Run `solver` for `iterations` steps with its conventional default
/// parameters (SIRT relaxation 1.0, CGLS tolerance 0 = never stop
/// early, Landweber step scale 1.0 — early stopping is disabled so two
/// runs always produce comparable full-length trajectories).
pub fn run_solver(
    solver: Solver,
    op: &dyn LinearOperator<f64>,
    b: &[f64],
    iterations: usize,
    pool: &ThreadPool,
) -> ReconResult<f64> {
    match solver {
        Solver::Sirt => sirt(op, b, iterations, 1.0, pool),
        Solver::Cgls => cgls(op, b, iterations, 0.0, pool),
        Solver::Landweber => landweber(op, b, iterations, 1.0, pool),
    }
}

/// Largest per-iteration relative deviation between two residual-norm
/// trajectories: `max_i |a_i − b_i| / max(|a_i|, |b_i|, ε)`. Returns
/// `f64::INFINITY` when the lengths differ (a truncated run must never
/// pass a tolerance gate).
pub fn trajectory_max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let scale = x.abs().max(y.abs()).max(f64::MIN_POSITIVE);
            (x - y).abs() / scale
        })
        .fold(0.0, f64::max)
}

/// Exact bit equality of two solver results: image and residual
/// trajectory, compared via `to_bits` so `-0.0 ≠ +0.0` and NaNs never
/// sneak through an `==`.
pub fn bitwise_equal(a: &ReconResult<f64>, b: &ReconResult<f64>) -> bool {
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    a.iterations == b.iterations
        && bits(&a.x) == bits(&b.x)
        && bits(&a.residual_history) == bits(&b.residual_history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpmvOperator;
    use cscv_sparse::Coo;

    fn toy_op() -> SpmvOperator<f64> {
        let mut coo = Coo::new(6, 4);
        for r in 0..6usize {
            coo.push(r, r % 4, 1.0 + r as f64);
            coo.push(r, (r + 1) % 4, 0.5);
        }
        SpmvOperator::csr_pair(&coo.to_csr())
    }

    #[test]
    fn parse_and_name_round_trip() {
        for s in Solver::ALL {
            assert_eq!(Solver::parse(s.name()), Some(s));
        }
        assert_eq!(Solver::parse("bogus"), None);
    }

    #[test]
    fn run_solver_produces_full_trajectories() {
        let op = toy_op();
        let pool = ThreadPool::new(1);
        let b = vec![1.0; 6];
        for s in Solver::ALL {
            let r = run_solver(s, &op, &b, 5, &pool);
            assert_eq!(r.iterations, 5, "{} stopped early", s.name());
            assert_eq!(r.residual_history.len(), 5);
            assert!(r.residual_history.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn trajectory_diff_detects_deviation_and_truncation() {
        let a = [1.0, 0.5, 0.25];
        assert_eq!(trajectory_max_rel_diff(&a, &a), 0.0);
        let b = [1.0, 0.5 * (1.0 + 1e-9), 0.25];
        let d = trajectory_max_rel_diff(&a, &b);
        assert!(d > 1e-10 && d < 1e-8, "{d}");
        assert_eq!(trajectory_max_rel_diff(&a, &a[..2]), f64::INFINITY);
    }

    #[test]
    fn bitwise_equal_is_exact() {
        let op = toy_op();
        let pool = ThreadPool::new(1);
        let b = vec![1.0; 6];
        let r1 = run_solver(Solver::Sirt, &op, &b, 4, &pool);
        let r2 = run_solver(Solver::Sirt, &op, &b, 4, &pool);
        assert!(bitwise_equal(&r1, &r2), "same run must be reproducible");
        let mut r3 = run_solver(Solver::Sirt, &op, &b, 4, &pool);
        r3.x[0] = r3.x[0].next_up();
        assert!(!bitwise_equal(&r1, &r3));
    }
}
