//! Image quality metrics for reconstruction experiments.

use cscv_sparse::Scalar;

/// Root-mean-square error between two images.
pub fn rmse<T: Scalar>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x.to_f64() - y.to_f64();
            d * d
        })
        .sum();
    (sum / a.len() as f64).sqrt()
}

/// Relative L2 error `‖a − b‖ / ‖b‖` (0 when `b` is all-zero and `a == b`).
pub fn rel_l2<T: Scalar>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len());
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x.to_f64() - y.to_f64();
            d * d
        })
        .sum::<f64>()
        .sqrt();
    let den: f64 = b
        .iter()
        .map(|y| y.to_f64() * y.to_f64())
        .sum::<f64>()
        .sqrt();
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

/// Peak signal-to-noise ratio in dB, with the peak taken from the
/// reference image's dynamic range.
pub fn psnr<T: Scalar>(img: &[T], reference: &[T]) -> f64 {
    let peak = reference
        .iter()
        .map(|v| v.to_f64())
        .fold(f64::NEG_INFINITY, f64::max)
        - reference
            .iter()
            .map(|v| v.to_f64())
            .fold(f64::INFINITY, f64::min);
    let e = rmse(img, reference);
    if e == 0.0 {
        f64::INFINITY
    } else {
        20.0 * (peak / e).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_basics() {
        assert_eq!(rmse::<f64>(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse::<f64>(&[1.0, 3.0], &[1.0, 1.0]) - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(rmse::<f64>(&[], &[]), 0.0);
    }

    #[test]
    fn rel_l2_basics() {
        assert_eq!(rel_l2::<f32>(&[2.0, 0.0], &[2.0, 0.0]), 0.0);
        assert!((rel_l2::<f32>(&[0.0, 0.0], &[3.0, 4.0]) - 1.0).abs() < 1e-6);
        assert_eq!(rel_l2::<f32>(&[0.0], &[0.0]), 0.0);
        assert_eq!(rel_l2::<f32>(&[1.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    fn psnr_ordering() {
        let reference = vec![0.0f64, 1.0, 2.0, 1.0];
        let good = vec![0.01, 1.0, 2.0, 1.0];
        let bad = vec![0.5, 0.5, 1.0, 0.0];
        assert!(psnr(&good, &reference) > psnr(&bad, &reference));
        assert_eq!(psnr(&reference, &reference), f64::INFINITY);
    }
}
