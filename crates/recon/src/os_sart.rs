//! OS-SART — ordered-subsets SART.
//!
//! The clinically practical member of the ART family: views are grouped
//! into `n_subsets` interleaved subsets, and each sub-iteration applies
//! a SART update using only one subset's rays. Convergence per full pass
//! approaches `n_subsets×` SIRT while every update remains a (subset)
//! forward/back projection — the same SpMV pair, restricted to a row
//! range; with CSCV this maps to whole view groups, which is why the
//! format's row layout suits iterative CT so well.

use crate::operators::LinearOperator;
use crate::sirt::ReconResult;
use cscv_sparse::{Scalar, ThreadPool};

/// Run `passes` full passes of OS-SART with `n_subsets` view subsets.
///
/// The operator exposes the full system; subsets are realized by
/// masking rays (zeroing non-subset residuals), which keeps the
/// implementation backend-agnostic at the cost of full-length SpMVs —
/// the structure (per-subset updates) is what matters for convergence.
pub fn os_sart<T: Scalar>(
    op: &dyn LinearOperator<T>,
    b: &[T],
    n_subsets: usize,
    passes: usize,
    relaxation: f64,
    subset_of_row: &dyn Fn(usize) -> usize,
    pool: &ThreadPool,
) -> ReconResult<T> {
    assert_eq!(b.len(), op.n_rows());
    assert!(n_subsets >= 1);
    let (m, n) = (op.n_rows(), op.n_cols());
    let lambda = T::from_f64(relaxation);

    // Subset-restricted row weights; full column weights per subset.
    let abs_rows = op.abs_row_sums(pool);
    let inv_rows: Vec<T> = abs_rows
        .iter()
        .map(|&s| if s == T::ZERO { T::ZERO } else { T::ONE / s })
        .collect();
    // Column sums restricted to each subset's rows need Aᵀ structure we
    // don't have here; SART uses full column sums scaled by subset
    // fraction — a standard, convergent choice.
    let abs_cols = op.abs_col_sums(pool);
    let inv_cols: Vec<T> = abs_cols
        .iter()
        .map(|&s| {
            if s == T::ZERO {
                T::ZERO
            } else {
                T::from_f64(n_subsets as f64) / s
            }
        })
        .collect();

    let mut x = vec![T::ZERO; n];
    let mut ax = vec![T::ZERO; m];
    let mut resid = vec![T::ZERO; m];
    let mut back = vec![T::ZERO; n];
    let mut history = Vec::with_capacity(passes);

    for _ in 0..passes {
        for subset in 0..n_subsets {
            op.apply(&x, &mut ax, pool);
            for i in 0..m {
                resid[i] = if subset_of_row(i) == subset {
                    (b[i] - ax[i]) * inv_rows[i]
                } else {
                    T::ZERO
                };
            }
            op.apply_transpose(&resid, &mut back, pool);
            for j in 0..n {
                x[j] = (lambda * inv_cols[j] * back[j]) + x[j];
            }
        }
        // Residual after the pass.
        op.apply(&x, &mut ax, pool);
        let norm: f64 = ax
            .iter()
            .zip(b)
            .map(|(a, bb)| {
                let d = a.to_f64() - bb.to_f64();
                d * d
            })
            .sum();
        history.push(norm.sqrt());
    }

    ReconResult {
        x,
        residual_history: history,
        iterations: passes,
    }
}

/// The standard CT subset map: interleave views (`subset = view mod k`).
pub fn interleaved_views(n_bins: usize, n_subsets: usize) -> impl Fn(usize) -> usize {
    move |row: usize| (row / n_bins) % n_subsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::SpmvOperator;
    use cscv_sparse::{Coo, Csr};

    /// CT-flavoured system: 8 "views" of 6 "bins" over a 12-pixel image.
    fn system() -> (Csr<f64>, Vec<f64>, Vec<f64>, usize) {
        let n_bins = 6;
        let n_views = 8;
        let n = 12;
        let mut coo = Coo::new(n_views * n_bins, n);
        for v in 0..n_views {
            for b in 0..n_bins {
                let row = v * n_bins + b;
                coo.push(row, (v + b) % n, 1.0);
                coo.push(row, (v + b + 3) % n, 0.6);
            }
        }
        let csr = coo.to_csr();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.2).collect();
        let mut b = vec![0.0; n_views * n_bins];
        csr.spmv_serial(&x_true, &mut b);
        (csr, x_true, b, n_bins)
    }

    #[test]
    fn converges_on_consistent_system() {
        let (csr, x_true, b, n_bins) = system();
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        let res = os_sart(&op, &b, 4, 60, 0.8, &interleaved_views(n_bins, 4), &pool);
        let err = crate::metrics::rel_l2(&res.x, &x_true);
        assert!(err < 0.02, "rel err {err}");
    }

    #[test]
    fn more_subsets_converge_faster_per_pass() {
        let (csr, x_true, b, n_bins) = system();
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        let passes = 6;
        let e1 = {
            let r = os_sart(
                &op,
                &b,
                1,
                passes,
                0.8,
                &interleaved_views(n_bins, 1),
                &pool,
            );
            crate::metrics::rel_l2(&r.x, &x_true)
        };
        let e4 = {
            let r = os_sart(
                &op,
                &b,
                4,
                passes,
                0.8,
                &interleaved_views(n_bins, 4),
                &pool,
            );
            crate::metrics::rel_l2(&r.x, &x_true)
        };
        assert!(e4 < e1, "OS acceleration: {e4} vs {e1}");
    }

    #[test]
    fn one_subset_reduces_to_sart() {
        let (csr, _, b, n_bins) = system();
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        let r = os_sart(&op, &b, 1, 10, 1.0, &interleaved_views(n_bins, 1), &pool);
        // Residual decreases monotonically for the full (SIRT-like) case.
        for w in r.residual_history.windows(2) {
            assert!(w[1] <= w[0] * 1.0001);
        }
    }

    #[test]
    fn subset_map_interleaves_views() {
        let f = interleaved_views(10, 3);
        assert_eq!(f(0), 0); // view 0
        assert_eq!(f(9), 0);
        assert_eq!(f(10), 1); // view 1
        assert_eq!(f(35), 0); // view 3
    }
}
