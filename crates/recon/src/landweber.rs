//! Landweber iteration — plain gradient descent `x ← x + λ Aᵀ(b − Ax)`.
//!
//! Converges for `0 < λ < 2/σ_max²`; the step size is set from a power
//! iteration estimating `σ_max²(A) = λ_max(AᵀA)`, which itself runs on
//! the same SpMV pair.

use crate::operators::LinearOperator;
use crate::sirt::ReconResult;
use cscv_simd::lanes::{axpy, norm2_sq, scale};
use cscv_sparse::{Scalar, ThreadPool};

/// Estimate `σ_max²(A)` by power iteration on `AᵀA` (`iters` steps).
pub fn largest_singular_value_sq<T: Scalar>(
    op: &dyn LinearOperator<T>,
    iters: usize,
    pool: &ThreadPool,
) -> f64 {
    let n = op.n_cols();
    let m = op.n_rows();
    // Deterministic pseudo-random start avoids adversarial alignment.
    let mut v: Vec<T> = (0..n)
        .map(|i| T::from_f64(((i * 2654435761) % 1000) as f64 / 1000.0 + 0.01))
        .collect();
    let mut av = vec![T::ZERO; m];
    let mut atav = vec![T::ZERO; n];
    let mut lambda = 0.0f64;
    for _ in 0..iters {
        let norm = norm2_sq(&v).to_f64().sqrt();
        if norm == 0.0 {
            return 0.0;
        }
        scale(&mut v, T::from_f64(1.0 / norm));
        op.apply(&v, &mut av, pool);
        op.apply_transpose(&av, &mut atav, pool);
        // Rayleigh quotient with the normalized v.
        lambda = cscv_simd::lanes::dot(&v, &atav).to_f64();
        v.copy_from_slice(&atav);
    }
    lambda.max(0.0)
}

/// Run Landweber iterations from a zero image. `step_scale` multiplies
/// the safe step `1/σ_max²` (values in `(0, 2)` converge; 1.0 default).
pub fn landweber<T: Scalar>(
    op: &dyn LinearOperator<T>,
    b: &[T],
    iterations: usize,
    step_scale: f64,
    pool: &ThreadPool,
) -> ReconResult<T> {
    assert_eq!(b.len(), op.n_rows());
    let (m, n) = (op.n_rows(), op.n_cols());
    let sigma2 = largest_singular_value_sq(op, 20, pool);
    let step = if sigma2 > 0.0 {
        T::from_f64(step_scale / sigma2)
    } else {
        T::ZERO
    };

    let mut x = vec![T::ZERO; n];
    let mut ax = vec![T::ZERO; m];
    let mut r = vec![T::ZERO; m];
    let mut g = vec![T::ZERO; n];
    let mut history = Vec::with_capacity(iterations);
    let _span = cscv_trace::span::enter("solver.landweber");
    for it in 0..iterations {
        let t_iter = cscv_trace::ENABLED.then(std::time::Instant::now);
        op.apply(&x, &mut ax, pool);
        for i in 0..m {
            r[i] = b[i] - ax[i];
        }
        let res_norm = norm2_sq(&r).to_f64().sqrt();
        history.push(res_norm);
        if cscv_trace::ENABLED {
            cscv_trace::counters::add(cscv_trace::counters::Counter::SolverIters, 1);
            let iter_ms = t_iter.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3);
            cscv_trace::span::event(
                "landweber.iter",
                &[
                    ("iter", it as f64),
                    ("residual", res_norm),
                    ("iter_ms", iter_ms),
                ],
            );
        }
        op.apply_transpose(&r, &mut g, pool);
        axpy(step, &g, &mut x);
    }
    ReconResult {
        x,
        residual_history: history,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::SpmvOperator;
    use cscv_sparse::{Coo, Csr};

    fn diag_system() -> (Csr<f64>, Vec<f64>, Vec<f64>) {
        // Diagonal matrix: singular values known exactly.
        let mut coo = Coo::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, (i + 1) as f64);
        }
        let csr = coo.to_csr();
        let x_true = vec![1.0, -1.0, 2.0, 0.5, 1.5];
        let mut b = vec![0.0; 5];
        csr.spmv_serial(&x_true, &mut b);
        (csr, x_true, b)
    }

    #[test]
    fn power_iteration_finds_sigma_max() {
        let (csr, _, _) = diag_system();
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        let s2 = largest_singular_value_sq(&op, 50, &pool);
        assert!((s2 - 25.0).abs() < 1e-6, "sigma^2 {s2}");
    }

    #[test]
    fn landweber_converges_on_diagonal_system() {
        let (csr, x_true, b) = diag_system();
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        let res = landweber(&op, &b, 2000, 1.0, &pool);
        let err = crate::metrics::rel_l2(&res.x, &x_true);
        assert!(err < 1e-3, "rel err {err}");
        // Residual decreasing.
        assert!(res.residual_history.last().unwrap() < &res.residual_history[0]);
    }

    #[test]
    fn zero_operator_is_safe() {
        let coo: Coo<f64> = Coo::new(4, 4);
        let csr = coo.to_csr();
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        let res = landweber(&op, &[1.0; 4], 5, 1.0, &pool);
        assert!(res.x.iter().all(|&v| v == 0.0));
    }
}
