//! SIRT — Simultaneous Iterative Reconstruction Technique.
//!
//! The workhorse of algebraic CT reconstruction:
//! `x ← x + C·Aᵀ·R·(b − A·x)` with `R = diag(1/row_sums)` and
//! `C = diag(1/col_sums)`. Every iteration is one forward and one back
//! projection — exactly the SpMV pair whose throughput the paper
//! optimizes.

use crate::operators::LinearOperator;
use cscv_sparse::{Scalar, ThreadPool};

/// Result of an iterative reconstruction run.
#[derive(Debug, Clone)]
pub struct ReconResult<T> {
    /// Reconstructed image.
    pub x: Vec<T>,
    /// Residual norm `‖b − Ax‖₂` after each iteration.
    pub residual_history: Vec<f64>,
    /// Iterations actually executed.
    pub iterations: usize,
}

/// Run `iterations` SIRT steps from a zero initial image.
///
/// `relaxation` scales each update (1.0 = classic SIRT; smaller damps).
pub fn sirt<T: Scalar>(
    op: &dyn LinearOperator<T>,
    b: &[T],
    iterations: usize,
    relaxation: f64,
    pool: &ThreadPool,
) -> ReconResult<T> {
    assert_eq!(b.len(), op.n_rows());
    let (m, n) = (op.n_rows(), op.n_cols());
    let lambda = T::from_f64(relaxation);

    // Inverse weights; zero rows/cols get weight 0 (they never update).
    let inv = |sums: Vec<T>| -> Vec<T> {
        sums.into_iter()
            .map(|s| if s == T::ZERO { T::ZERO } else { T::ONE / s })
            .collect()
    };
    let r_inv = inv(op.abs_row_sums(pool));
    let c_inv = inv(op.abs_col_sums(pool));

    let mut x = vec![T::ZERO; n];
    let mut ax = vec![T::ZERO; m];
    let mut resid = vec![T::ZERO; m];
    let mut back = vec![T::ZERO; n];
    let mut history = Vec::with_capacity(iterations);

    let _span = cscv_trace::span::enter("solver.sirt");
    for it in 0..iterations {
        let t_iter = cscv_trace::ENABLED.then(std::time::Instant::now);
        op.apply(&x, &mut ax, pool);
        let mut norm = 0.0f64;
        for i in 0..m {
            let r = b[i] - ax[i];
            norm += r.to_f64() * r.to_f64();
            resid[i] = r * r_inv[i];
        }
        history.push(norm.sqrt());
        op.apply_transpose(&resid, &mut back, pool);
        for j in 0..n {
            x[j] = (lambda * c_inv[j] * back[j]) + x[j];
        }
        if cscv_trace::ENABLED {
            cscv_trace::counters::add(cscv_trace::counters::Counter::SolverIters, 1);
            let iter_ms = t_iter.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3);
            cscv_trace::span::event(
                "sirt.iter",
                &[
                    ("iter", it as f64),
                    ("residual", norm.sqrt()),
                    ("iter_ms", iter_ms),
                ],
            );
        }
    }

    ReconResult {
        x,
        residual_history: history,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::SpmvOperator;
    use cscv_sparse::{Coo, Csr};

    /// A tall, well-conditioned random-ish system with known solution.
    fn tall_system() -> (Csr<f64>, Vec<f64>, Vec<f64>) {
        let n = 12;
        let m = 40;
        let mut coo = Coo::new(m, n);
        let mut state = 88172645463325252u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        for r in 0..m {
            for c in 0..n {
                if (r + c) % 3 != 0 {
                    coo.push(r, c, 0.2 + rnd());
                }
            }
        }
        let csr = coo.to_csr();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + 0.1 * i as f64).collect();
        let mut b = vec![0.0; m];
        csr.spmv_serial(&x_true, &mut b);
        (csr, x_true, b)
    }

    #[test]
    fn residual_decreases_monotonically() {
        let (csr, _, b) = tall_system();
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(2);
        let res = sirt(&op, &b, 30, 1.0, &pool);
        assert_eq!(res.iterations, 30);
        for w in res.residual_history.windows(2) {
            assert!(w[1] <= w[0] * 1.0001, "residual must not grow: {w:?}");
        }
        assert!(res.residual_history.last().unwrap() < &(res.residual_history[0] * 0.2));
    }

    #[test]
    fn converges_toward_truth_on_consistent_system() {
        let (csr, x_true, b) = tall_system();
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        let res = sirt(&op, &b, 400, 1.0, &pool);
        let err = crate::metrics::rel_l2(&res.x, &x_true);
        assert!(err < 0.05, "rel err {err}");
    }

    #[test]
    fn zero_iterations_returns_zero_image() {
        let (csr, _, b) = tall_system();
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        let res = sirt(&op, &b, 0, 1.0, &pool);
        assert!(res.x.iter().all(|&v| v == 0.0));
        assert!(res.residual_history.is_empty());
    }

    #[test]
    fn handles_empty_rows_and_cols() {
        let mut coo: Coo<f64> = Coo::new(4, 3);
        coo.push(0, 0, 1.0);
        coo.push(2, 2, 2.0);
        let csr = coo.to_csr();
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        let b = vec![1.0, 5.0, 4.0, -3.0];
        let res = sirt(&op, &b, 50, 1.0, &pool);
        // Solvable entries are recovered; untouched column stays zero.
        assert!((res.x[0] - 1.0).abs() < 1e-6);
        assert!((res.x[2] - 2.0).abs() < 1e-6);
        assert_eq!(res.x[1], 0.0);
    }
}
