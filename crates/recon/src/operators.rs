//! Forward/transpose operator abstraction for the solvers.
//!
//! Iterative reconstruction needs both `A x` and `Aᵀ y`. Any pair of
//! [`SpmvExecutor`]s can serve — e.g. a CSCV executor for the forward
//! projection and a tuned CSR executor built on the explicitly
//! transposed matrix for the back projection (the paper's future-work
//! item "implement CSCV on x = Aᵀy" is exactly about replacing the
//! latter).

use cscv_core::CscvExec;
use cscv_simd::MaskExpand;
use cscv_sparse::{Csr, Scalar, SpmvExecutor, ThreadPool};

/// A linear operator with forward and transpose application.
pub trait LinearOperator<T: Scalar>: Send + Sync {
    /// Output dimension of `apply` (sinogram size for CT).
    fn n_rows(&self) -> usize;
    /// Input dimension of `apply` (image size for CT).
    fn n_cols(&self) -> usize;
    /// `y = A x`.
    fn apply(&self, x: &[T], y: &mut [T], pool: &ThreadPool);
    /// `x = Aᵀ y`.
    fn apply_transpose(&self, y: &[T], x: &mut [T], pool: &ThreadPool);
    /// Batched forward `Y = A X` over `k` column-major right-hand sides
    /// (RHS `i` at `x[i·n_cols..]`, output at `y[i·n_rows..]`). Default
    /// is a loop of [`apply`](Self::apply); operators backed by batched
    /// SpMM override it so matrix traffic is paid once per batch chunk.
    fn apply_multi(&self, x: &[T], k: usize, y: &mut [T], pool: &ThreadPool) {
        assert!(k > 0, "batch width must be positive");
        assert_eq!(x.len(), k * self.n_cols());
        assert_eq!(y.len(), k * self.n_rows());
        for (xk, yk) in x
            .chunks_exact(self.n_cols())
            .zip(y.chunks_exact_mut(self.n_rows()))
        {
            self.apply(xk, yk, pool);
        }
    }
    /// Batched transpose `X = Aᵀ Y` (same packing as
    /// [`apply_multi`](Self::apply_multi) with rows/cols swapped).
    fn apply_transpose_multi(&self, y: &[T], k: usize, x: &mut [T], pool: &ThreadPool) {
        assert!(k > 0, "batch width must be positive");
        assert_eq!(y.len(), k * self.n_rows());
        assert_eq!(x.len(), k * self.n_cols());
        for (yk, xk) in y
            .chunks_exact(self.n_rows())
            .zip(x.chunks_exact_mut(self.n_cols()))
        {
            self.apply_transpose(yk, xk, pool);
        }
    }
    /// Row sums of `|A|` (SIRT weighting).
    fn abs_row_sums(&self, pool: &ThreadPool) -> Vec<T>;
    /// Column sums of `|A|` (SIRT weighting).
    fn abs_col_sums(&self, pool: &ThreadPool) -> Vec<T>;
}

/// An operator backed by two prepared SpMV executors: one for `A`, one
/// for `Aᵀ` (built on the transposed matrix).
pub struct SpmvOperator<T: Scalar> {
    forward: Box<dyn SpmvExecutor<T>>,
    transpose: Box<dyn SpmvExecutor<T>>,
    abs_row_sums: Vec<T>,
    abs_col_sums: Vec<T>,
}

impl<T: Scalar> SpmvOperator<T> {
    /// Wrap a prepared executor pair. `transpose` must execute the
    /// transposed matrix (its rows = `forward`'s columns).
    ///
    /// `csr` (the forward matrix) is only used to precompute the
    /// absolute row/column sums.
    pub fn new(
        forward: Box<dyn SpmvExecutor<T>>,
        transpose: Box<dyn SpmvExecutor<T>>,
        csr: &Csr<T>,
    ) -> Self {
        assert_eq!(forward.n_rows(), transpose.n_cols(), "shape mismatch");
        assert_eq!(forward.n_cols(), transpose.n_rows(), "shape mismatch");
        assert_eq!(forward.n_rows(), csr.n_rows());
        assert_eq!(forward.n_cols(), csr.n_cols());
        let mut abs_row_sums = vec![T::ZERO; csr.n_rows()];
        let mut abs_col_sums = vec![T::ZERO; csr.n_cols()];
        for (r, row_sum) in abs_row_sums.iter_mut().enumerate() {
            let (cols, vals) = csr.row(r);
            let mut acc = T::ZERO;
            for (c, v) in cols.iter().zip(vals) {
                acc += v.abs();
                abs_col_sums[*c as usize] += v.abs();
            }
            *row_sum = acc;
        }
        SpmvOperator {
            forward,
            transpose,
            abs_row_sums,
            abs_col_sums,
        }
    }

    /// Convenience: baseline operator from a CSR matrix using the tuned
    /// CSR executors for both directions.
    pub fn csr_pair(csr: &Csr<T>) -> Self {
        use cscv_sparse::formats::CsrExec;
        let t = csr.transpose();
        SpmvOperator::new(
            Box::new(CsrExec::new(csr.clone())),
            Box::new(CsrExec::new(t)),
            csr,
        )
    }

    /// The forward executor's name (report labelling).
    pub fn forward_name(&self) -> String {
        self.forward.name()
    }
}

impl<T: Scalar> LinearOperator<T> for SpmvOperator<T> {
    fn n_rows(&self) -> usize {
        self.forward.n_rows()
    }
    fn n_cols(&self) -> usize {
        self.forward.n_cols()
    }
    fn apply(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        self.forward.spmv(x, y, pool);
    }
    fn apply_transpose(&self, y: &[T], x: &mut [T], pool: &ThreadPool) {
        self.transpose.spmv(y, x, pool);
    }
    fn apply_multi(&self, x: &[T], k: usize, y: &mut [T], pool: &ThreadPool) {
        self.forward.spmv_multi(x, k, y, pool);
    }
    fn apply_transpose_multi(&self, y: &[T], k: usize, x: &mut [T], pool: &ThreadPool) {
        self.transpose.spmv_multi(y, k, x, pool);
    }
    fn abs_row_sums(&self, _pool: &ThreadPool) -> Vec<T> {
        self.abs_row_sums.clone()
    }
    fn abs_col_sums(&self, _pool: &ThreadPool) -> Vec<T> {
        self.abs_col_sums.clone()
    }
}

/// An operator backed by a **single CSCV matrix** used for both the
/// forward projection and (via the transpose kernels — the paper's
/// future-work item, implemented here) the back projection. Halves the
/// operator's memory footprint versus keeping an explicit `Aᵀ`.
pub struct CscvOperator<T: Scalar + MaskExpand> {
    exec: CscvExec<T>,
    abs_row_sums: Vec<T>,
    abs_col_sums: Vec<T>,
}

impl<T: Scalar + MaskExpand> CscvOperator<T> {
    /// Wrap a prepared CSCV executor; `csr` (same matrix) supplies the
    /// absolute row/column sums for SIRT weighting.
    pub fn new(exec: CscvExec<T>, csr: &Csr<T>) -> Self {
        assert_eq!(exec.n_rows(), csr.n_rows());
        assert_eq!(exec.n_cols(), csr.n_cols());
        let mut abs_row_sums = vec![T::ZERO; csr.n_rows()];
        let mut abs_col_sums = vec![T::ZERO; csr.n_cols()];
        for (r, row_sum) in abs_row_sums.iter_mut().enumerate() {
            let (cols, vals) = csr.row(r);
            for (c, v) in cols.iter().zip(vals) {
                *row_sum += v.abs();
                abs_col_sums[*c as usize] += v.abs();
            }
        }
        CscvOperator {
            exec,
            abs_row_sums,
            abs_col_sums,
        }
    }
}

impl<T: Scalar + MaskExpand> LinearOperator<T> for CscvOperator<T> {
    fn n_rows(&self) -> usize {
        self.exec.n_rows()
    }
    fn n_cols(&self) -> usize {
        self.exec.n_cols()
    }
    fn apply(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        self.exec.spmv(x, y, pool);
    }
    fn apply_transpose(&self, y: &[T], x: &mut [T], pool: &ThreadPool) {
        self.exec.spmv_transpose(y, x, pool);
    }
    fn apply_multi(&self, x: &[T], k: usize, y: &mut [T], pool: &ThreadPool) {
        self.exec.spmv_multi(x, k, y, pool);
    }
    fn apply_transpose_multi(&self, y: &[T], k: usize, x: &mut [T], pool: &ThreadPool) {
        self.exec.spmv_transpose_multi(y, k, x, pool);
    }
    fn abs_row_sums(&self, _pool: &ThreadPool) -> Vec<T> {
        self.abs_row_sums.clone()
    }
    fn abs_col_sums(&self, _pool: &ThreadPool) -> Vec<T> {
        self.abs_col_sums.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscv_sparse::Coo;

    fn sample_csr() -> Csr<f64> {
        let mut coo = Coo::new(3, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, -2.0);
        coo.push(2, 0, 3.0);
        coo.push(2, 1, 4.0);
        coo.to_csr()
    }

    #[test]
    fn forward_and_transpose_consistent() {
        let csr = sample_csr();
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        let x = vec![2.0, 1.0];
        let mut y = vec![0.0; 3];
        op.apply(&x, &mut y, &pool);
        assert_eq!(y, vec![2.0, -2.0, 10.0]);
        let mut xt = vec![0.0; 2];
        op.apply_transpose(&y, &mut xt, &pool);
        // Aᵀ y where y = [2,-2,10]: [2*1 + 10*3, -2*-2 + 10*4] = [32, 44]
        assert_eq!(xt, vec![32.0, 44.0]);
    }

    #[test]
    fn abs_sums() {
        let csr = sample_csr();
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(1);
        assert_eq!(op.abs_row_sums(&pool), vec![1.0, 2.0, 7.0]);
        assert_eq!(op.abs_col_sums(&pool), vec![4.0, 6.0]);
    }

    #[test]
    fn cscv_operator_agrees_with_csr_pair() {
        use cscv_core::layout::ImageShape;
        use cscv_core::{build, CscvParams, SinoLayout, Variant};
        // A small sinogram-shaped matrix.
        let layout = SinoLayout {
            n_views: 8,
            n_bins: 10,
        };
        let img = ImageShape { nx: 4, ny: 4 };
        let mut coo = Coo::new(layout.n_rows(), 16);
        for col in 0..16usize {
            for v in 0..8usize {
                coo.push(
                    layout.row_index(v, (v + col) % 9),
                    col,
                    1.0 + col as f64 * 0.1,
                );
            }
        }
        let csr = coo.to_csr();
        let csc = coo.to_csc();
        let exec = CscvExec::new(build(
            &csc,
            layout,
            img,
            CscvParams::new(2, 8, 2),
            Variant::M,
        ));
        let op1 = CscvOperator::new(exec, &csr);
        let op2 = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(2);
        let x: Vec<f64> = (0..16).map(|i| i as f64 * 0.25).collect();
        let y: Vec<f64> = (0..80).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut out1 = vec![0.0; 80];
        let mut out2 = vec![0.0; 80];
        op1.apply(&x, &mut out1, &pool);
        op2.apply(&x, &mut out2, &pool);
        cscv_sparse::dense::assert_vec_close(&out1, &out2, 1e-12);
        let mut t1 = vec![0.0; 16];
        let mut t2 = vec![0.0; 16];
        op1.apply_transpose(&y, &mut t1, &pool);
        op2.apply_transpose(&y, &mut t2, &pool);
        cscv_sparse::dense::assert_vec_close(&t1, &t2, 1e-12);
        assert_eq!(op1.abs_row_sums(&pool), op2.abs_row_sums(&pool));
        assert_eq!(op1.abs_col_sums(&pool), op2.abs_col_sums(&pool));
    }

    #[test]
    fn adjoint_identity_through_operator() {
        let csr = sample_csr();
        let op = SpmvOperator::csr_pair(&csr);
        let pool = ThreadPool::new(2);
        let x = vec![1.5, -0.5];
        let y = vec![0.3, 0.7, -1.1];
        let mut ax = vec![0.0; 3];
        op.apply(&x, &mut ax, &pool);
        let mut aty = vec![0.0; 2];
        op.apply_transpose(&y, &mut aty, &pool);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }
}
