//! Compressed Sparse Row storage.
//!
//! The canonical row-major compressed format (paper Alg. 1's row dual):
//! `row_ptr` offsets, `col_idx`, `vals`. All compressed executors in
//! [`crate::formats`] are constructed from a [`Csr`].

use crate::coo::Coo;
use crate::csc::Csc;
use cscv_simd::Scalar;

/// CSR sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<T> {
    n_rows: usize,
    n_cols: usize,
    // DOMAIN(RowId -> NnzIdx)
    row_ptr: Vec<usize>,
    // DOMAIN(NnzIdx -> ColId)
    col_idx: Vec<u32>,
    vals: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// Build from raw arrays (validated).
    ///
    /// # Panics
    /// On inconsistent array lengths, non-monotone `row_ptr`, or
    /// out-of-bounds / unsorted column indices within a row.
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<T>,
    ) -> Self {
        assert_eq!(row_ptr.len(), n_rows + 1, "row_ptr length");
        assert_eq!(col_idx.len(), vals.len(), "col/val length mismatch");
        assert_eq!(*row_ptr.first().unwrap_or(&0), 0, "row_ptr[0] must be 0");
        assert_eq!(*row_ptr.last().unwrap_or(&0), vals.len(), "row_ptr end");
        for r in 0..n_rows {
            assert!(row_ptr[r] <= row_ptr[r + 1], "row_ptr not monotone at {r}");
            let cols = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "columns not strictly sorted in row {r}");
            }
            if let Some(&last) = cols.last() {
                assert!((last as usize) < n_cols, "col {last} out of bounds");
            }
        }
        Csr {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Build from a row-major sorted, deduplicated COO.
    pub(crate) fn from_sorted_coo(coo: &Coo<T>) -> Self {
        let n_rows = coo.n_rows();
        let mut row_ptr = vec![0usize; n_rows + 1];
        for &(r, _, _) in coo.entries() {
            row_ptr[r as usize + 1] += 1;
        }
        for r in 0..n_rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let col_idx = coo.entries().iter().map(|e| e.1).collect();
        let vals = coo.entries().iter().map(|e| e.2).collect();
        Csr {
            n_rows,
            n_cols: coo.n_cols(),
            row_ptr,
            col_idx,
            vals,
        }
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    /// Column indices and values of one row.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[T]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Bytes of the stored matrix data (`M(A)` in the paper's model).
    pub fn matrix_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * 4
            + self.vals.len() * T::BYTES
    }

    /// Serial reference SpMV: `y = A x` (overwrites `y`).
    pub fn spmv_serial(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = T::ZERO;
            for (c, v) in cols.iter().zip(vals) {
                acc = v.mul_add(x[*c as usize], acc);
            }
            *yr = acc;
        }
    }

    /// Serial transpose SpMV: `y = Aᵀ x` (overwrites `y`).
    ///
    /// Structurally identical to CSC SpMV on the same arrays; used by the
    /// reconstruction algorithms for the back-projection `Aᵀ`.
    pub fn spmv_transpose_serial(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n_rows);
        assert_eq!(y.len(), self.n_cols);
        y.fill(T::ZERO);
        for (r, &xr) in x.iter().enumerate() {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                y[*c as usize] = v.mul_add(xr, y[*c as usize]);
            }
        }
    }

    /// Explicit transpose (counting sort; `O(nnz + n)`).
    pub fn transpose(&self) -> Csr<T> {
        let mut row_ptr = vec![0usize; self.n_cols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for c in 0..self.n_cols {
            row_ptr[c + 1] += row_ptr[c];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut vals = vec![T::ZERO; self.nnz()];
        for r in 0..self.n_rows {
            let (cols, vs) = self.row(r);
            for (c, v) in cols.iter().zip(vs) {
                let dst = cursor[*c as usize];
                col_idx[dst] = r as u32;
                vals[dst] = *v;
                cursor[*c as usize] += 1;
            }
        }
        let t = Csr {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            row_ptr,
            col_idx,
            vals,
        };
        crate::invariants::assert_csr(&t, "Csr::transpose");
        t
    }

    /// Convert to CSC (same matrix, column-compressed).
    pub fn to_csc(&self) -> Csc<T> {
        let t = self.transpose();
        let csc = Csc::from_transposed_csr(t);
        crate::invariants::assert_csc(&csc, "Csr::to_csc");
        csc
    }

    /// Convert back to COO (row-major sorted).
    pub fn to_coo(&self) -> Coo<T> {
        let mut coo = Coo::new(self.n_rows, self.n_cols);
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                coo.push(r, *c as usize, *v);
            }
        }
        crate::invariants::assert_coo(&coo, "Csr::to_coo");
        coo
    }

    /// Per-row nonzero counts.
    pub fn row_lengths(&self) -> Vec<usize> {
        (0..self.n_rows)
            .map(|r| self.row_ptr[r + 1] - self.row_ptr[r])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f64> {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(2, 0, 3.0);
        coo.push(2, 1, 4.0);
        coo.to_csr()
    }

    #[test]
    fn structure_from_coo() {
        let m = sample();
        assert_eq!(m.row_ptr(), &[0, 2, 2, 4]);
        assert_eq!(m.col_idx(), &[0, 2, 0, 1]);
        assert_eq!(m.vals(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn spmv_matches_reference() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        m.spmv_serial(&x, &mut y);
        assert_eq!(y, vec![7.0, 0.0, 11.0]);
    }

    #[test]
    fn transpose_spmv_matches_explicit_transpose() {
        let m = sample();
        let x = vec![1.0, 5.0, -2.0];
        let mut y1 = vec![0.0; 3];
        m.spmv_transpose_serial(&x, &mut y1);
        let mut y2 = vec![0.0; 3];
        m.transpose().spmv_serial(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn coo_roundtrip() {
        let m = sample();
        assert_eq!(m.to_coo().to_csr(), m);
    }

    #[test]
    fn row_access_and_lengths() {
        let m = sample();
        let (cols, vals) = m.row(2);
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[3.0, 4.0]);
        assert_eq!(m.row_lengths(), vec![2, 0, 2]);
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_unsorted_columns() {
        let _ = Csr::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0f32, 2.0]);
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_bad_ptr() {
        let _ = Csr::from_parts(2, 2, vec![0, 3, 1], vec![0], vec![1.0f32]);
    }

    #[test]
    fn empty_rows_and_matrix() {
        let m: Csr<f32> = Coo::new(4, 4).to_csr();
        assert_eq!(m.nnz(), 0);
        let mut y = vec![1.0f32; 4];
        m.spmv_serial(&[0.0; 4], &mut y);
        assert_eq!(y, vec![0.0; 4]);
    }

    #[test]
    fn matrix_bytes_counts_all_arrays() {
        let m = sample();
        let expect = 4 * 8 + 4 * 4 + 4 * 8; // ptr(usize) + idx(u32) + vals(f64)
        assert_eq!(m.matrix_bytes(), expect);
    }
}
