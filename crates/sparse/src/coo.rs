//! Coordinate-format sparse matrix — the interchange format of the suite.
//!
//! Generators (the CT projector, random test matrices) emit COO triplets;
//! every compressed format is built from a sorted, deduplicated [`Coo`].

use crate::csc::Csc;
use crate::csr::Csr;
use cscv_simd::Scalar;

/// A sparse matrix as a list of `(row, col, value)` triplets.
///
/// Indices are `u32` (the paper's largest matrix has 1.75·10⁹ nonzeros but
/// dimensions ≤ 4.2·10⁶, far below `u32::MAX`).
#[derive(Debug, Clone, PartialEq)]
pub struct Coo<T> {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(u32, u32, T)>,
}

impl<T: Scalar> Coo<T> {
    /// Empty matrix of the given shape.
    ///
    /// # Panics
    /// If either dimension exceeds `u32::MAX`.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        assert!(n_rows <= u32::MAX as usize && n_cols <= u32::MAX as usize);
        Coo {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Build from existing triplets (bounds-checked).
    pub fn from_triplets(n_rows: usize, n_cols: usize, entries: Vec<(u32, u32, T)>) -> Self {
        let mut m = Coo::new(n_rows, n_cols);
        for &(r, c, _) in &entries {
            assert!(
                (r as usize) < n_rows && (c as usize) < n_cols,
                "entry ({r},{c}) out of bounds for {n_rows}x{n_cols}"
            );
        }
        m.entries = entries;
        m
    }

    /// Append one entry.
    ///
    /// # Panics
    /// On out-of-bounds indices.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, val: T) {
        assert!(row < self.n_rows && col < self.n_cols);
        self.entries.push((row as u32, col as u32, val));
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    pub fn entries(&self) -> &[(u32, u32, T)] {
        &self.entries
    }

    /// Sort row-major (row, then column).
    pub fn sort_row_major(&mut self) {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
    }

    /// Sort column-major (column, then row).
    pub fn sort_col_major(&mut self) {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (c, r));
    }

    /// Sum entries that share a coordinate and drop exact zeros.
    /// Leaves the matrix row-major sorted.
    pub fn sum_duplicates(&mut self) {
        self.sort_row_major();
        let mut out: Vec<(u32, u32, T)> = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            match out.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => out.push((r, c, v)),
            }
        }
        out.retain(|&(_, _, v)| v != T::ZERO);
        self.entries = out;
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Coo<T> {
        Coo {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            entries: self.entries.iter().map(|&(r, c, v)| (c, r, v)).collect(),
        }
    }

    /// Convert to CSR (duplicates summed).
    pub fn to_csr(&self) -> Csr<T> {
        let mut sorted = self.clone();
        sorted.sum_duplicates();
        let csr = Csr::from_sorted_coo(&sorted);
        crate::invariants::assert_csr(&csr, "Coo::to_csr");
        csr
    }

    /// Convert to CSC (duplicates summed).
    pub fn to_csc(&self) -> Csc<T> {
        let mut sorted = self.clone();
        sorted.sum_duplicates();
        sorted.sort_col_major();
        let csc = Csc::from_col_sorted_coo(&sorted);
        crate::invariants::assert_csc(&csc, "Coo::to_csc");
        csc
    }

    /// Dense row-major image of the matrix (tests / tiny examples only).
    pub fn to_dense(&self) -> Vec<T> {
        let mut d = vec![T::ZERO; self.n_rows * self.n_cols];
        for &(r, c, v) in &self.entries {
            d[r as usize * self.n_cols + c as usize] += v;
        }
        d
    }

    /// Build from a dense row-major image, keeping nonzeros.
    pub fn from_dense(n_rows: usize, n_cols: usize, data: &[T]) -> Self {
        assert_eq!(data.len(), n_rows * n_cols);
        let mut m = Coo::new(n_rows, n_cols);
        for r in 0..n_rows {
            for c in 0..n_cols {
                let v = data[r * n_cols + c];
                if v != T::ZERO {
                    m.push(r, c, v);
                }
            }
        }
        m
    }

    /// Reference SpMV (`y = A x`), used to validate every other kernel.
    pub fn spmv_reference(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        y.fill(T::ZERO);
        for &(r, c, v) in &self.entries {
            y[r as usize] += v * x[c as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo<f64> {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        let mut m = Coo::new(3, 3);
        m.push(0, 0, 1.0);
        m.push(0, 2, 2.0);
        m.push(2, 0, 3.0);
        m.push(2, 1, 4.0);
        m
    }

    #[test]
    fn push_and_dims() {
        let m = sample();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    #[should_panic]
    fn push_out_of_bounds_panics() {
        let mut m: Coo<f32> = Coo::new(2, 2);
        m.push(2, 0, 1.0);
    }

    #[test]
    #[should_panic]
    fn from_triplets_checks_bounds() {
        let _ = Coo::from_triplets(2, 2, vec![(0u32, 5u32, 1.0f32)]);
    }

    #[test]
    fn duplicates_are_summed_and_zeros_dropped() {
        let mut m: Coo<f64> = Coo::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(0, 0, 2.0);
        m.push(1, 1, 5.0);
        m.push(1, 1, -5.0);
        m.sum_duplicates();
        assert_eq!(m.entries(), &[(0, 0, 3.0)]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.to_dense()[2 * 3], 2.0); // A[0][2] -> T[2][0]
        let back = t.transpose();
        assert_eq!(back.to_dense(), m.to_dense());
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        let m2 = Coo::from_dense(3, 3, &d);
        assert_eq!(m2.to_dense(), d);
        assert_eq!(m2.nnz(), 4);
    }

    #[test]
    fn reference_spmv() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![9.0; 3]; // must be overwritten
        m.spmv_reference(&x, &mut y);
        assert_eq!(y, vec![7.0, 0.0, 11.0]);
    }

    #[test]
    fn sorting_orders() {
        let mut m = sample();
        m.sort_col_major();
        let cols: Vec<u32> = m.entries().iter().map(|e| e.1).collect();
        assert!(cols.windows(2).all(|w| w[0] <= w[1]));
        m.sort_row_major();
        let rows: Vec<u32> = m.entries().iter().map(|e| e.0).collect();
        assert!(rows.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_matrix_works() {
        let m: Coo<f32> = Coo::new(0, 0);
        assert_eq!(m.nnz(), 0);
        let mut y: Vec<f32> = vec![];
        m.spmv_reference(&[], &mut y);
    }
}
