//! The execution abstraction every SpMV implementation plugs into.
//!
//! The paper's experiment tables sweep {CSCV-Z, CSCV-M, MKL-CSR, MKL-CSC,
//! Merge, CSR5, ESB, SPC5, CVR} × {matrices} × {precisions} × {threads}.
//! [`SpmvExecutor`] is the uniform surface that makes those sweeps one
//! loop: compute `y = A x`, and report the metadata the paper's
//! performance model needs (`nnz` for GFLOP/s, stored bytes for `M_Rit`).

use crate::pool::ThreadPool;
use cscv_simd::Scalar;

/// A prepared SpMV implementation for one fixed matrix.
pub trait SpmvExecutor<T: Scalar>: Send + Sync {
    /// Implementation name as it appears in report tables
    /// (e.g. `"CSCV-M"`, `"MKL-CSR(analog)"`).
    fn name(&self) -> String;

    fn n_rows(&self) -> usize;

    fn n_cols(&self) -> usize;

    /// Nonzeros of the *original* matrix; the paper's performance metric
    /// is `F = 2·nnz(A)/T` regardless of format padding.
    fn nnz_orig(&self) -> usize;

    /// Values physically stored (≥ `nnz_orig` for padded formats).
    /// `R_nnzE = nnz_stored/nnz_orig − 1` is the paper's zero-padding rate.
    fn nnz_stored(&self) -> usize {
        self.nnz_orig()
    }

    /// Bytes of matrix data read per SpMV iteration — `M(A)` in the
    /// paper's memory-requirement model.
    fn matrix_bytes(&self) -> usize;

    /// Compute `y = A x`, overwriting `y`, using up to
    /// `pool.n_threads()` threads.
    ///
    /// # Panics
    /// If `x.len() != n_cols` or `y.len() != n_rows`.
    fn spmv(&self, x: &[T], y: &mut [T], pool: &ThreadPool);

    /// Batched product `Y = A X` over `k` right-hand sides, packed
    /// column-major: RHS `i` is `x[i·n_cols .. (i+1)·n_cols]` and lands
    /// in `y[i·n_rows .. (i+1)·n_rows]`.
    ///
    /// The default is `k` independent [`spmv`](Self::spmv) calls — the
    /// unamortized baseline. Formats that can reuse one matrix-stream
    /// pass across the batch (CSCV, CSR, CSC) override this with a true
    /// SpMM that reads `A` once per `k`-chunk; results must match the
    /// default within accumulation-order tolerance.
    ///
    /// # Panics
    /// If `k == 0`, `x.len() != k·n_cols` or `y.len() != k·n_rows`.
    fn spmv_multi(&self, x: &[T], k: usize, y: &mut [T], pool: &ThreadPool) {
        assert!(k > 0, "batch width must be positive");
        assert_eq!(x.len(), k * self.n_cols());
        assert_eq!(y.len(), k * self.n_rows());
        for (xk, yk) in x
            .chunks_exact(self.n_cols())
            .zip(y.chunks_exact_mut(self.n_rows()))
        {
            self.spmv(xk, yk, pool);
        }
    }

    /// Useful floating-point operations per SpMV (paper's definition).
    fn flops(&self) -> f64 {
        2.0 * self.nnz_orig() as f64
    }

    /// Zero-padding rate `R_nnzE` of the storage format.
    fn r_nnze(&self) -> f64 {
        if self.nnz_orig() == 0 {
            0.0
        } else {
            self.nnz_stored() as f64 / self.nnz_orig() as f64 - 1.0
        }
    }

    /// `M_Rit = M(A) + M(x) + M(y)`: minimum bytes read/written per
    /// iteration of `y = A x`.
    fn memory_requirement(&self) -> usize {
        self.matrix_bytes() + (self.n_cols() + self.n_rows()) * T::BYTES
    }

    /// Batched-regime memory requirement: `M(A)` is read once for the
    /// whole batch while the vector traffic scales with `k`, so
    /// `M_Rit(k) = M(A) + k·(M(x) + M(y))`. The paper's model predicts a
    /// batched speedup of `k·M_Rit(1)/M_Rit(k)` for bandwidth-bound
    /// matrices — the amortization the batched path is built to collect.
    fn memory_requirement_multi(&self, k: usize) -> usize {
        self.matrix_bytes() + k * (self.n_cols() + self.n_rows()) * T::BYTES
    }
}

/// Validate an executor against a reference output.
///
/// Runs the executor on the given `x` (with a poisoned `y` to catch
/// missing overwrites) and compares against `y_ref` within `tol`.
pub fn validate_against<T: Scalar>(
    exec: &dyn SpmvExecutor<T>,
    x: &[T],
    y_ref: &[T],
    pool: &ThreadPool,
    tol: f64,
) {
    let mut y = vec![T::from_f64(f64::NAN); exec.n_rows()];
    exec.spmv(x, &mut y, pool);
    crate::dense::assert_vec_close(&y, y_ref, tol);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::csr::Csr;

    /// Minimal executor used to test the trait's derived quantities.
    struct TrivialExec {
        csr: Csr<f64>,
        padded: usize,
    }

    impl SpmvExecutor<f64> for TrivialExec {
        fn name(&self) -> String {
            "trivial".into()
        }
        fn n_rows(&self) -> usize {
            self.csr.n_rows()
        }
        fn n_cols(&self) -> usize {
            self.csr.n_cols()
        }
        fn nnz_orig(&self) -> usize {
            self.csr.nnz()
        }
        fn nnz_stored(&self) -> usize {
            self.csr.nnz() + self.padded
        }
        fn matrix_bytes(&self) -> usize {
            self.csr.matrix_bytes()
        }
        fn spmv(&self, x: &[f64], y: &mut [f64], _pool: &ThreadPool) {
            self.csr.spmv_serial(x, y);
        }
    }

    fn make() -> TrivialExec {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 3.0);
        TrivialExec {
            csr: coo.to_csr(),
            padded: 1,
        }
    }

    #[test]
    fn derived_metrics() {
        let e = make();
        assert_eq!(e.flops(), 4.0);
        assert!((e.r_nnze() - 0.5).abs() < 1e-12);
        assert_eq!(e.memory_requirement(), e.matrix_bytes() + 4 * f64::BYTES);
    }

    #[test]
    fn validate_passes_and_catches() {
        let e = make();
        let pool = ThreadPool::new(1);
        validate_against(&e, &[1.0, 1.0], &[2.0, 3.0], &pool, 1e-12);
        let bad = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            validate_against(&e, &[1.0, 1.0], &[2.0, 4.0], &pool, 1e-12);
        }));
        assert!(bad.is_err());
    }

    #[test]
    fn default_spmv_multi_is_loop_of_spmv() {
        let e = make();
        let pool = ThreadPool::new(1);
        // Two RHS column-major: [1,1] and [2,-1].
        let x = [1.0, 1.0, 2.0, -1.0];
        let mut y = [f64::NAN; 4];
        e.spmv_multi(&x, 2, &mut y, &pool);
        assert_eq!(y, [2.0, 3.0, 4.0, -3.0]);
        assert_eq!(
            e.memory_requirement_multi(3),
            e.matrix_bytes() + 3 * 4 * f64::BYTES
        );
        // k = 1 collapses to the single-RHS model.
        assert_eq!(e.memory_requirement_multi(1), e.memory_requirement());
    }

    #[test]
    fn empty_matrix_metrics() {
        let coo: Coo<f64> = Coo::new(0, 0);
        let e = TrivialExec {
            csr: coo.to_csr(),
            padded: 0,
        };
        assert_eq!(e.r_nnze(), 0.0);
        assert_eq!(e.flops(), 0.0);
    }
}
