//! BCSR — blocked CSR with dense `R×CB` sub-matrices.
//!
//! The paper's §II "second type" of general method: represent the matrix
//! as a collection of dense sub-matrices. Dense blocks vectorize
//! trivially and carry one index per block instead of one per nonzero,
//! but "useless zeros are filled into the matrix" — the fill-in is the
//! format's cost, which SPC5's masks and CSCV-M's `vexpand` were both
//! designed to remove. Benchmarked as the zero-padding upper bound of
//! the block family.

use crate::csr::Csr;
use crate::executor::SpmvExecutor;
use crate::formats::util::SharedSliceMut;
use crate::partition::split_by_prefix;
use crate::pool::ThreadPool;
use cscv_simd::Scalar;

/// Block height (rows).
const R: usize = 4;
/// Block width (columns).
const CB: usize = 4;

/// BCSR executor with `R×CB` dense blocks.
pub struct BcsrExec<T> {
    n_rows: usize,
    n_cols: usize,
    nnz: usize,
    /// Per block row: range into `block_cols`/`blocks` (`n_brows + 1`).
    row_ptr: Vec<usize>,
    /// First column of each stored block.
    block_cols: Vec<u32>,
    /// Dense blocks, row-major within the block.
    blocks: Vec<T>,
}

impl<T: Scalar> BcsrExec<T> {
    pub fn new(csr: &Csr<T>) -> Self {
        let n_rows = csr.n_rows();
        let n_brows = n_rows.div_ceil(R);
        let mut row_ptr = Vec::with_capacity(n_brows + 1);
        let mut block_cols = Vec::new();
        let mut blocks = Vec::new();
        row_ptr.push(0usize);
        // For each block row, merge the R rows' entries by block column.
        let mut scratch: Vec<(u32, usize, T)> = Vec::new(); // (bcol, in-block idx, val)
        for br in 0..n_brows {
            scratch.clear();
            let r0 = br * R;
            let r1 = (r0 + R).min(n_rows);
            for (lane, r) in (r0..r1).enumerate() {
                let (rcols, rvals) = csr.row(r);
                for (c, v) in rcols.iter().zip(rvals) {
                    let bcol = *c / CB as u32;
                    let within = lane * CB + (*c as usize % CB);
                    scratch.push((bcol, within, *v));
                }
            }
            scratch.sort_unstable_by_key(|&(bc, w, _)| (bc, w));
            let mut i = 0;
            while i < scratch.len() {
                let bcol = scratch[i].0;
                let base = blocks.len();
                blocks.resize(base + R * CB, T::ZERO);
                while i < scratch.len() && scratch[i].0 == bcol {
                    blocks[base + scratch[i].1] = scratch[i].2;
                    i += 1;
                }
                block_cols.push(bcol * CB as u32);
            }
            row_ptr.push(block_cols.len());
        }
        BcsrExec {
            n_rows,
            n_cols: csr.n_cols(),
            nnz: csr.nnz(),
            row_ptr,
            block_cols,
            blocks,
        }
    }
}

impl<T: Scalar> SpmvExecutor<T> for BcsrExec<T> {
    fn name(&self) -> String {
        format!("BCSR-{R}x{CB}")
    }
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
    fn nnz_orig(&self) -> usize {
        self.nnz
    }
    fn nnz_stored(&self) -> usize {
        self.blocks.len()
    }
    fn matrix_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.block_cols.len() * 4
            + self.blocks.len() * T::BYTES
    }

    fn spmv(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        let ranges = split_by_prefix(&self.row_ptr, pool.n_threads());
        let out = SharedSliceMut::new(y);
        pool.run(|tid| {
            for br in ranges[tid].clone() {
                let mut acc = [T::ZERO; R];
                for e in self.row_ptr[br]..self.row_ptr[br + 1] {
                    let c0 = self.block_cols[e] as usize;
                    let blk = &self.blocks[e * R * CB..(e + 1) * R * CB];
                    // x may end mid-block at the right edge.
                    let cw = CB.min(self.n_cols - c0);
                    for (cc, &xv) in x[c0..c0 + cw].iter().enumerate() {
                        for (lane, a) in acc.iter_mut().enumerate() {
                            *a = blk[lane * CB + cc].mul_add(xv, *a);
                        }
                    }
                }
                let r0 = br * R;
                let r1 = (r0 + R).min(self.n_rows);
                // SAFETY: block-row ranges are disjoint across threads.
                let dst = unsafe { out.slice_mut(r0..r1) };
                dst.copy_from_slice(&acc[..r1 - r0]);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::dense::assert_vec_close;

    fn banded(n: usize) -> Csr<f64> {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            for k in 0..3 {
                coo.push(r, (r + k) % n, 1.0 + (r + k) as f64 * 0.01);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn matches_reference() {
        let csr = banded(50);
        let x: Vec<f64> = (0..50).map(|i| (i as f64).cos()).collect();
        let mut y_ref = vec![0.0; 50];
        csr.spmv_serial(&x, &mut y_ref);
        let exec = BcsrExec::new(&csr);
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let mut y = vec![f64::NAN; 50];
            exec.spmv(&x, &mut y, &pool);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn fill_in_counted() {
        let csr = banded(32);
        let exec = BcsrExec::new(&csr);
        assert!(
            exec.nnz_stored() > exec.nnz_orig(),
            "dense blocks fill zeros"
        );
        assert!(exec.r_nnze() > 0.0);
        // Index data: one u32 per block, far below one per nonzero.
        let n_blocks = exec.nnz_stored() / (R * CB);
        assert!(n_blocks * 4 < exec.nnz_orig() * 4);
    }

    #[test]
    fn ragged_edges() {
        // Dimensions not divisible by block sizes.
        let mut coo = Coo::new(7, 9);
        coo.push(6, 8, 3.0);
        coo.push(0, 0, 1.0);
        coo.push(3, 5, -2.0);
        let csr = coo.to_csr();
        let exec = BcsrExec::new(&csr);
        let pool = ThreadPool::new(2);
        let mut y = vec![f64::NAN; 7];
        exec.spmv(&[1.0; 9], &mut y, &pool);
        assert_eq!(y[0], 1.0);
        assert_eq!(y[3], -2.0);
        assert_eq!(y[6], 3.0);
    }

    #[test]
    fn empty() {
        let csr: Csr<f32> = Coo::new(3, 3).to_csr();
        let exec = BcsrExec::new(&csr);
        let pool = ThreadPool::new(1);
        let mut y = vec![f32::NAN; 3];
        exec.spmv(&[1.0; 3], &mut y, &pool);
        assert!(y.iter().all(|&v| v == 0.0));
    }
}
