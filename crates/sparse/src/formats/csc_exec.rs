//! CSC SpMV executors — the MKL-CSC analog.
//!
//! Column-major SpMV scatters into `y`, so the parallel version follows
//! the standard recipe (and the paper's own multithreading design):
//! nnz-balanced column ranges per thread, each thread accumulating into a
//! private copy of `y`, then a parallel reduction over row ranges.

use crate::csc::Csc;
use crate::executor::SpmvExecutor;
use crate::formats::util::{reduce_buffers_into, Scratch};
use crate::partition::{batch_chunks, split_by_prefix};
use crate::pool::ThreadPool;
use cscv_simd::Scalar;

/// Plain serial CSC SpMV (paper Algorithm 1).
pub struct CscSerialExec<T> {
    csc: Csc<T>,
}

impl<T: Scalar> CscSerialExec<T> {
    pub fn new(csc: Csc<T>) -> Self {
        CscSerialExec { csc }
    }
}

impl<T: Scalar> SpmvExecutor<T> for CscSerialExec<T> {
    fn name(&self) -> String {
        "CSC-serial".into()
    }
    fn n_rows(&self) -> usize {
        self.csc.n_rows()
    }
    fn n_cols(&self) -> usize {
        self.csc.n_cols()
    }
    fn nnz_orig(&self) -> usize {
        self.csc.nnz()
    }
    fn matrix_bytes(&self) -> usize {
        self.csc.matrix_bytes()
    }
    fn spmv(&self, x: &[T], y: &mut [T], _pool: &ThreadPool) {
        self.csc.spmv_serial(x, y);
    }
}

/// Parallel CSC SpMV (MKL-CSC analog): private `y` copies + reduction.
pub struct CscParallelExec<T> {
    csc: Csc<T>,
    scratch: Scratch<T>,
}

impl<T: Scalar> CscParallelExec<T> {
    pub fn new(csc: Csc<T>) -> Self {
        CscParallelExec {
            csc,
            scratch: Scratch::new(),
        }
    }

    /// One compiled-width chunk of the batched product: each column's
    /// row/value stream is read once and scattered into `K` private
    /// `y`-copy segments, which the standard parallel reduction then
    /// folds (the whole `K·n_rows` buffer reduces as one flat vector).
    fn spmm_chunk<const K: usize>(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        let (n_rows, n_cols) = (self.csc.n_rows(), self.csc.n_cols());
        let n = pool.n_threads();
        let csc = &self.csc;
        if n == 1 {
            y.fill(T::ZERO);
            for c in 0..n_cols {
                let (rows, vals) = csc.col(c);
                let xc: [T; K] = std::array::from_fn(|k| x[k * n_cols + c]);
                for (r, v) in rows.iter().zip(vals) {
                    let ri = *r as usize;
                    for k in 0..K {
                        y[k * n_rows + ri] = v.mul_add(xc[k], y[k * n_rows + ri]);
                    }
                }
            }
            return;
        }
        let ranges = split_by_prefix(self.csc.col_ptr(), n);
        let mut bufs = self.scratch.take(n, y.len());
        {
            let bufs: &mut [Vec<T>] = &mut bufs;
            let bufs_ptr = crate::formats::util::SharedSliceMut::new(bufs);
            pool.run(|tid| {
                // SAFETY: each thread touches only element `tid`.
                let buf = &mut unsafe { bufs_ptr.slice_mut(tid..tid + 1) }[0];
                for c in ranges[tid].clone() {
                    let (rows, vals) = csc.col(c);
                    let xc: [T; K] = std::array::from_fn(|k| x[k * n_cols + c]);
                    if xc.iter().all(|&v| v == T::ZERO) {
                        continue;
                    }
                    for (r, v) in rows.iter().zip(vals) {
                        let ri = *r as usize;
                        for k in 0..K {
                            buf[k * n_rows + ri] = v.mul_add(xc[k], buf[k * n_rows + ri]);
                        }
                    }
                }
            });
        }
        reduce_buffers_into(pool, &bufs[..n], y);
    }
}

impl<T: Scalar> SpmvExecutor<T> for CscParallelExec<T> {
    fn name(&self) -> String {
        "MKL-CSC(analog)".into()
    }
    fn n_rows(&self) -> usize {
        self.csc.n_rows()
    }
    fn n_cols(&self) -> usize {
        self.csc.n_cols()
    }
    fn nnz_orig(&self) -> usize {
        self.csc.nnz()
    }
    fn matrix_bytes(&self) -> usize {
        self.csc.matrix_bytes()
    }

    fn spmv(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        assert_eq!(x.len(), self.csc.n_cols());
        assert_eq!(y.len(), self.csc.n_rows());
        let n = pool.n_threads();
        if n == 1 {
            self.csc.spmv_serial(x, y);
            return;
        }
        let ranges = split_by_prefix(self.csc.col_ptr(), n);
        let mut bufs = self.scratch.take(n, y.len());
        let csc = &self.csc;
        {
            let bufs: &mut [Vec<T>] = &mut bufs;
            // Hand each worker its own private buffer through a raw view.
            let bufs_ptr = crate::formats::util::SharedSliceMut::new(bufs);
            pool.run(|tid| {
                // SAFETY: each thread touches only element `tid`.
                let buf = &mut unsafe { bufs_ptr.slice_mut(tid..tid + 1) }[0];
                for c in ranges[tid].clone() {
                    let (rows, vals) = csc.col(c);
                    let xc = x[c];
                    if xc == T::ZERO {
                        continue;
                    }
                    for (r, v) in rows.iter().zip(vals) {
                        buf[*r as usize] = v.mul_add(xc, buf[*r as usize]);
                    }
                }
            });
        }
        reduce_buffers_into(pool, &bufs[..n], y);
    }

    /// Batched SpMM: one column-stream pass per register-tile chunk.
    /// Private-copy buffers grow to `chunk·n_rows`, so the scratch cost
    /// scales with the chunk width, not the full batch.
    fn spmv_multi(&self, x: &[T], k: usize, y: &mut [T], pool: &ThreadPool) {
        assert!(k > 0, "batch width must be positive");
        assert_eq!(x.len(), k * self.csc.n_cols());
        assert_eq!(y.len(), k * self.csc.n_rows());
        let (n_cols, n_rows) = (self.csc.n_cols(), self.csc.n_rows());
        let mut done = 0usize;
        for chunk in batch_chunks(k, &[8, 4, 2, 1]) {
            let xs = &x[done * n_cols..(done + chunk) * n_cols];
            let ys = &mut y[done * n_rows..(done + chunk) * n_rows];
            match chunk {
                8 => self.spmm_chunk::<8>(xs, ys, pool),
                4 => self.spmm_chunk::<4>(xs, ys, pool),
                2 => self.spmm_chunk::<2>(xs, ys, pool),
                _ => self.spmv(xs, ys, pool),
            }
            done += chunk;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::dense::assert_vec_close;

    fn sample(n: usize) -> (Csc<f64>, Vec<f64>, Vec<f64>) {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            coo.push(i, (i + 1) % n, -1.0);
            coo.push((i + 3) % n, i, 0.5);
        }
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y_ref = vec![0.0; n];
        coo.to_csr().spmv_serial(&x, &mut y_ref);
        (coo.to_csc(), x, y_ref)
    }

    #[test]
    fn serial_matches_reference() {
        let (csc, x, y_ref) = sample(50);
        let exec = CscSerialExec::new(csc);
        let pool = ThreadPool::new(1);
        let mut y = vec![f64::NAN; 50];
        exec.spmv(&x, &mut y, &pool);
        assert_vec_close(&y, &y_ref, 1e-12);
    }

    #[test]
    fn parallel_matches_reference_at_all_widths() {
        let (csc, x, y_ref) = sample(97);
        let exec = CscParallelExec::new(csc);
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let mut y = vec![f64::NAN; 97];
            exec.spmv(&x, &mut y, &pool);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn repeated_calls_reuse_scratch_correctly() {
        let (csc, x, y_ref) = sample(64);
        let exec = CscParallelExec::new(csc);
        let pool = ThreadPool::new(4);
        for _ in 0..3 {
            let mut y = vec![f64::NAN; 64];
            exec.spmv(&x, &mut y, &pool);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn spmv_multi_matches_k_independent_spmvs() {
        let (csc, _, _) = sample(97);
        let (nr, nc) = (csc.n_rows(), csc.n_cols());
        let exec = CscParallelExec::new(csc);
        for k in [1usize, 3, 8, 11] {
            let x: Vec<f64> = (0..k * nc).map(|i| (i as f64 * 0.17).cos()).collect();
            for threads in [1, 3] {
                let pool = ThreadPool::new(threads);
                let mut y_multi = vec![f64::NAN; k * nr];
                exec.spmv_multi(&x, k, &mut y_multi, &pool);
                for kk in 0..k {
                    let mut y_one = vec![f64::NAN; nr];
                    exec.spmv(&x[kk * nc..(kk + 1) * nc], &mut y_one, &pool);
                    assert_vec_close(&y_multi[kk * nr..(kk + 1) * nr], &y_one, 1e-12);
                }
            }
        }
    }

    #[test]
    fn zero_x_short_circuits() {
        let (csc, _, _) = sample(16);
        let exec = CscParallelExec::new(csc);
        let pool = ThreadPool::new(2);
        let mut y = vec![f64::NAN; 16];
        exec.spmv(&[0.0; 16], &mut y, &pool);
        assert!(y.iter().all(|&v| v == 0.0));
    }
}
