//! CSR5-style tiled segmented-sum SpMV — the CSR5 analog (Liu & Vinter,
//! ICS'15).
//!
//! The nnz stream is cut into tiles of σ×ω entries. Inside a tile, ω
//! *lanes* each own σ consecutive entries, stored **transposed**
//! (step-major) so one SIMD load per step fetches one entry per lane. Row
//! boundaries are bit flags; each lane runs a flag-segmented sum, so the
//! hot loop is a pure vector FMA with rare scalar flushes. Tiles have
//! identical nnz, giving CSR5 its perfect load balance on power-law rows.
//!
//! Simplifications versus the original (documented in DESIGN.md): tile
//! descriptors are plain arrays instead of packed bit-fields, and the
//! cross-thread stitching uses merge-style carries instead of CSR5's
//! calibrator.

use crate::csr::Csr;
use crate::executor::SpmvExecutor;
use crate::formats::util::SharedSliceMut;
use crate::partition::even_chunks;
use crate::pool::ThreadPool;
use cscv_simd::Scalar;

/// Lanes per tile (ω).
const OMEGA: usize = 8;
/// Steps per lane (σ).
const SIGMA: usize = 16;
/// Nonzeros per tile.
const TILE: usize = OMEGA * SIGMA;

/// CSR5-style executor.
pub struct Csr5Exec<T> {
    n_rows: usize,
    n_cols: usize,
    nnz: usize,
    /// Transposed tile storage: entry (tile t, lane l, step s) lives at
    /// `t*TILE + s*OMEGA + l`.
    vals_t: Vec<T>,
    cols_t: Vec<u32>,
    /// Per (tile, step): bit `l` set ⇔ entry (l, s) is the first of a row.
    flag_words: Vec<u32>,
    /// Rows of flagged entries, grouped by (tile, lane), step-ordered.
    seg_rows: Vec<u32>,
    /// Offsets into `seg_rows`, one per (tile, lane), length `tiles*ω + 1`.
    seg_offsets: Vec<u32>,
    /// Row containing each lane's first entry.
    lane_first_row: Vec<u32>,
    /// Tail entries (nnz % TILE) processed scalar: (row, col, val).
    tail: Vec<(u32, u32, T)>,
}

impl<T: Scalar> Csr5Exec<T> {
    pub fn new(csr: &Csr<T>) -> Self {
        let nnz = csr.nnz();
        let tiles = nnz / TILE;
        let body = tiles * TILE;

        let mut vals_t = vec![T::ZERO; body];
        let mut cols_t = vec![0u32; body];
        let mut flag_words = vec![0u32; tiles * SIGMA];
        let mut lane_first_row = vec![0u32; tiles * OMEGA];
        let mut seg_rows = Vec::new();
        let mut seg_counts = vec![0u32; tiles * OMEGA];
        let mut tail = Vec::with_capacity(nnz - body);

        let row_ptr = csr.row_ptr();
        let col_idx = csr.col_idx();
        let vals = csr.vals();
        let mut row = 0usize;
        for idx in 0..nnz {
            // Advance the row cursor; `row` owns entry `idx`.
            while row_ptr[row + 1] <= idx {
                row += 1;
            }
            let first_of_row = idx == row_ptr[row];
            if idx < body {
                let t = idx / TILE;
                let k = idx % TILE;
                let lane = k / SIGMA;
                let s = k % SIGMA;
                let dst = t * TILE + s * OMEGA + lane;
                vals_t[dst] = vals[idx];
                cols_t[dst] = col_idx[idx];
                if s == 0 {
                    lane_first_row[t * OMEGA + lane] = row as u32;
                }
                if first_of_row {
                    flag_words[t * SIGMA + s] |= 1u32 << lane;
                    seg_rows.push(row as u32);
                    seg_counts[t * OMEGA + lane] += 1;
                }
            } else {
                tail.push((row as u32, col_idx[idx], vals[idx]));
            }
        }
        // seg_rows was pushed in idx order = (tile, lane, step) order,
        // which is exactly the grouping the offsets describe.
        let mut seg_offsets = Vec::with_capacity(tiles * OMEGA + 1);
        seg_offsets.push(0u32);
        let mut acc = 0u32;
        for &c in &seg_counts {
            acc += c;
            seg_offsets.push(acc);
        }

        Csr5Exec {
            n_rows: csr.n_rows(),
            n_cols: csr.n_cols(),
            nnz,
            vals_t,
            cols_t,
            flag_words,
            seg_rows,
            seg_offsets,
            lane_first_row,
            tail,
        }
    }

    fn n_tiles(&self) -> usize {
        self.vals_t.len() / TILE
    }

    /// Process a contiguous tile range, flushing completed segments into
    /// `y` except for `shared_row`, whose contributions accumulate into
    /// the returned carry (it may be co-owned by the previous thread).
    ///
    /// # Safety
    /// Per the carry protocol, only this thread flushes rows whose last
    /// entry lies in `tiles` (other threads route them to carries), so the
    /// raw `y` writes are disjoint across concurrent callers.
    unsafe fn run_tiles(
        &self,
        tiles: std::ops::Range<usize>,
        x: &[T],
        y: &SharedSliceMut<T>,
        shared_row: u32,
    ) -> T {
        let mut carry = T::ZERO;
        let mut flush = |row: u32, v: T| {
            if row == shared_row {
                carry += v;
            } else {
                // SAFETY: disjointness per the carry protocol above.
                unsafe { *y.get_raw(row as usize) += v };
            }
        };
        for t in tiles {
            let mut cur = [0u32; OMEGA];
            let mut seg_ptr = [0usize; OMEGA];
            for l in 0..OMEGA {
                cur[l] = self.lane_first_row[t * OMEGA + l];
                seg_ptr[l] = self.seg_offsets[t * OMEGA + l] as usize;
            }
            let mut acc = [T::ZERO; OMEGA];
            for s in 0..SIGMA {
                let base = t * TILE + s * OMEGA;
                let mut fw = self.flag_words[t * SIGMA + s];
                // Rare scalar path: close segments that end at this step.
                while fw != 0 {
                    let l = fw.trailing_zeros() as usize;
                    fw &= fw - 1;
                    flush(cur[l], acc[l]);
                    acc[l] = T::ZERO;
                    cur[l] = self.seg_rows[seg_ptr[l]];
                    seg_ptr[l] += 1;
                }
                // Hot path: one FMA per lane, contiguous loads.
                let vs = &self.vals_t[base..base + OMEGA];
                let cs = &self.cols_t[base..base + OMEGA];
                for l in 0..OMEGA {
                    acc[l] = vs[l].mul_add(x[cs[l] as usize], acc[l]);
                }
            }
            for l in 0..OMEGA {
                flush(cur[l], acc[l]);
            }
        }
        carry
    }
}

impl<T: Scalar> SpmvExecutor<T> for Csr5Exec<T> {
    fn name(&self) -> String {
        "CSR5(analog)".into()
    }
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
    fn nnz_orig(&self) -> usize {
        self.nnz
    }
    fn matrix_bytes(&self) -> usize {
        self.vals_t.len() * T::BYTES
            + self.cols_t.len() * 4
            + self.flag_words.len() * 4
            + self.seg_rows.len() * 4
            + self.seg_offsets.len() * 4
            + self.lane_first_row.len() * 4
            + self.tail.len() * (8 + T::BYTES)
    }

    fn spmv(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        let n = pool.n_threads();
        let tile_ranges = even_chunks(self.n_tiles(), n);

        // The only row two threads can both touch is the one spanning
        // their boundary: thread t routes its contributions to the row
        // that was already open at its first entry into a carry.
        let mut shared_rows = vec![u32::MAX; n];
        for (t, range) in tile_ranges.iter().enumerate() {
            if t > 0 && !range.is_empty() {
                shared_rows[t] = self.lane_first_row[range.start * OMEGA];
            }
        }
        let mut carries = vec![T::ZERO; n];
        {
            let out = SharedSliceMut::new(y);
            let carries_s = SharedSliceMut::new(&mut carries);
            let y_len = out.len();
            let zero_ranges = even_chunks(y_len, n);
            pool.run(|tid| {
                // Phase split inside one dispatch is unsound (no barrier),
                // so zero only this thread's slice first…
                // AUDIT(index-ok): zero_ranges has one entry per pool
                // thread and tid < n_threads by the dispatch contract.
                let z = zero_ranges[tid].clone();
                // SAFETY: disjoint zero ranges.
                unsafe { out.slice_mut(z) }.fill(T::ZERO);
            });
            // Zeroing dispatch fully completed (ack barrier), so the
            // flush dispatch may repartition `out` by row ownership.
            out.claims_barrier();
            pool.run(|tid| {
                // AUDIT(index-ok): tile_ranges / shared_rows are sized
                // one entry per pool thread; tid < n_threads.
                let range = tile_ranges[tid].clone();
                if range.is_empty() {
                    return;
                }
                // SAFETY: threads flush only rows owned per the carry
                // protocol; the shared boundary row goes to the carry.
                // AUDIT(index-ok): shared_rows has n_threads entries.
                let carry = unsafe { self.run_tiles(range, x, &out, shared_rows[tid]) };
                // SAFETY: slot `tid` only.
                unsafe { carries_s.slice_mut(tid..tid + 1)[0] = carry };
            });
        }
        for t in 0..n {
            if shared_rows[t] != u32::MAX {
                y[shared_rows[t] as usize] += carries[t];
            }
        }
        // Scalar tail (fewer than TILE entries).
        for &(r, c, v) in &self.tail {
            y[r as usize] = v.mul_add(x[c as usize], y[r as usize]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::dense::assert_vec_close;

    fn power_law(n: usize) -> Csr<f64> {
        // Row r has ~n/(r+1) nonzeros — the skew CSR5 targets.
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            let len = (n / (r + 1)).max(1);
            for k in 0..len {
                coo.push(r, (r + k * 7) % n, ((r + k) % 10) as f64 * 0.3 - 1.0);
            }
        }
        coo.to_csr()
    }

    fn check(csr: &Csr<f64>, threads: &[usize]) {
        let n_cols = csr.n_cols();
        let x: Vec<f64> = (0..n_cols).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let mut y_ref = vec![0.0; csr.n_rows()];
        csr.spmv_serial(&x, &mut y_ref);
        let exec = Csr5Exec::new(csr);
        for &t in threads {
            let pool = ThreadPool::new(t);
            let mut y = vec![f64::NAN; csr.n_rows()];
            exec.spmv(&x, &mut y, &pool);
            assert_vec_close(&y, &y_ref, 1e-11);
        }
    }

    #[test]
    fn power_law_matches_reference() {
        check(&power_law(300), &[1, 2, 3, 4, 8]);
    }

    #[test]
    fn uniform_rows_match() {
        let mut coo = Coo::new(100, 50);
        for r in 0..100 {
            for k in 0..5 {
                coo.push(r, (r + k * 11) % 50, 1.0 + k as f64);
            }
        }
        check(&coo.to_csr(), &[1, 4]);
    }

    #[test]
    fn tiny_matrix_all_tail() {
        // nnz < TILE: everything goes through the scalar tail.
        let mut coo = Coo::new(5, 5);
        coo.push(0, 0, 1.0);
        coo.push(3, 4, 2.0);
        check(&coo.to_csr(), &[1, 2]);
    }

    #[test]
    fn exactly_one_tile() {
        let mut coo = Coo::new(TILE, 4);
        for i in 0..TILE {
            coo.push(i, i % 4, i as f64 * 0.1);
        }
        check(&coo.to_csr(), &[1, 2]);
    }

    #[test]
    fn row_spanning_multiple_tiles_and_threads() {
        // One row holds 4 tiles worth of nnz.
        let n = 4 * TILE;
        let mut coo = Coo::new(3, n);
        for c in 0..n {
            coo.push(1, c, 1.0);
        }
        coo.push(0, 0, 5.0);
        coo.push(2, 1, 7.0);
        check(&coo.to_csr(), &[1, 2, 3, 4]);
    }

    #[test]
    fn empty_rows_interleaved() {
        let mut coo = Coo::new(400, 20);
        for r in (0..400).step_by(3) {
            coo.push(r, r % 20, 1.0);
        }
        check(&coo.to_csr(), &[1, 4]);
    }

    #[test]
    fn metadata_counts() {
        let csr = power_law(100);
        let exec = Csr5Exec::new(&csr);
        assert_eq!(exec.nnz_orig(), csr.nnz());
        assert_eq!(exec.nnz_stored(), csr.nnz());
        assert!(exec.matrix_bytes() > csr.nnz() * (4 + 8));
    }
}
