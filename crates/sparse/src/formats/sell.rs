//! SELL-C-σ — the ESB analog (sorted sliced ELLPACK).
//!
//! Intel's ESB ("ELLPACK Sparse Block") and SELL-C-σ are the same family:
//! rows are sorted by length inside windows of σ rows (keeping the sort
//! local so `x` locality survives), grouped into chunks of `C` rows, and
//! each chunk is stored column-major with padding up to the chunk's
//! longest row. The kernel is a clean vertical SIMD sweep: `C` output
//! accumulators advance one ELL column per step.

use crate::csr::Csr;
use crate::executor::SpmvExecutor;
use crate::formats::util::SharedSliceMut;
use crate::partition::split_by_prefix;
use crate::pool::ThreadPool;
use cscv_simd::Scalar;

/// Chunk height (SIMD rows per slice). 8 = one AVX-512 f64 register /
/// half an f32 register; the sweet spot ESB uses on SKL-class hardware.
const C: usize = 8;
/// Sorting-window height in chunks (σ = SIGMA_CHUNKS · C rows).
const SIGMA_CHUNKS: usize = 32;

/// SELL-C-σ executor.
pub struct SellCSigmaExec<T> {
    n_rows: usize,
    n_cols: usize,
    nnz: usize,
    /// Chunk start offsets into `vals`/`cols` (`n_chunks + 1`).
    // DOMAIN(GroupId -> NnzIdx)
    chunk_ptr: Vec<usize>,
    /// Per-chunk width (longest row in chunk).
    widths: Vec<u32>,
    /// Column-major per chunk: entry (j, l) at `chunk_ptr[c] + j*C + l`.
    cols: Vec<u32>,
    vals: Vec<T>,
    /// Original row of slot `l` in chunk `c` (u32::MAX = padding slot).
    // DOMAIN(PermutedPos -> RowId)
    perm: Vec<u32>,
}

impl<T: Scalar> SellCSigmaExec<T> {
    pub fn new(csr: &Csr<T>) -> Self {
        let n_rows = csr.n_rows();
        let n_chunks = n_rows.div_ceil(C);
        let sigma = SIGMA_CHUNKS * C;

        // Sort rows by descending length within σ-windows.
        let mut order: Vec<u32> = (0..n_rows as u32).collect();
        for window in order.chunks_mut(sigma) {
            window.sort_by_key(|&r| {
                std::cmp::Reverse(csr.row_ptr()[r as usize + 1] - csr.row_ptr()[r as usize])
            });
        }

        let mut chunk_ptr = Vec::with_capacity(n_chunks + 1);
        let mut widths = Vec::with_capacity(n_chunks);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut perm = vec![u32::MAX; n_chunks * C];
        chunk_ptr.push(0usize);

        for chunk in 0..n_chunks {
            let rows = &order[chunk * C..((chunk + 1) * C).min(n_rows)];
            let width = rows
                .iter()
                .map(|&r| csr.row_ptr()[r as usize + 1] - csr.row_ptr()[r as usize])
                .max()
                .unwrap_or(0);
            widths.push(width as u32);
            let base = cols.len();
            cols.resize(base + width * C, 0u32);
            vals.resize(base + width * C, T::ZERO);
            for (l, &r) in rows.iter().enumerate() {
                perm[chunk * C + l] = r;
                let (rcols, rvals) = csr.row(r as usize);
                for (j, (&cc, &vv)) in rcols.iter().zip(rvals).enumerate() {
                    cols[base + j * C + l] = cc;
                    vals[base + j * C + l] = vv;
                }
            }
            chunk_ptr.push(cols.len());
        }

        SellCSigmaExec {
            n_rows,
            n_cols: csr.n_cols(),
            nnz: csr.nnz(),
            chunk_ptr,
            widths,
            cols,
            vals,
            perm,
        }
    }
}

impl<T: Scalar> SpmvExecutor<T> for SellCSigmaExec<T> {
    fn name(&self) -> String {
        "ESB/SELL-C-sigma(analog)".into()
    }
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
    fn nnz_orig(&self) -> usize {
        self.nnz
    }
    fn nnz_stored(&self) -> usize {
        self.vals.len()
    }
    fn matrix_bytes(&self) -> usize {
        self.chunk_ptr.len() * std::mem::size_of::<usize>()
            + self.widths.len() * 4
            + self.cols.len() * 4
            + self.vals.len() * T::BYTES
            + self.perm.len() * 4
    }

    fn spmv(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        let n_chunks = self.widths.len();
        let chunk_ranges = split_by_prefix(&self.chunk_ptr, pool.n_threads());
        let out = SharedSliceMut::new(y);
        pool.run(|tid| {
            for chunk in chunk_ranges[tid].clone() {
                let width = self.widths[chunk] as usize;
                let base = self.chunk_ptr[chunk];
                let mut acc = [T::ZERO; C];
                for j in 0..width {
                    let cs = &self.cols[base + j * C..base + j * C + C];
                    let vs = &self.vals[base + j * C..base + j * C + C];
                    for l in 0..C {
                        acc[l] = vs[l].mul_add(x[cs[l] as usize], acc[l]);
                    }
                }
                for (l, &a) in acc.iter().enumerate() {
                    // AUDIT(index-ok): perm holds n_chunks·C entries and
                    // chunk < n_chunks, l < C by construction.
                    let r = self.perm[chunk * C + l];
                    if r != u32::MAX {
                        // SAFETY: each original row appears in exactly one
                        // chunk slot, and chunks are disjoint per thread.
                        unsafe {
                            out.slice_mut(r as usize..r as usize + 1)[0] = a;
                        }
                    }
                }
            }
            let _ = n_chunks;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::dense::assert_vec_close;

    fn banded(n: usize, band: usize) -> Csr<f64> {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            // Variable bandwidth so sorting actually reorders.
            let w = 1 + (r * 7) % band;
            for k in 0..w {
                let c = (r + k) % n;
                coo.push(r, c, (r + k + 1) as f64 * 0.01);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn matches_reference() {
        let csr = banded(123, 9);
        let x: Vec<f64> = (0..123).map(|i| (i as f64).cos()).collect();
        let mut y_ref = vec![0.0; 123];
        csr.spmv_serial(&x, &mut y_ref);
        let exec = SellCSigmaExec::new(&csr);
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let mut y = vec![f64::NAN; 123];
            exec.spmv(&x, &mut y, &pool);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn padding_is_counted() {
        let csr = banded(64, 9);
        let exec = SellCSigmaExec::new(&csr);
        assert!(exec.nnz_stored() >= exec.nnz_orig());
        assert!(exec.r_nnze() >= 0.0);
    }

    #[test]
    fn sigma_sorting_reduces_padding() {
        // Compare against padding of the worst chunk arrangement by
        // checking that stored nnz is below plain ELL (global max width).
        let csr = banded(256, 17);
        let exec = SellCSigmaExec::new(&csr);
        let max_row = csr.row_lengths().into_iter().max().unwrap();
        let ell_stored = 256 * max_row;
        assert!(exec.nnz_stored() < ell_stored);
    }

    #[test]
    fn non_multiple_of_chunk_rows() {
        let csr = banded(13, 4); // 13 rows, last chunk ragged
        let x = vec![1.0f64; 13];
        let mut y_ref = vec![0.0; 13];
        csr.spmv_serial(&x, &mut y_ref);
        let exec = SellCSigmaExec::new(&csr);
        let pool = ThreadPool::new(2);
        let mut y = vec![f64::NAN; 13];
        exec.spmv(&x, &mut y, &pool);
        assert_vec_close(&y, &y_ref, 1e-12);
    }

    #[test]
    fn empty_matrix() {
        let coo: Coo<f32> = Coo::new(5, 5);
        let exec = SellCSigmaExec::new(&coo.to_csr());
        let pool = ThreadPool::new(1);
        let mut y = vec![f32::NAN; 5];
        exec.spmv(&[1.0; 5], &mut y, &pool);
        assert!(y.iter().all(|&v| v == 0.0));
    }
}
