//! CSR SpMV executors — the MKL-CSR analog.
//!
//! Vendor CSR kernels parallelize over nnz-balanced row ranges and unroll
//! the per-row dot product across several accumulators so the FMA latency
//! chain does not serialize. We reproduce both: [`CsrSerialExec`] is the
//! plain textbook loop (baseline of baselines), [`CsrExec`] the tuned
//! parallel version used as the "MKL-CSR" stand-in of the experiments.

use crate::csr::Csr;
use crate::executor::SpmvExecutor;
use crate::formats::util::SharedSliceMut;
use crate::partition::{batch_chunks, split_by_prefix};
use crate::pool::ThreadPool;
use cscv_simd::Scalar;

/// Plain serial CSR SpMV.
pub struct CsrSerialExec<T> {
    csr: Csr<T>,
}

impl<T: Scalar> CsrSerialExec<T> {
    pub fn new(csr: Csr<T>) -> Self {
        CsrSerialExec { csr }
    }
}

impl<T: Scalar> SpmvExecutor<T> for CsrSerialExec<T> {
    fn name(&self) -> String {
        "CSR-serial".into()
    }
    fn n_rows(&self) -> usize {
        self.csr.n_rows()
    }
    fn n_cols(&self) -> usize {
        self.csr.n_cols()
    }
    fn nnz_orig(&self) -> usize {
        self.csr.nnz()
    }
    fn matrix_bytes(&self) -> usize {
        self.csr.matrix_bytes()
    }
    fn spmv(&self, x: &[T], y: &mut [T], _pool: &ThreadPool) {
        self.csr.spmv_serial(x, y);
    }
}

/// Tuned CSR SpMV (MKL-CSR analog): nnz-balanced row partitioning and a
/// 4-way unrolled gather-dot row kernel.
pub struct CsrExec<T> {
    csr: Csr<T>,
}

impl<T: Scalar> CsrExec<T> {
    pub fn new(csr: Csr<T>) -> Self {
        CsrExec { csr }
    }

    /// One row as an ILP-friendly dot product.
    #[inline(always)]
    fn row_dot(cols: &[u32], vals: &[T], x: &[T]) -> T {
        let mut acc = [T::ZERO; 4];
        let mut cc = cols.chunks_exact(4);
        let mut vc = vals.chunks_exact(4);
        for (cs, vs) in (&mut cc).zip(&mut vc) {
            for l in 0..4 {
                acc[l] = vs[l].mul_add(x[cs[l] as usize], acc[l]);
            }
        }
        let mut tail = T::ZERO;
        for (c, v) in cc.remainder().iter().zip(vc.remainder()) {
            tail = v.mul_add(x[*c as usize], tail);
        }
        cscv_simd::lanes::hsum(&acc) + tail
    }

    /// One row against `K` column-major RHS vectors: the row's column
    /// indices and values stream through registers once, each nonzero
    /// feeding `K` independent FMA accumulators.
    #[inline(always)]
    fn row_dot_multi<const K: usize>(cols: &[u32], vals: &[T], x: &[T], n_cols: usize) -> [T; K] {
        let mut acc = [T::ZERO; K];
        for (c, v) in cols.iter().zip(vals) {
            let ci = *c as usize;
            for k in 0..K {
                acc[k] = v.mul_add(x[k * n_cols + ci], acc[k]);
            }
        }
        acc
    }

    /// One compiled-width chunk of the batched product (row-parallel,
    /// row ranges disjoint per thread for every RHS copy).
    fn spmm_chunk<const K: usize>(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        let (n_rows, n_cols) = (self.csr.n_rows(), self.csr.n_cols());
        let ranges = split_by_prefix(self.csr.row_ptr(), pool.n_threads());
        let out = SharedSliceMut::new(y);
        let csr = &self.csr;
        pool.run(|tid| {
            for r in ranges[tid].clone() {
                let (cols, vals) = csr.row(r);
                let acc = Self::row_dot_multi::<K>(cols, vals, x, n_cols);
                for (k, &v) in acc.iter().enumerate() {
                    // SAFETY: row ranges are disjoint across threads, so
                    // each RHS's copy of row `r` is written by one thread.
                    unsafe { *out.get_raw(k * n_rows + r) = v };
                }
            }
        });
    }
}

impl<T: Scalar> SpmvExecutor<T> for CsrExec<T> {
    fn name(&self) -> String {
        "MKL-CSR(analog)".into()
    }
    fn n_rows(&self) -> usize {
        self.csr.n_rows()
    }
    fn n_cols(&self) -> usize {
        self.csr.n_cols()
    }
    fn nnz_orig(&self) -> usize {
        self.csr.nnz()
    }
    fn matrix_bytes(&self) -> usize {
        self.csr.matrix_bytes()
    }

    fn spmv(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        assert_eq!(x.len(), self.csr.n_cols());
        assert_eq!(y.len(), self.csr.n_rows());
        let ranges = split_by_prefix(self.csr.row_ptr(), pool.n_threads());
        let out = SharedSliceMut::new(y);
        let csr = &self.csr;
        pool.run(|tid| {
            // AUDIT(index-ok): ranges has one entry per pool thread and
            // tid < n_threads by the dispatch contract.
            let range = ranges[tid].clone();
            // SAFETY: row ranges are disjoint across threads.
            let dst = unsafe { out.slice_mut(range.clone()) };
            for (slot, r) in dst.iter_mut().zip(range) {
                let (cols, vals) = csr.row(r);
                *slot = Self::row_dot(cols, vals, x);
            }
        });
    }

    /// Batched SpMM: each row's index/value stream is read once per
    /// register-tile chunk (k split into {8, 4, 2, 1}) instead of once
    /// per RHS.
    fn spmv_multi(&self, x: &[T], k: usize, y: &mut [T], pool: &ThreadPool) {
        assert!(k > 0, "batch width must be positive");
        assert_eq!(x.len(), k * self.csr.n_cols());
        assert_eq!(y.len(), k * self.csr.n_rows());
        let (n_cols, n_rows) = (self.csr.n_cols(), self.csr.n_rows());
        let mut done = 0usize;
        for chunk in batch_chunks(k, &[8, 4, 2, 1]) {
            let xs = &x[done * n_cols..(done + chunk) * n_cols];
            let ys = &mut y[done * n_rows..(done + chunk) * n_rows];
            match chunk {
                8 => self.spmm_chunk::<8>(xs, ys, pool),
                4 => self.spmm_chunk::<4>(xs, ys, pool),
                2 => self.spmm_chunk::<2>(xs, ys, pool),
                _ => self.spmv(xs, ys, pool),
            }
            done += chunk;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::dense::assert_vec_close;

    fn random_matrix(n_rows: usize, n_cols: usize, per_row: usize, seed: u64) -> Csr<f64> {
        // Tiny xorshift so the test has no rand dependency in-unit.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = Coo::new(n_rows, n_cols);
        for r in 0..n_rows {
            for _ in 0..per_row {
                let c = (next() as usize) % n_cols;
                let v = ((next() % 1000) as f64) / 500.0 - 1.0;
                coo.push(r, c, v);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn serial_and_parallel_match_reference() {
        let csr = random_matrix(101, 77, 5, 42);
        let x: Vec<f64> = (0..77).map(|i| (i as f64) * 0.1 - 3.0).collect();
        let mut y_ref = vec![0.0; 101];
        csr.spmv_serial(&x, &mut y_ref);

        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let serial = CsrSerialExec::new(csr.clone());
            let tuned = CsrExec::new(csr.clone());
            let mut y = vec![f64::NAN; 101];
            serial.spmv(&x, &mut y, &pool);
            assert_vec_close(&y, &y_ref, 1e-12);
            let mut y2 = vec![f64::NAN; 101];
            tuned.spmv(&x, &mut y2, &pool);
            assert_vec_close(&y2, &y_ref, 1e-12);
        }
    }

    #[test]
    fn handles_empty_rows_with_many_threads() {
        let mut coo: Coo<f32> = Coo::new(64, 8);
        coo.push(0, 0, 1.0);
        coo.push(63, 7, 2.0);
        let exec = CsrExec::new(coo.to_csr());
        let pool = ThreadPool::new(8);
        let mut y = vec![f32::NAN; 64];
        exec.spmv(&[1.0; 8], &mut y, &pool);
        assert_eq!(y[0], 1.0);
        assert_eq!(y[63], 2.0);
        assert!(y[1..63].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn row_dot_tail_cases() {
        // Row lengths 0..=9 exercise every chunk/tail combination.
        for len in 0..10usize {
            let cols: Vec<u32> = (0..len as u32).collect();
            let vals: Vec<f64> = (0..len).map(|i| i as f64 + 1.0).collect();
            let x: Vec<f64> = (0..len).map(|i| (i as f64) * 0.5).collect();
            let expect: f64 = (0..len).map(|i| (i as f64 + 1.0) * (i as f64) * 0.5).sum();
            assert!((CsrExec::row_dot(&cols, &vals, &x) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn spmv_multi_matches_k_independent_spmvs() {
        let csr = random_matrix(101, 77, 5, 42);
        let (nr, nc) = (csr.n_rows(), csr.n_cols());
        let exec = CsrExec::new(csr);
        // Odd k exercises the {8,4,2,1} chunk decomposition.
        for k in [1usize, 3, 8, 11] {
            let x: Vec<f64> = (0..k * nc).map(|i| (i as f64 * 0.3).sin()).collect();
            for threads in [1, 4] {
                let pool = ThreadPool::new(threads);
                let mut y_multi = vec![f64::NAN; k * nr];
                exec.spmv_multi(&x, k, &mut y_multi, &pool);
                for kk in 0..k {
                    let mut y_one = vec![f64::NAN; nr];
                    exec.spmv(&x[kk * nc..(kk + 1) * nc], &mut y_one, &pool);
                    assert_vec_close(&y_multi[kk * nr..(kk + 1) * nr], &y_one, 1e-12);
                }
            }
        }
    }

    #[test]
    fn metadata() {
        let csr = random_matrix(10, 10, 3, 7);
        let nnz = csr.nnz();
        let exec = CsrExec::new(csr);
        assert_eq!(exec.nnz_orig(), nnz);
        assert_eq!(exec.nnz_stored(), nnz);
        assert_eq!(exec.r_nnze(), 0.0);
        assert!(exec.matrix_bytes() > 0);
        assert_eq!(exec.name(), "MKL-CSR(analog)");
    }
}
