//! SPC5-style mask-compressed row blocks — the SPC5 analog.
//!
//! Bramas & Kus' SPC5 stores a β(r,c) block format: rows are grouped in
//! blocks of `R` consecutive rows; for every column that has at least one
//! nonzero inside the block, it stores the column index, an `R`-bit
//! occupancy mask, and only the nonzero values. The SpMV kernel expands
//! the packed values into an `R`-lane vector (AVX-512 `vexpand`, or the
//! software fallback) and FMAs with the broadcast `x[col]` — the same
//! compress/expand trick CSCV-M later applies on the *column* side.

use crate::csr::Csr;
use crate::executor::SpmvExecutor;
use crate::formats::util::SharedSliceMut;
use crate::partition::split_by_prefix;
use crate::pool::ThreadPool;
use cscv_simd::expand::{expand_soft, select_path, ExpandPath};
use cscv_simd::lanes::fma_lanes;
use cscv_simd::{MaskExpand, Scalar};

/// SPC5 β(R,1) executor. `R` is the row-block height (8 or 16 for f32,
/// 4 or 8 for f64 map to native register widths).
pub struct Spc5Exec<T, const R: usize> {
    n_rows: usize,
    n_cols: usize,
    nnz: usize,
    /// Per block row: range in `cols`/`masks` (`n_blocks + 1`).
    block_ptr: Vec<usize>,
    /// Per block row: range in `vals` (`n_blocks + 1`).
    val_ptr: Vec<usize>,
    cols: Vec<u32>,
    masks: Vec<u16>,
    vals: Vec<T>,
    path: ExpandPath,
}

impl<T: Scalar + MaskExpand, const R: usize> Spc5Exec<T, R> {
    pub fn new(csr: &Csr<T>) -> Self {
        assert!(R >= 2 && R <= 16, "block height must be in 2..=16");
        let n_rows = csr.n_rows();
        let n_blocks = n_rows.div_ceil(R);
        let mut block_ptr = Vec::with_capacity(n_blocks + 1);
        let mut val_ptr = Vec::with_capacity(n_blocks + 1);
        let mut cols = Vec::new();
        let mut masks = Vec::new();
        let mut vals = Vec::new();
        block_ptr.push(0usize);
        val_ptr.push(0usize);

        // Per block: merge the R rows' (col, lane, val) triplets by column.
        let mut scratch: Vec<(u32, u32, T)> = Vec::new();
        for b in 0..n_blocks {
            scratch.clear();
            let r0 = b * R;
            let r1 = (r0 + R).min(n_rows);
            for (lane, r) in (r0..r1).enumerate() {
                let (rcols, rvals) = csr.row(r);
                for (c, v) in rcols.iter().zip(rvals) {
                    // AUDIT(cast-ok): lane < R (the block row count),
                    // far below u32::MAX.
                    scratch.push((*c, lane as u32, *v));
                }
            }
            scratch.sort_unstable_by_key(|&(c, l, _)| (c, l));
            let mut i = 0;
            while i < scratch.len() {
                let col = scratch[i].0;
                let mut mask = 0u16;
                while i < scratch.len() && scratch[i].0 == col {
                    mask |= 1u16 << scratch[i].1;
                    vals.push(scratch[i].2);
                    i += 1;
                }
                cols.push(col);
                masks.push(mask);
            }
            block_ptr.push(cols.len());
            val_ptr.push(vals.len());
        }

        Spc5Exec {
            n_rows,
            n_cols: csr.n_cols(),
            nnz: csr.nnz(),
            block_ptr,
            val_ptr,
            cols,
            masks,
            vals,
            path: select_path::<T, R>(),
        }
    }

    /// Which expansion path the kernel uses on this machine.
    pub fn expand_path(&self) -> ExpandPath {
        self.path
    }

    #[inline(always)]
    fn block_kernel<const HW: bool>(&self, b: usize, x: &[T]) -> [T; R] {
        let mut acc = [T::ZERO; R];
        let mut vp = self.val_ptr[b];
        for e in self.block_ptr[b]..self.block_ptr[b + 1] {
            let mask = self.masks[e] as u32;
            let lanes: [T; R] = if HW {
                debug_assert!(self.vals.len() >= vp + mask.count_ones() as usize);
                // SAFETY: path selection verified availability; the value
                // stream holds popcount(mask) elements at vp by build.
                unsafe { T::expand_hw::<R>(mask, self.vals.as_ptr().add(vp)) }
            } else {
                expand_soft::<T, R>(mask, &self.vals[vp..])
            };
            vp += mask.count_ones() as usize;
            fma_lanes(&mut acc, x[self.cols[e] as usize], &lanes);
        }
        acc
    }

    fn spmv_with<const HW: bool>(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        let n_blocks = self.block_ptr.len() - 1;
        let ranges = split_by_prefix(&self.val_ptr, pool.n_threads());
        let out = SharedSliceMut::new(y);
        pool.run(|tid| {
            for b in ranges[tid].clone() {
                let acc = self.block_kernel::<HW>(b, x);
                let r0 = b * R;
                let r1 = ((b + 1) * R).min(self.n_rows);
                // SAFETY: block row ranges are disjoint across threads.
                let dst = unsafe { out.slice_mut(r0..r1) };
                dst.copy_from_slice(&acc[..r1 - r0]);
            }
            let _ = n_blocks;
        });
    }
}

impl<T: Scalar + MaskExpand, const R: usize> SpmvExecutor<T> for Spc5Exec<T, R> {
    fn name(&self) -> String {
        format!("SPC5-b{R}(analog)")
    }
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
    fn nnz_orig(&self) -> usize {
        self.nnz
    }
    fn matrix_bytes(&self) -> usize {
        (self.block_ptr.len() + self.val_ptr.len()) * std::mem::size_of::<usize>()
            + self.cols.len() * 4
            + self.masks.len() * 2
            + self.vals.len() * T::BYTES
    }
    fn spmv(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        match self.path {
            ExpandPath::Hardware => self.spmv_with::<true>(x, y, pool),
            ExpandPath::Software => self.spmv_with::<false>(x, y, pool),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::dense::assert_vec_close;

    fn ct_like(n_rows: usize, n_cols: usize) -> Csr<f64> {
        // Short runs of consecutive rows sharing columns — the structure
        // SPC5 blocks exploit.
        let mut coo = Coo::new(n_rows, n_cols);
        for r in 0..n_rows {
            let c0 = (r * 3) % n_cols;
            coo.push(r, c0, 1.0 + r as f64 * 0.01);
            if c0 + 1 < n_cols {
                coo.push(r, c0 + 1, 0.5);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn matches_reference_all_widths() {
        let csr = ct_like(100, 40);
        let x: Vec<f64> = (0..40).map(|i| 0.25 * i as f64 - 2.0).collect();
        let mut y_ref = vec![0.0; 100];
        csr.spmv_serial(&x, &mut y_ref);

        let exec4 = Spc5Exec::<f64, 4>::new(&csr);
        let exec8 = Spc5Exec::<f64, 8>::new(&csr);
        for threads in [1, 3] {
            let pool = ThreadPool::new(threads);
            for exec in [&exec4 as &dyn SpmvExecutor<f64>, &exec8] {
                let mut y = vec![f64::NAN; 100];
                exec.spmv(&x, &mut y, &pool);
                assert_vec_close(&y, &y_ref, 1e-12);
            }
        }
    }

    #[test]
    fn f32_width16() {
        let csr = ct_like(77, 30);
        let csr32: Csr<f32> = {
            let mut coo = Coo::new(77, 30);
            for r in 0..77 {
                let (cols, vals) = csr.row(r);
                for (c, v) in cols.iter().zip(vals) {
                    coo.push(r, *c as usize, *v as f32);
                }
            }
            coo.to_csr()
        };
        let x: Vec<f32> = (0..30).map(|i| i as f32 * 0.1).collect();
        let mut y_ref = vec![0.0f32; 77];
        csr32.spmv_serial(&x, &mut y_ref);
        let exec = Spc5Exec::<f32, 16>::new(&csr32);
        let pool = ThreadPool::new(2);
        let mut y = vec![f32::NAN; 77];
        exec.spmv(&x, &mut y, &pool);
        assert_vec_close(&y, &y_ref, 1e-5);
    }

    #[test]
    fn stores_exactly_nnz_values() {
        let csr = ct_like(64, 64);
        let exec = Spc5Exec::<f64, 8>::new(&csr);
        assert_eq!(exec.nnz_stored(), exec.nnz_orig());
        assert_eq!(exec.r_nnze(), 0.0);
        // Index data beats CSR when rows share columns: one u32+u16 per
        // (block, col) pair instead of one u32 per nnz.
        assert!(exec.matrix_bytes() > 0);
    }

    #[test]
    fn ragged_last_block() {
        let csr = ct_like(13, 10); // 13 % 8 != 0
        let x = vec![1.0f64; 10];
        let mut y_ref = vec![0.0; 13];
        csr.spmv_serial(&x, &mut y_ref);
        let exec = Spc5Exec::<f64, 8>::new(&csr);
        let pool = ThreadPool::new(1);
        let mut y = vec![f64::NAN; 13];
        exec.spmv(&x, &mut y, &pool);
        assert_vec_close(&y, &y_ref, 1e-12);
    }

    #[test]
    fn expand_path_reported() {
        let csr = ct_like(8, 8);
        let exec = Spc5Exec::<f64, 8>::new(&csr);
        let expected = select_path::<f64, 8>();
        assert_eq!(exec.expand_path(), expected);
    }
}
