//! Internal alias of the shared parallel plumbing (kept so the format
//! modules' imports stay short; the canonical home is [`crate::shared`]).

pub(crate) use crate::shared::{reduce_buffers_into, Scratch, SharedSliceMut};
