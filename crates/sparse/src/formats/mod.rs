//! Baseline SpMV implementations — the paper's competitor field.
//!
//! Each submodule re-implements the published algorithm of one baseline
//! the paper benchmarks CSCV against (see DESIGN.md for the mapping):
//!
//! | module | paper baseline | idea |
//! |--------|----------------|------|
//! | [`csr_exec`] | MKL-CSR | row-parallel CSR, unrolled dot-product rows |
//! | [`csc_exec`] | MKL-CSC | column-parallel CSC with private `y` copies |
//! | [`merge`] | Merge | merge-path work partitioning (Merrill & Garland) |
//! | [`csr5`] | CSR5 | σ×ω transposed tiles + flag-based segmented sum |
//! | [`sell`] | ESB | SELL-C-σ sorted sliced ELLPACK |
//! | [`spc5`] | SPC5 | mask-compressed row blocks + vexpand |
//! | [`cvr`] | CVR | lane-striped row streaming with flush records |
//!
//! | [`ell`] | (taxonomy §II) | global-width ELLPACK, the padded-format ancestor |
//! | [`bcsr`] | (taxonomy §II) | dense sub-matrix blocks with zero fill |
//!
//! VHCC is deliberately not reproduced (Knights-Corner-specific; see
//! DESIGN.md).

pub mod bcsr;
pub mod csc_exec;
pub mod csr5;
pub mod csr_exec;
pub mod cvr;
pub mod ell;
pub mod merge;
pub mod sell;
pub mod spc5;
pub(crate) mod util;

pub use bcsr::BcsrExec;
pub use csc_exec::{CscParallelExec, CscSerialExec};
pub use csr5::Csr5Exec;
pub use csr_exec::{CsrExec, CsrSerialExec};
pub use cvr::CvrExec;
pub use ell::EllExec;
pub use merge::MergeCsrExec;
pub use sell::SellCSigmaExec;
pub use spc5::Spc5Exec;

use crate::csr::Csr;
use crate::executor::SpmvExecutor;
use cscv_simd::{MaskExpand, Scalar};

/// Build the full baseline field for a matrix (every competitor the suite
/// reproduces). `n_threads_hint` shapes the thread-count-dependent builds
/// (CVR); executors still run correctly on pools of any size.
pub fn baseline_field<T: Scalar + MaskExpand>(
    csr: &Csr<T>,
    n_threads_hint: usize,
) -> Vec<Box<dyn SpmvExecutor<T>>> {
    vec![
        Box::new(CsrExec::new(csr.clone())),
        Box::new(CscParallelExec::new(csr.to_csc())),
        Box::new(MergeCsrExec::new(csr.clone())),
        Box::new(Csr5Exec::new(csr)),
        Box::new(SellCSigmaExec::new(csr)),
        Box::new(Spc5Exec::<T, 8>::new(csr)),
        Box::new(CvrExec::new(csr, n_threads_hint)),
        Box::new(EllExec::new(csr)),
        Box::new(BcsrExec::new(csr)),
    ]
}
