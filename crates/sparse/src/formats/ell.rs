//! ELLPACK (ELL) — the paper's "category one" reference format.
//!
//! §II cites ELL (Bell & Garland) as the classic format that exploits a
//! regular sparsity pattern: every row is padded to the longest row's
//! width, making the column loop branch-free and vectorizable. On CT
//! matrices rows are near-uniform (property P3), so ELL's padding is
//! moderate — a useful lower-bound baseline for the padded-format
//! family that CSCV and SELL-C-σ refine.
//!
//! Storage is slice-column-major over chunks of `C` rows (the CPU
//! adaptation: a `C`-row chunk advances one ELL column per step with one
//! contiguous `C`-wide load), with a **global** width — the difference
//! from SELL-C-σ, which uses per-chunk widths after sorting.

use crate::csr::Csr;
use crate::executor::SpmvExecutor;
use crate::formats::util::SharedSliceMut;
use crate::partition::even_chunks;
use crate::pool::ThreadPool;
use cscv_simd::Scalar;

/// Rows per SIMD chunk.
const C: usize = 8;

/// ELL executor with global row width.
pub struct EllExec<T> {
    n_rows: usize,
    n_cols: usize,
    nnz: usize,
    /// Global ELL width (max row length).
    width: usize,
    /// Column-major per chunk: entry (chunk, j, lane) at
    /// `chunk·width·C + j·C + lane`.
    cols: Vec<u32>,
    vals: Vec<T>,
}

impl<T: Scalar> EllExec<T> {
    pub fn new(csr: &Csr<T>) -> Self {
        let n_rows = csr.n_rows();
        let width = csr.row_lengths().into_iter().max().unwrap_or(0);
        let n_chunks = n_rows.div_ceil(C);
        let mut cols = vec![0u32; n_chunks * width * C];
        let mut vals = vec![T::ZERO; n_chunks * width * C];
        for r in 0..n_rows {
            let (chunk, lane) = (r / C, r % C);
            let (rcols, rvals) = csr.row(r);
            for (j, (&cc, &vv)) in rcols.iter().zip(rvals).enumerate() {
                let at = chunk * width * C + j * C + lane;
                cols[at] = cc;
                vals[at] = vv;
            }
        }
        EllExec {
            n_rows,
            n_cols: csr.n_cols(),
            nnz: csr.nnz(),
            width,
            cols,
            vals,
        }
    }

    /// The global padded width.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl<T: Scalar> SpmvExecutor<T> for EllExec<T> {
    fn name(&self) -> String {
        "ELL".into()
    }
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
    fn nnz_orig(&self) -> usize {
        self.nnz
    }
    fn nnz_stored(&self) -> usize {
        self.vals.len()
    }
    fn matrix_bytes(&self) -> usize {
        self.cols.len() * 4 + self.vals.len() * T::BYTES
    }

    fn spmv(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        let n_chunks = self.n_rows.div_ceil(C);
        let ranges = even_chunks(n_chunks, pool.n_threads());
        let out = SharedSliceMut::new(y);
        pool.run(|tid| {
            for chunk in ranges[tid].clone() {
                let base = chunk * self.width * C;
                let mut acc = [T::ZERO; C];
                for j in 0..self.width {
                    let cs = &self.cols[base + j * C..base + j * C + C];
                    let vs = &self.vals[base + j * C..base + j * C + C];
                    for l in 0..C {
                        acc[l] = vs[l].mul_add(x[cs[l] as usize], acc[l]);
                    }
                }
                let r0 = chunk * C;
                let r1 = (r0 + C).min(self.n_rows);
                // SAFETY: chunk row ranges are disjoint across threads.
                let dst = unsafe { out.slice_mut(r0..r1) };
                dst.copy_from_slice(&acc[..r1 - r0]);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::dense::assert_vec_close;

    fn near_uniform(n: usize) -> Csr<f64> {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            for k in 0..3 + (r % 2) {
                coo.push(r, (r * 5 + k * 3) % n, 0.5 + k as f64);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn matches_reference() {
        let csr = near_uniform(100);
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut y_ref = vec![0.0; 100];
        csr.spmv_serial(&x, &mut y_ref);
        let exec = EllExec::new(&csr);
        for threads in [1, 3] {
            let pool = ThreadPool::new(threads);
            let mut y = vec![f64::NAN; 100];
            exec.spmv(&x, &mut y, &pool);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn width_and_padding() {
        let csr = near_uniform(64);
        let exec = EllExec::new(&csr);
        assert_eq!(exec.width(), 4);
        assert_eq!(exec.nnz_stored(), 64 * 4);
        assert!(exec.r_nnze() > 0.0);
    }

    #[test]
    fn pathological_single_long_row() {
        // One dense row forces a huge global width — ELL's known failure
        // mode, which SELL-C-σ fixes; correctness must still hold.
        let mut coo = Coo::new(16, 32);
        for c in 0..32 {
            coo.push(0, c, 1.0);
        }
        coo.push(7, 3, 2.0);
        let csr = coo.to_csr();
        let exec = EllExec::new(&csr);
        assert_eq!(exec.width(), 32);
        let pool = ThreadPool::new(2);
        let mut y = vec![f64::NAN; 16];
        exec.spmv(&vec![1.0; 32], &mut y, &pool);
        assert_eq!(y[0], 32.0);
        assert_eq!(y[7], 2.0);
        assert!(y[1..7].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_matrix() {
        let csr: Csr<f32> = Coo::new(5, 5).to_csr();
        let exec = EllExec::new(&csr);
        assert_eq!(exec.width(), 0);
        let pool = ThreadPool::new(1);
        let mut y = vec![f32::NAN; 5];
        exec.spmv(&[0.0; 5], &mut y, &pool);
        assert!(y.iter().all(|&v| v == 0.0));
    }
}
