//! CVR-style lane-striped SpMV — the CVR analog (Xie et al., CGO'18).
//!
//! CVR ("Compressed Vectorization-oriented sparse Row") keeps ω SIMD
//! lanes busy by *streaming* rows through them: every lane owns one row at
//! a time and consumes one nonzero per step; when a lane's row is
//! exhausted it records a flush event and picks up the next row at the
//! following step. The value/column streams are stored step-major so each
//! step is one contiguous ω-wide load, and the only scalar work is the
//! (rare) flush record processing — conceptually a dual of CSR5's
//! flag-segmented tiles.
//!
//! Like the original, the layout is built per thread partition (CVR is
//! constructed for a target thread count); the executor still runs
//! correctly on pools of any size by distributing partitions round-robin.

use crate::csr::Csr;
use crate::executor::SpmvExecutor;
use crate::formats::util::SharedSliceMut;
use crate::partition::split_by_prefix;
use crate::pool::ThreadPool;
use cscv_simd::Scalar;

/// SIMD lanes per partition stream.
const OMEGA: usize = 8;

/// A flush event: at the end of `step`, lane `lane` finished `row`.
#[derive(Debug, Clone, Copy)]
struct FlushRec {
    step: u32,
    lane: u32,
    row: u32,
}

/// One thread partition's streams.
struct CvrPartition<T> {
    /// Rows covered (contiguous; zeroed before flushes are applied).
    rows: std::ops::Range<usize>,
    /// Step-major interleaved values: entry (step s, lane l) at `s*ω+l`.
    vals: Vec<T>,
    cols: Vec<u32>,
    recs: Vec<FlushRec>,
}

/// CVR-style executor.
pub struct CvrExec<T> {
    n_rows: usize,
    n_cols: usize,
    nnz: usize,
    partitions: Vec<CvrPartition<T>>,
}

impl<T: Scalar> CvrExec<T> {
    /// Build for `n_threads_hint` partitions (≥ 1).
    pub fn new(csr: &Csr<T>, n_threads_hint: usize) -> Self {
        let parts = split_by_prefix(csr.row_ptr(), n_threads_hint.max(1));
        let partitions = parts
            .into_iter()
            .map(|range| Self::build_partition(csr, range))
            .collect();
        CvrExec {
            n_rows: csr.n_rows(),
            n_cols: csr.n_cols(),
            nnz: csr.nnz(),
            partitions,
        }
    }

    fn build_partition(csr: &Csr<T>, rows: std::ops::Range<usize>) -> CvrPartition<T> {
        // Queue of non-empty rows to stream, in order.
        let mut pending = rows
            .clone()
            .filter(|&r| csr.row_ptr()[r + 1] > csr.row_ptr()[r]);
        // Per-lane: (row, next entry idx, end idx).
        let mut lane: [Option<(usize, usize, usize)>; OMEGA] = [None; OMEGA];
        let mut vals = Vec::new();
        let mut cols = Vec::new();
        let mut recs = Vec::new();
        let mut active = 0usize;
        let mut step = 0u32;
        loop {
            // Refill idle lanes at step boundaries.
            for slot in &mut lane {
                if slot.is_none() {
                    if let Some(r) = pending.next() {
                        *slot = Some((r, csr.row_ptr()[r], csr.row_ptr()[r + 1]));
                        active += 1;
                    }
                }
            }
            if active == 0 {
                break;
            }
            // Consume one entry per lane (pad idle lanes).
            for (l, slot) in lane.iter_mut().enumerate() {
                match slot {
                    Some((r, idx, end)) => {
                        vals.push(csr.vals()[*idx]);
                        cols.push(csr.col_idx()[*idx]);
                        *idx += 1;
                        if idx == end {
                            recs.push(FlushRec {
                                step,
                                // AUDIT(cast-ok): l < OMEGA (the SIMD
                                // lane count), far below u32::MAX.
                                lane: l as u32,
                                row: *r as u32,
                            });
                            *slot = None;
                            active -= 1;
                        }
                    }
                    None => {
                        vals.push(T::ZERO);
                        cols.push(0);
                    }
                }
            }
            step += 1;
        }
        CvrPartition {
            rows,
            vals,
            cols,
            recs,
        }
    }

    fn run_partition(p: &CvrPartition<T>, x: &[T], y: &mut [T]) {
        y.fill(T::ZERO);
        let row0 = p.rows.start;
        let steps = p.vals.len() / OMEGA;
        let mut acc = [T::ZERO; OMEGA];
        let mut ri = 0usize;
        for s in 0..steps {
            let base = s * OMEGA;
            let vs = &p.vals[base..base + OMEGA];
            let cs = &p.cols[base..base + OMEGA];
            for l in 0..OMEGA {
                acc[l] = vs[l].mul_add(x[cs[l] as usize], acc[l]);
            }
            // AUDIT(cast-ok): FlushRec stores steps as u32 by
            // construction, so the step counter s fits u32 whenever a
            // record can match at all.
            while ri < p.recs.len() && p.recs[ri].step == s as u32 {
                let rec = p.recs[ri];
                y[rec.row as usize - row0] = acc[rec.lane as usize];
                acc[rec.lane as usize] = T::ZERO;
                ri += 1;
            }
        }
        debug_assert_eq!(ri, p.recs.len());
    }
}

impl<T: Scalar> SpmvExecutor<T> for CvrExec<T> {
    fn name(&self) -> String {
        "CVR(analog)".into()
    }
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
    fn nnz_orig(&self) -> usize {
        self.nnz
    }
    fn nnz_stored(&self) -> usize {
        self.partitions.iter().map(|p| p.vals.len()).sum()
    }
    fn matrix_bytes(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.vals.len() * T::BYTES + p.cols.len() * 4 + p.recs.len() * 12)
            .sum()
    }

    fn spmv(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        let n = pool.n_threads();
        let out = SharedSliceMut::new(y);
        pool.run(|tid| {
            // Partitions have disjoint contiguous row ranges; round-robin
            // them over the available pool threads.
            for p in self.partitions.iter().skip(tid).step_by(n) {
                // SAFETY: partition row ranges are pairwise disjoint.
                let dst = unsafe { out.slice_mut(p.rows.clone()) };
                Self::run_partition(p, x, dst);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::dense::assert_vec_close;

    fn mixed(n: usize) -> Csr<f64> {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            let len = match r % 5 {
                0 => 0, // empty rows between streams
                1 => 1,
                2 => 7,
                3 => 2,
                _ => 13,
            };
            for k in 0..len {
                coo.push(r, (r * 3 + k) % n, (k as f64 + 1.0) * 0.1);
            }
        }
        coo.to_csr()
    }

    fn check(csr: &Csr<f64>, hints: &[usize], threads: &[usize]) {
        let x: Vec<f64> = (0..csr.n_cols()).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y_ref = vec![0.0; csr.n_rows()];
        csr.spmv_serial(&x, &mut y_ref);
        for &h in hints {
            let exec = CvrExec::new(csr, h);
            for &t in threads {
                let pool = ThreadPool::new(t);
                let mut y = vec![f64::NAN; csr.n_rows()];
                exec.spmv(&x, &mut y, &pool);
                assert_vec_close(&y, &y_ref, 1e-12);
            }
        }
    }

    #[test]
    fn mixed_rows_match_reference() {
        check(&mixed(157), &[1, 2, 4], &[1, 2, 4, 8]);
    }

    #[test]
    fn hint_and_pool_can_mismatch() {
        check(&mixed(64), &[3], &[1, 5]);
        check(&mixed(64), &[8], &[2]);
    }

    #[test]
    fn single_long_row() {
        let mut coo = Coo::new(1, 500);
        for c in 0..500 {
            coo.push(0, c, 0.01 * c as f64);
        }
        check(&coo.to_csr(), &[1, 2], &[1, 2]);
    }

    #[test]
    fn all_empty() {
        let coo: Coo<f64> = Coo::new(10, 10);
        check(&coo.to_csr(), &[1, 4], &[1, 2]);
    }

    #[test]
    fn padding_accounted_in_stored_nnz() {
        let csr = mixed(100);
        let exec = CvrExec::new(&csr, 2);
        assert!(exec.nnz_stored() >= exec.nnz_orig());
        // Padding only at stream tails: should be < 2 partitions * ω * max_row.
        let slack = exec.nnz_stored() - exec.nnz_orig();
        assert!(slack < 2 * OMEGA * 16);
    }

    #[test]
    fn lane_count_is_stream_width() {
        let csr = mixed(40);
        let exec = CvrExec::new(&csr, 1);
        assert_eq!(exec.partitions.len(), 1);
        assert_eq!(exec.partitions[0].vals.len() % OMEGA, 0);
    }
}
