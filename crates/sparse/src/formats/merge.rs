//! Merge-path CSR SpMV — the "Merge" baseline (Merrill & Garland, SC'16).
//!
//! The classic fix for CSR's load imbalance: view SpMV as a merge of two
//! sorted lists — the `n_rows` row boundaries (`row_ptr[1..]`) and the
//! `nnz` nonzero indices — and give every thread an equal share of
//! `n_rows + nnz` *merge items*, located by a binary search along the
//! merge-path diagonal. Rows split across threads are stitched with
//! per-thread carry-outs in a serial fixup (cost `O(threads)`).

use crate::csr::Csr;
use crate::executor::SpmvExecutor;
use crate::formats::util::SharedSliceMut;
use crate::pool::ThreadPool;
use cscv_simd::Scalar;

/// Merge-path partitioned CSR SpMV.
pub struct MergeCsrExec<T> {
    csr: Csr<T>,
}

/// Coordinate on the merge path: `row` rows and `idx` nonzeros consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MergeCoord {
    row: usize,
    idx: usize,
}

impl<T: Scalar> MergeCsrExec<T> {
    pub fn new(csr: Csr<T>) -> Self {
        MergeCsrExec { csr }
    }

    /// Locate the merge coordinate at a given diagonal (total item count)
    /// by binary search: find the split where consuming `row` row-ends and
    /// `diag - row` nonzeros is consistent with `row_ptr`.
    fn diagonal_search(row_ptr: &[usize], diag: usize) -> MergeCoord {
        let n_rows = row_ptr.len() - 1;
        let nnz = row_ptr[n_rows];
        // row ∈ [max(0, diag-nnz), min(diag, n_rows)]
        let mut lo = diag.saturating_sub(nnz);
        let mut hi = diag.min(n_rows);
        // Invariant: consume row-end of row r before nonzeros of row r+1.
        // We want the largest `row` such that row_ptr[row] + row <= diag
        // ... choosing: row-end item for row r sits after its nnz items.
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            // Items consumed if we have fully finished `mid` rows:
            // mid row-ends + row_ptr[mid] nonzeros.
            if row_ptr[mid] + mid <= diag {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        MergeCoord {
            row: lo,
            idx: diag - lo,
        }
    }
}

impl<T: Scalar> SpmvExecutor<T> for MergeCsrExec<T> {
    fn name(&self) -> String {
        "Merge(analog)".into()
    }
    fn n_rows(&self) -> usize {
        self.csr.n_rows()
    }
    fn n_cols(&self) -> usize {
        self.csr.n_cols()
    }
    fn nnz_orig(&self) -> usize {
        self.csr.nnz()
    }
    fn matrix_bytes(&self) -> usize {
        self.csr.matrix_bytes()
    }

    fn spmv(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        assert_eq!(x.len(), self.csr.n_cols());
        assert_eq!(y.len(), self.csr.n_rows());
        let n_rows = self.csr.n_rows();
        let nnz = self.csr.nnz();
        let n = pool.n_threads();
        let total = n_rows + nnz;
        let row_ptr = self.csr.row_ptr();
        let col_idx = self.csr.col_idx();
        let vals = self.csr.vals();

        // Per-thread carry-out: the partial sum of the (possibly shared)
        // row the thread's range ends inside.
        let mut carry_row = vec![usize::MAX; n];
        let mut carry_val = vec![T::ZERO; n];
        {
            let out = SharedSliceMut::new(y);
            let carry_row_s = SharedSliceMut::new(&mut carry_row);
            let carry_val_s = SharedSliceMut::new(&mut carry_val);
            pool.run(|tid| {
                let d0 = total * tid / n;
                let d1 = total * (tid + 1) / n;
                let start = Self::diagonal_search(row_ptr, d0);
                let end = Self::diagonal_search(row_ptr, d1);
                let mut row = start.row;
                let mut idx = start.idx;
                let mut acc = T::ZERO;
                // Walk the merge path: consume nonzeros of `row` up to its
                // end, emit the row, move on — but never past `end`.
                while row < end.row {
                    let stop = row_ptr[row + 1];
                    while idx < stop {
                        acc = vals[idx].mul_add(x[col_idx[idx] as usize], acc);
                        idx += 1;
                    }
                    // Row-end item: this thread owns the write for `row`.
                    // SAFETY: each row-end belongs to exactly one thread.
                    unsafe { out.slice_mut(row..row + 1)[0] = acc };
                    acc = T::ZERO;
                    row += 1;
                }
                // Trailing nonzeros of the (shared) row `end.row`.
                while idx < end.idx {
                    acc = vals[idx].mul_add(x[col_idx[idx] as usize], acc);
                    idx += 1;
                }
                // SAFETY: slot `tid` only.
                unsafe {
                    carry_row_s.slice_mut(tid..tid + 1)[0] =
                        if row < n_rows { row } else { usize::MAX };
                    carry_val_s.slice_mut(tid..tid + 1)[0] = acc;
                }
            });
        }
        // Serial fixup: add carries into the rows they belong to.
        for t in 0..n {
            if carry_row[t] != usize::MAX {
                y[carry_row[t]] += carry_val[t];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::dense::assert_vec_close;

    #[test]
    fn diagonal_search_walks_the_path() {
        // 3 rows with 2, 0, 3 nnz. row_ptr = [0,2,2,5], total items = 8.
        let row_ptr = [0usize, 2, 2, 5];
        assert_eq!(
            MergeCsrExec::<f64>::diagonal_search(&row_ptr, 0),
            MergeCoord { row: 0, idx: 0 }
        );
        // After 3 items: 2 nnz + row0's end consumed.
        assert_eq!(
            MergeCsrExec::<f64>::diagonal_search(&row_ptr, 3),
            MergeCoord { row: 1, idx: 2 }
        );
        // After 4 items: row1 (empty) also ends.
        assert_eq!(
            MergeCsrExec::<f64>::diagonal_search(&row_ptr, 4),
            MergeCoord { row: 2, idx: 2 }
        );
        // All items.
        assert_eq!(
            MergeCsrExec::<f64>::diagonal_search(&row_ptr, 8),
            MergeCoord { row: 3, idx: 5 }
        );
    }

    fn skewed_matrix(n: usize) -> Csr<f64> {
        // Row 0 is enormous; the rest are tiny — the case merge-path exists
        // for.
        let mut coo = Coo::new(n, n);
        for c in 0..n {
            coo.push(0, c, (c as f64 + 1.0) * 0.01);
        }
        for r in 1..n {
            coo.push(r, r, 1.0);
            if r % 3 == 0 {
                coo.push(r, (r + 5) % n, -0.5);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn matches_reference_on_skewed_matrix() {
        let csr = skewed_matrix(200);
        let x: Vec<f64> = (0..200).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut y_ref = vec![0.0; 200];
        csr.spmv_serial(&x, &mut y_ref);
        let exec = MergeCsrExec::new(csr);
        for threads in [1, 2, 3, 4, 7, 16] {
            let pool = ThreadPool::new(threads);
            let mut y = vec![f64::NAN; 200];
            exec.spmv(&x, &mut y, &pool);
            assert_vec_close(&y, &y_ref, 1e-12);
        }
    }

    #[test]
    fn single_giant_row_split_across_all_threads() {
        let mut coo = Coo::new(1, 1000);
        for c in 0..1000 {
            coo.push(0, c, 1.0);
        }
        let exec = MergeCsrExec::new(coo.to_csr());
        let pool = ThreadPool::new(8);
        let mut y = vec![f64::NAN; 1];
        exec.spmv(&vec![1.0; 1000], &mut y, &pool);
        assert!((y[0] - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn all_empty_rows() {
        let coo: Coo<f32> = Coo::new(16, 16);
        let exec = MergeCsrExec::new(coo.to_csr());
        let pool = ThreadPool::new(4);
        let mut y = vec![f32::NAN; 16];
        exec.spmv(&[1.0; 16], &mut y, &pool);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn more_threads_than_items() {
        let mut coo: Coo<f64> = Coo::new(2, 2);
        coo.push(1, 0, 3.0);
        let exec = MergeCsrExec::new(coo.to_csr());
        let pool = ThreadPool::new(16);
        let mut y = vec![f64::NAN; 2];
        exec.spmv(&[2.0, 1.0], &mut y, &pool);
        assert_eq!(y, vec![0.0, 6.0]);
    }
}
