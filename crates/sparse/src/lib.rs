//! Sparse-matrix substrate for the CSCV SpMV suite.
//!
//! The CSCV paper benchmarks its contribution against a field of general
//! sparse formats (MKL CSR/CSC, merge-path CSR, CSR5, ESB, SPC5, CVR).
//! None of those implementations are redistributable Rust, so this crate
//! provides the substrate from scratch:
//!
//! * canonical storage: [`Coo`], [`Csr`], [`Csc`] with conversions and a
//!   dense reference ([`dense`]);
//! * an execution abstraction: [`SpmvExecutor`] — every format in the
//!   suite (including CSCV itself, in `cscv-core`) implements it so the
//!   experiment drivers can sweep implementations uniformly;
//! * a persistent [`ThreadPool`] (OpenMP analog) plus nnz-balanced
//!   [`partition`] helpers;
//! * re-implementations of the paper's baselines in [`formats`].

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod executor;
pub mod formats;
pub mod invariants;
pub mod io;
pub mod numa;
pub mod partition;
pub mod pool;
pub mod shared;
pub mod stats;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use executor::SpmvExecutor;
pub use pool::ThreadPool;

// Re-export the element trait so downstream crates have a single import
// point for matrix + scalar machinery.
pub use cscv_simd::Scalar;
