//! Matrix structure statistics.
//!
//! Used by the dataset table (paper Table II), by the CSCV parameter
//! heuristics, and to verify the paper's property **P3** (integral
//! operators give near-uniform per-column nonzero counts) on generated
//! matrices.

use crate::csr::Csr;
use cscv_simd::Scalar;

/// Summary statistics of a distribution of counts.
#[derive(Debug, Clone, PartialEq)]
pub struct CountStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / mean`, 0 when mean is 0).
    pub cv: f64,
}

impl CountStats {
    /// Compute from raw counts. Empty input gives all-zero stats.
    pub fn from_counts(counts: &[usize]) -> Self {
        if counts.is_empty() {
            return CountStats {
                min: 0,
                max: 0,
                mean: 0.0,
                std_dev: 0.0,
                cv: 0.0,
            };
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / n;
        let var = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        let std_dev = var.sqrt();
        let cv = if mean > 0.0 { std_dev / mean } else { 0.0 };
        CountStats {
            min,
            max,
            mean,
            std_dev,
            cv,
        }
    }
}

/// Structural profile of a sparse matrix.
#[derive(Debug, Clone)]
pub struct MatrixProfile {
    pub n_rows: usize,
    pub n_cols: usize,
    pub nnz: usize,
    /// Fraction of entries that are nonzero.
    pub density: f64,
    pub row_stats: CountStats,
    pub col_stats: CountStats,
    /// Rows with no nonzeros.
    pub empty_rows: usize,
    /// Columns with no nonzeros.
    pub empty_cols: usize,
}

impl MatrixProfile {
    pub fn from_csr<T: Scalar>(m: &Csr<T>) -> Self {
        let row_lengths = m.row_lengths();
        let mut col_lengths = vec![0usize; m.n_cols()];
        for &c in m.col_idx() {
            col_lengths[c as usize] += 1;
        }
        let cells = m.n_rows() as f64 * m.n_cols() as f64;
        MatrixProfile {
            n_rows: m.n_rows(),
            n_cols: m.n_cols(),
            nnz: m.nnz(),
            density: if cells > 0.0 {
                m.nnz() as f64 / cells
            } else {
                0.0
            },
            empty_rows: row_lengths.iter().filter(|&&l| l == 0).count(),
            empty_cols: col_lengths.iter().filter(|&&l| l == 0).count(),
            row_stats: CountStats::from_counts(&row_lengths),
            col_stats: CountStats::from_counts(&col_lengths),
        }
    }

    /// Paper P3 check: per-column nnz is "similar". We quantify as a
    /// coefficient of variation over *non-empty* columns below `max_cv`.
    pub fn p3_holds(&self, _max_cv: f64) -> bool {
        self.col_stats.cv <= _max_cv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    #[test]
    fn count_stats_basics() {
        let s = CountStats::from_counts(&[2, 2, 2, 2]);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.cv, 0.0);
    }

    #[test]
    fn count_stats_spread() {
        let s = CountStats::from_counts(&[0, 4]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std_dev, 2.0);
        assert_eq!(s.cv, 1.0);
    }

    #[test]
    fn empty_counts() {
        let s = CountStats::from_counts(&[]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cv, 0.0);
    }

    #[test]
    fn profile_of_small_matrix() {
        let mut coo: Coo<f32> = Coo::new(3, 4);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 1.0);
        coo.push(2, 0, 1.0);
        let p = MatrixProfile::from_csr(&coo.to_csr());
        assert_eq!(p.nnz, 3);
        assert_eq!(p.empty_rows, 1);
        assert_eq!(p.empty_cols, 2);
        assert!((p.density - 0.25).abs() < 1e-12);
        assert_eq!(p.row_stats.max, 2);
        assert_eq!(p.col_stats.max, 2);
    }

    #[test]
    fn p3_uniform_matrix() {
        // Diagonal-ish matrix: perfectly uniform columns.
        let mut coo: Coo<f64> = Coo::new(8, 8);
        for i in 0..8 {
            coo.push(i, i, 1.0);
        }
        let p = MatrixProfile::from_csr(&coo.to_csr());
        assert!(p.p3_holds(0.01));
    }
}
