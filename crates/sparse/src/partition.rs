//! Work partitioning helpers.
//!
//! Thread-level SpMV parallelism in the suite is contiguous-range based:
//! rows (or columns, or CSCV view-groups) are split into one range per
//! thread, balanced by nonzero count. The paper's property P3 (integral
//! operators give near-uniform column densities) makes contiguous
//! partitions near-optimal, but the helpers balance by exact weight anyway
//! so general matrices stay fair.

use std::ops::Range;

/// Split `0..n` into `k` contiguous ranges of near-equal length.
/// Always returns exactly `k` ranges; trailing ones may be empty.
pub fn even_chunks(n: usize, k: usize) -> Vec<Range<usize>> {
    assert!(k >= 1);
    let base = n / k;
    let rem = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Split `0..prefix.len()-1` items into `k` contiguous ranges with
/// near-equal weight, where `prefix` is the cumulative weight array
/// (e.g. a CSR `row_ptr`): item `i` weighs `prefix[i+1] - prefix[i]`.
///
/// Returns exactly `k` ranges covering all items in order.
pub fn split_by_prefix(prefix: &[usize], k: usize) -> Vec<Range<usize>> {
    assert!(k >= 1);
    assert!(!prefix.is_empty(), "prefix must have at least one element");
    let n = prefix.len() - 1;
    let total = prefix[n] - prefix[0];
    let mut out = Vec::with_capacity(k);
    let mut start = 0usize;
    for t in 1..=k {
        let target = prefix[0] + (total as u128 * t as u128 / k as u128) as usize;
        // First boundary with cumulative weight >= target, not before start.
        let mut end = prefix.partition_point(|&w| w < target);
        end = end.clamp(start, n);
        if t == k {
            end = n;
        }
        out.push(start..end);
        start = end;
    }
    out
}

/// Convenience: balanced split of explicit per-item weights.
pub fn split_by_weights(weights: &[usize], k: usize) -> Vec<Range<usize>> {
    let mut prefix = Vec::with_capacity(weights.len() + 1);
    prefix.push(0usize);
    let mut acc = 0usize;
    for &w in weights {
        acc += w;
        prefix.push(acc);
    }
    split_by_prefix(&prefix, k)
}

/// Total weight of a range under a prefix array.
pub fn range_weight(prefix: &[usize], r: &Range<usize>) -> usize {
    prefix[r.end] - prefix[r.start]
}

/// Decompose a batch width into compiled register-tile widths, largest
/// first (e.g. `k = 11`, caps `[8, 4, 2, 1]` → `[8, 2, 1]`). Batched
/// SpMM executors monomorphize their kernels per tile width and use this
/// to cover an arbitrary `k`; `caps` must end in 1 so every `k` is
/// reachable.
pub fn batch_chunks(mut k: usize, caps: &[usize]) -> Vec<usize> {
    debug_assert_eq!(caps.last(), Some(&1), "caps must end at 1");
    let mut out = Vec::new();
    while k > 0 {
        // AUDIT(panic-ok): `caps` ends at 1 by documented contract (debug-asserted above), so the find always succeeds.
        let c = *caps.iter().find(|&&c| c <= k).expect("caps end at 1");
        out.push(c);
        k -= c;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_chunks_cover_any_k() {
        assert_eq!(batch_chunks(11, &[8, 4, 2, 1]), vec![8, 2, 1]);
        assert_eq!(batch_chunks(7, &[4, 2, 1]), vec![4, 2, 1]);
        for k in 1..40 {
            for caps in [&[8usize, 4, 2, 1][..], &[4, 2, 1][..], &[1][..]] {
                let chunks = batch_chunks(k, caps);
                assert_eq!(chunks.iter().sum::<usize>(), k);
                assert!(chunks.windows(2).all(|w| w[0] >= w[1]));
            }
        }
    }

    fn assert_covers(ranges: &[Range<usize>], n: usize) {
        let mut next = 0;
        for r in ranges {
            assert_eq!(r.start, next, "ranges must be contiguous");
            assert!(r.end >= r.start);
            next = r.end;
        }
        assert_eq!(next, n, "ranges must cover all items");
    }

    #[test]
    fn even_chunks_cover_and_balance() {
        for n in [0usize, 1, 7, 16, 100] {
            for k in [1usize, 2, 3, 8] {
                let r = even_chunks(n, k);
                assert_eq!(r.len(), k);
                assert_covers(&r, n);
                let max = r.iter().map(|r| r.len()).max().unwrap();
                let min = r.iter().map(|r| r.len()).min().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn prefix_split_balances_skewed_weights() {
        // One heavy item among light ones.
        let weights = [1usize, 1, 1, 100, 1, 1, 1, 1];
        let ranges = split_by_weights(&weights, 4);
        assert_eq!(ranges.len(), 4);
        assert_covers(&ranges, weights.len());
        // The heavy item must sit alone-ish: no range except its own should
        // exceed ~total/4 + heaviest bound.
        let total: usize = weights.iter().sum();
        for r in &ranges {
            let w: usize = weights[r.start..r.end].iter().sum();
            assert!(w <= total / 4 + 100);
        }
    }

    #[test]
    fn prefix_split_uniform_matches_even() {
        let weights = vec![3usize; 12];
        let ranges = split_by_weights(&weights, 4);
        assert_eq!(
            ranges,
            vec![0..3, 3..6, 6..9, 9..12],
            "uniform weights give even chunks"
        );
    }

    #[test]
    fn more_threads_than_items() {
        let weights = [5usize, 5];
        let ranges = split_by_weights(&weights, 5);
        assert_eq!(ranges.len(), 5);
        assert_covers(&ranges, 2);
        let nonempty = ranges.iter().filter(|r| !r.is_empty()).count();
        assert!(nonempty <= 2);
    }

    #[test]
    fn empty_items() {
        let ranges = split_by_prefix(&[0], 3);
        assert_eq!(ranges.len(), 3);
        assert_covers(&ranges, 0);
    }

    #[test]
    fn zero_weight_items_allowed() {
        let weights = [0usize, 0, 4, 0, 4, 0];
        let ranges = split_by_weights(&weights, 2);
        assert_covers(&ranges, 6);
        let w0: usize = weights[ranges[0].clone()].iter().sum();
        let w1: usize = weights[ranges[1].clone()].iter().sum();
        assert_eq!(w0 + w1, 8);
        assert_eq!(w0, 4);
    }

    #[test]
    fn range_weight_reads_prefix() {
        let prefix = [0usize, 2, 5, 9];
        assert_eq!(range_weight(&prefix, &(0..3)), 9);
        assert_eq!(range_weight(&prefix, &(1..2)), 3);
        assert_eq!(range_weight(&prefix, &(2..2)), 0);
    }
}
