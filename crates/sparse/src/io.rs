//! Matrix Market (`.mtx`) import/export.
//!
//! The lingua franca of sparse-matrix tooling (SuiteSparse, SciPy,
//! MKL examples). Lets this suite exchange CT system matrices with
//! external SpMV implementations, and lets users benchmark the CSCV
//! builder on matrices from elsewhere. Supports the
//! `matrix coordinate real general` header — the only flavor the
//! suite's unsymmetric operators need — plus `pattern` (values = 1).

use crate::coo::Coo;
use cscv_simd::Scalar;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Write a COO matrix as `matrix coordinate real general`.
pub fn write_matrix_market<T: Scalar>(path: impl AsRef<Path>, m: &Coo<T>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% exported by cscv-sparse")?;
    writeln!(w, "{} {} {}", m.n_rows(), m.n_cols(), m.nnz())?;
    for &(r, c, v) in m.entries() {
        // Matrix Market is 1-based.
        writeln!(w, "{} {} {:e}", r + 1, c + 1, v.to_f64())?;
    }
    w.flush()
}

fn parse_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Read a `matrix coordinate real|integer|pattern general|symmetric`
/// file into COO (symmetric entries are mirrored).
pub fn read_matrix_market<T: Scalar>(path: impl AsRef<Path>) -> std::io::Result<Coo<T>> {
    let file = std::fs::File::open(path)?;
    let mut lines = BufReader::new(file).lines();

    let header = lines
        .next()
        .ok_or_else(|| parse_err("empty file"))??
        .to_ascii_lowercase();
    let fields: Vec<&str> = header.split_ascii_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(parse_err("not a MatrixMarket matrix header"));
    }
    if fields[2] != "coordinate" {
        return Err(parse_err("only coordinate format supported"));
    }
    let pattern = match fields[3] {
        "real" | "integer" => false,
        "pattern" => true,
        other => return Err(parse_err(format!("unsupported field type {other}"))),
    };
    let symmetric = match fields[4] {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(format!("unsupported symmetry {other}"))),
    };

    // Skip comments, read the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let mut it = size_line.split_ascii_whitespace();
    let n_rows: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad rows"))?;
    let n_cols: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad cols"))?;
    let nnz: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad nnz"))?;

    let mut coo = Coo::new(n_rows, n_cols);
    let mut read = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_ascii_whitespace();
        let r: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("bad row index"))?;
        let c: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("bad col index"))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err("bad value"))?
        };
        if r == 0 || c == 0 || r > n_rows || c > n_cols {
            return Err(parse_err(format!("entry ({r},{c}) out of bounds")));
        }
        coo.push(r - 1, c - 1, T::from_f64(v));
        if symmetric && r != c {
            coo.push(c - 1, r - 1, T::from_f64(v));
        }
        read += 1;
    }
    if read != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {read}")));
    }
    Ok(coo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cscv_mtx_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    #[cfg_attr(miri, ignore = "file IO is unsupported under Miri isolation")]
    fn roundtrip_general_real() {
        let mut m: Coo<f64> = Coo::new(3, 4);
        m.push(0, 0, 1.5);
        m.push(2, 3, -2.25);
        m.push(1, 2, 1e-3);
        let p = tmp("rt.mtx");
        write_matrix_market(&p, &m).unwrap();
        let back: Coo<f64> = read_matrix_market(&p).unwrap();
        assert_eq!(back.n_rows(), 3);
        assert_eq!(back.n_cols(), 4);
        assert_eq!(back.to_dense(), m.to_dense());
    }

    #[test]
    #[cfg_attr(miri, ignore = "file IO is unsupported under Miri isolation")]
    fn reads_pattern_and_symmetric() {
        let p = tmp("sym.mtx");
        std::fs::write(
            &p,
            "%%MatrixMarket matrix coordinate pattern symmetric\n% c\n3 3 2\n2 1\n3 3\n",
        )
        .unwrap();
        let m: Coo<f32> = read_matrix_market(&p).unwrap();
        let d = m.to_dense();
        assert_eq!(d[3], 1.0); // (2,1)
        assert_eq!(d[1], 1.0); // mirrored (1,2)
        assert_eq!(d[2 * 3 + 2], 1.0); // diagonal not duplicated
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    #[cfg_attr(miri, ignore = "file IO is unsupported under Miri isolation")]
    fn rejects_garbage() {
        let p = tmp("bad.mtx");
        std::fs::write(&p, "%%MatrixMarket matrix array real general\n2 2\n1.0\n").unwrap();
        assert!(read_matrix_market::<f64>(&p).is_err());
        std::fs::write(
            &p,
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 3.0\n",
        )
        .unwrap();
        assert!(read_matrix_market::<f64>(&p).is_err(), "oob entry");
        std::fs::write(
            &p,
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3.0\n",
        )
        .unwrap();
        assert!(read_matrix_market::<f64>(&p).is_err(), "nnz mismatch");
    }

    #[test]
    #[cfg_attr(miri, ignore = "file IO is unsupported under Miri isolation")]
    fn scientific_notation_values_roundtrip() {
        let mut m: Coo<f32> = Coo::new(1, 1);
        m.push(0, 0, 3.25e-7);
        let p = tmp("sci.mtx");
        write_matrix_market(&p, &m).unwrap();
        let back: Coo<f32> = read_matrix_market(&p).unwrap();
        assert!((back.entries()[0].2 - 3.25e-7).abs() < 1e-12);
    }
}
