//! Compressed Sparse Column storage.
//!
//! The column-major compressed format (paper Alg. 1). For integral-equation
//! workloads CSC is the natural input of the CSCV builder: a column is a
//! pixel's full projection trajectory.

use crate::coo::Coo;
use crate::csr::Csr;
use cscv_simd::Scalar;

/// CSC sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc<T> {
    n_rows: usize,
    n_cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    vals: Vec<T>,
}

impl<T: Scalar> Csc<T> {
    /// Build from raw arrays (validated like [`Csr::from_parts`]).
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
        vals: Vec<T>,
    ) -> Self {
        assert_eq!(col_ptr.len(), n_cols + 1, "col_ptr length");
        assert_eq!(row_idx.len(), vals.len(), "row/val length mismatch");
        assert_eq!(*col_ptr.first().unwrap_or(&0), 0, "col_ptr[0] must be 0");
        assert_eq!(*col_ptr.last().unwrap_or(&0), vals.len(), "col_ptr end");
        for c in 0..n_cols {
            assert!(col_ptr[c] <= col_ptr[c + 1], "col_ptr not monotone at {c}");
            let rows = &row_idx[col_ptr[c]..col_ptr[c + 1]];
            for w in rows.windows(2) {
                assert!(w[0] < w[1], "rows not strictly sorted in col {c}");
            }
            if let Some(&last) = rows.last() {
                assert!((last as usize) < n_rows, "row {last} out of bounds");
            }
        }
        Csc {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
            vals,
        }
    }

    /// Build from a column-major sorted, deduplicated COO.
    pub(crate) fn from_col_sorted_coo(coo: &Coo<T>) -> Self {
        let n_cols = coo.n_cols();
        let mut col_ptr = vec![0usize; n_cols + 1];
        for &(_, c, _) in coo.entries() {
            col_ptr[c as usize + 1] += 1;
        }
        for c in 0..n_cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        let row_idx = coo.entries().iter().map(|e| e.0).collect();
        let vals = coo.entries().iter().map(|e| e.2).collect();
        Csc {
            n_rows: coo.n_rows(),
            n_cols,
            col_ptr,
            row_idx,
            vals,
        }
    }

    /// Adopt a transposed CSR's arrays as CSC of the original matrix.
    pub(crate) fn from_transposed_csr(t: Csr<T>) -> Self {
        // t is Aᵀ in CSR; its rows are A's columns.
        Csc {
            n_rows: t.n_cols(),
            n_cols: t.n_rows(),
            col_ptr: t.row_ptr().to_vec(),
            row_idx: t.col_idx().to_vec(),
            vals: t.vals().to_vec(),
        }
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    pub fn row_idx(&self) -> &[u32] {
        &self.row_idx
    }

    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    /// Row indices and values of one column.
    #[inline]
    pub fn col(&self, c: usize) -> (&[u32], &[T]) {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        (&self.row_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Bytes of the stored matrix data (`M(A)`).
    pub fn matrix_bytes(&self) -> usize {
        self.col_ptr.len() * std::mem::size_of::<usize>()
            + self.row_idx.len() * 4
            + self.vals.len() * T::BYTES
    }

    /// Serial SpMV (paper Alg. 1): `y = A x` with scattered updates.
    pub fn spmv_serial(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        y.fill(T::ZERO);
        for (c, &xc) in x.iter().enumerate() {
            let (rows, vals) = self.col(c);
            for (r, v) in rows.iter().zip(vals) {
                y[*r as usize] = v.mul_add(xc, y[*r as usize]);
            }
        }
    }

    /// Serial transpose SpMV: `y = Aᵀ x` (gather form — each output
    /// element is a dot product of a column with `x`).
    pub fn spmv_transpose_serial(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n_rows);
        assert_eq!(y.len(), self.n_cols);
        for (c, yc) in y.iter_mut().enumerate() {
            let (rows, vals) = self.col(c);
            let mut acc = T::ZERO;
            for (r, v) in rows.iter().zip(vals) {
                acc = v.mul_add(x[*r as usize], acc);
            }
            *yc = acc;
        }
    }

    /// Convert to CSR.
    pub fn to_csr(&self) -> Csr<T> {
        // Reinterpret as CSR of Aᵀ, transpose to get A in CSR.
        let t = Csr::from_parts(
            self.n_cols,
            self.n_rows,
            self.col_ptr.clone(),
            self.row_idx.clone(),
            self.vals.clone(),
        );
        let csr = t.transpose();
        crate::invariants::assert_csr(&csr, "Csc::to_csr");
        csr
    }

    /// Convert to COO (column-major sorted).
    pub fn to_coo(&self) -> Coo<T> {
        let mut coo = Coo::new(self.n_rows, self.n_cols);
        for c in 0..self.n_cols {
            let (rows, vals) = self.col(c);
            for (r, v) in rows.iter().zip(vals) {
                coo.push(*r as usize, c, *v);
            }
        }
        crate::invariants::assert_coo(&coo, "Csc::to_coo");
        coo
    }

    /// Per-column nonzero counts (paper property P3: near-uniform for
    /// integral-operator matrices).
    pub fn col_lengths(&self) -> Vec<usize> {
        (0..self.n_cols)
            .map(|c| self.col_ptr[c + 1] - self.col_ptr[c])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csc<f64> {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(2, 0, 3.0);
        coo.push(2, 1, 4.0);
        coo.to_csc()
    }

    #[test]
    fn structure_from_coo() {
        let m = sample();
        assert_eq!(m.col_ptr(), &[0, 2, 3, 4]);
        assert_eq!(m.row_idx(), &[0, 2, 2, 0]);
        assert_eq!(m.vals(), &[1.0, 3.0, 4.0, 2.0]);
    }

    #[test]
    fn spmv_matches_reference() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![5.0; 3];
        m.spmv_serial(&x, &mut y);
        assert_eq!(y, vec![7.0, 0.0, 11.0]);
    }

    #[test]
    fn transpose_spmv() {
        let m = sample();
        let x = vec![1.0, 5.0, -2.0];
        let mut y = vec![0.0; 3];
        m.spmv_transpose_serial(&x, &mut y);
        assert_eq!(y, vec![1.0 - 6.0, -8.0, 2.0]);
    }

    #[test]
    fn csr_csc_roundtrip() {
        let m = sample();
        let csr = m.to_csr();
        let back = csr.to_csc();
        assert_eq!(m, back);
        // And both agree with COO.
        assert_eq!(m.to_coo().to_dense(), csr.to_coo().to_dense());
    }

    #[test]
    fn col_access_and_lengths() {
        let m = sample();
        let (rows, vals) = m.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 3.0]);
        assert_eq!(m.col_lengths(), vec![2, 1, 1]);
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_unsorted_rows() {
        let _ = Csc::from_parts(3, 1, vec![0, 2], vec![2, 0], vec![1.0f32, 2.0]);
    }

    #[test]
    fn empty_columns() {
        let mut coo: Coo<f32> = Coo::new(3, 4);
        coo.push(1, 2, 7.0);
        let m = coo.to_csc();
        assert_eq!(m.col_lengths(), vec![0, 0, 1, 0]);
        let mut y = vec![0.0f32; 3];
        m.spmv_serial(&[1.0, 1.0, 2.0, 1.0], &mut y);
        assert_eq!(y, vec![0.0, 14.0, 0.0]);
    }
}
