//! Shared plumbing for parallel executors (used by this crate's baseline
//! formats and by the CSCV executors in `cscv-core`).

use crate::pool::ThreadPool;
use cscv_simd::Scalar;
use std::ops::Range;
use std::sync::Mutex;

/// A `&mut [T]` that can be sliced disjointly from several pool workers.
///
/// Soundness contract: callers hand each worker a range, and ranges given
/// out concurrently must be pairwise disjoint. All executors in the suite
/// derive the ranges from a partition of `0..len`, which guarantees that.
pub struct SharedSliceMut<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Send for SharedSliceMut<T> {}
unsafe impl<T: Send> Sync for SharedSliceMut<T> {}

impl<T> SharedSliceMut<T> {
    pub fn new(slice: &mut [T]) -> Self {
        SharedSliceMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Get a mutable sub-slice.
    ///
    /// # Safety
    /// `range` must be in bounds and must not overlap any other range
    /// handed out while both are alive.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
    }

    /// Raw pointer to one element, for executors whose per-thread write
    /// sets are disjoint but not contiguous (CSR5 segment flushes).
    ///
    /// # Safety
    /// `idx` must be in bounds; the caller's protocol must ensure no two
    /// threads access the same index concurrently.
    pub unsafe fn get_raw(&self, idx: usize) -> *mut T {
        debug_assert!(idx < self.len);
        self.ptr.add(idx)
    }
}

/// Lazily sized per-thread scratch buffers, cached across SpMV calls so
/// the measured kernels do not pay allocation on every iteration.
pub struct Scratch<T> {
    bufs: Mutex<Vec<Vec<T>>>,
}

impl<T: Scalar> Default for Scratch<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> Scratch<T> {
    pub fn new() -> Self {
        Scratch {
            bufs: Mutex::new(Vec::new()),
        }
    }

    /// Get `n_bufs` zeroed buffers of `len` elements each. The guard keeps
    /// the buffers exclusively borrowed for the duration of the SpMV call.
    pub fn take(&self, n_bufs: usize, len: usize) -> std::sync::MutexGuard<'_, Vec<Vec<T>>> {
        let mut g = self.bufs.lock().unwrap_or_else(|p| p.into_inner());
        if g.len() < n_bufs {
            g.resize_with(n_bufs, Vec::new);
        }
        for b in g.iter_mut().take(n_bufs) {
            if b.len() != len {
                b.clear();
                b.resize(len, T::ZERO);
            } else {
                b.fill(T::ZERO);
            }
        }
        g
    }
}

/// Reduce per-thread buffers into `y` in parallel: each thread sums one
/// disjoint row range across all buffers. This is the paper's "each
/// thread has its own local copy of vector y … summed up globally with
/// multi-threads".
pub fn reduce_buffers_into<T: Scalar>(pool: &ThreadPool, bufs: &[Vec<T>], y: &mut [T]) {
    let n = pool.n_threads();
    let ranges = crate::partition::even_chunks(y.len(), n);
    let out = SharedSliceMut::new(y);
    pool.run(|tid| {
        let range = ranges[tid].clone();
        // SAFETY: ranges are disjoint per thread.
        let dst = unsafe { out.slice_mut(range.clone()) };
        dst.fill(T::ZERO);
        for buf in bufs {
            cscv_simd::lanes::add_assign_slice(dst, &buf[range.clone()]);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_slice_disjoint_writes() {
        let mut data = vec![0u32; 10];
        let shared = SharedSliceMut::new(&mut data);
        assert_eq!(shared.len(), 10);
        assert!(!shared.is_empty());
        let pool = ThreadPool::new(2);
        let ranges = [0..5, 5..10];
        pool.run(|tid| {
            let s = unsafe { shared.slice_mut(ranges[tid].clone()) };
            for v in s {
                *v = tid as u32 + 1;
            }
        });
        assert_eq!(&data[..5], &[1; 5]);
        assert_eq!(&data[5..], &[2; 5]);
    }

    #[test]
    fn scratch_resizes_and_zeroes() {
        let scratch: Scratch<f64> = Scratch::new();
        {
            let mut g = scratch.take(2, 4);
            g[0][1] = 5.0;
            g[1][3] = 7.0;
        }
        let g = scratch.take(3, 4);
        for b in g.iter().take(3) {
            assert_eq!(b.len(), 4);
            assert!(b.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn reduce_buffers_sums_all() {
        let pool = ThreadPool::new(3);
        let bufs = vec![vec![1.0f32; 7], vec![2.0; 7], vec![3.0; 7]];
        let mut y = vec![99.0f32; 7];
        reduce_buffers_into(&pool, &bufs, &mut y);
        assert_eq!(y, vec![6.0; 7]);
    }

    #[test]
    fn get_raw_pointer_access() {
        let mut data = vec![1.0f64; 4];
        let shared = SharedSliceMut::new(&mut data);
        unsafe {
            *shared.get_raw(2) += 5.0;
        }
        assert_eq!(data, vec![1.0, 1.0, 6.0, 1.0]);
    }
}
