//! Shared plumbing for parallel executors (used by this crate's baseline
//! formats and by the CSCV executors in `cscv-core`).
//!
//! # Aliasing detection (`check-aliasing` feature)
//!
//! Every executor's speed rests on one manual invariant: ranges of the
//! shared output handed to concurrent pool workers are pairwise
//! disjoint. With the `check-aliasing` feature (enabled by this crate's
//! own tests, off in release builds), [`SharedSliceMut`] machine-checks
//! that invariant at runtime: [`slice_mut`](SharedSliceMut::slice_mut)
//! and [`get_raw`](SharedSliceMut::get_raw) register the claimed index
//! range in a per-buffer interval set, and any overlap between claims
//! from *different* threads panics naming both claim sites (file:line of
//! each call, captured via `#[track_caller]`). Same-thread overlaps are
//! legal — a thread may revisit its own rows sequentially — and are
//! coalesced so the interval set stays compact in scatter-heavy kernels.
//!
//! Claims live until the `SharedSliceMut` is dropped or until
//! [`claims_barrier`](SharedSliceMut::claims_barrier) declares a
//! synchronization point (executors call it between two `pool.run`
//! dispatches, where the dispatch barrier makes cross-thread reuse of
//! the same indices sound).

use crate::pool::ThreadPool;
use cscv_simd::Scalar;
use std::ops::Range;
use std::sync::Mutex;

#[cfg(feature = "check-aliasing")]
mod claims {
    //! The interval set behind the `check-aliasing` detector.
    use std::panic::Location;
    use std::sync::Mutex;
    use std::thread::ThreadId;

    struct Claim {
        start: usize,
        end: usize,
        thread: ThreadId,
        thread_name: String,
        site: &'static Location<'static>,
    }

    /// Sorted, pairwise-disjoint claimed ranges of one shared buffer.
    /// Same-thread claims that touch are merged (keeping the earliest
    /// claim site), so the set stays small under per-element scatters.
    pub(super) struct ClaimSet(Mutex<Vec<Claim>>);

    impl ClaimSet {
        pub fn new() -> Self {
            ClaimSet(Mutex::new(Vec::new()))
        }

        pub fn clear(&self) {
            self.0.lock().unwrap_or_else(|p| p.into_inner()).clear();
        }

        /// Register `[start, end)` for the calling thread; panic with
        /// both claim sites on a cross-thread overlap.
        pub fn claim(&self, mut start: usize, mut end: usize, site: &'static Location<'static>) {
            if start >= end {
                return;
            }
            let current = std::thread::current();
            let me = current.id();
            let mut v = self.0.lock().unwrap_or_else(|p| p.into_inner());
            // Claims are sorted by start and pairwise disjoint, so they
            // are sorted by end too: the first candidate overlap is the
            // first claim whose end lies past our start.
            let mut i = v.partition_point(|c| c.end <= start);
            while i < v.len() && v[i].start <= end {
                let c = &v[i];
                if c.start < end && start < c.end && c.thread != me {
                    // AUDIT(panic-ok): deliberate — an overlapping claim is a data race in the making; a diagnostic panic beats silent UB.
                    panic!(
                        "SharedSliceMut aliasing violation: thread {:?} ({me:?}) claimed \
                         [{start}..{end}) at {site}, overlapping [{}..{}) claimed by \
                         thread {:?} ({:?}) at {}",
                        current.name().unwrap_or("unnamed"),
                        c.start,
                        c.end,
                        c.thread_name,
                        c.thread,
                        c.site,
                    );
                }
                if c.thread == me {
                    // Same thread: absorb the overlapping/adjacent claim.
                    start = start.min(c.start);
                    end = end.max(c.end);
                    v.remove(i);
                } else {
                    // Other thread, merely adjacent: keep it, step past.
                    i += 1;
                }
            }
            // Merge with a same-thread left neighbor that ends exactly
            // where we start (keeps per-element scatters O(1) amortized).
            if i > 0 && v[i - 1].end == start && v[i - 1].thread == me {
                start = v[i - 1].start;
                v.remove(i - 1);
                i -= 1;
            }
            v.insert(
                i,
                Claim {
                    start,
                    end,
                    thread: me,
                    thread_name: current.name().unwrap_or("unnamed").to_string(),
                    site,
                },
            );
        }
    }
}

/// A `&mut [T]` that can be sliced disjointly from several pool workers.
///
/// Soundness contract: callers hand each worker a range, and ranges given
/// out concurrently must be pairwise disjoint. All executors in the suite
/// derive the ranges from a partition of `0..len`, which guarantees that —
/// and the `check-aliasing` feature (see the module docs) verifies it at
/// runtime in test builds.
pub struct SharedSliceMut<T> {
    ptr: *mut T,
    len: usize,
    #[cfg(feature = "check-aliasing")]
    claims: claims::ClaimSet,
}

// SAFETY: the raw pointer is just a lifetime-erased view of a `&mut [T]`
// that outlives the pool dispatch (see `ThreadPool::run`'s barrier);
// sending the view to workers is sound whenever the element type itself
// may move across threads.
unsafe impl<T: Send> Send for SharedSliceMut<T> {}
// SAFETY: shared (`&self`) use from several threads only hands out
// pairwise-disjoint `&mut` sub-slices per the type's contract, which is
// exactly the exclusive-access guarantee `&mut [T]` itself would give.
unsafe impl<T: Send> Sync for SharedSliceMut<T> {}

impl<T> SharedSliceMut<T> {
    pub fn new(slice: &mut [T]) -> Self {
        SharedSliceMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            #[cfg(feature = "check-aliasing")]
            claims: claims::ClaimSet::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Get a mutable sub-slice.
    ///
    /// # Safety
    /// `range` must be in bounds and must not overlap any other range
    /// handed out while both are alive.
    #[allow(clippy::mut_from_ref)]
    #[track_caller]
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        #[cfg(feature = "check-aliasing")]
        {
            assert!(
                range.start <= range.end && range.end <= self.len,
                "SharedSliceMut::slice_mut out of bounds: {range:?} of len {}",
                self.len
            );
            self.claims
                .claim(range.start, range.end, std::panic::Location::caller());
        }
        debug_assert!(range.start <= range.end);
        debug_assert!(range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
    }

    /// Raw pointer to one element, for executors whose per-thread write
    /// sets are disjoint but not contiguous (CSR5 segment flushes).
    ///
    /// # Safety
    /// `idx` must be in bounds; the caller's protocol must ensure no two
    /// threads access the same index concurrently.
    #[track_caller]
    pub unsafe fn get_raw(&self, idx: usize) -> *mut T {
        #[cfg(feature = "check-aliasing")]
        {
            assert!(
                idx < self.len,
                "SharedSliceMut::get_raw out of bounds: {idx} of len {}",
                self.len
            );
            self.claims
                .claim(idx, idx + 1, std::panic::Location::caller());
        }
        debug_assert!(idx < self.len);
        self.ptr.add(idx)
    }

    /// Declare a synchronization point: all outstanding `check-aliasing`
    /// range claims are released. Call between two `pool.run` dispatches
    /// over the same buffer — the dispatch barrier guarantees the earlier
    /// claims can no longer race with later ones. No-op (and fully
    /// compiled out) without the `check-aliasing` feature.
    #[inline]
    pub fn claims_barrier(&self) {
        #[cfg(feature = "check-aliasing")]
        self.claims.clear();
    }
}

/// Run `f(tid, &mut data[ranges[tid]])` on every pool slot — the safe
/// face of [`SharedSliceMut`] for partition-parallel writes. Ranges are
/// validated up front (in bounds, pairwise disjoint, one per slot), so
/// callers outside the audited `unsafe` whitelist can parallelize over a
/// shared output without writing `unsafe` themselves.
///
/// # Panics
/// If fewer ranges than pool slots are supplied, any range is reversed
/// or out of bounds, or two ranges overlap.
pub fn run_disjoint_mut<T, F>(pool: &ThreadPool, data: &mut [T], ranges: &[Range<usize>], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(
        ranges.len() >= pool.n_threads(),
        "run_disjoint_mut: {} ranges for {} pool slots",
        ranges.len(),
        pool.n_threads()
    );
    let mut sorted: Vec<&Range<usize>> = ranges.iter().collect();
    sorted.sort_by_key(|r| (r.start, r.end));
    for r in &sorted {
        assert!(
            r.start <= r.end && r.end <= data.len(),
            "run_disjoint_mut: range {r:?} out of bounds for len {}",
            data.len()
        );
    }
    for w in sorted.windows(2) {
        assert!(
            w[0].end <= w[1].start || w[0].start == w[0].end || w[1].start == w[1].end,
            "run_disjoint_mut: ranges {:?} and {:?} overlap",
            w[0],
            w[1]
        );
    }
    let shared = SharedSliceMut::new(data);
    pool.run(|tid| {
        // SAFETY: ranges were validated pairwise disjoint and in bounds
        // above, and each slot takes only its own range.
        // AUDIT(index-ok): the assert above requires ranges.len() ==
        // pool.n_threads() and tid < n_threads by the dispatch contract.
        let dst = unsafe { shared.slice_mut(ranges[tid].clone()) };
        f(tid, dst);
    });
}

/// Lazily sized per-thread scratch buffers, cached across SpMV calls so
/// the measured kernels do not pay allocation on every iteration.
pub struct Scratch<T> {
    bufs: Mutex<Vec<Vec<T>>>,
}

impl<T: Scalar> Default for Scratch<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> Scratch<T> {
    pub fn new() -> Self {
        Scratch {
            bufs: Mutex::new(Vec::new()),
        }
    }

    /// Pre-allocate the first `pool.n_threads()` buffers at `len`
    /// elements *from inside the pool*, one per slot, so each slot's
    /// buffer is allocated and first-written by the thread that will use
    /// it — on NUMA machines the pages land on that thread's node
    /// (per-socket `ỹ` accumulator placement). Subsequent [`take`] calls
    /// at the same `len` reuse the placed buffers. A no-op on uniform
    /// topologies, 1-slot pools and zero-length requests.
    ///
    /// [`take`]: Self::take
    pub fn warm(&self, pool: &ThreadPool, topo: &crate::numa::NumaTopology, len: usize) {
        let n = pool.n_threads();
        if topo.is_uniform() || n <= 1 || len == 0 {
            return;
        }
        let mut g = self.bufs.lock().unwrap_or_else(|p| p.into_inner());
        if g.len() < n {
            g.resize_with(n, Vec::new);
        }
        let ranges: Vec<Range<usize>> = (0..n).map(|i| i..i + 1).collect();
        run_disjoint_mut(pool, &mut g[..n], &ranges, |_tid, bufs| {
            let mut fresh = Vec::with_capacity(len);
            fresh.resize(len, T::ZERO);
            bufs[0] = fresh;
        });
    }

    /// Get `n_bufs` zeroed buffers of `len` elements each. The guard keeps
    /// the buffers exclusively borrowed for the duration of the SpMV call.
    pub fn take(&self, n_bufs: usize, len: usize) -> std::sync::MutexGuard<'_, Vec<Vec<T>>> {
        let mut g = self.bufs.lock().unwrap_or_else(|p| p.into_inner());
        if g.len() < n_bufs {
            g.resize_with(n_bufs, Vec::new);
        }
        for b in g.iter_mut().take(n_bufs) {
            if b.len() != len {
                b.clear();
                b.resize(len, T::ZERO);
            } else {
                b.fill(T::ZERO);
            }
        }
        g
    }
}

/// Reduce per-thread buffers into `y` in parallel: each thread sums one
/// disjoint row range across all buffers. This is the paper's "each
/// thread has its own local copy of vector y … summed up globally with
/// multi-threads".
pub fn reduce_buffers_into<T: Scalar>(pool: &ThreadPool, bufs: &[Vec<T>], y: &mut [T]) {
    let ranges = crate::partition::even_chunks(y.len(), pool.n_threads());
    run_disjoint_mut(pool, y, &ranges, |tid, dst| {
        dst.fill(T::ZERO);
        for buf in bufs {
            cscv_simd::lanes::add_assign_slice(dst, &buf[ranges[tid].clone()]);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_slice_disjoint_writes() {
        let mut data = vec![0u32; 10];
        let shared = SharedSliceMut::new(&mut data);
        assert_eq!(shared.len(), 10);
        assert!(!shared.is_empty());
        let pool = ThreadPool::new(2);
        let ranges = [0..5, 5..10];
        pool.run(|tid| {
            // SAFETY: per-thread ranges above are disjoint.
            let s = unsafe { shared.slice_mut(ranges[tid].clone()) };
            for v in s {
                *v = tid as u32 + 1;
            }
        });
        assert_eq!(&data[..5], &[1; 5]);
        assert_eq!(&data[5..], &[2; 5]);
    }

    #[test]
    fn run_disjoint_mut_partitions_safely() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0usize; 11];
        let ranges = crate::partition::even_chunks(data.len(), 3);
        run_disjoint_mut(&pool, &mut data, &ranges, |tid, dst| {
            for v in dst {
                *v = tid + 1;
            }
        });
        for (tid, r) in ranges.iter().enumerate() {
            assert!(data[r.clone()].iter().all(|&v| v == tid + 1));
        }
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn run_disjoint_mut_rejects_overlap() {
        let pool = ThreadPool::new(2);
        let mut data = vec![0u8; 8];
        run_disjoint_mut(&pool, &mut data, &[0..5, 4..8], |_, _| {});
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn run_disjoint_mut_rejects_out_of_bounds() {
        let pool = ThreadPool::new(2);
        let mut data = vec![0u8; 8];
        run_disjoint_mut(&pool, &mut data, &[0..4, 4..9], |_, _| {});
    }

    #[test]
    fn scratch_resizes_and_zeroes() {
        let scratch: Scratch<f64> = Scratch::new();
        {
            let mut g = scratch.take(2, 4);
            g[0][1] = 5.0;
            g[1][3] = 7.0;
        }
        let g = scratch.take(3, 4);
        for b in g.iter().take(3) {
            assert_eq!(b.len(), 4);
            assert!(b.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn reduce_buffers_sums_all() {
        let pool = ThreadPool::new(3);
        let bufs = vec![vec![1.0f32; 7], vec![2.0; 7], vec![3.0; 7]];
        let mut y = vec![99.0f32; 7];
        reduce_buffers_into(&pool, &bufs, &mut y);
        assert_eq!(y, vec![6.0; 7]);
    }

    #[test]
    fn get_raw_pointer_access() {
        let mut data = vec![1.0f64; 4];
        let shared = SharedSliceMut::new(&mut data);
        // SAFETY: single-threaded exclusive access; index in bounds.
        unsafe {
            *shared.get_raw(2) += 5.0;
        }
        assert_eq!(data, vec![1.0, 1.0, 6.0, 1.0]);
    }

    #[cfg(feature = "check-aliasing")]
    mod aliasing {
        use super::super::*;

        #[test]
        fn same_thread_overlap_is_legal() {
            let mut data = vec![0u32; 10];
            let shared = SharedSliceMut::new(&mut data);
            // SAFETY: sequential claims on one thread never alias live
            // references (each &mut is dropped before the next claim).
            unsafe {
                shared.slice_mut(0..6)[0] = 1;
                shared.slice_mut(3..9)[0] = 2;
                *shared.get_raw(4) = 3;
            }
        }

        #[test]
        fn cross_thread_overlap_panics_naming_both_sites() {
            let pool = ThreadPool::new(2);
            let mut data = vec![0u32; 10];
            let shared = SharedSliceMut::new(&mut data);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(|tid| {
                    // Overlapping on purpose: 0..6 vs 4..10.
                    let range = if tid == 0 { 0..6 } else { 4..10 };
                    // SAFETY: deliberately unsound claim — the detector
                    // must catch it before any write happens.
                    let s = unsafe { shared.slice_mut(range) };
                    std::hint::black_box(&s);
                });
            }))
            .unwrap_err();
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic".into());
            assert!(msg.contains("aliasing violation"), "{msg}");
            // Both claim sites are named (this file, twice).
            assert_eq!(msg.matches("shared.rs").count(), 2, "{msg}");
        }

        #[test]
        fn claims_barrier_allows_cross_thread_reuse() {
            let pool = ThreadPool::new(2);
            let mut data = vec![0u32; 8];
            let shared = SharedSliceMut::new(&mut data);
            let ranges = [0..4, 4..8];
            pool.run(|tid| {
                // SAFETY: disjoint per-thread ranges.
                unsafe { shared.slice_mut(ranges[tid].clone()) }.fill(1);
            });
            shared.claims_barrier();
            // Swapped ownership across the barrier: sound, and the
            // detector must accept it.
            pool.run(|tid| {
                // SAFETY: disjoint per-thread ranges (swapped).
                unsafe { shared.slice_mut(ranges[1 - tid].clone()) }.fill(2);
            });
            drop(shared);
            assert_eq!(data, vec![2; 8]);
        }

        #[test]
        #[should_panic(expected = "aliasing violation")]
        fn cross_thread_point_claims_conflict() {
            let pool = ThreadPool::new(2);
            let mut data = vec![0f64; 4];
            let shared = SharedSliceMut::new(&mut data);
            pool.run(|_tid| {
                // SAFETY: deliberately unsound — both threads claim
                // index 2; the detector must panic.
                unsafe {
                    std::hint::black_box(shared.get_raw(2));
                }
            });
        }

        #[test]
        #[should_panic(expected = "out of bounds")]
        fn out_of_bounds_claim_panics() {
            let mut data = vec![0u8; 4];
            let shared = SharedSliceMut::new(&mut data);
            // SAFETY: deliberately out of bounds — the checked build
            // must abort before the slice is materialized.
            unsafe {
                let _ = shared.slice_mut(2..5);
            }
        }
    }
}
