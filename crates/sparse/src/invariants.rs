//! Deep structural validators for the canonical sparse formats.
//!
//! The `from_parts` constructors already assert their input shape; this
//! module is the *conversion-boundary* counterpart: every format
//! conversion (`Coo::to_csr`, `Csr::to_csc`, `Csr::transpose`, …)
//! re-validates its **output** when the `check-invariants` feature is on,
//! so a bug in a conversion routine is caught at the boundary where it
//! was introduced instead of ten layers later as a wrong SpMV result.
//!
//! Each invariant carries a stable ID. The IDs are shared with the CSCV
//! catalog in `cscv-core::invariants` (which builds on these formats) and
//! referenced from SAFETY comments, documentation, and the fuzzer's
//! failure reports:
//!
//! | ID          | invariant                                              |
//! |-------------|--------------------------------------------------------|
//! | `CSR-PTR`   | `row_ptr` starts at 0, is monotone, ends at `nnz`      |
//! | `CSR-IDX`   | column indices strictly sorted per row, `< n_cols`     |
//! | `CSC-PTR`   | `col_ptr` starts at 0, is monotone, ends at `nnz`      |
//! | `CSC-IDX`   | row indices strictly sorted per column, `< n_rows`     |
//! | `COO-BOUNDS`| every triplet's indices are in bounds                  |
//! | `IDX-U32`   | dimensions fit the `u32` index compression             |
//!
//! With the feature off, [`assert_csr`]/[`assert_csc`]/[`assert_coo`]
//! compile to empty inlined bodies — release conversions carry zero
//! checking cost (same discipline as the `trace` feature).

use crate::coo::Coo;
use crate::csc::Csc;
use crate::csr::Csr;
use cscv_simd::Scalar;

/// One violated invariant: stable ID plus a human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable invariant ID (e.g. `CSR-PTR`).
    pub id: &'static str,
    /// What exactly is wrong, with indices.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.id, self.detail)
    }
}

fn check_ptr(
    ptr: &[usize],
    n_outer: usize,
    nnz: usize,
    id: &'static str,
    out: &mut Vec<Violation>,
) {
    if ptr.len() != n_outer + 1 {
        out.push(Violation {
            id,
            detail: format!(
                "pointer array has {} entries, expected {}",
                ptr.len(),
                n_outer + 1
            ),
        });
        return;
    }
    if ptr.first() != Some(&0) {
        out.push(Violation {
            id,
            detail: format!("pointer array starts at {:?}, expected 0", ptr.first()),
        });
    }
    if ptr.last() != Some(&nnz) {
        out.push(Violation {
            id,
            detail: format!(
                "pointer array ends at {:?}, expected nnz = {nnz}",
                ptr.last()
            ),
        });
    }
    for (i, w) in ptr.windows(2).enumerate() {
        if w[0] > w[1] {
            out.push(Violation {
                id,
                detail: format!("pointer array not monotone at {i}: {} > {}", w[0], w[1]),
            });
            return; // one report per array is enough
        }
    }
}

fn check_idx(
    ptr: &[usize],
    idx: &[u32],
    bound: usize,
    id: &'static str,
    axis: &str,
    out: &mut Vec<Violation>,
) {
    if ptr.len() < 2 {
        return;
    }
    for outer in 0..ptr.len() - 1 {
        let (lo, hi) = (ptr[outer], ptr[outer + 1]);
        if hi > idx.len() {
            return; // already reported by check_ptr
        }
        let seg = &idx[lo..hi];
        for w in seg.windows(2) {
            if w[0] >= w[1] {
                out.push(Violation {
                    id,
                    detail: format!(
                        "{axis} {outer}: indices not strictly sorted ({} then {})",
                        w[0], w[1]
                    ),
                });
                return;
            }
        }
        if let Some(&last) = seg.last() {
            if last as usize >= bound {
                out.push(Violation {
                    id,
                    detail: format!("{axis} {outer}: index {last} out of bounds (< {bound})"),
                });
                return;
            }
        }
    }
}

fn check_u32_fit(n_rows: usize, n_cols: usize, out: &mut Vec<Violation>) {
    if n_rows > u32::MAX as usize {
        out.push(Violation {
            id: "IDX-U32",
            detail: format!("n_rows = {n_rows} exceeds the u32 index range"),
        });
    }
    if n_cols > u32::MAX as usize {
        out.push(Violation {
            id: "IDX-U32",
            detail: format!("n_cols = {n_cols} exceeds the u32 index range"),
        });
    }
}

/// Deep-validate a CSR matrix; returns every violated invariant.
pub fn validate_csr<T: Scalar>(m: &Csr<T>) -> Vec<Violation> {
    let mut out = Vec::new();
    check_u32_fit(m.n_rows(), m.n_cols(), &mut out);
    if m.col_idx().len() != m.vals().len() {
        out.push(Violation {
            id: "CSR-PTR",
            detail: format!(
                "col_idx has {} entries but vals has {}",
                m.col_idx().len(),
                m.vals().len()
            ),
        });
    }
    check_ptr(m.row_ptr(), m.n_rows(), m.nnz(), "CSR-PTR", &mut out);
    check_idx(
        m.row_ptr(),
        m.col_idx(),
        m.n_cols(),
        "CSR-IDX",
        "row",
        &mut out,
    );
    out
}

/// Deep-validate a CSC matrix; returns every violated invariant.
pub fn validate_csc<T: Scalar>(m: &Csc<T>) -> Vec<Violation> {
    let mut out = Vec::new();
    check_u32_fit(m.n_rows(), m.n_cols(), &mut out);
    if m.row_idx().len() != m.vals().len() {
        out.push(Violation {
            id: "CSC-PTR",
            detail: format!(
                "row_idx has {} entries but vals has {}",
                m.row_idx().len(),
                m.vals().len()
            ),
        });
    }
    check_ptr(m.col_ptr(), m.n_cols(), m.nnz(), "CSC-PTR", &mut out);
    check_idx(
        m.col_ptr(),
        m.row_idx(),
        m.n_rows(),
        "CSC-IDX",
        "column",
        &mut out,
    );
    out
}

/// Deep-validate a COO matrix; returns every violated invariant.
pub fn validate_coo<T: Scalar>(m: &Coo<T>) -> Vec<Violation> {
    let mut out = Vec::new();
    check_u32_fit(m.n_rows(), m.n_cols(), &mut out);
    for (i, &(r, c, _)) in m.entries().iter().enumerate() {
        if r as usize >= m.n_rows() || c as usize >= m.n_cols() {
            out.push(Violation {
                id: "COO-BOUNDS",
                detail: format!(
                    "entry {i} at ({r},{c}) out of bounds for {}x{}",
                    m.n_rows(),
                    m.n_cols()
                ),
            });
            break;
        }
    }
    out
}

#[cfg(feature = "check-invariants")]
fn panic_violations(what: &str, boundary: &str, violations: &[Violation]) -> ! {
    let rendered: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
    panic!(
        "invariant violation in {what} after {boundary}:\n{}",
        rendered.join("\n")
    );
}

/// Conversion-boundary hook: panic (naming the boundary) if the CSR
/// output of a conversion violates any invariant. No-op without the
/// `check-invariants` feature.
#[cfg(feature = "check-invariants")]
pub fn assert_csr<T: Scalar>(m: &Csr<T>, boundary: &str) {
    let v = validate_csr(m);
    if !v.is_empty() {
        panic_violations("Csr", boundary, &v);
    }
}

/// Conversion-boundary hook (disabled: `check-invariants` is off).
#[cfg(not(feature = "check-invariants"))]
#[inline(always)]
pub fn assert_csr<T: Scalar>(_m: &Csr<T>, _boundary: &str) {}

/// Conversion-boundary hook: panic (naming the boundary) if the CSC
/// output of a conversion violates any invariant. No-op without the
/// `check-invariants` feature.
#[cfg(feature = "check-invariants")]
pub fn assert_csc<T: Scalar>(m: &Csc<T>, boundary: &str) {
    let v = validate_csc(m);
    if !v.is_empty() {
        panic_violations("Csc", boundary, &v);
    }
}

/// Conversion-boundary hook (disabled: `check-invariants` is off).
#[cfg(not(feature = "check-invariants"))]
#[inline(always)]
pub fn assert_csc<T: Scalar>(_m: &Csc<T>, _boundary: &str) {}

/// Conversion-boundary hook: panic (naming the boundary) if a COO
/// violates any invariant. No-op without the `check-invariants` feature.
#[cfg(feature = "check-invariants")]
pub fn assert_coo<T: Scalar>(m: &Coo<T>, boundary: &str) {
    let v = validate_coo(m);
    if !v.is_empty() {
        panic_violations("Coo", boundary, &v);
    }
}

/// Conversion-boundary hook (disabled: `check-invariants` is off).
#[cfg(not(feature = "check-invariants"))]
#[inline(always)]
pub fn assert_coo<T: Scalar>(_m: &Coo<T>, _boundary: &str) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_csr() -> Csr<f64> {
        Coo::from_triplets(
            3,
            4,
            vec![(0, 1, 1.0), (1, 0, 2.0), (1, 3, 3.0), (2, 2, 4.0)],
        )
        .to_csr()
    }

    #[test]
    fn valid_matrices_have_no_violations() {
        let csr = small_csr();
        assert!(validate_csr(&csr).is_empty());
        assert!(validate_csc(&csr.to_csc()).is_empty());
        assert!(validate_coo(&csr.to_coo()).is_empty());
    }

    #[test]
    fn violations_render_with_ids() {
        let v = Violation {
            id: "CSR-PTR",
            detail: "broken".into(),
        };
        assert_eq!(v.to_string(), "[CSR-PTR] broken");
    }

    #[test]
    fn empty_matrix_is_valid() {
        let coo: Coo<f64> = Coo::new(0, 0);
        assert!(validate_coo(&coo).is_empty());
        assert!(validate_csr(&coo.to_csr()).is_empty());
        assert!(validate_csc(&coo.to_csc()).is_empty());
    }
}
