//! Dense reference kernel and comparison utilities.
//!
//! Only used by tests, validators and tiny illustrative examples — all
//! hot paths are sparse. Lives in the library (not `#[cfg(test)]`) because
//! integration tests and examples across crates share it.

use cscv_simd::Scalar;

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense<T> {
    n_rows: usize,
    n_cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Dense<T> {
    /// Zero matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Dense {
            n_rows,
            n_cols,
            data: vec![T::ZERO; n_rows * n_cols],
        }
    }

    /// Wrap an existing row-major buffer.
    pub fn from_vec(n_rows: usize, n_cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), n_rows * n_cols);
        Dense {
            n_rows,
            n_cols,
            data,
        }
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    pub fn data(&self) -> &[T] {
        &self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        self.data[r * self.n_cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        self.data[r * self.n_cols + c] = v;
    }

    /// `y = A x`.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.n_cols..(r + 1) * self.n_cols];
            *yr = cscv_simd::lanes::dot(row, x);
        }
    }
}

/// Maximum relative error between two vectors:
/// `max_i |a_i - b_i| / max(1, |b_i|)` computed in `f64`.
pub fn max_rel_err<T: Scalar>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len());
    let mut worst = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        let denom = y.to_f64().abs().max(1.0);
        let err = (x.to_f64() - y.to_f64()).abs() / denom;
        if err > worst {
            worst = err;
        }
    }
    worst
}

/// Assert two vectors agree within `tol` relative error (panics with the
/// first offending index for debuggability).
pub fn assert_vec_close<T: Scalar>(a: &[T], b: &[T], tol: f64) {
    assert_eq!(a.len(), b.len(), "length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let denom = y.to_f64().abs().max(1.0);
        let err = (x.to_f64() - y.to_f64()).abs() / denom;
        assert!(
            err <= tol,
            "vectors differ at {i}: {x} vs {y} (rel err {err:.3e} > tol {tol:.3e})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    #[test]
    fn dense_spmv() {
        let d = Dense::from_vec(2, 3, vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = vec![0.0; 2];
        d.spmv(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![6.0, 15.0]);
    }

    #[test]
    fn dense_agrees_with_coo() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 2.0f64);
        coo.push(2, 2, -1.0);
        let dense = Dense::from_vec(3, 3, coo.to_dense());
        let x = vec![1.0, 2.0, 3.0];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        dense.spmv(&x, &mut y1);
        coo.spmv_reference(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn rel_err_measures() {
        let a = vec![1.0f32, 2.0];
        let b = vec![1.0f32, 2.0002];
        let e = max_rel_err(&a, &b);
        assert!(e > 0.0 && e < 1.5e-4);
        assert_vec_close(&a, &b, 1e-3);
    }

    #[test]
    #[should_panic]
    fn assert_close_fires() {
        assert_vec_close(&[1.0f32], &[2.0f32], 1e-6);
    }

    #[test]
    fn get_set() {
        let mut d: Dense<f32> = Dense::zeros(2, 2);
        d.set(1, 0, 5.0);
        assert_eq!(d.get(1, 0), 5.0);
        assert_eq!(d.get(0, 0), 0.0);
    }
}
