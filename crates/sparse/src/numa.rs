//! NUMA topology detection and first-touch buffer placement.
//!
//! On multi-socket machines the default "allocate on the main thread,
//! compute on the pool" pattern lands every buffer on the main thread's
//! node and makes remote-socket threads pay interconnect latency on the
//! SpMV hot path. Linux places a page on the node of the thread that
//! *first writes* it, so placement needs no syscalls: allocate, then
//! have each pool thread write its own partition before the kernels run
//! (the MLEM repo's `-D_HPC_` trick).
//!
//! [`NumaTopology::detect`] parses `/sys/devices/system/node`; machines
//! without that tree (or with one node) report a uniform topology and
//! every placement helper degrades to a no-op, so single-socket results
//! are byte-identical with or without placement.

use crate::partition;
use crate::pool::ThreadPool;
use crate::shared::run_disjoint_mut;
use cscv_simd::Scalar;
use std::path::Path;

/// One NUMA node: its id and the CPUs it owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaNode {
    pub id: usize,
    pub cpus: Vec<usize>,
}

/// The machine's NUMA layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaTopology {
    /// Nodes sorted by id. Never empty: unknown topologies collapse to
    /// one node covering every CPU.
    pub nodes: Vec<NumaNode>,
}

impl NumaTopology {
    /// Detect from `/sys/devices/system/node`. Honors `CSCV_NUMA=0`
    /// (or `off`) as a kill switch that forces the uniform topology.
    pub fn detect() -> Self {
        if matches!(
            std::env::var("CSCV_NUMA").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        ) {
            return Self::uniform();
        }
        Self::from_sysfs(Path::new("/sys/devices/system/node"))
    }

    /// The single-node fallback: one node owning every hardware thread.
    pub fn uniform() -> Self {
        NumaTopology {
            nodes: vec![NumaNode {
                id: 0,
                cpus: (0..ThreadPool::max_parallelism()).collect(),
            }],
        }
    }

    /// Parse a sysfs-style node tree: `<root>/node<N>/cpulist` files
    /// holding range lists like `0-3,8-11`. Unreadable or empty trees
    /// yield the uniform topology (graceful no-op downstream).
    pub fn from_sysfs(root: &Path) -> Self {
        let Ok(entries) = std::fs::read_dir(root) else {
            return Self::uniform();
        };
        let mut nodes = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id_str) = name.strip_prefix("node") else {
                continue;
            };
            let Ok(id) = id_str.parse::<usize>() else {
                continue;
            };
            let Ok(list) = std::fs::read_to_string(entry.path().join("cpulist")) else {
                continue;
            };
            let cpus = parse_cpulist(list.trim());
            if !cpus.is_empty() {
                nodes.push(NumaNode { id, cpus });
            }
        }
        if nodes.is_empty() {
            return Self::uniform();
        }
        nodes.sort_by_key(|n| n.id);
        NumaTopology { nodes }
    }

    /// True when placement cannot matter (zero or one node).
    pub fn is_uniform(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Node index (position in `nodes`, not node id) a pool slot maps to
    /// under block assignment: slots are split across nodes in contiguous
    /// runs, mirroring how `partition::even_chunks` hands out work.
    pub fn node_of_slot(&self, slot: usize, n_slots: usize) -> usize {
        let n = self.nodes.len().max(1);
        if n_slots == 0 {
            return 0;
        }
        let ranges = partition::even_chunks(n_slots, n);
        ranges
            .iter()
            .position(|r| r.contains(&slot.min(n_slots - 1)))
            .unwrap_or(0)
    }
}

/// Parse a kernel cpulist (`"0-3,8,10-11"`) into sorted CPU numbers.
/// Malformed pieces are skipped rather than failing the whole list.
pub fn parse_cpulist(s: &str) -> Vec<usize> {
    let mut cpus = Vec::new();
    for piece in s.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = piece.split_once('-') {
            if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                if lo <= hi && hi - lo < 4096 {
                    cpus.extend(lo..=hi);
                }
            }
        } else if let Ok(c) = piece.parse::<usize>() {
            cpus.push(c);
        }
    }
    cpus.sort_unstable();
    cpus.dedup();
    cpus
}

/// Allocate a zeroed buffer whose pages are first-touched partition-wise
/// by the pool threads, so each thread's share of the buffer lands on
/// that thread's node. On uniform topologies (or a 1-slot pool) the
/// touch dispatch is skipped: `vec!` already zeroes and placement cannot
/// matter.
pub fn alloc_first_touch<T: Scalar>(pool: &ThreadPool, topo: &NumaTopology, len: usize) -> Vec<T> {
    let mut v = vec![T::ZERO; len];
    first_touch(pool, topo, &mut v);
    v
}

/// Run the partition-aligned first-touch pass over an existing zeroed
/// buffer (each pool thread writes its `even_chunks` share). A no-op on
/// uniform topologies, 1-slot pools and empty buffers.
///
/// Note this *writes zeros* over the buffer — callers pass
/// freshly-allocated (still logically zero) memory, never live data.
pub fn first_touch<T: Scalar>(pool: &ThreadPool, topo: &NumaTopology, data: &mut [T]) {
    if topo.is_uniform() || pool.n_threads() <= 1 || data.is_empty() {
        return;
    }
    let ranges = partition::even_chunks(data.len(), pool.n_threads());
    run_disjoint_mut(pool, data, &ranges, |_tid, dst| {
        dst.fill(T::ZERO);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpulist_parsing() {
        assert_eq!(parse_cpulist("0-3"), vec![0, 1, 2, 3]);
        assert_eq!(parse_cpulist("0-1,4,6-7"), vec![0, 1, 4, 6, 7]);
        assert_eq!(parse_cpulist("7,3,3"), vec![3, 7]);
        assert_eq!(parse_cpulist(""), Vec::<usize>::new());
        // Malformed pieces are skipped, valid ones kept.
        assert_eq!(parse_cpulist("x,2,9-8,4-5"), vec![2, 4, 5]);
    }

    #[test]
    fn uniform_topology_is_single_node() {
        let t = NumaTopology::uniform();
        assert!(t.is_uniform());
        assert_eq!(t.nodes.len(), 1);
        assert!(!t.nodes[0].cpus.is_empty());
    }

    #[test]
    #[cfg_attr(miri, ignore = "filesystem access")]
    fn sysfs_parse_and_fallback() {
        // A missing tree falls back to uniform.
        let t = NumaTopology::from_sysfs(Path::new("/nonexistent/sysfs/tree"));
        assert!(t.is_uniform());

        // A synthetic two-node tree parses into two sorted nodes.
        let dir = std::env::temp_dir().join(format!("cscv-numa-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for (node, list) in [("node1", "4-7"), ("node0", "0-3")] {
            let nd = dir.join(node);
            std::fs::create_dir_all(&nd).unwrap();
            std::fs::write(nd.join("cpulist"), list).unwrap();
        }
        // Distractor entries must be ignored.
        std::fs::create_dir_all(dir.join("possible")).unwrap();
        let t = NumaTopology::from_sysfs(&dir);
        assert!(!t.is_uniform());
        assert_eq!(t.nodes.len(), 2);
        assert_eq!(t.nodes[0].id, 0);
        assert_eq!(t.nodes[0].cpus, vec![0, 1, 2, 3]);
        assert_eq!(t.nodes[1].cpus, vec![4, 5, 6, 7]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg_attr(miri, ignore = "filesystem access via detect")]
    fn detect_never_panics_and_is_nonempty() {
        let t = NumaTopology::detect();
        assert!(!t.nodes.is_empty());
    }

    #[test]
    fn slot_to_node_block_assignment() {
        let t = NumaTopology {
            nodes: vec![
                NumaNode {
                    id: 0,
                    cpus: vec![0, 1],
                },
                NumaNode {
                    id: 1,
                    cpus: vec![2, 3],
                },
            ],
        };
        // 4 slots over 2 nodes: first half node 0, second half node 1.
        assert_eq!(t.node_of_slot(0, 4), 0);
        assert_eq!(t.node_of_slot(1, 4), 0);
        assert_eq!(t.node_of_slot(2, 4), 1);
        assert_eq!(t.node_of_slot(3, 4), 1);
        // Degenerate inputs stay in range.
        assert_eq!(t.node_of_slot(9, 4), 1);
        assert_eq!(t.node_of_slot(0, 0), 0);
    }

    #[test]
    fn first_touch_preserves_zero_and_len() {
        let pool = ThreadPool::new(3);
        let topo = NumaTopology {
            nodes: vec![
                NumaNode {
                    id: 0,
                    cpus: vec![0],
                },
                NumaNode {
                    id: 1,
                    cpus: vec![1],
                },
            ],
        };
        let v: Vec<f64> = alloc_first_touch(&pool, &topo, 1000);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| x == 0.0));
        // Uniform topology: the no-op path also yields zeroed memory.
        let v: Vec<f32> = alloc_first_touch(&pool, &NumaTopology::uniform(), 17);
        assert_eq!(v.len(), 17);
        assert!(v.iter().all(|&x| x == 0.0));
    }
}
