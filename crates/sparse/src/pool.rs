//! A persistent worker pool — the suite's OpenMP analog.
//!
//! The paper measures SpMV at the millisecond scale where per-call thread
//! spawning would distort minima, so workers are created once and parked on
//! a channel. [`ThreadPool::run`] hands every worker the same borrowed
//! closure (lifetime-erased behind a completion barrier) and blocks until
//! all workers acknowledge — the closure is therefore never observed after
//! `run` returns, which is what makes the erasure sound.
//!
//! A pool of one thread executes inline, so `threads = 1` measurements are
//! genuinely serial (no pool overhead), matching how the paper reports
//! single-thread numbers.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Borrowed task pointer smuggled to workers. Soundness argument: `run`
/// keeps the referent alive on its stack and does not return until every
/// worker has acknowledged completion of this exact job.
struct TaskPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the referent is Sync (shared &-calls from many threads are fine)
// and outlives all uses per the barrier protocol above.
unsafe impl Send for TaskPtr {}

struct Job {
    task: TaskPtr,
    thread_idx: usize,
}

type Ack = std::thread::Result<()>;

/// Channel endpoints used by `run`. `std::sync::mpsc::Receiver` is not
/// `Sync`, so both ends live behind the dispatch mutex — which also
/// serializes `run` calls (the ack channel carries one generation at a
/// time), so the lock does double duty.
struct Dispatch {
    /// One injection channel per worker (jobs are per-thread, not stolen).
    job_txs: Vec<Sender<Job>>,
    ack_rx: Receiver<Ack>,
}

/// Fixed-size persistent thread pool.
pub struct ThreadPool {
    n_threads: usize,
    dispatch: Mutex<Dispatch>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Create a pool with `n_threads` execution slots (minimum 1).
    ///
    /// `n_threads == 1` creates no OS threads; `run` executes inline.
    pub fn new(n_threads: usize) -> Self {
        let n_threads = n_threads.max(1);
        let (ack_tx, ack_rx) = channel::<Ack>();
        let mut job_txs = Vec::new();
        let mut handles = Vec::new();
        if n_threads > 1 {
            for w in 0..n_threads {
                let (tx, rx) = channel::<Job>();
                let ack = ack_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("cscv-worker-{w}"))
                    .spawn(move || {
                        for job in rx.iter() {
                            let res = catch_unwind(AssertUnwindSafe(|| {
                                // SAFETY: see TaskPtr protocol.
                                let f = unsafe { &*job.task.0 };
                                f(job.thread_idx);
                            }));
                            // Receiver gone ⇒ pool dropped mid-run; just exit.
                            if ack.send(res).is_err() {
                                break;
                            }
                        }
                    })
                    // AUDIT(panic-ok): thread spawn fails only on resource exhaustion during pool construction, before any dispatched work exists to lose.
                    .expect("spawn pool worker");
                job_txs.push(tx);
                handles.push(handle);
            }
        }
        ThreadPool {
            n_threads,
            dispatch: Mutex::new(Dispatch { job_txs, ack_rx }),
            handles,
        }
    }

    /// Number of execution slots.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Hardware parallelism of the machine (≥ 1).
    pub fn max_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Run `f(thread_idx)` once on every slot; blocks until all complete.
    ///
    /// Panics in any slot are re-raised here (after all slots finished, so
    /// the borrow of `f` never escapes).
    ///
    /// Traced builds record the dispatch as a `pool.run` span plus
    /// per-thread busy-time counters (the busy/idle split and imbalance
    /// ratio fall out of the per-thread shards); untraced builds take
    /// the direct path with no added work.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if !cscv_trace::ENABLED {
            self.dispatch(&f);
            return;
        }
        let _span = cscv_trace::span::enter("pool.run");
        cscv_trace::counters::add(cscv_trace::counters::Counter::PoolDispatches, 1);
        let timed = |tid: usize| {
            let t0 = std::time::Instant::now();
            f(tid);
            cscv_trace::counters::add(
                cscv_trace::counters::Counter::PoolBusyNs,
                t0.elapsed().as_nanos() as u64,
            );
            cscv_trace::counters::add(cscv_trace::counters::Counter::PoolTasks, 1);
        };
        self.dispatch(&timed);
    }

    /// The untimed dispatch protocol shared by both paths of [`run`].
    fn dispatch(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.n_threads == 1 {
            f(0);
            return;
        }
        // A panic propagated out of a previous `run` poisons the lock but
        // leaves the pool protocol consistent (all acks were drained), so
        // poisoning is recoverable here.
        let guard = self
            .dispatch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // SAFETY: erase the lifetime; workers only touch the pointer
        // before acking, and `dispatch` does not return before all acks.
        let raw: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        for (idx, tx) in guard.job_txs.iter().enumerate() {
            tx.send(Job {
                task: TaskPtr(raw),
                thread_idx: idx,
            })
            // AUDIT(panic-ok): a worker that dropped its channel already died mid-run; aborting beats returning a silently partial reduction.
            .expect("worker alive");
        }
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for _ in 0..self.n_threads {
            // AUDIT(panic-ok): all ack senders live in `handles`; recv fails only if a worker died without acking, which is unrecoverable.
            match guard.ack_rx.recv().expect("worker alive") {
                Ok(()) => {}
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the job channels; workers drain and exit.
        self.dispatch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .job_txs
            .clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("n_threads", &self.n_threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_runs_inline() {
        let pool = ThreadPool::new(1);
        let tid = std::thread::current().id();
        pool.run(|i| {
            assert_eq!(i, 0);
            assert_eq!(std::thread::current().id(), tid);
        });
    }

    #[test]
    fn all_slots_execute_once() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        let mask = AtomicUsize::new(0);
        pool.run(|i| {
            hits.fetch_add(1, Ordering::SeqCst);
            mask.fetch_or(1 << i, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert_eq!(mask.load(Ordering::SeqCst), 0b1111);
    }

    #[test]
    fn pool_is_reusable() {
        let pool = ThreadPool::new(3);
        let count = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(|_| {
                // SeqCst: the assertion must observe every increment
                // directly, not only transitively through the ack
                // barrier's acquire/release edges.
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 150);
    }

    #[test]
    fn borrowed_state_is_visible_and_mutable_via_indices() {
        let pool = ThreadPool::new(4);
        let mut out = vec![0usize; 4];
        // Give each worker a disjoint &mut cell via raw-slice partitioning.
        let ptr = out.as_mut_ptr() as usize;
        pool.run(|i| {
            // SAFETY: disjoint indices per worker.
            unsafe { *(ptr as *mut usize).add(i) = i * 10 };
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|i| {
                if i == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool still usable afterwards.
        let count = AtomicUsize::new(0);
        pool.run(|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.n_threads(), 1);
        pool.run(|i| assert_eq!(i, 0));
    }

    #[test]
    fn max_parallelism_positive() {
        assert!(ThreadPool::max_parallelism() >= 1);
    }
}
