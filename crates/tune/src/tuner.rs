//! The search loop: fingerprint → cache → sampled grid benchmark.
//!
//! Candidate cost is measured with the paper's §V-C estimator — the
//! *minimum* over repetitions — on the view-sampled sub-matrix, through
//! the [`CandidateBench`] trait. [`WallClockBench`] is the real thing;
//! [`ModelBench`] is a deterministic byte-traffic model used by the
//! determinism tests (wall clocks cannot be asserted equal across
//! runs) and available to callers that want instant, machine-free
//! tuning.
//!
//! The winner is the argmin over a grid that always contains the
//! static heuristic, so within a search the tuned choice is never
//! slower than the heuristic *on the benchmark that selected it*; the
//! xtask `tune` command and the CI smoke job then re-verify that claim
//! on the full matrix with independent measurements.

use crate::cache::{CacheEntry, CacheOutcome, TuneCache, NEAR_THRESHOLD};
use crate::fingerprint::Fingerprint;
use crate::sample::sample_views;
use crate::space::{candidates, Op, TunedConfig};
use cscv_core::layout::ImageShape;
use cscv_core::{CscvExec, CscvMatrix, SinoLayout};
use cscv_simd::{MaskExpand, Scalar};
use cscv_sparse::{Csc, SpmvExecutor, ThreadPool};
use cscv_trace::counters::{add, Counter};
use std::collections::HashMap;
use std::time::Instant;

/// Tuning-run options.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    pub op: Op,
    /// Timed repetitions per candidate (min is kept).
    pub reps: usize,
    /// Untimed warmup runs per candidate.
    pub warmup: usize,
    /// Row-sampling nnz budget for the candidate benchmark.
    pub max_sample_nnz: usize,
    /// Widest pool the search may try (defaults to the machine).
    pub max_threads: usize,
    /// Fingerprint-distance ceiling for near-cache hits; 0 disables
    /// the fallback.
    pub near_threshold: f64,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            op: Op::Spmv,
            reps: 5,
            warmup: 1,
            max_sample_nnz: 200_000,
            max_threads: ThreadPool::max_parallelism(),
            near_threshold: NEAR_THRESHOLD,
        }
    }
}

/// What one [`tune`] call did.
#[derive(Debug, Clone)]
pub struct TuneReport {
    pub fingerprint: Fingerprint,
    pub chosen: TunedConfig,
    pub heuristic: TunedConfig,
    /// Chosen config's benchmark seconds (sampled matrix; 0 when the
    /// answer came from the cache without re-measuring).
    pub tuned_secs: f64,
    /// Heuristic's benchmark seconds on the same sampled matrix.
    pub heuristic_secs: f64,
    pub candidates_tried: usize,
    /// Timed kernel invocations this call performed (0 on a warm hit).
    pub samples_run: usize,
    pub cache: CacheOutcome,
}

/// How candidate configurations get a cost. `secs` returns the
/// min-of-reps cost of running `op` once (a full batch counts as one
/// run); lower is better. Implementations must count each timed kernel
/// invocation in `tune_samples`.
pub trait CandidateBench<T: Scalar + MaskExpand> {
    fn secs(
        &mut self,
        exec: &CscvExec<T>,
        cfg: &TunedConfig,
        op: Op,
        pool: &ThreadPool,
        warmup: usize,
        reps: usize,
    ) -> f64;
}

/// Wall-clock min-of-reps measurement (the real benchmark).
#[derive(Debug, Default)]
pub struct WallClockBench;

impl WallClockBench {
    fn run_once<T: Scalar + MaskExpand>(
        exec: &CscvExec<T>,
        cfg: &TunedConfig,
        op: Op,
        pool: &ThreadPool,
        x: &[T],
        y: &mut [T],
    ) {
        match op {
            Op::Spmv => exec.spmv(x, y, pool),
            Op::SpmvT => exec.spmv_transpose(x, y, pool),
            Op::Spmm { k } => {
                // Drive the batch in k_tile-wide slices — the knob
                // under test.
                let (nc, nr) = (exec.n_cols(), exec.n_rows());
                let tile = cfg.k_tile.clamp(1, k);
                let mut done = 0;
                while done < k {
                    let kk = tile.min(k - done);
                    exec.spmv_multi(
                        &x[done * nc..(done + kk) * nc],
                        kk,
                        &mut y[done * nr..(done + kk) * nr],
                        pool,
                    );
                    done += kk;
                }
            }
        }
    }
}

impl<T: Scalar + MaskExpand> CandidateBench<T> for WallClockBench {
    fn secs(
        &mut self,
        exec: &CscvExec<T>,
        cfg: &TunedConfig,
        op: Op,
        pool: &ThreadPool,
        warmup: usize,
        reps: usize,
    ) -> f64 {
        let (in_len, out_len) = match op {
            Op::Spmv => (exec.n_cols(), exec.n_rows()),
            Op::SpmvT => (exec.n_rows(), exec.n_cols()),
            Op::Spmm { k } => (k * exec.n_cols(), k * exec.n_rows()),
        };
        let x: Vec<T> = (0..in_len)
            .map(|i| T::from_f64(0.5 + (i % 17) as f64 * 0.03125))
            .collect();
        let mut y = vec![T::ZERO; out_len];
        for _ in 0..warmup {
            Self::run_once(exec, cfg, op, pool, &x, &mut y);
        }
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            Self::run_once(exec, cfg, op, pool, &x, &mut y);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(&y[..]);
            best = best.min(dt);
        }
        add(Counter::TuneSamples, reps.max(1) as u64);
        best
    }
}

/// Deterministic byte-traffic cost model: the paper's memory-
/// requirement view of SpMV (`M(A)` once per `k_tile`-chunk plus
/// per-RHS vector traffic), divided by an idealized parallel speedup,
/// plus a reduction surcharge for `LocalCopies`. Not a performance
/// oracle — a *repeatable* one, so two tune runs with the same inputs
/// provably pick the same winner.
#[derive(Debug, Default)]
pub struct ModelBench;

impl<T: Scalar + MaskExpand> CandidateBench<T> for ModelBench {
    fn secs(
        &mut self,
        exec: &CscvExec<T>,
        cfg: &TunedConfig,
        op: Op,
        _pool: &ThreadPool,
        _warmup: usize,
        reps: usize,
    ) -> f64 {
        add(Counter::TuneSamples, reps.max(1) as u64);
        let k = op.k() as f64;
        let tile = cfg.k_tile.clamp(1, op.k()) as f64;
        let vec_bytes = ((exec.n_rows() + exec.n_cols()) * T::BYTES) as f64;
        let matrix_passes = (k / tile).ceil();
        let bytes = exec.matrix_bytes() as f64 * matrix_passes + vec_bytes * k;
        // Idealized scaling: sqrt keeps wide pools from dominating the
        // model the way they never do on bandwidth-bound kernels.
        let scale = (cfg.threads as f64).sqrt();
        let reduction = match cfg.strategy {
            cscv_core::ParallelStrategy::ViewGroups => 0.0,
            cscv_core::ParallelStrategy::LocalCopies => {
                (cfg.threads as f64) * exec.n_rows() as f64 * T::BYTES as f64
            }
        };
        (bytes + reduction) / scale * 1e-9
    }
}

/// Tune one (matrix, operation, scalar) triple against `cache`.
///
/// Warm path: an exact or near cache hit returns immediately with
/// **zero** benchmark samples. Cold path: benchmark the pruned grid on
/// the view-sampled sub-matrix, pick the argmin, store it, and persist
/// the cache.
pub fn tune<T: Scalar + MaskExpand>(
    csc: &Csc<T>,
    layout: SinoLayout,
    img: ImageShape,
    opts: &TuneOptions,
    cache: &mut TuneCache,
    bench: &mut dyn CandidateBench<T>,
) -> Result<TuneReport, String> {
    let _span = cscv_trace::span::enter("tune.search");
    let fp = Fingerprint::compute(csc, layout);
    let heuristic = TunedConfig::heuristic(opts.op, opts.max_threads);

    let (hit, outcome) = cache.lookup(&fp, opts.op, T::NAME, opts.near_threshold);
    if let Some(e) = hit {
        return Ok(TuneReport {
            fingerprint: fp,
            chosen: e.config,
            heuristic,
            tuned_secs: e.tuned_secs,
            heuristic_secs: e.heuristic_secs,
            candidates_tried: 0,
            samples_run: 0,
            cache: outcome,
        });
    }

    let (sub_csc, sub_layout) = sample_views(csc, layout, opts.max_sample_nnz);
    let grid = candidates(opts.op, &fp, opts.max_threads);

    // Candidates share matrix builds: the built format depends only on
    // (variant, params), not on strategy/threads/k_tile.
    let mut built: HashMap<(u8, usize, usize, usize), CscvMatrix<T>> = HashMap::new();
    let mut pools: HashMap<usize, ThreadPool> = HashMap::new();
    let mut best: Option<(TunedConfig, f64)> = None;
    let mut heuristic_secs = f64::INFINITY;
    let mut tried = 0usize;
    let mut samples = 0usize;

    for cfg in &grid {
        let key = (
            matches!(cfg.variant, cscv_core::Variant::M) as u8,
            cfg.s_imgb,
            cfg.s_vvec,
            cfg.s_vxg,
        );
        if let std::collections::hash_map::Entry::Vacant(e) = built.entry(key) {
            match cscv_core::try_build(
                &sub_csc,
                sub_layout,
                img,
                cfg.exec_config().params,
                cfg.variant,
            ) {
                Ok(m) => {
                    e.insert(m);
                }
                Err(_) => continue, // invalid for this matrix; prune
            }
        }
        let m = built[&key].clone();
        let exec = CscvExec::with_strategy(m, cfg.strategy);
        let pool = pools
            .entry(cfg.threads)
            .or_insert_with(|| ThreadPool::new(cfg.threads));
        let secs = bench.secs(&exec, cfg, opts.op, pool, opts.warmup, opts.reps);
        add(Counter::TuneCandidates, 1);
        tried += 1;
        samples += opts.reps.max(1);
        if *cfg == heuristic {
            heuristic_secs = secs;
        }
        if best.as_ref().is_none_or(|(_, b)| secs < *b) {
            best = Some((*cfg, secs));
        }
    }

    let (chosen, tuned_secs) =
        best.ok_or_else(|| "no candidate configuration could be built".to_string())?;
    if !heuristic_secs.is_finite() {
        // The heuristic failed to build (e.g. the grid pruned it via a
        // build error); fall back to comparing against the winner.
        heuristic_secs = tuned_secs;
    }

    cache.insert(CacheEntry {
        fp,
        fp_hash: fp.hash(),
        op: opts.op.key(),
        scalar: T::NAME.into(),
        config: chosen,
        tuned_secs,
        heuristic_secs,
    });
    cache.save();
    cscv_harness::manifest::record_tune(
        &opts.op.key(),
        T::NAME,
        &chosen.describe(),
        tuned_secs,
        heuristic_secs,
        tried,
        samples,
    );

    Ok(TuneReport {
        fingerprint: fp,
        chosen,
        heuristic,
        tuned_secs,
        heuristic_secs,
        candidates_tried: tried,
        samples_run: samples,
        cache: outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscv_harness::gen::{generate, CaseDesc};

    fn case(line: &str) -> (Csc<f64>, SinoLayout, ImageShape) {
        let d = CaseDesc::parse(line).unwrap();
        let layout = SinoLayout {
            n_views: d.n_views,
            n_bins: d.n_bins,
        };
        let img = ImageShape { nx: d.nx, ny: d.ny };
        (generate(&d).to_csc(), layout, img)
    }

    const BANDED: &str = "kind=ct-banded views=16 bins=16 nx=8 ny=8 imgb=4 vvec=8 vxg=4 seed=5";

    fn opts() -> TuneOptions {
        TuneOptions {
            reps: 2,
            warmup: 0,
            max_threads: 2,
            ..TuneOptions::default()
        }
    }

    #[test]
    fn cold_search_picks_winner_not_slower_than_heuristic() {
        let (csc, layout, img) = case(BANDED);
        let mut cache = TuneCache::in_memory();
        let r = tune(&csc, layout, img, &opts(), &mut cache, &mut ModelBench).unwrap();
        assert!(r.candidates_tried > 1);
        assert!(r.samples_run > 0);
        assert_eq!(r.cache, CacheOutcome::Miss);
        assert!(
            r.tuned_secs <= r.heuristic_secs,
            "grid contains the heuristic, argmin cannot lose to it"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn warm_hit_runs_zero_samples() {
        let (csc, layout, img) = case(BANDED);
        let mut cache = TuneCache::in_memory();
        let cold = tune(&csc, layout, img, &opts(), &mut cache, &mut ModelBench).unwrap();
        let warm = tune(&csc, layout, img, &opts(), &mut cache, &mut ModelBench).unwrap();
        assert_eq!(warm.cache, CacheOutcome::HitExact);
        assert_eq!(warm.samples_run, 0);
        assert_eq!(warm.candidates_tried, 0);
        assert_eq!(warm.chosen, cold.chosen);
    }

    #[test]
    fn per_op_and_per_scalar_entries_are_distinct() {
        let (csc, layout, img) = case(BANDED);
        let mut cache = TuneCache::in_memory();
        let mut o = opts();
        tune(&csc, layout, img, &o, &mut cache, &mut ModelBench).unwrap();
        o.op = Op::Spmm { k: 4 };
        tune(&csc, layout, img, &o, &mut cache, &mut ModelBench).unwrap();
        o.op = Op::SpmvT;
        tune(&csc, layout, img, &o, &mut cache, &mut ModelBench).unwrap();
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn spmm_search_considers_tile_width() {
        let (csc, layout, img) = case(BANDED);
        let mut cache = TuneCache::in_memory();
        let mut o = opts();
        o.op = Op::Spmm { k: 8 };
        let r = tune(&csc, layout, img, &o, &mut cache, &mut ModelBench).unwrap();
        // The byte model strictly rewards wider tiles (fewer matrix
        // passes), so the winner must use the widest one.
        assert_eq!(r.chosen.k_tile, 8);
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timing is meaningless under Miri")]
    fn wall_clock_bench_works_end_to_end() {
        let (csc, layout, img) = case(BANDED);
        let mut cache = TuneCache::in_memory();
        let mut o = opts();
        o.max_sample_nnz = 500; // force the sampling path too
        let r = tune(&csc, layout, img, &o, &mut cache, &mut WallClockBench).unwrap();
        assert!(r.tuned_secs > 0.0 && r.tuned_secs.is_finite());
        assert!(r.tuned_secs <= r.heuristic_secs);
    }
}
