//! The candidate configuration space and its pruning rules.
//!
//! A [`TunedConfig`] is everything the tuner may vary: variant,
//! blocking parameters, thread-level strategy, thread count, and the
//! multi-RHS tile width. [`candidates`] enumerates a *pruned* grid —
//! small enough that a search costs a handful of sampled SpMVs, guided
//! by the fingerprint:
//!
//! * `S_ImgB` / `S_VVec` stay at the paper's per-variant recommended
//!   values (Table III): they trade against cache geometry, which the
//!   fingerprint cannot see, and the first-order knobs are the others;
//! * `S_VxG` sweeps {2, 4, 8, 16} (∩ `MAX_VXG`), but unstructured
//!   matrices (`band_frac > 0.25`) skip 16 — wide VxGs only pay off
//!   when P1/P2 hold and padding stays low;
//! * `LocalCopies` is only tried for single-RHS SpMV with > 1 thread:
//!   the batched and transpose paths partition by view group / tile
//!   regardless, and at one thread the strategies coincide;
//! * thread counts try {1, max/2, max} rather than every count — the
//!   scaling curve is monotone in between for these kernels;
//! * the multi-RHS tile width sweeps {1, 2, 4, 8} ∩ [1, k] for
//!   [`Op::Spmm`], and is fixed at 1 otherwise.
//!
//! The static heuristic ([`TunedConfig::heuristic`]) is always a grid
//! member, so the selected winner can never be slower than it on the
//! benchmark that selected it.

use crate::fingerprint::Fingerprint;
use cscv_core::kernels::MAX_VXG;
use cscv_core::{CscvParams, ExecConfig, ParallelStrategy, Variant};

/// The operation being tuned for. Winners are cached per operation:
/// the best single-RHS config is routinely the wrong batched config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Single right-hand side `y = A x`.
    Spmv,
    /// Batched `Y = A X` with `k` right-hand sides.
    Spmm { k: usize },
    /// Transpose product `x = Aᵀ y`.
    SpmvT,
}

impl Op {
    /// Stable cache-key form: `spmv`, `spmm8`, `spmv-t`.
    pub fn key(&self) -> String {
        match self {
            Op::Spmv => "spmv".into(),
            Op::Spmm { k } => format!("spmm{k}"),
            Op::SpmvT => "spmv-t".into(),
        }
    }

    /// Parse the [`key`](Self::key) form.
    pub fn from_key(s: &str) -> Option<Op> {
        match s {
            "spmv" => Some(Op::Spmv),
            "spmv-t" => Some(Op::SpmvT),
            _ => s
                .strip_prefix("spmm")
                .and_then(|k| k.parse().ok())
                .filter(|&k| k > 0)
                .map(|k| Op::Spmm { k }),
        }
    }

    /// Batch width of the operation (1 for the single-RHS ops).
    pub fn k(&self) -> usize {
        match self {
            Op::Spmm { k } => *k,
            _ => 1,
        }
    }
}

/// One point of the configuration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunedConfig {
    pub variant: Variant,
    pub s_imgb: usize,
    pub s_vvec: usize,
    pub s_vxg: usize,
    pub strategy: ParallelStrategy,
    /// Pool width the config was selected for.
    pub threads: usize,
    /// Multi-RHS tile width: [`Op::Spmm`] workloads are driven in
    /// slices of this many right-hand sides (1 = unbatched).
    pub k_tile: usize,
}

impl TunedConfig {
    /// The executor-construction view of this config.
    pub fn exec_config(&self) -> ExecConfig {
        ExecConfig {
            variant: self.variant,
            params: CscvParams::new(self.s_imgb, self.s_vvec, self.s_vxg),
            strategy: self.strategy,
        }
    }

    /// Today's static heuristic as a grid point: the paper's CSCV-Z
    /// defaults under the default strategy, all threads, and the widest
    /// supported tile for batched workloads.
    pub fn heuristic(op: Op, max_threads: usize) -> TunedConfig {
        let ec = ExecConfig::heuristic(Variant::Z);
        TunedConfig {
            variant: ec.variant,
            s_imgb: ec.params.s_imgb,
            s_vvec: ec.params.s_vvec,
            s_vxg: ec.params.s_vxg,
            strategy: ec.strategy,
            threads: max_threads.max(1),
            k_tile: op.k().min(8),
        }
    }

    /// Compact human-readable form for tables and reports.
    pub fn describe(&self) -> String {
        format!(
            "{:?} vxg={} {} t={} k={}",
            self.variant,
            self.s_vxg,
            match self.strategy {
                ParallelStrategy::ViewGroups => "view-groups",
                ParallelStrategy::LocalCopies => "local-copies",
            },
            self.threads,
            self.k_tile
        )
    }
}

/// Enumerate the pruned candidate grid for one (matrix, operation)
/// pair. The heuristic is always element 0.
pub fn candidates(op: Op, fp: &Fingerprint, max_threads: usize) -> Vec<TunedConfig> {
    let max_threads = max_threads.max(1);
    let mut thread_counts = vec![1, max_threads / 2, max_threads];
    thread_counts.retain(|&t| t >= 1);
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut vxgs: Vec<usize> = [2usize, 4, 8, 16]
        .into_iter()
        .filter(|&v| v <= MAX_VXG)
        .filter(|&v| v <= 8 || fp.band_frac <= 0.25)
        .collect();
    for variant in [Variant::Z, Variant::M] {
        let h = ExecConfig::heuristic(variant).params.s_vxg;
        if !vxgs.contains(&h) {
            vxgs.push(h);
        }
    }
    vxgs.sort_unstable();

    let k_tiles: Vec<usize> = match op {
        Op::Spmm { k } => {
            let mut ks: Vec<usize> = [1usize, 2, 4, 8].into_iter().filter(|&t| t <= k).collect();
            if ks.is_empty() {
                ks.push(1);
            }
            ks
        }
        _ => vec![1],
    };

    let mut out = vec![TunedConfig::heuristic(op, max_threads)];
    for variant in [Variant::Z, Variant::M] {
        let base = ExecConfig::heuristic(variant).params;
        for &s_vxg in &vxgs {
            for &threads in &thread_counts {
                let strategies: &[ParallelStrategy] = match op {
                    Op::Spmv if threads > 1 => {
                        &[ParallelStrategy::ViewGroups, ParallelStrategy::LocalCopies]
                    }
                    _ => &[ParallelStrategy::ViewGroups],
                };
                for &strategy in strategies {
                    for &k_tile in &k_tiles {
                        let cand = TunedConfig {
                            variant,
                            s_imgb: base.s_imgb,
                            s_vvec: base.s_vvec,
                            s_vxg,
                            strategy,
                            threads,
                            k_tile,
                        };
                        if !out.contains(&cand) {
                            out.push(cand);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(band_frac: f64) -> Fingerprint {
        Fingerprint {
            n_rows: 1000,
            n_cols: 400,
            n_views: 50,
            n_bins: 20,
            nnz: 8000,
            density: 0.02,
            col_cv: 0.1,
            row_cv: 0.2,
            empty_col_frac: 0.0,
            band_frac,
        }
    }

    #[test]
    fn op_keys_round_trip() {
        for op in [Op::Spmv, Op::Spmm { k: 8 }, Op::Spmm { k: 3 }, Op::SpmvT] {
            assert_eq!(Op::from_key(&op.key()), Some(op));
        }
        assert_eq!(Op::from_key("spmm0"), None);
        assert_eq!(Op::from_key("nope"), None);
        assert_eq!(Op::from_key("spmmx"), None);
    }

    #[test]
    fn heuristic_is_always_first_candidate() {
        for op in [Op::Spmv, Op::Spmm { k: 4 }, Op::SpmvT] {
            let grid = candidates(op, &fp(0.1), 8);
            assert_eq!(grid[0], TunedConfig::heuristic(op, 8));
        }
    }

    #[test]
    fn banded_pruning_drops_wide_vxg_for_unstructured() {
        let structured = candidates(Op::Spmv, &fp(0.05), 4);
        let unstructured = candidates(Op::Spmv, &fp(0.8), 4);
        assert!(structured.iter().any(|c| c.s_vxg == 16));
        assert!(unstructured.iter().all(|c| c.s_vxg <= 16));
        // The heuristic (element 0) survives regardless; the *swept*
        // wide point does not.
        assert!(
            !unstructured[1..].iter().any(|c| c.s_vxg == 16),
            "unstructured grid must not sweep vxg=16"
        );
        assert!(unstructured.len() < structured.len());
    }

    #[test]
    fn local_copies_only_for_parallel_spmv() {
        let serial = candidates(Op::Spmv, &fp(0.1), 1);
        assert!(serial
            .iter()
            .all(|c| c.strategy == ParallelStrategy::ViewGroups));
        let spmm = candidates(Op::Spmm { k: 8 }, &fp(0.1), 4);
        assert!(spmm
            .iter()
            .all(|c| c.strategy == ParallelStrategy::ViewGroups));
        let spmv = candidates(Op::Spmv, &fp(0.1), 4);
        assert!(spmv
            .iter()
            .any(|c| c.strategy == ParallelStrategy::LocalCopies));
    }

    #[test]
    fn k_tiles_respect_batch_width() {
        let grid = candidates(Op::Spmm { k: 3 }, &fp(0.1), 2);
        assert!(grid.iter().all(|c| c.k_tile <= 3 && c.k_tile >= 1));
        assert!(grid.iter().any(|c| c.k_tile == 2));
        let grid = candidates(Op::Spmv, &fp(0.1), 2);
        assert!(grid.iter().all(|c| c.k_tile == 1));
    }

    #[test]
    fn grid_stays_small_and_duplicate_free() {
        for op in [Op::Spmv, Op::Spmm { k: 8 }, Op::SpmvT] {
            let grid = candidates(op, &fp(0.1), 16);
            assert!(grid.len() <= 96, "{op:?}: {} candidates", grid.len());
            for (i, a) in grid.iter().enumerate() {
                assert!(!grid[i + 1..].contains(a), "duplicate {a:?}");
            }
        }
    }
}
