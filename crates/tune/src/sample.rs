//! View-strided row sampling for cheap candidate benchmarking.
//!
//! Tuning measures relative—not absolute—candidate cost, so it can run
//! on a sub-matrix as long as the sub-matrix preserves the structure
//! the configs are sensitive to. Sampling whole *views* (blocks of
//! `n_bins` consecutive rows) does exactly that: every column keeps its
//! bin trajectory and per-view band shape (P1/P2), per-column nnz just
//! scales down uniformly (P3 intact), and the result is still a valid
//! sinogram layout the CSCV builder accepts. Sampling random rows
//! would instead shred the curve structure and bias the search.

use cscv_core::SinoLayout;
use cscv_simd::Scalar;
use cscv_sparse::{Coo, Csc};

/// Sample whole views so the result has at most ~`max_nnz` nonzeros
/// (never fewer than one view). Matrices already at or under the
/// budget are returned as-is.
pub fn sample_views<T: Scalar>(
    csc: &Csc<T>,
    layout: SinoLayout,
    max_nnz: usize,
) -> (Csc<T>, SinoLayout) {
    let nnz = csc.nnz();
    if nnz <= max_nnz.max(1) || layout.n_views <= 1 {
        return (csc.clone(), layout);
    }
    let stride = nnz.div_ceil(max_nnz.max(1)).min(layout.n_views);
    let kept: Vec<usize> = (0..layout.n_views).step_by(stride.max(1)).collect();
    let sub_layout = SinoLayout {
        n_views: kept.len(),
        n_bins: layout.n_bins,
    };
    let mut view_map = vec![usize::MAX; layout.n_views];
    for (new, &old) in kept.iter().enumerate() {
        view_map[old] = new;
    }
    let n_bins = layout.n_bins.max(1);
    let (cp, ri, vs) = (csc.col_ptr(), csc.row_idx(), csc.vals());
    let mut coo: Coo<T> = Coo::new(sub_layout.n_rows(), csc.n_cols());
    for c in 0..csc.n_cols() {
        for i in cp[c]..cp[c + 1] {
            let r = ri[i] as usize;
            let (view, bin) = (r / n_bins, r % n_bins);
            if view_map[view] != usize::MAX {
                coo.push(view_map[view] * n_bins + bin, c, vs[i]);
            }
        }
    }
    (coo.to_csc(), sub_layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscv_harness::gen::{generate, CaseDesc};

    fn case() -> (Csc<f64>, SinoLayout) {
        let d = CaseDesc::parse(
            "kind=ct-banded views=32 bins=20 nx=10 ny=10 imgb=4 vvec=8 vxg=4 seed=3",
        )
        .unwrap();
        let layout = SinoLayout {
            n_views: d.n_views,
            n_bins: d.n_bins,
        };
        (generate(&d).to_csc(), layout)
    }

    #[test]
    fn small_matrices_pass_through_unchanged() {
        let (csc, layout) = case();
        let (sub, sub_layout) = sample_views(&csc, layout, csc.nnz());
        assert_eq!(sub_layout, layout);
        assert_eq!(sub.nnz(), csc.nnz());
    }

    #[test]
    fn sampling_hits_the_budget_and_keeps_structure() {
        let (csc, layout) = case();
        let budget = csc.nnz() / 4;
        let (sub, sub_layout) = sample_views(&csc, layout, budget);
        assert!(sub_layout.n_views < layout.n_views);
        assert_eq!(sub_layout.n_bins, layout.n_bins);
        assert!(sub.nnz() <= budget + budget / 2, "≈budget, whole views");
        assert!(sub.nnz() > 0);
        assert_eq!(sub.n_cols(), csc.n_cols());
        // Structure preservation: the sampled fingerprint stays near
        // the full one on the shape axes the grid pruning reads.
        let full = crate::fingerprint::Fingerprint::compute(&csc, layout);
        let part = crate::fingerprint::Fingerprint::compute(&sub, sub_layout);
        assert!((full.band_frac - part.band_frac).abs() < 0.15);
        assert!((full.col_cv - part.col_cv).abs() < 0.3);
    }

    #[test]
    fn sampling_is_deterministic() {
        let (csc, layout) = case();
        let (a, _) = sample_views(&csc, layout, 100);
        let (b, _) = sample_views(&csc, layout, 100);
        assert_eq!(a.row_idx(), b.row_idx());
        assert_eq!(a.vals(), b.vals());
    }

    #[test]
    fn single_view_is_never_reduced() {
        let (csc, _) = case();
        let layout = SinoLayout {
            n_views: 1,
            n_bins: csc.n_rows(),
        };
        let (sub, sub_layout) = sample_views(&csc, layout, 1);
        assert_eq!(sub_layout.n_views, 1);
        assert_eq!(sub.nnz(), csc.nnz());
    }
}
