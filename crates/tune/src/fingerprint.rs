//! Structural matrix fingerprints.
//!
//! A fingerprint is the tuner's notion of matrix identity: two matrices
//! with the same fingerprint hash get the same cached configuration,
//! and matrices *near* each other under [`Fingerprint::distance`] may
//! share one via the fallback lookup. The fields are chosen to be the
//! structure the CSCV kernels are actually sensitive to — dimensions
//! and nnz (work volume), per-column/per-row nnz dispersion (paper
//! property P3, which decides padding), empty-column fraction (IOBLR
//! skip behavior) and bandedness (how well P1/P2 hold, which decides
//! how much a large `S_VxG` pads).
//!
//! Values, in contrast, are deliberately excluded: SpMV cost does not
//! depend on them, and excluding them lets one tuning result serve
//! every iteration of a solver whose operator values change.

use cscv_core::SinoLayout;
use cscv_simd::Scalar;
use cscv_sparse::stats::CountStats;
use cscv_sparse::Csc;

/// Structural profile of one (matrix, sinogram layout) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fingerprint {
    pub n_rows: usize,
    pub n_cols: usize,
    pub n_views: usize,
    pub n_bins: usize,
    pub nnz: usize,
    /// Fraction of cells that are nonzero.
    pub density: f64,
    /// Coefficient of variation of per-column nnz (P3 metric).
    pub col_cv: f64,
    /// Coefficient of variation of per-row nnz.
    pub row_cv: f64,
    /// Fraction of columns with no nonzeros.
    pub empty_col_frac: f64,
    /// Mean per-(column, view) bin span divided by `n_bins`: ≈ 0 for
    /// CT-banded operators (P1/P2 hold), → 1 for unstructured sprinkle.
    pub band_frac: f64,
}

impl Fingerprint {
    /// Profile a CSC matrix under its sinogram layout. `O(nnz)`.
    pub fn compute<T: Scalar>(csc: &Csc<T>, layout: SinoLayout) -> Fingerprint {
        let (n_rows, n_cols, nnz) = (csc.n_rows(), csc.n_cols(), csc.nnz());
        let col_lengths = csc.col_lengths();
        let mut row_lengths = vec![0usize; n_rows];
        for &r in csc.row_idx() {
            row_lengths[r as usize] += 1;
        }
        let col_stats = CountStats::from_counts(&col_lengths);
        let row_stats = CountStats::from_counts(&row_lengths);
        let empty_cols = col_lengths.iter().filter(|&&l| l == 0).count();

        // Bandedness: within a column, row indices are sorted, and
        // row = view·n_bins + bin, so each column's entries arrive
        // view-ordered — one pass tracks the bin span per (col, view).
        let n_bins = layout.n_bins.max(1);
        let mut span_sum = 0usize;
        let mut span_count = 0usize;
        let cp = csc.col_ptr();
        let ri = csc.row_idx();
        for c in 0..n_cols {
            let mut cur_view = usize::MAX;
            let (mut lo, mut hi) = (0usize, 0usize);
            for &r in &ri[cp[c]..cp[c + 1]] {
                let (view, bin) = (r as usize / n_bins, r as usize % n_bins);
                if view != cur_view {
                    if cur_view != usize::MAX {
                        span_sum += hi - lo + 1;
                        span_count += 1;
                    }
                    cur_view = view;
                    lo = bin;
                    hi = bin;
                } else {
                    lo = lo.min(bin);
                    hi = hi.max(bin);
                }
            }
            if cur_view != usize::MAX {
                span_sum += hi - lo + 1;
                span_count += 1;
            }
        }
        let band_frac = if span_count == 0 {
            0.0
        } else {
            (span_sum as f64 / span_count as f64) / n_bins as f64
        };

        let cells = n_rows as f64 * n_cols as f64;
        Fingerprint {
            n_rows,
            n_cols,
            n_views: layout.n_views,
            n_bins: layout.n_bins,
            nnz,
            density: if cells > 0.0 { nnz as f64 / cells } else { 0.0 },
            col_cv: col_stats.cv,
            row_cv: row_stats.cv,
            empty_col_frac: if n_cols > 0 {
                empty_cols as f64 / n_cols as f64
            } else {
                0.0
            },
            band_frac,
        }
    }

    /// Stable 64-bit FNV-1a hash of the quantized fingerprint — the
    /// cache key. Continuous fields are quantized to 1e-4 so a
    /// bit-for-bit identical matrix always rehashes identically while
    /// float noise below measurement relevance cannot split keys.
    pub fn hash(&self) -> u64 {
        let mut h = Fnv::new();
        for dim in [
            self.n_rows,
            self.n_cols,
            self.n_views,
            self.n_bins,
            self.nnz,
        ] {
            h.write_u64(dim as u64);
        }
        for f in [
            self.density,
            self.col_cv,
            self.row_cv,
            self.empty_col_frac,
            self.band_frac,
        ] {
            h.write_u64(quantize(f));
        }
        h.finish()
    }

    /// Structural distance to another fingerprint: log-ratio of the
    /// scale fields plus absolute differences of the shape fields,
    /// with bandedness weighted hardest (it is the axis the grid's
    /// pruning keys on). 0 for identical structure; the near-lookup
    /// default threshold is [`crate::cache::NEAR_THRESHOLD`].
    pub fn distance(&self, other: &Fingerprint) -> f64 {
        let log_ratio = |a: usize, b: usize| {
            let (a, b) = (a.max(1) as f64, b.max(1) as f64);
            (a.ln() - b.ln()).abs()
        };
        log_ratio(self.n_rows, other.n_rows)
            + log_ratio(self.n_cols, other.n_cols)
            + log_ratio(self.nnz, other.nnz)
            + (self.col_cv - other.col_cv).abs()
            + (self.row_cv - other.row_cv).abs()
            + 2.0 * (self.empty_col_frac - other.empty_col_frac).abs()
            + 4.0 * (self.band_frac - other.band_frac).abs()
    }
}

/// Quantize a (small, non-negative in practice) float to a hashable
/// integer at 1e-4 resolution.
fn quantize(f: f64) -> u64 {
    (f * 1e4).round() as i64 as u64
}

/// Minimal FNV-1a (64-bit) — the same zero-dependency discipline as the
/// rest of the workspace; collision resistance is irrelevant here, the
/// cache verifies the full fingerprint behind the hash anyway.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscv_harness::gen::{generate, CaseDesc};

    fn fp_of(line: &str) -> Fingerprint {
        let d = CaseDesc::parse(line).unwrap();
        let layout = SinoLayout {
            n_views: d.n_views,
            n_bins: d.n_bins,
        };
        Fingerprint::compute(&generate(&d).to_csc(), layout)
    }

    const BANDED: &str = "kind=ct-banded views=24 bins=24 nx=12 ny=12 imgb=4 vvec=8 vxg=4 seed=9";
    const RANDOM: &str =
        "kind=uniform-random views=24 bins=24 nx=12 ny=12 imgb=4 vvec=8 vxg=4 seed=9";

    #[test]
    fn banded_and_random_structures_are_distinguished() {
        let banded = fp_of(BANDED);
        let random = fp_of(RANDOM);
        // The CT family produces tight per-view bin bands; the sprinkle
        // does not. This is the discriminator the grid pruning uses.
        assert!(banded.band_frac < 0.3, "banded {}", banded.band_frac);
        assert!(random.band_frac > 0.2, "random {}", random.band_frac);
        assert!(random.band_frac > banded.band_frac);
        assert!(banded.distance(&random) > 0.1);
        assert_ne!(banded.hash(), random.hash());
    }

    #[test]
    fn fingerprint_is_deterministic_and_self_distance_zero() {
        let a = fp_of(BANDED);
        let b = fp_of(BANDED);
        assert_eq!(a, b);
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.distance(&b), 0.0);
    }

    #[test]
    fn values_do_not_affect_the_fingerprint() {
        let d = CaseDesc::parse(BANDED).unwrap();
        let layout = SinoLayout {
            n_views: d.n_views,
            n_bins: d.n_bins,
        };
        let csc = generate(&d).to_csc();
        let scaled = Csc::from_parts(
            csc.n_rows(),
            csc.n_cols(),
            csc.col_ptr().to_vec(),
            csc.row_idx().to_vec(),
            csc.vals().iter().map(|v| v * 3.5).collect(),
        );
        assert_eq!(
            Fingerprint::compute(&csc, layout).hash(),
            Fingerprint::compute(&scaled, layout).hash()
        );
    }

    #[test]
    fn empty_matrix_profiles_cleanly() {
        let csc: Csc<f64> = Csc::from_parts(4, 0, vec![0], vec![], vec![]);
        let fp = Fingerprint::compute(
            &csc,
            SinoLayout {
                n_views: 2,
                n_bins: 2,
            },
        );
        assert_eq!(fp.nnz, 0);
        assert_eq!(fp.band_frac, 0.0);
        assert_eq!(fp.empty_col_frac, 0.0);
    }
}
