//! The versioned on-disk tuning cache.
//!
//! One JSON document (`{"schema": N, "entries": [...]}`), hand-rolled
//! through `cscv_trace::json` — the workspace's zero-dependency
//! discipline. Entries are keyed by (fingerprint hash, operation,
//! scalar type) and carry the full fingerprint, so lookups can fall
//! back to the *nearest* stored fingerprint under
//! [`Fingerprint::distance`] when no exact hash matches.
//!
//! Stale-selection hazard: a cache written by an older build could
//! silently steer a newer kernel to a wrong (or now-invalid) config.
//! Two guards close it, both tested here:
//!
//! * the whole file is discarded when its `schema` differs from
//!   [`CACHE_SCHEMA`] — bump the constant whenever the meaning of a
//!   stored config changes;
//! * each entry stores its fingerprint's hash next to the fingerprint;
//!   an entry whose stored fields no longer rehash to `fp_hash`
//!   (a corrupted or hand-edited file, or a quantization change) is
//!   dropped at load instead of being applied.
//!
//! Lookups tally `tune_cache_hits` / `tune_cache_misses` so the warm
//! path is verifiable from trace counters alone.

use crate::fingerprint::Fingerprint;
use crate::space::{Op, TunedConfig};
use cscv_core::{ParallelStrategy, Variant};
use cscv_trace::counters::{add, Counter};
use cscv_trace::json::Json;
use std::path::{Path, PathBuf};

/// Cache schema version. v1: initial format (PR 6).
pub const CACHE_SCHEMA: u64 = 1;

/// Default fingerprint-distance threshold for near lookups.
pub const NEAR_THRESHOLD: f64 = 0.25;

/// One persisted tuning decision.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    pub fp: Fingerprint,
    /// `fp.hash()` at write time — revalidated on load.
    pub fp_hash: u64,
    /// Operation key ([`Op::key`]).
    pub op: String,
    /// Scalar type name (`Scalar::NAME`).
    pub scalar: String,
    pub config: TunedConfig,
    /// Sampled-benchmark seconds of the chosen config.
    pub tuned_secs: f64,
    /// Sampled-benchmark seconds of the static heuristic.
    pub heuristic_secs: f64,
}

/// How a lookup was answered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheOutcome {
    /// Exact fingerprint-hash match.
    HitExact,
    /// Nearest stored fingerprint within the distance threshold.
    HitNear(f64),
    /// No usable entry; a search (or the heuristic) was needed.
    Miss,
}

/// The in-memory cache, with optional backing file.
#[derive(Debug, Default)]
pub struct TuneCache {
    entries: Vec<CacheEntry>,
    path: Option<PathBuf>,
}

impl TuneCache {
    /// An unbacked cache (never persisted; tests and one-shot runs).
    pub fn in_memory() -> TuneCache {
        TuneCache::default()
    }

    /// Load from `path`. A missing file yields an empty cache bound to
    /// the path; an unparsable file, a schema mismatch, or individual
    /// hash-mismatched entries are *invalidated* (dropped), never
    /// applied.
    pub fn load(path: &Path) -> TuneCache {
        let mut cache = TuneCache {
            entries: Vec::new(),
            path: Some(path.to_path_buf()),
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            return cache;
        };
        let Ok(doc) = Json::parse(&text) else {
            return cache;
        };
        if doc.get("schema").and_then(Json::as_f64) != Some(CACHE_SCHEMA as f64) {
            return cache;
        }
        let Some(entries) = doc.get("entries").and_then(Json::as_arr) else {
            return cache;
        };
        for e in entries {
            if let Some(entry) = entry_from_json(e) {
                // The stale-selection guard: stored hash must match a
                // fresh rehash of the stored fingerprint.
                if entry.fp.hash() == entry.fp_hash {
                    cache.entries.push(entry);
                }
            }
        }
        cache
    }

    /// Persist to the backing file (no-op for in-memory caches).
    /// Best-effort like the manifest writers: tuning never fails
    /// because the cache directory is read-only.
    pub fn save(&self) {
        let Some(path) = &self.path else { return };
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let doc = Json::obj(vec![
            ("schema", Json::Num(CACHE_SCHEMA as f64)),
            (
                "entries",
                Json::Arr(self.entries.iter().map(entry_to_json).collect()),
            ),
        ]);
        let _ = std::fs::write(path, doc.to_string() + "\n");
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[CacheEntry] {
        &self.entries
    }

    /// Insert (or replace, keyed by `(fp_hash, op, scalar)`) an entry.
    pub fn insert(&mut self, entry: CacheEntry) {
        self.entries
            .retain(|e| (e.fp_hash, &e.op, &e.scalar) != (entry.fp_hash, &entry.op, &entry.scalar));
        self.entries.push(entry);
    }

    /// Look up a config: exact fingerprint hash first, then the nearest
    /// stored fingerprint for the same (op, scalar) within
    /// `near_threshold`. Counts `tune_cache_hits` / `tune_cache_misses`.
    pub fn lookup(
        &self,
        fp: &Fingerprint,
        op: Op,
        scalar: &str,
        near_threshold: f64,
    ) -> (Option<&CacheEntry>, CacheOutcome) {
        let key = op.key();
        let hash = fp.hash();
        if let Some(e) = self
            .entries
            .iter()
            .find(|e| e.fp_hash == hash && e.op == key && e.scalar == scalar)
        {
            add(Counter::TuneCacheHits, 1);
            return (Some(e), CacheOutcome::HitExact);
        }
        let near = self
            .entries
            .iter()
            .filter(|e| e.op == key && e.scalar == scalar)
            .map(|e| (e, fp.distance(&e.fp)))
            .filter(|(_, d)| *d <= near_threshold)
            .min_by(|a, b| a.1.total_cmp(&b.1));
        match near {
            Some((e, d)) => {
                add(Counter::TuneCacheHits, 1);
                (Some(e), CacheOutcome::HitNear(d))
            }
            None => {
                add(Counter::TuneCacheMisses, 1);
                (None, CacheOutcome::Miss)
            }
        }
    }
}

fn variant_key(v: Variant) -> &'static str {
    match v {
        Variant::Z => "Z",
        Variant::M => "M",
    }
}

fn strategy_key(s: ParallelStrategy) -> &'static str {
    match s {
        ParallelStrategy::ViewGroups => "view-groups",
        ParallelStrategy::LocalCopies => "local-copies",
    }
}

fn entry_to_json(e: &CacheEntry) -> Json {
    let fp = &e.fp;
    Json::obj(vec![
        // Hex string, not a JSON number: a u64 hash does not fit f64's
        // 53-bit mantissa, and a rounded hash would fail revalidation.
        ("fp_hash", Json::Str(format!("{:016x}", e.fp_hash))),
        ("op", Json::Str(e.op.clone())),
        ("scalar", Json::Str(e.scalar.clone())),
        (
            "fp",
            Json::obj(vec![
                ("n_rows", Json::Num(fp.n_rows as f64)),
                ("n_cols", Json::Num(fp.n_cols as f64)),
                ("n_views", Json::Num(fp.n_views as f64)),
                ("n_bins", Json::Num(fp.n_bins as f64)),
                ("nnz", Json::Num(fp.nnz as f64)),
                ("density", Json::Num(fp.density)),
                ("col_cv", Json::Num(fp.col_cv)),
                ("row_cv", Json::Num(fp.row_cv)),
                ("empty_col_frac", Json::Num(fp.empty_col_frac)),
                ("band_frac", Json::Num(fp.band_frac)),
            ]),
        ),
        (
            "config",
            Json::obj(vec![
                ("variant", Json::Str(variant_key(e.config.variant).into())),
                ("s_imgb", Json::Num(e.config.s_imgb as f64)),
                ("s_vvec", Json::Num(e.config.s_vvec as f64)),
                ("s_vxg", Json::Num(e.config.s_vxg as f64)),
                (
                    "strategy",
                    Json::Str(strategy_key(e.config.strategy).into()),
                ),
                ("threads", Json::Num(e.config.threads as f64)),
                ("k_tile", Json::Num(e.config.k_tile as f64)),
            ]),
        ),
        ("tuned_secs", Json::Num(e.tuned_secs)),
        ("heuristic_secs", Json::Num(e.heuristic_secs)),
    ])
}

fn entry_from_json(j: &Json) -> Option<CacheEntry> {
    let num = |o: &Json, k: &str| o.get(k).and_then(Json::as_f64);
    let fp = j.get("fp")?;
    let cfg = j.get("config")?;
    let usize_of = |o: &Json, k: &str| num(o, k).map(|f| f as usize);
    Some(CacheEntry {
        fp: Fingerprint {
            n_rows: usize_of(fp, "n_rows")?,
            n_cols: usize_of(fp, "n_cols")?,
            n_views: usize_of(fp, "n_views")?,
            n_bins: usize_of(fp, "n_bins")?,
            nnz: usize_of(fp, "nnz")?,
            density: num(fp, "density")?,
            col_cv: num(fp, "col_cv")?,
            row_cv: num(fp, "row_cv")?,
            empty_col_frac: num(fp, "empty_col_frac")?,
            band_frac: num(fp, "band_frac")?,
        },
        fp_hash: u64::from_str_radix(j.get("fp_hash")?.as_str()?, 16).ok()?,
        op: j.get("op")?.as_str()?.to_string(),
        scalar: j.get("scalar")?.as_str()?.to_string(),
        config: TunedConfig {
            variant: match cfg.get("variant")?.as_str()? {
                "Z" => Variant::Z,
                "M" => Variant::M,
                _ => return None,
            },
            s_imgb: usize_of(cfg, "s_imgb")?,
            s_vvec: usize_of(cfg, "s_vvec")?,
            s_vxg: usize_of(cfg, "s_vxg")?,
            strategy: match cfg.get("strategy")?.as_str()? {
                "view-groups" => ParallelStrategy::ViewGroups,
                "local-copies" => ParallelStrategy::LocalCopies,
                _ => return None,
            },
            threads: usize_of(cfg, "threads")?.max(1),
            k_tile: usize_of(cfg, "k_tile")?.max(1),
        },
        tuned_secs: num(j, "tuned_secs")?,
        heuristic_secs: num(j, "heuristic_secs")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(nnz: usize, band: f64) -> Fingerprint {
        Fingerprint {
            n_rows: 480,
            n_cols: 144,
            n_views: 24,
            n_bins: 20,
            nnz,
            density: 0.1,
            col_cv: 0.2,
            row_cv: 0.3,
            empty_col_frac: 0.0,
            band_frac: band,
        }
    }

    fn entry(nnz: usize, band: f64, op: &str, scalar: &str) -> CacheEntry {
        let f = fp(nnz, band);
        CacheEntry {
            fp: f,
            fp_hash: f.hash(),
            op: op.into(),
            scalar: scalar.into(),
            config: TunedConfig::heuristic(Op::Spmv, 4),
            tuned_secs: 1e-4,
            heuristic_secs: 2e-4,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cscv-tune-cache-{}-{name}", std::process::id()))
    }

    #[test]
    fn round_trips_through_disk() {
        let path = tmp("roundtrip.json");
        let mut c = TuneCache::load(&path);
        assert!(c.is_empty());
        c.insert(entry(5000, 0.1, "spmv", "f64"));
        c.insert(entry(7000, 0.5, "spmm4", "f32"));
        c.save();
        let back = TuneCache::load(&path);
        assert_eq!(back.entries(), c.entries());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lookup_exact_near_and_miss() {
        let mut c = TuneCache::in_memory();
        c.insert(entry(5000, 0.10, "spmv", "f64"));
        let (hit, outcome) = c.lookup(&fp(5000, 0.10), Op::Spmv, "f64", NEAR_THRESHOLD);
        assert!(hit.is_some());
        assert_eq!(outcome, CacheOutcome::HitExact);
        // Slightly different nnz: no hash match, but structurally near.
        let (hit, outcome) = c.lookup(&fp(5100, 0.11), Op::Spmv, "f64", NEAR_THRESHOLD);
        assert!(hit.is_some());
        assert!(matches!(outcome, CacheOutcome::HitNear(d) if d > 0.0 && d <= NEAR_THRESHOLD));
        // Different op / scalar / far structure: all misses.
        for (f, op, sc) in [
            (fp(5000, 0.10), Op::SpmvT, "f64"),
            (fp(5000, 0.10), Op::Spmv, "f32"),
            (fp(5000, 0.95), Op::Spmv, "f64"),
        ] {
            let (hit, outcome) = c.lookup(&f, op, sc, NEAR_THRESHOLD);
            assert!(hit.is_none());
            assert_eq!(outcome, CacheOutcome::Miss);
        }
    }

    #[test]
    fn insert_replaces_same_key() {
        let mut c = TuneCache::in_memory();
        c.insert(entry(5000, 0.1, "spmv", "f64"));
        let mut e2 = entry(5000, 0.1, "spmv", "f64");
        e2.tuned_secs = 9.0;
        c.insert(e2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.entries()[0].tuned_secs, 9.0);
    }

    #[test]
    fn schema_mismatch_invalidates_whole_file() {
        let path = tmp("schema.json");
        let mut c = TuneCache {
            entries: vec![entry(5000, 0.1, "spmv", "f64")],
            path: Some(path.clone()),
        };
        c.save();
        // Rewrite with a bumped schema number, entries untouched.
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&text).unwrap();
        let entries = doc.get("entries").unwrap().clone();
        let bumped = Json::obj(vec![
            ("schema", Json::Num((CACHE_SCHEMA + 1) as f64)),
            ("entries", entries),
        ]);
        std::fs::write(&path, bumped.to_string()).unwrap();
        let back = TuneCache::load(&path);
        assert!(back.is_empty(), "future-schema cache must be invalidated");
        // The path stays bound: saving writes the current schema again.
        c.entries.clear();
        c.save();
        assert!(TuneCache::load(&path).is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hash_mismatch_invalidates_entry_not_file() {
        let path = tmp("hash.json");
        let good = entry(5000, 0.1, "spmv", "f64");
        let mut bad = entry(7000, 0.2, "spmm2", "f64");
        bad.fp_hash ^= 0xDEAD; // simulate a stale/corrupted entry
        let c = TuneCache {
            entries: vec![good.clone(), bad],
            path: Some(path.clone()),
        };
        c.save();
        let back = TuneCache::load(&path);
        assert_eq!(back.entries(), &[good], "only the valid entry survives");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_files_yield_empty_cache() {
        let path = tmp("garbage.json");
        std::fs::write(&path, "not json {{{").unwrap();
        assert!(TuneCache::load(&path).is_empty());
        std::fs::write(&path, "{\"schema\":1}").unwrap();
        assert!(TuneCache::load(&path).is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
