//! Drop-in tuned entry points.
//!
//! Two tiers, by how much work the caller is willing to spend:
//!
//! * [`AutoExec::auto`] — *consult only*: fingerprint the matrix, take
//!   the cached winner (exact hash match, else the nearest fingerprint
//!   within the distance threshold), and fall back to the static
//!   heuristic on a miss. Never benchmarks; cost is one `O(nnz)`
//!   fingerprint pass.
//! * [`tuned_executor`] — *consult or search*: same lookup, but a miss
//!   triggers the sampled grid search from [`crate::tuner`] and the
//!   winner is persisted for next time.
//!
//! Both degrade to the heuristic on any failure (unreadable cache,
//! cached config that no longer builds), so they are safe to use as the
//! default construction path: the worst case is exactly what the caller
//! would have gotten without tuning.

use crate::cache::TuneCache;
use crate::fingerprint::Fingerprint;
use crate::space::{Op, TunedConfig};
use crate::tuner::{tune, CandidateBench, TuneOptions, WallClockBench};
use cscv_core::layout::ImageShape;
use cscv_core::{CscvExec, ExecConfig, SinoLayout, Variant};
use cscv_simd::{MaskExpand, Scalar};
use cscv_sparse::{Csc, SpmvExecutor, ThreadPool};

/// A tuned executor: a [`CscvExec`] built from an autotuner-selected
/// configuration, plus the batching advice that came with it.
///
/// Implements [`SpmvExecutor`] by delegation; the one behavioral
/// difference is [`spmv_multi`](SpmvExecutor::spmv_multi), which drives
/// the batch in `k_tile`-wide slices as selected by the search instead
/// of handing the whole batch to the kernel at once.
pub struct TunedExec<T: Scalar> {
    exec: CscvExec<T>,
    config: TunedConfig,
}

impl<T: Scalar + MaskExpand> TunedExec<T> {
    /// The configuration the tuner selected (including the recommended
    /// pool width, which the caller owns — `spmv` uses whatever pool it
    /// is handed).
    pub fn config(&self) -> TunedConfig {
        self.config
    }

    /// The wrapped executor, for paths the trait does not cover.
    pub fn inner(&self) -> &CscvExec<T> {
        &self.exec
    }

    /// Transpose product `x = Aᵀ y` (delegated; not part of the trait).
    pub fn spmv_transpose(&self, y: &[T], x: &mut [T], pool: &ThreadPool) {
        self.exec.spmv_transpose(y, x, pool)
    }

    /// NUMA-place the wrapped executor's buffers for `pool` (see
    /// `CscvExec::numa_place`).
    pub fn numa_place(&mut self, pool: &ThreadPool) -> bool {
        self.exec.numa_place(pool)
    }
}

impl<T: Scalar + MaskExpand> SpmvExecutor<T> for TunedExec<T> {
    fn name(&self) -> String {
        format!("tuned({})", self.exec.name())
    }
    fn n_rows(&self) -> usize {
        self.exec.n_rows()
    }
    fn n_cols(&self) -> usize {
        self.exec.n_cols()
    }
    fn nnz_orig(&self) -> usize {
        self.exec.nnz_orig()
    }
    fn nnz_stored(&self) -> usize {
        self.exec.nnz_stored()
    }
    fn matrix_bytes(&self) -> usize {
        self.exec.matrix_bytes()
    }
    fn spmv(&self, x: &[T], y: &mut [T], pool: &ThreadPool) {
        self.exec.spmv(x, y, pool)
    }
    fn spmv_multi(&self, x: &[T], k: usize, y: &mut [T], pool: &ThreadPool) {
        assert!(k > 0, "batch width must be positive");
        assert_eq!(x.len(), k * self.n_cols());
        assert_eq!(y.len(), k * self.n_rows());
        let (nc, nr) = (self.n_cols(), self.n_rows());
        let tile = self.config.k_tile.clamp(1, k);
        let mut done = 0;
        while done < k {
            let kk = tile.min(k - done);
            self.exec.spmv_multi(
                &x[done * nc..(done + kk) * nc],
                kk,
                &mut y[done * nr..(done + kk) * nr],
                pool,
            );
            done += kk;
        }
    }
}

/// The configuration [`AutoExec::auto`] / [`tuned_executor`] fall back
/// to when there is no usable cached or searched answer.
fn heuristic_config(op: Op) -> TunedConfig {
    TunedConfig::heuristic(op, ThreadPool::max_parallelism())
}

/// Build an executor from `cfg`, degrading to the heuristic — which
/// always builds for any matrix the workspace accepts — if the tuned
/// parameters are invalid for this matrix (e.g. a cached config from a
/// *near* fingerprint whose `S_VxG` exceeds this layout's view count).
fn build_or_heuristic<T: Scalar + MaskExpand>(
    csc: &Csc<T>,
    layout: SinoLayout,
    img: ImageShape,
    cfg: TunedConfig,
    op: Op,
) -> (CscvExec<T>, TunedConfig) {
    match CscvExec::from_csc(csc, layout, img, cfg.exec_config()) {
        Ok(exec) => (exec, cfg),
        Err(_) => {
            let h = heuristic_config(op);
            let exec = CscvExec::from_csc(csc, layout, img, ExecConfig::heuristic(Variant::Z))
                .expect("heuristic CSCV config must build");
            (exec, h)
        }
    }
}

/// Consult-only tuned construction for `CscvExec` (and anything else
/// that wants to opt in): cached winner if the cache knows this
/// fingerprint (exactly or nearly), static heuristic otherwise. Never
/// runs a benchmark.
pub trait AutoExec<T: Scalar + MaskExpand>: Sized {
    fn auto(
        csc: &Csc<T>,
        layout: SinoLayout,
        img: ImageShape,
        op: Op,
        cache: &mut TuneCache,
    ) -> Self;
}

impl<T: Scalar + MaskExpand> AutoExec<T> for CscvExec<T> {
    fn auto(
        csc: &Csc<T>,
        layout: SinoLayout,
        img: ImageShape,
        op: Op,
        cache: &mut TuneCache,
    ) -> Self {
        let fp = Fingerprint::compute(csc, layout);
        let cfg = cache
            .lookup(&fp, op, T::NAME, crate::cache::NEAR_THRESHOLD)
            .0
            .map(|e| e.config)
            .unwrap_or_else(|| heuristic_config(op));
        build_or_heuristic(csc, layout, img, cfg, op).0
    }
}

/// Tuned construction with search: cache hit → build immediately;
/// miss → run the sampled grid search (persisting the winner through
/// `cache`) and build the selected config. Any failure degrades to the
/// static heuristic.
pub fn tuned_executor<T: Scalar + MaskExpand>(
    csc: &Csc<T>,
    layout: SinoLayout,
    img: ImageShape,
    opts: &TuneOptions,
    cache: &mut TuneCache,
) -> TunedExec<T> {
    tuned_executor_with(csc, layout, img, opts, cache, &mut WallClockBench)
}

/// [`tuned_executor`] with an injected benchmark (tests substitute the
/// deterministic [`crate::ModelBench`]).
pub fn tuned_executor_with<T: Scalar + MaskExpand>(
    csc: &Csc<T>,
    layout: SinoLayout,
    img: ImageShape,
    opts: &TuneOptions,
    cache: &mut TuneCache,
    bench: &mut dyn CandidateBench<T>,
) -> TunedExec<T> {
    let cfg = match tune(csc, layout, img, opts, cache, bench) {
        Ok(report) => report.chosen,
        Err(_) => heuristic_config(opts.op),
    };
    let (exec, config) = build_or_heuristic(csc, layout, img, cfg, opts.op);
    TunedExec { exec, config }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::ModelBench;
    use cscv_harness::gen::{generate, CaseDesc};
    use cscv_sparse::dense::assert_vec_close;

    const CASE: &str = "kind=ct-banded views=16 bins=16 nx=8 ny=8 imgb=4 vvec=8 vxg=4 seed=7";

    fn case() -> (Csc<f64>, SinoLayout, ImageShape) {
        let d = CaseDesc::parse(CASE).unwrap();
        let layout = SinoLayout {
            n_views: d.n_views,
            n_bins: d.n_bins,
        };
        let img = ImageShape { nx: d.nx, ny: d.ny };
        (generate(&d).to_csc(), layout, img)
    }

    fn opts() -> TuneOptions {
        TuneOptions {
            reps: 2,
            warmup: 0,
            max_threads: 2,
            ..TuneOptions::default()
        }
    }

    #[test]
    fn auto_with_empty_cache_is_the_heuristic() {
        let (csc, layout, img) = case();
        let mut cache = TuneCache::in_memory();
        let exec = CscvExec::auto(&csc, layout, img, Op::Spmv, &mut cache);
        assert_eq!(exec.config(), ExecConfig::heuristic(Variant::Z));
        // Consult-only: the miss must not have populated the cache.
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn auto_applies_a_cached_winner() {
        let (csc, layout, img) = case();
        let mut cache = TuneCache::in_memory();
        let report = tune(&csc, layout, img, &opts(), &mut cache, &mut ModelBench).unwrap();
        let exec = CscvExec::auto(&csc, layout, img, Op::Spmv, &mut cache);
        assert_eq!(exec.config(), report.chosen.exec_config());
    }

    #[test]
    fn tuned_executor_matches_reference_spmv_and_spmm() {
        let (csc, layout, img) = case();
        let pool = ThreadPool::new(2);
        let mut cache = TuneCache::in_memory();
        let mut o = opts();
        o.op = Op::Spmm { k: 5 };
        let tuned = tuned_executor_with(&csc, layout, img, &o, &mut cache, &mut ModelBench);
        let reference =
            CscvExec::from_csc(&csc, layout, img, ExecConfig::heuristic(Variant::Z)).unwrap();

        let x: Vec<f64> = (0..csc.n_cols()).map(|i| 0.25 + (i % 7) as f64).collect();
        let mut y_t = vec![0.0; csc.n_rows()];
        let mut y_r = vec![0.0; csc.n_rows()];
        tuned.spmv(&x, &mut y_t, &pool);
        reference.spmv(&x, &mut y_r, &pool);
        assert_vec_close(&y_t, &y_r, 1e-12);

        let k = 5;
        let xs: Vec<f64> = (0..k * csc.n_cols())
            .map(|i| (i % 11) as f64 - 3.0)
            .collect();
        let mut ys_t = vec![0.0; k * csc.n_rows()];
        let mut ys_r = vec![0.0; k * csc.n_rows()];
        tuned.spmv_multi(&xs, k, &mut ys_t, &pool);
        reference.spmv_multi(&xs, k, &mut ys_r, &pool);
        assert_vec_close(&ys_t, &ys_r, 1e-12);
        assert!(tuned.name().starts_with("tuned("));
    }

    #[test]
    fn invalid_cached_config_degrades_to_heuristic() {
        let (csc, layout, img) = case();
        // A config whose S_VxG exceeds the view count cannot build for
        // this layout; the entry point must degrade, not fail.
        let bad = TunedConfig {
            s_vxg: layout.n_views * 4,
            ..TunedConfig::heuristic(Op::Spmv, 2)
        };
        let (exec, cfg) = build_or_heuristic(&csc, layout, img, bad, Op::Spmv);
        assert_eq!(exec.config(), ExecConfig::heuristic(Variant::Z));
        assert_eq!(cfg, heuristic_config(Op::Spmv));
    }
}
