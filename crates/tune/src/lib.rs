//! Runtime autotuning for the CSCV executor space.
//!
//! The CSCV kernels expose a real configuration space — variant (Z vs
//! M), `S_VxG`, thread-level strategy, thread count, and the multi-RHS
//! tile width — and the static heuristics in `cscv-core` pick one point
//! of it from the paper's recommendations. Following the OSKI line of
//! work, this crate replaces that fixed choice with a small empirical
//! search:
//!
//! 1. [`fingerprint`] — a structural profile of the matrix
//!    (dimensions, nnz, per-column/row nnz dispersion, bandedness)
//!    identifying "the same kind of matrix" across runs;
//! 2. [`sample`] — view-strided row sampling, so the search benchmarks
//!    a sub-matrix with the same column structure at a fraction of the
//!    cost;
//! 3. [`space`] — the pruned candidate grid, which always contains the
//!    static heuristic so a tuned selection can never lose to it;
//! 4. [`tuner`] — min-of-reps benchmarking of each candidate (the
//!    paper's §V-C estimator) behind an injectable [`CandidateBench`],
//!    so tests can substitute a deterministic cost model for the wall
//!    clock;
//! 5. [`cache`] — a versioned on-disk JSON cache keyed by
//!    (fingerprint hash, operation, scalar type), with a
//!    fingerprint-distance fallback for near-identical matrices, so
//!    repeat workloads skip the search entirely;
//! 6. [`auto`] — the drop-in entry points: [`AutoExec::auto`] on
//!    `CscvExec` and [`tuned_executor`] returning a
//!    [`TunedExec`] that implements `SpmvExecutor`.
//!
//! Tuning activity is observable through `tune.*` trace spans and the
//! `tune_candidates` / `tune_samples` / `tune_cache_hits` /
//! `tune_cache_misses` counters, so `cscv-xtask perf-report` can
//! attribute tuning overhead. A warm-cache run performs zero benchmark
//! samples by construction.

pub mod auto;
pub mod cache;
pub mod fingerprint;
pub mod sample;
pub mod space;
pub mod tuner;

pub use auto::{tuned_executor, tuned_executor_with, AutoExec, TunedExec};
pub use cache::{CacheEntry, CacheOutcome, TuneCache, CACHE_SCHEMA};
pub use fingerprint::Fingerprint;
pub use space::{candidates, Op, TunedConfig};
pub use tuner::{tune, CandidateBench, ModelBench, TuneOptions, TuneReport, WallClockBench};
