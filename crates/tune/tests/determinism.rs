//! Determinism and warm-path guarantees.
//!
//! Two properties the design depends on:
//!
//! * **Reproducible selection** — the search has no hidden randomness:
//!   two tune runs over the same matrix (same seed, same options) with
//!   the deterministic cost model pick the same winner. Wall-clock
//!   tuning can legitimately pick different near-tied winners across
//!   runs; the *machinery* (fingerprint, sampling, grid order,
//!   cache round-trip) must not.
//! * **Warm cache ⇒ zero samples** — a repeat workload must skip the
//!   benchmark entirely, asserted from the report here. The
//!   counter-based version of the same claim lives in its own binary
//!   (`tests/warm_counters.rs`): counters are process-global, so the
//!   exact-delta assertions need a binary where no other test is
//!   tuning concurrently.

use cscv_core::layout::ImageShape;
use cscv_core::SinoLayout;
use cscv_harness::gen::{generate, CaseDesc};
use cscv_sparse::Csc;
use cscv_tune::{tune, CacheOutcome, ModelBench, Op, TuneCache, TuneOptions};

const CASE: &str = "kind=ct-banded views=20 bins=16 nx=10 ny=10 imgb=4 vvec=8 vxg=4 seed=1234";

fn case() -> (Csc<f64>, SinoLayout, ImageShape) {
    let d = CaseDesc::parse(CASE).unwrap();
    let layout = SinoLayout {
        n_views: d.n_views,
        n_bins: d.n_bins,
    };
    let img = ImageShape { nx: d.nx, ny: d.ny };
    (generate(&d).to_csc(), layout, img)
}

fn opts(op: Op) -> TuneOptions {
    TuneOptions {
        op,
        reps: 2,
        warmup: 0,
        max_threads: 4,
        ..TuneOptions::default()
    }
}

#[test]
fn two_tune_runs_same_seed_pick_the_same_winner() {
    let (csc, layout, img) = case();
    for op in [Op::Spmv, Op::Spmm { k: 4 }, Op::SpmvT] {
        let mut cache_a = TuneCache::in_memory();
        let mut cache_b = TuneCache::in_memory();
        let a = tune(&csc, layout, img, &opts(op), &mut cache_a, &mut ModelBench).unwrap();
        let b = tune(&csc, layout, img, &opts(op), &mut cache_b, &mut ModelBench).unwrap();
        assert_eq!(a.chosen, b.chosen, "{op:?}: selection must be reproducible");
        assert_eq!(a.tuned_secs, b.tuned_secs);
        assert_eq!(a.candidates_tried, b.candidates_tried);
        assert_eq!(a.fingerprint, b.fingerprint);
    }
}

#[test]
fn warm_cache_second_run_performs_zero_samples() {
    let (csc, layout, img) = case();
    let mut cache = TuneCache::in_memory();

    let cold = tune(
        &csc,
        layout,
        img,
        &opts(Op::Spmv),
        &mut cache,
        &mut ModelBench,
    )
    .unwrap();
    assert_eq!(cold.cache, CacheOutcome::Miss);
    assert!(cold.samples_run > 0);

    let warm = tune(
        &csc,
        layout,
        img,
        &opts(Op::Spmv),
        &mut cache,
        &mut ModelBench,
    )
    .unwrap();
    assert_eq!(warm.cache, CacheOutcome::HitExact);
    assert_eq!(warm.samples_run, 0);
    assert_eq!(warm.candidates_tried, 0);
    assert_eq!(warm.chosen, cold.chosen);
}

#[test]
fn cache_survives_disk_round_trip_with_identical_selection() {
    let (csc, layout, img) = case();
    let path =
        std::env::temp_dir().join(format!("cscv-tune-determinism-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let mut cache = TuneCache::load(&path);
    let cold = tune(
        &csc,
        layout,
        img,
        &opts(Op::Spmv),
        &mut cache,
        &mut ModelBench,
    )
    .unwrap();
    drop(cache); // tune() already saved; reload from disk cold

    let mut reloaded = TuneCache::load(&path);
    assert_eq!(reloaded.len(), 1);
    let warm = tune(
        &csc,
        layout,
        img,
        &opts(Op::Spmv),
        &mut reloaded,
        &mut ModelBench,
    )
    .unwrap();
    assert_eq!(warm.cache, CacheOutcome::HitExact);
    assert_eq!(warm.samples_run, 0);
    assert_eq!(warm.chosen, cold.chosen);
    let _ = std::fs::remove_file(&path);
}
