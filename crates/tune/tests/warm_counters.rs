//! Trace-counter evidence for the warm-path acceptance criterion: a
//! second tune run over the same matrix performs **zero** benchmark
//! samples, verified from the `tune_*` counters themselves (the same
//! evidence the CI smoke job collects).
//!
//! This is deliberately the only test in this binary: counters are
//! process-global, so exact-delta assertions are only sound when no
//! other test is tuning concurrently. The assertions are live under
//! `--features trace` and vacuous otherwise (the counters compile to
//! no-ops).

use cscv_core::layout::ImageShape;
use cscv_core::SinoLayout;
use cscv_harness::gen::{generate, CaseDesc};
use cscv_trace::counters::{self, Counter};
use cscv_tune::{tune, CacheOutcome, ModelBench, Op, TuneCache, TuneOptions};

#[test]
fn warm_cache_adds_zero_tune_sample_counters() {
    let d = CaseDesc::parse(
        "kind=ct-banded views=20 bins=16 nx=10 ny=10 imgb=4 vvec=8 vxg=4 seed=1234",
    )
    .unwrap();
    let layout = SinoLayout {
        n_views: d.n_views,
        n_bins: d.n_bins,
    };
    let img = ImageShape { nx: d.nx, ny: d.ny };
    let csc = generate(&d).to_csc();
    let opts = TuneOptions {
        reps: 2,
        warmup: 0,
        max_threads: 4,
        ..TuneOptions::default()
    };
    let mut cache = TuneCache::in_memory();

    let before = counters::totals();
    let cold = tune(&csc, layout, img, &opts, &mut cache, &mut ModelBench).unwrap();
    let cold_delta = counters::totals().since(&before);
    assert_eq!(cold.cache, CacheOutcome::Miss);
    if cscv_trace::ENABLED {
        assert_eq!(
            cold_delta.get(Counter::TuneCandidates),
            cold.candidates_tried as u64
        );
        assert_eq!(
            cold_delta.get(Counter::TuneSamples),
            cold.samples_run as u64
        );
        assert_eq!(cold_delta.get(Counter::TuneCacheMisses), 1);
        assert_eq!(cold_delta.get(Counter::TuneCacheHits), 0);
    }

    let before = counters::totals();
    let warm = tune(&csc, layout, img, &opts, &mut cache, &mut ModelBench).unwrap();
    let warm_delta = counters::totals().since(&before);
    assert_eq!(warm.cache, CacheOutcome::HitExact);
    assert_eq!(warm.chosen, cold.chosen);
    if cscv_trace::ENABLED {
        assert_eq!(
            warm_delta.get(Counter::TuneSamples),
            0,
            "a warm-cache tune run must add zero tune_samples"
        );
        assert_eq!(warm_delta.get(Counter::TuneCandidates), 0);
        assert_eq!(warm_delta.get(Counter::TuneCacheHits), 1);
        assert_eq!(warm_delta.get(Counter::TuneCacheMisses), 0);
    }
}
