//! Autotuned configurations must be performance choices, not semantic
//! ones: whatever the search picks, the results have to match the
//! default path. Every fuzz generator family (minus the oversize-reject
//! probe, which builds nothing) is driven through the tuner for both
//! scalar types and all three operations, and the tuned executor's
//! output is compared against the serial CSR reference within the
//! workspace's accumulation-order tolerances.

use cscv_core::layout::ImageShape;
use cscv_core::SinoLayout;
use cscv_harness::gen::{generate, CaseDesc, GenKind};
use cscv_simd::{MaskExpand, Scalar};
use cscv_sparse::dense::assert_vec_close;
use cscv_sparse::{Coo, Csc, SpmvExecutor, ThreadPool};
use cscv_tune::{tuned_executor_with, ModelBench, Op, TuneCache, TuneOptions};

/// One representative descriptor per generator family. Small enough
/// that the full matrix (no sampling) keeps the suite fast; the tuner
/// still searches its whole pruned grid on each.
fn family_cases() -> Vec<CaseDesc> {
    GenKind::ALL
        .iter()
        .filter(|k| **k != GenKind::OversizeReject)
        .map(|k| {
            CaseDesc::parse(&format!(
                "kind={} views=12 bins=12 nx=6 ny=6 imgb=4 vvec=8 vxg=4 seed=42",
                k.name()
            ))
            .unwrap()
        })
        .collect()
}

/// Cast the f64 generator output to the scalar under test.
fn csc_as<T: Scalar>(coo: &Coo<f64>) -> Csc<T> {
    let csc = coo.to_csc();
    Csc::from_parts(
        csc.n_rows(),
        csc.n_cols(),
        csc.col_ptr().to_vec(),
        csc.row_idx().to_vec(),
        csc.vals().iter().map(|&v| T::from_f64(v)).collect(),
    )
}

/// Serial CSR ground truth for `y = A x` in the test's own scalar.
fn reference_spmv<T: Scalar>(csc: &Csc<T>, x: &[T]) -> Vec<T> {
    let csr = csc.to_csr();
    let mut y = vec![T::ZERO; csc.n_rows()];
    csr.spmv_serial(x, &mut y);
    y
}

/// Serial ground truth for `x = Aᵀ y` (CSC columns are Aᵀ's rows).
fn reference_spmv_t<T: Scalar>(csc: &Csc<T>, y: &[T]) -> Vec<T> {
    let mut x = vec![T::ZERO; csc.n_cols()];
    for c in 0..csc.n_cols() {
        let (rows, vals) = csc.col(c);
        let mut acc = T::ZERO;
        for (&r, &v) in rows.iter().zip(vals) {
            acc = acc + v * y[r as usize];
        }
        x[c] = acc;
    }
    x
}

fn check_family<T: Scalar + MaskExpand>(tol: f64) {
    let pool = ThreadPool::new(2);
    let k = 3usize;
    for desc in family_cases() {
        let layout = SinoLayout {
            n_views: desc.n_views,
            n_bins: desc.n_bins,
        };
        let img = ImageShape {
            nx: desc.nx,
            ny: desc.ny,
        };
        let csc: Csc<T> = csc_as(&generate(&desc));
        for op in [Op::Spmv, Op::Spmm { k }, Op::SpmvT] {
            let mut cache = TuneCache::in_memory();
            let opts = TuneOptions {
                op,
                reps: 1,
                warmup: 0,
                max_threads: 2,
                ..TuneOptions::default()
            };
            let tuned = tuned_executor_with(&csc, layout, img, &opts, &mut cache, &mut ModelBench);

            let x: Vec<T> = (0..csc.n_cols())
                .map(|i| T::from_f64(0.25 + (i % 13) as f64 * 0.5 - 3.0))
                .collect();
            let mut y = vec![T::from_f64(f64::NAN); csc.n_rows()];
            tuned.spmv(&x, &mut y, &pool);
            assert_vec_close(&y, &reference_spmv(&csc, &x), tol);

            let xs: Vec<T> = (0..k * csc.n_cols())
                .map(|i| T::from_f64((i % 9) as f64 * 0.75 - 2.0))
                .collect();
            let mut ys = vec![T::from_f64(f64::NAN); k * csc.n_rows()];
            tuned.spmv_multi(&xs, k, &mut ys, &pool);
            for i in 0..k {
                let want = reference_spmv(&csc, &xs[i * csc.n_cols()..(i + 1) * csc.n_cols()]);
                assert_vec_close(&ys[i * csc.n_rows()..(i + 1) * csc.n_rows()], &want, tol);
            }

            let yt: Vec<T> = (0..csc.n_rows())
                .map(|i| T::from_f64((i % 11) as f64 * 0.25 - 1.0))
                .collect();
            let mut xt = vec![T::from_f64(f64::NAN); csc.n_cols()];
            tuned.spmv_transpose(&yt, &mut xt, &pool);
            assert_vec_close(&xt, &reference_spmv_t(&csc, &yt), tol);
        }
    }
}

#[test]
fn tuned_configs_match_reference_f64() {
    check_family::<f64>(1e-12);
}

#[test]
fn tuned_configs_match_reference_f32() {
    check_family::<f32>(1e-5);
}

/// The warm path must be equivalent too: an executor built from a
/// cached entry computes the same results as the one built by the
/// search that produced the entry.
#[test]
fn cached_config_reproduces_search_results() {
    let desc =
        CaseDesc::parse("kind=ct-banded views=16 bins=16 nx=8 ny=8 imgb=4 vvec=8 vxg=4 seed=77")
            .unwrap();
    let layout = SinoLayout {
        n_views: desc.n_views,
        n_bins: desc.n_bins,
    };
    let img = ImageShape {
        nx: desc.nx,
        ny: desc.ny,
    };
    let csc: Csc<f64> = csc_as(&generate(&desc));
    let pool = ThreadPool::new(2);
    let opts = TuneOptions {
        reps: 1,
        warmup: 0,
        max_threads: 2,
        ..TuneOptions::default()
    };

    let mut cache = TuneCache::in_memory();
    let cold = tuned_executor_with(&csc, layout, img, &opts, &mut cache, &mut ModelBench);
    let warm = tuned_executor_with(&csc, layout, img, &opts, &mut cache, &mut ModelBench);
    assert_eq!(warm.config(), cold.config());

    let x: Vec<f64> = (0..csc.n_cols()).map(|i| (i % 7) as f64 - 2.5).collect();
    let (mut y_cold, mut y_warm) = (vec![0.0; csc.n_rows()], vec![0.0; csc.n_rows()]);
    cold.spmv(&x, &mut y_cold, &pool);
    warm.spmv(&x, &mut y_warm, &pool);
    assert_eq!(y_cold, y_warm, "same config, bit-identical results");
}
