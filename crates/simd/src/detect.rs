//! Cached CPU feature detection.
//!
//! Kernel variants (notably the CSCV-M expand path) are chosen once at
//! matrix-construction time from this snapshot, so the hot loops carry no
//! per-iteration feature branches.

use std::sync::OnceLock;

/// Snapshot of the SIMD-relevant CPU features of the running machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    /// 256-bit integer/float SIMD (implies SSE/AVX).
    pub avx2: bool,
    /// Fused multiply-add.
    pub fma: bool,
    /// 512-bit foundation: required for `vexpandps/vexpandpd` on zmm.
    pub avx512f: bool,
    /// AVX-512 vector-length extension: expand instructions on ymm/xmm.
    pub avx512vl: bool,
    /// AVX-512 byte/word instructions (mask handling helpers).
    pub avx512bw: bool,
}

impl CpuFeatures {
    /// Detect features on the current CPU.
    fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            CpuFeatures {
                avx2: std::arch::is_x86_feature_detected!("avx2"),
                fma: std::arch::is_x86_feature_detected!("fma"),
                avx512f: std::arch::is_x86_feature_detected!("avx512f"),
                avx512vl: std::arch::is_x86_feature_detected!("avx512vl"),
                avx512bw: std::arch::is_x86_feature_detected!("avx512bw"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            CpuFeatures {
                avx2: false,
                fma: false,
                avx512f: false,
                avx512vl: false,
                avx512bw: false,
            }
        }
    }

    /// Whether the hardware `vexpand` path exists for a lane-block of `W`
    /// elements of `bytes`-wide floats.
    ///
    /// * f32: W=16 needs `avx512f`; W=8/W=4 need `avx512f + avx512vl`.
    /// * f64: W=8 needs `avx512f`; W=4/W=2 need `avx512f + avx512vl`.
    pub fn hw_expand_available(&self, bytes: usize, w: usize) -> bool {
        match (bytes, w) {
            (4, 16) | (8, 8) => self.avx512f,
            (4, 8) | (4, 4) | (8, 4) | (8, 2) => self.avx512f && self.avx512vl,
            _ => false,
        }
    }

    /// A short human-readable summary used in report headers.
    pub fn summary(&self) -> String {
        let mut s = Vec::new();
        if self.avx2 {
            s.push("avx2");
        }
        if self.fma {
            s.push("fma");
        }
        if self.avx512f {
            s.push("avx512f");
        }
        if self.avx512vl {
            s.push("avx512vl");
        }
        if self.avx512bw {
            s.push("avx512bw");
        }
        if s.is_empty() {
            "none".to_string()
        } else {
            s.join("+")
        }
    }
}

/// Cached feature snapshot for the running machine.
pub fn cpu_features() -> &'static CpuFeatures {
    static FEATURES: OnceLock<CpuFeatures> = OnceLock::new();
    FEATURES.get_or_init(CpuFeatures::detect)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_stable() {
        let a = *cpu_features();
        let b = *cpu_features();
        assert_eq!(a, b);
    }

    #[test]
    fn avx512_implies_consistent_expand() {
        let f = cpu_features();
        if f.hw_expand_available(4, 8) {
            // VL implies F in the availability matrix.
            assert!(f.hw_expand_available(4, 16));
        }
        // No hardware path for unsupported widths.
        assert!(!f.hw_expand_available(4, 32));
        assert!(!f.hw_expand_available(2, 8));
        assert!(!f.hw_expand_available(8, 16));
    }

    #[test]
    fn summary_is_nonempty() {
        assert!(!cpu_features().summary().is_empty());
    }
}
