//! The element trait shared by every kernel in the suite.
//!
//! The paper evaluates both single- and double-precision SpMV (single
//! precision being the clinically relevant and harder case), so everything
//! downstream is generic over [`Scalar`], implemented for `f32` and `f64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point element type used throughout the suite.
///
/// Deliberately small: just the operations the kernels, builders and
/// reconstruction algorithms need, with `mul_add` as the FMA primitive the
/// vectorizer fuses into packed `vfmadd` instructions.
pub trait Scalar:
    Copy
    + Clone
    + Default
    + Send
    + Sync
    + 'static
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum<Self>
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Human-readable type name (`"f32"` / `"f64"`), used in report tables.
    const NAME: &'static str;
    /// Size in bytes; feeds the memory-requirement model `M_Rit`.
    const BYTES: usize;

    /// Lossy conversion from `f64` (the CT generator computes in `f64`).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` for error metrics and comparisons.
    fn to_f64(self) -> f64;
    /// Fused multiply-add: `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// `true` when neither NaN nor infinite.
    fn is_finite(self) -> bool;
    /// IEEE maximum (propagating the larger value).
    fn max_val(self, other: Self) -> Self;
    /// IEEE minimum.
    fn min_val(self, other: Self) -> Self;
    /// Default relative tolerance for cross-implementation comparisons.
    ///
    /// Different summation orders across formats accumulate different
    /// rounding; tolerances are scaled by this in tests and validators.
    fn cmp_epsilon() -> f64;
}

macro_rules! impl_scalar {
    ($t:ty, $name:literal, $eps:expr) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const NAME: &'static str = $name;
            const BYTES: usize = std::mem::size_of::<$t>();

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn max_val(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min_val(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn cmp_epsilon() -> f64 {
                $eps
            }
        }
    };
}

impl_scalar!(f32, "f32", 1e-4);
impl_scalar!(f64, "f64", 1e-10);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_identities<T: Scalar>() {
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert_eq!(T::ONE * T::ONE, T::ONE);
        assert_eq!(T::from_f64(2.0).to_f64(), 2.0);
        let fma = T::from_f64(2.0).mul_add(T::from_f64(3.0), T::from_f64(1.0));
        assert_eq!(fma.to_f64(), 7.0);
        assert!(T::ONE.is_finite());
        assert!(!(T::ONE / T::ZERO).is_finite());
        assert_eq!((-T::ONE).abs(), T::ONE);
        assert_eq!(T::from_f64(4.0).sqrt().to_f64(), 2.0);
        assert_eq!(T::ZERO.max_val(T::ONE), T::ONE);
        assert_eq!(T::ZERO.min_val(T::ONE), T::ZERO);
    }

    #[test]
    fn f32_identities() {
        generic_identities::<f32>();
        assert_eq!(f32::NAME, "f32");
        assert_eq!(f32::BYTES, 4);
    }

    #[test]
    fn f64_identities() {
        generic_identities::<f64>();
        assert_eq!(f64::NAME, "f64");
        assert_eq!(f64::BYTES, 8);
    }

    #[test]
    fn sum_trait_works() {
        let v = vec![1.0f32, 2.0, 3.0];
        let s: f32 = v.into_iter().sum();
        assert_eq!(s, 6.0);
    }
}
