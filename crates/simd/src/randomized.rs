//! Randomized tests for the SIMD layer (separate module so the main
//! modules stay lean; compiled only under test). Driven by the in-tree
//! [`crate::rng`] generator — the workspace carries no proptest/rand
//! dependency — with fixed seeds and a few hundred cases per property.
#![cfg(test)]

use crate::expand::{compress_into, expand_soft, expand_with, select_path, ExpandPath};
use crate::lanes::{axpy, dot, hsum};
use crate::rng::XorShift64;
use crate::MaskExpand;

#[test]
fn hsum_matches_sum_f64() {
    let mut rng = XorShift64::new(1001);
    for _ in 0..300 {
        let arr: [f64; 8] = std::array::from_fn(|_| rng.range_f64(-1e6, 1e6));
        let naive: f64 = arr.iter().sum();
        assert!((hsum(&arr) - naive).abs() <= 1e-6 * naive.abs().max(1.0));
    }
}

#[test]
fn dot_is_bilinear() {
    let mut rng = XorShift64::new(1002);
    for _ in 0..300 {
        let len = 1 + rng.next_usize(39);
        let x: Vec<f64> = (0..len).map(|_| rng.range_f64(-100.0, 100.0)).collect();
        let alpha = rng.range_f64(-10.0, 10.0);
        let y: Vec<f64> = x.iter().map(|v| v * 0.5 + 1.0).collect();
        let scaled: Vec<f64> = x.iter().map(|v| v * alpha).collect();
        let d1 = dot(&scaled, &y);
        let d2 = alpha * dot(&x, &y);
        assert!((d1 - d2).abs() <= 1e-7 * d2.abs().max(1.0));
    }
}

#[test]
fn axpy_matches_scalar_loop() {
    let mut rng = XorShift64::new(1003);
    for _ in 0..300 {
        let len = rng.next_usize(64);
        let x: Vec<f32> = (0..len)
            .map(|_| rng.range_f64(-50.0, 50.0) as f32)
            .collect();
        let a = rng.range_f64(-4.0, 4.0) as f32;
        let mut y: Vec<f32> = x.iter().map(|v| v + 1.0).collect();
        let mut y_ref = y.clone();
        axpy(a, &x, &mut y);
        for (yr, xv) in y_ref.iter_mut().zip(&x) {
            *yr = a.mul_add(*xv, *yr);
        }
        assert_eq!(y, y_ref);
    }
}

#[test]
fn expand_compress_inverse_f64x8() {
    let mut rng = XorShift64::new(1004);
    for _ in 0..300 {
        // Mix exact zeros (about half the lanes) with nonzero values.
        let block: [f64; 8] = std::array::from_fn(|_| {
            if rng.next_usize(2) == 0 {
                0.0
            } else {
                rng.range_f64(-5.0, 5.0)
            }
        });
        let mut packed = Vec::new();
        let mask = compress_into(&block, &mut packed);
        let back: [f64; 8] = expand_soft(mask, &packed);
        // Inverse wherever lanes were nonzero; zeros stay zero (a -0.0
        // lane compresses as nonzero and round-trips exactly too).
        assert_eq!(back, block);
    }
}

#[test]
fn hw_and_soft_expand_agree_random_masks() {
    let mut rng = XorShift64::new(1005);
    for _ in 0..300 {
        let mask = (rng.next_u64() & 0xFFFF) as u32;
        let vals: Vec<f32> = (0..16).map(|_| rng.range_f64(-9.0, 9.0) as f32).collect();
        if <f32 as MaskExpand>::hw_available::<16>() {
            let need = mask.count_ones() as usize;
            let soft: [f32; 16] = expand_soft(mask, &vals[..need]);
            let hard: [f32; 16] = expand_with(ExpandPath::Hardware, mask, &vals[..need]);
            assert_eq!(soft, hard);
        } else {
            assert_eq!(select_path::<f32, 16>(), ExpandPath::Software);
        }
    }
}
