//! Mask expansion — the CSCV-M decompression primitive.
//!
//! CSCV-M removes the padding zeros of a CSCVE and stores a `W`-bit
//! occupancy mask instead. The SpMV kernel has to re-inflate the packed
//! nonzeros into a full `W`-lane vector before the FMA:
//!
//! * **hardware path**: AVX-512 `vexpandps`/`vexpandpd` (zmm with
//!   `avx512f`, ymm/xmm with `avx512vl`) — the *only* intrinsic the whole
//!   suite uses, mirroring the paper's single exception to
//!   compiler-assisted vectorization;
//! * **software path** (`soft-vexpand`): a portable per-lane scatter loop.
//!   Deliberately branchy — the paper measures its high instruction
//!   overhead on pre-AVX-512 hardware (Zen2) and we preserve that
//!   behavioral difference.
//!
//! Compression (builder side) lives here too so the two directions are
//! tested as inverses.

use crate::detect::cpu_features;
use crate::scalar::Scalar;

/// Which expansion implementation a kernel was compiled/selected with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpandPath {
    /// AVX-512 `vexpand` instructions.
    Hardware,
    /// Portable per-lane scatter loop (`soft-vexpand`).
    Software,
}

impl std::fmt::Display for ExpandPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpandPath::Hardware => write!(f, "vexpand"),
            ExpandPath::Software => write!(f, "soft-vexpand"),
        }
    }
}

/// Portable `soft-vexpand`: place the leading `mask.count_ones()` elements
/// of `src` into the lanes of the output whose mask bit is set; other lanes
/// are zero. Returns the expanded block.
///
/// # Panics
/// If `src` holds fewer than `mask.count_ones()` elements.
#[inline(always)]
pub fn expand_soft<T: Scalar, const W: usize>(mask: u32, src: &[T]) -> [T; W] {
    debug_assert!(W <= 32);
    let mut out = [T::ZERO; W];
    let mut k = 0usize;
    for (l, slot) in out.iter_mut().enumerate() {
        if mask & (1u32 << l) != 0 {
            *slot = src[k];
            k += 1;
        }
    }
    out
}

/// Builder-side inverse of expansion: append the nonzero lanes of `block`
/// to `dst` and return the occupancy mask (bit `l` set ⇔ `block[l] != 0`).
#[inline]
pub fn compress_into<T: Scalar, const W: usize>(block: &[T; W], dst: &mut Vec<T>) -> u32 {
    debug_assert!(W <= 32);
    let mut mask = 0u32;
    for (l, &v) in block.iter().enumerate() {
        if v != T::ZERO {
            mask |= 1u32 << l;
            dst.push(v);
        }
    }
    mask
}

/// Element types that may have a hardware expand path.
///
/// The kernel variant is chosen once per matrix from
/// [`hw_available`](MaskExpand::hw_available); hot loops then call either
/// [`expand_soft`] or [`expand_hw`](MaskExpand::expand_hw) without
/// re-checking features.
pub trait MaskExpand: Scalar {
    /// Whether `expand_hw::<W>` may be called on this machine.
    fn hw_available<const W: usize>() -> bool;

    /// Hardware mask expansion.
    ///
    /// # Safety
    /// * `Self::hw_available::<W>()` must have returned `true`;
    /// * `src` must point at at least `mask.count_ones()` readable elements.
    unsafe fn expand_hw<const W: usize>(mask: u32, src: *const Self) -> [Self; W];
}

/// Pick the expansion path for `(T, W)` on this machine.
pub fn select_path<T: MaskExpand, const W: usize>() -> ExpandPath {
    let path = if T::hw_available::<W>() {
        ExpandPath::Hardware
    } else {
        ExpandPath::Software
    };
    if cscv_trace::ENABLED {
        cscv_trace::span::event(
            "expand.select_path",
            &[
                ("lanes", W as f64),
                ("hardware", (path == ExpandPath::Hardware) as u8 as f64),
            ],
        );
    }
    path
}

/// Expand with an explicitly chosen path (dispatch hoisted out of hot loops
/// by the caller; this helper exists for tests and generic validators).
#[inline(always)]
pub fn expand_with<T: MaskExpand, const W: usize>(
    path: ExpandPath,
    mask: u32,
    src: &[T],
) -> [T; W] {
    match path {
        ExpandPath::Software => expand_soft::<T, W>(mask, src),
        ExpandPath::Hardware => {
            assert!(src.len() >= mask.count_ones() as usize);
            // SAFETY: path selection guaranteed availability; length checked.
            unsafe { T::expand_hw::<W>(mask, src.as_ptr()) }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The raw intrinsic wrappers. Each function is `unsafe` because it
    //! requires (a) the named target feature and (b) `mask.count_ones()`
    //! readable elements at `src` — `vexpandloadu` only touches that many.
    use std::arch::x86_64::*;

    /// # Safety
    /// Requires `avx512f` and `mask.count_ones()`
    /// readable elements at `src`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn expand_f32x16(mask: u16, src: *const f32) -> [f32; 16] {
        let v = _mm512_maskz_expandloadu_ps(mask, src as *const _);
        std::mem::transmute::<__m512, [f32; 16]>(v)
    }

    /// # Safety
    /// Requires `avx512f` + `avx512vl` and `mask.count_ones()`
    /// readable elements at `src`.
    #[target_feature(enable = "avx512f,avx512vl")]
    pub unsafe fn expand_f32x8(mask: u8, src: *const f32) -> [f32; 8] {
        let v = _mm256_maskz_expandloadu_ps(mask, src as *const _);
        std::mem::transmute::<__m256, [f32; 8]>(v)
    }

    /// # Safety
    /// Requires `avx512f` + `avx512vl` and `mask.count_ones()`
    /// readable elements at `src`.
    #[target_feature(enable = "avx512f,avx512vl")]
    pub unsafe fn expand_f32x4(mask: u8, src: *const f32) -> [f32; 4] {
        let v = _mm_maskz_expandloadu_ps(mask, src as *const _);
        std::mem::transmute::<__m128, [f32; 4]>(v)
    }

    /// # Safety
    /// Requires `avx512f` and `mask.count_ones()`
    /// readable elements at `src`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn expand_f64x8(mask: u8, src: *const f64) -> [f64; 8] {
        let v = _mm512_maskz_expandloadu_pd(mask, src as *const _);
        std::mem::transmute::<__m512d, [f64; 8]>(v)
    }

    /// # Safety
    /// Requires `avx512f` + `avx512vl` and `mask.count_ones()`
    /// readable elements at `src`.
    #[target_feature(enable = "avx512f,avx512vl")]
    pub unsafe fn expand_f64x4(mask: u8, src: *const f64) -> [f64; 4] {
        let v = _mm256_maskz_expandloadu_pd(mask, src as *const _);
        std::mem::transmute::<__m256d, [f64; 4]>(v)
    }

    /// # Safety
    /// Requires `avx512f` + `avx512vl` and `mask.count_ones()`
    /// readable elements at `src`.
    #[target_feature(enable = "avx512f,avx512vl")]
    pub unsafe fn expand_f64x2(mask: u8, src: *const f64) -> [f64; 2] {
        let v = _mm_maskz_expandloadu_pd(mask, src as *const _);
        std::mem::transmute::<__m128d, [f64; 2]>(v)
    }
}

/// Copy a `[T; N]` intrinsic result into the generic `[T; W]` output.
///
/// Used inside `match W` arms where the concrete width is known dynamically
/// but the type system still sees the generic `W`.
///
/// # Safety
/// `W == N` — debug-asserted; a mismatch would read past `v`.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn write_out<T: Scalar, const W: usize, const N: usize>(v: [T; N]) -> [T; W] {
    debug_assert_eq!(W, N);
    let mut out = [T::ZERO; W];
    std::ptr::copy_nonoverlapping(v.as_ptr(), out.as_mut_ptr(), W);
    out
}

impl MaskExpand for f32 {
    fn hw_available<const W: usize>() -> bool {
        cpu_features().hw_expand_available(4, W)
    }

    // SAFETY: trait contract (hw_available checked, count_ones readable
    // elements) matches each intrinsic wrapper's requirements; W == N in
    // every write_out arm.
    #[inline(always)]
    unsafe fn expand_hw<const W: usize>(mask: u32, src: *const Self) -> [Self; W] {
        #[cfg(target_arch = "x86_64")]
        {
            match W {
                16 => write_out::<f32, W, 16>(x86::expand_f32x16(mask as u16, src)),
                8 => write_out::<f32, W, 8>(x86::expand_f32x8(mask as u8, src)),
                4 => write_out::<f32, W, 4>(x86::expand_f32x4(mask as u8, src)),
                _ => unreachable!("no hardware expand for f32 x{W}"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (mask, src);
            unreachable!("hardware expand unavailable on this architecture")
        }
    }
}

impl MaskExpand for f64 {
    fn hw_available<const W: usize>() -> bool {
        cpu_features().hw_expand_available(8, W)
    }

    // SAFETY: trait contract (hw_available checked, count_ones readable
    // elements) matches each intrinsic wrapper's requirements; W == N in
    // every write_out arm.
    #[inline(always)]
    unsafe fn expand_hw<const W: usize>(mask: u32, src: *const Self) -> [Self; W] {
        #[cfg(target_arch = "x86_64")]
        {
            match W {
                8 => write_out::<f64, W, 8>(x86::expand_f64x8(mask as u8, src)),
                4 => write_out::<f64, W, 4>(x86::expand_f64x4(mask as u8, src)),
                2 => write_out::<f64, W, 2>(x86::expand_f64x2(mask as u8, src)),
                _ => unreachable!("no hardware expand for f64 x{W}"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (mask, src);
            unreachable!("hardware expand unavailable on this architecture")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_expand_basic() {
        let src = [1.0f32, 2.0, 3.0];
        let out: [f32; 8] = expand_soft(0b1010_0100, &src);
        assert_eq!(out, [0.0, 0.0, 1.0, 0.0, 0.0, 2.0, 0.0, 3.0]);
    }

    #[test]
    fn soft_expand_empty_mask() {
        let src: [f64; 0] = [];
        let out: [f64; 4] = expand_soft(0, &src);
        assert_eq!(out, [0.0; 4]);
    }

    #[test]
    fn soft_expand_full_mask() {
        let src = [1.0f64, 2.0, 3.0, 4.0];
        let out: [f64; 4] = expand_soft(0b1111, &src);
        assert_eq!(out, src);
    }

    #[test]
    fn compress_then_expand_roundtrip() {
        let block = [0.0f32, 5.0, 0.0, -1.0, 2.5, 0.0, 0.0, 9.0];
        let mut packed = Vec::new();
        let mask = compress_into(&block, &mut packed);
        assert_eq!(mask, 0b1001_1010);
        assert_eq!(packed, vec![5.0, -1.0, 2.5, 9.0]);
        let out: [f32; 8] = expand_soft(mask, &packed);
        assert_eq!(out, block);
    }

    fn hw_soft_agree<T: MaskExpand, const W: usize>(values: &[T]) {
        if !T::hw_available::<W>() {
            return; // machine without AVX-512: nothing to cross-check
        }
        // Exhaustive masks for small W, sampled for W = 16.
        let max_mask: u32 = if W >= 16 { 0xFFFF } else { (1u32 << W) - 1 };
        let step = if W >= 16 { 257 } else { 1 };
        let mut mask = 0u32;
        while mask <= max_mask {
            let need = mask.count_ones() as usize;
            let src = &values[..need];
            let soft: [T; W] = expand_soft(mask, src);
            let hard: [T; W] = expand_with(ExpandPath::Hardware, mask, src);
            assert_eq!(soft, hard, "mask {mask:#b}");
            mask += step;
        }
    }

    #[test]
    fn hw_matches_soft_f32() {
        let values: Vec<f32> = (1..=16).map(|i| i as f32 * 1.5).collect();
        hw_soft_agree::<f32, 4>(&values);
        hw_soft_agree::<f32, 8>(&values);
        hw_soft_agree::<f32, 16>(&values);
    }

    #[test]
    fn hw_matches_soft_f64() {
        let values: Vec<f64> = (1..=8).map(|i| i as f64 * -0.75).collect();
        hw_soft_agree::<f64, 2>(&values);
        hw_soft_agree::<f64, 4>(&values);
        hw_soft_agree::<f64, 8>(&values);
    }

    #[test]
    fn select_path_consistent_with_detection() {
        let p = select_path::<f32, 16>();
        if cpu_features().avx512f {
            assert_eq!(p, ExpandPath::Hardware);
        } else {
            assert_eq!(p, ExpandPath::Software);
        }
        // Widths with no hardware variant always fall back to software.
        assert_eq!(select_path::<f64, 16>(), ExpandPath::Software);
    }

    #[test]
    fn display_names() {
        assert_eq!(ExpandPath::Hardware.to_string(), "vexpand");
        assert_eq!(ExpandPath::Software.to_string(), "soft-vexpand");
    }
}
