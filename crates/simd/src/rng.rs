//! A tiny deterministic PRNG (xorshift64* seeded through splitmix64).
//!
//! The workspace builds with zero external crates, so the handful of
//! places that need randomness — the sinogram noise model, randomized
//! tests, benchmark input generation — share this generator instead of
//! `rand`. It is deliberately small: reproducible streams, uniform and
//! Gaussian doubles, bounded integers. Not cryptographic.

/// Xorshift64* generator with splitmix64 seed conditioning (so seeds
/// 0, 1, 2, … produce uncorrelated streams).
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create a generator from any seed (including 0).
    pub fn new(seed: u64) -> Self {
        // splitmix64 step: spreads low-entropy seeds over the state space
        // and guarantees a nonzero xorshift state.
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        XorShift64 { state: z | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive. The
    /// modulo bias is < 2⁻⁵³ for any bound the suite uses.
    pub fn next_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }

    /// Standard normal deviate via Box-Muller (one value per call; the
    /// second root is discarded to keep the stream position simple).
    pub fn normal(&mut self) -> f64 {
        // u1 in (0, 1] so the log is finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = XorShift64::new(0);
        let v: Vec<u64> = (0..10).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
        assert_ne!(v[0], v[1]);
    }

    #[test]
    fn uniform_doubles_in_range_and_spread() {
        let mut r = XorShift64::new(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_and_bounded_int() {
        let mut r = XorShift64::new(3);
        for _ in 0..1000 {
            let v = r.range_f64(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
            assert!(r.next_usize(17) < 17);
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = XorShift64::new(11);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let z = r.normal();
            assert!(z.is_finite());
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
