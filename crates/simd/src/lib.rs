//! SIMD kernel layer for the CSCV SpMV suite.
//!
//! The CSCV paper's implementation philosophy is *compiler-assisted
//! vectorization*: all floating-point kernels are written as fixed-width
//! lane-array loops that LLVM turns into packed FMA instructions, with one
//! single exception — the AVX-512 `vexpand` instruction used by CSCV-M to
//! decompress mask-packed nonzeros, for which no portable formulation
//! exists. This crate mirrors that split:
//!
//! * [`scalar`] — the [`Scalar`] element trait (`f32`/`f64`).
//! * [`lanes`] — portable `[T; W]` micro-kernels (FMA, axpy, reductions)
//!   written so the auto-vectorizer emits packed instructions.
//! * [`expand`] — mask expansion: `soft-vexpand` (portable) and the
//!   hardware `vexpandps/vexpandpd` paths (x86-64, runtime detected).
//! * [`detect`] — cached CPU feature detection.
//! * [`rng`] — the in-tree xorshift PRNG used by tests, noise models and
//!   benchmark input generation (keeps the workspace dependency-free).

pub mod detect;
pub mod expand;
pub mod lanes;
pub mod rng;
pub mod scalar;

pub use detect::{cpu_features, CpuFeatures};
pub use expand::{ExpandPath, MaskExpand};
pub use scalar::Scalar;
mod randomized;
