//! Portable lane-array micro-kernels.
//!
//! Every kernel here is written as a fixed-trip-count loop over `[T; W]`
//! arrays (or exact chunks of slices) with FMA bodies. Compiled with
//! `-C target-cpu=native` LLVM lowers them to packed `vfmadd` instructions
//! of the widest available vector unit — this is the "compiler-assisted
//! vectorization" the paper relies on for performance portability, and the
//! reason the suite contains no per-ISA kernel copies.

use crate::scalar::Scalar;

/// `acc[l] = vals[l] * x + acc[l]` for each lane.
///
/// The CSCV inner-loop primitive: one CSCVE (a `W`-wide dense column
/// segment) folded into the reordered-`ỹ` accumulator.
#[inline(always)]
// AUDIT(panic-ok): checked indexing guards the lane window — callers present exactly W (or len-bounded) elements; panicking on a malformed offset beats UB.
pub fn fma_lanes<T: Scalar, const W: usize>(acc: &mut [T; W], x: T, vals: &[T; W]) {
    for l in 0..W {
        acc[l] = vals[l].mul_add(x, acc[l]);
    }
}

/// Copy `W` lanes out of a slice starting at `at`.
#[inline(always)]
pub fn load_lanes<T: Scalar, const W: usize>(src: &[T], at: usize) -> [T; W] {
    let mut out = [T::ZERO; W];
    out.copy_from_slice(&src[at..at + W]);
    out
}

/// Write `W` lanes into a slice starting at `at`.
#[inline(always)]
// AUDIT(panic-ok): checked indexing guards the lane window — callers present exactly W (or len-bounded) elements; panicking on a malformed offset beats UB.
pub fn store_lanes<T: Scalar, const W: usize>(dst: &mut [T], at: usize, v: [T; W]) {
    dst[at..at + W].copy_from_slice(&v);
}

/// `K`×`W` register-tile FMA: fold one matrix lane block into `K`
/// accumulators, one per right-hand side, each scaled by that RHS's
/// own `x` scalar.
///
/// This is the batched-SpMM inner primitive: the matrix lane block
/// (`vals`) is loaded **once** and reused `K` times, so matrix traffic
/// is amortized across the batch while the per-RHS FMAs stay
/// independent (K·W-wide ILP for the auto-vectorizer).
#[inline(always)]
// AUDIT(panic-ok): checked indexing guards the lane window — callers present exactly W (or len-bounded) elements; panicking on a malformed offset beats UB.
pub fn fma_tile<T: Scalar, const W: usize, const K: usize>(
    accs: &mut [[T; W]; K],
    xs: &[T; K],
    vals: &[T; W],
) {
    for k in 0..K {
        for l in 0..W {
            accs[k][l] = vals[l].mul_add(xs[k], accs[k][l]);
        }
    }
}

/// Load a `K`×`W` tile from `K` consecutive `W`-blocks starting at `at`
/// — the interleaved multi-RHS `ỹ` layout, where RHS `k`'s segment for
/// a lane block sits at `base + k·W`.
#[inline(always)]
pub fn load_tile<T: Scalar, const W: usize, const K: usize>(src: &[T], at: usize) -> [[T; W]; K] {
    let mut out = [[T::ZERO; W]; K];
    for (k, tile) in out.iter_mut().enumerate() {
        tile.copy_from_slice(&src[at + k * W..at + (k + 1) * W]);
    }
    out
}

/// Store a `K`×`W` tile into `K` consecutive `W`-blocks starting at `at`.
#[inline(always)]
// AUDIT(panic-ok): checked indexing guards the lane window — callers present exactly W (or len-bounded) elements; panicking on a malformed offset beats UB.
pub fn store_tile<T: Scalar, const W: usize, const K: usize>(
    dst: &mut [T],
    at: usize,
    tile: &[[T; W]; K],
) {
    for (k, lanes) in tile.iter().enumerate() {
        dst[at + k * W..at + (k + 1) * W].copy_from_slice(lanes);
    }
}

/// Horizontal sum of a lane block (pairwise, keeps f32 error modest).
#[inline(always)]
// AUDIT(panic-ok): checked indexing guards the lane window — callers present exactly W (or len-bounded) elements; panicking on a malformed offset beats UB.
pub fn hsum<T: Scalar, const W: usize>(v: &[T; W]) -> T {
    let mut width = W;
    let mut buf = *v;
    while width > 1 {
        let half = width / 2;
        for i in 0..half {
            buf[i] += buf[i + half];
        }
        if width % 2 == 1 {
            buf[0] += buf[width - 1];
        }
        width = half;
    }
    buf[0]
}

/// `y += alpha * x` over whole slices (8-lane unrolled body + scalar tail).
#[inline]
// AUDIT(panic-ok): checked indexing guards the lane window — callers present exactly W (or len-bounded) elements; panicking on a malformed offset beats UB.
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len());
    let mut xc = x.chunks_exact(8);
    let mut yc = y.chunks_exact_mut(8);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        for l in 0..8 {
            ys[l] = xs[l].mul_add(alpha, ys[l]);
        }
    }
    for (xs, ys) in xc.remainder().iter().zip(yc.into_remainder()) {
        *ys = xs.mul_add(alpha, *ys);
    }
}

/// Dot product with 4 independent accumulators for instruction-level
/// parallelism (FMA latency hiding).
#[inline]
// AUDIT(panic-ok): checked indexing guards the lane window — callers present exactly W (or len-bounded) elements; panicking on a malformed offset beats UB.
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len());
    let mut acc = [T::ZERO; 4];
    let mut xc = x.chunks_exact(4);
    let mut yc = y.chunks_exact(4);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        for l in 0..4 {
            acc[l] = xs[l].mul_add(ys[l], acc[l]);
        }
    }
    let mut tail = T::ZERO;
    for (xs, ys) in xc.remainder().iter().zip(yc.remainder()) {
        tail = xs.mul_add(*ys, tail);
    }
    hsum(&acc) + tail
}

/// Squared Euclidean norm.
#[inline]
pub fn norm2_sq<T: Scalar>(x: &[T]) -> T {
    dot(x, x)
}

/// `y += x` elementwise — the per-thread `y`-copy reduction primitive.
#[inline]
pub fn add_assign_slice<T: Scalar>(y: &mut [T], x: &[T]) {
    assert_eq!(x.len(), y.len());
    for (ys, xs) in y.iter_mut().zip(x) {
        *ys += *xs;
    }
}

/// `x *= alpha` elementwise.
#[inline]
pub fn scale<T: Scalar>(x: &mut [T], alpha: T) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma_lanes_matches_scalar() {
        let mut acc = [1.0f64; 8];
        let vals = [0.5f64, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0];
        fma_lanes(&mut acc, 2.0, &vals);
        for l in 0..8 {
            assert_eq!(acc[l], 1.0 + 2.0 * vals[l]);
        }
    }

    #[test]
    fn load_store_roundtrip() {
        let src = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let lanes: [f32; 4] = load_lanes(&src, 1);
        assert_eq!(lanes, [2.0, 3.0, 4.0, 5.0]);
        let mut dst = [0.0f32; 6];
        store_lanes(&mut dst, 2, lanes);
        assert_eq!(dst, [0.0, 0.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn fma_tile_matches_k_independent_fma_lanes() {
        let vals = [0.5f64, 1.0, 1.5, 2.0];
        let xs = [2.0f64, -1.0, 0.25];
        let mut tile = [[1.0f64; 4]; 3];
        fma_tile(&mut tile, &xs, &vals);
        for k in 0..3 {
            let mut single = [1.0f64; 4];
            fma_lanes(&mut single, xs[k], &vals);
            assert_eq!(tile[k], single);
        }
    }

    #[test]
    fn tile_load_store_roundtrip_interleaved() {
        let src: Vec<f32> = (0..20).map(|i| i as f32).collect();
        let tile: [[f32; 4]; 2] = load_tile(&src, 8);
        assert_eq!(tile, [[8.0, 9.0, 10.0, 11.0], [12.0, 13.0, 14.0, 15.0]]);
        let mut dst = vec![0.0f32; 20];
        store_tile(&mut dst, 4, &tile);
        assert_eq!(&dst[4..12], &src[8..16]);
        assert_eq!(&dst[..4], &[0.0; 4]);
    }

    #[test]
    fn hsum_all_widths() {
        assert_eq!(hsum(&[1.0f64]), 1.0);
        assert_eq!(hsum(&[1.0f64, 2.0]), 3.0);
        assert_eq!(hsum(&[1.0f64, 2.0, 3.0, 4.0]), 10.0);
        let v8: [f64; 8] = [1.0; 8];
        assert_eq!(hsum(&v8), 8.0);
        let v16: [f64; 16] = std::array::from_fn(|i| i as f64);
        assert_eq!(hsum(&v16), 120.0);
    }

    #[test]
    fn axpy_with_tail() {
        let x: Vec<f64> = (0..11).map(|i| i as f64).collect();
        let mut y = vec![1.0f64; 11];
        axpy(3.0, &x, &mut y);
        for (i, &v) in y.iter().enumerate() {
            assert_eq!(v, 1.0 + 3.0 * i as f64);
        }
    }

    #[test]
    fn dot_matches_reference() {
        let x: Vec<f64> = (0..37).map(|i| (i as f64) * 0.25).collect();
        let y: Vec<f64> = (0..37).map(|i| (i as f64) - 10.0).collect();
        let reference: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - reference).abs() < 1e-9);
    }

    #[test]
    fn norm_and_scale_and_add() {
        let mut x = vec![3.0f32, 4.0];
        assert_eq!(norm2_sq(&x), 25.0);
        scale(&mut x, 2.0);
        assert_eq!(x, vec![6.0, 8.0]);
        let mut y = vec![1.0f32, 1.0];
        add_assign_slice(&mut y, &x);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn dot_empty_is_zero() {
        let e: Vec<f32> = vec![];
        assert_eq!(dot(&e, &e), 0.0);
    }
}
