//! Property-based tests for the SIMD layer (separate module so the main
//! modules stay lean; compiled only under test).
#![cfg(test)]

use crate::expand::{compress_into, expand_soft, expand_with, select_path, ExpandPath};
use crate::lanes::{axpy, dot, hsum};
use crate::MaskExpand;
use proptest::prelude::*;

proptest! {
    #[test]
    fn hsum_matches_sum_f64(v in proptest::collection::vec(-1e6f64..1e6, 8)) {
        let arr: [f64; 8] = v.clone().try_into().unwrap();
        let naive: f64 = v.iter().sum();
        prop_assert!((hsum(&arr) - naive).abs() <= 1e-6 * naive.abs().max(1.0));
    }

    #[test]
    fn dot_is_bilinear(
        x in proptest::collection::vec(-100f64..100.0, 1..40),
        alpha in -10f64..10.0,
    ) {
        let y: Vec<f64> = x.iter().map(|v| v * 0.5 + 1.0).collect();
        let scaled: Vec<f64> = x.iter().map(|v| v * alpha).collect();
        let d1 = dot(&scaled, &y);
        let d2 = alpha * dot(&x, &y);
        prop_assert!((d1 - d2).abs() <= 1e-7 * d2.abs().max(1.0));
    }

    #[test]
    fn axpy_matches_scalar_loop(
        x in proptest::collection::vec(-50f32..50.0, 0..64),
        a in -4f32..4.0,
    ) {
        let mut y: Vec<f32> = x.iter().map(|v| v + 1.0).collect();
        let mut y_ref = y.clone();
        axpy(a, &x, &mut y);
        for (yr, xv) in y_ref.iter_mut().zip(&x) {
            *yr = a.mul_add(*xv, *yr);
        }
        prop_assert_eq!(y, y_ref);
    }

    #[test]
    fn expand_compress_inverse_f64x8(
        lanes in proptest::collection::vec(prop_oneof![Just(0.0f64), -5f64..5.0], 8),
    ) {
        let block: [f64; 8] = lanes.try_into().unwrap();
        let mut packed = Vec::new();
        let mask = compress_into(&block, &mut packed);
        let back: [f64; 8] = expand_soft(mask, &packed);
        // Inverse wherever lanes were nonzero; zeros stay zero (a -0.0
        // lane compresses as nonzero and round-trips exactly too).
        prop_assert_eq!(back, block);
    }

    #[test]
    fn hw_and_soft_expand_agree_random_masks(
        mask in 0u32..=0xFFFF,
        vals in proptest::collection::vec(-9f32..9.0, 16),
    ) {
        if <f32 as MaskExpand>::hw_available::<16>() {
            let need = mask.count_ones() as usize;
            let soft: [f32; 16] = expand_soft(mask, &vals[..need]);
            let hard: [f32; 16] = expand_with(ExpandPath::Hardware, mask, &vals[..need]);
            prop_assert_eq!(soft, hard);
        } else {
            prop_assert_eq!(select_path::<f32, 16>(), ExpandPath::Software);
        }
    }
}
