//! A minimal JSON value with writer and parser — just enough for NDJSON
//! trace emission, run manifests, and the perf-smoke baseline, with zero
//! dependencies.
//!
//! Numbers are `f64` (every value this suite records — counters, GFLOP/s,
//! byte counts — fits `f64` exactly below 2⁵³; integral values are
//! written without a decimal point). Object order is preserved.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Serialize (compact, no trailing newline).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a fresh string.
    #[allow(clippy::inherent_to_string)] // deliberate: Display would invite format!-nesting
    pub fn to_string(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    /// Parse one JSON document (rejects trailing garbage).
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional degradation.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest escape-free, ASCII-or-UTF-8 run at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not reassembled — the
                            // suite never emits them; map to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Json::obj(vec![
            ("name", Json::from("CSCV-M")),
            ("gflops", Json::from(1.25)),
            ("nnz", Json::from(123456u64)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::from(1u64), Json::from(2u64)])),
        ]);
        let s = v.to_string();
        assert_eq!(
            s,
            r#"{"name":"CSCV-M","gflops":1.25,"nnz":123456,"ok":true,"none":null,"arr":[1,2]}"#
        );
        let back = Json::parse(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("gflops").unwrap().as_f64(), Some(1.25));
        assert_eq!(back.get("name").unwrap().as_str(), Some("CSCV-M"));
        assert_eq!(back.get("arr").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn integers_written_without_decimal_point() {
        assert_eq!(Json::from(0u64).to_string(), "0");
        assert_eq!(Json::from(2.0f64).to_string(), "2");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let nasty = "a\"b\\c\nd\te\u{1}é—x";
        let s = Json::from(nasty).to_string();
        assert_eq!(Json::parse(&s).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(
            r#" { "a" : [ 1 , { "b" : null } , "s" ] ,
                 "c" : -1.5e3 } "#,
        )
        .unwrap();
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-1500.0));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "tru", "\"x", "{\"a\" 1}", "1 2", "{]}"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\\/é\"").unwrap().as_str(),
            Some("Aé/é")
        );
    }
}
