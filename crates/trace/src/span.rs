//! Spans (timed, nestable) and point events (timestamped markers with
//! numeric fields).
//!
//! A span is RAII: [`enter`] stamps a monotonic start time and bumps the
//! calling thread's nesting depth; dropping the returned [`SpanGuard`]
//! records the completed interval into the thread's event buffer. Point
//! events ([`event`]) record a single timestamp plus `(name, f64)`
//! fields — enough for iteration timelines (`iter`, `residual`, …)
//! without dragging in an allocation-heavy attribute system.
//!
//! With the `trace` feature off, [`SpanGuard`] is a zero-sized type with
//! no `Drop` impl and both entry points are empty `#[inline(always)]`
//! bodies — the instrumentation disappears from codegen entirely.

/// One recorded span or point event (as stored and emitted).
#[derive(Debug, Clone)]
pub struct Event {
    /// Static name, e.g. `"pool.run"` or `"sirt.iter"`.
    pub name: &'static str,
    /// Span-nesting depth at record time (0 = top level).
    pub depth: u16,
    /// Start time, monotonic nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Duration in nanoseconds; `0` for point events.
    pub dur_ns: u64,
    /// `true` for spans, `false` for point events.
    pub is_span: bool,
    /// Process-unique span id (`0` = unassigned). Only spans that need
    /// cross-process parenting carry one — see [`next_span_id`].
    pub span_id: u64,
    /// Id of the causal parent span (`0` = none). Set on worker-side
    /// spans opened under a coordinator-propagated trace context.
    pub parent: u64,
    /// Numeric payload fields.
    pub fields: Vec<(&'static str, f64)>,
}

#[cfg(feature = "trace")]
mod imp {
    use super::Event;
    use crate::registry;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// RAII guard for an open span; records on drop.
    #[must_use = "a span measures the scope holding its guard"]
    pub struct SpanGuard {
        name: &'static str,
        t_ns: u64,
        depth: u16,
        span_id: u64,
        parent: u64,
    }

    // ATOMIC(statistic): process-global span-id allocator — a Relaxed
    // fetch_add hands out unique nonzero ids; no ordering with other
    // memory is implied or required.
    static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

    /// Allocate a fresh process-unique nonzero span id (for spans that
    /// will parent work in other processes). `0` in untraced builds.
    #[inline]
    pub fn next_span_id() -> u64 {
        NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
    }

    /// Monotonic nanoseconds on the trace epoch clock — the time base of
    /// every recorded span. Public so the shard clock-offset handshake
    /// can exchange timestamps on the same clock the spans use.
    #[inline]
    pub fn now_ns() -> u64 {
        registry::epoch_ns()
    }

    /// Open a span on the calling thread.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        enter_ctx(name, 0, 0)
    }

    /// Open a span carrying an explicit trace context: `span_id` is this
    /// span's own id (0 = anonymous), `parent` the id of the remote span
    /// that caused it (0 = none).
    #[inline]
    pub fn enter_ctx(name: &'static str, span_id: u64, parent: u64) -> SpanGuard {
        let t_ns = registry::epoch_ns();
        let depth = registry::with_local(|l| {
            let d = l.depth.get();
            l.depth.set(d + 1);
            d
        });
        SpanGuard {
            name,
            t_ns,
            depth,
            span_id,
            parent,
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            // Same monotonic epoch clock as `t_ns`, so nested intervals
            // are consistent (`inner end ≤ outer end` always holds).
            let dur_ns = registry::epoch_ns().saturating_sub(self.t_ns);
            registry::with_local(|l| {
                l.depth.set(l.depth.get().saturating_sub(1));
                l.events
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(Event {
                        name: self.name,
                        depth: self.depth,
                        t_ns: self.t_ns,
                        dur_ns: dur_ns.max(1),
                        is_span: true,
                        span_id: self.span_id,
                        parent: self.parent,
                        fields: Vec::new(),
                    });
            });
        }
    }

    /// Record a point event with numeric fields.
    #[inline]
    pub fn event(name: &'static str, fields: &[(&'static str, f64)]) {
        let t_ns = registry::epoch_ns();
        registry::with_local(|l| {
            l.events
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(Event {
                    name,
                    depth: l.depth.get(),
                    t_ns,
                    dur_ns: 0,
                    is_span: false,
                    span_id: 0,
                    parent: 0,
                    fields: fields.to_vec(),
                });
        });
    }

    /// Snapshot all buffered events as `(thread name, event)`, sorted by
    /// start time.
    pub fn events() -> Vec<(String, Event)> {
        let mut out = registry::collect_events();
        out.sort_by_key(|(_, e)| e.t_ns);
        out
    }

    /// Incremental drain: events recorded since the last call with the
    /// same cursor (see [`crate::registry::collect_events_since`]).
    pub fn events_since(cursor: &mut super::EventCursor) -> Vec<(String, Event)> {
        let mut out = registry::collect_events_since(&mut cursor.generation, &mut cursor.offsets);
        out.sort_by_key(|(_, e)| e.t_ns);
        out
    }

    /// Incremental drain of the *calling thread's* buffer only.
    pub fn local_events_since(cursor: &mut super::LocalEventCursor) -> Vec<(String, Event)> {
        let thread = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| "thread".to_string());
        registry::with_local(|l| {
            let buf = l.events.lock().unwrap_or_else(|p| p.into_inner());
            let start = cursor.offset.min(buf.len());
            cursor.offset = buf.len();
            buf[start..]
                .iter()
                .map(|e| (thread.clone(), e.clone()))
                .collect()
        })
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::Event;

    /// Zero-sized stand-in; holding or dropping it does nothing.
    pub struct SpanGuard {
        _priv: (),
    }

    #[inline(always)]
    pub fn enter(_name: &'static str) -> SpanGuard {
        SpanGuard { _priv: () }
    }

    #[inline(always)]
    pub fn enter_ctx(_name: &'static str, _span_id: u64, _parent: u64) -> SpanGuard {
        SpanGuard { _priv: () }
    }

    #[inline(always)]
    pub fn next_span_id() -> u64 {
        0
    }

    #[inline(always)]
    pub fn now_ns() -> u64 {
        0
    }

    #[inline(always)]
    pub fn event(_name: &'static str, _fields: &[(&'static str, f64)]) {}

    #[inline(always)]
    pub fn events() -> Vec<(String, Event)> {
        Vec::new()
    }

    #[inline(always)]
    pub fn events_since(_cursor: &mut super::EventCursor) -> Vec<(String, Event)> {
        Vec::new()
    }

    #[inline(always)]
    pub fn local_events_since(_cursor: &mut super::LocalEventCursor) -> Vec<(String, Event)> {
        Vec::new()
    }
}

/// Cursor for [`events_since`]: remembers how far into each registered
/// thread's buffer the previous drain reached. A fresh (default) cursor
/// drains everything recorded so far.
#[derive(Debug, Default, Clone)]
pub struct EventCursor {
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    generation: u64,
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    offsets: Vec<usize>,
}

/// Cursor for [`local_events_since`]: position within the calling
/// thread's own event buffer.
#[derive(Debug, Default, Clone)]
pub struct LocalEventCursor {
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    offset: usize,
}

pub use imp::{
    enter, enter_ctx, event, events, events_since, local_events_since, next_span_id, now_ns,
    SpanGuard,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_guard_is_zero_sized_and_inert() {
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        assert!(!std::mem::needs_drop::<SpanGuard>());
        let _g = enter("anything");
        event("marker", &[("x", 1.0)]);
        assert!(events().is_empty());
        // The distributed-trace surface is equally inert.
        assert_eq!(next_span_id(), 0);
        assert_eq!(now_ns(), 0);
        let _c = enter_ctx("ctx", 1, 2);
        let mut cur = EventCursor::default();
        assert!(events_since(&mut cur).is_empty());
        let mut lcur = LocalEventCursor::default();
        assert!(local_events_since(&mut lcur).is_empty());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn spans_nest_and_record_depth() {
        let _guard = crate::registry::test_lock();
        crate::counters::reset();
        {
            let _outer = enter("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = enter("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
                event("mark", &[("iter", 3.0)]);
            }
        }
        let evs = events();
        let find = |n: &str| evs.iter().find(|(_, e)| e.name == n).unwrap();
        let (_, outer) = find("outer");
        let (_, inner) = find("inner");
        let (_, mark) = find("mark");
        assert!(outer.is_span && inner.is_span && !mark.is_span);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(mark.depth, 2, "point event inside two open spans");
        // Nesting: the inner interval lies within the outer one.
        assert!(inner.t_ns >= outer.t_ns);
        assert!(inner.t_ns + inner.dur_ns <= outer.t_ns + outer.dur_ns);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert_eq!(mark.fields, vec![("iter", 3.0)]);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn span_ids_are_unique_and_context_is_recorded() {
        let _guard = crate::registry::test_lock();
        crate::counters::reset();
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        {
            let _d = enter_ctx("dispatch", a, 0);
            let _w = enter_ctx("compute", 0, a);
        }
        {
            let _plain = enter("plain");
        }
        let evs = events();
        let find = |n: &str| evs.iter().find(|(_, e)| e.name == n).unwrap();
        let (_, dispatch) = find("dispatch");
        assert_eq!((dispatch.span_id, dispatch.parent), (a, 0));
        let (_, compute) = find("compute");
        assert_eq!((compute.span_id, compute.parent), (0, a));
        let (_, plain) = find("plain");
        assert_eq!((plain.span_id, plain.parent), (0, 0));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn cursor_drains_are_incremental() {
        let _guard = crate::registry::test_lock();
        crate::counters::reset();
        let mut cur = EventCursor::default();
        let mut lcur = LocalEventCursor::default();
        {
            let _a = enter("cursor.a");
        }
        let first = events_since(&mut cur);
        assert!(first.iter().any(|(_, e)| e.name == "cursor.a"));
        assert!(
            events_since(&mut cur).is_empty(),
            "nothing new since last drain"
        );
        // The thread-local drain sees only this thread's buffer.
        let lfirst = local_events_since(&mut lcur);
        assert!(lfirst.iter().any(|(_, e)| e.name == "cursor.a"));
        std::thread::scope(|s| {
            s.spawn(|| {
                let _b = enter("cursor.other-thread");
            });
        });
        let second = events_since(&mut cur);
        assert!(second.iter().any(|(_, e)| e.name == "cursor.other-thread"));
        assert!(
            local_events_since(&mut lcur).is_empty(),
            "other threads' events are not in the local buffer"
        );
        // A reset between drains restarts cleanly instead of panicking.
        crate::counters::reset();
        {
            let _c = enter("cursor.post-reset");
        }
        let third = events_since(&mut cur);
        assert!(third.iter().any(|(_, e)| e.name == "cursor.post-reset"));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn now_ns_is_monotonic_nonzero_epoch_clock() {
        let t0 = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let t1 = now_ns();
        assert!(t1 > t0);
        assert!(t1 - t0 >= 1_000_000, "slept ≥ 1 ms");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn depth_recovers_after_drop() {
        let _guard = crate::registry::test_lock();
        crate::counters::reset();
        {
            let _a = enter("a");
        }
        {
            let _b = enter("b");
        }
        let evs = events();
        for (_, e) in evs.iter().filter(|(_, e)| e.is_span) {
            assert_eq!(e.depth, 0, "sibling spans are both top-level");
        }
    }
}
