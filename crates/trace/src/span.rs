//! Spans (timed, nestable) and point events (timestamped markers with
//! numeric fields).
//!
//! A span is RAII: [`enter`] stamps a monotonic start time and bumps the
//! calling thread's nesting depth; dropping the returned [`SpanGuard`]
//! records the completed interval into the thread's event buffer. Point
//! events ([`event`]) record a single timestamp plus `(name, f64)`
//! fields — enough for iteration timelines (`iter`, `residual`, …)
//! without dragging in an allocation-heavy attribute system.
//!
//! With the `trace` feature off, [`SpanGuard`] is a zero-sized type with
//! no `Drop` impl and both entry points are empty `#[inline(always)]`
//! bodies — the instrumentation disappears from codegen entirely.

/// One recorded span or point event (as stored and emitted).
#[derive(Debug, Clone)]
pub struct Event {
    /// Static name, e.g. `"pool.run"` or `"sirt.iter"`.
    pub name: &'static str,
    /// Span-nesting depth at record time (0 = top level).
    pub depth: u16,
    /// Start time, monotonic nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Duration in nanoseconds; `0` for point events.
    pub dur_ns: u64,
    /// `true` for spans, `false` for point events.
    pub is_span: bool,
    /// Numeric payload fields.
    pub fields: Vec<(&'static str, f64)>,
}

#[cfg(feature = "trace")]
mod imp {
    use super::Event;
    use crate::registry;

    /// RAII guard for an open span; records on drop.
    #[must_use = "a span measures the scope holding its guard"]
    pub struct SpanGuard {
        name: &'static str,
        t_ns: u64,
        depth: u16,
    }

    /// Open a span on the calling thread.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        let t_ns = registry::epoch_ns();
        let depth = registry::with_local(|l| {
            let d = l.depth.get();
            l.depth.set(d + 1);
            d
        });
        SpanGuard { name, t_ns, depth }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            // Same monotonic epoch clock as `t_ns`, so nested intervals
            // are consistent (`inner end ≤ outer end` always holds).
            let dur_ns = registry::epoch_ns().saturating_sub(self.t_ns);
            registry::with_local(|l| {
                l.depth.set(l.depth.get().saturating_sub(1));
                l.events
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(Event {
                        name: self.name,
                        depth: self.depth,
                        t_ns: self.t_ns,
                        dur_ns: dur_ns.max(1),
                        is_span: true,
                        fields: Vec::new(),
                    });
            });
        }
    }

    /// Record a point event with numeric fields.
    #[inline]
    pub fn event(name: &'static str, fields: &[(&'static str, f64)]) {
        let t_ns = registry::epoch_ns();
        registry::with_local(|l| {
            l.events
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(Event {
                    name,
                    depth: l.depth.get(),
                    t_ns,
                    dur_ns: 0,
                    is_span: false,
                    fields: fields.to_vec(),
                });
        });
    }

    /// Snapshot all buffered events as `(thread name, event)`, sorted by
    /// start time.
    pub fn events() -> Vec<(String, Event)> {
        let mut out = registry::collect_events();
        out.sort_by_key(|(_, e)| e.t_ns);
        out
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::Event;

    /// Zero-sized stand-in; holding or dropping it does nothing.
    pub struct SpanGuard {
        _priv: (),
    }

    #[inline(always)]
    pub fn enter(_name: &'static str) -> SpanGuard {
        SpanGuard { _priv: () }
    }

    #[inline(always)]
    pub fn event(_name: &'static str, _fields: &[(&'static str, f64)]) {}

    #[inline(always)]
    pub fn events() -> Vec<(String, Event)> {
        Vec::new()
    }
}

pub use imp::{enter, event, events, SpanGuard};

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_guard_is_zero_sized_and_inert() {
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        assert!(!std::mem::needs_drop::<SpanGuard>());
        let _g = enter("anything");
        event("marker", &[("x", 1.0)]);
        assert!(events().is_empty());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn spans_nest_and_record_depth() {
        let _guard = crate::registry::test_lock();
        crate::counters::reset();
        {
            let _outer = enter("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = enter("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
                event("mark", &[("iter", 3.0)]);
            }
        }
        let evs = events();
        let find = |n: &str| evs.iter().find(|(_, e)| e.name == n).unwrap();
        let (_, outer) = find("outer");
        let (_, inner) = find("inner");
        let (_, mark) = find("mark");
        assert!(outer.is_span && inner.is_span && !mark.is_span);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(mark.depth, 2, "point event inside two open spans");
        // Nesting: the inner interval lies within the outer one.
        assert!(inner.t_ns >= outer.t_ns);
        assert!(inner.t_ns + inner.dur_ns <= outer.t_ns + outer.dur_ns);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert_eq!(mark.fields, vec![("iter", 3.0)]);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn depth_recovers_after_drop() {
        let _guard = crate::registry::test_lock();
        crate::counters::reset();
        {
            let _a = enter("a");
        }
        {
            let _b = enter("b");
        }
        let evs = events();
        for (_, e) in evs.iter().filter(|(_, e)| e.is_span) {
            assert_eq!(e.depth, 0, "sibling spans are both top-level");
        }
    }
}
