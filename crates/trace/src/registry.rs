//! Per-thread shard registration and aggregation (trace-on builds only).
//!
//! One global mutex-protected slot list; each thread takes that lock
//! exactly once (at its first instrumented call) to register its counter
//! array and event buffer, then works lock-free on its own shard.
//! Shards are `Arc`-held by both the registry and the thread-local
//! handle, so a thread exiting never invalidates aggregation.

use crate::counters::N_COUNTERS;
use crate::span::Event;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

// ATOMIC(statistic): per-thread trace counters — each thread bumps only
// its own shard with Relaxed fetch_add and aggregation folds whatever it
// observes; no cross-thread ordering protocol exists or is needed.
pub(crate) type CounterShard = [AtomicU64; N_COUNTERS];

struct Slot {
    thread: String,
    counters: Arc<CounterShard>,
    events: Arc<Mutex<Vec<Event>>>,
}

static SLOTS: Mutex<Vec<Slot>> = Mutex::new(Vec::new());

fn slots() -> MutexGuard<'static, Vec<Slot>> {
    // A panic while holding the lock leaves only a fully-written or
    // fully-cleared list, so poisoning is recoverable.
    SLOTS.lock().unwrap_or_else(|p| p.into_inner())
}

/// The calling thread's private handle: its shard, its event buffer,
/// and its current span-nesting depth.
pub(crate) struct LocalHandle {
    pub counters: Arc<CounterShard>,
    pub events: Arc<Mutex<Vec<Event>>>,
    pub depth: Cell<u16>,
}

thread_local! {
    static LOCAL: LocalHandle = register();
}

fn register() -> LocalHandle {
    let counters: Arc<CounterShard> = Arc::new(std::array::from_fn(|_| AtomicU64::new(0)));
    let events = Arc::new(Mutex::new(Vec::new()));
    let mut guard = slots();
    let thread = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{}", guard.len()));
    guard.push(Slot {
        thread,
        counters: Arc::clone(&counters),
        events: Arc::clone(&events),
    });
    drop(guard);
    LocalHandle {
        counters,
        events,
        depth: Cell::new(0),
    }
}

/// Run `f` with the calling thread's handle (registering on first use).
#[inline]
pub(crate) fn with_local<R>(f: impl FnOnce(&LocalHandle) -> R) -> R {
    LOCAL.with(f)
}

/// Visit every registered counter shard (registration order).
pub(crate) fn for_each_shard(mut f: impl FnMut(&str, &CounterShard)) {
    for slot in slots().iter() {
        f(&slot.thread, &slot.counters);
    }
}

/// Snapshot every thread's buffered events, tagged with the thread name.
pub(crate) fn collect_events() -> Vec<(String, Event)> {
    let mut out = Vec::new();
    for slot in slots().iter() {
        let buf = slot.events.lock().unwrap_or_else(|p| p.into_inner());
        out.extend(buf.iter().map(|e| (slot.thread.clone(), e.clone())));
    }
    out
}

// ATOMIC(statistic): counts registry resets so incremental cursors can
// detect that buffers were cleared behind them; a Relaxed bump/load is
// enough because drains already serialize on the slot mutexes.
static RESET_GEN: AtomicU64 = AtomicU64::new(0);

/// Incremental snapshot: events appended since the previous call with
/// the same cursor (per-slot offsets, registration order). A [`reset`]
/// between drains bumps the generation counter, which restarts the
/// cursor from the cleared buffers; offsets are additionally clamped to
/// the buffer length as a belt-and-braces guard.
pub(crate) fn collect_events_since(
    generation: &mut u64,
    cursor: &mut Vec<usize>,
) -> Vec<(String, Event)> {
    let gen_now = RESET_GEN.load(Ordering::Relaxed);
    if *generation != gen_now {
        cursor.clear();
        *generation = gen_now;
    }
    let mut out = Vec::new();
    for (i, slot) in slots().iter().enumerate() {
        if cursor.len() <= i {
            cursor.push(0);
        }
        let buf = slot.events.lock().unwrap_or_else(|p| p.into_inner());
        let start = cursor[i].min(buf.len());
        cursor[i] = buf.len();
        out.extend(
            buf[start..]
                .iter()
                .map(|e| (slot.thread.clone(), e.clone())),
        );
    }
    out
}

/// Zero all shards and clear all event buffers.
pub(crate) fn reset() {
    RESET_GEN.fetch_add(1, Ordering::Relaxed);
    for slot in slots().iter() {
        for a in slot.counters.iter() {
            a.store(0, Ordering::Relaxed);
        }
        slot.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }
}

/// Monotonic nanoseconds since the process's first instrumented call
/// (the common time base of every span and event).
pub(crate) fn epoch_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Serialize tests that assert on the (global) counter state.
#[cfg(test)]
pub(crate) fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}
