//! Zero-dependency observability for the CSCV suite.
//!
//! The paper's whole argument is quantitative — instruction counts, bytes
//! moved, padding ratios, bandwidth ceilings (§IV–V) — so the runtime
//! should be able to report what the kernels actually did. This crate
//! provides the three primitives the rest of the workspace wires in:
//!
//! * **[`counters`]** — a fixed taxonomy of `u64` counters (FMA lanes
//!   issued, bytes loaded/stored, padding lanes wasted, mask-expand
//!   invocations, VxG groups executed, pool busy time, …) kept in
//!   per-thread atomic shards. The hot path takes no lock: each thread
//!   registers its shard once, then only touches its own cache lines with
//!   `Relaxed` adds. [`counters::totals`] folds the shards on demand.
//! * **[`span`]** — lightweight nested spans with monotonic timing and
//!   point events carrying numeric fields (iteration timelines,
//!   swap-compaction markers). Buffered per thread, drained by the
//!   emitters.
//! * **[`emit`]** — an NDJSON emitter (one self-describing JSON object
//!   per line — machine-readable run evidence) and a human-readable
//!   table renderer with derived statistics (pool imbalance ratio,
//!   bytes/flop, padding rate).
//!
//! # Feature gating
//!
//! Everything is behind the `trace` cargo feature. With the feature
//! **off** (the default) every function in the public API still exists
//! but has an empty `#[inline(always)]` body, [`SpanGuard`] is a
//! zero-sized type with no `Drop`, and [`ENABLED`] is `false` — so call
//! sites like
//!
//! ```
//! if cscv_trace::ENABLED {
//!     cscv_trace::counters::add(cscv_trace::counters::Counter::FmaLanes, 42);
//! }
//! ```
//!
//! are trivially dead and compile to nothing. Instrumented kernels are
//! byte-for-byte the uninstrumented kernels unless the feature is on.
//!
//! The [`json`], [`hist`], [`clock`], and [`export`] modules (the
//! minimal JSON parser/writer, log-bucketed latency histograms, the
//! cross-process clock-offset estimator, and the Chrome trace-event /
//! collapsed-stack exporters) are always compiled:
//! manifests, histograms, and trace conversion operate on *recorded*
//! evidence, not hot-path instrumentation, and stay available in
//! default builds — `cscv-xtask perf-report` uses them to analyze
//! archived traces without carrying live instrumentation itself.

pub mod clock;
pub mod counters;
pub mod emit;
pub mod export;
pub mod hist;
pub mod json;
#[cfg(feature = "trace")]
pub(crate) mod registry;
pub mod span;

pub use emit::{report_guard, ReportGuard};
pub use span::SpanGuard;

/// `true` iff this build carries live instrumentation (`trace` feature).
///
/// A `const`, so `if cscv_trace::ENABLED { … }` blocks vanish entirely
/// from untraced builds.
pub const ENABLED: bool = cfg!(feature = "trace");
