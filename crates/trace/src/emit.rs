//! Emitters: NDJSON (machine-readable) and an aligned text table
//! (human-readable), both fed from the same registry snapshot.
//!
//! NDJSON — one JSON object per line, each with a `type` discriminator —
//! is the format the bench manifests and the CI perf-smoke gate consume:
//! appendable, greppable, parseable line-by-line without a document
//! parser. Layout:
//!
//! ```text
//! {"type":"meta","enabled":true,"threads":3}
//! {"type":"counters","fma_lanes":1184,"useful_flops":1924,...}
//! {"type":"thread","thread":"cscv-worker-0","pool_busy_ns":81233,...}
//! {"type":"span","name":"pool.run","thread":"main","depth":0,"t_ns":12,"dur_ns":81954}
//! {"type":"event","name":"sirt.iter","thread":"main","depth":1,"t_ns":90211,"iter":3,"residual":0.0021}
//! ```
//!
//! Both emitters degrade gracefully in untraced builds: the NDJSON
//! output is a single `{"type":"meta","enabled":false}` line and the
//! table states that tracing is off.

use crate::counters::{self, Counter, Totals};
use crate::json::Json;
use crate::span;
use std::io::Write as _;

/// Render the full trace state as NDJSON.
pub fn ndjson() -> String {
    let totals = counters::totals();
    let threads = counters::per_thread();
    let mut out = String::new();
    let meta = Json::obj(vec![
        ("type", Json::from("meta")),
        ("enabled", Json::from(crate::ENABLED)),
        ("threads", Json::from(threads.len())),
    ]);
    out.push_str(&meta.to_string());
    out.push('\n');
    if !crate::ENABLED {
        return out;
    }

    let mut line = vec![("type".to_string(), Json::from("counters"))];
    line.extend(totals.iter().map(|(k, v)| (k.to_string(), Json::from(v))));
    out.push_str(&Json::Obj(line).to_string());
    out.push('\n');

    for (name, t) in &threads {
        let mut line = vec![
            ("type".to_string(), Json::from("thread")),
            ("thread".to_string(), Json::from(name.as_str())),
        ];
        // Only the counters this thread actually touched, to keep the
        // per-thread lines short.
        line.extend(
            t.iter()
                .filter(|(_, v)| *v > 0)
                .map(|(k, v)| (k.to_string(), Json::from(v))),
        );
        out.push_str(&Json::Obj(line).to_string());
        out.push('\n');
    }

    for (thread, e) in span::events() {
        let mut line = vec![
            (
                "type".to_string(),
                Json::from(if e.is_span { "span" } else { "event" }),
            ),
            ("name".to_string(), Json::from(e.name)),
            ("thread".to_string(), Json::from(thread)),
            ("depth".to_string(), Json::from(e.depth as u64)),
            ("t_ns".to_string(), Json::from(e.t_ns)),
        ];
        if e.is_span {
            line.push(("dur_ns".to_string(), Json::from(e.dur_ns)));
        }
        line.extend(e.fields.iter().map(|(k, v)| (k.to_string(), Json::Num(*v))));
        out.push_str(&Json::Obj(line).to_string());
        out.push('\n');
    }
    out
}

/// Write [`ndjson`] to a file (parent directories created).
pub fn write_ndjson(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(ndjson().as_bytes())
}

/// Pool-level derived statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolStats {
    /// Threads that executed at least one pool task.
    pub busy_threads: usize,
    /// Total busy nanoseconds over all threads.
    pub busy_ns_total: u64,
    /// Max-over-mean busy time across active threads (1.0 = perfectly
    /// balanced; the paper's near-perfect nnz balancing should keep this
    /// close to 1).
    pub imbalance: f64,
}

/// Compute pool balance statistics from the per-thread shards.
pub fn pool_stats() -> PoolStats {
    let per = counters::per_thread();
    let busy: Vec<u64> = per
        .iter()
        .map(|(_, t)| t.get(Counter::PoolBusyNs))
        .filter(|&b| b > 0)
        .collect();
    if busy.is_empty() {
        return PoolStats {
            busy_threads: 0,
            busy_ns_total: 0,
            imbalance: 1.0,
        };
    }
    let total: u64 = busy.iter().sum();
    let mean = total as f64 / busy.len() as f64;
    let max = *busy.iter().max().unwrap() as f64;
    PoolStats {
        busy_threads: busy.len(),
        busy_ns_total: total,
        imbalance: if mean > 0.0 { max / mean } else { 1.0 },
    }
}

/// Render a human-readable report: counters, derived ratios, pool
/// balance, and per-span aggregates.
pub fn table() -> String {
    if !crate::ENABLED {
        return "trace: disabled (build with --features trace)\n".to_string();
    }
    let totals = counters::totals();
    let mut out = String::new();
    out.push_str("== trace counters ==\n");
    let width = counters::ALL
        .iter()
        .map(|c| c.name().len())
        .max()
        .unwrap_or(0);
    for (name, v) in totals.iter() {
        out.push_str(&format!("  {name:<width$}  {v}\n"));
    }

    out.push_str("== derived ==\n");
    push_ratio(
        &mut out,
        "padding rate (lanes/useful nnz)",
        totals.get(Counter::PaddingLanes) as f64,
        totals.get(Counter::UsefulFlops) as f64 / 2.0,
    );
    push_ratio(
        &mut out,
        "bytes per useful flop",
        (totals.get(Counter::BytesLoaded) + totals.get(Counter::BytesStored)) as f64,
        totals.get(Counter::UsefulFlops) as f64,
    );
    let ps = pool_stats();
    out.push_str(&format!(
        "  pool: {} busy thread(s), {:.3} ms busy total, imbalance {:.3}\n",
        ps.busy_threads,
        ps.busy_ns_total as f64 / 1e6,
        ps.imbalance
    ));

    // Per-span aggregates.
    let events = span::events();
    let mut names: Vec<&'static str> = Vec::new();
    for (_, e) in events.iter().filter(|(_, e)| e.is_span) {
        if !names.contains(&e.name) {
            names.push(e.name);
        }
    }
    if !names.is_empty() {
        out.push_str("== spans ==\n");
        out.push_str(&format!(
            "  {:<24} {:>8} {:>12} {:>12} {:>12}\n",
            "name", "count", "total ms", "mean us", "max us"
        ));
        for name in names {
            let durs: Vec<u64> = events
                .iter()
                .filter(|(_, e)| e.is_span && e.name == name)
                .map(|(_, e)| e.dur_ns)
                .collect();
            let total: u64 = durs.iter().sum();
            let max = *durs.iter().max().unwrap();
            out.push_str(&format!(
                "  {:<24} {:>8} {:>12.3} {:>12.3} {:>12.3}\n",
                name,
                durs.len(),
                total as f64 / 1e6,
                total as f64 / durs.len() as f64 / 1e3,
                max as f64 / 1e3
            ));
        }
    }
    let n_points = events.iter().filter(|(_, e)| !e.is_span).count();
    if n_points > 0 {
        out.push_str(&format!("== events: {n_points} point event(s) ==\n"));
    }
    out
}

fn push_ratio(out: &mut String, label: &str, num: f64, den: f64) {
    if den > 0.0 {
        out.push_str(&format!("  {label}: {:.4}\n", num / den));
    }
}

/// Honor `CSCV_TRACE_OUT`: if set, write NDJSON there; otherwise print
/// the table to stderr. No-op (beyond a single meta line check) in
/// untraced builds — drivers can call this unconditionally at exit.
pub fn report_at_exit() {
    if !crate::ENABLED {
        return;
    }
    match std::env::var("CSCV_TRACE_OUT") {
        Ok(path) if !path.is_empty() => {
            if let Err(e) = write_ndjson(std::path::Path::new(&path)) {
                eprintln!("trace: failed to write {path}: {e}");
            } else {
                eprintln!("trace: wrote {path}");
            }
        }
        _ => eprintln!("{}", table()),
    }
}

/// A [`Totals`] snapshot serialized as a JSON object (used by tests and
/// external tooling that wants counters without the full NDJSON dump).
pub fn totals_json(t: &Totals) -> Json {
    Json::Obj(
        t.iter()
            .map(|(k, v)| (k.to_string(), Json::from(v)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_emitters_report_disabled() {
        let nd = ndjson();
        assert_eq!(nd.lines().count(), 1);
        assert!(nd.contains("\"enabled\":false"));
        assert!(table().contains("disabled"));
        let ps = pool_stats();
        assert_eq!(ps.busy_threads, 0);
        assert_eq!(ps.imbalance, 1.0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn ndjson_lines_parse_and_cover_state() {
        let _guard = crate::registry::test_lock();
        counters::reset();
        counters::add(Counter::FmaLanes, 64);
        counters::add(Counter::PoolBusyNs, 1000);
        {
            let _s = span::enter("emit.test");
            span::event("emit.point", &[("iter", 1.0)]);
        }
        let nd = ndjson();
        let mut kinds = Vec::new();
        for line in nd.lines() {
            let v = Json::parse(line).expect("every NDJSON line parses");
            kinds.push(v.get("type").unwrap().as_str().unwrap().to_string());
        }
        for want in ["meta", "counters", "thread", "span", "event"] {
            assert!(kinds.iter().any(|k| k == want), "missing {want} line");
        }
        // The counters line carries the values we added.
        let counters_line = nd
            .lines()
            .find(|l| l.contains("\"type\":\"counters\""))
            .unwrap();
        let v = Json::parse(counters_line).unwrap();
        assert_eq!(v.get("fma_lanes").unwrap().as_f64(), Some(64.0));

        let t = table();
        assert!(t.contains("fma_lanes"));
        assert!(t.contains("emit.test"));

        let ps = pool_stats();
        assert_eq!(ps.busy_threads, 1);
        assert!((ps.imbalance - 1.0).abs() < 1e-12);
    }

    #[cfg(feature = "trace")]
    #[test]
    #[cfg_attr(miri, ignore = "file IO is unsupported under Miri isolation")]
    fn write_ndjson_creates_parent_dirs() {
        let _guard = crate::registry::test_lock();
        let dir = std::env::temp_dir().join(format!("cscv-trace-test-{}", std::process::id()));
        let path = dir.join("nested").join("trace.ndjson");
        write_ndjson(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("{\"type\":\"meta\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
