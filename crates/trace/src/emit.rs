//! Emitters: NDJSON (machine-readable) and an aligned text table
//! (human-readable), both fed from the same registry snapshot.
//!
//! NDJSON — one JSON object per line, each with a `type` discriminator —
//! is the format the bench manifests and the CI perf-smoke gate consume:
//! appendable, greppable, parseable line-by-line without a document
//! parser. Layout:
//!
//! ```text
//! {"type":"meta","enabled":true,"threads":3}
//! {"type":"counters","fma_lanes":1184,"useful_flops":1924,...}
//! {"type":"thread","thread":"cscv-worker-0","pool_busy_ns":81233,...}
//! {"type":"span","name":"pool.run","thread":"main","depth":0,"t_ns":12,"dur_ns":81954}
//! {"type":"event","name":"sirt.iter","thread":"main","depth":1,"t_ns":90211,"iter":3,"residual":0.0021}
//! ```
//!
//! Both emitters degrade gracefully in untraced builds: the NDJSON
//! output is a single `{"type":"meta","enabled":false}` line and the
//! table states that tracing is off.

use crate::counters::{self, Counter, Totals};
use crate::json::Json;
use crate::span;
use std::io::Write as _;

/// Render the full trace state as NDJSON.
pub fn ndjson() -> String {
    let totals = counters::totals();
    let threads = counters::per_thread();
    let mut out = String::new();
    let meta = Json::obj(vec![
        ("type", Json::from("meta")),
        ("enabled", Json::from(crate::ENABLED)),
        ("threads", Json::from(threads.len())),
    ]);
    out.push_str(&meta.to_string());
    out.push('\n');
    if !crate::ENABLED {
        return out;
    }

    let mut line = vec![("type".to_string(), Json::from("counters"))];
    line.extend(totals.iter().map(|(k, v)| (k.to_string(), Json::from(v))));
    out.push_str(&Json::Obj(line).to_string());
    out.push('\n');

    for (name, t) in &threads {
        let mut line = vec![
            ("type".to_string(), Json::from("thread")),
            ("thread".to_string(), Json::from(name.as_str())),
        ];
        // Only the counters this thread actually touched, to keep the
        // per-thread lines short.
        line.extend(
            t.iter()
                .filter(|(_, v)| *v > 0)
                .map(|(k, v)| (k.to_string(), Json::from(v))),
        );
        out.push_str(&Json::Obj(line).to_string());
        out.push('\n');
    }

    out.push_str(&events_ndjson(&span::events()));
    out
}

/// Render span/event NDJSON lines for `events` alone — the chunk format
/// shard workers stream back to the coordinator inside `Trace` frames.
/// Identical to the span/event lines of [`ndjson`], so
/// [`crate::export::from_ndjson`] parses both.
pub fn events_ndjson(events: &[(String, span::Event)]) -> String {
    let mut out = String::new();
    for (thread, e) in events {
        let mut line = vec![
            (
                "type".to_string(),
                Json::from(if e.is_span { "span" } else { "event" }),
            ),
            ("name".to_string(), Json::from(e.name)),
            ("thread".to_string(), Json::from(thread.as_str())),
            ("depth".to_string(), Json::from(e.depth as u64)),
            ("t_ns".to_string(), Json::from(e.t_ns)),
        ];
        if e.is_span {
            line.push(("dur_ns".to_string(), Json::from(e.dur_ns)));
        }
        // Trace-context ids are emitted only when set, so ordinary
        // single-process traces keep their compact lines.
        if e.span_id != 0 {
            line.push(("span_id".to_string(), Json::from(e.span_id)));
        }
        if e.parent != 0 {
            line.push(("parent".to_string(), Json::from(e.parent)));
        }
        line.extend(e.fields.iter().map(|(k, v)| (k.to_string(), Json::Num(*v))));
        out.push_str(&Json::Obj(line).to_string());
        out.push('\n');
    }
    out
}

/// Write [`ndjson`] to a file (parent directories created).
pub fn write_ndjson(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(ndjson().as_bytes())
}

/// Pool-level derived statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolStats {
    /// Threads that executed at least one pool task.
    pub busy_threads: usize,
    /// Total busy nanoseconds over all threads.
    pub busy_ns_total: u64,
    /// Max-over-mean busy time across active threads (1.0 = perfectly
    /// balanced; the paper's near-perfect nnz balancing should keep this
    /// close to 1).
    pub imbalance: f64,
    /// Wall-clock span of recorded activity in nanoseconds: first span
    /// start to last span end over every recorded event. When no spans
    /// were recorded (counters-only traces) this falls back to the
    /// longest per-thread busy time, so busy fractions stay ≤ 1.
    pub wall_ns: u64,
    /// Busy nanoseconds per active thread `(thread name, busy ns)`, in
    /// shard-registration order.
    pub per_thread: Vec<(String, u64)>,
}

impl PoolStats {
    /// Fraction of the observed wall span a thread spent busy
    /// (`busy_ns / wall_ns`, clamped to `[0, 1]`; `0.0` without a wall).
    pub fn busy_fraction(&self, busy_ns: u64) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        (busy_ns as f64 / self.wall_ns as f64).clamp(0.0, 1.0)
    }
}

/// Compute pool balance statistics from the per-thread shards and the
/// recorded span timeline.
pub fn pool_stats() -> PoolStats {
    let per = counters::per_thread();
    let per_thread: Vec<(String, u64)> = per
        .iter()
        .map(|(name, t)| (name.clone(), t.get(Counter::PoolBusyNs)))
        .filter(|&(_, b)| b > 0)
        .collect();
    let events = span::events();
    let start = events.iter().map(|(_, e)| e.t_ns).min();
    let end = events.iter().map(|(_, e)| e.t_ns + e.dur_ns).max();
    let max_busy = per_thread.iter().map(|&(_, b)| b).max().unwrap_or(0);
    let wall_ns = match (start, end) {
        // Span-derived wall, but never shorter than the busiest thread
        // (events may have been drained between dispatch batches).
        (Some(s), Some(e)) => (e - s).max(max_busy),
        _ => max_busy,
    };
    if per_thread.is_empty() {
        return PoolStats {
            busy_threads: 0,
            busy_ns_total: 0,
            imbalance: 1.0,
            wall_ns,
            per_thread,
        };
    }
    let total: u64 = per_thread.iter().map(|&(_, b)| b).sum();
    let mean = total as f64 / per_thread.len() as f64;
    PoolStats {
        busy_threads: per_thread.len(),
        busy_ns_total: total,
        imbalance: if mean > 0.0 {
            max_busy as f64 / mean
        } else {
            1.0
        },
        wall_ns,
        per_thread,
    }
}

/// Render a human-readable report: counters, derived ratios, pool
/// balance, and per-span aggregates.
pub fn table() -> String {
    if !crate::ENABLED {
        return "trace: disabled (build with --features trace)\n".to_string();
    }
    let totals = counters::totals();
    let mut out = String::new();
    out.push_str("== trace counters ==\n");
    let width = counters::ALL
        .iter()
        .map(|c| c.name().len())
        .max()
        .unwrap_or(0);
    for (name, v) in totals.iter() {
        out.push_str(&format!("  {name:<width$}  {v}\n"));
    }

    out.push_str("== derived ==\n");
    push_ratio(
        &mut out,
        "padding rate (lanes/useful nnz)",
        totals.get(Counter::PaddingLanes) as f64,
        totals.get(Counter::UsefulFlops) as f64 / 2.0,
    );
    push_ratio(
        &mut out,
        "bytes per useful flop",
        (totals.get(Counter::BytesLoaded) + totals.get(Counter::BytesStored)) as f64,
        totals.get(Counter::UsefulFlops) as f64,
    );
    let ps = pool_stats();
    out.push_str(&format!(
        "  pool: {} busy thread(s), {:.3} ms busy total, imbalance {:.3}, wall {:.3} ms\n",
        ps.busy_threads,
        ps.busy_ns_total as f64 / 1e6,
        ps.imbalance,
        ps.wall_ns as f64 / 1e6,
    ));
    for (name, busy) in &ps.per_thread {
        let f = ps.busy_fraction(*busy);
        out.push_str(&format!(
            "    {:<20} busy {:>10.3} ms  ({:>5.1}% busy / {:>5.1}% idle)\n",
            name,
            *busy as f64 / 1e6,
            f * 100.0,
            (1.0 - f) * 100.0
        ));
    }

    // Per-span aggregates with log-bucketed latency percentiles.
    let events = span::events();
    let mut names: Vec<&'static str> = Vec::new();
    for (_, e) in events.iter().filter(|(_, e)| e.is_span) {
        if !names.contains(&e.name) {
            names.push(e.name);
        }
    }
    if !names.is_empty() {
        out.push_str("== spans ==\n");
        out.push_str(&format!(
            "  {:<24} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            "name", "count", "total ms", "p50 us", "p90 us", "p99 us", "max us"
        ));
        for name in names {
            let mut h = crate::hist::Histogram::new();
            let mut total = 0u64;
            for (_, e) in events.iter().filter(|(_, e)| e.is_span && e.name == name) {
                h.record(e.dur_ns as f64);
                total += e.dur_ns;
            }
            out.push_str(&format!(
                "  {:<24} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12.3}\n",
                name,
                h.count(),
                total as f64 / 1e6,
                h.percentile(50.0) / 1e3,
                h.percentile(90.0) / 1e3,
                h.percentile(99.0) / 1e3,
                h.max() / 1e3
            ));
        }
    }
    let n_points = events.iter().filter(|(_, e)| !e.is_span).count();
    if n_points > 0 {
        out.push_str(&format!("== events: {n_points} point event(s) ==\n"));
    }
    out
}

fn push_ratio(out: &mut String, label: &str, num: f64, den: f64) {
    if den > 0.0 {
        out.push_str(&format!("  {label}: {:.4}\n", num / den));
    }
}

/// Honor `CSCV_TRACE_OUT`: if set, write NDJSON there; otherwise print
/// the table to stderr. No-op (beyond a single meta line check) in
/// untraced builds — drivers can call this unconditionally at exit.
pub fn report_at_exit() {
    if !crate::ENABLED {
        return;
    }
    match std::env::var("CSCV_TRACE_OUT") {
        Ok(path) if !path.is_empty() => {
            if let Err(e) = write_ndjson(std::path::Path::new(&path)) {
                eprintln!("trace: failed to write {path}: {e}");
            } else {
                eprintln!("trace: wrote {path}");
            }
        }
        _ => eprintln!("{}", table()),
    }
}

/// RAII handle that emits the end-of-run trace report on drop
/// (including on panic-unwind) — see [`report_at_exit`] for the
/// `CSCV_TRACE_OUT` routing. Install it first thing in `main`:
///
/// ```
/// let _trace = cscv_trace::report_guard();
/// // … solver / benchmark work …
/// ```
///
/// Untraced builds get a zero-cost no-op, so solvers, examples, and
/// drivers can install the guard unconditionally.
#[must_use = "the report is emitted when the guard drops"]
pub struct ReportGuard {
    _priv: (),
}

impl Drop for ReportGuard {
    fn drop(&mut self) {
        report_at_exit();
    }
}

/// Install the end-of-run trace reporter (see [`ReportGuard`]).
pub fn report_guard() -> ReportGuard {
    ReportGuard { _priv: () }
}

/// A [`Totals`] snapshot serialized as a JSON object (used by tests and
/// external tooling that wants counters without the full NDJSON dump).
pub fn totals_json(t: &Totals) -> Json {
    Json::Obj(
        t.iter()
            .map(|(k, v)| (k.to_string(), Json::from(v)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_emitters_report_disabled() {
        let nd = ndjson();
        assert_eq!(nd.lines().count(), 1);
        assert!(nd.contains("\"enabled\":false"));
        assert!(table().contains("disabled"));
        let ps = pool_stats();
        assert_eq!(ps.busy_threads, 0);
        assert_eq!(ps.imbalance, 1.0);
        assert_eq!(ps.wall_ns, 0);
        assert!(ps.per_thread.is_empty());
        assert_eq!(ps.busy_fraction(123), 0.0);
        // The report guard is inert but constructible.
        let _g = report_guard();
    }

    #[cfg(feature = "trace")]
    #[test]
    fn pool_stats_busy_idle_split_per_thread() {
        let _guard = crate::registry::test_lock();
        counters::reset();
        // Two named worker threads with a 3:1 busy split, under a wall
        // span established by an enclosing span on this thread.
        {
            let _wall = span::enter("pool.test-wall");
            std::thread::scope(|s| {
                for (name, busy) in [("ps-worker-0", 3_000u64), ("ps-worker-1", 1_000u64)] {
                    std::thread::Builder::new()
                        .name(name.to_string())
                        .spawn_scoped(s, move || {
                            counters::add(Counter::PoolBusyNs, busy);
                        })
                        .unwrap();
                }
            });
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let ps = pool_stats();
        assert_eq!(ps.busy_threads, 2);
        assert_eq!(ps.busy_ns_total, 4_000);
        // imbalance = max/mean = 3000/2000.
        assert!((ps.imbalance - 1.5).abs() < 1e-12, "{}", ps.imbalance);
        // Wall comes from the enclosing span (≥ 1 ms sleep ≫ busy ns).
        assert!(ps.wall_ns >= 1_000_000, "wall {}", ps.wall_ns);
        let busy0 = ps
            .per_thread
            .iter()
            .find(|(n, _)| n == "ps-worker-0")
            .map(|&(_, b)| b)
            .unwrap();
        assert_eq!(busy0, 3_000);
        let f = ps.busy_fraction(busy0);
        assert!(f > 0.0 && f < 1.0, "busy fraction {f}");
        // Idle complement shows up in the rendered table.
        let t = table();
        assert!(t.contains("ps-worker-0"), "{t}");
        assert!(t.contains("% idle"), "{t}");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn pool_stats_wall_falls_back_to_busiest_thread() {
        let _guard = crate::registry::test_lock();
        counters::reset();
        counters::add(Counter::PoolBusyNs, 5_000);
        // No spans recorded: wall = max busy, fraction saturates at 1.
        let ps = pool_stats();
        assert_eq!(ps.wall_ns, 5_000);
        assert_eq!(ps.busy_fraction(5_000), 1.0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn ndjson_lines_parse_and_cover_state() {
        let _guard = crate::registry::test_lock();
        counters::reset();
        counters::add(Counter::FmaLanes, 64);
        counters::add(Counter::PoolBusyNs, 1000);
        {
            let _s = span::enter("emit.test");
            span::event("emit.point", &[("iter", 1.0)]);
        }
        let nd = ndjson();
        let mut kinds = Vec::new();
        for line in nd.lines() {
            let v = Json::parse(line).expect("every NDJSON line parses");
            kinds.push(v.get("type").unwrap().as_str().unwrap().to_string());
        }
        for want in ["meta", "counters", "thread", "span", "event"] {
            assert!(kinds.iter().any(|k| k == want), "missing {want} line");
        }
        // The counters line carries the values we added.
        let counters_line = nd
            .lines()
            .find(|l| l.contains("\"type\":\"counters\""))
            .unwrap();
        let v = Json::parse(counters_line).unwrap();
        assert_eq!(v.get("fma_lanes").unwrap().as_f64(), Some(64.0));

        let t = table();
        assert!(t.contains("fma_lanes"));
        assert!(t.contains("emit.test"));

        let ps = pool_stats();
        assert_eq!(ps.busy_threads, 1);
        assert!((ps.imbalance - 1.0).abs() < 1e-12);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn events_ndjson_chunks_carry_trace_context() {
        let _guard = crate::registry::test_lock();
        counters::reset();
        let id = span::next_span_id();
        {
            let _d = span::enter_ctx("chunk.dispatch", id, 0);
            let _w = span::enter_ctx("chunk.compute", 0, id);
        }
        let chunk = ndjson_chunk_for_test();
        // Context ids appear exactly on the spans that carry them, and
        // the chunk re-parses through the exporter.
        let evs = crate::export::from_ndjson(&chunk).unwrap();
        let dispatch = evs.iter().find(|e| e.name == "chunk.dispatch").unwrap();
        assert_eq!((dispatch.span_id, dispatch.parent), (id, 0));
        let compute = evs.iter().find(|e| e.name == "chunk.compute").unwrap();
        assert_eq!((compute.span_id, compute.parent), (0, id));
        // Ordinary spans keep their compact lines (no id keys at all).
        let plain_line = chunk.lines().find(|l| l.contains("chunk.compute")).unwrap();
        assert!(!plain_line.contains("\"span_id\""));
        assert!(plain_line.contains("\"parent\""));
    }

    #[cfg(feature = "trace")]
    fn ndjson_chunk_for_test() -> String {
        events_ndjson(&span::events())
    }

    #[cfg(feature = "trace")]
    #[test]
    #[cfg_attr(miri, ignore = "file IO is unsupported under Miri isolation")]
    fn write_ndjson_creates_parent_dirs() {
        let _guard = crate::registry::test_lock();
        let dir = std::env::temp_dir().join(format!("cscv-trace-test-{}", std::process::id()));
        let path = dir.join("nested").join("trace.ndjson");
        write_ndjson(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("{\"type\":\"meta\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
