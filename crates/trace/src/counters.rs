//! The counter taxonomy and its per-thread shard machinery.
//!
//! Counters are a closed enum rather than a string registry: the set of
//! things worth counting in an SpMV stack is small and fixed, a closed
//! enum keeps the hot-path `add` a single indexed atomic op, and the
//! emitters can render every counter without discovery logic.
//!
//! Sharding: each OS thread lazily registers one `[AtomicU64; N]` array
//! with the global registry (one mutex lock, once per thread lifetime).
//! After that, `add` touches only the calling thread's own shard with
//! `Relaxed` ordering — no locks and no cross-core cache-line traffic on
//! the hot path. Aggregation ([`totals`] / [`per_thread`]) walks the
//! registry and folds shards; `Relaxed` is sufficient because readers
//! only run at quiescent points (after `pool.run` barriers or at emit
//! time) and monotonic counters need no ordering with other memory.

/// Everything the suite counts. See each variant's doc for the exact
/// semantics the invariant tests rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// FMA lane-operations issued by the CSCV kernels, padding lanes
    /// included (CSCV-Z pays its padding here; CSCV-M re-inflates to the
    /// same issue count after mask expansion).
    FmaLanes,
    /// Useful floating-point operations: `2` per original nonzero
    /// touched, the paper's `F = 2·nnz/T` numerator. One SpMV adds
    /// exactly `2·nnz(A)`.
    UsefulFlops,
    /// Bytes read per the paper's `M_Rit` model: each executed block's
    /// matrix stream plus the input-vector traffic of the call. One
    /// single-RHS SpMV adds exactly `M(A) + M(x)`.
    BytesLoaded,
    /// Bytes written per the `M_Rit` model: output-vector traffic. One
    /// single-RHS SpMV adds exactly `M(y)`.
    BytesStored,
    /// Padding lane slots wasted (CSCVE slots minus original nonzeros),
    /// accumulated per executed block — the live form of the paper's
    /// `R_nnzE` numerator.
    PaddingLanes,
    /// Mask-expansion invocations (one per compressed lane block,
    /// CSCV-M only; hardware and soft paths count alike).
    MaskExpands,
    /// VxG groups executed.
    VxgGroups,
    /// CSCV-Z block-kernel executions.
    BlocksZ,
    /// CSCV-M block-kernel executions.
    BlocksM,
    /// Top-level CSCV-Z kernel dispatches (spmv / spmm-chunk /
    /// transpose calls routed to the Z variant).
    DispatchZ,
    /// Top-level CSCV-M kernel dispatches.
    DispatchM,
    /// `ThreadPool::run` dispatches.
    PoolDispatches,
    /// Per-slot tasks executed across all pool dispatches.
    PoolTasks,
    /// Nanoseconds each thread spent inside pool tasks (per-thread
    /// shards give the busy/idle split and the imbalance ratio).
    PoolBusyNs,
    /// Iterative-solver update steps applied (per slice for batched
    /// solvers).
    SolverIters,
    /// Batch swap-compaction events (a converged slice retired and the
    /// trailing active slice swapped into its slot).
    SwapCompactions,
    /// Autotuner candidate configurations benchmarked (one per
    /// (variant, S_VxG, strategy, threads, k) point actually measured).
    TuneCandidates,
    /// Autotuner benchmark samples executed (timed kernel invocations,
    /// warmup excluded). A warm-cache tune run adds exactly zero.
    TuneSamples,
    /// Tuning-cache lookups answered from a persisted entry (exact
    /// fingerprint-hash match or within the distance fallback).
    TuneCacheHits,
    /// Tuning-cache lookups that fell through to a fresh search (or to
    /// the static heuristic when searching is not allowed).
    TuneCacheMisses,
    /// Bytes the shard coordinator wrote to worker sockets (frame
    /// headers included). One forward SpMV broadcast adds roughly
    /// `n_shards · M(x)` plus framing.
    ShardBytesTx,
    /// Bytes the shard coordinator read back from worker sockets
    /// (frame headers included). Adjoint replies shrink with the halo
    /// windows: each worker sends only its column-support slice.
    ShardBytesRx,
    /// Nanoseconds the coordinator spent in the fixed-order tree
    /// reduction of partial `ỹ` vectors (adjoint merges and column-sum
    /// merges; forward gathers are placement-only and add zero).
    ShardReduceNs,
    /// Nanoseconds shard workers reported spending inside their local
    /// executors (summed over workers; divide by the coordinator's
    /// request wall time for the busy fraction).
    ShardWorkerBusyNs,
    /// `Trace` telemetry frames the shard coordinator received from
    /// workers (periodic flushes plus one final flush per worker; zero
    /// in untraced builds, where the wire carries no Trace frames).
    ShardTraceFrames,
    /// Payload bytes of received `Trace` frames (the NDJSON event
    /// chunks plus counter snapshots) — the telemetry overhead the
    /// distributed tracing layer itself puts on the wire.
    ShardTraceBytes,
}

/// Number of counters in [`Counter`].
pub const N_COUNTERS: usize = 26;

/// Every counter, in declaration order (emit order).
pub const ALL: [Counter; N_COUNTERS] = [
    Counter::FmaLanes,
    Counter::UsefulFlops,
    Counter::BytesLoaded,
    Counter::BytesStored,
    Counter::PaddingLanes,
    Counter::MaskExpands,
    Counter::VxgGroups,
    Counter::BlocksZ,
    Counter::BlocksM,
    Counter::DispatchZ,
    Counter::DispatchM,
    Counter::PoolDispatches,
    Counter::PoolTasks,
    Counter::PoolBusyNs,
    Counter::SolverIters,
    Counter::SwapCompactions,
    Counter::TuneCandidates,
    Counter::TuneSamples,
    Counter::TuneCacheHits,
    Counter::TuneCacheMisses,
    Counter::ShardBytesTx,
    Counter::ShardBytesRx,
    Counter::ShardReduceNs,
    Counter::ShardWorkerBusyNs,
    Counter::ShardTraceFrames,
    Counter::ShardTraceBytes,
];

impl Counter {
    /// Stable snake_case name used by the NDJSON emitter.
    pub fn name(self) -> &'static str {
        match self {
            Counter::FmaLanes => "fma_lanes",
            Counter::UsefulFlops => "useful_flops",
            Counter::BytesLoaded => "bytes_loaded",
            Counter::BytesStored => "bytes_stored",
            Counter::PaddingLanes => "padding_lanes",
            Counter::MaskExpands => "mask_expands",
            Counter::VxgGroups => "vxg_groups",
            Counter::BlocksZ => "blocks_z",
            Counter::BlocksM => "blocks_m",
            Counter::DispatchZ => "dispatch_z",
            Counter::DispatchM => "dispatch_m",
            Counter::PoolDispatches => "pool_dispatches",
            Counter::PoolTasks => "pool_tasks",
            Counter::PoolBusyNs => "pool_busy_ns",
            Counter::SolverIters => "solver_iters",
            Counter::SwapCompactions => "swap_compactions",
            Counter::TuneCandidates => "tune_candidates",
            Counter::TuneSamples => "tune_samples",
            Counter::TuneCacheHits => "tune_cache_hits",
            Counter::TuneCacheMisses => "tune_cache_misses",
            Counter::ShardBytesTx => "shard_bytes_tx",
            Counter::ShardBytesRx => "shard_bytes_rx",
            Counter::ShardReduceNs => "shard_reduce_ns",
            Counter::ShardWorkerBusyNs => "shard_worker_busy_ns",
            Counter::ShardTraceFrames => "shard_trace_frames",
            Counter::ShardTraceBytes => "shard_trace_bytes",
        }
    }
}

/// A folded counter snapshot (totals over shards, or one shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Totals(pub [u64; N_COUNTERS]);

impl Totals {
    /// Value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.0[c as usize]
    }

    /// `self − earlier`, counter-wise (snapshot deltas for tests).
    /// Saturates at zero so a racing `reset` cannot underflow.
    pub fn since(&self, earlier: &Totals) -> Totals {
        let mut out = [0u64; N_COUNTERS];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&earlier.0)) {
            *o = a.saturating_sub(*b);
        }
        Totals(out)
    }

    /// True iff every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }

    /// `(name, value)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        ALL.iter().map(move |&c| (c.name(), self.get(c)))
    }
}

#[cfg(feature = "trace")]
mod imp {
    use super::{Counter, Totals, N_COUNTERS};
    use crate::registry;
    use std::sync::atomic::Ordering;

    /// Add `n` to a counter in the calling thread's shard. Lock-free
    /// after the thread's first call.
    #[inline]
    pub fn add(c: Counter, n: u64) {
        registry::with_local(|local| {
            local.counters[c as usize].fetch_add(n, Ordering::Relaxed);
        });
    }

    /// Fold every thread's shard into one snapshot.
    pub fn totals() -> Totals {
        let mut out = [0u64; N_COUNTERS];
        registry::for_each_shard(|_, shard| {
            for (o, a) in out.iter_mut().zip(shard.iter()) {
                *o += a.load(Ordering::Relaxed);
            }
        });
        Totals(out)
    }

    /// Per-thread snapshots `(thread name, totals)`, registration order.
    pub fn per_thread() -> Vec<(String, Totals)> {
        let mut out = Vec::new();
        registry::for_each_shard(|name, shard| {
            let mut t = [0u64; N_COUNTERS];
            for (o, a) in t.iter_mut().zip(shard.iter()) {
                *o = a.load(Ordering::Relaxed);
            }
            out.push((name.to_string(), Totals(t)));
        });
        out
    }

    /// Zero every shard and drop buffered span/point events.
    ///
    /// Intended for test isolation and between benchmark phases; racing
    /// writers are not corrupted (their adds land in the zeroed shard)
    /// but the snapshot semantics are only exact at quiescent points.
    pub fn reset() {
        registry::reset();
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::{Counter, Totals};

    #[inline(always)]
    pub fn add(_c: Counter, _n: u64) {}

    #[inline(always)]
    pub fn totals() -> Totals {
        Totals::default()
    }

    #[inline(always)]
    pub fn per_thread() -> Vec<(String, Totals)> {
        Vec::new()
    }

    #[inline(always)]
    pub fn reset() {}
}

pub use imp::{add, per_thread, reset, totals};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_order_are_stable() {
        assert_eq!(ALL.len(), N_COUNTERS);
        for (i, c) in ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{} out of order", c.name());
        }
        // Names are unique.
        for (i, a) in ALL.iter().enumerate() {
            for b in &ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn totals_delta_and_queries() {
        let mut a = Totals::default();
        assert!(a.is_zero());
        a.0[Counter::FmaLanes as usize] = 10;
        a.0[Counter::BytesLoaded as usize] = 100;
        let mut b = a;
        b.0[Counter::FmaLanes as usize] = 25;
        let d = b.since(&a);
        assert_eq!(d.get(Counter::FmaLanes), 15);
        assert_eq!(d.get(Counter::BytesLoaded), 0);
        // Saturating: reversed delta does not underflow.
        assert_eq!(a.since(&b).get(Counter::FmaLanes), 0);
        assert_eq!(a.iter().count(), N_COUNTERS);
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_build_is_inert() {
        const { assert!(!crate::ENABLED) }
        add(Counter::FmaLanes, 1_000_000);
        add(Counter::PoolBusyNs, 42);
        assert!(totals().is_zero(), "no-op add must not record anything");
        assert!(per_thread().is_empty());
        reset();
        assert!(totals().is_zero());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn add_and_totals_roundtrip() {
        // Serialize against other counter tests in this binary.
        let _guard = crate::registry::test_lock();
        reset();
        let before = totals();
        add(Counter::FmaLanes, 7);
        add(Counter::FmaLanes, 3);
        add(Counter::MaskExpands, 5);
        let d = totals().since(&before);
        assert_eq!(d.get(Counter::FmaLanes), 10);
        assert_eq!(d.get(Counter::MaskExpands), 5);
        assert_eq!(d.get(Counter::VxgGroups), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn shards_fold_across_std_threads() {
        let _guard = crate::registry::test_lock();
        reset();
        let before = totals();
        let n_threads = 8usize;
        let per_thread_adds = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..n_threads {
                s.spawn(|| {
                    for _ in 0..per_thread_adds {
                        add(Counter::PoolTasks, 1);
                    }
                });
            }
        });
        let d = totals().since(&before);
        assert_eq!(
            d.get(Counter::PoolTasks),
            n_threads as u64 * per_thread_adds
        );
        // Every spawned thread shows up as its own shard.
        assert!(per_thread().len() >= n_threads);
    }
}
